// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkTableN/BenchmarkFigN corresponds to one
// artifact; custom metrics carry the headline numbers so `go test
// -bench` output doubles as a results table. EXPERIMENTS.md records a
// full run against the paper's values.
package repro_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/baselines/haystack"
	"repro/internal/crowd"
	"repro/internal/engine"
	"repro/mopeye"
)

// Aliases keeping the ablation table readable.
type engineConfig = engine.Config

func engineDefault() engine.Config  { return engine.Default() }
func engineToyVpn() engine.Config   { return engine.ToyVpn() }
func haystackConfig() engine.Config { return haystack.Config() }

// benchStudy is generated once and shared by the read-only analysis
// benchmarks.
var (
	benchStudyOnce sync.Once
	benchStudy     *mopeye.Study
)

func study() *mopeye.Study {
	benchStudyOnce.Do(func() {
		benchStudy = mopeye.NewStudy(0.05, 2016)
	})
	return benchStudy
}

// BenchmarkTable1_WriteSchemes regenerates Table 1: tunnel-write and
// enqueue delay under the four writing schemes (§3.5.1).
func BenchmarkTable1_WriteSchemes(b *testing.B) {
	o := mopeye.DefaultTable1Options()
	o.Pages = 6
	var last *mopeye.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := mopeye.RunTable1(o)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.DirectWrite.LargeFraction()*100, "direct-large-%")
	b.ReportMetric(last.OldPut.LargeFraction()*100, "oldPut-large-%")
	b.ReportMetric(last.NewPut.LargeFraction()*100, "newPut-large-%")
	b.Logf("\n%s", last)
}

// BenchmarkTable2_Accuracy regenerates Table 2: MopEye vs MobiPerf
// accuracy against tcpdump ground truth (§4.1.1).
func BenchmarkTable2_Accuracy(b *testing.B) {
	o := mopeye.DefaultTable2Options()
	o.RunsPerDest = 1
	o.ProbesPerRun = 8
	var rows []mopeye.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = mopeye.RunTable2(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worstMop, worstMobi float64
	for _, r := range rows {
		if r.DeltaMopEye > worstMop {
			worstMop = r.DeltaMopEye
		}
		if r.DeltaMobiPerf > worstMobi {
			worstMobi = r.DeltaMobiPerf
		}
	}
	b.ReportMetric(worstMop, "mopeye-worst-δms")
	b.ReportMetric(worstMobi, "mobiperf-worst-δms")
	b.Logf("\n%s", mopeye.RenderTable2(rows))
}

// BenchmarkTable3_Throughput regenerates Table 3: relay throughput
// overhead (§4.1.2).
func BenchmarkTable3_Throughput(b *testing.B) {
	o := mopeye.DefaultTable3Options()
	o.Duration = time.Second
	var last *mopeye.Table3Result
	for i := 0; i < b.N; i++ {
		res, err := mopeye.RunTable3(o)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MopEyeDown, "mopeye-down-Mbps")
	b.ReportMetric(last.MopEyeUp, "mopeye-up-Mbps")
	b.ReportMetric(last.HaystackDown, "haystack-down-Mbps")
	b.ReportMetric(last.HaystackUp, "haystack-up-Mbps")
	b.Logf("\n%s", last)
}

// BenchmarkTable4_Resources regenerates Table 4: CPU/battery/memory
// overhead during a streamed video (§4.1.3).
func BenchmarkTable4_Resources(b *testing.B) {
	o := mopeye.DefaultTable4Options()
	o.Duration = 1500 * time.Millisecond
	var last *mopeye.Table4Result
	for i := 0; i < b.N; i++ {
		res, err := mopeye.RunTable4(o)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MopEye.CPUPercent, "mopeye-cpu-%")
	b.ReportMetric(last.Haystack.CPUPercent, "haystack-cpu-%")
	b.ReportMetric(last.MopEye.MemoryMB, "mopeye-mem-MB")
	b.ReportMetric(last.Haystack.MemoryMB, "haystack-mem-MB")
	b.Logf("\n%s", last)
}

// BenchmarkFig5_LazyMapping regenerates Figure 5: packet-to-app mapping
// overhead before/after the lazy scheme (§3.3).
func BenchmarkFig5_LazyMapping(b *testing.B) {
	o := mopeye.DefaultFig5Options()
	o.Pages = 10
	var last *mopeye.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := mopeye.RunFig5(o)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Lazy.MitigationRate()*100, "mitigation-%")
	b.ReportMetric((1-last.EagerCDF.At(5))*100, "eager->5ms-%")
	b.Logf("\n%s", last)
}

// BenchmarkFig6_Contributions regenerates Figure 6: measurements per
// user and per app.
func BenchmarkFig6_Contributions(b *testing.B) {
	s := study()
	var a, ap crowd.ContributionBuckets
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a = crowd.Fig6aUsers(s.Dataset())
		ap = crowd.Fig6bApps(s.Dataset())
	}
	b.ReportMetric(float64(a.Over10K), "users->10K")
	b.ReportMetric(float64(ap.H100to1K), "apps-100-1K")
	b.Logf("\n%s", s.ReportContributions())
}

// BenchmarkFig7_Countries regenerates Figure 7 (top user countries)
// and the Figure 8 location summary.
func BenchmarkFig7_Countries(b *testing.B) {
	s := study()
	var top []crowd.CountryCount
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top = crowd.Fig7TopCountries(s.Dataset(), 20)
	}
	b.ReportMetric(float64(top[0].Devices), "top-country-devices")
	b.Logf("\n%s", s.ReportCountries())
}

// BenchmarkFig9_AppRTT regenerates Figure 9: raw and per-app-median
// RTT distributions.
func BenchmarkFig9_AppRTT(b *testing.B) {
	s := study()
	var f *crowd.Fig9Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = crowd.Fig9(s.Dataset())
	}
	b.ReportMetric(f.All.Median(), "median-all-ms")
	b.ReportMetric(f.WiFi.Median(), "median-wifi-ms")
	b.ReportMetric(f.Cellular.Median(), "median-cell-ms")
	b.ReportMetric(f.MedianLTE, "median-lte-ms")
	b.Logf("\n%s", s.ReportAppRTT())
}

// BenchmarkFig10_DNS regenerates Figure 10: DNS RTT distributions.
func BenchmarkFig10_DNS(b *testing.B) {
	s := study()
	var f *crowd.Fig10Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = crowd.Fig10(s.Dataset())
	}
	b.ReportMetric(f.All.Median(), "median-all-ms")
	b.ReportMetric(f.WiFi.Median(), "median-wifi-ms")
	b.ReportMetric(f.LTE.Median(), "median-4g-ms")
	b.ReportMetric(f.G3.Median(), "median-3g-ms")
	b.ReportMetric(f.G2.Median(), "median-2g-ms")
	b.Logf("\n%s", s.ReportDNS())
}

// BenchmarkFig11_ISPDNS regenerates Figure 11: per-ISP DNS CDFs.
func BenchmarkFig11_ISPDNS(b *testing.B) {
	s := study()
	var cdfs map[string]*statsCDF
	_ = cdfs
	var singtelFast, verizonFast float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := crowd.Fig11(s.Dataset(), crowd.Fig11Defaults)
		singtelFast = m["Singtel"].At(10)
		verizonFast = m["Verizon"].At(10)
	}
	b.ReportMetric(singtelFast*100, "singtel-<10ms-%")
	b.ReportMetric(verizonFast*100, "verizon-<10ms-%")
}

// statsCDF avoids importing internal/stats here just for a type name.
type statsCDF = struct{}

// BenchmarkTable5_Apps regenerates Table 5: representative apps.
func BenchmarkTable5_Apps(b *testing.B) {
	s := study()
	var rows []crowd.Table5Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = crowd.Table5(s.Dataset())
	}
	for _, r := range rows {
		if r.Label == "Whatsapp" {
			b.ReportMetric(r.MedianMS, "whatsapp-median-ms")
		}
		if r.Label == "YouTube" {
			b.ReportMetric(r.MedianMS, "youtube-median-ms")
		}
	}
	b.Logf("\n%s", s.ReportApps())
}

// BenchmarkTable6_ISPs regenerates Table 6: LTE operator DNS
// performance.
func BenchmarkTable6_ISPs(b *testing.B) {
	s := study()
	var rows []crowd.Table6Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = crowd.Table6(s.Dataset(), 15)
	}
	b.ReportMetric(float64(rows[0].N), "top-isp-dns-count")
	b.ReportMetric(rows[0].MedianMS, "top-isp-median-ms")
	b.Logf("\n%s", s.ReportISPs())
}

// BenchmarkCaseStudies regenerates the §4.2.2 case studies.
func BenchmarkCaseStudies(b *testing.B) {
	s := study()
	var wa *crowd.WhatsappCase
	var jio *crowd.JioCase
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wa = crowd.AnalyzeWhatsapp(s.Dataset())
		jio = crowd.AnalyzeJio(s.Dataset())
	}
	b.ReportMetric(wa.SlowDomainMedian, "whatsapp-softlayer-ms")
	b.ReportMetric(jio.AppMedian, "jio-app-median-ms")
	b.ReportMetric(jio.DNSMedian, "jio-dns-median-ms")
	b.Logf("\n%s\n%s", wa, jio)
}

// BenchmarkCrowdGenerate measures dataset generation itself.
func BenchmarkCrowdGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := crowd.Generate(crowd.Config{Scale: 0.02, Seed: int64(i + 1)})
		if len(ds.Records) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkRelayConnect measures the per-connection cost of the full
// relay path: SYN through the tunnel, user-space handshake, external
// connect, measurement.
func BenchmarkRelayConnect(b *testing.B) {
	phone, err := mopeye.New(mopeye.Options{
		Servers: []mopeye.Server{{Domain: "bench.example", Addr: "203.0.113.50:80", RTTMillis: 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer phone.Close()
	phone.InstallApp(1, "bench.app")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := phone.Connect(1, "203.0.113.50:80")
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// BenchmarkRelayEcho measures a small request/response exchange through
// the relay.
func BenchmarkRelayEcho(b *testing.B) {
	phone, err := mopeye.New(mopeye.Options{
		Servers: []mopeye.Server{{Domain: "bench.example", Addr: "203.0.113.51:80", RTTMillis: 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer phone.Close()
	phone.InstallApp(1, "bench.app")
	conn, err := phone.Connect(1, "203.0.113.51:80")
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("0123456789abcdef")
	buf := make([]byte, len(msg))
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(msg); err != nil {
			b.Fatal(err)
		}
		if err := conn.ReadFull(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineParallel sweeps the engine's worker counts under a
// multi-app packet flood — the scaling workload the single-phone paper
// never exercises. The custom metrics carry relay throughput per
// worker count; on a multi-core host Workers=4 should clearly beat
// Workers=1, while Workers=1 is the paper-faithful MainWorker loop.
func BenchmarkEngineParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := mopeye.DefaultParallelBenchOptions()
			o.WorkerCounts = []int{w}
			var pktsPerSec float64
			var pkts int
			for i := 0; i < b.N; i++ {
				res, err := mopeye.RunParallelBench(o)
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				if row.Errors > 0 {
					b.Fatalf("flood errors: %d", row.Errors)
				}
				pktsPerSec = row.PacketsPerSec
				pkts = row.Packets
			}
			b.ReportMetric(pktsPerSec, "pkts/sec")
			b.ReportMetric(float64(pkts), "pkts/run")
		})
	}
}

// BenchmarkEngineCeiling sweeps worker counts over a zero-delay
// loopback network (netsim.SetLoopback): no simulated wire delay
// anywhere, so pkts/sec is the engine's own ceiling — dispatch (the
// PeekFlowKey fast path), flow table, relay handlers, pooled UDP —
// rather than the path. Compare with BenchmarkEngineParallel, which
// runs the same flood over a 1 ms simulated RTT.
func BenchmarkEngineCeiling(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := mopeye.DefaultDispatchBenchOptions()
			o.WorkerCounts = []int{w}
			var pktsPerSec float64
			var udpRelayed int
			for i := 0; i < b.N; i++ {
				res, err := mopeye.RunDispatchBench(o)
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				if row.Errors > 0 {
					b.Fatalf("flood errors: %d", row.Errors)
				}
				pktsPerSec = row.PacketsPerSec
				udpRelayed = row.UDPRelayed
			}
			b.ReportMetric(pktsPerSec, "pkts/sec")
			b.ReportMetric(float64(udpRelayed), "udp/run")
		})
	}
}

// BenchmarkEngineCeilingReadBatch ablates the batched TUN read path at
// Workers=4: readbatch=1 is the PR 2 behaviour (per-packet retrieval,
// per-packet queue locks), larger bursts amortise the TUN queue, the
// per-worker ring pushes, and the batched tunnel writes. The pkts/sec
// gap is what the batching layer itself buys at the engine ceiling.
func BenchmarkEngineCeilingReadBatch(b *testing.B) {
	for _, rb := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("readbatch=%d", rb), func(b *testing.B) {
			o := mopeye.DefaultDispatchBenchOptions()
			o.WorkerCounts = []int{4}
			o.ReadBatch = rb
			var pktsPerSec float64
			for i := 0; i < b.N; i++ {
				res, err := mopeye.RunDispatchBench(o)
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				if row.Errors > 0 {
					b.Fatalf("flood errors: %d", row.Errors)
				}
				pktsPerSec = row.PacketsPerSec
			}
			b.ReportMetric(pktsPerSec, "pkts/sec")
		})
	}
}

// BenchmarkEngineCeilingDispatcher is the shared-nothing ablation at
// Workers=4: "shared" is the PR 3 topology (one selector drained by a
// dispatcher goroutine routing readiness into per-worker event lanes),
// "sharded" the per-worker selectors where readiness lands directly on
// the owning worker. The pkts/sec gap is what removing the last shared
// hot-path stage buys.
func BenchmarkEngineCeilingDispatcher(b *testing.B) {
	for _, arm := range []struct {
		name   string
		shared bool
	}{{"sharded", false}, {"shared", true}} {
		b.Run(arm.name, func(b *testing.B) {
			o := mopeye.DefaultDispatchBenchOptions()
			o.WorkerCounts = []int{4}
			o.SharedDispatcher = arm.shared
			var pktsPerSec float64
			for i := 0; i < b.N; i++ {
				res, err := mopeye.RunDispatchBench(o)
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				if row.Errors > 0 {
					b.Fatalf("flood errors: %d", row.Errors)
				}
				pktsPerSec = row.PacketsPerSec
			}
			b.ReportMetric(pktsPerSec, "pkts/sec")
		})
	}
}

// BenchmarkEngineCeilingAdaptiveBatch races the AIMD burst governor
// against pinned burst sizes at Workers=4. Under the sustained
// loopback flood the governor should converge to the ceiling within
// the first bursts, so "auto" must land within noise of the best fixed
// batch; the avg-batch metric shows where it settled.
func BenchmarkEngineCeilingAdaptiveBatch(b *testing.B) {
	for _, arm := range []struct {
		name string
		rb   int
		auto bool
	}{{"fixed=4", 4, false}, {"fixed=64", 64, false}, {"auto", 0, true}} {
		b.Run(arm.name, func(b *testing.B) {
			o := mopeye.DefaultDispatchBenchOptions()
			o.WorkerCounts = []int{4}
			o.ReadBatch = arm.rb
			o.ReadBatchAuto = arm.auto
			var pktsPerSec, avgBatch float64
			for i := 0; i < b.N; i++ {
				res, err := mopeye.RunDispatchBench(o)
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				if row.Errors > 0 {
					b.Fatalf("flood errors: %d", row.Errors)
				}
				pktsPerSec = row.PacketsPerSec
				avgBatch = row.AvgReadBatch
			}
			b.ReportMetric(pktsPerSec, "pkts/sec")
			b.ReportMetric(avgBatch, "avg-batch")
		})
	}
}

// BenchmarkSubscribeOverhead is the streaming pipeline's ceiling
// guard: the Workers=4 loopback flood with 0, 1 and 8 live
// measurement subscribers attached. subs=0 is the zero-subscriber
// publish path (allocation-free, pinned by measure's 0-allocs test)
// and must sit within noise of BenchmarkEngineCeiling/workers=4 — the
// broadcast layer may not tax an engine nobody is listening to. The
// subs=1/8 rows record what bounded fan-out costs when someone is.
func BenchmarkSubscribeOverhead(b *testing.B) {
	for _, subs := range []int{0, 1, 8} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			o := mopeye.DefaultDispatchBenchOptions()
			o.WorkerCounts = []int{4}
			o.Subscribers = subs
			var pktsPerSec float64
			var streamed, dropped int
			for i := 0; i < b.N; i++ {
				res, err := mopeye.RunDispatchBench(o)
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				if row.Errors > 0 {
					b.Fatalf("flood errors: %d", row.Errors)
				}
				pktsPerSec = row.PacketsPerSec
				streamed = row.Streamed
				dropped = row.StreamDropped
			}
			b.ReportMetric(pktsPerSec, "pkts/sec")
			b.ReportMetric(float64(streamed), "streamed/run")
			b.ReportMetric(float64(dropped), "stream-drops/run")
		})
	}
}

// BenchmarkFleetFanIn prices the crowdsourcing wire: an 8-phone fleet
// runs the same echo workload with its Collectors uploading in-process
// (PR 4's ceiling — no wire at all) and over HTTP into a local
// collector server (batch encoding, idempotency keys, bounded upload
// queue, server-side dedup and spool-less accept path). The custom
// metrics carry records/sec per mode; the http/inproc gap is what the
// wire protocol costs at fan-in. The run fails if the server's record
// count ever diverges from what the fleet uploaded.
func BenchmarkFleetFanIn(b *testing.B) {
	for _, mode := range []string{"inproc", "http"} {
		b.Run(mode, func(b *testing.B) {
			o := mopeye.DefaultFleetBenchOptions()
			o.Modes = []string{mode}
			var row *mopeye.FleetBenchRow
			for i := 0; i < b.N; i++ {
				res, err := mopeye.RunFleetBench(o)
				if err != nil {
					b.Fatal(err)
				}
				row = res.Row(mode)
			}
			b.ReportMetric(row.RecordsPerSec, "recs/sec")
			b.ReportMetric(float64(row.Records), "recs/run")
			b.ReportMetric(float64(row.Uploads), "batches/run")
		})
	}
}

// BenchmarkAblationConnectLatency compares the app-observed connect
// latency across engine variants — the ablation DESIGN.md calls out:
// MopEye's defaults vs the ToyVpn-style unoptimised relay vs the
// Haystack-style poll-based relay.
func BenchmarkAblationConnectLatency(b *testing.B) {
	variants := []struct {
		name string
		cfg  func() engineConfig
	}{
		{"mopeye", func() engineConfig { return engineDefault() }},
		{"toyvpn", func() engineConfig {
			c := engineToyVpn()
			c.PollInterval = 20 * time.Millisecond
			return c
		}},
		{"haystack", func() engineConfig { return haystackConfig() }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := v.cfg()
			phone, err := mopeye.New(mopeye.Options{
				Servers: []mopeye.Server{{Domain: "abl.example", Addr: "203.0.113.60:80", RTTMillis: 10}},
				Engine:  &cfg,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer phone.Close()
			phone.InstallApp(1, "abl.app")
			var total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				conn, err := phone.Connect(1, "203.0.113.60:80")
				if err != nil {
					b.Fatal(err)
				}
				total += conn.ConnectLatency()
				conn.Close()
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "connect-ms")
		})
	}
}
