// Command speedtest reproduces Table 3 live: download and upload
// throughput on a dedicated 25 Mbps link measured three ways — without
// any relay, through MopEye, and through a Haystack-style poll-based
// relay — showing that MopEye's blocking-read, event-driven design
// costs almost nothing while the poll-based design collapses the
// upload path.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/mopeye"
)

func main() {
	duration := flag.Duration("duration", 2*time.Second, "length of each throughput run")
	mbps := flag.Float64("mbps", 25, "link rate in Mbps")
	flag.Parse()

	o := mopeye.DefaultTable3Options()
	o.Duration = *duration
	o.LinkMbps = *mbps

	fmt.Printf("speedtest on a %.0f Mbps link, %v per direction...\n\n", *mbps, *duration)
	res, err := mopeye.RunTable3(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("\nMopEye loses %.2f Mbps down / %.2f Mbps up (paper: 0.46 / 0.89).\n",
		res.DeltaMopEyeDown(), res.DeltaMopEyeUp())
	fmt.Printf("The poll-based relay loses %.2f / %.2f (paper: 4.28 / 19.18).\n",
		res.DeltaHaystackDown(), res.DeltaHaystackUp())
}
