// Command apptraffic demonstrates the beyond-RTT metric extension the
// paper's conclusion proposes: per-app traffic volumes, collected with
// the same zero-overhead opportunism as the RTT measurements — the
// engine is already relaying every byte, so attribution is free.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/mopeye"
)

func main() {
	phone, err := mopeye.New(mopeye.Options{
		Servers: []mopeye.Server{
			{Domain: "stream.example.com", RTTMillis: 30, Behaviour: mopeye.Chatty},
			{Domain: "chat.example.com", RTTMillis: 80, Behaviour: mopeye.Chatty},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer phone.Close()
	phone.InstallApp(10001, "com.example.video")
	phone.InstallApp(10002, "com.example.chat")

	// The video app pulls a few hundred KiB; the chat app exchanges a
	// few small messages.
	video, err := phone.Connect(10001, "stream.example.com:443")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := video.Write([]byte{0, 1, 0, 0}); err != nil { // request 64 KiB
			log.Fatal(err)
		}
		buf := make([]byte, 65536)
		if err := video.ReadFull(buf); err != nil {
			log.Fatal(err)
		}
	}
	video.Close()

	chat, err := phone.Connect(10002, "chat.example.com:443")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := chat.Write([]byte{0, 0, 0, 64}); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, 64)
		if err := chat.ReadFull(buf); err != nil {
			log.Fatal(err)
		}
	}
	chat.Close()

	time.Sleep(150 * time.Millisecond)

	fmt.Println("per-app traffic (opportunistic, zero probe overhead):")
	fmt.Printf("  %-22s %6s %12s %12s %6s\n", "app", "conns", "up", "down", "dns")
	for _, a := range phone.AppTraffic() {
		fmt.Printf("  %-22s %6d %10dB %10dB %6d\n",
			a.App, a.Connections, a.BytesUp, a.BytesDown, a.DNSQueries)
	}
	fmt.Println("\nper-app RTT medians (ms):")
	for app, med := range phone.AppMedians(1) {
		fmt.Printf("  %-22s %6.1f\n", app, med)
	}
}
