// Command crowdreport generates a scaled replica of the paper's
// crowdsourced dataset (§4.2) and prints every analysis: dataset
// statistics, Figures 6–11, Tables 5–6, and both case studies.
package main

import (
	"flag"
	"fmt"

	"repro/mopeye"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = the paper's 5.25M measurements)")
	seed := flag.Int64("seed", 2016, "generator seed")
	flag.Parse()

	study := mopeye.NewStudy(*scale, *seed)
	fmt.Println(study.ReportAll())
}
