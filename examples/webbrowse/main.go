// Command webbrowse drives a browsing-style workload — pages of
// concurrent connections preceded by DNS lookups — through MopEye with
// the Android cost models enabled, then reports what §3.3's lazy
// packet-to-app mapping saved: how many proc-file parses the elected-
// parser scheme avoided, and the per-SYN mapping overhead that remains.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/mopeye"
)

func main() {
	phone, err := mopeye.New(mopeye.Options{
		Servers: []mopeye.Server{
			{Domain: "news.example.com", RTTMillis: 35, Behaviour: mopeye.Chatty},
			{Domain: "static.example.com", RTTMillis: 18, Behaviour: mopeye.Chatty},
		},
		RealisticCosts: true, // Android-like parse/protect/register costs
	})
	if err != nil {
		log.Fatal(err)
	}
	defer phone.Close()
	phone.InstallApp(10050, "com.android.chrome")

	const pages, perPage = 10, 6
	start := time.Now()
	for p := 0; p < pages; p++ {
		if _, err := phone.Resolve(10050, "news.example.com"); err != nil {
			log.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < perPage; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				host := "news.example.com:443"
				if c%2 == 1 {
					host = "static.example.com:443"
				}
				conn, err := phone.Connect(10050, host)
				if err != nil {
					return
				}
				defer conn.Close()
				// Fetch a 4 KiB object.
				if _, err := conn.Write([]byte{0, 0, 0x10, 0}); err != nil {
					return
				}
				buf := make([]byte, 4096)
				_ = conn.ReadFull(buf)
			}(c)
		}
		wg.Wait()
	}
	elapsed := time.Since(start)
	time.Sleep(150 * time.Millisecond)

	st := phone.EngineStats()
	fmt.Printf("browsed %d pages (%d connections) in %v\n", pages, pages*perPage, elapsed.Round(time.Millisecond))
	fmt.Printf("engine: %d SYNs, %d established, %d tunnel packets in, %d out\n",
		st.SYNs, st.Established, st.PacketsFromTun, st.PacketsToTun)
	fmt.Printf("\nlazy packet-to-app mapping (§3.3):\n")
	fmt.Printf("  resolutions: %d\n", st.Mapping.Resolutions)
	fmt.Printf("  proc parses performed: %d\n", st.Mapping.Parses)
	fmt.Printf("  parses avoided: %d (mitigation rate %.1f%%; paper reports 67.8%%)\n",
		st.Mapping.Avoided, st.Mapping.MitigationRate()*100)

	fmt.Printf("\nper-app medians:\n")
	for app, med := range phone.AppMedians(1) {
		fmt.Printf("  %-22s %6.1f ms\n", app, med)
	}
}
