// Example fleet runs the paper's deployment shape end to end, in one
// process: a collector server (the same handler cmd/collectord
// serves), a fleet of phones with heterogeneous network profiles
// uploading over HTTP — batched, idempotency-keyed, retried — and the
// §4.2 analysis run against what the server actually received.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/crowd"
	"repro/mopeye"
)

func main() {
	phones := flag.Int("phones", 4, "fleet size")
	conns := flag.Int("conns", 6, "connections per phone")
	flag.Parse()

	// The collector side: cmd/collectord in miniature.
	srv, err := crowd.NewServer(crowd.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	transport := mopeye.NewHTTPTransport(ts.URL, mopeye.HTTPTransportOptions{})

	// The phone side: each phone has its own RTT profile and seed.
	roster := make([]mopeye.FleetPhone, *phones)
	for i := range roster {
		i := i
		addr := fmt.Sprintf("203.0.113.%d:443", 100+i)
		uid := 10001 + i
		roster[i] = mopeye.FleetPhone{
			Device: fmt.Sprintf("example-phone-%d", i+1),
			Options: mopeye.Options{
				Servers: []mopeye.Server{{
					Domain:    fmt.Sprintf("api%d.example.com", i),
					Addr:      addr,
					RTTMillis: float64(20 + 15*i),
				}},
				Seed: int64(i + 1),
			},
			Apps: map[int]string{uid: fmt.Sprintf("com.example.app%d", i)},
			Workload: func(ctx context.Context, p *mopeye.Phone) error {
				for c := 0; c < *conns; c++ {
					conn, err := p.Connect(uid, addr)
					if err != nil {
						return err
					}
					conn.Write([]byte("hello"))
					conn.Close()
				}
				return nil
			},
		}
	}

	fleet, err := mopeye.NewFleet(mopeye.FleetOptions{
		Phones:    roster,
		Transport: transport,
		Collector: mopeye.CollectorOptions{BatchSize: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := fleet.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := transport.Close(); err != nil {
		log.Fatal(err)
	}

	st := fleet.Stats()
	ss := srv.Stats()
	fmt.Printf("fleet: %d phones uploaded %d records in %d batches over HTTP (%v)\n",
		st.Phones, st.Records, st.Uploads, st.Duration.Round(1e6))
	fmt.Printf("collector server: %d records in %d batches (%d duplicates absorbed)\n\n",
		ss.Records, ss.Batches, ss.Duplicates)
	fmt.Println(mopeye.NewStudyFrom(srv.Records()).Summary())
}
