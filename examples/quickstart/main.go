// Command quickstart is the smallest end-to-end MopEye run: one app,
// two servers, a handful of connections — and the per-app RTT
// measurements MopEye collected opportunistically while relaying them.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/mopeye"
)

func main() {
	phone, err := mopeye.New(mopeye.Options{
		Servers: []mopeye.Server{
			{Domain: "api.example.com", RTTMillis: 42},
			{Domain: "cdn.example.com", RTTMillis: 9},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer phone.Close()

	phone.InstallApp(10001, "com.example.messenger")
	phone.InstallApp(10002, "com.example.browser")

	// App traffic: MopEye measures each connect() opportunistically —
	// no probe packets are ever sent.
	for i := 0; i < 3; i++ {
		conn, err := phone.Connect(10001, "api.example.com:443")
		if err != nil {
			log.Fatal(err)
		}
		msg := []byte("ping over the relay")
		if _, err := conn.Write(msg); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, len(msg))
		if err := conn.ReadFull(buf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("messenger exchange %d ok (app saw connect in %v)\n", i+1, conn.ConnectLatency().Round(time.Millisecond))
		conn.Close()
	}
	for i := 0; i < 2; i++ {
		conn, err := phone.Connect(10002, "cdn.example.com:443")
		if err != nil {
			log.Fatal(err)
		}
		conn.Close()
	}

	// Give the asynchronous measurement records a moment to land.
	time.Sleep(100 * time.Millisecond)

	fmt.Println("\nPer-app opportunistic measurements:")
	for _, m := range phone.TCPMeasurements() {
		fmt.Printf("  %-24s -> %-21s %6.1f ms\n", m.App, m.Dst, m.RTT.Seconds()*1000)
	}
	fmt.Println("\nDNS measurements:")
	for _, m := range phone.DNSMeasurements() {
		fmt.Printf("  %-24s -> %-21s %6.1f ms\n", m.Domain, m.Dst, m.RTT.Seconds()*1000)
	}
	fmt.Println("\nPer-app medians (ms):")
	for app, med := range phone.AppMedians(1) {
		fmt.Printf("  %-24s %6.1f\n", app, med)
	}
}
