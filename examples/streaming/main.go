// Command streaming demonstrates the push half of the MopEye API: a
// live Subscribe stream printing measurements as the engine records
// them, and a crowdsourcing Collector attached as an engine-lifetime
// sink — batching uploads the way the deployed app does and feeding
// the uploaded dataset straight into the §4.2 analysis pipeline.
// Measure once, analyze with the same code that processes the paper's
// 5.25M-record study.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro/mopeye"
)

func main() {
	phone, err := mopeye.New(mopeye.Options{
		Servers: []mopeye.Server{
			{Domain: "api.example.com", RTTMillis: 42},
			{Domain: "cdn.example.com", RTTMillis: 9},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	phone.InstallApp(10001, "com.example.messenger")
	phone.InstallApp(10002, "com.example.browser")

	// The Collector is the crowdsourcing server stand-in: it batches
	// the phone's measurements (here every 5 records) and keeps the
	// server-side per-app aggregate. Attach ties it to the engine's
	// lifetime — Close performs the final upload.
	collector := mopeye.NewCollector(mopeye.CollectorOptions{
		BatchSize: 5,
		Device:    "device-demo",
	})
	if _, err := phone.Attach(collector); err != nil {
		log.Fatal(err)
	}

	// A live subscription: every measurement, as it happens, until the
	// phone closes. Subscribe registers before returning, so nothing
	// the workload below produces is missed; cancel the context to
	// detach early instead.
	stream := phone.Subscribe(context.Background(), mopeye.Filter{})
	var tail sync.WaitGroup
	tail.Add(1)
	go func() {
		defer tail.Done()
		for m := range stream {
			fmt.Printf("live: %-4s %-24s -> %-21s %6.1f ms\n",
				m.Kind, m.App, m.Dst, m.RTT.Seconds()*1000)
		}
		fmt.Println("live: stream closed")
	}()

	// App traffic; measurements fall out opportunistically.
	for i := 0; i < 4; i++ {
		conn, err := phone.Connect(10001, "api.example.com:443")
		if err != nil {
			log.Fatal(err)
		}
		conn.Close()
	}
	for i := 0; i < 3; i++ {
		conn, err := phone.Connect(10002, "cdn.example.com:443")
		if err != nil {
			log.Fatal(err)
		}
		conn.Close()
	}

	// Close flushes the collector's final batch and ends the stream
	// after its last measurement — no sleep-and-hope draining.
	phone.Close()
	tail.Wait()

	fmt.Printf("\ncollector: %d uploads, %d records (dropped in transit: %d)\n",
		collector.Uploads(), len(collector.Records()), phone.StreamDrops())
	fmt.Println("server-side per-app medians (ms):")
	for app, med := range collector.AppMedians() {
		fmt.Printf("  %-24s %6.1f\n", app, med)
	}

	// The uploaded dataset flows into the §4.2 analysis unchanged.
	study := collector.Study()
	fmt.Printf("\n%s\n", study.Summary())
}
