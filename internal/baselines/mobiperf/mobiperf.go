// Package mobiperf reimplements the measurement *methodology* of
// MobiPerf v3.4.0's HTTP ping (via the Mobilyzer library), the active
// baseline of Table 2.
//
// §4.1.1 attributes MobiPerf's 12–79 ms overestimation to three
// concrete implementation choices, each modelled explicitly here:
//
//  1. it measures through a high-level HTTP request rather than a
//     low-level socket call, so connection-machinery work precedes the
//     SYN (PreCost);
//  2. it uses millisecond-level timestamps (Quantum), versus MopEye's
//     nanosecond clock; and
//  3. the timing functions are not placed immediately around the socket
//     call — scheduler and event-loop work lands inside the measured
//     window (PostCost).
//
// MopEye's numbers in Table 2 come from the real engine; this package
// exists so the comparison row can be regenerated.
package mobiperf

import (
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/sockets"
)

// Model holds the inaccuracy sources.
type Model struct {
	// PreCost is HTTP-stack work between the "before" timestamp and the
	// actual connect (URL/request object setup, thread dispatch).
	PreCost func(*rand.Rand) time.Duration
	// PostCost is work between SYN-ACK arrival and the "after"
	// timestamp (response future completion, executor hop).
	PostCost func(*rand.Rand) time.Duration
	// Quantum is the timestamp granularity (1 ms on MobiPerf, which
	// used System.currentTimeMillis-level timing).
	Quantum time.Duration
}

// V340 models MobiPerf v3.4.0: costs calibrated to reproduce Table 2's
// deviation band (about +12 ms on short paths, growing with load and
// RTT toward +80 ms on long ones).
func V340() Model {
	return Model{
		PreCost: func(r *rand.Rand) time.Duration {
			return 4*time.Millisecond + time.Duration(r.Int63n(int64(8*time.Millisecond)))
		},
		PostCost: func(r *rand.Rand) time.Duration {
			return 5*time.Millisecond + time.Duration(r.Int63n(int64(14*time.Millisecond)))
		},
		Quantum: time.Millisecond,
	}
}

// Pinger issues HTTP-ping RTT measurements.
type Pinger struct {
	prov  *sockets.Provider
	clk   clock.Clock
	model Model

	mu  sync.Mutex
	rng *rand.Rand
}

// New creates a pinger over a socket provider (MobiPerf runs as a plain
// app: no VPN, direct sockets).
func New(prov *sockets.Provider, clk clock.Clock, model Model, seed int64) *Pinger {
	return &Pinger{prov: prov, clk: clk, model: model, rng: rand.New(rand.NewSource(seed))}
}

func (p *Pinger) draw(f func(*rand.Rand) time.Duration) time.Duration {
	if f == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return f(p.rng)
}

func (p *Pinger) quantize(nanos int64) int64 {
	q := int64(p.model.Quantum)
	if q <= 0 {
		return nanos
	}
	return nanos / q * q
}

// Ping measures one RTT to dst using the HTTP-ping method: the reported
// value includes the modelled pre/post costs and timestamp quantisation.
// Like the paper's methodology, the destination is a raw IP so DNS does
// not interfere.
func (p *Pinger) Ping(dst netip.AddrPort) (time.Duration, error) {
	t0 := p.quantize(p.clk.Nanos())
	// (1) + (3): HTTP machinery runs inside the timed window.
	p.clk.Sleep(p.draw(p.model.PreCost))
	ch := p.prov.Open()
	defer ch.Close()
	if err := ch.Connect(dst); err != nil {
		return 0, err
	}
	// (3): the response is observed after an executor hop.
	p.clk.Sleep(p.draw(p.model.PostCost))
	t1 := p.quantize(p.clk.Nanos())
	return time.Duration(t1 - t0), nil
}

// PingN runs n pings and returns the RTTs in milliseconds (MobiPerf
// reports only the mean of its runs; the caller aggregates).
func (p *Pinger) PingN(dst netip.AddrPort, n int) ([]float64, error) {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		rtt, err := p.Ping(dst)
		if err != nil {
			return out, err
		}
		out = append(out, rtt.Seconds()*1000)
	}
	return out, nil
}
