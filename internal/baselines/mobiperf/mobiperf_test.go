package mobiperf

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/baselines/sniffer"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sockets"
	"repro/internal/stats"
)

var target = netip.MustParseAddrPort("216.58.221.132:80")

func setup(t *testing.T) (*Pinger, *sniffer.Sniffer) {
	t.Helper()
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: 5 * time.Millisecond}, 1)
	t.Cleanup(net.Close)
	net.HandleTCP(target, netsim.HTTPPingHandler())
	snf := sniffer.New(net)
	prov := sockets.NewProvider(net, clk, netip.MustParseAddr("100.64.0.5"), sockets.ZeroCosts(), 2)
	return New(prov, clk, V340(), 3), snf
}

func TestPingOverestimates(t *testing.T) {
	p, snf := setup(t)
	samples, err := p.PingN(target, 10)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(samples)
	truth := stats.Mean(snf.RTTsTo(target))
	delta := mean - truth
	// §4.1.1: MobiPerf's deviations run 12–79 ms above tcpdump.
	if delta < 8 {
		t.Errorf("MobiPerf delta %.1f ms implausibly small (paper: 12–79)", delta)
	}
	if delta > 90 {
		t.Errorf("MobiPerf delta %.1f ms beyond the paper's band", delta)
	}
}

func TestQuantization(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: 2 * time.Millisecond}, 1)
	defer net.Close()
	net.HandleTCP(target, netsim.HTTPPingHandler())
	prov := sockets.NewProvider(net, clk, netip.MustParseAddr("100.64.0.5"), sockets.ZeroCosts(), 2)
	// Zero costs, only quantisation: results must be whole milliseconds.
	m := Model{Quantum: time.Millisecond}
	p := New(prov, clk, m, 3)
	rtt, err := p.Ping(target)
	if err != nil {
		t.Fatal(err)
	}
	if rtt%time.Millisecond != 0 {
		t.Errorf("RTT %v not quantised to ms", rtt)
	}
}

func TestPingFailurePropagates(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: time.Millisecond}, 1)
	defer net.Close()
	prov := sockets.NewProvider(net, clk, netip.MustParseAddr("100.64.0.5"), sockets.ZeroCosts(), 2)
	p := New(prov, clk, V340(), 3)
	if _, err := p.Ping(target); err == nil {
		t.Error("ping to refused port succeeded")
	}
}
