// Package sniffer is the tcpdump stand-in: it taps the simulated
// network at the phone's interface and derives ground-truth RTTs by
// pairing each connection's SYN with its SYN-ACK, exactly how the paper
// validates MopEye's accuracy (§4.1.1, Table 2).
package sniffer

import (
	"net/netip"
	"sync"
	"time"

	"repro/internal/netsim"
)

// Sample is one ground-truth handshake RTT.
type Sample struct {
	Local  netip.AddrPort
	Remote netip.AddrPort
	SYNAt  int64
	RTT    time.Duration
}

// flowKey identifies one handshake in flight. Keying pending SYNs by
// the (local, remote) pair — not local alone — keeps two overlapping
// handshakes from the same local port (a close/redial, or concurrent
// dials to different servers) from pairing one connection's SYN with
// the other's SYN-ACK.
type flowKey struct {
	local  netip.AddrPort
	remote netip.AddrPort
}

// Sniffer records wire events and pairs handshakes.
type Sniffer struct {
	mu      sync.Mutex
	pending map[flowKey]int64 // flow -> SYN time (latest attempt)
	samples []Sample
	events  []netsim.WireEvent
	keepAll bool
}

// New creates a sniffer and attaches it to the network.
func New(n *netsim.Network) *Sniffer {
	s := &Sniffer{pending: make(map[flowKey]int64)}
	n.AddSniffer(s.observe)
	return s
}

// KeepEvents retains the full event trace (like writing a pcap), not
// just handshake samples.
func (s *Sniffer) KeepEvents() { s.mu.Lock(); s.keepAll = true; s.mu.Unlock() }

func (s *Sniffer) observe(ev netsim.WireEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.keepAll {
		s.events = append(s.events, ev)
	}
	key := flowKey{local: ev.Local, remote: ev.Remote}
	switch ev.Kind {
	case netsim.EventSYN:
		// A retransmitted SYN overwrites the earlier timestamp: tcpdump
		// users pair the SYN-ACK with the SYN that elicited it.
		s.pending[key] = ev.At
	case netsim.EventSYNACK:
		if at, ok := s.pending[key]; ok {
			delete(s.pending, key)
			s.samples = append(s.samples, Sample{
				Local:  ev.Local,
				Remote: ev.Remote,
				SYNAt:  at,
				RTT:    time.Duration(ev.At - at),
			})
		}
	case netsim.EventRST:
		delete(s.pending, key)
	}
}

// Samples returns all handshake RTTs observed so far.
func (s *Sniffer) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// RTTsTo returns the RTTs of handshakes to one destination, in
// milliseconds.
func (s *Sniffer) RTTsTo(remote netip.AddrPort) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []float64
	for _, smp := range s.samples {
		if smp.Remote == remote {
			out = append(out, smp.RTT.Seconds()*1000)
		}
	}
	return out
}

// Events returns the retained trace (empty unless KeepEvents was
// called).
func (s *Sniffer) Events() []netsim.WireEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]netsim.WireEvent(nil), s.events...)
}
