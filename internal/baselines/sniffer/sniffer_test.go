package sniffer

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
)

var (
	client = netip.MustParseAddrPort("100.64.0.5:40000")
	server = netip.MustParseAddrPort("93.184.216.34:80")
)

func TestHandshakePairing(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: 3 * time.Millisecond}, 1)
	defer net.Close()
	net.HandleTCP(server, netsim.EchoHandler())
	s := New(net)
	c, err := net.Dial(client, server)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	samples := s.Samples()
	if len(samples) != 1 {
		t.Fatalf("samples: %d", len(samples))
	}
	if samples[0].Remote != server {
		t.Errorf("remote: %v", samples[0].Remote)
	}
	ms := samples[0].RTT.Seconds() * 1000
	if ms < 6 || ms > 40 {
		t.Errorf("RTT %.2f ms, configured 6", ms)
	}
	if got := s.RTTsTo(server); len(got) != 1 {
		t.Errorf("RTTsTo: %v", got)
	}
}

func TestRefusedConnectionNotPaired(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: time.Millisecond}, 1)
	defer net.Close()
	s := New(net)
	if _, err := net.Dial(client, server); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if got := s.Samples(); len(got) != 0 {
		t.Errorf("refused connect produced samples: %v", got)
	}
}

func TestRetransmittedSYNUsesLatestAttempt(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: time.Millisecond, Loss: 0.6}, 5)
	defer net.Close()
	net.SetSYNRetry(5*time.Millisecond, 20)
	net.HandleTCP(server, netsim.EchoHandler())
	s := New(net)
	c, err := net.Dial(client, server)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	samples := s.Samples()
	if len(samples) != 1 {
		t.Fatalf("samples: %d", len(samples))
	}
	// The RTT must reflect one handshake, not the whole retry sequence
	// (each retry costs a 5 ms RTO on top of the 2 ms RTT).
	if samples[0].RTT > 4*time.Millisecond+2*time.Millisecond*10 {
		t.Errorf("paired across retransmissions: %v", samples[0].RTT)
	}
}

func TestKeepEvents(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: time.Millisecond}, 1)
	defer net.Close()
	net.HandleTCP(server, netsim.EchoHandler())
	s := New(net)
	s.KeepEvents()
	c, err := net.Dial(client, server)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Write([]byte("x"))
	c.Close()
	time.Sleep(5 * time.Millisecond)
	evs := s.Events()
	if len(evs) < 3 { // SYN, SYN-ACK, data
		t.Errorf("events: %d", len(evs))
	}
	if evs[0].Kind != netsim.EventSYN {
		t.Errorf("first event: %v", evs[0].Kind)
	}
}
