package sniffer

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
)

var (
	client = netip.MustParseAddrPort("100.64.0.5:40000")
	server = netip.MustParseAddrPort("93.184.216.34:80")
)

func TestHandshakePairing(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: 3 * time.Millisecond}, 1)
	defer net.Close()
	net.HandleTCP(server, netsim.EchoHandler())
	s := New(net)
	c, err := net.Dial(client, server)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	samples := s.Samples()
	if len(samples) != 1 {
		t.Fatalf("samples: %d", len(samples))
	}
	if samples[0].Remote != server {
		t.Errorf("remote: %v", samples[0].Remote)
	}
	ms := samples[0].RTT.Seconds() * 1000
	if ms < 6 || ms > 40 {
		t.Errorf("RTT %.2f ms, configured 6", ms)
	}
	if got := s.RTTsTo(server); len(got) != 1 {
		t.Errorf("RTTsTo: %v", got)
	}
}

func TestRefusedConnectionNotPaired(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: time.Millisecond}, 1)
	defer net.Close()
	s := New(net)
	if _, err := net.Dial(client, server); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if got := s.Samples(); len(got) != 0 {
		t.Errorf("refused connect produced samples: %v", got)
	}
}

func TestRetransmittedSYNUsesLatestAttempt(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: time.Millisecond, Loss: 0.6}, 5)
	defer net.Close()
	net.SetSYNRetry(5*time.Millisecond, 20)
	net.HandleTCP(server, netsim.EchoHandler())
	s := New(net)
	c, err := net.Dial(client, server)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	samples := s.Samples()
	if len(samples) != 1 {
		t.Fatalf("samples: %d", len(samples))
	}
	// The RTT must reflect one handshake, not the whole retry sequence
	// (each retry costs a 5 ms RTO on top of the 2 ms RTT).
	if samples[0].RTT > 4*time.Millisecond+2*time.Millisecond*10 {
		t.Errorf("paired across retransmissions: %v", samples[0].RTT)
	}
}

// Regression for the pending-map key: two handshakes from the same
// local port overlapping in time (dial to a slow server, then to a
// fast one before the first completes) must each pair with their own
// SYN-ACK. Keyed by local address alone, the fast server's SYN
// overwrote the slow server's pending timestamp and the slow SYN-ACK
// found nothing to pair with.
func TestOverlappingDialsPairPerFlow(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: time.Millisecond}, 1)
	defer net.Close()
	slow := netip.MustParseAddrPort("93.184.216.40:80")
	fast := netip.MustParseAddrPort("93.184.216.41:80")
	net.SetLink(slow.Addr(), netsim.LinkParams{Delay: 25 * time.Millisecond})
	net.SetLink(fast.Addr(), netsim.LinkParams{Delay: time.Millisecond})
	net.HandleTCP(slow, netsim.EchoHandler())
	net.HandleTCP(fast, netsim.EchoHandler())
	s := New(net)

	done := make(chan *netsim.Conn, 1)
	go func() {
		c, err := net.Dial(client, slow) // 50ms handshake
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- c
	}()
	time.Sleep(10 * time.Millisecond) // slow SYN is on the wire
	cf, err := net.Dial(client, fast) // overlaps: same local, other remote
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	cs := <-done
	if cs != nil {
		defer cs.Close()
	}

	if got := s.RTTsTo(fast); len(got) != 1 || got[0] > 20 {
		t.Errorf("fast flow samples = %v, want one ≈2ms sample", got)
	}
	if got := s.RTTsTo(slow); len(got) != 1 || got[0] < 40 {
		t.Errorf("slow flow samples = %v, want one ≈50ms sample (not mispaired with the fast handshake)", got)
	}
}

func TestKeepEvents(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: time.Millisecond}, 1)
	defer net.Close()
	net.HandleTCP(server, netsim.EchoHandler())
	s := New(net)
	s.KeepEvents()
	c, err := net.Dial(client, server)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Write([]byte("x"))
	c.Close()
	time.Sleep(5 * time.Millisecond)
	evs := s.Events()
	if len(evs) < 3 { // SYN, SYN-ACK, data
		t.Errorf("events: %d", len(evs))
	}
	if evs[0].Kind != netsim.EventSYN {
		t.Errorf("first event: %v", evs[0].Kind)
	}
}
