package haystack

import (
	"testing"

	"repro/internal/engine"
)

func TestConfigIsThePollBasedAblation(t *testing.T) {
	c := Config()
	if c.ReadMode != engine.ReadPoll {
		t.Error("tunnel reads must be poll-based (§3.1 contrast)")
	}
	if c.MainLoopPoll <= 0 {
		t.Error("main loop must be poll-cycled (Table 3 mechanism)")
	}
	if c.WriteScheme != engine.DirectWrite {
		t.Error("writes must be direct (§3.5.1 contrast)")
	}
	if c.Mapping != engine.MapCache {
		t.Error("mapping must be cache-based (§3.3 contrast)")
	}
	if c.Protect != engine.ProtectPerSocket {
		t.Error("protect must be per-socket (§3.5.2 contrast)")
	}
	if !c.InspectPackets || c.PerPacketCost <= 0 {
		t.Error("content inspection must be modelled (Table 4)")
	}
}

func TestMeterMemoryBaseline(t *testing.T) {
	m := Meter()
	u := m.Report(1)
	if u.MemoryMB < 100 {
		t.Errorf("Haystack baseline memory %.0f MB, Table 4 reports 148", u.MemoryMB)
	}
}
