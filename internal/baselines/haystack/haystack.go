// Package haystack configures the relay engine as Haystack v1.0.0.8
// behaves, the VPN-relay baseline of Tables 3 and 4.
//
// Haystack is a traffic-inspection system, not a measurement tool; the
// paper compares against it because both relay all traffic through
// VpnService in user space. The relevant behavioural differences, each
// taken from the paper:
//
//   - sleep-polled tunnel reads with an adaptive ("intelligent
//     sleeping") strategy inherited from ToyVpn (§3.1) — it "has to
//     keep executing the VPN read() regardless [of] whether there are
//     app packets to be relayed or not" (§4.1.3);
//   - per-socket protect() calls (§3.5.2);
//   - cache-based packet-to-app mapping, which misattributes flows when
//     two apps share a server endpoint (§3.3);
//   - direct tunnel writes from the processing thread (§3.5.1);
//   - per-packet traffic content inspection, its reason to exist, which
//     costs CPU and memory (Table 4: 148 MB vs MopEye's 12 MB).
//
// Building the baseline as an engine configuration makes Table 3/4 an
// ablation: the performance gap is produced by the design choices, not
// asserted.
package haystack

import (
	"time"

	"repro/internal/engine"
	"repro/internal/resource"
)

// PollInterval is Haystack's effective sleep between empty tunnel
// polls (the upload-side gate). Its adaptive scheme bottoms out near
// this under bursty load.
const PollInterval = 60 * time.Millisecond

// MainLoopInterval is the processing loop's cycle, gating how often
// accumulated socket data is drained toward the app (the download-side
// gate). The 64 KiB socket buffer drained every cycle caps download
// throughput near the ~20 Mbps the paper measures.
const MainLoopInterval = 25 * time.Millisecond

// InspectionCostPerPacket is the content-inspection work per relayed
// packet.
const InspectionCostPerPacket = 120 * time.Microsecond

// BaseMemoryMB is Haystack's resident footprint before per-connection
// buffers (Table 4 measures 148 MB during a one-hour video).
const BaseMemoryMB = 140

// Config returns the Haystack-like engine configuration.
func Config() engine.Config {
	c := engine.Default()
	c.ReadMode = engine.ReadPoll
	c.PollInterval = PollInterval
	c.MainLoopPoll = MainLoopInterval
	c.WriteScheme = engine.DirectWrite
	c.Mapping = engine.MapCache
	c.Protect = engine.ProtectPerSocket
	c.BlockingConnectMeasure = true // it relays fine; it just doesn't measure
	c.DeferRegister = false
	c.PerPacketCost = InspectionCostPerPacket
	c.InspectPackets = true
	return c
}

// Meter returns a resource meter with Haystack's memory baseline.
func Meter() *resource.Meter {
	return resource.NewMeter(resource.DefaultCosts(), BaseMemoryMB)
}
