// Package testbed assembles the full Figure 2 topology — simulated
// apps, phone kernel stack, TUN device, MopEye engine, socket layer,
// and the external network with its servers — so experiments, examples
// and benchmarks build on one fixture.
package testbed

import (
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"sync/atomic"
	"time"

	"repro/internal/baselines/sniffer"
	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/phonestack"
	"repro/internal/procnet"
	"repro/internal/resource"
	"repro/internal/sockets"
	"repro/internal/tun"
	"repro/internal/upstream"
)

// Default addresses of the fixture.
var (
	PhoneVPNAddr = netip.MustParseAddr("10.0.0.2")
	PhoneWANAddr = netip.MustParseAddr("100.64.0.5")
	DNSAddr      = netip.MustParseAddrPort("8.8.8.8:53")
)

// Options configures a Bed.
type Options struct {
	// Engine is the engine configuration; engine.Default() if zero.
	Engine engine.Config
	// EngineSet marks Engine as explicitly provided.
	EngineSet bool
	// Link is the default path (phone to any unconfigured address).
	Link netsim.LinkParams
	// DNSLink is the path to the resolver; resolvers sit in the ISP so
	// they are usually closer (§4.2.3). Zero means same as Link.
	DNSLink netsim.LinkParams
	// DNSLinkSet marks DNSLink as explicitly provided.
	DNSLinkSet bool
	// DNSThink is the resolver's processing time per query.
	DNSThink time.Duration
	// SocketCosts models the Android socket-layer costs; zero costs if
	// unset (deterministic tests want that).
	SocketCosts sockets.CostModel
	// ParseCost models proc file parsing cost.
	ParseCost procnet.CostModel
	// TunWriteCost models the tunnel write syscall; nil means free.
	TunWriteCost func(*rand.Rand) time.Duration
	// Servers to install; their domains populate the DNS zone.
	Servers []netsim.ServerSpec
	// MeterBaseMB is the engine's baseline memory footprint.
	MeterBaseMB float64
	// Loopback switches the network into zero-delay loopback server
	// mode (netsim.SetLoopback): benchmarks measure the engine, not the
	// simulated wire. Link parameters are ignored.
	Loopback bool
	// Sniff attaches a tcpdump-style sniffer.
	Sniff bool
	// Seed drives all randomness.
	Seed int64
	// Clock is the time source for every component of the bed — network,
	// TUN, phone stack, engine. nil means the wall clock; tests inject a
	// clock.Virtual to run the whole fixture on simulated time.
	Clock clock.Clock
}

// Bed is one assembled phone + network + engine.
type Bed struct {
	Clk     clock.Clock
	Net     *netsim.Network
	Dev     *tun.Device
	Table   *procnet.Table
	PM      *procnet.PackageManager
	Phone   *phonestack.Phone
	Prov    *sockets.Provider
	Reader  *procnet.Reader
	Eng     *engine.Engine
	Store   *measure.Store
	Meter   *resource.Meter
	Sniffer *sniffer.Sniffer
	Zone    *netsim.Zone
}

// New builds and starts a bed.
func New(o Options) (*Bed, error) {
	if !o.EngineSet {
		o.Engine = engine.Default()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MeterBaseMB == 0 {
		o.MeterBaseMB = 12
	}
	var clk clock.Clock = clock.NewReal()
	if o.Clock != nil {
		clk = o.Clock
	}
	net := netsim.New(clk, o.Link, o.Seed)
	if o.Loopback {
		net.SetLoopback(true)
	}
	dnsLink := o.Link
	if o.DNSLinkSet {
		dnsLink = o.DNSLink
	}
	zone, err := netsim.Install(net, o.Servers, DNSAddr, dnsLink, o.DNSThink)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}

	dev := tun.New(clk, 8192)
	if o.TunWriteCost != nil {
		dev.SetWriteCost(o.TunWriteCost, o.Seed+10)
	}
	table := procnet.NewTable()
	pm := procnet.NewPackageManager()
	phone := phonestack.New(clk, dev, PhoneVPNAddr, table, o.Seed+20)
	prov := sockets.NewProvider(net, clk, PhoneWANAddr, o.SocketCosts, o.Seed+30)
	reader := procnet.NewReader(table, clk, o.ParseCost, o.Seed+40)
	store := measure.NewStore()
	meter := resource.NewMeter(resource.DefaultCosts(), o.MeterBaseMB)

	var snf *sniffer.Sniffer
	if o.Sniff {
		snf = sniffer.New(net)
	}

	eng := engine.New(o.Engine, engine.Deps{
		Clock:    clk,
		Device:   dev,
		Sockets:  prov,
		ProcNet:  reader,
		Packages: pm,
		Store:    store,
		Meter:    meter,
	})
	eng.Start()

	return &Bed{
		Clk: clk, Net: net, Dev: dev, Table: table, PM: pm, Phone: phone,
		Prov: prov, Reader: reader, Eng: eng, Store: store, Meter: meter,
		Sniffer: snf, Zone: zone,
	}, nil
}

// InstallApp registers an app package under a UID.
func (b *Bed) InstallApp(uid int, name string) { b.PM.Install(uid, name) }

// SOCKSAddr is where InstallSOCKS5 listens inside the emulated network.
var SOCKSAddr = netip.AddrPortFrom(netip.MustParseAddr("100.64.0.80"), 1080)

// InstallSOCKS5 runs the in-process SOCKS5 proxy inside the bed's
// network at SOCKSAddr and returns its address. The proxy's own link is
// zero-delay (loopback-adjacent middlebox), so a flow relayed through
// it pays exactly the destination link's cost — the property the
// byte-identical direct-vs-SOCKS e2e pins. cfg's fault-injection knobs
// (auth, refusal, hang) pass through; the backend dial is wired into
// the emulated network unless the caller overrides it.
func (b *Bed) InstallSOCKS5(cfg upstream.ServerConfig) netip.AddrPort {
	if cfg.Dial == nil {
		var backendPort atomic.Uint32
		backendPort.Store(41000)
		cfg.Dial = func(dst netip.AddrPort) (io.ReadWriteCloser, error) {
			local := netip.AddrPortFrom(SOCKSAddr.Addr(), uint16(backendPort.Add(1)))
			return b.Net.Dial(local, dst)
		}
	}
	b.Net.SetLink(SOCKSAddr.Addr(), netsim.LinkParams{})
	b.Net.HandleTCP(SOCKSAddr, func(c *netsim.Conn) { _ = upstream.ServeConn(c, cfg) })
	return SOCKSAddr
}

// UseSOCKS5 points the relay's upstream exit at a SOCKS5 proxy inside
// the emulated network. Call before traffic flows. Username/password
// may be empty for an anonymous proxy; timeout zero selects the
// dialer's default.
func (b *Bed) UseSOCKS5(proxy netip.AddrPort, username, password string, timeout time.Duration) {
	b.Prov.SetDialer(&upstream.SOCKS5{
		Proxy:    proxy,
		Username: username,
		Password: password,
		Timeout:  timeout,
		Forward:  upstream.Netsim{Net: b.Net},
		Clk:      b.Clk,
	})
}

// Close tears the bed down in dependency order. The engine stops
// first, so by the time the store's subscribers are shut down no
// worker can record: streams end cleanly after delivering every
// measurement, never mid-stream.
func (b *Bed) Close() {
	b.Eng.Stop()
	b.Store.CloseSubscribers()
	b.Phone.Close()
	b.Dev.Close()
	b.Net.Close()
}

// EchoServer is a convenience ServerSpec.
func EchoServer(domain, addr string, rtt time.Duration) netsim.ServerSpec {
	return netsim.ServerSpec{
		Domain:  domain,
		Addr:    netip.MustParseAddrPort(addr),
		Link:    netsim.LinkParams{Delay: rtt / 2},
		Handler: netsim.EchoHandler(),
	}
}

// ChattyServer serves length-prefixed request/response exchanges.
func ChattyServer(domain, addr string, rtt time.Duration) netsim.ServerSpec {
	return netsim.ServerSpec{
		Domain:  domain,
		Addr:    netip.MustParseAddrPort(addr),
		Link:    netsim.LinkParams{Delay: rtt / 2},
		Handler: netsim.ChattyHandler(),
	}
}
