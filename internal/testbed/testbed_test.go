package testbed

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/measure"
	"repro/internal/netsim"
)

func TestNewWiresEverything(t *testing.T) {
	bed, err := New(Options{
		Link: netsim.LinkParams{Delay: 2 * time.Millisecond},
		Servers: []netsim.ServerSpec{
			EchoServer("echo.example", "203.0.113.1:80", 10*time.Millisecond),
			ChattyServer("chat.example", "203.0.113.2:80", 20*time.Millisecond),
		},
		Sniff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bed.Close()
	bed.InstallApp(100, "test.app")

	if _, ok := bed.Zone.Lookup("echo.example"); !ok {
		t.Error("zone missing echo.example")
	}
	if bed.Sniffer == nil {
		t.Error("sniffer not attached")
	}

	// End-to-end through the default-config engine.
	conn, err := bed.Phone.Connect(100, netip.MustParseAddrPort("203.0.113.1:80"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := conn.ReadFull(buf); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for bed.Store.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	recs := bed.Store.Kind(measure.KindTCP)
	if len(recs) != 1 || recs[0].App != "test.app" {
		t.Fatalf("records: %+v", recs)
	}
}

func TestDNSPathThroughBed(t *testing.T) {
	bed, err := New(Options{
		Link:       netsim.LinkParams{Delay: 5 * time.Millisecond},
		DNSLink:    netsim.LinkParams{Delay: time.Millisecond},
		DNSLinkSet: true,
		Servers:    []netsim.ServerSpec{EchoServer("named.example", "203.0.113.3:443", 30*time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bed.Close()
	res, err := bed.Phone.Resolve(100, DNSAddr, "named.example", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addr != netip.MustParseAddr("203.0.113.3") {
		t.Errorf("resolved %v", res.Addr)
	}
	// The DNS link is shorter than the default: RTT ~2 ms + relay.
	if res.Elapsed > 15*time.Millisecond {
		t.Errorf("DNS resolve took %v over a 2 ms path", res.Elapsed)
	}
}

func TestBadServerSpecRejected(t *testing.T) {
	_, err := New(Options{
		Servers: []netsim.ServerSpec{{Domain: "x.example"}}, // nil handler
	})
	if err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestCloseIsIdempotentAndOrdered(t *testing.T) {
	bed, err := New(Options{Servers: []netsim.ServerSpec{EchoServer("a.example", "203.0.113.4:80", time.Millisecond)}})
	if err != nil {
		t.Fatal(err)
	}
	bed.Close()
	bed.Close() // second close must not panic
}
