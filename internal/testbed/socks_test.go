package testbed

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/upstream"
)

// startPump advances a virtual clock continuously (the
// fleet_clock_test pattern): 1 ms of simulated time per 100 µs of wall
// time, so virtual timeouts expire ~10x faster than wall ones. Returns
// a stop func that must run after bed.Close — teardown sleeps on the
// virtual clock too.
func startPump(vclk *clock.Virtual) (stop func()) {
	return startPumpEvery(vclk, 100*time.Microsecond)
}

// startPumpEvery advances 1 ms of simulated time per `wall` of wall
// time. A longer wall interval makes simulated time cleaner: goroutine
// handoffs that take zero simulated time also take real microseconds,
// and every pump tick that lands inside one shows up as a 1 ms
// quantization slip in whatever duration is being measured around it.
func startPumpEvery(vclk *clock.Virtual, wall time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				vclk.Advance(time.Millisecond)
				time.Sleep(wall)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// socksBedOptions is the fixture both halves of the byte-identical
// comparison share: two echo servers on literal addresses (no DNS leg)
// with delays that are exact multiples of the pump tick, on a virtual
// clock from a fixed epoch.
func socksBedOptions(vclk *clock.Virtual) Options {
	return Options{
		Link: netsim.LinkParams{Delay: 5 * time.Millisecond},
		Servers: []netsim.ServerSpec{
			EchoServer("alpha.example", "203.0.113.10:443", 20*time.Millisecond),
			EchoServer("beta.example", "203.0.113.20:80", 10*time.Millisecond),
		},
		Clock: vclk,
	}
}

// runSOCKSWorkload drives the fixed two-app workload through a fresh
// bed and returns the records plus their CSV serialization. With
// viaProxy set, every relay connection exits through the in-process
// SOCKS5 server (with authentication) instead of dialing the emulated
// network directly; connectsThroughProxy reports how many CONNECTs the
// proxy actually served, so the test can prove the proxied run did not
// silently fall back to the direct path.
func runSOCKSWorkload(t *testing.T, viaProxy bool, steps int, pumpWall time.Duration) (recs []measure.Record, csv []byte, connectsThroughProxy int64) {
	t.Helper()
	vclk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	stopPump := startPumpEvery(vclk, pumpWall)
	defer stopPump()

	bed, err := New(socksBedOptions(vclk))
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	defer bed.Close()
	bed.InstallApp(10001, "app.alpha")
	bed.InstallApp(10002, "app.beta")

	var proxyConnects atomic.Int64
	if viaProxy {
		var backendPort atomic.Uint32
		backendPort.Store(52000)
		proxy := bed.InstallSOCKS5(upstream.ServerConfig{
			Username: "mopeye", Password: "s3cret",
			Dial: func(dst netip.AddrPort) (io.ReadWriteCloser, error) {
				proxyConnects.Add(1)
				local := netip.AddrPortFrom(SOCKSAddr.Addr(), uint16(backendPort.Add(1)))
				return bed.Net.Dial(local, dst)
			},
		})
		bed.UseSOCKS5(proxy, "mopeye", "s3cret", 5*time.Second)
	}

	// Fixed serial workload: the two apps alternate connects to their
	// servers. Waiting for the record after every connect pins the
	// store order, so the direct and proxied runs serialize records
	// identically.
	plan := []struct {
		uid int
		dst netip.AddrPort
	}{
		{10001, netip.MustParseAddrPort("203.0.113.10:443")},
		{10002, netip.MustParseAddrPort("203.0.113.20:80")},
	}
	// Steps run on a fixed simulated-time grid anchored at the clock's
	// epoch: the pump free-runs on wall time, so without the grid a run
	// whose setup or steps take more wall time (the proxied one — extra
	// handoffs through the proxy) would see more simulated time pass
	// between records and the timestamps would drift apart
	// systematically.
	epoch := time.Unix(1_700_000_000, 0).UnixNano()
	const stepGrid = 250 * time.Millisecond
	for i := 0; i < steps; i++ {
		s := plan[i%len(plan)]
		for vclk.Nanos() < epoch+int64(stepGrid)*int64(i+1) {
			time.Sleep(50 * time.Microsecond)
		}
		conn, err := bed.Phone.Connect(s.uid, s.dst, 30*time.Second)
		if err != nil {
			t.Fatalf("step %d: connect %v: %v", i, s.dst, err)
		}
		payload := []byte(fmt.Sprintf("payload-%d-via-%v", i, viaProxy))
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("step %d: write: %v", i, err)
		}
		echo := make([]byte, len(payload))
		if err := conn.ReadFull(echo); err != nil {
			t.Fatalf("step %d: read: %v", i, err)
		}
		if !bytes.Equal(echo, payload) {
			t.Fatalf("step %d: echo = %q, want %q", i, echo, payload)
		}
		conn.Close()
		deadline := time.Now().Add(30 * time.Second)
		for bed.Store.Len() <= i {
			if time.Now().After(deadline) {
				t.Fatalf("step %d: record never appeared (store len %d)", i, bed.Store.Len())
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	recs = bed.Store.Snapshot()
	var buf bytes.Buffer
	if err := measure.WriteCSV(&buf, recs); err != nil {
		t.Fatalf("export: %v", err)
	}
	return recs, buf.Bytes(), proxyConnects.Load()
}

// TestSOCKS5RelayByteIdenticalRecords is the tentpole equivalence
// proof for the upstream seam: the same workload, measured once with
// the relay dialing the emulated network directly and once exiting
// through the in-process SOCKS5 proxy, must produce byte-identical
// measurement records. The proxy sits on a zero-delay link, so a
// relayed flow pays exactly the destination link's cost and the
// measured RTTs — ns-precision in the CSV — agree.
//
// Attribution (app, uid, dst, kind, order) must match on every run;
// that is the semantic guarantee and any mismatch fails immediately.
// The RTT and timestamp fields are quantized to the virtual-clock pump
// tick, where goroutine scheduling can occasionally slip a run by one
// tick, so the byte-exact comparison gets a few attempts; a systematic
// difference (the proxy charging time, records reordered) would fail
// every attempt.
func TestSOCKS5RelayByteIdenticalRecords(t *testing.T) {
	// 1 ms of simulated time per 2 ms of wall time: handoff-heavy spans
	// (the SOCKS handshake) almost never straddle a pump tick, so the
	// proxied run's RTTs land on exactly the direct run's values.
	const attempts = 8
	const pumpWall = 2 * time.Millisecond
	var lastDirect, lastProxied []byte
	for attempt := 1; attempt <= attempts; attempt++ {
		direct, directCSV, _ := runSOCKSWorkload(t, false, 4, pumpWall)
		proxied, proxiedCSV, proxyConnects := runSOCKSWorkload(t, true, 4, pumpWall)

		if proxyConnects != int64(len(proxied)) {
			t.Fatalf("proxy served %d CONNECTs for %d records — proxied run bypassed the proxy",
				proxyConnects, len(proxied))
		}
		if len(direct) != len(proxied) {
			t.Fatalf("record counts differ: direct %d, proxied %d", len(direct), len(proxied))
		}
		for i := range direct {
			d, p := direct[i], proxied[i]
			if d.Kind != p.Kind || d.App != p.App || d.UID != p.UID || d.Dst != p.Dst || d.Domain != p.Domain {
				t.Fatalf("record %d attribution differs:\ndirect:  %+v\nproxied: %+v", i, d, p)
			}
		}

		if bytes.Equal(directCSV, proxiedCSV) {
			return
		}
		lastDirect, lastProxied = directCSV, proxiedCSV
	}
	t.Fatalf("CSV never byte-identical over %d attempts\ndirect:\n%s\nproxied:\n%s",
		attempts, lastDirect, lastProxied)
}

// TestSOCKS5RelayRTTMatchesPath pins the timing property on its own
// (unconditionally — no retry): through the proxy, each measured RTT
// still reflects the destination link, within generous pump-tick
// slack. A proxy that serialized the CONNECT behind extra simulated
// delay would land far outside the window.
func TestSOCKS5RelayRTTMatchesPath(t *testing.T) {
	recs, _, _ := runSOCKSWorkload(t, true, 6, 100*time.Microsecond)
	want := map[netip.AddrPort]time.Duration{
		netip.MustParseAddrPort("203.0.113.10:443"): 20 * time.Millisecond,
		netip.MustParseAddrPort("203.0.113.20:80"):  10 * time.Millisecond,
	}
	for i, r := range recs {
		path := want[r.Dst]
		if path == 0 {
			t.Fatalf("record %d: unexpected dst %v", i, r.Dst)
		}
		if r.RTT < path || r.RTT > path+15*time.Millisecond {
			t.Errorf("record %d (%s -> %v): RTT %v, want within [%v, %v]",
				i, r.App, r.Dst, r.RTT, path, path+15*time.Millisecond)
		}
	}
}

// TestSOCKS5AuthRejectTearsDownApp: a proxy that rejects the relay's
// credentials is a terminal dial failure — the engine must count it,
// tear the relay state down, and refuse the app's connection (RST
// through the tunnel), not hang it. Fixing the credentials on the same
// bed then succeeds, proving the failure was the auth step.
func TestSOCKS5AuthRejectTearsDownApp(t *testing.T) {
	vclk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	stopPump := startPump(vclk)
	defer stopPump()

	bed, err := New(socksBedOptions(vclk))
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	defer bed.Close()
	bed.InstallApp(10001, "app.alpha")
	proxy := bed.InstallSOCKS5(upstream.ServerConfig{Username: "mopeye", Password: "s3cret"})

	bed.UseSOCKS5(proxy, "mopeye", "wrong", 5*time.Second)
	dst := netip.MustParseAddrPort("203.0.113.10:443")
	if _, err := bed.Phone.Connect(10001, dst, 30*time.Second); err == nil {
		t.Fatal("connect through auth-rejecting proxy succeeded")
	}
	if n := bed.Eng.Stats().ConnectFailures; n != 1 {
		t.Fatalf("ConnectFailures = %d, want 1", n)
	}
	if recs := bed.Store.Kind(measure.KindTCP); len(recs) != 0 {
		t.Fatalf("failed connect produced records: %+v", recs)
	}

	bed.UseSOCKS5(proxy, "mopeye", "s3cret", 5*time.Second)
	conn, err := bed.Phone.Connect(10001, dst, 30*time.Second)
	if err != nil {
		t.Fatalf("connect with fixed credentials: %v", err)
	}
	conn.Close()
}

// TestSOCKS5HangTimesOutUnderVirtualClock: a proxy that accepts the
// greeting and then goes silent must not wedge the relay worker — the
// dialer's own timeout (virtual time, so the test takes milliseconds
// of wall time) fires, the engine records a connect failure, and the
// app's connect is refused.
func TestSOCKS5HangTimesOutUnderVirtualClock(t *testing.T) {
	vclk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	stopPump := startPump(vclk)
	defer stopPump()

	bed, err := New(socksBedOptions(vclk))
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	defer bed.Close()
	bed.InstallApp(10001, "app.alpha")
	proxy := bed.InstallSOCKS5(upstream.ServerConfig{HangAfterGreeting: true})
	bed.UseSOCKS5(proxy, "", "", 2*time.Second)

	before := vclk.Nanos()
	_, err = bed.Phone.Connect(10001, netip.MustParseAddrPort("203.0.113.10:443"), 60*time.Second)
	if err == nil {
		t.Fatal("connect through hung proxy succeeded")
	}
	if elapsed := time.Duration(vclk.Nanos() - before); elapsed < 2*time.Second {
		t.Fatalf("app saw failure after %v of simulated time, before the 2s dial timeout", elapsed)
	}
	// The engine's connect thread counts the failure concurrently with
	// the RST reaching the app; give it a moment.
	deadline := time.Now().Add(10 * time.Second)
	for bed.Eng.Stats().ConnectFailures != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("ConnectFailures = %d, want 1", bed.Eng.Stats().ConnectFailures)
		}
		time.Sleep(100 * time.Microsecond)
	}
}
