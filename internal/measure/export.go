package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"time"
)

// This file implements the record serialisation MopEye needs to upload
// measurements to the crowdsourcing collector and that analyses need to
// load them back. CSV keeps the dataset greppable and language-neutral,
// matching how measurement studies typically release data.

// csvHeader is the exported column order.
var csvHeader = []string{
	"kind", "app", "uid", "dst", "domain", "rtt_ns", "at_unix_ns",
	"net_type", "isp", "country", "device",
}

// CSVEncoder streams records as CSV one at a time — the incremental
// form of WriteCSV for sinks that receive records as they are
// measured. The header row is emitted before the first record (or by
// Flush on an empty stream, so an empty export still parses).
type CSVEncoder struct {
	cw     *csv.Writer
	row    []string
	headed bool
}

// NewCSVEncoder wraps w for incremental CSV encoding.
func NewCSVEncoder(w io.Writer) *CSVEncoder {
	return &CSVEncoder{cw: csv.NewWriter(w), row: make([]string, len(csvHeader))}
}

func (e *CSVEncoder) header() error {
	if e.headed {
		return nil
	}
	e.headed = true
	return e.cw.Write(csvHeader)
}

// Write encodes one record.
func (e *CSVEncoder) Write(r Record) error {
	if err := e.header(); err != nil {
		return err
	}
	e.row[0] = r.Kind.String()
	e.row[1] = r.App
	e.row[2] = strconv.Itoa(r.UID)
	e.row[3] = r.Dst.String()
	e.row[4] = r.Domain
	e.row[5] = strconv.FormatInt(int64(r.RTT), 10)
	e.row[6] = strconv.FormatInt(r.At.UnixNano(), 10)
	e.row[7] = r.NetType
	e.row[8] = r.ISP
	e.row[9] = r.Country
	e.row[10] = r.Device
	return e.cw.Write(e.row)
}

// Flush writes buffered rows (and the header, if nothing was written)
// through to the underlying writer.
func (e *CSVEncoder) Flush() error {
	if err := e.header(); err != nil {
		return err
	}
	e.cw.Flush()
	return e.cw.Error()
}

// WriteCSV streams records as CSV with a header row.
func WriteCSV(w io.Writer, recs []Record) error {
	e := NewCSVEncoder(w)
	for _, r := range recs {
		if err := e.Write(r); err != nil {
			return err
		}
	}
	return e.Flush()
}

// ReadCSV loads records written by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("measure: reading header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("measure: header column %d is %q, want %q", i, header[i], h)
		}
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("measure: line %d: %w", line, err)
		}
		rec, err := recordFromRow(row)
		if err != nil {
			return nil, fmt.Errorf("measure: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func recordFromRow(row []string) (Record, error) {
	var r Record
	switch row[0] {
	case "TCP":
		r.Kind = KindTCP
	case "DNS":
		r.Kind = KindDNS
	default:
		return r, fmt.Errorf("bad kind %q", row[0])
	}
	r.App = row[1]
	uid, err := strconv.Atoi(row[2])
	if err != nil {
		return r, fmt.Errorf("bad uid %q: %v", row[2], err)
	}
	r.UID = uid
	if row[3] != "" && row[3] != "invalid AddrPort" {
		ap, err := netip.ParseAddrPort(row[3])
		if err != nil {
			return r, fmt.Errorf("bad dst %q: %v", row[3], err)
		}
		r.Dst = ap
	}
	r.Domain = row[4]
	ns, err := strconv.ParseInt(row[5], 10, 64)
	if err != nil {
		return r, fmt.Errorf("bad rtt %q: %v", row[5], err)
	}
	r.RTT = time.Duration(ns)
	atNS, err := strconv.ParseInt(row[6], 10, 64)
	if err != nil {
		return r, fmt.Errorf("bad timestamp %q: %v", row[6], err)
	}
	r.At = time.Unix(0, atNS).UTC()
	r.NetType = row[7]
	r.ISP = row[8]
	r.Country = row[9]
	r.Device = row[10]
	return r, nil
}
