package measure

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"
)

func rec(kind Kind, app, isp, net, device string, ms float64) Record {
	return Record{
		Kind: kind, App: app, ISP: isp, NetType: net, Device: device,
		Dst: netip.MustParseAddrPort("1.2.3.4:443"),
		RTT: time.Duration(ms * float64(time.Millisecond)),
	}
}

func TestStoreAddLenSnapshot(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	s.Add(rec(KindTCP, "a", "isp", "WiFi", "d1", 10))
	s.Add(rec(KindDNS, "system.dns", "isp", "LTE", "d1", 20))
	if s.Len() != 2 {
		t.Fatalf("len: %d", s.Len())
	}
	snap := s.Snapshot()
	snap[0].App = "mutated"
	if s.Snapshot()[0].App == "mutated" {
		t.Error("snapshot aliases the store")
	}
}

func TestKindFilter(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		s.Add(rec(KindTCP, "a", "", "", "", 1))
	}
	for i := 0; i < 3; i++ {
		s.Add(rec(KindDNS, "system.dns", "", "", "", 1))
	}
	if got := len(s.Kind(KindTCP)); got != 5 {
		t.Errorf("tcp: %d", got)
	}
	if got := len(s.Kind(KindDNS)); got != 3 {
		t.Errorf("dns: %d", got)
	}
}

func TestGroupings(t *testing.T) {
	recs := []Record{
		rec(KindTCP, "app1", "ispA", "WiFi", "d1", 10),
		rec(KindTCP, "app1", "ispB", "LTE", "d2", 20),
		rec(KindTCP, "app2", "ispA", "LTE", "d1", 30),
	}
	if got := len(ByApp(recs)["app1"]); got != 2 {
		t.Errorf("ByApp: %d", got)
	}
	if got := len(ByISP(recs)["ispA"]); got != 2 {
		t.Errorf("ByISP: %d", got)
	}
	if got := len(ByDevice(recs)["d1"]); got != 2 {
		t.Errorf("ByDevice: %d", got)
	}
	if got := len(ByNetType(recs)["LTE"]); got != 2 {
		t.Errorf("ByNetType: %d", got)
	}
}

func TestByDomainSkipsEmpty(t *testing.T) {
	recs := []Record{
		{Kind: KindTCP, Domain: "x.example", RTT: time.Millisecond},
		{Kind: KindTCP, Domain: "", RTT: time.Millisecond},
	}
	m := ByDomain(recs)
	if len(m) != 1 {
		t.Errorf("domains: %v", m)
	}
}

func TestMedianAndAppMedians(t *testing.T) {
	recs := []Record{
		rec(KindTCP, "a", "", "", "", 10),
		rec(KindTCP, "a", "", "", "", 30),
		rec(KindTCP, "a", "", "", "", 20),
		rec(KindTCP, "b", "", "", "", 100),
	}
	if got := MedianRTT(recs); got != 25 {
		t.Errorf("median: %v", got)
	}
	med := AppMedians(recs, 2)
	if got := med["a"]; got != 20 {
		t.Errorf("app a median: %v", got)
	}
	if _, ok := med["b"]; ok {
		t.Error("app b below minN included")
	}
}

func TestRTTMillis(t *testing.T) {
	ms := RTTMillis([]Record{rec(KindTCP, "", "", "", "", 2.5)})
	if ms[0] != 2.5 {
		t.Errorf("%v", ms)
	}
}

func TestKindString(t *testing.T) {
	if KindTCP.String() != "TCP" || KindDNS.String() != "DNS" {
		t.Error("kind names")
	}
}

func TestConcurrentAdd(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Add(rec(KindTCP, fmt.Sprintf("app%d", g), "", "", "", float64(i)))
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("len: %d", s.Len())
	}
}

func TestFilter(t *testing.T) {
	s := NewStore()
	s.Add(rec(KindTCP, "a", "", "WiFi", "", 10))
	s.Add(rec(KindTCP, "a", "", "LTE", "", 10))
	got := s.Filter(func(r Record) bool { return r.NetType == "WiFi" })
	if len(got) != 1 {
		t.Errorf("filter: %d", len(got))
	}
}
