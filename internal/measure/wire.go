package measure

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// This file is the batch wire encoding behind the crowdsourcing
// upload path: the unit a phone's Collector ships to a collector
// server is a Batch — a device-stamped, idempotency-keyed group of
// records. The encoding is a one-line JSON header followed by the
// records in the existing JSONL form, so a spool file (a sequence of
// encoded batches) stays greppable, append-only, and decodable with
// the same code that decodes one HTTP request body.

// BatchContentType is the media type an encoded batch travels under.
const BatchContentType = "application/x-mopeye-batch"

// wireVersion is the batch header version this code writes and the
// only one it accepts.
const wireVersion = 1

// Batch is the unit of crowdsourced upload: one device's pending
// records, stamped and keyed so a receiver can deduplicate redelivery.
type Batch struct {
	// Device identifies the contributing phone.
	Device string
	// Key is the batch's idempotency key: unique per batch, stable
	// across retries of the same batch, so at-least-once delivery plus
	// receiver-side dedup yields exactly-once records.
	Key string
	// Seq is the device's upload sequence number, 1-based.
	Seq int
	// Records are the measurements in upload order.
	Records []Record
}

// batchHeader is the wire form of the batch metadata line.
type batchHeader struct {
	V      int    `json:"mopeye_batch"`
	Device string `json:"device"`
	Key    string `json:"key"`
	Seq    int    `json:"seq"`
	N      int    `json:"n"`
}

// EncodeBatch writes one batch: the header line, then one JSONL record
// per line.
func EncodeBatch(w io.Writer, b Batch) error {
	enc := json.NewEncoder(w)
	h := batchHeader{V: wireVersion, Device: b.Device, Key: b.Key, Seq: b.Seq, N: len(b.Records)}
	if err := enc.Encode(h); err != nil {
		return err
	}
	for _, r := range b.Records {
		if err := enc.Encode(toJSONRecord(r)); err != nil {
			return err
		}
	}
	return nil
}

// ErrTruncatedBatch marks a batch whose stream ended mid-records — the
// tail a crashed spool append leaves behind. Replay code stops there;
// the sender's redelivery (same key) restores the lost batch.
var ErrTruncatedBatch = errors.New("measure: truncated batch")

// BatchDecoder decodes a stream of encoded batches (an upload body
// holds one; a spool file holds many).
type BatchDecoder struct {
	dec *json.Decoder
}

// NewBatchDecoder wraps r for batch decoding.
func NewBatchDecoder(r io.Reader) *BatchDecoder {
	return &BatchDecoder{dec: json.NewDecoder(r)}
}

// InputOffset reports the byte offset after the last decoded value —
// the durable prefix a spool replay can truncate back to.
func (d *BatchDecoder) InputOffset() int64 { return d.dec.InputOffset() }

// Next decodes one batch. It returns io.EOF at a clean end of stream,
// and an error wrapping ErrTruncatedBatch when the stream ends between
// a header and its last record.
func (d *BatchDecoder) Next() (Batch, error) {
	var h batchHeader
	if err := d.dec.Decode(&h); err != nil {
		if err == io.EOF {
			return Batch{}, io.EOF
		}
		return Batch{}, fmt.Errorf("measure: batch header: %w", err)
	}
	if h.V != wireVersion {
		return Batch{}, fmt.Errorf("measure: batch version %d, want %d", h.V, wireVersion)
	}
	if h.Key == "" {
		return Batch{}, fmt.Errorf("measure: batch without idempotency key")
	}
	if h.N < 0 {
		return Batch{}, fmt.Errorf("measure: batch record count %d", h.N)
	}
	// Cap the pre-allocation: h.N is attacker-controlled on the upload
	// path, and a lying header must not cost more memory than the body
	// it actually ships (decoding fails at the first missing record).
	preAlloc := h.N
	if preAlloc > 1024 {
		preAlloc = 1024
	}
	b := Batch{Device: h.Device, Key: h.Key, Seq: h.Seq, Records: make([]Record, 0, preAlloc)}
	for i := 0; i < h.N; i++ {
		var j jsonRecord
		if err := d.dec.Decode(&j); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return Batch{}, fmt.Errorf("measure: batch %q record %d/%d: %w", h.Key, i+1, h.N, ErrTruncatedBatch)
			}
			return Batch{}, fmt.Errorf("measure: batch %q record %d: %w", h.Key, i+1, err)
		}
		rec, err := j.record()
		if err != nil {
			return Batch{}, fmt.Errorf("measure: batch %q record %d: %w", h.Key, i+1, err)
		}
		b.Records = append(b.Records, rec)
	}
	return b, nil
}

// DecodeBatch decodes exactly one batch from r (an upload request
// body); trailing content is an error.
func DecodeBatch(r io.Reader) (Batch, error) {
	d := NewBatchDecoder(r)
	b, err := d.Next()
	if err != nil {
		if err == io.EOF {
			return Batch{}, fmt.Errorf("measure: empty batch body")
		}
		return Batch{}, err
	}
	if _, err := d.Next(); err != io.EOF {
		return Batch{}, fmt.Errorf("measure: trailing content after batch %q", b.Key)
	}
	return b, nil
}

// SortCanonical orders records deterministically by (device, time,
// kind, app, ...). Crowdsourced records arrive in whatever order the
// contributing phones' uploads interleave; canonical order is what
// makes two independently-assembled copies of the same dataset
// comparable byte for byte (and keeps crowd.Ingest's first-appearance
// device numbering stable).
func SortCanonical(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return canonicalLess(recs[i], recs[j]) })
}

func canonicalLess(a, b Record) bool {
	if a.Device != b.Device {
		return a.Device < b.Device
	}
	if !a.At.Equal(b.At) {
		return a.At.Before(b.At)
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.App != b.App {
		return a.App < b.App
	}
	if a.UID != b.UID {
		return a.UID < b.UID
	}
	if c := a.Dst.Compare(b.Dst); c != 0 {
		return c < 0
	}
	if a.Domain != b.Domain {
		return a.Domain < b.Domain
	}
	if a.RTT != b.RTT {
		return a.RTT < b.RTT
	}
	if a.NetType != b.NetType {
		return a.NetType < b.NetType
	}
	if a.ISP != b.ISP {
		return a.ISP < b.ISP
	}
	return a.Country < b.Country
}
