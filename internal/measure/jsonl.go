package measure

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// JSON Lines is the streaming sibling of the CSV export: one record
// per line, self-describing fields, append-friendly — the natural
// format for a live Subscribe stream or `mopeye -follow -jsonl`,
// where a reader may join mid-file. The field layout mirrors the CSV
// columns so the two exports stay interconvertible.

// jsonRecord is the wire form of one Record.
type jsonRecord struct {
	Kind     string `json:"kind"`
	App      string `json:"app"`
	UID      int    `json:"uid,omitempty"`
	Dst      string `json:"dst,omitempty"`
	Domain   string `json:"domain,omitempty"`
	RTTNanos int64  `json:"rtt_ns"`
	AtNanos  int64  `json:"at_unix_ns"`
	NetType  string `json:"net_type,omitempty"`
	ISP      string `json:"isp,omitempty"`
	Country  string `json:"country,omitempty"`
	Device   string `json:"device,omitempty"`
}

func toJSONRecord(r Record) jsonRecord {
	j := jsonRecord{
		Kind:     r.Kind.String(),
		App:      r.App,
		UID:      r.UID,
		Domain:   r.Domain,
		RTTNanos: int64(r.RTT),
		AtNanos:  r.At.UnixNano(),
		NetType:  r.NetType,
		ISP:      r.ISP,
		Country:  r.Country,
		Device:   r.Device,
	}
	if r.Dst.IsValid() {
		j.Dst = r.Dst.String()
	}
	return j
}

func (j jsonRecord) record() (Record, error) {
	var r Record
	switch j.Kind {
	case "TCP":
		r.Kind = KindTCP
	case "DNS":
		r.Kind = KindDNS
	default:
		return r, fmt.Errorf("bad kind %q", j.Kind)
	}
	r.App = j.App
	r.UID = j.UID
	if j.Dst != "" {
		ap, err := netip.ParseAddrPort(j.Dst)
		if err != nil {
			return r, fmt.Errorf("bad dst %q: %v", j.Dst, err)
		}
		r.Dst = ap
	}
	r.Domain = j.Domain
	r.RTT = time.Duration(j.RTTNanos)
	r.At = time.Unix(0, j.AtNanos).UTC()
	r.NetType = j.NetType
	r.ISP = j.ISP
	r.Country = j.Country
	r.Device = j.Device
	return r, nil
}

// JSONLEncoder streams records as JSON Lines, one object per line.
type JSONLEncoder struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLEncoder wraps w for incremental JSONL encoding.
func NewJSONLEncoder(w io.Writer) *JSONLEncoder {
	bw := bufio.NewWriter(w)
	return &JSONLEncoder{bw: bw, enc: json.NewEncoder(bw)}
}

// Write encodes one record as one line.
func (e *JSONLEncoder) Write(r Record) error {
	return e.enc.Encode(toJSONRecord(r)) // Encode appends the newline
}

// Flush pushes buffered lines through to the underlying writer.
func (e *JSONLEncoder) Flush() error { return e.bw.Flush() }

// WriteJSONL writes records as JSON Lines.
func WriteJSONL(w io.Writer, recs []Record) error {
	e := NewJSONLEncoder(w)
	for _, r := range recs {
		if err := e.Write(r); err != nil {
			return err
		}
	}
	return e.Flush()
}

// ReadJSONL loads records written by WriteJSONL (or a JSONLSink),
// tolerating blank lines.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for line := 1; ; line++ {
		var j jsonRecord
		if err := dec.Decode(&j); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("measure: jsonl record %d: %w", line, err)
		}
		rec, err := j.record()
		if err != nil {
			return nil, fmt.Errorf("measure: jsonl record %d: %w", line, err)
		}
		out = append(out, rec)
	}
}
