package measure

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"
)

func sampleRecords() []Record {
	return []Record{
		{
			Kind: KindTCP, App: "com.whatsapp", UID: 10083,
			Dst:     netip.MustParseAddrPort("158.85.5.211:443"),
			Domain:  "e7.whatsapp.net",
			RTT:     261*time.Millisecond + 347*time.Microsecond,
			At:      time.Date(2016, 9, 1, 10, 30, 0, 0, time.UTC),
			NetType: "LTE", ISP: "Jio 4G", Country: "India", Device: "device-0042",
		},
		{
			Kind: KindDNS, App: "system.dns", UID: 0,
			Dst:     netip.MustParseAddrPort("8.8.8.8:53"),
			Domain:  "graph.facebook.com",
			RTT:     42 * time.Millisecond,
			At:      time.Date(2016, 12, 25, 0, 0, 0, 0, time.UTC),
			NetType: "WiFi", ISP: "WiFi USA", Country: "USA", Device: "device-0001",
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("rows: %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("row %d:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("rows: %d", len(got))
	}
}

func TestCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("bad header accepted")
	}
}

func TestCSVRejectsBadRows(t *testing.T) {
	head := strings.Join(csvHeader, ",") + "\n"
	cases := []string{
		head + "XXX,app,1,1.2.3.4:443,,1000,0,WiFi,i,c,d\n",   // bad kind
		head + "TCP,app,zz,1.2.3.4:443,,1000,0,WiFi,i,c,d\n",  // bad uid
		head + "TCP,app,1,not-an-addr,,1000,0,WiFi,i,c,d\n",   // bad dst
		head + "TCP,app,1,1.2.3.4:443,,abc,0,WiFi,i,c,d\n",    // bad rtt
		head + "TCP,app,1,1.2.3.4:443,,1000,xyz,WiFi,i,c,d\n", // bad time
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed row accepted", i)
		}
	}
}

func TestCSVFieldsWithCommas(t *testing.T) {
	recs := []Record{{
		Kind: KindTCP, App: "weird,app", Domain: "a,b.example",
		Dst: netip.MustParseAddrPort("1.1.1.1:1"), RTT: time.Millisecond,
		At: time.Unix(0, 0).UTC(),
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].App != "weird,app" || got[0].Domain != "a,b.example" {
		t.Errorf("quoting lost: %+v", got[0])
	}
}
