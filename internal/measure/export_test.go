package measure

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"
)

func sampleRecords() []Record {
	return []Record{
		{
			Kind: KindTCP, App: "com.whatsapp", UID: 10083,
			Dst:     netip.MustParseAddrPort("158.85.5.211:443"),
			Domain:  "e7.whatsapp.net",
			RTT:     261*time.Millisecond + 347*time.Microsecond,
			At:      time.Date(2016, 9, 1, 10, 30, 0, 0, time.UTC),
			NetType: "LTE", ISP: "Jio 4G", Country: "India", Device: "device-0042",
		},
		{
			Kind: KindDNS, App: "system.dns", UID: 0,
			Dst:     netip.MustParseAddrPort("8.8.8.8:53"),
			Domain:  "graph.facebook.com",
			RTT:     42 * time.Millisecond,
			At:      time.Date(2016, 12, 25, 0, 0, 0, 0, time.UTC),
			NetType: "WiFi", ISP: "WiFi USA", Country: "USA", Device: "device-0001",
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("rows: %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("row %d:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("rows: %d", len(got))
	}
}

func TestCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("bad header accepted")
	}
}

func TestCSVRejectsBadRows(t *testing.T) {
	head := strings.Join(csvHeader, ",") + "\n"
	cases := []string{
		head + "XXX,app,1,1.2.3.4:443,,1000,0,WiFi,i,c,d\n",   // bad kind
		head + "TCP,app,zz,1.2.3.4:443,,1000,0,WiFi,i,c,d\n",  // bad uid
		head + "TCP,app,1,not-an-addr,,1000,0,WiFi,i,c,d\n",   // bad dst
		head + "TCP,app,1,1.2.3.4:443,,abc,0,WiFi,i,c,d\n",    // bad rtt
		head + "TCP,app,1,1.2.3.4:443,,1000,xyz,WiFi,i,c,d\n", // bad time
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed row accepted", i)
		}
	}
}

// roundTrip encodes and decodes through one export format and demands
// deep equality.
func roundTrip(t *testing.T, name string, recs []Record,
	write func(*bytes.Buffer, []Record) error, read func(*bytes.Buffer) ([]Record, error)) {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf, recs); err != nil {
		t.Fatalf("%s write: %v", name, err)
	}
	got, err := read(&buf)
	if err != nil {
		t.Fatalf("%s read: %v", name, err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("%s row %d:\n got %+v\nwant %+v", name, i, got[i], recs[i])
		}
	}
}

func writeCSVBuf(b *bytes.Buffer, recs []Record) error   { return WriteCSV(b, recs) }
func readCSVBuf(b *bytes.Buffer) ([]Record, error)       { return ReadCSV(b) }
func writeJSONLBuf(b *bytes.Buffer, recs []Record) error { return WriteJSONL(b, recs) }
func readJSONLBuf(b *bytes.Buffer) ([]Record, error)     { return ReadJSONL(b) }

func TestJSONLRoundTrip(t *testing.T) {
	roundTrip(t, "jsonl", sampleRecords(), writeJSONLBuf, readJSONLBuf)
}

// Zero measurements must survive both formats: the CSV keeps its
// header, the JSONL is empty, and both decode to nothing.
func TestExportRoundTripEmpty(t *testing.T) {
	roundTrip(t, "csv", nil, writeCSVBuf, readCSVBuf)
	roundTrip(t, "jsonl", nil, writeJSONLBuf, readJSONLBuf)
}

// App names are user-controlled strings; non-ASCII package labels and
// IDN domains must survive both exports byte-for-byte.
func TestExportRoundTripUnicode(t *testing.T) {
	recs := []Record{
		{
			Kind: KindTCP, App: "com.例え.アプリ", UID: 10042,
			Dst:    netip.MustParseAddrPort("[2001:db8::1]:443"),
			Domain: "пример.example", RTT: 7 * time.Millisecond,
			At:      time.Date(2016, 6, 1, 0, 0, 0, 1, time.UTC),
			NetType: "WiFi", ISP: "Überwald Telekom", Country: "中国", Device: "device-0007",
		},
		{
			Kind: KindDNS, App: "system.dns",
			Domain: "emoji-🦀.example", RTT: time.Microsecond,
			At: time.Unix(0, 42).UTC(),
			// Dst left zero: the invalid AddrPort must round-trip too.
		},
	}
	roundTrip(t, "csv", recs, writeCSVBuf, readCSVBuf)
	roundTrip(t, "jsonl", recs, writeJSONLBuf, readJSONLBuf)
}

func TestJSONLRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"kind":"XXX","app":"a","rtt_ns":1,"at_unix_ns":0}` + "\n",           // bad kind
		`{"kind":"TCP","dst":"not-an-addr","rtt_ns":1,"at_unix_ns":0}` + "\n", // bad dst
		`{"kind":` + "\n", // truncated JSON
	}
	for i, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed line accepted", i)
		}
	}
}

// The incremental encoders must produce byte-identical output to the
// batch helpers — sinks and snapshot exports may never diverge.
func TestEncodersMatchBatchOutput(t *testing.T) {
	recs := sampleRecords()
	var batch, inc bytes.Buffer
	if err := WriteCSV(&batch, recs); err != nil {
		t.Fatal(err)
	}
	e := NewCSVEncoder(&inc)
	for _, r := range recs {
		if err := e.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if batch.String() != inc.String() {
		t.Error("CSVEncoder output diverges from WriteCSV")
	}

	batch.Reset()
	inc.Reset()
	if err := WriteJSONL(&batch, recs); err != nil {
		t.Fatal(err)
	}
	je := NewJSONLEncoder(&inc)
	for _, r := range recs {
		if err := je.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := je.Flush(); err != nil {
		t.Fatal(err)
	}
	if batch.String() != inc.String() {
		t.Error("JSONLEncoder output diverges from WriteJSONL")
	}
}

func TestCSVFieldsWithCommas(t *testing.T) {
	recs := []Record{{
		Kind: KindTCP, App: "weird,app", Domain: "a,b.example",
		Dst: netip.MustParseAddrPort("1.1.1.1:1"), RTT: time.Millisecond,
		At: time.Unix(0, 0).UTC(),
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].App != "weird,app" || got[0].Domain != "a,b.example" {
		t.Errorf("quoting lost: %+v", got[0])
	}
}
