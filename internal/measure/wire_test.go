package measure

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"strings"
	"testing"
	"time"
)

func wireRec(dev, app string, ms float64, at int64) Record {
	return Record{
		Kind: KindTCP, App: app, UID: 10001,
		Dst:    netip.MustParseAddrPort("203.0.113.9:443"),
		RTT:    time.Duration(ms * float64(time.Millisecond)),
		At:     time.Unix(at, 0).UTC(),
		Device: dev,
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := Batch{
		Device: "phone-1",
		Key:    "phone-1/abc/000001",
		Seq:    1,
		Records: []Record{
			wireRec("phone-1", "com.app.a", 10, 100),
			wireRec("", "com.app.b", 20, 200), // unstamped records survive as-is
		},
	}
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != b.Device || got.Key != b.Key || got.Seq != b.Seq {
		t.Errorf("header mangled: %+v", got)
	}
	if len(got.Records) != 2 || got.Records[0] != b.Records[0] || got.Records[1] != b.Records[1] {
		t.Errorf("records mangled: %+v", got.Records)
	}
}

func TestBatchDecoderStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 1; i <= 3; i++ {
		b := Batch{Device: "d", Key: strings.Repeat("k", i), Seq: i,
			Records: []Record{wireRec("d", "app", float64(i), int64(i))}}
		if err := EncodeBatch(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewBatchDecoder(&buf)
	for i := 1; i <= 3; i++ {
		b, err := dec.Next()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if b.Seq != i {
			t.Errorf("batch %d out of order: seq %d", i, b.Seq)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Errorf("stream end: %v, want io.EOF", err)
	}
}

// A stream cut mid-batch reports ErrTruncatedBatch, the signal spool
// replay uses to stop at the durable prefix.
func TestBatchDecoderTruncation(t *testing.T) {
	var buf bytes.Buffer
	b := Batch{Device: "d", Key: "k1", Seq: 1, Records: []Record{
		wireRec("d", "a", 1, 1), wireRec("d", "b", 2, 2),
	}}
	if err := EncodeBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	// Cut inside the second record line.
	cut := buf.Len() - 10
	dec := NewBatchDecoder(bytes.NewReader(buf.Bytes()[:cut]))
	_, err := dec.Next()
	if !errors.Is(err, ErrTruncatedBatch) {
		t.Errorf("truncated decode: %v, want ErrTruncatedBatch", err)
	}
}

func TestDecodeBatchRejects(t *testing.T) {
	good := Batch{Device: "d", Key: "k", Seq: 1, Records: []Record{wireRec("d", "a", 1, 1)}}
	var one bytes.Buffer
	if err := EncodeBatch(&one, good); err != nil {
		t.Fatal(err)
	}

	cases := map[string]string{
		"empty body":       "",
		"bad version":      `{"mopeye_batch":2,"device":"d","key":"k","seq":1,"n":0}` + "\n",
		"missing key":      `{"mopeye_batch":1,"device":"d","seq":1,"n":0}` + "\n",
		"count undershoot": `{"mopeye_batch":1,"device":"d","key":"k","seq":1,"n":2}` + "\n" + `{"kind":"TCP","app":"a","rtt_ns":1,"at_unix_ns":1}` + "\n",
		"lying giant count": `{"mopeye_batch":1,"device":"d","key":"k","seq":1,"n":1000000000000}` + "\n",
		"trailing content": one.String() + one.String(),
		"not a batch":      "garbage\n",
	}
	for name, body := range cases {
		if _, err := DecodeBatch(strings.NewReader(body)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestSortCanonicalDeterministic(t *testing.T) {
	a := []Record{
		wireRec("p2", "app", 10, 50),
		wireRec("p1", "app", 10, 90),
		wireRec("p1", "app", 10, 10),
		wireRec("p1", "zapp", 10, 10),
	}
	b := []Record{a[3], a[0], a[2], a[1]} // a shuffled copy
	SortCanonical(a)
	SortCanonical(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order depends on input permutation at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if a[0].Device != "p1" || !a[0].At.Equal(time.Unix(10, 0).UTC()) || a[0].App != "app" {
		t.Errorf("unexpected head: %+v", a[0])
	}
}
