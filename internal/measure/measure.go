// Package measure defines the measurement records MopEye produces and a
// thread-safe store with the aggregation helpers the evaluation uses
// (per-app medians, RTT distributions, DNS/TCP splits).
//
// One Record corresponds to one opportunistic measurement: a TCP
// connect() SYN/SYN-ACK RTT attributed to an app, or a DNS
// query/response RTT (§2.4). The crowdsourcing layer (package crowd)
// generates the same records statistically; everything downstream
// operates on this type.
package measure

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Kind distinguishes the two measurement types MopEye supports.
type Kind int

// Measurement kinds.
const (
	KindTCP Kind = iota
	KindDNS
)

func (k Kind) String() string {
	if k == KindDNS {
		return "DNS"
	}
	return "TCP"
}

// Record is one RTT measurement with its attribution context.
type Record struct {
	Kind    Kind
	App     string // package name; "system.dns" for DNS (system-wide, §2.2)
	UID     int
	Dst     netip.AddrPort
	Domain  string // server domain when known (DNS always; TCP via prior DNS)
	RTT     time.Duration
	At      time.Time
	NetType string // "WiFi", "LTE", "3G", "2G"
	ISP     string
	Country string
	// Device identifies the contributing phone in crowdsourced datasets
	// (empty for single-phone engine runs).
	Device string
}

// Millis returns the record's RTT in milliseconds — the unit every
// figure in the paper, and every collector-side sketch, aggregates in.
func (r Record) Millis() float64 {
	return r.RTT.Seconds() * 1000
}

// NetKey returns the record's "<kind>/<nettype>" aggregation key, the
// dimension the collector's per-network sketches are maintained under
// (e.g. "TCP/WiFi", "DNS/LTE"). Records without a network type group
// under "<kind>/?".
func (r Record) NetKey() string {
	nt := r.NetType
	if nt == "" {
		nt = "?"
	}
	return r.Kind.String() + "/" + nt
}

// ByDevice groups records by device.
func ByDevice(recs []Record) map[string][]Record {
	m := make(map[string][]Record)
	for _, r := range recs {
		m[r.Device] = append(m[r.Device], r)
	}
	return m
}

// ByNetType groups records by network type.
func ByNetType(recs []Record) map[string][]Record {
	m := make(map[string][]Record)
	for _, r := range recs {
		m[r.NetType] = append(m[r.NetType], r)
	}
	return m
}

// Store collects records and broadcasts each one, at Add time, to any
// live subscriptions (broadcast.go). The snapshot accessors and the
// subscription stream observe the same records in the same order; the
// stream is the push view, the snapshot the pull view.
type Store struct {
	mu   sync.Mutex
	recs []Record

	// subs are the live subscriptions; subsClosed marks the broadcast
	// layer shut down (CloseSubscribers). Both guarded by mu.
	subs       []*Subscription
	subsClosed bool
	// dropped totals ring-full drops across all subscribers ever.
	dropped atomic.Uint64
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{} }

// Add appends one record and publishes it to every subscriber. With no
// subscribers the publish step is a nil-slice range — the engine's
// record path pays nothing for the broadcast layer it isn't using.
func (s *Store) Add(r Record) {
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.publish(r)
	s.mu.Unlock()
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Snapshot copies all records out.
func (s *Store) Snapshot() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.recs...)
}

// Filter returns the records satisfying keep.
func (s *Store) Filter(keep func(Record) bool) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, r := range s.recs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// Kind returns records of one kind.
func (s *Store) Kind(k Kind) []Record {
	return s.Filter(func(r Record) bool { return r.Kind == k })
}

// RTTMillis extracts RTTs in milliseconds from a record set.
func RTTMillis(recs []Record) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.Millis()
	}
	return out
}

// ByApp groups records by app name.
func ByApp(recs []Record) map[string][]Record {
	m := make(map[string][]Record)
	for _, r := range recs {
		m[r.App] = append(m[r.App], r)
	}
	return m
}

// ByDomain groups records by domain, skipping records without one.
func ByDomain(recs []Record) map[string][]Record {
	m := make(map[string][]Record)
	for _, r := range recs {
		if r.Domain != "" {
			m[r.Domain] = append(m[r.Domain], r)
		}
	}
	return m
}

// ByISP groups records by ISP.
func ByISP(recs []Record) map[string][]Record {
	m := make(map[string][]Record)
	for _, r := range recs {
		m[r.ISP] = append(m[r.ISP], r)
	}
	return m
}

// MedianRTT returns the median RTT in milliseconds of a record set.
func MedianRTT(recs []Record) float64 {
	return stats.Median(RTTMillis(recs))
}

// AppMedians returns each app's median RTT (ms) for apps with at least
// minN records — the basis of Figure 9(b) and Table 5, which use medians
// "because the median is less affected by RTT outliers".
func AppMedians(recs []Record, minN int) map[string]float64 {
	out := make(map[string]float64)
	for app, rs := range ByApp(recs) {
		if len(rs) >= minN {
			out[app] = MedianRTT(rs)
		}
	}
	return out
}
