package measure

import (
	"context"
	"iter"
	"sync"
	"sync/atomic"
)

// This file is the store's broadcast layer: the push half of the
// streaming measurement pipeline. Every record is published exactly
// once, at Add time, to each live Subscription over a bounded
// single-producer/single-consumer ring — the same ring discipline as
// the engine's per-worker queues (internal/engine/ringq.go), with one
// deliberate difference: the engine's producer blocks when a ring
// fills (backpressure toward the TUN queue), while the measurement
// producer NEVER blocks. The record path runs on the engine's packet
// workers, so a slow subscriber must not be able to stall the relay;
// instead the record is dropped for that subscriber only and counted
// on its drop counter. Bounded fan-out, bounded loss, unbounded
// neither.
//
// Producer-side cost:
//   - zero subscribers: one len check under the mutex Add already
//     holds — no allocation, no atomics, nothing (pinned by a
//     0-allocs test).
//   - N subscribers: per subscriber, an optional predicate call and
//     either a ring-slot copy + two atomic ops or a drop-counter
//     increment. Still allocation-free.
//
// The SPSC invariant holds because publishes happen under Store.mu
// (Add is already serialised there), so the producer side is a single
// logical producer; each Subscription has exactly one consumer by
// contract.

// defaultSubscriberRing is the ring capacity when Subscribe is given
// size <= 0: deep enough that a consumer scheduling hiccup does not
// drop records at measurement rates (connections, not packets), small
// enough that an abandoned-but-open subscription bounds its memory.
const defaultSubscriberRing = 1024

// Subscription is one bounded tap on a Store's record stream. It
// observes every record added after Subscribe, in Add order, minus any
// records dropped while its ring was full. A Subscription has a single
// consumer: Next/Seq must not be called concurrently with themselves
// or each other.
type Subscription struct {
	st   *Store
	keep func(Record) bool // nil accepts every record

	// SPSC ring. head is owned by the consumer, tail by the producer
	// (serialised under Store.mu).
	buf  []Record
	mask uint64
	head atomic.Uint64
	tail atomic.Uint64

	// dropped counts records this subscriber lost to a full ring.
	dropped atomic.Uint64

	// notify is the consumer wakeup: capacity 1, non-blocking send
	// after every push, so a parked consumer observes "ring became
	// non-empty" without the producer ever waiting.
	notify chan struct{}
	// done is closed when the subscription is closed (by the consumer
	// or by the store shutting down). The ring may still hold records;
	// Next drains them before reporting the end of the stream.
	done      chan struct{}
	closeOnce sync.Once
}

// Subscribe registers a tap on the stream. Records added after the
// call are pushed into a bounded ring of the given capacity (rounded
// up to a power of two; size <= 0 means the 1024 default). keep, when
// non-nil, filters producer-side: records it rejects are neither
// delivered nor counted as drops. On a store whose subscribers have
// been shut down (CloseSubscribers), the returned Subscription is
// already closed and yields nothing.
func (s *Store) Subscribe(size int, keep func(Record) bool) *Subscription {
	if size <= 0 {
		size = defaultSubscriberRing
	}
	n := 1
	for n < size {
		n <<= 1
	}
	sub := &Subscription{
		st:     s,
		keep:   keep,
		buf:    make([]Record, n),
		mask:   uint64(n - 1),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	s.mu.Lock()
	if s.subsClosed {
		s.mu.Unlock()
		sub.closeOnce.Do(func() { close(sub.done) })
		return sub
	}
	s.subs = append(s.subs, sub)
	s.mu.Unlock()
	return sub
}

// publish fans one record out to every live subscriber. Caller holds
// s.mu, which serialises producers and excludes subscribe/unsubscribe.
func (s *Store) publish(r Record) {
	for _, sub := range s.subs {
		sub.push(r)
	}
}

// push offers one record to the subscriber's ring, dropping (and
// counting) when full. Runs under Store.mu — single producer.
func (sub *Subscription) push(r Record) {
	if sub.keep != nil && !sub.keep(r) {
		return
	}
	t := sub.tail.Load()
	if t-sub.head.Load() >= uint64(len(sub.buf)) {
		sub.dropped.Add(1)
		sub.st.dropped.Add(1)
		return
	}
	sub.buf[t&sub.mask] = r
	sub.tail.Store(t + 1)
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// pop dequeues one record without blocking. Consumer side only.
func (sub *Subscription) pop() (Record, bool) {
	h := sub.head.Load()
	if h == sub.tail.Load() {
		return Record{}, false
	}
	r := sub.buf[h&sub.mask]
	sub.buf[h&sub.mask] = Record{} // release the strings to the GC
	sub.head.Store(h + 1)
	return r, true
}

// Next blocks for the next record. ok is false once the subscription
// is closed and its ring drained, or when ctx is cancelled (a nil ctx
// never cancels). Records already in the ring at close time are still
// delivered — closing the store ends the stream, it does not truncate
// it.
func (sub *Subscription) Next(ctx context.Context) (r Record, ok bool) {
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	for {
		if r, ok := sub.pop(); ok {
			return r, true
		}
		select {
		case <-sub.notify:
		case <-sub.done:
			// Closed: the producer is gone (or ignoring us), so
			// whatever pop sees now is the complete remainder.
			if r, ok := sub.pop(); ok {
				return r, true
			}
			return Record{}, false
		case <-cancel:
			return Record{}, false
		}
	}
}

// Seq adapts the subscription to a range-over-func iterator. The
// subscription is closed when the range ends, whichever side ends it.
func (sub *Subscription) Seq(ctx context.Context) iter.Seq[Record] {
	return func(yield func(Record) bool) {
		defer sub.Close()
		for {
			r, ok := sub.Next(ctx)
			if !ok {
				return
			}
			if !yield(r) {
				return
			}
		}
	}
}

// Dropped reports how many records this subscriber lost to a full
// ring.
func (sub *Subscription) Dropped() uint64 { return sub.dropped.Load() }

// Close detaches the subscription from the store. Idempotent and safe
// to call concurrently with publishes and with CloseSubscribers. A
// consumer blocked in Next is released; records still in the ring
// remain drainable.
func (sub *Subscription) Close() {
	sub.closeOnce.Do(func() {
		sub.st.unsubscribe(sub)
		close(sub.done)
	})
}

func (s *Store) unsubscribe(sub *Subscription) {
	s.mu.Lock()
	for i, x := range s.subs {
		if x == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// CloseSubscribers ends every live subscription and marks the store so
// later Subscribe calls return already-closed subscriptions. Records
// already ringed are still delivered to their consumers. The store
// itself keeps accepting Add calls (they simply have no audience);
// this is the teardown hook the owner of the store calls once the
// producers are stopped.
func (s *Store) CloseSubscribers() {
	s.mu.Lock()
	subs := s.subs
	s.subs = nil
	s.subsClosed = true
	s.mu.Unlock()
	for _, sub := range subs {
		sub.closeOnce.Do(func() { close(sub.done) })
	}
}

// Subscribers reports the number of live subscriptions.
func (s *Store) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// DroppedRecords reports the total records dropped across all
// subscribers, past and present — the observability half of the
// bounded-drop contract.
func (s *Store) DroppedRecords() uint64 { return s.dropped.Load() }
