package measure

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func brec(i int) Record {
	return Record{
		Kind: KindTCP,
		App:  fmt.Sprintf("app.%d", i%3),
		UID:  10000 + i%3,
		RTT:  time.Duration(i+1) * time.Millisecond,
		At:   time.Unix(0, int64(i)).UTC(),
	}
}

// The stream must observe exactly the records added after Subscribe,
// in Add order — the same order a Snapshot reports.
func TestSubscriptionSeesAddsInOrder(t *testing.T) {
	s := NewStore()
	sub := s.Subscribe(64, nil)
	defer sub.Close()
	const n = 50
	for i := 0; i < n; i++ {
		s.Add(brec(i))
	}
	snap := s.Snapshot()
	for i := 0; i < n; i++ {
		r, ok := sub.Next(context.Background())
		if !ok {
			t.Fatalf("stream ended at %d of %d", i, n)
		}
		if r != snap[i] {
			t.Fatalf("record %d: stream %+v != snapshot %+v", i, r, snap[i])
		}
	}
	if d := sub.Dropped(); d != 0 {
		t.Errorf("drops on an underfull ring: %d", d)
	}
}

func TestSubscriptionFilter(t *testing.T) {
	s := NewStore()
	sub := s.Subscribe(64, func(r Record) bool { return r.App == "app.1" })
	defer sub.Close()
	for i := 0; i < 30; i++ {
		s.Add(brec(i))
	}
	for i := 0; i < 10; i++ {
		r, ok := sub.Next(context.Background())
		if !ok {
			t.Fatalf("stream ended at %d", i)
		}
		if r.App != "app.1" {
			t.Fatalf("filter leaked %q", r.App)
		}
	}
	// Filtered-out records are not drops: the subscriber never wanted
	// them.
	if d := sub.Dropped(); d != 0 {
		t.Errorf("filtered records counted as drops: %d", d)
	}
}

// A full ring drops (and counts) instead of blocking the producer —
// the bounded-drop contract.
func TestSubscriptionBoundedDrop(t *testing.T) {
	s := NewStore()
	sub := s.Subscribe(4, nil)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		s.Add(brec(i)) // no consumer draining: 4 land, 6 drop
	}
	if d := sub.Dropped(); d != 6 {
		t.Fatalf("dropped %d, want 6", d)
	}
	if d := s.DroppedRecords(); d != 6 {
		t.Fatalf("store-wide drops %d, want 6", d)
	}
	// The survivors are the OLDEST records: drops happen at the tail,
	// so what got through is a prefix, not a random sample.
	for i := 0; i < 4; i++ {
		r, ok := sub.Next(context.Background())
		if !ok {
			t.Fatalf("ring ended at %d", i)
		}
		if want := brec(i); r != want {
			t.Fatalf("slot %d: got %+v want %+v", i, r, want)
		}
	}
}

func TestSubscriptionCloseReleasesBlockedNext(t *testing.T) {
	s := NewStore()
	sub := s.Subscribe(4, nil)
	done := make(chan bool)
	go func() {
		_, ok := sub.Next(context.Background())
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Next returned a record from an empty closed stream")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next still blocked after Close")
	}
	if n := s.Subscribers(); n != 0 {
		t.Errorf("subscribers after close: %d", n)
	}
}

func TestSubscriptionContextCancel(t *testing.T) {
	s := NewStore()
	sub := s.Subscribe(4, nil)
	defer sub.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool)
	go func() {
		_, ok := sub.Next(ctx)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Error("Next returned a record after cancellation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next still blocked after context cancel")
	}
}

// Closing the store's broadcast side ends the stream but does not
// truncate it: records already ringed are still delivered.
func TestCloseSubscribersDrainsRemainder(t *testing.T) {
	s := NewStore()
	sub := s.Subscribe(16, nil)
	for i := 0; i < 5; i++ {
		s.Add(brec(i))
	}
	s.CloseSubscribers()
	var got int
	for {
		_, ok := sub.Next(context.Background())
		if !ok {
			break
		}
		got++
	}
	if got != 5 {
		t.Errorf("drained %d of 5 ringed records after shutdown", got)
	}
	// Subscriptions opened after shutdown are born closed.
	late := s.Subscribe(16, nil)
	if _, ok := late.Next(context.Background()); ok {
		t.Error("post-shutdown subscription yielded a record")
	}
}

func TestSubscriptionSeq(t *testing.T) {
	s := NewStore()
	sub := s.Subscribe(64, nil)
	for i := 0; i < 8; i++ {
		s.Add(brec(i))
	}
	var got []Record
	for r := range sub.Seq(context.Background()) {
		got = append(got, r)
		if len(got) == 8 {
			break // breaking the range must close the subscription
		}
	}
	if len(got) != 8 {
		t.Fatalf("ranged %d of 8", len(got))
	}
	if n := s.Subscribers(); n != 0 {
		t.Errorf("subscription leaked past range break: %d live", n)
	}
}

// The zero-subscriber publish path is the engine hot path; pin it to
// zero allocations.
func TestPublishZeroSubscribersAllocFree(t *testing.T) {
	s := NewStore()
	r := brec(1)
	allocs := testing.AllocsPerRun(1000, func() {
		s.mu.Lock()
		s.publish(r)
		s.mu.Unlock()
	})
	if allocs != 0 {
		t.Errorf("zero-subscriber publish allocates %.1f/op", allocs)
	}
}

// With subscribers attached, both the delivery and the ring-full drop
// paths stay allocation-free.
func TestPublishWithSubscribersAllocFree(t *testing.T) {
	s := NewStore()
	sub := s.Subscribe(8, nil)
	defer sub.Close()
	filtered := s.Subscribe(8, func(Record) bool { return false })
	defer filtered.Close()
	r := brec(1)
	allocs := testing.AllocsPerRun(1000, func() {
		s.mu.Lock()
		s.publish(r) // ring fills after 8, then exercises the drop path
		s.mu.Unlock()
	})
	if allocs != 0 {
		t.Errorf("subscriber publish allocates %.1f/op", allocs)
	}
}

// A deliberately slow consumer against a flooding producer: the
// producer (the stand-in relay worker) must finish its flood without
// ever blocking on the subscriber, and the accounting must be exact —
// every produced record is either delivered (in order, no duplicates)
// or counted on the drop counters. Nothing vanishes, nothing doubles.
func TestSubscriptionSlowConsumerExactAccounting(t *testing.T) {
	s := NewStore()
	sub := s.Subscribe(8, nil)
	const total = 5000

	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		for i := 0; i < total; i++ {
			s.Add(brec(i))
		}
	}()

	// The slow consumer: one record, then a dawdle three orders of
	// magnitude longer than an Add.
	var delivered []Record
	consDone := make(chan struct{})
	go func() {
		defer close(consDone)
		for {
			r, ok := sub.Next(context.Background())
			if !ok {
				return
			}
			delivered = append(delivered, r)
			time.Sleep(time.Millisecond)
		}
	}()

	// The bounded-drop contract: the flood completes on the producer's
	// schedule, not the consumer's.
	select {
	case <-prodDone:
	case <-time.After(30 * time.Second):
		t.Fatal("producer stalled behind the slow consumer")
	}
	s.CloseSubscribers()
	<-consDone

	drops := int(sub.Dropped())
	if len(delivered)+drops != total {
		t.Fatalf("exact accounting: delivered %d + dropped %d = %d, want %d",
			len(delivered), drops, len(delivered)+drops, total)
	}
	if drops == 0 {
		t.Fatal("consumer was never behind: the test exercised nothing")
	}
	if got := int(s.DroppedRecords()); got != drops {
		t.Errorf("store-wide drops %d != subscriber drops %d", got, drops)
	}
	// Delivered records are an ordered subsequence of the Add sequence:
	// brec stamps At = Unix(0, i), so order and uniqueness reduce to
	// strictly increasing timestamps.
	for i := 1; i < len(delivered); i++ {
		if !delivered[i].At.After(delivered[i-1].At) {
			t.Fatalf("delivery %d out of order: %v after %v",
				i, delivered[i].At, delivered[i-1].At)
		}
	}
	// The store itself missed nothing: drops are a subscriber-ring
	// phenomenon, never data loss.
	if s.Len() != total {
		t.Errorf("store kept %d of %d", s.Len(), total)
	}
}

// Concurrent adders, a draining consumer, and a racing Close: the
// -race detector is the assertion, plus conservation — every record is
// delivered or counted as dropped.
func TestBroadcastConcurrency(t *testing.T) {
	s := NewStore()
	sub := s.Subscribe(32, nil)
	const producers, perProducer = 4, 200

	var consumed int
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for {
			_, ok := sub.Next(context.Background())
			if !ok {
				return
			}
			consumed++
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				s.Add(brec(p*perProducer + i))
			}
		}(p)
	}
	wg.Wait()
	s.CloseSubscribers()
	<-consumerDone

	total := producers * perProducer
	if got := consumed + int(sub.Dropped()); got != total {
		t.Errorf("conservation: consumed %d + dropped %d = %d, want %d",
			consumed, sub.Dropped(), got, total)
	}
	if s.Len() != total {
		t.Errorf("store kept %d of %d", s.Len(), total)
	}
}
