package netsim

import (
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

// echoRTT does one request/response round trip on an established
// connection and returns how long it took.
func echoRTT(t *testing.T, c *Conn) time.Duration {
	t.Helper()
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	got := 0
	for got < len(buf) {
		k, err := c.Read(buf[got:])
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got += k
	}
	return time.Since(start)
}

// The handover contract: SetLink must reshape connections that are
// already established, not just future dials. An echo round trip on a
// conn dialed at 5 ms one-way delay must slow down to the new 40 ms
// link after a mid-flow SetLink.
func TestSetLinkAffectsEstablishedConn(t *testing.T) {
	n := New(clock.NewReal(), LinkParams{Delay: 5 * time.Millisecond}, 1)
	defer n.Close()
	n.HandleTCP(serverAP, EchoHandler())
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	before := echoRTT(t, c)
	if before > 45*time.Millisecond {
		t.Fatalf("pre-handover echo RTT %v, want well under 45ms on a 10ms link", before)
	}

	n.SetLink(serverAP.Addr(), LinkParams{Delay: 40 * time.Millisecond})
	after := echoRTT(t, c)
	if after < 70*time.Millisecond {
		t.Errorf("post-handover echo RTT %v on the established conn, want >= 70ms (new link RTT 80ms)", after)
	}
	if got := c.Link().Delay; got != 40*time.Millisecond {
		t.Errorf("Conn.Link().Delay = %v after SetLink, want live 40ms", got)
	}
}

// A datagram already at the server when the link changes must come back
// over the new path: the request leaves on a 1 ms link, the link
// shifts to 40 ms one-way while the server is thinking, and the
// response must pay the new return delay.
func TestSetLinkAffectsInFlightUDP(t *testing.T) {
	n := New(clock.NewReal(), LinkParams{Delay: time.Millisecond}, 1)
	defer n.Close()
	n.HandleUDP(serverAP, 50*time.Millisecond, EchoUDPHandler())

	done := make(chan time.Duration, 1)
	start := time.Now()
	n.SendUDP(clientAP, serverAP, []byte("probe"), func([]byte) {
		done <- time.Since(start)
	})
	// Shift the link while the request sits in the server's think time.
	time.Sleep(20 * time.Millisecond)
	n.SetLink(serverAP.Addr(), LinkParams{Delay: 40 * time.Millisecond})

	select {
	case rtt := <-done:
		// 1ms out + 50ms think + 40ms back ≈ 91ms; a stale snapshot
		// would return in ≈ 52ms.
		if rtt < 75*time.Millisecond {
			t.Errorf("in-flight datagram returned in %v, want >= 75ms (response must travel the post-handover link)", rtt)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram never delivered")
	}
}

// Pins the documented per-direction UDP loss semantics: with Loss p
// drawn independently for request and response, transactions survive at
// (1-p)², not (1-p). Seeded, so the observed rate is reproducible.
func TestUDPLossIsPerDirection(t *testing.T) {
	const (
		p     = 0.3
		total = 600
	)
	n := New(clock.NewReal(), LinkParams{Delay: 100 * time.Microsecond, Loss: p}, 42)
	defer n.Close()
	n.HandleUDP(serverAP, 0, EchoUDPHandler())

	var delivered atomic.Int64
	for i := 0; i < total; i++ {
		n.SendUDP(clientAP, serverAP, []byte("x"), func([]byte) {
			delivered.Add(1)
		})
	}
	deadline := time.After(2 * time.Second)
	last, stable := int64(-1), 0
	for stable < 5 {
		select {
		case <-deadline:
			t.Fatalf("deliveries never quiesced: %d so far", delivered.Load())
		default:
		}
		time.Sleep(20 * time.Millisecond)
		if cur := delivered.Load(); cur == last {
			stable++
		} else {
			last, stable = cur, 0
		}
	}
	rate := float64(delivered.Load()) / total
	want := (1 - p) * (1 - p) // 0.49
	if rate < want-0.08 || rate > want+0.08 {
		t.Errorf("delivery rate %.3f, want ≈ (1-p)² = %.2f ± 0.08", rate, want)
	}
	// Distinguishes the two-direction draw from a single-draw model,
	// whose survival would be 1-p = 0.7.
	if rate > 0.62 {
		t.Errorf("delivery rate %.3f is consistent with a single loss draw (0.70), not per-direction (%.2f)", rate, want)
	}
}

// SharedQueue is the bufferbloat model: a bulk upload parks bytes on
// the shared bottleneck queue and a subsequent handshake's SYN waits
// behind them, inflating the measured connect RTT.
func TestBufferbloatInflatesHandshake(t *testing.T) {
	link := LinkParams{Delay: 2 * time.Millisecond, Up: Mbps(1), Down: Mbps(4), SharedQueue: true}
	n := New(clock.NewReal(), link, 1)
	defer n.Close()
	n.HandleTCP(serverAP, SinkHandler())

	start := time.Now()
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if idle := time.Since(start); idle > 60*time.Millisecond {
		t.Fatalf("idle-queue dial took %v, want near the 4ms base RTT", idle)
	}

	// 64 KiB at 1 Mbps books ~0.5s onto the shared uplink queue.
	if _, err := c.Write(make([]byte, 64<<10)); err != nil {
		t.Fatalf("bulk write: %v", err)
	}
	start = time.Now()
	c2, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial under load: %v", err)
	}
	defer c2.Close()
	loaded := time.Since(start)
	if loaded < 200*time.Millisecond {
		t.Errorf("dial under a full uplink queue took %v, want >= 200ms of queue delay", loaded)
	}
}

// Timeline steps fire in order at their offsets, and stop cancels the
// ones that have not fired.
func TestStartTimelineFiresAndStops(t *testing.T) {
	n := New(clock.NewReal(), LinkParams{Delay: time.Millisecond}, 1)
	defer n.Close()
	dst := serverAP.Addr()

	stop := n.StartTimeline([]netip.Addr{dst}, []TimelineStep{
		{At: 20 * time.Millisecond, Link: LinkParams{Delay: 7 * time.Millisecond}},
		{At: 60 * time.Millisecond, Link: LinkParams{Delay: 9 * time.Millisecond}},
	})
	defer stop()
	waitForDelay := func(want time.Duration) bool {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if n.Link(dst).Delay == want {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}
	if !waitForDelay(7 * time.Millisecond) {
		t.Fatalf("first step never applied; delay = %v", n.Link(dst).Delay)
	}
	if !waitForDelay(9 * time.Millisecond) {
		t.Fatalf("second step never applied; delay = %v", n.Link(dst).Delay)
	}

	stop2 := n.StartTimeline([]netip.Addr{dst}, []TimelineStep{
		{At: 50 * time.Millisecond, Link: LinkParams{Delay: 99 * time.Millisecond}},
	})
	stop2()
	time.Sleep(80 * time.Millisecond)
	if got := n.Link(dst).Delay; got == 99*time.Millisecond {
		t.Error("cancelled timeline step still fired")
	}
}

// ApplyProfile installs the app link on every destination and the DNS
// override on the resolver.
func TestApplyProfileInstallsLinks(t *testing.T) {
	n := New(clock.NewReal(), LinkParams{Delay: time.Millisecond}, 1)
	defer n.Close()
	p := ProfileDNSFlaky()
	stop := ApplyProfile(n, p, []netip.Addr{serverAP.Addr()}, dnsAP.Addr())
	defer stop()
	if got := n.Link(serverAP.Addr()); got != p.Link {
		t.Errorf("app link = %+v, want %+v", got, p.Link)
	}
	if got := n.Link(dnsAP.Addr()); got != *p.DNS {
		t.Errorf("dns link = %+v, want %+v", got, *p.DNS)
	}
}

// Hammers SetLink from a timeline while traffic flows on established
// connections and datagrams are in flight — the -race target for the
// live-link plumbing.
func TestSetLinkRaceUnderTraffic(t *testing.T) {
	n := New(clock.NewReal(), LinkParams{Delay: 200 * time.Microsecond, Jitter: 100 * time.Microsecond}, 7)
	defer n.Close()
	n.HandleTCP(serverAP, EchoHandler())
	n.HandleUDP(dnsAP, 0, EchoUDPHandler())

	var steps []TimelineStep
	for i := 0; i < 40; i++ {
		steps = append(steps, TimelineStep{
			At:   time.Duration(i) * 2 * time.Millisecond,
			Link: LinkParams{Delay: time.Duration(100+i*50) * time.Microsecond, SharedQueue: i%2 == 0, Up: Mbps(50), Down: Mbps(50)},
		})
	}
	stop := n.StartTimeline([]netip.Addr{serverAP.Addr(), dnsAP.Addr()}, steps)
	defer stop()

	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	deadline := time.Now().Add(100 * time.Millisecond)
	buf := make([]byte, 4)
	for time.Now().Before(deadline) {
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatalf("write: %v", err)
		}
		for got := 0; got < 4; {
			k, err := c.Read(buf[got:])
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			got += k
		}
		n.SendUDP(clientAP, dnsAP, []byte("q"), func([]byte) {})
		if _, err := n.Dial(clientAP, serverAP); err == nil {
			// Redial churn exercises linkFor + handshake under mutation.
		}
	}
}
