package netsim

import (
	"errors"
	"net/netip"
	"sync"
	"time"
)

// DefaultRecvBuffer is the per-connection receive buffer, matching the
// 64 KiB socket buffers MopEye configures (§3.4). When the buffer is
// full the sender backpressures, which is what bounds throughput to
// window/RTT the way kernel TCP flow control does.
const DefaultRecvBuffer = 65535

// sendQueueDepth bounds the number of in-flight chunks per direction
// (the send buffer analogue). Writers block when it is full.
const sendQueueDepth = 64

// chunk is one scheduled byte delivery, or a control signal.
type chunk struct {
	data    []byte
	eof     bool
	rst     bool
	arrival int64 // target arrival, clock nanos
}

// mailbox is an endpoint receive buffer with blocking and non-blocking
// reads and an optional readability callback for selector integration.
type mailbox struct {
	mu         sync.Mutex
	cond       *sync.Cond
	space      *sync.Cond
	chunks     [][]byte
	bytes      int
	capBytes   int
	eof        bool
	rst        bool
	closed     bool
	onReadable func()
}

func newMailbox(capBytes int) *mailbox {
	m := &mailbox{capBytes: capBytes}
	m.cond = sync.NewCond(&m.mu)
	m.space = sync.NewCond(&m.mu)
	return m
}

// deliver appends data, blocking while the buffer is full (flow
// control). Control deliveries (eof/rst) never block, so abort paths
// cannot deadlock behind a full buffer.
func (m *mailbox) deliver(c chunk) {
	m.mu.Lock()
	if c.rst {
		m.rst = true
		m.cond.Broadcast()
		m.space.Broadcast()
		cb := m.onReadable
		m.mu.Unlock()
		if cb != nil {
			cb()
		}
		return
	}
	if c.eof {
		m.eof = true
		m.cond.Broadcast()
		cb := m.onReadable
		m.mu.Unlock()
		if cb != nil {
			cb()
		}
		return
	}
	for m.bytes+len(c.data) > m.capBytes && !m.closed && !m.rst {
		m.space.Wait()
	}
	if m.closed || m.rst {
		m.mu.Unlock()
		return
	}
	wasEmpty := m.bytes == 0
	m.chunks = append(m.chunks, c.data)
	m.bytes += len(c.data)
	m.cond.Signal()
	cb := m.onReadable
	m.mu.Unlock()
	if wasEmpty && cb != nil {
		cb()
	}
}

// deliverBatch appends several data chunks under one lock session —
// the loopback-mode counterpart of a batched device write, so the
// engine-ceiling benchmarks exercise lock amortisation end to end
// instead of paying one mailbox lock per chunk. The single-lock fast
// path applies only when the whole batch fits in the buffer: a batch
// that would engage flow control must deliver chunk by chunk, because
// the reader that frees space is woken by per-chunk signals and the
// readability callback — holding the batch back until all chunks fit
// would deadlock writer and reader against each other. Control chunks
// (eof/rst) are not accepted here; they travel through deliver's
// out-of-band paths.
func (m *mailbox) deliverBatch(cs []chunk) {
	total := 0
	for _, c := range cs {
		total += len(c.data)
	}
	m.mu.Lock()
	if m.closed || m.rst {
		m.mu.Unlock()
		return
	}
	if m.bytes+total > m.capBytes {
		m.mu.Unlock()
		for _, c := range cs {
			m.deliver(c)
		}
		return
	}
	wasEmpty := m.bytes == 0
	for _, c := range cs {
		m.chunks = append(m.chunks, c.data)
		m.bytes += len(c.data)
	}
	m.cond.Broadcast()
	cb := m.onReadable
	m.mu.Unlock()
	if wasEmpty && cb != nil {
		cb()
	}
}

// read copies up to len(buf) bytes out. block selects blocking
// behaviour; non-blocking empty reads return ErrWouldBlock.
func (m *mailbox) read(buf []byte, block bool) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.bytes == 0 {
		if m.rst {
			return 0, ErrReset
		}
		if m.eof {
			return 0, errEOF
		}
		if m.closed {
			return 0, ErrClosed
		}
		if !block {
			return 0, ErrWouldBlock
		}
		m.cond.Wait()
	}
	n := 0
	for n < len(buf) && len(m.chunks) > 0 {
		c := m.chunks[0]
		k := copy(buf[n:], c)
		n += k
		if k == len(c) {
			m.chunks = m.chunks[1:]
		} else {
			m.chunks[0] = c[k:]
		}
		m.bytes -= k
	}
	m.space.Broadcast()
	return n, nil
}

func (m *mailbox) readable() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes > 0 || m.eof || m.rst || m.closed
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.space.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) setOnReadable(cb func()) {
	m.mu.Lock()
	m.onReadable = cb
	readable := m.bytes > 0 || m.eof || m.rst
	m.mu.Unlock()
	if readable && cb != nil {
		cb()
	}
}

// errEOF distinguishes orderly stream end internally; exported as
// ErrEOFConn via Conn.Read.
var errEOF = errors.New("netsim: EOF")

// scheduler delivers chunks to a destination mailbox after the link's
// serialisation and propagation delays, in FIFO order. Control signals
// (EOF after drain, immediate RST) travel out of band so teardown never
// blocks behind flow control. The link is re-read from the shared
// linkState per chunk, so a mid-flow SetLink reshapes delivery of
// everything scheduled after it.
type scheduler struct {
	net *Network
	ls  *linkState
	// down marks direction: true = server->phone (the Down bandwidth).
	down bool
	dst  *mailbox
	// sync marks loopback mode: deliveries happen inline on the
	// sender's thread and no run goroutine exists.
	sync bool

	mu            sync.Mutex
	nextFree      int64 // when the link can begin serialising the next chunk
	lastArr       int64 // monotonic arrival enforcement
	closed        bool
	eofAfterDrain bool

	q    chan chunk
	ctrl chan struct{} // wakes the run loop to re-check control flags
}

func newScheduler(n *Network, ls *linkState, down bool, dst *mailbox) *scheduler {
	s := &scheduler{
		net:  n,
		ls:   ls,
		down: down,
		dst:  dst,
	}
	if n.Loopback() {
		// Zero-delay loopback: no scheduler goroutine at all. Data goes
		// straight into the peer's mailbox (flow control still applies
		// — deliver blocks while the buffer is full, a full send buffer
		// in socket terms), EOF/RST flags flip inline.
		s.sync = true
		return s
	}
	s.q = make(chan chunk, sendQueueDepth)
	s.ctrl = make(chan struct{}, 1)
	go s.run()
	return s
}

// send enqueues a data delivery; blocks when the send queue is full
// (send-buffer backpressure), unblocking if the network shuts down.
func (s *scheduler) send(c chunk) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.sync {
		s.mu.Unlock()
		s.dst.deliver(c)
		return nil
	}
	now := s.net.clk.Nanos()
	// Live link read: a SetLink between writes moves every chunk
	// scheduled from here on, which is the handover contract.
	link := s.ls.params()
	var arr int64
	if link.SharedQueue {
		// Bufferbloat mode: serialisation is charged against the
		// destination's shared per-direction queue, so concurrent flows
		// inflate each other's delivery times.
		arr = now + int64(s.ls.reserve(now, len(c.data), s.down)) +
			int64(link.Delay) + int64(s.net.jitter(link.Jitter))
	} else {
		bw := link.Up
		if s.down {
			bw = link.Down
		}
		start := now
		if s.nextFree > start {
			start = s.nextFree
		}
		var tx int64
		if bw > 0 && len(c.data) > 0 {
			tx = int64(time.Duration(len(c.data)) * time.Second / time.Duration(bw))
		}
		s.nextFree = start + tx
		arr = s.nextFree + int64(link.Delay) + int64(s.net.jitter(link.Jitter))
	}
	if arr < s.lastArr {
		arr = s.lastArr
	}
	s.lastArr = arr
	c.arrival = arr
	s.mu.Unlock()
	select {
	case s.q <- c:
		return nil
	case <-s.net.done:
		return ErrNetDown
	}
}

// sendBatch delivers several data chunks as one batch. In loopback
// mode (sync delivery) the whole batch lands in the peer's mailbox
// under one lock session; on the simulated wire it falls back to
// per-chunk send, which is where the serialisation and propagation
// model lives. Like send, delivery to a peer that closed mid-batch is
// silently dropped — matching a kernel discarding bytes for a dead
// socket.
func (s *scheduler) sendBatch(cs []chunk) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.sync {
		s.mu.Unlock()
		s.dst.deliverBatch(cs)
		return nil
	}
	s.mu.Unlock()
	for _, c := range cs {
		if err := s.send(c); err != nil {
			return err
		}
	}
	return nil
}

// closeWithEOF asks the run loop to deliver an EOF after draining queued
// data, then exit. Never blocks.
func (s *scheduler) closeWithEOF() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.eofAfterDrain = true
	sync := s.sync
	s.mu.Unlock()
	if sync {
		s.dst.deliver(chunk{eof: true})
		return
	}
	s.wake()
}

// abort delivers a RST immediately (out of band) and stops the run
// loop. Never blocks: RST delivery is a flag flip on the mailbox, which
// also releases any deliver blocked on flow control.
func (s *scheduler) abort() {
	s.mu.Lock()
	if s.closed && !s.eofAfterDrain {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.eofAfterDrain = false
	sync := s.sync
	s.mu.Unlock()
	s.dst.deliver(chunk{rst: true})
	if !sync {
		s.wake()
	}
}

// stop ends the run loop without signalling the peer (used when the
// peer initiated the close).
func (s *scheduler) stop() {
	s.mu.Lock()
	s.closed = true
	sync := s.sync
	s.mu.Unlock()
	if !sync {
		s.wake()
	}
}

func (s *scheduler) wake() {
	select {
	case s.ctrl <- struct{}{}:
	default:
	}
}

func (s *scheduler) run() {
	for {
		select {
		case c := <-s.q:
			s.deliverAt(c)
		case <-s.ctrl:
			// Drain whatever was enqueued before the control signal,
			// preserving order, then act on the flags.
			for {
				select {
				case c := <-s.q:
					s.deliverAt(c)
					continue
				default:
				}
				break
			}
			s.mu.Lock()
			eof := s.eofAfterDrain
			closed := s.closed
			s.mu.Unlock()
			if eof {
				s.dst.deliver(chunk{eof: true})
			}
			if closed {
				return
			}
		case <-s.net.done:
			return
		}
	}
}

func (s *scheduler) deliverAt(c chunk) {
	d := time.Duration(c.arrival - s.net.clk.Nanos())
	if d > 0 {
		s.net.clk.Sleep(d)
	}
	s.dst.deliver(c)
}

// Conn is one endpoint of an established simulated TCP connection.
// Methods mirror what a socket offers: blocking and non-blocking reads,
// writes with flow control, half-close, and reset.
type Conn struct {
	net        *Network
	peer       *Conn
	local      netip.AddrPort
	remote     netip.AddrPort
	ls         *linkState
	clientSide bool

	rx *mailbox
	tx *scheduler

	mu          sync.Mutex
	writeClosed bool
	closed      bool
}

// LocalAddr returns this endpoint's address.
func (c *Conn) LocalAddr() netip.AddrPort { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() netip.AddrPort { return c.remote }

// Link returns the path parameters the connection currently
// experiences. It reads live state: after a mid-flow SetLink it
// reports the post-handover link.
func (c *Conn) Link() LinkParams { return c.ls.params() }

// Write sends len(b) bytes toward the peer, blocking on flow control.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.closed || c.writeClosed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	c.mu.Unlock()
	if len(b) == 0 {
		return 0, nil
	}
	if c.clientSide {
		c.net.emit(WireEvent{At: c.net.clk.Nanos(), Kind: EventDataOut, Local: c.local, Remote: c.remote, Bytes: len(b)})
	}
	// Segment at a fraction of the receive buffer so no single chunk
	// can exceed the peer's window — a write larger than the buffer
	// must trickle through flow control, not wedge behind it.
	const maxChunk = DefaultRecvBuffer / 4
	if c.tx.sync && len(b) > maxChunk {
		// Loopback: hand the whole segmented write over as one batch so
		// the peer's mailbox lock is paid once, not once per chunk.
		chunks := make([]chunk, 0, (len(b)+maxChunk-1)/maxChunk)
		for off := 0; off < len(b); off += maxChunk {
			end := off + maxChunk
			if end > len(b) {
				end = len(b)
			}
			chunks = append(chunks, chunk{data: append([]byte(nil), b[off:end]...)})
		}
		if err := c.tx.sendBatch(chunks); err != nil {
			return 0, err
		}
	} else {
		for off := 0; off < len(b); off += maxChunk {
			end := off + maxChunk
			if end > len(b) {
				end = len(b)
			}
			cp := append([]byte(nil), b[off:end]...)
			if err := c.tx.send(chunk{data: cp}); err != nil {
				return off, err
			}
		}
	}
	if !c.clientSide {
		c.net.emit(WireEvent{At: c.net.clk.Nanos(), Kind: EventDataIn, Local: c.remote, Remote: c.local, Bytes: len(b)})
	}
	return len(b), nil
}

// Read blocks until data, EOF, or reset. At stream end it returns
// (0, ErrEOFConn).
func (c *Conn) Read(buf []byte) (int, error) {
	n, err := c.rx.read(buf, true)
	if errors.Is(err, errEOF) {
		return n, ErrEOFConn
	}
	return n, err
}

// TryRead is the non-blocking read used by the selector-driven relay.
func (c *Conn) TryRead(buf []byte) (int, error) {
	n, err := c.rx.read(buf, false)
	if errors.Is(err, errEOF) {
		return n, ErrEOFConn
	}
	return n, err
}

// Readable reports whether a TryRead would make progress (data, EOF or
// reset pending).
func (c *Conn) Readable() bool { return c.rx.readable() }

// SetOnReadable installs a callback fired when the connection becomes
// readable. The selector uses this for event notification.
func (c *Conn) SetOnReadable(cb func()) { c.rx.setOnReadable(cb) }

// CloseWrite half-closes: the peer sees EOF once in-flight data drains.
// Never blocks.
func (c *Conn) CloseWrite() error {
	c.mu.Lock()
	if c.writeClosed || c.closed {
		c.mu.Unlock()
		return nil
	}
	c.writeClosed = true
	c.mu.Unlock()
	if c.clientSide {
		c.net.emit(WireEvent{At: c.net.clk.Nanos(), Kind: EventFINOut, Local: c.local, Remote: c.remote, Bytes: 40})
	}
	c.tx.closeWithEOF()
	return nil
}

// Close fully closes the endpoint: the peer sees EOF after in-flight
// data, and local reads fail with ErrClosed. Never blocks.
func (c *Conn) Close() error {
	c.CloseWrite()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.rx.close()
	return nil
}

// Reset aborts the connection: the peer observes ErrReset immediately,
// jumping any queued data. Never blocks.
func (c *Conn) Reset() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.writeClosed = true
	c.mu.Unlock()
	if c.clientSide {
		c.net.emit(WireEvent{At: c.net.clk.Nanos(), Kind: EventRST, Local: c.local, Remote: c.remote, Bytes: 40})
	}
	c.tx.abort()
	c.rx.close()
	return nil
}

// ErrEOFConn reports orderly stream end from Read/TryRead.
var ErrEOFConn = errors.New("netsim: connection EOF")
