package netsim

import (
	"net/netip"
)

// SendUDP transmits one datagram from src to dst. If a UDP service is
// registered at dst and neither direction drops the datagram, deliver is
// invoked (from a separate goroutine) with the response once it arrives
// back at the phone. There are no delivery guarantees, matching UDP: on
// loss or an unregistered destination, deliver is never called.
//
// MopEye relays all UDP this way; DNS (port 53) is the case it measures
// (§2.4). The caller is responsible for retries and timeouts, as a real
// resolver is.
func (n *Network) SendUDP(src, dst netip.AddrPort, payload []byte, deliver func([]byte)) {
	if n.isClosed() {
		return
	}
	n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventUDPOut, Local: src, Remote: dst, Bytes: len(payload)})
	link := n.Link(dst.Addr())
	if n.drop(link.Loss) {
		return
	}
	svc, ok := n.lookupUDP(dst)
	if !ok {
		return // silently dropped; ICMP unreachable is not modelled
	}
	req := append([]byte(nil), payload...)
	if n.Loopback() {
		// Zero-delay loopback: the service answers inline on the
		// sender's thread — no per-datagram goroutine, no link or think
		// sleeps. What remains is exactly the engine-side datagram work.
		resp := svc.handler(req, src)
		if resp == nil {
			return
		}
		n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventUDPIn, Local: src, Remote: dst, Bytes: len(resp)})
		deliver(resp)
		return
	}
	outDelay := link.Delay + n.jitter(link.Jitter)
	go func() {
		n.clk.Sleep(outDelay)
		if svc.think > 0 {
			n.clk.Sleep(svc.think)
		}
		resp := svc.handler(req, src)
		if resp == nil {
			return
		}
		if n.drop(link.Loss) {
			return
		}
		backDelay := link.Delay + n.jitter(link.Jitter)
		n.clk.Sleep(backDelay)
		if n.isClosed() {
			return
		}
		n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventUDPIn, Local: src, Remote: dst, Bytes: len(resp)})
		deliver(resp)
	}()
}
