package netsim

import (
	"net/netip"
)

// SendUDP transmits one datagram from src to dst. If a UDP service is
// registered at dst and neither direction drops the datagram, deliver is
// invoked (from a separate goroutine) with the response once it arrives
// back at the phone. There are no delivery guarantees, matching UDP: on
// loss or an unregistered destination, deliver is never called.
//
// LinkParams.Loss is drawn independently for the request and for the
// response — each one-way trip is its own gamble, as on a real path —
// so a transaction completes with probability (1-Loss)². The link is
// re-read for the return trip: if SetLink changes the path while the
// request is at the server (a handover), the response travels the new
// link's loss, delay and jitter.
//
// MopEye relays all UDP this way; DNS (port 53) is the case it measures
// (§2.4). The caller is responsible for retries and timeouts, as a real
// resolver is.
func (n *Network) SendUDP(src, dst netip.AddrPort, payload []byte, deliver func([]byte)) {
	if n.isClosed() {
		return
	}
	n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventUDPOut, Local: src, Remote: dst, Bytes: len(payload)})
	ls := n.linkFor(dst.Addr())
	link := ls.params()
	if n.drop(link.Loss) {
		return
	}
	svc, ok := n.lookupUDP(dst)
	if !ok {
		return // silently dropped; ICMP unreachable is not modelled
	}
	req := append([]byte(nil), payload...)
	if n.Loopback() {
		// Zero-delay loopback: the service answers inline on the
		// sender's thread — no per-datagram goroutine, no link or think
		// sleeps. What remains is exactly the engine-side datagram work.
		resp := svc.handler(req, src)
		if resp == nil {
			return
		}
		n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventUDPIn, Local: src, Remote: dst, Bytes: len(resp)})
		deliver(resp)
		return
	}
	outDelay := link.Delay + n.jitter(link.Jitter)
	if link.SharedQueue {
		outDelay += ls.reserve(n.clk.Nanos(), len(payload), false)
	}
	go func() {
		n.clk.Sleep(outDelay)
		if svc.think > 0 {
			n.clk.Sleep(svc.think)
		}
		resp := svc.handler(req, src)
		if resp == nil {
			return
		}
		// Independent per-direction draw, against the link as it is NOW
		// — the request may have been in flight across a SetLink.
		back := ls.params()
		if n.drop(back.Loss) {
			return
		}
		backDelay := back.Delay + n.jitter(back.Jitter)
		if back.SharedQueue {
			backDelay += ls.reserve(n.clk.Nanos(), len(resp), true)
		}
		n.clk.Sleep(backDelay)
		if n.isClosed() {
			return
		}
		n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventUDPIn, Local: src, Remote: dst, Bytes: len(resp)})
		deliver(resp)
	}()
}
