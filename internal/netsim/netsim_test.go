package netsim

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnsmsg"
)

var (
	clientAP = netip.MustParseAddrPort("100.64.0.5:40000")
	serverAP = netip.MustParseAddrPort("93.184.216.34:80")
	dnsAP    = netip.MustParseAddrPort("8.8.8.8:53")
)

func newNet(delay time.Duration) *Network {
	return New(clock.NewReal(), LinkParams{Delay: delay}, 1)
}

func TestDialTakesOneRTT(t *testing.T) {
	n := newNet(3 * time.Millisecond)
	defer n.Close()
	n.HandleTCP(serverAP, EchoHandler())
	start := time.Now()
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	elapsed := time.Since(start)
	if elapsed < 6*time.Millisecond {
		t.Errorf("dial took %v, want >= RTT 6ms", elapsed)
	}
	if elapsed > 60*time.Millisecond {
		t.Errorf("dial took %v, too slow", elapsed)
	}
}

func TestDialRefusedAfterRTT(t *testing.T) {
	n := newNet(2 * time.Millisecond)
	defer n.Close()
	start := time.Now()
	_, err := n.Dial(clientAP, serverAP)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("got %v, want ErrRefused", err)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Error("RST arrived before a round trip")
	}
}

func TestEchoData(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	n.HandleTCP(serverAP, EchoHandler())
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	msg := []byte("ping over simulated wire")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	got := 0
	for got < len(msg) {
		k, err := c.Read(buf[got:])
		got += k
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	if string(buf) != string(msg) {
		t.Errorf("echo: %q", buf)
	}
}

func TestEOFPropagates(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	n.HandleTCP(serverAP, SourceHandler(100))
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	total := 0
	buf := make([]byte, 64)
	for {
		k, err := c.Read(buf)
		total += k
		if err != nil {
			if !errors.Is(err, ErrEOFConn) {
				t.Fatalf("read: %v", err)
			}
			break
		}
	}
	if total != 100 {
		t.Errorf("got %d bytes, want 100", total)
	}
}

func TestResetPropagates(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	ready := make(chan *Conn, 1)
	n.HandleTCP(serverAP, func(c *Conn) { ready <- c })
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	server := <-ready
	server.Reset()
	buf := make([]byte, 8)
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.TryRead(buf)
		if errors.Is(err, ErrReset) {
			return
		}
		if errors.Is(err, ErrWouldBlock) {
			if time.Now().After(deadline) {
				t.Fatal("reset never arrived")
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("unexpected read error: %v", err)
		}
	}
}

func TestFlowControlBackpressure(t *testing.T) {
	n := newNet(100 * time.Microsecond)
	defer n.Close()
	// A sink that never reads: the sender must stall once the receive
	// buffer and the send queue fill — the kernel-TCP behaviour that
	// bounds throughput to window/RTT (Table 3's mechanism).
	n.HandleTCP(serverAP, func(c *Conn) {
		select {} // never reads, never closes
	})
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	written := make(chan int, 1)
	go func() {
		total := 0
		chunk := make([]byte, 8192)
		for total < 4<<20 {
			k, err := c.Write(chunk)
			total += k
			if err != nil {
				break
			}
		}
		written <- total
	}()
	select {
	case total := <-written:
		t.Fatalf("writer pushed %d bytes into a non-reading peer", total)
	case <-time.After(100 * time.Millisecond):
		// Blocked, as flow control demands.
	}
}

func TestBandwidthLimitsThroughput(t *testing.T) {
	n := New(clock.NewReal(), LinkParams{Delay: 500 * time.Microsecond, Down: Mbps(50)}, 1)
	defer n.Close()
	const total = 256 * 1024 // 256 KiB at 50 Mbps ~ 42 ms
	n.HandleTCP(serverAP, SourceHandler(total))
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	buf := make([]byte, 32*1024)
	got := 0
	for {
		k, err := c.Read(buf)
		got += k
		if err != nil {
			break
		}
	}
	elapsed := time.Since(start)
	if got != total {
		t.Fatalf("got %d want %d", got, total)
	}
	ideal := time.Duration(float64(total) / float64(Mbps(50)) * float64(time.Second))
	if elapsed < ideal {
		t.Errorf("transfer finished in %v, faster than the %v line rate", elapsed, ideal)
	}
	if elapsed > 5*ideal {
		t.Errorf("transfer took %v, line rate only needs %v", elapsed, ideal)
	}
}

func TestSYNLossRecoversViaRetransmit(t *testing.T) {
	n := New(clock.NewReal(), LinkParams{Delay: time.Millisecond, Loss: 0.5}, 7)
	defer n.Close()
	n.SetSYNRetry(5*time.Millisecond, 10)
	n.HandleTCP(serverAP, EchoHandler())
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial with 50%% SYN loss: %v", err)
	}
	c.Close()
}

func TestSYNTimeoutWhenFullyLossy(t *testing.T) {
	n := New(clock.NewReal(), LinkParams{Delay: time.Millisecond, Loss: 1.0}, 7)
	defer n.Close()
	n.SetSYNRetry(time.Millisecond, 3)
	n.HandleTCP(serverAP, EchoHandler())
	if _, err := n.Dial(clientAP, serverAP); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

func TestPerDestinationLinkOverride(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	far := netip.MustParseAddrPort("108.160.166.126:443")
	n.SetLink(far.Addr(), LinkParams{Delay: 20 * time.Millisecond})
	n.HandleTCP(far, EchoHandler())
	n.HandleTCP(serverAP, EchoHandler())

	start := time.Now()
	c1, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatal(err)
	}
	nearTime := time.Since(start)
	c1.Close()

	start = time.Now()
	c2, err := n.Dial(clientAP, far)
	if err != nil {
		t.Fatal(err)
	}
	farTime := time.Since(start)
	c2.Close()

	if farTime < 5*nearTime {
		t.Errorf("far dial %v not much slower than near dial %v", farTime, nearTime)
	}
}

func TestSnifferSeesSYNAndSYNACK(t *testing.T) {
	n := newNet(2 * time.Millisecond)
	defer n.Close()
	n.HandleTCP(serverAP, EchoHandler())
	var mu sync.Mutex
	var events []WireEvent
	n.AddSniffer(func(ev WireEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(events) < 2 {
		t.Fatalf("events: %d", len(events))
	}
	if events[0].Kind != EventSYN || events[1].Kind != EventSYNACK {
		t.Fatalf("kinds: %v %v", events[0].Kind, events[1].Kind)
	}
	rtt := time.Duration(events[1].At - events[0].At)
	if rtt < 4*time.Millisecond || rtt > 40*time.Millisecond {
		t.Errorf("wire RTT %v, configured 4ms", rtt)
	}
}

func TestUDPRequestResponse(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	n.HandleUDP(dnsAP, 0, func(req []byte, from netip.AddrPort) []byte {
		return append([]byte("re:"), req...)
	})
	got := make(chan []byte, 1)
	start := time.Now()
	n.SendUDP(clientAP, dnsAP, []byte("q"), func(resp []byte) { got <- resp })
	select {
	case resp := <-got:
		if string(resp) != "re:q" {
			t.Errorf("resp: %q", resp)
		}
		if time.Since(start) < 2*time.Millisecond {
			t.Error("UDP round trip faster than the link allows")
		}
	case <-time.After(time.Second):
		t.Fatal("no UDP response")
	}
}

func TestUDPLossDropsSilently(t *testing.T) {
	n := New(clock.NewReal(), LinkParams{Delay: time.Millisecond, Loss: 1.0}, 3)
	defer n.Close()
	n.HandleUDP(dnsAP, 0, func(req []byte, from netip.AddrPort) []byte { return req })
	got := make(chan []byte, 1)
	n.SendUDP(clientAP, dnsAP, []byte("q"), func(resp []byte) { got <- resp })
	select {
	case <-got:
		t.Fatal("response arrived despite 100% loss")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestDNSHandlerResolvesAndNXDomains(t *testing.T) {
	zone := NewZone()
	addr := netip.MustParseAddr("31.13.79.251")
	zone.Add("graph.facebook.com", addr)
	h := DNSHandler(zone)

	q := dnsmsg.NewQuery(77, "graph.facebook.com", dnsmsg.TypeA)
	raw, _ := q.Encode()
	resp := h(raw, clientAP)
	m, err := dnsmsg.Decode(resp)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := m.Answers[0].Addr()
	if !ok || got != addr {
		t.Errorf("answer: %v", got)
	}

	q2 := dnsmsg.NewQuery(78, "unknown.example", dnsmsg.TypeA)
	raw2, _ := q2.Encode()
	m2, err := dnsmsg.Decode(h(raw2, clientAP))
	if err != nil {
		t.Fatalf("decode nx: %v", err)
	}
	if m2.RCode != dnsmsg.RCodeNXDomain {
		t.Errorf("rcode: %d", m2.RCode)
	}

	if h([]byte{1, 2}, clientAP) != nil {
		t.Error("garbage query got a response")
	}
}

func TestZoneCaseInsensitive(t *testing.T) {
	zone := NewZone()
	zone.Add("Example.COM.", netip.MustParseAddr("1.1.1.1"))
	if _, ok := zone.Lookup("example.com"); !ok {
		t.Error("case/dot normalisation failed")
	}
}

func TestInstall(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	specs := []ServerSpec{
		{Domain: "a.example", Addr: netip.MustParseAddrPort("10.1.0.1:80"), Link: LinkParams{Delay: time.Millisecond}, Handler: EchoHandler()},
		{Domain: "b.example", Addr: netip.MustParseAddrPort("10.1.0.2:80"), Link: LinkParams{Delay: 2 * time.Millisecond}, Handler: EchoHandler()},
	}
	zone, err := Install(n, specs, dnsAP, LinkParams{Delay: time.Millisecond}, 0)
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	if zone.Len() != 2 {
		t.Errorf("zone size: %d", zone.Len())
	}
	if _, ok := zone.Lookup("a.example"); !ok {
		t.Error("a.example missing")
	}
	c, err := n.Dial(clientAP, specs[0].Addr)
	if err != nil {
		t.Fatalf("dial installed server: %v", err)
	}
	c.Close()
}

func TestInstallRejectsNilHandler(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	_, err := Install(n, []ServerSpec{{Domain: "x", Addr: serverAP}}, dnsAP, LinkParams{}, 0)
	if err == nil {
		t.Error("nil handler accepted")
	}
}

func TestDialAfterNetworkClose(t *testing.T) {
	n := newNet(time.Millisecond)
	n.HandleTCP(serverAP, EchoHandler())
	n.Close()
	if _, err := n.Dial(clientAP, serverAP); !errors.Is(err, ErrNetDown) {
		t.Errorf("got %v, want ErrNetDown", err)
	}
}

func TestHalfCloseStillDeliversPendingData(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	n.HandleTCP(serverAP, func(c *Conn) {
		defer c.Close()
		_, _ = c.Write([]byte("tail"))
		c.CloseWrite()
	})
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 16)
	got := 0
	for {
		k, err := c.Read(buf[got:])
		got += k
		if err != nil {
			break
		}
	}
	if string(buf[:got]) != "tail" {
		t.Errorf("data before EOF: %q", buf[:got])
	}
}

func TestChattyHandler(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	n.HandleTCP(serverAP, ChattyHandler())
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte{0, 0, 0, 100}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	got := 0
	for got < 100 {
		k, err := c.Read(buf[got:])
		got += k
		if err != nil {
			t.Fatalf("read: %v (got %d)", err, got)
		}
	}
}

func TestHTTPPingHandler(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	n.HandleTCP(serverAP, HTTPPingHandler())
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("HEAD / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	k, err := c.Read(buf)
	if err != nil || k == 0 {
		t.Fatalf("read: %d %v", k, err)
	}
	if string(buf[:12]) != "HTTP/1.1 204" {
		t.Errorf("response: %q", buf[:k])
	}
}

func TestMbps(t *testing.T) {
	if Mbps(8) != 1e6 {
		t.Errorf("Mbps(8) = %d bytes/s", Mbps(8))
	}
}

func TestWriteLargerThanReceiveBuffer(t *testing.T) {
	// Regression: a single Write exceeding the 64 KiB receive buffer
	// must trickle through flow control, not deadlock behind it.
	n := newNet(100 * time.Microsecond)
	defer n.Close()
	n.HandleTCP(serverAP, func(c *Conn) {
		defer c.Close()
		big := make([]byte, 256*1024)
		if _, err := c.Write(big); err != nil {
			return
		}
		c.CloseWrite()
	})
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := 0
	buf := make([]byte, 32*1024)
	deadline := time.Now().Add(10 * time.Second)
	for {
		k, err := c.Read(buf)
		got += k
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled at %d bytes", got)
		}
	}
	if got != 256*1024 {
		t.Fatalf("got %d of %d bytes", got, 256*1024)
	}
}

func TestConcurrentDials(t *testing.T) {
	n := newNet(time.Millisecond)
	defer n.Close()
	n.HandleTCP(serverAP, EchoHandler())
	const k = 20
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		go func(i int) {
			src := netip.AddrPortFrom(clientAP.Addr(), uint16(41000+i))
			c, err := n.Dial(src, serverAP)
			if err == nil {
				c.Close()
			}
			errs <- err
		}(i)
	}
	for i := 0; i < k; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
}

// TestLoopbackBatchWriteIntegrity drives the loopback batch-delivery
// path: a write spanning many chunks (well past both the segmentation
// grain and the peer's receive buffer) must arrive intact and in order
// through mailbox.deliverBatch, with flow control still backpressuring
// inside the batch (the reader drains concurrently, or the write could
// never finish).
func TestLoopbackBatchWriteIntegrity(t *testing.T) {
	n := newNet(0)
	n.SetLoopback(true)
	defer n.Close()
	n.HandleTCP(serverAP, EchoHandler())
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	payload := make([]byte, 200*1024) // > 3× the 64 KiB receive buffer
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	go func() {
		if _, werr := c.Write(payload); werr != nil {
			t.Errorf("batched write: %v", werr)
		}
	}()
	got := make([]byte, 0, len(payload))
	buf := make([]byte, 32*1024)
	for len(got) < len(payload) {
		nn, rerr := c.Read(buf)
		got = append(got, buf[:nn]...)
		if rerr != nil {
			t.Fatalf("read after %d bytes: %v", len(got), rerr)
		}
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("corruption at byte %d: got %#x want %#x", i, got[i], payload[i])
		}
	}
}

// TestLoopbackBatchFiresReadableCallback checks the selector contract
// survives batching: a batched delivery into an empty mailbox fires the
// readability callback exactly like per-chunk delivery does.
func TestLoopbackBatchFiresReadableCallback(t *testing.T) {
	n := newNet(0)
	n.SetLoopback(true)
	defer n.Close()
	ready := make(chan struct{}, 1)
	n.HandleTCP(serverAP, func(c *Conn) {
		defer c.Close()
		c.SetOnReadable(func() {
			select {
			case ready <- struct{}{}:
			default:
			}
		})
		<-ready // observed readability
		buf := make([]byte, 64*1024)
		total := 0
		for total < 40*1024 {
			nn, err := c.Read(buf)
			total += nn
			if err != nil {
				t.Errorf("server read: %v", err)
				return
			}
		}
	})
	c, err := n.Dial(clientAP, serverAP)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write(make([]byte, 40*1024)); err != nil { // multi-chunk batch
		t.Fatalf("write: %v", err)
	}
}
