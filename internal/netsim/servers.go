package netsim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/dnsmsg"
)

// This file provides the canned server behaviours the experiments need:
// an echo server, a byte sink and byte source for speedtest-style
// throughput runs (Table 3), an HTTP-ping style responder for the
// MobiPerf baseline (Table 2), and a DNS resolver (§2.4, Figures 10–11).

// EchoHandler returns a TCP handler that writes back everything it
// reads.
func EchoHandler() TCPHandler {
	return func(c *Conn) {
		defer c.Close()
		buf := make([]byte, 32*1024)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				if _, werr := c.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
}

// EchoUDPHandler answers every datagram with its own payload — the
// UDP counterpart of EchoHandler, used by loss-rate and scenario
// workload tests.
func EchoUDPHandler() UDPHandler {
	return func(req []byte, _ netip.AddrPort) []byte { return req }
}

// SinkHandler consumes and discards all uploaded bytes, acknowledging
// nothing — the upload half of a speedtest server.
func SinkHandler() TCPHandler {
	return func(c *Conn) {
		defer c.Close()
		buf := make([]byte, 32*1024)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}
}

// CountingSinkHandler consumes uploaded bytes and adds them to the
// counter, so a speedtest can measure delivered (not merely buffered)
// upload throughput at the server.
func CountingSinkHandler(counter *atomic.Int64) TCPHandler {
	return func(c *Conn) {
		defer c.Close()
		buf := make([]byte, 32*1024)
		for {
			n, err := c.Read(buf)
			counter.Add(int64(n))
			if err != nil {
				return
			}
		}
	}
}

// SourceHandler streams total bytes to the client as fast as flow
// control allows, then half-closes — the download half of a speedtest.
func SourceHandler(total int64) TCPHandler {
	return func(c *Conn) {
		defer c.Close()
		buf := make([]byte, 16*1024)
		var sent int64
		for sent < total {
			n := int64(len(buf))
			if total-sent < n {
				n = total - sent
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
			sent += n
		}
		c.CloseWrite()
	}
}

// HTTPPingHandler answers a minimal HTTP request with "HTTP/1.1 204 No
// Content". MobiPerf's HTTP ping (§4.1.1) issues such requests and
// derives RTT from them.
func HTTPPingHandler() TCPHandler {
	return func(c *Conn) {
		defer c.Close()
		buf := make([]byte, 4096)
		var req bytes.Buffer
		for {
			n, err := c.Read(buf)
			if n > 0 {
				req.Write(buf[:n])
				if bytes.Contains(req.Bytes(), []byte("\r\n\r\n")) {
					_, _ = c.Write([]byte("HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n"))
					req.Reset()
					continue
				}
			}
			if err != nil {
				return
			}
		}
	}
}

// ChattyHandler reads a 4-byte big-endian length and echoes that many
// zero bytes back, repeatedly. It models a generic request/response app
// server (the per-app workloads use it).
func ChattyHandler() TCPHandler {
	return func(c *Conn) {
		defer c.Close()
		hdr := make([]byte, 4)
		for {
			if err := readFull(c, hdr); err != nil {
				return
			}
			n := binary.BigEndian.Uint32(hdr)
			if n > 1<<20 {
				return
			}
			resp := make([]byte, n)
			if _, err := c.Write(resp); err != nil {
				return
			}
		}
	}
}

func readFull(c *Conn, buf []byte) error {
	got := 0
	for got < len(buf) {
		n, err := c.Read(buf[got:])
		got += n
		if err != nil {
			if got == len(buf) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Zone maps fully qualified names to addresses for the simulated DNS
// service.
type Zone struct {
	records map[string]netip.Addr
}

// NewZone creates an empty zone.
func NewZone() *Zone { return &Zone{records: make(map[string]netip.Addr)} }

// Add registers name -> addr. Names are case-insensitive and stored
// without a trailing dot.
func (z *Zone) Add(name string, addr netip.Addr) {
	z.records[normalizeName(name)] = addr
}

// Lookup resolves a name.
func (z *Zone) Lookup(name string) (netip.Addr, bool) {
	a, ok := z.records[normalizeName(name)]
	return a, ok
}

// Len returns the number of records.
func (z *Zone) Len() int { return len(z.records) }

func normalizeName(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// DNSHandler answers A/AAAA queries from the zone. Unknown names get
// NXDOMAIN. Non-queries and unsupported opcodes are ignored (nil).
func DNSHandler(zone *Zone) UDPHandler {
	return func(req []byte, from netip.AddrPort) []byte {
		q, err := dnsmsg.Decode(req)
		if err != nil || q.Response || len(q.Questions) == 0 {
			return nil
		}
		name := q.Questions[0].Name
		addr, ok := zone.Lookup(name)
		if !ok {
			resp := dnsmsg.NewResponse(q, dnsmsg.RCodeNXDomain)
			out, _ := resp.Encode()
			return out
		}
		resp := dnsmsg.NewResponse(q, dnsmsg.RCodeOK)
		qt := q.Questions[0].Type
		if (qt == dnsmsg.TypeA && addr.Is4()) || (qt == dnsmsg.TypeAAAA && !addr.Is4()) || qt == dnsmsg.TypeA {
			resp.AddAddress(name, addr, 300)
		}
		out, err := resp.Encode()
		if err != nil {
			return nil
		}
		return out
	}
}

// ServerSpec describes one app server to install on the network: a
// domain name, an address, link parameters, and the handler behaviour.
type ServerSpec struct {
	Domain  string
	Addr    netip.AddrPort
	Link    LinkParams
	Handler TCPHandler
}

// Install registers a set of servers and their DNS names in one step,
// returning the zone used. dnsAddr is where the resolver is placed and
// dnsLink its path (the paper's Figures 10–11 give DNS its own, usually
// shorter, path since resolvers sit in the ISP).
func Install(n *Network, specs []ServerSpec, dnsAddr netip.AddrPort, dnsLink LinkParams, dnsThink time.Duration) (*Zone, error) {
	zone := NewZone()
	for _, s := range specs {
		if s.Handler == nil {
			return nil, errors.New("netsim: ServerSpec with nil handler")
		}
		if !s.Addr.IsValid() {
			return nil, fmt.Errorf("netsim: invalid server addr for %q", s.Domain)
		}
		n.HandleTCP(s.Addr, s.Handler)
		n.SetLink(s.Addr.Addr(), s.Link)
		if s.Domain != "" {
			zone.Add(s.Domain, s.Addr.Addr())
		}
	}
	n.HandleUDP(dnsAddr, dnsThink, DNSHandler(zone))
	n.SetLink(dnsAddr.Addr(), dnsLink)
	return zone, nil
}
