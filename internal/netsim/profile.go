package netsim

import (
	"net/netip"
	"sort"
	"sync"
	"time"
)

// TimelineStep is one scripted condition change: At is the offset from
// the timeline's start after which the destination's link becomes Link.
type TimelineStep struct {
	At   time.Duration
	Link LinkParams
}

// ConditionProfile bundles the path conditions of one scenario: the
// app-server link, an optional resolver-path override, and a scripted
// timeline of mid-run link changes. Profiles compose the existing
// LinkParams axes (delay, jitter, per-direction loss, asymmetric
// bandwidth, shared bottleneck queues) into the adverse regimes the
// paper's measurements were built for — lossy cellular, bufferbloat,
// handover, flaky DNS.
//
// The envelope fields state what a truthful measurement pipeline must
// report under the profile: they are derived from the injected physics
// (base RTT through worst timeline phase, plus jitter) widened by
// sketch error and real-clock scheduling slack. The scenario matrix
// (mopeye.RunScenarioMatrix) asserts measured medians land inside
// them.
type ConditionProfile struct {
	Name string
	// Link shapes every phone <-> app-server path in the scenario.
	Link LinkParams
	// DNS optionally shapes the resolver path; nil means the resolver
	// shares Link.
	DNS *LinkParams
	// Timeline scripts mid-run changes to the app-server links
	// (handover). Offsets are relative to ApplyProfile/StartTimeline.
	Timeline []TimelineStep
	// RTTLo/RTTHi bound the TCP connect-RTT median a truthful pipeline
	// must measure under this profile.
	RTTLo, RTTHi time.Duration
	// DNSLo/DNSHi bound the DNS RTT median; both zero means no DNS
	// envelope applies (e.g. a blackhole regime produces no DNS
	// measurements at all).
	DNSLo, DNSHi time.Duration
}

// envelope converts a link's physics into a truthfulness envelope for
// the measured RTT median: at least the jitter-free RTT minus clock
// granularity, at most RTT plus full two-way jitter plus slack for
// engine processing and real-clock scheduling.
func envelope(l LinkParams, slack time.Duration) (lo, hi time.Duration) {
	lo = l.RTT() - 2*time.Millisecond
	if lo < 0 {
		lo = 0
	}
	return lo, l.RTT() + 2*l.Jitter + slack
}

// measurementSlack is the allowance added to every profile's upper
// envelope for costs that are real but not part of the injected link:
// engine relay work, goroutine scheduling on a loaded CI host, sketch
// relative error. Deliberately generous — envelope checks exist to
// catch measurements that stop tracking the link, not to benchmark the
// host.
const measurementSlack = 75 * time.Millisecond

// ProfileWiFi is the clean baseline: a quiet home WLAN.
func ProfileWiFi() ConditionProfile {
	link := LinkParams{Delay: 10 * time.Millisecond, Jitter: 2 * time.Millisecond}
	lo, hi := envelope(link, measurementSlack)
	return ConditionProfile{Name: "clean-wifi", Link: link, RTTLo: lo, RTTHi: hi}
}

// ProfileLossyCellular is a marginal cellular link: high base RTT, wide
// jitter, and per-direction random loss that triggers occasional SYN
// retransmissions. The median stays truthful because loss is rare
// enough that RTO-inflated samples sit in the tail.
func ProfileLossyCellular() ConditionProfile {
	link := LinkParams{
		Delay:  60 * time.Millisecond,
		Jitter: 25 * time.Millisecond,
		Loss:   0.02,
	}
	lo, hi := envelope(link, measurementSlack)
	return ConditionProfile{Name: "lossy-cellular", Link: link, RTTLo: lo, RTTHi: hi}
}

// ProfileBufferbloat is a deep-buffered bottleneck: moderate base RTT
// but a shared serialisation queue per direction, so queue delay grows
// with offered load and handshakes measure it. The upper envelope
// budgets for the queue a saturating workload can build in a scenario
// cell; an idle cell simply measures near the base RTT.
func ProfileBufferbloat() ConditionProfile {
	link := LinkParams{
		Delay:       20 * time.Millisecond,
		Jitter:      5 * time.Millisecond,
		Down:        Mbps(4),
		Up:          Mbps(1.5),
		SharedQueue: true,
	}
	lo, hi := envelope(link, measurementSlack)
	return ConditionProfile{Name: "bufferbloat", Link: link, RTTLo: lo, RTTHi: hi + 2*time.Second}
}

// ProfileAsymmetricUplink is an ADSL-shaped path: plenty of downlink,
// a thin shared uplink. Upload-heavy workloads queue behind the thin
// direction and inflate RTTs; download-heavy ones barely notice.
func ProfileAsymmetricUplink() ConditionProfile {
	link := LinkParams{
		Delay:       25 * time.Millisecond,
		Jitter:      5 * time.Millisecond,
		Down:        Mbps(8),
		Up:          Mbps(0.75),
		SharedQueue: true,
	}
	lo, hi := envelope(link, measurementSlack)
	return ConditionProfile{Name: "asym-uplink", Link: link, RTTLo: lo, RTTHi: hi + 2*time.Second}
}

// ProfileHandover starts on a fast LTE-like link and degrades mid-run
// to a slow cell edge — a scripted SetLink that established
// connections and in-flight datagrams must feel, not just new dials.
// The envelope spans both phases; where the median lands inside it
// depends on how much of the run preceded the switch.
func ProfileHandover() ConditionProfile {
	before := LinkParams{Delay: 20 * time.Millisecond, Jitter: 5 * time.Millisecond}
	after := LinkParams{Delay: 80 * time.Millisecond, Jitter: 10 * time.Millisecond}
	lo, _ := envelope(before, measurementSlack)
	_, hi := envelope(after, measurementSlack)
	return ConditionProfile{
		Name:     "handover",
		Link:     before,
		Timeline: []TimelineStep{{At: 500 * time.Millisecond, Link: after}},
		RTTLo:    lo,
		RTTHi:    hi,
	}
}

// ProfileDNSFlaky leaves the TCP path healthy but puts the resolver
// behind a slow, lossy link: a quarter of DNS trips drop (so
// transactions time out and retry at the stub), and the ones that
// complete measure the elevated resolver RTT.
func ProfileDNSFlaky() ConditionProfile {
	link := LinkParams{Delay: 15 * time.Millisecond, Jitter: 3 * time.Millisecond}
	dns := LinkParams{Delay: 60 * time.Millisecond, Jitter: 20 * time.Millisecond, Loss: 0.25}
	lo, hi := envelope(link, measurementSlack)
	dlo, dhi := envelope(dns, measurementSlack)
	return ConditionProfile{
		Name:  "dns-flaky",
		Link:  link,
		DNS:   &dns,
		RTTLo: lo, RTTHi: hi,
		DNSLo: dlo, DNSHi: dhi,
	}
}

// ProfileDNSBlackhole is the 100%-timeout regime: every datagram to
// the resolver vanishes, so each DNS transaction burns its full
// timeout and produces no measurement — the regime that must not
// starve the relay's UDP pool or lose datagrams from the accounting.
// TCP to literal addresses stays healthy.
func ProfileDNSBlackhole() ConditionProfile {
	link := LinkParams{Delay: 15 * time.Millisecond, Jitter: 3 * time.Millisecond}
	dns := LinkParams{Delay: 15 * time.Millisecond, Loss: 1.0}
	lo, hi := envelope(link, measurementSlack)
	return ConditionProfile{
		Name:  "dns-blackhole",
		Link:  link,
		DNS:   &dns,
		RTTLo: lo, RTTHi: hi,
	}
}

// StartTimeline plays a scripted sequence of link changes against the
// given destinations on the network's clock, firing each step once its
// offset from the call elapses. Steps are applied in At order. The
// returned stop cancels steps that have not fired yet; it never undoes
// applied ones. The goroutine also exits when the network closes.
func (n *Network) StartTimeline(dsts []netip.Addr, steps []TimelineStep) (stop func()) {
	if len(steps) == 0 || len(dsts) == 0 {
		return func() {}
	}
	ordered := append([]TimelineStep(nil), steps...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	stopCh := make(chan struct{})
	var once sync.Once
	start := n.clk.Nanos()
	go func() {
		for _, st := range ordered {
			d := st.At - time.Duration(n.clk.Nanos()-start)
			if d > 0 {
				select {
				case <-n.clk.After(d):
				case <-n.done:
					return
				case <-stopCh:
					return
				}
			}
			select {
			case <-stopCh:
				return
			default:
			}
			for _, dst := range dsts {
				n.SetLink(dst, st.Link)
			}
		}
	}()
	return func() { once.Do(func() { close(stopCh) }) }
}

// ApplyProfile installs a profile on a network: the app-server link for
// every destination in dsts, the resolver link for dns when the profile
// overrides it, and the timeline (started immediately). The returned
// stop cancels pending timeline steps; conditions already applied stay
// in force.
func ApplyProfile(n *Network, p ConditionProfile, dsts []netip.Addr, dns netip.Addr) (stop func()) {
	for _, d := range dsts {
		n.SetLink(d, p.Link)
	}
	if dns.IsValid() {
		dnsLink := p.Link
		if p.DNS != nil {
			dnsLink = *p.DNS
		}
		n.SetLink(dns, dnsLink)
	}
	return n.StartTimeline(dsts, p.Timeline)
}
