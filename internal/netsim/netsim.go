// Package netsim simulates the external network MopEye's relayed
// connections traverse: the path from the phone's network interface to
// remote app servers and DNS resolvers.
//
// The paper measures RTT as the SYN/SYN-ACK time of the external
// connection (§2.4), so the simulator's central contract is that
// connection establishment takes one round trip over a link with
// configurable propagation delay, jitter and loss, and that established
// connections carry bytes with bandwidth and flow-control limits
// (receive buffers backpressure the sender the way kernel TCP windows
// do). That is exactly the behaviour the throughput experiment (Table 3)
// and the accuracy experiment (Table 2) depend on.
//
// A wire sniffer hook observes packets at the phone's network interface,
// playing the role tcpdump plays in the paper as ground truth.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"repro/internal/clock"
)

// Errors.
var (
	ErrRefused    = errors.New("netsim: connection refused")
	ErrTimeout    = errors.New("netsim: connection timed out")
	ErrClosed     = errors.New("netsim: connection closed")
	ErrReset      = errors.New("netsim: connection reset by peer")
	ErrWouldBlock = errors.New("netsim: operation would block")
	ErrNetDown    = errors.New("netsim: network closed")
)

// Bandwidth in bytes per second. Zero means unlimited.
type Bandwidth int64

// Mbps converts megabits per second to Bandwidth.
func Mbps(m float64) Bandwidth { return Bandwidth(m * 1e6 / 8) }

// LinkParams describes the path between the phone and one destination.
type LinkParams struct {
	// Delay is the one-way propagation delay; an RTT is 2*Delay plus
	// jitter.
	Delay time.Duration
	// Jitter adds a uniform random [0, Jitter) to each one-way traversal.
	Jitter time.Duration
	// Loss is the probability in [0,1) that a connection-attempt SYN or a
	// UDP datagram is dropped. Established TCP byte streams are reliable
	// (the kernel retransmits below the socket API, which is the level
	// this simulator models).
	Loss float64
	// Down/Up limit the server->phone and phone->server directions.
	Down, Up Bandwidth
}

// RTT returns the expected round-trip time without jitter.
func (l LinkParams) RTT() time.Duration { return 2 * l.Delay }

// WireEventKind classifies sniffer events.
type WireEventKind int

// Wire event kinds, named after what tcpdump would show.
const (
	EventSYN WireEventKind = iota
	EventSYNACK
	EventRST
	EventDataOut
	EventDataIn
	EventFINOut
	EventFINIn
	EventUDPOut
	EventUDPIn
)

func (k WireEventKind) String() string {
	switch k {
	case EventSYN:
		return "SYN"
	case EventSYNACK:
		return "SYN-ACK"
	case EventRST:
		return "RST"
	case EventDataOut:
		return "DATA>"
	case EventDataIn:
		return "DATA<"
	case EventFINOut:
		return "FIN>"
	case EventFINIn:
		return "FIN<"
	case EventUDPOut:
		return "UDP>"
	case EventUDPIn:
		return "UDP<"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// WireEvent is one packet observation at the phone's network interface.
type WireEvent struct {
	At     int64 // clock nanos
	Kind   WireEventKind
	Local  netip.AddrPort
	Remote netip.AddrPort
	Bytes  int
}

// Sniffer receives wire events. Must be fast; called inline.
type Sniffer func(WireEvent)

// TCPHandler runs on the server side of an accepted connection, in its
// own goroutine. It must Close the connection when done.
type TCPHandler func(c *Conn)

// UDPHandler answers one datagram; returning nil sends no response.
// Processing time on the server is modelled by ServerThink on the
// registration.
type UDPHandler func(req []byte, from netip.AddrPort) []byte

// Network is the simulated Internet.
type Network struct {
	clk clock.Clock

	mu       sync.Mutex
	rng      *rand.Rand
	defLink  LinkParams
	links    map[netip.Addr]LinkParams
	tcp      map[netip.AddrPort]TCPHandler
	udp      map[netip.AddrPort]udpService
	sniffers []Sniffer
	closed   bool
	// done is closed by Close; schedulers and blocked senders select on
	// it so network teardown releases everything.
	done chan struct{}
	// boxes registers every live mailbox so Close can unblock readers
	// and flow-control waiters.
	boxes []*mailbox
	// synRTO is the retransmission timeout applied when a SYN is lost.
	synRTO time.Duration
	// maxSYN is how many SYNs are sent before giving up with ErrTimeout.
	maxSYN int
	// loopback selects the zero-delay server mode (SetLoopback).
	loopback bool
}

type udpService struct {
	handler UDPHandler
	think   time.Duration
}

// New creates a network. The default link has the given parameters;
// destinations may override via SetLink. The seed makes jitter and loss
// reproducible.
func New(clk clock.Clock, def LinkParams, seed int64) *Network {
	return &Network{
		clk:     clk,
		rng:     rand.New(rand.NewSource(seed)),
		defLink: def,
		links:   make(map[netip.Addr]LinkParams),
		tcp:     make(map[netip.AddrPort]TCPHandler),
		udp:     make(map[netip.AddrPort]udpService),
		synRTO:  time.Second,
		maxSYN:  3,
		done:    make(chan struct{}),
	}
}

// SetLoopback switches the network into zero-delay loopback server
// mode: connection establishment returns without sleeping the
// handshake round trip, established connections deliver bytes
// synchronously into the peer's receive buffer (no per-direction
// scheduler goroutine, no serialisation or propagation sleeps), and
// UDP services answer inline on the sender's thread (no per-datagram
// goroutine). Link loss, jitter, and bandwidth are ignored.
//
// This is the engine-ceiling mode: benchmarks that want to measure the
// relay engine rather than the simulated wire run against a loopback
// network, the way a loopback iperf measures a host's stack rather
// than a path (`paperbench -exp dispatch`). Flow control is still
// real — a sender blocks when the peer's receive buffer is full — so
// it is meant for request/response workloads, not one-directional
// firehoses against a stalled reader.
//
// Call it once, before any connection or datagram exists; connections
// snapshot the mode at creation.
func (n *Network) SetLoopback(on bool) {
	n.mu.Lock()
	n.loopback = on
	n.mu.Unlock()
}

// Loopback reports whether zero-delay loopback mode is active.
func (n *Network) Loopback() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.loopback
}

// SetLink overrides the path parameters for one destination address.
func (n *Network) SetLink(dst netip.Addr, p LinkParams) {
	n.mu.Lock()
	n.links[dst] = p
	n.mu.Unlock()
}

// Link returns the path parameters used for a destination.
func (n *Network) Link(dst netip.Addr) LinkParams {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.links[dst]; ok {
		return p
	}
	return n.defLink
}

// SetSYNRetry configures SYN loss recovery.
func (n *Network) SetSYNRetry(rto time.Duration, attempts int) {
	n.mu.Lock()
	n.synRTO = rto
	n.maxSYN = attempts
	n.mu.Unlock()
}

// HandleTCP registers a TCP server at addr.
func (n *Network) HandleTCP(addr netip.AddrPort, h TCPHandler) {
	n.mu.Lock()
	n.tcp[addr] = h
	n.mu.Unlock()
}

// HandleUDP registers a UDP request/response service at addr. think is
// the simulated server processing time per request.
func (n *Network) HandleUDP(addr netip.AddrPort, think time.Duration, h UDPHandler) {
	n.mu.Lock()
	n.udp[addr] = udpService{handler: h, think: think}
	n.mu.Unlock()
}

// AddSniffer attaches a wire observer (the tcpdump vantage point).
func (n *Network) AddSniffer(s Sniffer) {
	n.mu.Lock()
	n.sniffers = append(n.sniffers, s)
	n.mu.Unlock()
}

func (n *Network) emit(ev WireEvent) {
	n.mu.Lock()
	ss := n.sniffers
	n.mu.Unlock()
	for _, s := range ss {
		s(ev)
	}
}

// Close shuts the network down: new dials fail, blocked senders and
// readers are released, and delivery goroutines exit.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	boxes := n.boxes
	n.boxes = nil
	close(n.done)
	n.mu.Unlock()
	for _, b := range boxes {
		b.close()
	}
}

func (n *Network) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// jitter draws a uniform [0, j) duration under the network lock.
func (n *Network) jitter(j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return time.Duration(n.rng.Int63n(int64(j)))
}

// drop draws a loss event.
func (n *Network) drop(p float64) bool {
	if p <= 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64() < p
}

func (n *Network) lookupTCP(dst netip.AddrPort) (TCPHandler, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.tcp[dst]
	return h, ok
}

func (n *Network) lookupUDP(dst netip.AddrPort) (udpService, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.udp[dst]
	return s, ok
}

// Dial establishes a TCP connection from src to dst, blocking for the
// SYN/SYN-ACK round trip (plus retransmission timeouts under loss). This
// is the path a blocking connect() takes; the timing of this call is what
// MopEye measures.
func (n *Network) Dial(src, dst netip.AddrPort) (*Conn, error) {
	if n.isClosed() {
		return nil, ErrNetDown
	}
	link := n.Link(dst.Addr())
	n.mu.Lock()
	rto, attempts := n.synRTO, n.maxSYN
	loopback := n.loopback
	n.mu.Unlock()
	for i := 0; i < attempts; i++ {
		n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventSYN, Local: src, Remote: dst, Bytes: 40})
		if !loopback && n.drop(link.Loss) {
			n.clk.Sleep(rto)
			continue
		}
		var rtt time.Duration
		if !loopback {
			rtt = link.RTT() + n.jitter(link.Jitter) + n.jitter(link.Jitter)
		}
		handler, ok := n.lookupTCP(dst)
		if !ok {
			// RST arrives after a full round trip.
			n.clk.Sleep(rtt)
			n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventRST, Local: src, Remote: dst, Bytes: 40})
			return nil, ErrRefused
		}
		n.clk.Sleep(rtt)
		n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventSYNACK, Local: src, Remote: dst, Bytes: 40})
		client, server := n.newConnPair(src, dst, link)
		go handler(server)
		return client, nil
	}
	return nil, ErrTimeout
}

// newConnPair wires two halves together with one scheduler per
// direction.
func (n *Network) newConnPair(src, dst netip.AddrPort, link LinkParams) (client, server *Conn) {
	client = &Conn{net: n, local: src, remote: dst, link: link, clientSide: true}
	server = &Conn{net: n, local: dst, remote: src, link: link}
	client.peer, server.peer = server, client
	client.rx = newMailbox(DefaultRecvBuffer)
	server.rx = newMailbox(DefaultRecvBuffer)
	n.mu.Lock()
	if !n.closed {
		n.boxes = append(n.boxes, client.rx, server.rx)
	}
	n.mu.Unlock()
	// Up direction: client -> server.
	client.tx = newScheduler(n, link.Delay, link.Jitter, link.Up, server.rx)
	// Down direction: server -> client.
	server.tx = newScheduler(n, link.Delay, link.Jitter, link.Down, client.rx)
	return client, server
}
