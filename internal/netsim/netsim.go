// Package netsim simulates the external network MopEye's relayed
// connections traverse: the path from the phone's network interface to
// remote app servers and DNS resolvers.
//
// The paper measures RTT as the SYN/SYN-ACK time of the external
// connection (§2.4), so the simulator's central contract is that
// connection establishment takes one round trip over a link with
// configurable propagation delay, jitter and loss, and that established
// connections carry bytes with bandwidth and flow-control limits
// (receive buffers backpressure the sender the way kernel TCP windows
// do). That is exactly the behaviour the throughput experiment (Table 3)
// and the accuracy experiment (Table 2) depend on.
//
// A wire sniffer hook observes packets at the phone's network interface,
// playing the role tcpdump plays in the paper as ground truth.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"repro/internal/clock"
)

// Errors.
var (
	ErrRefused    = errors.New("netsim: connection refused")
	ErrTimeout    = errors.New("netsim: connection timed out")
	ErrClosed     = errors.New("netsim: connection closed")
	ErrReset      = errors.New("netsim: connection reset by peer")
	ErrWouldBlock = errors.New("netsim: operation would block")
	ErrNetDown    = errors.New("netsim: network closed")
)

// Bandwidth in bytes per second. Zero means unlimited.
type Bandwidth int64

// Mbps converts megabits per second to Bandwidth.
func Mbps(m float64) Bandwidth { return Bandwidth(m * 1e6 / 8) }

// LinkParams describes the path between the phone and one destination.
type LinkParams struct {
	// Delay is the one-way propagation delay; an RTT is 2*Delay plus
	// jitter.
	Delay time.Duration
	// Jitter adds a uniform random [0, Jitter) to each one-way traversal.
	Jitter time.Duration
	// Loss is the probability in [0,1) that a transmission is dropped,
	// drawn independently per packet and per direction: a
	// connection-attempt SYN draws once per attempt, while a UDP
	// request/response exchange draws once for the request and once for
	// the response — so the effective UDP transaction loss is
	// 1-(1-Loss)², the way two lossy one-way trips compose on a real
	// path. Established TCP byte streams are reliable (the kernel
	// retransmits below the socket API, which is the level this
	// simulator models).
	Loss float64
	// Down/Up limit the server->phone and phone->server directions.
	Down, Up Bandwidth
	// SharedQueue models a bufferbloated bottleneck: instead of each
	// connection serialising against its own private clock, all traffic
	// to this destination shares one unbounded FIFO per direction,
	// drained at Down/Up. Queue delay then grows with offered load and
	// inflates every flow's latency — including SYN/SYN-ACK handshakes,
	// which is how a saturated cellular uplink distorts measured
	// connect RTTs.
	SharedQueue bool
}

// RTT returns the expected round-trip time without jitter.
func (l LinkParams) RTT() time.Duration { return 2 * l.Delay }

// linkState is the live, mutable state of one path. Connections,
// schedulers and in-flight datagrams hold a pointer to it rather than a
// snapshot of LinkParams, so SetLink mid-flow (a handover, a scripted
// timeline step) changes the conditions every established flow
// experiences from that moment on.
type linkState struct {
	mu sync.Mutex
	p  LinkParams
	// upFree/downFree are the shared serialisation clocks used when
	// SharedQueue is set: the instant each direction's bottleneck queue
	// drains.
	upFree, downFree int64
}

func (ls *linkState) params() LinkParams {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.p
}

func (ls *linkState) setParams(p LinkParams) {
	ls.mu.Lock()
	ls.p = p
	ls.mu.Unlock()
}

// reserve books size bytes onto the shared serialisation queue of one
// direction and returns the total queue-plus-transmit delay from now.
// This is the bufferbloat model: an unbounded FIFO drained at the
// direction's bandwidth, so the wait grows with offered load and every
// concurrent flow — handshakes included — pays it.
func (ls *linkState) reserve(now int64, size int, down bool) time.Duration {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	bw, free := ls.p.Up, &ls.upFree
	if down {
		bw, free = ls.p.Down, &ls.downFree
	}
	start := now
	if *free > start {
		start = *free
	}
	var tx int64
	if bw > 0 && size > 0 {
		tx = int64(time.Duration(size) * time.Second / time.Duration(bw))
	}
	*free = start + tx
	return time.Duration(*free - now)
}

// WireEventKind classifies sniffer events.
type WireEventKind int

// Wire event kinds, named after what tcpdump would show.
const (
	EventSYN WireEventKind = iota
	EventSYNACK
	EventRST
	EventDataOut
	EventDataIn
	EventFINOut
	EventFINIn
	EventUDPOut
	EventUDPIn
)

func (k WireEventKind) String() string {
	switch k {
	case EventSYN:
		return "SYN"
	case EventSYNACK:
		return "SYN-ACK"
	case EventRST:
		return "RST"
	case EventDataOut:
		return "DATA>"
	case EventDataIn:
		return "DATA<"
	case EventFINOut:
		return "FIN>"
	case EventFINIn:
		return "FIN<"
	case EventUDPOut:
		return "UDP>"
	case EventUDPIn:
		return "UDP<"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// WireEvent is one packet observation at the phone's network interface.
type WireEvent struct {
	At     int64 // clock nanos
	Kind   WireEventKind
	Local  netip.AddrPort
	Remote netip.AddrPort
	Bytes  int
}

// Sniffer receives wire events. Must be fast; called inline.
type Sniffer func(WireEvent)

// TCPHandler runs on the server side of an accepted connection, in its
// own goroutine. It must Close the connection when done.
type TCPHandler func(c *Conn)

// UDPHandler answers one datagram; returning nil sends no response.
// Processing time on the server is modelled by ServerThink on the
// registration.
type UDPHandler func(req []byte, from netip.AddrPort) []byte

// Network is the simulated Internet.
type Network struct {
	clk clock.Clock

	mu       sync.Mutex
	rng      *rand.Rand
	defLink  LinkParams
	links    map[netip.Addr]*linkState
	tcp      map[netip.AddrPort]TCPHandler
	udp      map[netip.AddrPort]udpService
	sniffers []Sniffer
	closed   bool
	// done is closed by Close; schedulers and blocked senders select on
	// it so network teardown releases everything.
	done chan struct{}
	// boxes registers every live mailbox so Close can unblock readers
	// and flow-control waiters.
	boxes []*mailbox
	// synRTO is the retransmission timeout applied when a SYN is lost.
	synRTO time.Duration
	// maxSYN is how many SYNs are sent before giving up with ErrTimeout.
	maxSYN int
	// loopback selects the zero-delay server mode (SetLoopback).
	loopback bool
}

type udpService struct {
	handler UDPHandler
	think   time.Duration
}

// New creates a network. The default link has the given parameters;
// destinations may override via SetLink. The seed makes jitter and loss
// reproducible.
func New(clk clock.Clock, def LinkParams, seed int64) *Network {
	return &Network{
		clk:     clk,
		rng:     rand.New(rand.NewSource(seed)),
		defLink: def,
		links:   make(map[netip.Addr]*linkState),
		tcp:     make(map[netip.AddrPort]TCPHandler),
		udp:     make(map[netip.AddrPort]udpService),
		synRTO:  time.Second,
		maxSYN:  3,
		done:    make(chan struct{}),
	}
}

// SetLoopback switches the network into zero-delay loopback server
// mode: connection establishment returns without sleeping the
// handshake round trip, established connections deliver bytes
// synchronously into the peer's receive buffer (no per-direction
// scheduler goroutine, no serialisation or propagation sleeps), and
// UDP services answer inline on the sender's thread (no per-datagram
// goroutine). Link loss, jitter, and bandwidth are ignored.
//
// This is the engine-ceiling mode: benchmarks that want to measure the
// relay engine rather than the simulated wire run against a loopback
// network, the way a loopback iperf measures a host's stack rather
// than a path (`paperbench -exp dispatch`). Flow control is still
// real — a sender blocks when the peer's receive buffer is full — so
// it is meant for request/response workloads, not one-directional
// firehoses against a stalled reader.
//
// Call it once, before any connection or datagram exists; connections
// snapshot the mode at creation.
func (n *Network) SetLoopback(on bool) {
	n.mu.Lock()
	n.loopback = on
	n.mu.Unlock()
}

// Loopback reports whether zero-delay loopback mode is active.
func (n *Network) Loopback() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.loopback
}

// linkFor returns the live link state for a destination, creating it
// from the default parameters on first use. Everything that models the
// path — dials, per-direction schedulers, in-flight datagrams — goes
// through the returned pointer, never a copied LinkParams.
func (n *Network) linkFor(addr netip.Addr) *linkState {
	n.mu.Lock()
	defer n.mu.Unlock()
	ls, ok := n.links[addr]
	if !ok {
		ls = &linkState{p: n.defLink}
		n.links[addr] = ls
	}
	return ls
}

// SetLink overrides the path parameters for one destination address.
// The change is live: established connections and in-flight datagrams
// to that destination experience the new parameters from this moment on
// (the next chunk scheduled, the return trip of a datagram still at the
// server, the next SYN retransmission). That is what lets a scripted
// condition timeline model a handover mid-flow.
func (n *Network) SetLink(dst netip.Addr, p LinkParams) {
	n.linkFor(dst).setParams(p)
}

// Link returns the path parameters currently used for a destination.
func (n *Network) Link(dst netip.Addr) LinkParams {
	n.mu.Lock()
	ls, ok := n.links[dst]
	n.mu.Unlock()
	if ok {
		return ls.params()
	}
	return n.defLink
}

// SetSYNRetry configures SYN loss recovery.
func (n *Network) SetSYNRetry(rto time.Duration, attempts int) {
	n.mu.Lock()
	n.synRTO = rto
	n.maxSYN = attempts
	n.mu.Unlock()
}

// HandleTCP registers a TCP server at addr.
func (n *Network) HandleTCP(addr netip.AddrPort, h TCPHandler) {
	n.mu.Lock()
	n.tcp[addr] = h
	n.mu.Unlock()
}

// HandleUDP registers a UDP request/response service at addr. think is
// the simulated server processing time per request.
func (n *Network) HandleUDP(addr netip.AddrPort, think time.Duration, h UDPHandler) {
	n.mu.Lock()
	n.udp[addr] = udpService{handler: h, think: think}
	n.mu.Unlock()
}

// AddSniffer attaches a wire observer (the tcpdump vantage point).
func (n *Network) AddSniffer(s Sniffer) {
	n.mu.Lock()
	n.sniffers = append(n.sniffers, s)
	n.mu.Unlock()
}

func (n *Network) emit(ev WireEvent) {
	n.mu.Lock()
	ss := n.sniffers
	n.mu.Unlock()
	for _, s := range ss {
		s(ev)
	}
}

// Close shuts the network down: new dials fail, blocked senders and
// readers are released, and delivery goroutines exit.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	boxes := n.boxes
	n.boxes = nil
	close(n.done)
	n.mu.Unlock()
	for _, b := range boxes {
		b.close()
	}
}

func (n *Network) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// jitter draws a uniform [0, j) duration under the network lock.
func (n *Network) jitter(j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return time.Duration(n.rng.Int63n(int64(j)))
}

// drop draws a loss event.
func (n *Network) drop(p float64) bool {
	if p <= 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64() < p
}

func (n *Network) lookupTCP(dst netip.AddrPort) (TCPHandler, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.tcp[dst]
	return h, ok
}

func (n *Network) lookupUDP(dst netip.AddrPort) (udpService, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.udp[dst]
	return s, ok
}

// Dial establishes a TCP connection from src to dst, blocking for the
// SYN/SYN-ACK round trip (plus retransmission timeouts under loss). This
// is the path a blocking connect() takes; the timing of this call is what
// MopEye measures.
func (n *Network) Dial(src, dst netip.AddrPort) (*Conn, error) {
	if n.isClosed() {
		return nil, ErrNetDown
	}
	ls := n.linkFor(dst.Addr())
	n.mu.Lock()
	rto, attempts := n.synRTO, n.maxSYN
	loopback := n.loopback
	n.mu.Unlock()
	for i := 0; i < attempts; i++ {
		// Re-read per attempt: a timeline step may have shifted the link
		// while this dial was waiting out an RTO.
		link := ls.params()
		n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventSYN, Local: src, Remote: dst, Bytes: 40})
		if !loopback && n.drop(link.Loss) {
			n.clk.Sleep(rto)
			continue
		}
		var rtt time.Duration
		if !loopback {
			rtt = link.RTT() + n.jitter(link.Jitter) + n.jitter(link.Jitter)
			if link.SharedQueue {
				// The 40-byte SYN and SYN-ACK wait behind whatever is
				// queued on the bottleneck in each direction — the
				// mechanism by which bufferbloat distorts measured
				// connect RTTs.
				now := n.clk.Nanos()
				rtt += ls.reserve(now, 40, false) + ls.reserve(now, 40, true)
			}
		}
		handler, ok := n.lookupTCP(dst)
		if !ok {
			// RST arrives after a full round trip.
			n.clk.Sleep(rtt)
			n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventRST, Local: src, Remote: dst, Bytes: 40})
			return nil, ErrRefused
		}
		n.clk.Sleep(rtt)
		n.emit(WireEvent{At: n.clk.Nanos(), Kind: EventSYNACK, Local: src, Remote: dst, Bytes: 40})
		client, server := n.newConnPair(src, dst, ls)
		go handler(server)
		return client, nil
	}
	return nil, ErrTimeout
}

// newConnPair wires two halves together with one scheduler per
// direction. Both halves share the destination's live link state, so a
// SetLink after establishment reshapes the delay, jitter and bandwidth
// every subsequent chunk experiences.
func (n *Network) newConnPair(src, dst netip.AddrPort, ls *linkState) (client, server *Conn) {
	client = &Conn{net: n, local: src, remote: dst, ls: ls, clientSide: true}
	server = &Conn{net: n, local: dst, remote: src, ls: ls}
	client.peer, server.peer = server, client
	client.rx = newMailbox(DefaultRecvBuffer)
	server.rx = newMailbox(DefaultRecvBuffer)
	n.mu.Lock()
	if !n.closed {
		n.boxes = append(n.boxes, client.rx, server.rx)
	}
	n.mu.Unlock()
	// Up direction: client -> server.
	client.tx = newScheduler(n, ls, false, server.rx)
	// Down direction: server -> client.
	server.tx = newScheduler(n, ls, true, client.rx)
	return client, server
}
