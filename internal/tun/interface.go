package tun

// Interface is the device seam between the relay engine and a TUN
// backend. Two implementations exist: the emulated *Device in this
// package (the default test substrate — deterministic, no privileges)
// and lintun.TUN (build tag "realtun"), which wraps a real Linux
// /dev/net/tun descriptor. The engine's reader/writer loops, the
// batching machinery, and the AIMD read governor all speak this
// interface, so they carry over to a real device unchanged.
type Interface interface {
	// Read retrieves the next outgoing IP packet from the device. In
	// blocking mode it waits; in non-blocking mode an empty device
	// returns ErrWouldBlock. A closed device returns ErrClosed.
	Read() ([]byte, error)

	// ReadBatch retrieves up to len(dst) packets in one call. Blocking
	// semantics match Read for the first packet; the rest of the burst
	// is whatever is immediately available, never an extra wait.
	ReadBatch(dst [][]byte) (int, error)

	// Write sends one IP packet to the device (engine → app direction).
	// Packets over the device MTU return ErrTooBig.
	Write(pkt []byte) error

	// WriteBatch sends a burst. Packets fail independently: it returns
	// how many were delivered and the first per-packet error.
	WriteBatch(pkts [][]byte) (int, error)

	// InjectOutbound pushes a packet into the device's outbound (read)
	// side. The engine uses it to release a blocked Read during
	// shutdown — the §3.1 self-sent packet trick. Real backends may
	// implement it as a pure reader wakeup rather than an actual
	// packet.
	InjectOutbound(pkt []byte) error

	// SetBlocking switches the descriptor's read mode (fcntl F_SETFL /
	// IoUtils.setBlocking in §3.1).
	SetBlocking(b bool)

	// MTU reports the device MTU. Write rejects larger packets, and
	// the phone stack derives its MSS from it.
	MTU() int

	// Close tears the device down, waking blocked readers with
	// ErrClosed.
	Close()
}
