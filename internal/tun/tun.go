// Package tun emulates the Android VpnService TUN virtual network
// device (/dev/tun) that MopEye builds its interception on (§2.2).
//
// A TUN device is a point-to-point IP link between the kernel and a
// user-space process. Here the "kernel side" is the simulated phone
// stack (package phonestack) injecting app packets, and the "user-space
// side" is the engine's TunReader/TunWriter threads.
//
// The device reproduces the behaviour that drives §3.1 of the paper: its
// file descriptor starts in non-blocking mode, so a reader either
// sleep-polls (the ToyVpn / Haystack / PrivacyGuard paradigm) or flips
// the descriptor to blocking mode the way MopEye does via fcntl /
// libcore.io.IoUtils.setBlocking. Both modes are observable here, with
// per-packet queueing delay recorded so experiments can quantify the
// retrieval latency each paradigm costs.
package tun

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
)

// DefaultMTU is the MTU a device starts with when the backend has no
// interface to query. MopEye sends 1500-byte IP packets to apps (§3.4).
const DefaultMTU = 1500

// Errors.
var (
	ErrClosed     = errors.New("tun: device closed")
	ErrWouldBlock = errors.New("tun: read would block") // EAGAIN analogue
	ErrTooBig     = errors.New("tun: packet exceeds MTU")
)

// queued is one packet plus the time it entered the queue, used to
// measure retrieval delay.
type queued struct {
	data     []byte
	enqueued int64 // clock nanos
}

// fifo is a blocking-capable packet queue guarded by a condition
// variable. Closing wakes all waiters.
type fifo struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []queued
	closed bool
	max    int
	drops  int
}

func newFIFO(max int) *fifo {
	f := &fifo{max: max}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *fifo) put(q queued) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if len(f.items) >= f.max {
		// Real TUN queues drop on overflow rather than blocking the
		// kernel.
		f.drops++
		return nil
	}
	f.items = append(f.items, q)
	f.cond.Signal()
	return nil
}

// take removes the head. If block is false it returns ErrWouldBlock on an
// empty queue.
func (f *fifo) take(block bool) (queued, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.items) == 0 {
		if f.closed {
			return queued{}, ErrClosed
		}
		if !block {
			return queued{}, ErrWouldBlock
		}
		f.cond.Wait()
	}
	q := f.items[0]
	f.items = f.items[1:]
	return q, nil
}

// takeBatch removes up to len(dst) queued packets in one lock
// acquisition. Blocking semantics match take for the first packet; the
// rest of the burst is whatever is already queued, never an extra wait.
func (f *fifo) takeBatch(dst []queued, block bool) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.items) == 0 {
		if f.closed {
			return 0, ErrClosed
		}
		if !block {
			return 0, ErrWouldBlock
		}
		f.cond.Wait()
	}
	n := copy(dst, f.items)
	f.items = f.items[n:]
	return n, nil
}

// putBatch appends a burst under one lock, dropping on overflow exactly
// like per-packet put does.
func (f *fifo) putBatch(qs []queued) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	for _, q := range qs {
		if len(f.items) >= f.max {
			f.drops++
			continue
		}
		f.items = append(f.items, q)
	}
	f.cond.Broadcast()
	return nil
}

func (f *fifo) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.items)
}

func (f *fifo) close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Stats aggregates device counters. CPU accounting uses EmptyReads: each
// failed non-blocking read is one futile wakeup of the polling thread.
type Stats struct {
	PacketsOut   int // app -> engine packets read
	PacketsIn    int // engine -> app packets written
	BytesOut     int64
	BytesIn      int64
	EmptyReads   int // non-blocking reads that returned ErrWouldBlock
	Drops        int // packets dropped on queue overflow
	ReadDelayMax time.Duration
	ReadDelaySum time.Duration
}

// MeanReadDelay returns the average time packets sat in the outbound
// queue before the engine retrieved them.
func (s Stats) MeanReadDelay() time.Duration {
	if s.PacketsOut == 0 {
		return 0
	}
	return s.ReadDelaySum / time.Duration(s.PacketsOut)
}

// Device is the emulated TUN interface.
type Device struct {
	clk clock.Clock

	outbound *fifo // phone -> engine
	inbound  *fifo // engine -> phone

	mu       sync.Mutex
	blocking bool
	mtu      int
	stats    Stats
	closed   bool

	// writeMu serialises engine-side writes: the kernel tunnel accepts
	// one write at a time, which is why multiple writer threads contend
	// (§3.5.1 "multiple writing threads share only one tunnel").
	writeMu   sync.Mutex
	writeCost func(*rand.Rand) time.Duration
	writeRng  *rand.Rand

	// batchMu guards the ReadBatch scratch (one reader thread in
	// practice; the mutex keeps the API safe for concurrent callers
	// without allocating a scratch per call).
	batchMu      sync.Mutex
	batchScratch []queued

	// wbScratch is the WriteBatch staging area, guarded by writeMu.
	wbScratch []queued
}

// New creates a TUN device with the given queue capacity per direction.
// The descriptor starts in non-blocking mode, matching Android, where no
// API sets blocking mode before 5.0 (§3.1).
func New(clk clock.Clock, queueCap int) *Device {
	if queueCap <= 0 {
		queueCap = 1024
	}
	return &Device{
		clk:      clk,
		mtu:      DefaultMTU,
		outbound: newFIFO(queueCap),
		inbound:  newFIFO(queueCap),
	}
}

// MTU reports the device MTU. Writes larger than this fail with
// ErrTooBig.
func (d *Device) MTU() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mtu
}

// SetMTU overrides the device MTU (DefaultMTU at construction). It
// emulates configuring the interface before bringing the tunnel up —
// call it before traffic flows, not mid-run.
func (d *Device) SetMTU(mtu int) {
	if mtu <= 0 {
		return
	}
	d.mu.Lock()
	d.mtu = mtu
	d.mu.Unlock()
}

// SetBlocking switches the read mode of the descriptor, the equivalent of
// fcntl(F_SETFL) at native level or the hidden
// libcore.io.IoUtils.setBlocking (§3.1).
func (d *Device) SetBlocking(b bool) {
	d.mu.Lock()
	d.blocking = b
	d.mu.Unlock()
}

// Blocking reports the current read mode.
func (d *Device) Blocking() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.blocking
}

// Read retrieves the next outgoing app packet (the engine side of the
// tunnel input stream). In blocking mode it waits for a packet; in
// non-blocking mode it returns ErrWouldBlock immediately when the queue
// is empty, and the caller is expected to sleep-poll.
func (d *Device) Read() ([]byte, error) {
	q, err := d.outbound.take(d.Blocking())
	if err != nil {
		if errors.Is(err, ErrWouldBlock) {
			d.mu.Lock()
			d.stats.EmptyReads++
			d.mu.Unlock()
		}
		return nil, err
	}
	delay := time.Duration(d.clk.Nanos() - q.enqueued)
	d.mu.Lock()
	d.stats.PacketsOut++
	d.stats.BytesOut += int64(len(q.data))
	d.stats.ReadDelaySum += delay
	if delay > d.stats.ReadDelayMax {
		d.stats.ReadDelayMax = delay
	}
	d.mu.Unlock()
	return q.data, nil
}

// ReadBatch retrieves up to len(dst) outgoing app packets in one call —
// the emulated equivalent of a batched read (readv/recvmmsg): the queue
// lock, the blocking/poll decision, and the stats update are paid once
// per burst instead of once per packet. Semantics match Read: in
// blocking mode the call waits for the first packet; in non-blocking
// mode an empty queue returns ErrWouldBlock and counts one empty read
// (one futile wakeup — the poll schedule is per burst, not per packet).
// Once one packet is available the rest of the burst is whatever is
// already queued, never an extra wait. Per-packet retrieval delay is
// measured at the burst's retrieval instant.
func (d *Device) ReadBatch(dst [][]byte) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	d.batchMu.Lock()
	if cap(d.batchScratch) < len(dst) {
		d.batchScratch = make([]queued, len(dst))
	}
	scratch := d.batchScratch[:len(dst)]
	n, err := d.outbound.takeBatch(scratch, d.Blocking())
	if err != nil {
		d.batchMu.Unlock()
		if errors.Is(err, ErrWouldBlock) {
			d.mu.Lock()
			d.stats.EmptyReads++
			d.mu.Unlock()
		}
		return 0, err
	}
	now := d.clk.Nanos()
	var bytes int64
	var delaySum, delayMax time.Duration
	for i := 0; i < n; i++ {
		dst[i] = scratch[i].data
		bytes += int64(len(dst[i]))
		if delay := time.Duration(now - scratch[i].enqueued); delay >= 0 {
			delaySum += delay
			if delay > delayMax {
				delayMax = delay
			}
		}
		scratch[i] = queued{} // drop the reference; ownership moved to dst
	}
	d.batchMu.Unlock()
	d.mu.Lock()
	d.stats.PacketsOut += n
	d.stats.BytesOut += bytes
	d.stats.ReadDelaySum += delaySum
	if delayMax > d.stats.ReadDelayMax {
		d.stats.ReadDelayMax = delayMax
	}
	d.mu.Unlock()
	return n, nil
}

// SetWriteCost installs a per-write syscall cost model, drawn once per
// Write while holding the single-tunnel write lock. This is the cost
// Table 1 measures: on Android a tunnel write usually takes ~0.1 ms but
// occasionally much longer, and concurrent writers queue behind it.
func (d *Device) SetWriteCost(f func(*rand.Rand) time.Duration, seed int64) {
	d.writeMu.Lock()
	d.writeCost = f
	d.writeRng = rand.New(rand.NewSource(seed))
	d.writeMu.Unlock()
}

// AndroidWriteCost is a write cost distribution calibrated to §3.5.1:
// ~0.1 ms typical with an occasional multi-millisecond spike.
func AndroidWriteCost() func(*rand.Rand) time.Duration {
	return func(r *rand.Rand) time.Duration {
		c := 60*time.Microsecond + time.Duration(r.Int63n(int64(120*time.Microsecond)))
		p := r.Float64()
		switch {
		case p < 0.004:
			c += 5*time.Millisecond + time.Duration(r.Int63n(int64(18*time.Millisecond)))
		case p < 0.02:
			c += time.Millisecond + time.Duration(r.Int63n(int64(3*time.Millisecond)))
		}
		return c
	}
}

// Write sends a packet to the phone side (the engine writing a
// synthesised packet to the app). It corresponds to writing to
// mInterface's output stream. Writes are serialised and charge the
// configured write cost, so concurrent writers observe queueing delay.
func (d *Device) Write(pkt []byte) error {
	if len(pkt) > d.MTU() {
		return ErrTooBig
	}
	d.writeMu.Lock()
	if d.writeCost != nil {
		c := d.writeCost(d.writeRng)
		if c > 0 {
			d.clk.SleepFine(c)
		}
	}
	cp := append([]byte(nil), pkt...)
	err := d.inbound.put(queued{data: cp, enqueued: d.clk.Nanos()})
	d.writeMu.Unlock()
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.stats.PacketsIn++
	d.stats.BytesIn += int64(len(pkt))
	d.mu.Unlock()
	return nil
}

// WriteBatch sends a burst of packets to the phone side, serialising
// once on the single tunnel instead of once per packet and delivering
// the whole burst into the inbound queue under one lock. The per-write
// syscall cost model is still charged per packet — batching amortises
// queue locking, not the modelled kernel work. Packets fail
// independently, matching a loop of per-packet Writes: an oversized
// packet is skipped (and reported via the returned error) while the
// rest of the burst is still delivered — ACKs and FINs of other flows
// must not be lost to one bad packet. It returns how many packets were
// delivered and the first per-packet error.
func (d *Device) WriteBatch(pkts [][]byte) (int, error) {
	if len(pkts) == 0 {
		return 0, nil
	}
	mtu := d.MTU()
	d.writeMu.Lock()
	if cap(d.wbScratch) < len(pkts) {
		d.wbScratch = make([]queued, len(pkts))
	}
	staged := d.wbScratch[:0]
	var bytes int64
	var ferr error
	for _, pkt := range pkts {
		if len(pkt) > mtu {
			if ferr == nil {
				ferr = ErrTooBig
			}
			continue
		}
		if d.writeCost != nil {
			if c := d.writeCost(d.writeRng); c > 0 {
				d.clk.SleepFine(c)
			}
		}
		cp := append([]byte(nil), pkt...)
		staged = append(staged, queued{data: cp, enqueued: d.clk.Nanos()})
		bytes += int64(len(pkt))
	}
	n := len(staged)
	err := d.inbound.putBatch(staged)
	for i := range staged {
		staged[i] = queued{}
	}
	d.writeMu.Unlock()
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	d.stats.PacketsIn += n
	d.stats.BytesIn += bytes
	d.mu.Unlock()
	return n, ferr
}

// InjectOutbound is the kernel-side entry point: the phone stack routes
// an app's IP packet into the TUN. It is also how the engine releases a
// blocked Read during shutdown — by injecting a dummy packet, exactly the
// trick §3.1 describes (self-sent pre-5.0, DownloadManager-triggered on
// 5.0+).
func (d *Device) InjectOutbound(pkt []byte) error {
	if len(pkt) > d.MTU() {
		return ErrTooBig
	}
	cp := append([]byte(nil), pkt...)
	return d.outbound.put(queued{data: cp, enqueued: d.clk.Nanos()})
}

// ReadInbound delivers the next engine-written packet to the phone side;
// it always blocks (the phone kernel is always ready to receive).
func (d *Device) ReadInbound() ([]byte, error) {
	q, err := d.inbound.take(true)
	if err != nil {
		return nil, err
	}
	return q.data, nil
}

// OutboundLen reports how many app packets are waiting for the engine.
func (d *Device) OutboundLen() int { return d.outbound.len() }

// InboundLen reports how many engine packets are waiting for the phone.
func (d *Device) InboundLen() int { return d.inbound.len() }

// Stats returns a snapshot of the device counters, folding in queue drop
// counts.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	s := d.stats
	d.mu.Unlock()
	d.outbound.mu.Lock()
	s.Drops = d.outbound.drops
	d.outbound.mu.Unlock()
	d.inbound.mu.Lock()
	s.Drops += d.inbound.drops
	d.inbound.mu.Unlock()
	return s
}

// Close tears the interface down, waking any blocked readers with
// ErrClosed.
func (d *Device) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.outbound.close()
	d.inbound.close()
}

// Closed reports whether Close has been called.
func (d *Device) Closed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}
