package tun

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func newDev() *Device { return New(clock.NewReal(), 16) }

func TestNonBlockingReadEmptyReturnsWouldBlock(t *testing.T) {
	d := newDev()
	defer d.Close()
	if _, err := d.Read(); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("got %v, want ErrWouldBlock", err)
	}
	if d.Stats().EmptyReads != 1 {
		t.Errorf("EmptyReads = %d", d.Stats().EmptyReads)
	}
}

func TestBlockingReadWaitsForPacket(t *testing.T) {
	d := newDev()
	defer d.Close()
	d.SetBlocking(true)
	got := make(chan []byte, 1)
	go func() {
		pkt, err := d.Read()
		if err != nil {
			close(got)
			return
		}
		got <- pkt
	}()
	time.Sleep(5 * time.Millisecond)
	if err := d.InjectOutbound([]byte{1, 2, 3}); err != nil {
		t.Fatalf("inject: %v", err)
	}
	select {
	case pkt := <-got:
		if len(pkt) != 3 || pkt[0] != 1 {
			t.Errorf("packet: %v", pkt)
		}
	case <-time.After(time.Second):
		t.Fatal("blocking read never returned")
	}
}

func TestDummyPacketReleasesBlockedRead(t *testing.T) {
	d := newDev()
	d.SetBlocking(true)
	released := make(chan struct{})
	go func() {
		_, _ = d.Read()
		close(released)
	}()
	time.Sleep(2 * time.Millisecond)
	// The §3.1 shutdown trick: a dummy packet unblocks the reader.
	_ = d.InjectOutbound([]byte{0})
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("dummy packet did not release read")
	}
}

func TestCloseWakesBlockedRead(t *testing.T) {
	d := newDev()
	d.SetBlocking(true)
	errCh := make(chan error, 1)
	go func() {
		_, err := d.Read()
		errCh <- err
	}()
	time.Sleep(2 * time.Millisecond)
	d.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("got %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not wake reader")
	}
}

func TestWriteReadInbound(t *testing.T) {
	d := newDev()
	defer d.Close()
	if err := d.Write([]byte{9, 9}); err != nil {
		t.Fatalf("write: %v", err)
	}
	pkt, err := d.ReadInbound()
	if err != nil {
		t.Fatalf("read inbound: %v", err)
	}
	if len(pkt) != 2 || pkt[0] != 9 {
		t.Errorf("packet: %v", pkt)
	}
}

func TestMTUEnforced(t *testing.T) {
	d := newDev()
	defer d.Close()
	big := make([]byte, DefaultMTU+1)
	if err := d.Write(big); !errors.Is(err, ErrTooBig) {
		t.Errorf("write: %v", err)
	}
	if err := d.InjectOutbound(big); !errors.Is(err, ErrTooBig) {
		t.Errorf("inject: %v", err)
	}
}

func TestPerDeviceMTU(t *testing.T) {
	d := newDev()
	defer d.Close()
	if got := d.MTU(); got != DefaultMTU {
		t.Fatalf("MTU = %d, want %d", got, DefaultMTU)
	}
	d.SetMTU(9000)
	if got := d.MTU(); got != 9000 {
		t.Fatalf("MTU after SetMTU = %d, want 9000", got)
	}
	// A packet over the old default but under the new MTU must pass.
	jumbo := make([]byte, DefaultMTU+1)
	if err := d.Write(jumbo); err != nil {
		t.Errorf("write under raised MTU: %v", err)
	}
	if err := d.Write(make([]byte, 9001)); !errors.Is(err, ErrTooBig) {
		t.Errorf("write over raised MTU: %v", err)
	}
	d.SetMTU(0) // ignored
	if got := d.MTU(); got != 9000 {
		t.Errorf("MTU after SetMTU(0) = %d, want 9000", got)
	}
	// The interface seam: both backends satisfy it.
	var _ Interface = d
}

func TestQueueOverflowDrops(t *testing.T) {
	d := New(clock.NewReal(), 4)
	defer d.Close()
	for i := 0; i < 10; i++ {
		_ = d.InjectOutbound([]byte{byte(i)})
	}
	if d.OutboundLen() != 4 {
		t.Errorf("queue len = %d, want 4", d.OutboundLen())
	}
	if d.Stats().Drops != 6 {
		t.Errorf("drops = %d, want 6", d.Stats().Drops)
	}
}

func TestFIFOOrder(t *testing.T) {
	d := newDev()
	defer d.Close()
	for i := 0; i < 10; i++ {
		_ = d.InjectOutbound([]byte{byte(i)})
	}
	d.SetBlocking(true)
	for i := 0; i < 10; i++ {
		pkt, err := d.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if pkt[0] != byte(i) {
			t.Fatalf("order violated at %d: got %d", i, pkt[0])
		}
	}
}

func TestReadDelayAccounting(t *testing.T) {
	d := newDev()
	defer d.Close()
	_ = d.InjectOutbound([]byte{1})
	time.Sleep(5 * time.Millisecond)
	d.SetBlocking(true)
	if _, err := d.Read(); err != nil {
		t.Fatalf("read: %v", err)
	}
	s := d.Stats()
	if s.MeanReadDelay() < 4*time.Millisecond {
		t.Errorf("mean read delay %v, packet sat 5ms", s.MeanReadDelay())
	}
	if s.ReadDelayMax < s.MeanReadDelay() {
		t.Error("max < mean")
	}
}

func TestWriteCostCharged(t *testing.T) {
	clk := clock.NewReal()
	d := New(clk, 16)
	defer d.Close()
	d.SetWriteCost(func(r *rand.Rand) time.Duration { return 3 * time.Millisecond }, 1)
	start := time.Now()
	if err := d.Write([]byte{1}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Error("write cost was not charged")
	}
}

func TestWriteContentionSerialised(t *testing.T) {
	clk := clock.NewReal()
	d := New(clk, 64)
	defer d.Close()
	d.SetWriteCost(func(r *rand.Rand) time.Duration { return 2 * time.Millisecond }, 1)
	const writers = 5
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = d.Write([]byte{1})
		}()
	}
	wg.Wait()
	// Five serialised 2 ms writes take at least ~10 ms; this is the
	// contention that motivates queueWrite (§3.5.1).
	if elapsed := time.Since(start); elapsed < 9*time.Millisecond {
		t.Errorf("writes completed in %v; contention not serialised", elapsed)
	}
}

func TestReadBatchDrainsBurstInOrder(t *testing.T) {
	d := newDev()
	defer d.Close()
	for i := 0; i < 10; i++ {
		_ = d.InjectOutbound([]byte{byte(i)})
	}
	d.SetBlocking(true)
	batch := make([][]byte, 4)
	var got []byte
	for len(got) < 10 {
		n, err := d.ReadBatch(batch)
		if err != nil {
			t.Fatalf("batch read: %v", err)
		}
		for i := 0; i < n; i++ {
			got = append(got, batch[i][0])
		}
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("order violated at %d: got %d", i, b)
		}
	}
	s := d.Stats()
	if s.PacketsOut != 10 || s.BytesOut != 10 {
		t.Errorf("stats after batch reads: %+v", s)
	}
}

func TestReadBatchNonBlockingEmpty(t *testing.T) {
	d := newDev()
	defer d.Close()
	batch := make([][]byte, 8)
	if _, err := d.ReadBatch(batch); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("got %v, want ErrWouldBlock", err)
	}
	// One burst, one futile wakeup — not one per slot.
	if d.Stats().EmptyReads != 1 {
		t.Errorf("EmptyReads = %d, want 1", d.Stats().EmptyReads)
	}
}

func TestReadBatchBlockingWaitsForFirstOnly(t *testing.T) {
	d := newDev()
	defer d.Close()
	d.SetBlocking(true)
	got := make(chan int, 1)
	go func() {
		batch := make([][]byte, 8)
		n, err := d.ReadBatch(batch)
		if err != nil {
			got <- -1
			return
		}
		got <- n
	}()
	time.Sleep(5 * time.Millisecond)
	_ = d.InjectOutbound([]byte{1})
	select {
	case n := <-got:
		// The burst returns with whatever was queued when the first
		// packet arrived; it never waits to fill the batch.
		if n < 1 {
			t.Fatalf("batch read returned %d", n)
		}
	case <-time.After(time.Second):
		t.Fatal("blocking batch read never returned")
	}
}

func TestReadBatchCloseWakes(t *testing.T) {
	d := newDev()
	d.SetBlocking(true)
	errCh := make(chan error, 1)
	go func() {
		_, err := d.ReadBatch(make([][]byte, 4))
		errCh <- err
	}()
	time.Sleep(2 * time.Millisecond)
	d.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("got %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not wake batch reader")
	}
}

func TestWriteBatchDeliversInOrder(t *testing.T) {
	d := newDev()
	defer d.Close()
	pkts := [][]byte{{1}, {2, 2}, {3, 3, 3}}
	n, err := d.WriteBatch(pkts)
	if err != nil || n != 3 {
		t.Fatalf("WriteBatch = %d, %v", n, err)
	}
	for i := 0; i < 3; i++ {
		pkt, err := d.ReadInbound()
		if err != nil {
			t.Fatalf("read inbound %d: %v", i, err)
		}
		if len(pkt) != i+1 || pkt[0] != byte(i+1) {
			t.Errorf("packet %d: %v", i, pkt)
		}
	}
	s := d.Stats()
	if s.PacketsIn != 3 || s.BytesIn != 6 {
		t.Errorf("stats after batch write: %+v", s)
	}
}

func TestWriteBatchSkipsOversizedDeliversRest(t *testing.T) {
	d := newDev()
	defer d.Close()
	big := make([]byte, DefaultMTU+1)
	n, err := d.WriteBatch([][]byte{{1}, big, {2}})
	if !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
	// Packets fail independently, like a loop of per-packet Writes: the
	// oversized one is skipped, the others still arrive in order.
	if n != 2 {
		t.Errorf("delivered %d packets, want 2", n)
	}
	for _, want := range []byte{1, 2} {
		pkt, rerr := d.ReadInbound()
		if rerr != nil {
			t.Fatalf("read inbound: %v", rerr)
		}
		if pkt[0] != want {
			t.Errorf("got packet %v, want [%d]", pkt, want)
		}
	}
}

func TestWriteBatchChargesCostPerPacket(t *testing.T) {
	clk := clock.NewReal()
	d := New(clk, 16)
	defer d.Close()
	d.SetWriteCost(func(r *rand.Rand) time.Duration { return 2 * time.Millisecond }, 1)
	start := time.Now()
	if _, err := d.WriteBatch([][]byte{{1}, {2}, {3}}); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	// Batching amortises queue locks, not the modelled kernel work:
	// three packets still cost three writes' worth of syscall time.
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("batch of 3 cost %v, want ≥ ~6ms (per-packet cost model)", elapsed)
	}
}

func TestWriteBatchOverflowDrops(t *testing.T) {
	d := New(clock.NewReal(), 2)
	defer d.Close()
	pkts := make([][]byte, 5)
	for i := range pkts {
		pkts[i] = []byte{byte(i)}
	}
	if _, err := d.WriteBatch(pkts); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	if d.InboundLen() != 2 {
		t.Errorf("inbound len = %d, want 2", d.InboundLen())
	}
	if d.Stats().Drops != 3 {
		t.Errorf("drops = %d, want 3", d.Stats().Drops)
	}
}

func TestAndroidWriteCostDistribution(t *testing.T) {
	f := AndroidWriteCost()
	r := rand.New(rand.NewSource(42))
	over1ms := 0
	const n = 10000
	for i := 0; i < n; i++ {
		c := f(r)
		if c <= 0 {
			t.Fatal("non-positive write cost")
		}
		if c > time.Millisecond {
			over1ms++
		}
	}
	frac := float64(over1ms) / n
	// §3.5.1 observed 42/1244 (~3.4%) large overheads for directWrite.
	if frac < 0.005 || frac > 0.10 {
		t.Errorf("spike fraction %.3f outside plausible band", frac)
	}
}
