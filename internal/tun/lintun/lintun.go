//go:build linux && realtun

package lintun

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"repro/internal/tun"
)

// Supported reports whether this build carries the real backend.
const Supported = true

const ifnamsiz = 16

// ifreqFlags is struct ifreq with the union read as the 16-bit flags
// word (TUNSETIFF). The padding brings it to sizeof(struct ifreq)==40.
type ifreqFlags struct {
	name  [ifnamsiz]byte
	flags uint16
	_     [22]byte
}

// ifreqMTU is struct ifreq with the union read as the int MTU
// (SIOCGIFMTU).
type ifreqMTU struct {
	name [ifnamsiz]byte
	mtu  int32
	_    [20]byte
}

// TUN adapts a real /dev/net/tun descriptor to tun.Interface.
//
// The fd is opened non-blocking and wrapped in an *os.File, which
// registers it with the Go runtime poller: "blocking" reads park the
// goroutine in the netpoller (no thread burned), and SetReadDeadline
// gives us the shutdown wakeup the emulated device implements by
// injecting a dummy packet (§3.1's self-sent packet trick).
type TUN struct {
	f    *os.File
	rc   syscall.RawConn
	name string
	mtu  int

	blocking atomic.Bool
	closing  atomic.Bool

	packetsOut atomic.Int64
	packetsIn  atomic.Int64
	bytesOut   atomic.Int64
	bytesIn    atomic.Int64
	emptyReads atomic.Int64
}

var _ tun.Interface = (*TUN)(nil)

// Open attaches to the named TUN interface, creating it if the kernel
// allows (persistent devices made with `ip tuntap add` are attached
// as-is). An empty name lets the kernel pick (tun%d). The descriptor is
// IFF_TUN|IFF_NO_PI: reads and writes are raw IP packets. The device
// MTU is queried from the interface; if the query fails (interface not
// yet up) it falls back to tun.DefaultMTU.
func Open(name string) (*TUN, error) {
	if len(name) >= ifnamsiz {
		return nil, fmt.Errorf("lintun: interface name %q too long", name)
	}
	fd, err := syscall.Open("/dev/net/tun", syscall.O_RDWR|syscall.O_NONBLOCK|syscall.O_CLOEXEC, 0)
	if err != nil {
		return nil, fmt.Errorf("lintun: open /dev/net/tun: %w", err)
	}
	var req ifreqFlags
	copy(req.name[:], name)
	req.flags = syscall.IFF_TUN | syscall.IFF_NO_PI
	if _, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(fd),
		uintptr(syscall.TUNSETIFF), uintptr(unsafe.Pointer(&req))); errno != 0 {
		syscall.Close(fd)
		return nil, fmt.Errorf("lintun: TUNSETIFF %q: %w", name, errno)
	}
	got := cString(req.name[:])

	// os.NewFile on a non-blocking fd registers it with the runtime
	// poller, enabling parked reads and deadline-based wakeups.
	f := os.NewFile(uintptr(fd), "/dev/net/tun:"+got)
	rc, err := f.SyscallConn()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lintun: raw conn: %w", err)
	}
	t := &TUN{f: f, rc: rc, name: got, mtu: tun.DefaultMTU}
	if mtu, err := interfaceMTU(got); err == nil && mtu > 0 {
		t.mtu = mtu
	}
	return t, nil
}

// interfaceMTU queries the interface MTU via SIOCGIFMTU.
func interfaceMTU(name string) (int, error) {
	s, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_DGRAM|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return 0, err
	}
	defer syscall.Close(s)
	var req ifreqMTU
	copy(req.name[:], name)
	if _, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(s),
		uintptr(syscall.SIOCGIFMTU), uintptr(unsafe.Pointer(&req))); errno != 0 {
		return 0, errno
	}
	return int(req.mtu), nil
}

func cString(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// Name reports the attached interface name (kernel-assigned when Open
// was called with an empty name).
func (t *TUN) Name() string { return t.name }

// MTU reports the interface MTU captured at Open.
func (t *TUN) MTU() int { return t.mtu }

// SetBlocking switches the read mode, exactly the fcntl(F_SETFL) /
// IoUtils.setBlocking choice §3.1 measures. Blocking reads park in the
// netpoller; non-blocking reads return tun.ErrWouldBlock on an empty
// device so the engine's poll schedules apply.
func (t *TUN) SetBlocking(b bool) { t.blocking.Store(b) }

// Read retrieves the next outbound IP packet. Each packet gets a fresh
// buffer: the engine's zero-copy decode makes the dequeued buffer
// single-owner.
func (t *TUN) Read() ([]byte, error) {
	buf := make([]byte, t.mtu)
	var n int
	var err error
	if t.blocking.Load() {
		n, err = t.f.Read(buf)
		if err != nil {
			return nil, t.readErr(err)
		}
	} else {
		n, err = t.readNonblock(buf)
		if err != nil {
			if errors.Is(err, tun.ErrWouldBlock) {
				t.emptyReads.Add(1)
			}
			return nil, err
		}
	}
	if n <= 0 {
		return nil, tun.ErrClosed
	}
	t.packetsOut.Add(1)
	t.bytesOut.Add(int64(n))
	return buf[:n], nil
}

// readNonblock issues one raw non-blocking read, mapping EAGAIN to
// tun.ErrWouldBlock instead of parking in the poller.
func (t *TUN) readNonblock(buf []byte) (int, error) {
	var n int
	var rerr error
	cerr := t.rc.Read(func(fd uintptr) bool {
		n, rerr = syscall.Read(int(fd), buf)
		return true // never wait for readiness; EAGAIN surfaces below
	})
	if cerr != nil {
		return 0, t.readErr(cerr)
	}
	if rerr != nil {
		if rerr == syscall.EAGAIN {
			return 0, tun.ErrWouldBlock
		}
		return 0, t.readErr(rerr)
	}
	return n, nil
}

// ReadBatch retrieves up to len(dst) packets: the first under the
// configured blocking mode (one park or one ErrWouldBlock), the rest by
// draining whatever the fd has ready without waiting — the same
// burst-without-extra-wait contract as the emulated device, so the
// AIMD governor's full-burst/half-burst signals keep their meaning.
func (t *TUN) ReadBatch(dst [][]byte) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	first, err := t.Read()
	if err != nil {
		return 0, err
	}
	dst[0] = first
	n := 1
	for n < len(dst) {
		buf := make([]byte, t.mtu)
		m, rerr := t.readNonblock(buf)
		if rerr != nil || m <= 0 {
			break
		}
		dst[n] = buf[:m]
		n++
		t.packetsOut.Add(1)
		t.bytesOut.Add(int64(m))
	}
	return n, nil
}

// Write sends one IP packet to the device. The poller handles a full
// qdisc (EAGAIN) by parking until writable, which is the single-tunnel
// serialisation §3.5.1 describes.
func (t *TUN) Write(pkt []byte) error {
	if len(pkt) > t.mtu {
		return tun.ErrTooBig
	}
	if _, err := t.f.Write(pkt); err != nil {
		return t.writeErr(err)
	}
	t.packetsIn.Add(1)
	t.bytesIn.Add(int64(len(pkt)))
	return nil
}

// WriteBatch writes a burst with independent per-packet failures,
// matching the emulated device: an oversized packet is skipped and
// reported while the rest of the burst is still delivered. A closed
// device aborts the burst.
func (t *TUN) WriteBatch(pkts [][]byte) (int, error) {
	var n int
	var ferr error
	for _, pkt := range pkts {
		if err := t.Write(pkt); err != nil {
			if errors.Is(err, tun.ErrClosed) {
				return n, err
			}
			if ferr == nil {
				ferr = err
			}
			continue
		}
		n++
	}
	return n, ferr
}

// InjectOutbound is the engine's shutdown wakeup (the emulated device
// receives a dummy packet; §3.1's self-sent packet). A real descriptor
// has no user-space injection path, so it is implemented as a reader
// wakeup: an already-expired read deadline unparks any blocked Read,
// which then reports ErrClosed.
func (t *TUN) InjectOutbound([]byte) error {
	t.closing.Store(true)
	return t.f.SetReadDeadline(time.Unix(1, 0))
}

// Close tears the device down. Blocked readers and writers unblock
// with tun.ErrClosed.
func (t *TUN) Close() {
	t.closing.Store(true)
	_ = t.f.Close()
}

// Stats mirrors the emulated device's counters so the real ceiling
// benchmark and the e2e smoke read the same shape. Queueing-delay
// fields stay zero: the kernel does not timestamp TUN enqueue.
func (t *TUN) Stats() tun.Stats {
	return tun.Stats{
		PacketsOut: int(t.packetsOut.Load()),
		PacketsIn:  int(t.packetsIn.Load()),
		BytesOut:   t.bytesOut.Load(),
		BytesIn:    t.bytesIn.Load(),
		EmptyReads: int(t.emptyReads.Load()),
	}
}

// readErr maps errors surfaced by the file/poller to the tun sentinel
// set the engine's reader loops dispatch on.
func (t *TUN) readErr(err error) error {
	if t.closing.Load() ||
		errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, os.ErrClosed) {
		return tun.ErrClosed
	}
	return err
}

func (t *TUN) writeErr(err error) error {
	if t.closing.Load() || errors.Is(err, os.ErrClosed) {
		return tun.ErrClosed
	}
	return err
}
