// Package lintun is the real-device TUN backend: it opens a Linux
// /dev/net/tun descriptor (IFF_TUN|IFF_NO_PI) and adapts it to
// tun.Interface, so the relay engine's reader/writer loops, batching,
// and the AIMD burst governor run unchanged against live traffic.
//
// The backend compiles only with `-tags realtun` on linux; every other
// build gets a stub whose Open returns ErrUnsupported, which keeps the
// untagged wiring in cmd/mopeye and cmd/paperbench compiling without
// the tag. netsim + the emulated tun.Device remain the default test
// substrate (deterministic, unprivileged); this package is the
// production exit.
package lintun

import "errors"

// ErrUnsupported is returned by Open when the build does not carry the
// real backend (missing the realtun tag, or not linux).
var ErrUnsupported = errors.New("lintun: real TUN backend not compiled in (build with -tags realtun on linux)")
