//go:build linux && realtun

package lintun

import (
	"errors"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/tun"
)

// requireTUN skips unless the test can actually open a TUN device
// (root or CAP_NET_ADMIN, and /dev/net/tun present).
func requireTUN(t *testing.T) {
	t.Helper()
	if os.Geteuid() != 0 {
		t.Skip("lintun tests need root/CAP_NET_ADMIN")
	}
	if _, err := os.Stat("/dev/net/tun"); err != nil {
		t.Skipf("/dev/net/tun unavailable: %v", err)
	}
}

func TestOpenReadWrite(t *testing.T) {
	requireTUN(t)
	dev, err := Open("")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer dev.Close()
	if dev.Name() == "" {
		t.Fatal("kernel did not assign a name")
	}
	if dev.MTU() <= 0 {
		t.Fatalf("MTU = %d", dev.MTU())
	}

	// Non-blocking read while the link is still down (nothing can have
	// arrived yet): EAGAIN → ErrWouldBlock.
	dev.SetBlocking(false)
	if _, err := dev.Read(); !errors.Is(err, tun.ErrWouldBlock) {
		t.Fatalf("idle non-blocking read: %v, want ErrWouldBlock", err)
	}
	if dev.Stats().EmptyReads == 0 {
		t.Error("empty read not counted")
	}

	// Bring the interface up with an address so the kernel routes into
	// it; then an ICMP ping generates real outbound packets to read.
	run := func(args ...string) {
		t.Helper()
		if out, err := exec.Command("ip", args...).CombinedOutput(); err != nil {
			t.Fatalf("ip %v: %v\n%s", args, err, out)
		}
	}
	run("addr", "add", "198.51.100.1/24", "dev", dev.Name())
	run("link", "set", dev.Name(), "up")

	// Blocking read parked in the poller, then the kernel sends to a
	// routed address and the read returns a raw IP packet. The link-up
	// itself emits IPv6 noise (router solicitations), so drain until an
	// IPv4 packet shows up.
	dev.SetBlocking(true)
	got := make(chan []byte, 1)
	rerrc := make(chan error, 1)
	go func() {
		for {
			pkt, err := dev.Read()
			if err != nil {
				rerrc <- err
				return
			}
			if len(pkt) > 0 && pkt[0]>>4 == 4 {
				got <- pkt
				return
			}
		}
	}()
	// A UDP datagram to a routed address lands in the TUN as a raw
	// IPv4 packet (no replier needed).
	uc, err := net.Dial("udp", "198.51.100.9:33434")
	if err != nil {
		t.Fatalf("udp dial via tun route: %v", err)
	}
	defer uc.Close()
	if _, err := uc.Write([]byte("probe")); err != nil {
		t.Fatalf("udp send: %v", err)
	}
	select {
	case pkt := <-got:
		if len(pkt) < 28 || pkt[9] != 17 { // IPv4 proto field: UDP
			t.Fatalf("unexpected packet: % x", pkt[:minInt(28, len(pkt))])
		}
	case err := <-rerrc:
		t.Fatalf("reader goroutine error: %v", err)
	case <-time.After(3 * time.Second):
		t.Fatal("blocked read never saw the routed packet")
	}

	// InjectOutbound must unpark a blocked reader with ErrClosed — the
	// engine's shutdown path.
	unblocked := make(chan error, 1)
	go func() {
		_, err := dev.Read()
		unblocked <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := dev.InjectOutbound([]byte{0}); err != nil {
		t.Fatalf("InjectOutbound: %v", err)
	}
	select {
	case err := <-unblocked:
		if !errors.Is(err, tun.ErrClosed) {
			t.Fatalf("wakeup read: %v, want ErrClosed", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("InjectOutbound did not unblock the reader")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
