//go:build !(linux && realtun)

package lintun

import "repro/internal/tun"

// Supported reports whether this build carries the real backend.
const Supported = false

// TUN is the stub standing in for the real backend so untagged wiring
// compiles. Open never returns one; the methods exist only to satisfy
// tun.Interface.
type TUN struct{}

var _ tun.Interface = (*TUN)(nil)

// Open always fails: the real backend needs `-tags realtun` on linux.
func Open(string) (*TUN, error) { return nil, ErrUnsupported }

func (*TUN) Name() string                     { return "" }
func (*TUN) MTU() int                         { return tun.DefaultMTU }
func (*TUN) SetBlocking(bool)                 {}
func (*TUN) Read() ([]byte, error)            { return nil, ErrUnsupported }
func (*TUN) ReadBatch([][]byte) (int, error)  { return 0, ErrUnsupported }
func (*TUN) Write([]byte) error               { return ErrUnsupported }
func (*TUN) WriteBatch([][]byte) (int, error) { return 0, ErrUnsupported }
func (*TUN) InjectOutbound([]byte) error      { return ErrUnsupported }
func (*TUN) Close()                           {}
func (*TUN) Stats() tun.Stats                 { return tun.Stats{} }
