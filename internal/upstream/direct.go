package upstream

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"
)

// defaultDialTimeout bounds Direct dials and whole SOCKS5 handshakes
// when no Timeout is configured.
const defaultDialTimeout = 10 * time.Second

// Direct exits flows through real kernel sockets (net.Dialer) — the
// data plane's counterpart of Netsim, used under -tun real. The local
// address is ignored: relay sockets are protected from the TUN route by
// the host routing setup, and the kernel picks the source.
type Direct struct {
	// Timeout bounds the TCP connect (defaultDialTimeout when zero).
	Timeout time.Duration
}

// Dial implements Dialer.
func (d Direct) Dial(_, dst netip.AddrPort) (Conn, error) {
	to := d.Timeout
	if to <= 0 {
		to = defaultDialTimeout
	}
	nd := net.Dialer{Timeout: to}
	c, err := nd.Dial("tcp", dst.String())
	if err != nil {
		nerr := &net.OpError{}
		if errors.As(err, &nerr) && nerr.Timeout() {
			return nil, &Error{Op: "dial", Err: ErrTimeout}
		}
		return nil, &Error{Op: "dial", Err: err}
	}
	return WrapNetConn(c), nil
}

// netConn adapts a real net.Conn to the non-blocking Conn surface the
// relay's selector machinery needs: a pump goroutine parks in the
// kernel read and feeds an in-process receive buffer, firing the
// readiness callback exactly the way the emulated netsim mailbox does
// (including fire-on-attach when data is already pending).
type netConn struct {
	c net.Conn

	mu         sync.Mutex
	buf        []byte
	eof        bool
	rerr       error
	onReadable func()
}

// WrapNetConn adapts an established real socket to the Conn interface.
// Used by Direct and by the SOCKS5 dialer once its handshake hands the
// stream over to the relay.
func WrapNetConn(c net.Conn) Conn {
	nc := &netConn{c: c}
	go nc.pump()
	return nc
}

// pump moves bytes from the kernel into the receive buffer. One parked
// goroutine per external connection — the real-socket analogue of the
// netsim scheduler's delivery into a mailbox.
func (nc *netConn) pump() {
	chunk := make([]byte, 32*1024)
	for {
		n, err := nc.c.Read(chunk)
		nc.mu.Lock()
		if n > 0 {
			nc.buf = append(nc.buf, chunk[:n]...)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				nc.eof = true
			} else {
				nc.rerr = err
			}
		}
		cb := nc.onReadable
		fire := cb != nil && (len(nc.buf) > 0 || nc.eof || nc.rerr != nil)
		nc.mu.Unlock()
		if fire {
			cb()
		}
		if err != nil {
			return
		}
	}
}

// TryRead implements Conn.
func (nc *netConn) TryRead(buf []byte) (int, error) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if len(nc.buf) > 0 {
		n := copy(buf, nc.buf)
		nc.buf = nc.buf[n:]
		if len(nc.buf) == 0 {
			nc.buf = nil // release the drained backing array
		}
		return n, nil
	}
	if nc.eof {
		return 0, ErrEOF
	}
	if nc.rerr != nil {
		return 0, nc.rerr
	}
	return 0, ErrWouldBlock
}

// Write implements Conn.
func (nc *netConn) Write(b []byte) (int, error) { return nc.c.Write(b) }

// CloseWrite implements Conn, sending a real FIN when the socket
// supports half-close.
func (nc *netConn) CloseWrite() error {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := nc.c.(closeWriter); ok {
		return cw.CloseWrite()
	}
	return nil
}

// Close implements Conn. The pump unblocks with an error and exits.
func (nc *netConn) Close() error { return nc.c.Close() }

// Reset implements Conn: SO_LINGER(0) turns the close into an RST,
// mirroring the abort the app-side RST relaying expects.
func (nc *netConn) Reset() error {
	if tc, ok := nc.c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	return nc.c.Close()
}

// SetOnReadable implements Conn with netsim mailbox semantics: replace
// the callback and fire immediately if already readable.
func (nc *netConn) SetOnReadable(fn func()) {
	nc.mu.Lock()
	nc.onReadable = fn
	fire := fn != nil && (len(nc.buf) > 0 || nc.eof || nc.rerr != nil)
	nc.mu.Unlock()
	if fire {
		fn()
	}
}
