package upstream

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"repro/internal/clock"
)

// SOCKS5 protocol constants (RFC 1928 / RFC 1929).
const (
	socksVersion     = 0x05
	authVersion      = 0x01
	methodNoAuth     = 0x00
	methodUserPass   = 0x02
	methodNoneOK     = 0xFF
	cmdConnect       = 0x01
	atypIPv4         = 0x01
	atypIPv6         = 0x04
	replySucceeded   = 0x00
	replyNotAllowed  = 0x02
	replyCmdUnsupp   = 0x07
	replyAtypUnsupp  = 0x08
	replyConnRefused = 0x05
)

// Typed terminal failures.
var (
	// ErrAuthFailed reports rejected credentials (RFC 1929 status != 0)
	// or a proxy that accepts none of our auth methods.
	ErrAuthFailed = errors.New("upstream: socks5 authentication failed")
)

// SOCKS5 relays TCP flows through a SOCKS5 proxy via CONNECT,
// psiphon-style. It composes over Forward — the transport used to
// reach the proxy — so the same handshake runs against an in-process
// proxy inside netsim and a real proxy over kernel sockets.
type SOCKS5 struct {
	// Proxy is the proxy's address on the Forward substrate.
	Proxy netip.AddrPort
	// Username/Password enable RFC 1929 auth when non-empty.
	Username, Password string
	// Timeout bounds the whole dial + handshake (defaultDialTimeout
	// when zero).
	Timeout time.Duration
	// Forward reaches the proxy: Netsim in tests, Direct on the real
	// data plane. Required.
	Forward Dialer
	// Clk is the timeout's time source; nil means the wall clock. The
	// virtual-clock e2e tests inject theirs so a hung proxy times out
	// in simulated time.
	Clk clock.Clock
}

// Dial implements Dialer: dial the proxy over Forward, authenticate,
// CONNECT to dst, and hand the stream to the relay. Classification:
// transport failures and timeouts are retryable; bad credentials and
// proxy policy/protocol refusals are terminal.
func (s *SOCKS5) Dial(local, dst netip.AddrPort) (Conn, error) {
	if s.Forward == nil {
		return nil, &Error{Op: "dial", IsTerminal: true, Err: errors.New("socks5: no forward dialer")}
	}
	c, err := s.Forward.Dial(local, s.Proxy)
	if err != nil {
		var ue *Error
		if errors.As(err, &ue) {
			return nil, err
		}
		return nil, &Error{Op: "dial", Err: err}
	}
	if err := s.handshake(c, dst); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

func (s *SOCKS5) handshake(c Conn, dst netip.AddrPort) error {
	clk := s.Clk
	if clk == nil {
		clk = clock.NewReal()
	}
	to := s.Timeout
	if to <= 0 {
		to = defaultDialTimeout
	}
	hr := newHandshakeReader(c, clk.After(to))
	defer hr.detach()

	// Greeting: offer user/pass only when credentials are configured.
	methods := []byte{methodNoAuth}
	if s.Username != "" {
		methods = []byte{methodNoAuth, methodUserPass}
	}
	if err := writeAll(c, append([]byte{socksVersion, byte(len(methods))}, methods...)); err != nil {
		return &Error{Op: "greeting", Err: err}
	}
	var sel [2]byte
	if err := hr.readFull("greeting", sel[:]); err != nil {
		return err
	}
	if sel[0] != socksVersion {
		return &Error{Op: "greeting", IsTerminal: true, Err: fmt.Errorf("socks5: bad version %#x", sel[0])}
	}

	switch sel[1] {
	case methodNoAuth:
	case methodUserPass:
		if s.Username == "" {
			return &Error{Op: "auth", IsTerminal: true, Err: ErrAuthFailed}
		}
		req := []byte{authVersion, byte(len(s.Username))}
		req = append(req, s.Username...)
		req = append(req, byte(len(s.Password)))
		req = append(req, s.Password...)
		if err := writeAll(c, req); err != nil {
			return &Error{Op: "auth", Err: err}
		}
		var st [2]byte
		if err := hr.readFull("auth", st[:]); err != nil {
			return err
		}
		if st[1] != 0 {
			return &Error{Op: "auth", IsTerminal: true, Err: ErrAuthFailed}
		}
	default: // 0xFF or anything unknown
		return &Error{Op: "auth", IsTerminal: true, Err: ErrAuthFailed}
	}

	// CONNECT dst.
	req := []byte{socksVersion, cmdConnect, 0x00}
	addr := dst.Addr().Unmap()
	if addr.Is4() {
		b := addr.As4()
		req = append(req, atypIPv4)
		req = append(req, b[:]...)
	} else {
		b := addr.As16()
		req = append(req, atypIPv6)
		req = append(req, b[:]...)
	}
	req = append(req, byte(dst.Port()>>8), byte(dst.Port()))
	if err := writeAll(c, req); err != nil {
		return &Error{Op: "connect", Err: err}
	}

	var hdr [4]byte
	if err := hr.readFull("connect", hdr[:]); err != nil {
		return err
	}
	if hdr[0] != socksVersion {
		return &Error{Op: "connect", IsTerminal: true, Err: fmt.Errorf("socks5: bad reply version %#x", hdr[0])}
	}
	if hdr[1] != replySucceeded {
		return &Error{
			Op:         "connect",
			ReplyCode:  hdr[1],
			IsTerminal: terminalReply(hdr[1]),
			Err:        fmt.Errorf("socks5: connect refused: %s", replyString(hdr[1])),
		}
	}
	// Drain the bound address so relay payload starts at a clean
	// boundary.
	var alen int
	switch hdr[3] {
	case atypIPv4:
		alen = 4
	case atypIPv6:
		alen = 16
	case 0x03: // domain
		var l [1]byte
		if err := hr.readFull("connect", l[:]); err != nil {
			return err
		}
		alen = int(l[0])
	default:
		return &Error{Op: "connect", IsTerminal: true, Err: fmt.Errorf("socks5: bad bound atyp %#x", hdr[3])}
	}
	bound := make([]byte, alen+2)
	return hr.readFull("connect", bound)
}

// terminalReply classifies SOCKS5 reply codes: policy and protocol
// refusals are terminal, transient network failures are retryable.
func terminalReply(code byte) bool {
	switch code {
	case replyNotAllowed, replyCmdUnsupp, replyAtypUnsupp:
		return true
	}
	return false
}

func replyString(code byte) string {
	switch code {
	case 0x01:
		return "general failure"
	case replyNotAllowed:
		return "connection not allowed by ruleset"
	case 0x03:
		return "network unreachable"
	case 0x04:
		return "host unreachable"
	case replyConnRefused:
		return "connection refused"
	case 0x06:
		return "TTL expired"
	case replyCmdUnsupp:
		return "command not supported"
	case replyAtypUnsupp:
		return "address type not supported"
	}
	return fmt.Sprintf("reply code %#x", code)
}

// handshakeReader turns the Conn's non-blocking TryRead + readiness
// callback into the blocking reads a handshake needs, bounded by one
// deadline across the whole exchange.
type handshakeReader struct {
	c        Conn
	ready    chan struct{}
	deadline <-chan time.Time
}

func newHandshakeReader(c Conn, deadline <-chan time.Time) *handshakeReader {
	hr := &handshakeReader{c: c, ready: make(chan struct{}, 1), deadline: deadline}
	c.SetOnReadable(func() {
		select {
		case hr.ready <- struct{}{}:
		default:
		}
	})
	return hr
}

// detach uninstalls the readiness callback; the relay installs its own
// once the channel registers with a selector.
func (hr *handshakeReader) detach() { hr.c.SetOnReadable(nil) }

func (hr *handshakeReader) readFull(op string, buf []byte) error {
	got := 0
	for got < len(buf) {
		n, err := hr.c.TryRead(buf[got:])
		got += n
		switch {
		case err == nil:
			if n == 0 && got < len(buf) {
				// Defensive: treat a progress-free clean read as
				// not-ready.
				err = ErrWouldBlock
			} else {
				continue
			}
			fallthrough
		case errors.Is(err, ErrWouldBlock):
			select {
			case <-hr.ready:
			case <-hr.deadline:
				return &Error{Op: op, Err: ErrTimeout}
			}
		case errors.Is(err, ErrEOF):
			return &Error{Op: op, Err: errors.New("socks5: proxy closed mid-handshake")}
		default:
			return &Error{Op: op, Err: err}
		}
	}
	return nil
}

// writeAll pushes the whole buffer through Conn.Write.
func writeAll(c Conn, b []byte) error {
	for len(b) > 0 {
		n, err := c.Write(b)
		if err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}
