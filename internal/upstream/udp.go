package upstream

import (
	"net"
	"net/netip"
	"time"
)

// KernelUDP returns a UDP exit over real kernel sockets, shaped for
// sockets.Provider.SetUDPTransport. Each datagram gets its own
// connected socket — the relay's UDP traffic is DNS-transaction shaped
// (§2.4: one query, one response, temporary thread), so per-exchange
// sockets keep the exit stateless. A response arriving within timeout
// is handed to deliver; then the socket closes.
func KernelUDP(timeout time.Duration) func(local, dst netip.AddrPort, payload []byte, deliver func([]byte)) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return func(_, dst netip.AddrPort, payload []byte, deliver func([]byte)) {
		c, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(dst))
		if err != nil {
			return
		}
		if _, err := c.Write(payload); err != nil {
			c.Close()
			return
		}
		go func() {
			defer c.Close()
			_ = c.SetReadDeadline(time.Now().Add(timeout))
			buf := make([]byte, 64*1024)
			n, err := c.Read(buf)
			if err != nil || n == 0 {
				return
			}
			deliver(append([]byte(nil), buf[:n]...))
		}()
	}
}
