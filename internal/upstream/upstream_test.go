package upstream

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    Spec
		wantErr string
	}{
		{in: "", want: Spec{Scheme: "direct"}},
		{in: "direct", want: Spec{Scheme: "direct"}},
		{in: "socks5://127.0.0.1:1080", want: Spec{Scheme: "socks5", Addr: "127.0.0.1:1080"}},
		{in: "socks5://u:p@proxy.example:1080", want: Spec{Scheme: "socks5", Addr: "proxy.example:1080", Username: "u", Password: "p"}},
		{in: "socks5://127.0.0.1", wantErr: "host:port"},
		{in: "socks5://127.0.0.1:1080/path", wantErr: "path"},
		{in: "http://127.0.0.1:1080", wantErr: "unsupported scheme"},
		{in: "socks5:127.0.0.1:1080", wantErr: "bad spec"},
		{in: "bogus", wantErr: "bad spec"},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseSpec(%q) err = %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// echoListener runs a TCP echo server and returns its address.
func echoListener(t *testing.T) netip.AddrPort {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	return netip.MustParseAddrPort(l.Addr().String())
}

// socksListener serves the in-process SOCKS5 server on loopback with a
// real-socket backend dialer and returns its address.
func socksListener(t *testing.T, cfg ServerConfig) netip.AddrPort {
	t.Helper()
	if cfg.Dial == nil {
		cfg.Dial = func(dst netip.AddrPort) (io.ReadWriteCloser, error) {
			return net.Dial("tcp", dst.String())
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, cfg)
	return netip.MustParseAddrPort(l.Addr().String())
}

// readAll drains n bytes from a Conn, waiting on readiness.
func readN(t *testing.T, c Conn, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < n {
		m, err := c.TryRead(buf[got:])
		got += m
		if errors.Is(err, ErrWouldBlock) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out after %d/%d bytes", got, n)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("TryRead after %d bytes: %v", got, err)
		}
	}
	return buf
}

func TestDirectDialEcho(t *testing.T) {
	dst := echoListener(t)
	c, err := Direct{}.Dial(netip.AddrPort{}, dst)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := string(readN(t, c, 4)); got != "ping" {
		t.Fatalf("echo = %q", got)
	}
	// Half-close: the echo server sees EOF, drains, and closes; we must
	// then observe ErrEOF through TryRead.
	if err := c.CloseWrite(); err != nil {
		t.Fatalf("close write: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.TryRead(make([]byte, 16))
		if errors.Is(err, ErrEOF) {
			break
		}
		if !errors.Is(err, ErrWouldBlock) {
			t.Fatalf("TryRead: %v, want eventual ErrEOF", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw EOF after half-close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDirectDialRefusedIsRetryable(t *testing.T) {
	// A port nothing listens on: grab one, close it, dial it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dst := netip.MustParseAddrPort(l.Addr().String())
	l.Close()
	_, err = Direct{Timeout: 2 * time.Second}.Dial(netip.AddrPort{}, dst)
	if err == nil {
		t.Fatal("dial succeeded against closed port")
	}
	var ue *Error
	if !errors.As(err, &ue) {
		t.Fatalf("err %T, want *Error", err)
	}
	if Terminal(err) {
		t.Fatalf("refused TCP connect classified terminal: %v", err)
	}
}

func TestSOCKS5Echo(t *testing.T) {
	dst := echoListener(t)
	proxy := socksListener(t, ServerConfig{})
	d := &SOCKS5{Proxy: proxy, Forward: Direct{}}
	c, err := d.Dial(netip.AddrPort{}, dst)
	if err != nil {
		t.Fatalf("socks dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("relay me")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := string(readN(t, c, 8)); got != "relay me" {
		t.Fatalf("echo through proxy = %q", got)
	}
}

func TestSOCKS5Auth(t *testing.T) {
	dst := echoListener(t)
	proxy := socksListener(t, ServerConfig{Username: "mopeye", Password: "s3cret"})

	// Correct credentials succeed.
	good := &SOCKS5{Proxy: proxy, Username: "mopeye", Password: "s3cret", Forward: Direct{}}
	c, err := good.Dial(netip.AddrPort{}, dst)
	if err != nil {
		t.Fatalf("authed dial: %v", err)
	}
	c.Close()

	// Wrong password: terminal ErrAuthFailed.
	bad := &SOCKS5{Proxy: proxy, Username: "mopeye", Password: "wrong", Forward: Direct{}}
	_, err = bad.Dial(netip.AddrPort{}, dst)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("bad password err = %v, want ErrAuthFailed", err)
	}
	if !Terminal(err) {
		t.Fatalf("auth failure must be terminal: %v", err)
	}

	// No credentials offered at all: the server rejects the method set.
	anon := &SOCKS5{Proxy: proxy, Forward: Direct{}}
	_, err = anon.Dial(netip.AddrPort{}, dst)
	if !errors.Is(err, ErrAuthFailed) || !Terminal(err) {
		t.Fatalf("anon against auth proxy err = %v, want terminal ErrAuthFailed", err)
	}
}

func TestSOCKS5RefusedConnect(t *testing.T) {
	dst := echoListener(t)
	// Retryable refusal (connection refused).
	proxy := socksListener(t, ServerConfig{RejectConnect: replyConnRefused})
	_, err := (&SOCKS5{Proxy: proxy, Forward: Direct{}}).Dial(netip.AddrPort{}, dst)
	var ue *Error
	if !errors.As(err, &ue) || ue.ReplyCode != replyConnRefused {
		t.Fatalf("err = %v, want *Error with reply 0x05", err)
	}
	if Terminal(err) {
		t.Fatalf("connection-refused reply must be retryable: %v", err)
	}

	// Terminal refusal (ruleset).
	proxy2 := socksListener(t, ServerConfig{RejectConnect: replyNotAllowed})
	_, err = (&SOCKS5{Proxy: proxy2, Forward: Direct{}}).Dial(netip.AddrPort{}, dst)
	if !Terminal(err) {
		t.Fatalf("ruleset refusal must be terminal: %v", err)
	}
}

func TestSOCKS5HangTimesOut(t *testing.T) {
	dst := echoListener(t)
	proxy := socksListener(t, ServerConfig{HangAfterGreeting: true})
	d := &SOCKS5{Proxy: proxy, Forward: Direct{}, Timeout: 200 * time.Millisecond}
	start := time.Now()
	_, err := d.Dial(netip.AddrPort{}, dst)
	if err == nil {
		t.Fatal("dial against hung proxy succeeded")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout cause", err)
	}
	if Terminal(err) {
		t.Fatalf("timeout must be retryable: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~200ms", elapsed)
	}
}

func TestSOCKS5ForwardDialFailure(t *testing.T) {
	// Proxy address nothing listens on: the forward dial itself fails,
	// classified retryable.
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	proxy := netip.MustParseAddrPort(l.Addr().String())
	l.Close()
	d := &SOCKS5{Proxy: proxy, Forward: Direct{Timeout: 2 * time.Second}}
	_, err := d.Dial(netip.AddrPort{}, netip.MustParseAddrPort("192.0.2.1:80"))
	if err == nil {
		t.Fatal("dial succeeded with dead proxy")
	}
	if Terminal(err) {
		t.Fatalf("dead proxy must be retryable: %v", err)
	}
}
