package upstream

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
)

// ServerConfig configures the in-process SOCKS5 server. The zero value
// accepts anonymous clients and needs only Dial. The fault-injection
// knobs exist for the upstream error-path tests: credential rejection,
// CONNECT refusal, and a proxy that accepts the greeting then goes
// silent (the dial-timeout case).
type ServerConfig struct {
	// Username/Password require RFC 1929 auth when non-empty.
	Username, Password string
	// RejectConnect, when nonzero, refuses every CONNECT with this
	// SOCKS5 reply code.
	RejectConnect byte
	// HangAfterGreeting accepts the method negotiation and then never
	// answers the CONNECT, so clients exercise their dial timeout.
	HangAfterGreeting bool
	// Dial opens the backend connection for an accepted CONNECT. It is
	// substrate-agnostic: netsim.Network.Dial in the testbed, net.Dial
	// on a real host. Required unless every CONNECT is refused.
	Dial func(dst netip.AddrPort) (io.ReadWriteCloser, error)
}

// ServeConn speaks the SOCKS5 server side over one accepted stream and,
// on a successful CONNECT, relays bytes both ways until either side
// closes. It works over anything with blocking Read/Write — a
// *netsim.Conn inside the testbed or a net.Conn from a real listener —
// which is what lets one proxy implementation cover both the
// unprivileged e2e tests and the root-gated real-TUN smoke.
func ServeConn(rw io.ReadWriteCloser, cfg ServerConfig) error {
	defer rw.Close()

	// Method negotiation.
	var hdr [2]byte
	if _, err := io.ReadFull(rw, hdr[:]); err != nil {
		return fmt.Errorf("socks5 server: greeting: %w", err)
	}
	if hdr[0] != socksVersion {
		return fmt.Errorf("socks5 server: bad version %#x", hdr[0])
	}
	methods := make([]byte, hdr[1])
	if _, err := io.ReadFull(rw, methods); err != nil {
		return fmt.Errorf("socks5 server: methods: %w", err)
	}
	want := byte(methodNoAuth)
	if cfg.Username != "" {
		want = methodUserPass
	}
	offered := false
	for _, m := range methods {
		if m == want {
			offered = true
		}
	}
	if !offered {
		_, _ = rw.Write([]byte{socksVersion, methodNoneOK})
		return errors.New("socks5 server: no acceptable method")
	}
	if _, err := rw.Write([]byte{socksVersion, want}); err != nil {
		return err
	}

	if cfg.HangAfterGreeting {
		// Swallow everything until the peer gives up; never reply.
		_, _ = io.Copy(io.Discard, rw)
		return nil
	}

	if want == methodUserPass {
		ok, err := serveAuth(rw, cfg)
		if err != nil {
			return err
		}
		if !ok {
			return errors.New("socks5 server: auth rejected")
		}
	}

	// CONNECT request.
	var req [4]byte
	if _, err := io.ReadFull(rw, req[:]); err != nil {
		return fmt.Errorf("socks5 server: request: %w", err)
	}
	if req[0] != socksVersion {
		return fmt.Errorf("socks5 server: bad request version %#x", req[0])
	}
	dst, err := readDstAddr(rw, req[3])
	if err != nil {
		return err
	}
	if req[1] != cmdConnect {
		_ = writeReply(rw, replyCmdUnsupp)
		return fmt.Errorf("socks5 server: unsupported command %#x", req[1])
	}
	if cfg.RejectConnect != 0 {
		_ = writeReply(rw, cfg.RejectConnect)
		return fmt.Errorf("socks5 server: connect refused by config (%s)", replyString(cfg.RejectConnect))
	}
	if cfg.Dial == nil {
		_ = writeReply(rw, 0x01)
		return errors.New("socks5 server: no backend dialer")
	}
	backend, err := cfg.Dial(dst)
	if err != nil {
		_ = writeReply(rw, replyConnRefused)
		return fmt.Errorf("socks5 server: backend dial %v: %w", dst, err)
	}
	if err := writeReply(rw, replySucceeded); err != nil {
		backend.Close()
		return err
	}
	relay(rw, backend)
	return nil
}

// serveAuth runs the RFC 1929 exchange; false means rejected.
func serveAuth(rw io.ReadWriteCloser, cfg ServerConfig) (bool, error) {
	var ver [2]byte
	if _, err := io.ReadFull(rw, ver[:]); err != nil {
		return false, err
	}
	user := make([]byte, ver[1])
	if _, err := io.ReadFull(rw, user); err != nil {
		return false, err
	}
	var plen [1]byte
	if _, err := io.ReadFull(rw, plen[:]); err != nil {
		return false, err
	}
	pass := make([]byte, plen[0])
	if _, err := io.ReadFull(rw, pass); err != nil {
		return false, err
	}
	if ver[0] != authVersion || string(user) != cfg.Username || string(pass) != cfg.Password {
		_, _ = rw.Write([]byte{authVersion, 0x01})
		return false, nil
	}
	_, err := rw.Write([]byte{authVersion, 0x00})
	return true, err
}

// readDstAddr parses the CONNECT destination.
func readDstAddr(r io.Reader, atyp byte) (netip.AddrPort, error) {
	var raw []byte
	switch atyp {
	case atypIPv4:
		raw = make([]byte, 4+2)
	case atypIPv6:
		raw = make([]byte, 16+2)
	default:
		return netip.AddrPort{}, fmt.Errorf("socks5 server: unsupported atyp %#x", atyp)
	}
	if _, err := io.ReadFull(r, raw); err != nil {
		return netip.AddrPort{}, err
	}
	addr, ok := netip.AddrFromSlice(raw[:len(raw)-2])
	if !ok {
		return netip.AddrPort{}, errors.New("socks5 server: bad address")
	}
	port := uint16(raw[len(raw)-2])<<8 | uint16(raw[len(raw)-1])
	return netip.AddrPortFrom(addr, port), nil
}

// writeReply sends a minimal reply with a zero IPv4 bound address.
func writeReply(w io.Writer, code byte) error {
	_, err := w.Write([]byte{socksVersion, code, 0x00, atypIPv4, 0, 0, 0, 0, 0, 0})
	return err
}

// relay copies both directions, propagating half-closes so FIN
// semantics survive the proxy hop (the byte-identical direct-vs-SOCKS
// e2e depends on the app seeing the same stream endings either way).
func relay(a, b io.ReadWriteCloser) {
	done := make(chan struct{}, 2)
	cp := func(dst, src io.ReadWriteCloser) {
		_, _ = io.Copy(dst, src)
		type closeWriter interface{ CloseWrite() error }
		if cw, ok := dst.(closeWriter); ok {
			_ = cw.CloseWrite()
		} else {
			_ = dst.Close()
		}
		done <- struct{}{}
	}
	go cp(b, a)
	cp(a, b)
	<-done
	<-done
	_ = a.Close()
	_ = b.Close()
}

// Serve accepts connections from a real listener and serves each in its
// own goroutine until the listener closes — the shape the root-gated
// smoke uses to run a loopback exit proxy next to the relay.
func Serve(l net.Listener, cfg ServerConfig) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go func() { _ = ServeConn(c, cfg) }()
	}
}
