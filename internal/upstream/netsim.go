package upstream

import (
	"errors"
	"net/netip"

	"repro/internal/netsim"
)

// Netsim dials inside the emulated network — the default substrate's
// semantics, now behind the Dialer seam. It also serves as the Forward
// transport when a SOCKS5 proxy runs inside netsim, which is how the
// proxy path gets full e2e coverage without root or network access.
type Netsim struct {
	Net *netsim.Network
}

// Dial implements Dialer.
func (d Netsim) Dial(local, dst netip.AddrPort) (Conn, error) {
	c, err := d.Net.Dial(local, dst)
	if err != nil {
		return nil, err
	}
	return NetsimConn{c}, nil
}

// NetsimConn adapts *netsim.Conn to the Conn interface, mapping the
// netsim sentinels onto the upstream set. Everything except TryRead
// promotes from the embedded conn.
type NetsimConn struct {
	*netsim.Conn
}

// TryRead implements Conn.
func (c NetsimConn) TryRead(buf []byte) (int, error) {
	n, err := c.Conn.TryRead(buf)
	switch {
	case errors.Is(err, netsim.ErrWouldBlock):
		return n, ErrWouldBlock
	case errors.Is(err, netsim.ErrEOFConn):
		return n, ErrEOF
	}
	return n, err
}
