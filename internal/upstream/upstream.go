// Package upstream abstracts where relayed flows exit. The relay's
// socket layer (package sockets) historically dialed straight into the
// emulated netsim network; this package turns that call point into a
// Dialer seam with three implementations, psiphon-style:
//
//   - Netsim: today's semantics — dial inside the emulated network
//     (the default test substrate).
//   - Direct: a real net.Dialer for the live data plane (-tun real).
//   - SOCKS5: CONNECT relayed TCP flows through a SOCKS5 proxy, with
//     optional username/password auth, a dial timeout, and typed
//     terminal-vs-retryable errors.
//
// SOCKS5 composes over a Forward dialer, so the same client code
// relays through an in-process test proxy over netsim (no root, no
// network) and through a real proxy over the wire.
package upstream

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"net/url"
	"strings"
	"time"
)

// Sentinel errors a Conn's TryRead reports. Implementations map their
// substrate's equivalents onto these so the socket layer dispatches on
// one set.
var (
	// ErrWouldBlock reports an empty receive buffer on a non-blocking
	// read (EAGAIN).
	ErrWouldBlock = errors.New("upstream: read would block")
	// ErrEOF reports orderly stream end.
	ErrEOF = errors.New("upstream: EOF")
)

// Conn is the external-socket surface the relay needs: non-blocking
// reads with readiness callbacks (the selector's event source), writes
// that may block briefly on flow control, and the half-close/abort
// controls §2.3's FIN/RST relaying requires.
type Conn interface {
	// TryRead performs a non-blocking read: ErrWouldBlock when no data
	// is available, ErrEOF on orderly stream end.
	TryRead(buf []byte) (int, error)
	// Write sends bytes; it may block briefly on flow control.
	Write(b []byte) (int, error)
	// CloseWrite half-closes the sending direction (relaying app FIN).
	CloseWrite() error
	// Close releases the connection.
	Close() error
	// Reset aborts the connection (relaying app RST).
	Reset() error
	// SetOnReadable installs the readiness callback, replacing any
	// previous one; nil uninstalls. If the connection is already
	// readable the callback fires immediately.
	SetOnReadable(fn func())
}

// Dialer turns a destination into an established external connection.
// local is the relay channel's bound address: substrate dialers that
// have a real address space (netsim) bind it; kernel-socket dialers let
// the OS pick and ignore it.
type Dialer interface {
	Dial(local, dst netip.AddrPort) (Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(local, dst netip.AddrPort) (Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(local, dst netip.AddrPort) (Conn, error) { return f(local, dst) }

// Error is a typed upstream dial failure. Terminal errors are
// configuration or policy failures (bad credentials, proxy refuses the
// command) that retrying the same dial cannot fix; non-terminal errors
// (timeouts, unreachable hosts) are transient and retryable.
type Error struct {
	// Op names the failing phase: "dial", "greeting", "auth",
	// "connect".
	Op string
	// ReplyCode is the SOCKS5 reply code when the proxy refused the
	// CONNECT (zero otherwise).
	ReplyCode byte
	// IsTerminal marks failures retrying cannot fix.
	IsTerminal bool
	Err        error
}

// Error implements error.
func (e *Error) Error() string {
	kind := "retryable"
	if e.IsTerminal {
		kind = "terminal"
	}
	return fmt.Sprintf("upstream %s (%s): %v", e.Op, kind, e.Err)
}

// Unwrap exposes the cause.
func (e *Error) Unwrap() error { return e.Err }

// Terminal reports whether err is a terminal upstream failure —
// one the flow teardown path should not schedule a retry for.
func Terminal(err error) bool {
	var ue *Error
	return errors.As(err, &ue) && ue.IsTerminal
}

// ErrTimeout is the cause inside an *Error when the dial or handshake
// exceeded its deadline.
var ErrTimeout = errors.New("upstream: dial timeout")

// Spec is a parsed -upstream flag value.
type Spec struct {
	// Scheme is "direct" or "socks5".
	Scheme string
	// Addr is the proxy host:port (socks5 only).
	Addr string
	// Username and Password carry socks5 credentials when present.
	Username, Password string
}

// ParseSpec validates an -upstream flag value: "direct" (the default)
// or "socks5://[user:pass@]host:port".
func ParseSpec(s string) (Spec, error) {
	if s == "" || s == "direct" {
		return Spec{Scheme: "direct"}, nil
	}
	if !strings.Contains(s, "://") {
		return Spec{}, fmt.Errorf("upstream: bad spec %q (want direct or socks5://[user:pass@]host:port)", s)
	}
	u, err := url.Parse(s)
	if err != nil {
		return Spec{}, fmt.Errorf("upstream: bad spec %q: %v", s, err)
	}
	if u.Scheme != "socks5" {
		return Spec{}, fmt.Errorf("upstream: unsupported scheme %q (want direct or socks5)", u.Scheme)
	}
	if u.Host == "" || u.Port() == "" {
		return Spec{}, fmt.Errorf("upstream: socks5 spec %q needs host:port", s)
	}
	if u.Path != "" && u.Path != "/" {
		return Spec{}, fmt.Errorf("upstream: socks5 spec %q must not carry a path", s)
	}
	sp := Spec{Scheme: "socks5", Addr: u.Host}
	if u.User != nil {
		sp.Username = u.User.Username()
		sp.Password, _ = u.User.Password()
	}
	return sp, nil
}

// Dialer builds the kernel-socket dialer a parsed spec describes:
// Direct for "direct", a SOCKS5 client over Direct otherwise. A
// socks5 proxy given as a hostname is resolved here, once, at
// wiring time — per-flow resolution would add a DNS lookup to every
// measured connect.
func (s Spec) Dialer(timeout time.Duration) (Dialer, error) {
	if s.Scheme != "socks5" {
		return Direct{Timeout: timeout}, nil
	}
	proxy, err := resolveAddrPort(s.Addr)
	if err != nil {
		return nil, fmt.Errorf("upstream: resolving proxy %q: %w", s.Addr, err)
	}
	return &SOCKS5{
		Proxy:    proxy,
		Username: s.Username,
		Password: s.Password,
		Timeout:  timeout,
		Forward:  Direct{Timeout: timeout},
	}, nil
}

// resolveAddrPort turns "host:port" into a netip.AddrPort, resolving
// hostnames through the system resolver.
func resolveAddrPort(hostport string) (netip.AddrPort, error) {
	if ap, err := netip.ParseAddrPort(hostport); err == nil {
		return ap, nil
	}
	ta, err := net.ResolveTCPAddr("tcp", hostport)
	if err != nil {
		return netip.AddrPort{}, err
	}
	return ta.AddrPort(), nil
}
