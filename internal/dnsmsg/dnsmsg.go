// Package dnsmsg implements the subset of the DNS wire format (RFC 1035)
// MopEye needs: it parses app DNS queries captured from the TUN so that
// the UDP relay can forward them, match responses to queries, and time
// the query/response pair as the DNS RTT (§2.4).
//
// MopEye does not resolve names itself; it relays. The codec must still
// be complete enough to (a) extract the queried name for the
// crowdsourcing records (the dataset reports 35,351 destination domains)
// and (b) build responses in the simulated DNS server substrate.
package dnsmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Record types.
const (
	TypeA     = 1
	TypeNS    = 2
	TypeCNAME = 5
	TypeSOA   = 6
	TypePTR   = 12
	TypeMX    = 15
	TypeTXT   = 16
	TypeAAAA  = 28
)

// Classes.
const ClassIN = 1

// Response codes.
const (
	RCodeOK       = 0
	RCodeFormat   = 1
	RCodeServFail = 2
	RCodeNXDomain = 3
)

// Errors.
var (
	ErrTruncated = errors.New("dnsmsg: truncated message")
	ErrBadName   = errors.New("dnsmsg: malformed name")
	ErrTooLong   = errors.New("dnsmsg: name too long")
	ErrLoop      = errors.New("dnsmsg: compression pointer loop")
)

// Question is one DNS question.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Resource is one resource record. Data holds the raw RDATA; for A/AAAA
// records the Addr helper decodes it.
type Resource struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// Addr decodes an A or AAAA record's address.
func (r *Resource) Addr() (netip.Addr, bool) {
	switch r.Type {
	case TypeA:
		if len(r.Data) == 4 {
			a, _ := netip.AddrFromSlice(r.Data)
			return a, true
		}
	case TypeAAAA:
		if len(r.Data) == 16 {
			a, _ := netip.AddrFromSlice(r.Data)
			return a, true
		}
	}
	return netip.Addr{}, false
}

// CNAME decodes a CNAME record's target name. The stored data must have
// been encoded without compression, as Encode produces.
func (r *Resource) CNAME() (string, bool) {
	if r.Type != TypeCNAME {
		return "", false
	}
	name, _, err := decodeName(r.Data, 0, r.Data)
	if err != nil {
		return "", false
	}
	return name, true
}

// Message is a decoded DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	OpCode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              uint8
	Questions          []Question
	Answers            []Resource
	Authority          []Resource
	Additional         []Resource
}

// QueryName returns the first question's name, or "" when there is none.
// This is what MopEye records as the destination domain.
func (m *Message) QueryName() string {
	if len(m.Questions) == 0 {
		return ""
	}
	return m.Questions[0].Name
}

// NewQuery builds a standard recursive query for name with the given
// type.
func NewQuery(id uint16, name string, qtype uint16) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// NewResponse builds a response mirroring a query.
func NewResponse(q *Message, rcode uint8) *Message {
	return &Message{
		ID:                 q.ID,
		Response:           true,
		RCode:              rcode,
		RecursionDesired:   q.RecursionDesired,
		RecursionAvailable: true,
		Questions:          append([]Question(nil), q.Questions...),
	}
}

// AddAddress appends an A/AAAA answer for name.
func (m *Message) AddAddress(name string, addr netip.Addr, ttl uint32) {
	r := Resource{Name: name, Class: ClassIN, TTL: ttl}
	if addr.Is4() {
		r.Type = TypeA
		b := addr.As4()
		r.Data = b[:]
	} else {
		r.Type = TypeAAAA
		b := addr.As16()
		r.Data = b[:]
	}
	m.Answers = append(m.Answers, r)
}

// AddCNAME appends a CNAME answer pointing name at target.
func (m *Message) AddCNAME(name, target string, ttl uint32) {
	data, err := encodeName(nil, target)
	if err != nil {
		return
	}
	m.Answers = append(m.Answers, Resource{
		Name: name, Type: TypeCNAME, Class: ClassIN, TTL: ttl, Data: data,
	})
}

// Encode serialises the message. Names are encoded without compression,
// which is always legal.
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 12, 64)
	binary.BigEndian.PutUint16(buf[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.OpCode&0x0f) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode & 0x0f)
	binary.BigEndian.PutUint16(buf[2:4], flags)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[8:10], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(buf[10:12], uint16(len(m.Additional)))
	var err error
	for _, q := range m.Questions {
		buf, err = encodeName(buf, q.Name)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, q.Type)
		buf = binary.BigEndian.AppendUint16(buf, q.Class)
	}
	for _, sec := range [][]Resource{m.Answers, m.Authority, m.Additional} {
		for _, r := range sec {
			buf, err = encodeName(buf, r.Name)
			if err != nil {
				return nil, err
			}
			buf = binary.BigEndian.AppendUint16(buf, r.Type)
			buf = binary.BigEndian.AppendUint16(buf, r.Class)
			buf = binary.BigEndian.AppendUint32(buf, r.TTL)
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Data)))
			buf = append(buf, r.Data...)
		}
	}
	return buf, nil
}

// Decode parses a DNS message, supporting name compression.
func Decode(raw []byte) (*Message, error) {
	if len(raw) < 12 {
		return nil, ErrTruncated
	}
	m := &Message{ID: binary.BigEndian.Uint16(raw[0:2])}
	flags := binary.BigEndian.Uint16(raw[2:4])
	m.Response = flags&(1<<15) != 0
	m.OpCode = uint8(flags >> 11 & 0x0f)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = uint8(flags & 0x0f)
	qd := int(binary.BigEndian.Uint16(raw[4:6]))
	an := int(binary.BigEndian.Uint16(raw[6:8]))
	ns := int(binary.BigEndian.Uint16(raw[8:10]))
	ar := int(binary.BigEndian.Uint16(raw[10:12]))
	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := decodeName(raw, off, raw)
		if err != nil {
			return nil, err
		}
		off = n
		if off+4 > len(raw) {
			return nil, ErrTruncated
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(raw[off : off+2]),
			Class: binary.BigEndian.Uint16(raw[off+2 : off+4]),
		})
		off += 4
	}
	var err error
	m.Answers, off, err = decodeResources(raw, off, an)
	if err != nil {
		return nil, err
	}
	m.Authority, off, err = decodeResources(raw, off, ns)
	if err != nil {
		return nil, err
	}
	m.Additional, _, err = decodeResources(raw, off, ar)
	if err != nil {
		return nil, err
	}
	return m, nil
}

func decodeResources(raw []byte, off, count int) ([]Resource, int, error) {
	var out []Resource
	for i := 0; i < count; i++ {
		name, n, err := decodeName(raw, off, raw)
		if err != nil {
			return nil, 0, err
		}
		off = n
		if off+10 > len(raw) {
			return nil, 0, ErrTruncated
		}
		r := Resource{
			Name:  name,
			Type:  binary.BigEndian.Uint16(raw[off : off+2]),
			Class: binary.BigEndian.Uint16(raw[off+2 : off+4]),
			TTL:   binary.BigEndian.Uint32(raw[off+4 : off+8]),
		}
		rdlen := int(binary.BigEndian.Uint16(raw[off+8 : off+10]))
		off += 10
		if off+rdlen > len(raw) {
			return nil, 0, ErrTruncated
		}
		r.Data = append([]byte(nil), raw[off:off+rdlen]...)
		off += rdlen
		out = append(out, r)
	}
	return out, off, nil
}

// encodeName appends the uncompressed wire form of name to buf.
func encodeName(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(buf, 0), nil
	}
	if len(name) > 253 {
		return nil, ErrTooLong
	}
	for _, label := range strings.Split(name, ".") {
		if label == "" || len(label) > 63 {
			return nil, ErrBadName
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// decodeName reads a possibly compressed name starting at off within
// whole; raw is the slice being walked (equal to whole except in
// recursion). It returns the dotted name and the offset just past the
// name in the original (non-pointer) stream.
func decodeName(raw []byte, off int, whole []byte) (string, int, error) {
	var labels []string
	jumps := 0
	end := -1 // offset after the name in the original stream
	for {
		if off >= len(raw) {
			return "", 0, ErrTruncated
		}
		b := raw[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			return strings.Join(labels, "."), end, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(raw) {
				return "", 0, ErrTruncated
			}
			if end < 0 {
				end = off + 2
			}
			ptr := int(binary.BigEndian.Uint16(raw[off:off+2]) & 0x3fff)
			if ptr >= len(whole) {
				return "", 0, ErrBadName
			}
			jumps++
			if jumps > 32 {
				return "", 0, ErrLoop
			}
			raw = whole
			off = ptr
		case b&0xc0 != 0:
			return "", 0, ErrBadName
		default:
			l := int(b)
			if off+1+l > len(raw) {
				return "", 0, ErrTruncated
			}
			labels = append(labels, string(raw[off+1:off+1+l]))
			if len(labels) > 128 {
				return "", 0, ErrTooLong
			}
			off += 1 + l
		}
	}
}

// TypeString names a record type for logs and reports.
func TypeString(t uint16) string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", t)
	}
}
