package dnsmsg

import (
	"errors"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "graph.facebook.com", TypeA)
	raw, err := q.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	m, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.ID != 0x1234 || m.Response || !m.RecursionDesired {
		t.Errorf("header: %+v", m)
	}
	if m.QueryName() != "graph.facebook.com" {
		t.Errorf("name: %q", m.QueryName())
	}
	if m.Questions[0].Type != TypeA || m.Questions[0].Class != ClassIN {
		t.Errorf("question: %+v", m.Questions[0])
	}
}

func TestResponseWithAddress(t *testing.T) {
	q := NewQuery(7, "example.com", TypeA)
	r := NewResponse(q, RCodeOK)
	addr := netip.MustParseAddr("93.184.216.34")
	r.AddAddress("example.com", addr, 300)
	raw, err := r.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	m, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !m.Response || m.ID != 7 || m.RCode != RCodeOK {
		t.Errorf("header: %+v", m)
	}
	if len(m.Answers) != 1 {
		t.Fatalf("answers: %d", len(m.Answers))
	}
	got, ok := m.Answers[0].Addr()
	if !ok || got != addr {
		t.Errorf("addr: %v %v", got, ok)
	}
	if m.Answers[0].TTL != 300 {
		t.Errorf("ttl: %d", m.Answers[0].TTL)
	}
}

func TestAAAARecord(t *testing.T) {
	q := NewQuery(9, "v6.example.com", TypeAAAA)
	r := NewResponse(q, RCodeOK)
	addr := netip.MustParseAddr("2606:2800:220:1:248:1893:25c8:1946")
	r.AddAddress("v6.example.com", addr, 60)
	raw, _ := r.Encode()
	m, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := m.Answers[0].Addr()
	if !ok || got != addr {
		t.Errorf("got %v", got)
	}
	if m.Answers[0].Type != TypeAAAA {
		t.Errorf("type %d", m.Answers[0].Type)
	}
}

func TestCNAMERecord(t *testing.T) {
	q := NewQuery(9, "www.example.com", TypeA)
	r := NewResponse(q, RCodeOK)
	r.AddCNAME("www.example.com", "edge.cdn.example.net", 60)
	raw, _ := r.Encode()
	m, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	target, ok := m.Answers[0].CNAME()
	if !ok || target != "edge.cdn.example.net" {
		t.Errorf("cname: %q %v", target, ok)
	}
}

func TestNXDomainResponse(t *testing.T) {
	q := NewQuery(3, "nope.invalid", TypeA)
	r := NewResponse(q, RCodeNXDomain)
	raw, _ := r.Encode()
	m, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.RCode != RCodeNXDomain || len(m.Answers) != 0 {
		t.Errorf("%+v", m)
	}
}

func TestNameCompressionPointer(t *testing.T) {
	// Hand-build a response with a compression pointer: question name
	// at offset 12, answer name is a pointer to it.
	q := NewQuery(0xbeef, "a.bc", TypeA)
	raw, _ := q.Encode()
	raw[7] = 1 // ANCOUNT = 1
	ans := []byte{
		0xc0, 0x0c, // pointer to offset 12
		0, 1, // TYPE A
		0, 1, // CLASS IN
		0, 0, 0, 60, // TTL
		0, 4, // RDLENGTH
		1, 2, 3, 4,
	}
	raw = append(raw, ans...)
	m, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.Answers[0].Name != "a.bc" {
		t.Errorf("compressed name: %q", m.Answers[0].Name)
	}
	addr, _ := m.Answers[0].Addr()
	if addr != netip.MustParseAddr("1.2.3.4") {
		t.Errorf("addr: %v", addr)
	}
}

func TestCompressionLoopRejected(t *testing.T) {
	q := NewQuery(1, "x.y", TypeA)
	raw, _ := q.Encode()
	raw[7] = 1
	// Answer name is a pointer to itself.
	self := len(raw)
	ans := []byte{0xc0, byte(self), 0, 1, 0, 1, 0, 0, 0, 0, 0, 0}
	raw = append(raw, ans...)
	if _, err := Decode(raw); !errors.Is(err, ErrLoop) && !errors.Is(err, ErrBadName) {
		t.Errorf("pointer loop: got %v", err)
	}
}

func TestBadNames(t *testing.T) {
	cases := []string{
		strings.Repeat("a", 64) + ".com", // label > 63
		strings.Repeat("abcdefgh.", 32),  // name > 253
		"double..dot",
	}
	for _, name := range cases {
		m := NewQuery(1, name, TypeA)
		if _, err := m.Encode(); err == nil {
			t.Errorf("name %q encoded without error", name)
		}
	}
}

func TestRootName(t *testing.T) {
	m := NewQuery(1, ".", TypeNS)
	raw, err := m.Encode()
	if err != nil {
		t.Fatalf("root name: %v", err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.QueryName() != "" {
		t.Errorf("root decodes to %q", got.QueryName())
	}
}

func TestTruncatedMessages(t *testing.T) {
	q := NewQuery(5, "test.example.com", TypeA)
	raw, _ := q.Encode()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := Decode(raw[:cut]); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded", cut, len(raw))
		}
	}
}

func TestQuickNameRoundTrip(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyz0123456789-"
	rng := rand.New(rand.NewSource(11))
	f := func(nLabels uint8, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		labels := int(nLabels%5) + 1
		parts := make([]string, labels)
		for i := range parts {
			l := r.Intn(20) + 1
			b := make([]byte, l)
			for j := range b {
				b[j] = letters[r.Intn(len(letters))]
			}
			parts[i] = string(b)
		}
		name := strings.Join(parts, ".")
		q := NewQuery(uint16(r.Uint32()), name, TypeA)
		raw, err := q.Encode()
		if err != nil {
			return true // over-length names are allowed to fail
		}
		m, err := Decode(raw)
		return err == nil && m.QueryName() == name
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		raw := make([]byte, rng.Intn(100))
		rng.Read(raw)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %x: %v", raw, r)
				}
			}()
			_, _ = Decode(raw)
		}()
	}
}

func TestTypeString(t *testing.T) {
	if TypeString(TypeA) != "A" || TypeString(TypeAAAA) != "AAAA" {
		t.Error("known types misnamed")
	}
	if TypeString(999) != "TYPE999" {
		t.Errorf("unknown type: %q", TypeString(999))
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	m := &Message{
		ID: 42, Response: true, OpCode: 2, Authoritative: true,
		Truncated: true, RecursionDesired: true, RecursionAvailable: true,
		RCode: RCodeServFail,
	}
	raw, err := m.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.OpCode != 2 || !got.Authoritative || !got.Truncated ||
		!got.RecursionDesired || !got.RecursionAvailable || got.RCode != RCodeServFail {
		t.Errorf("flags lost: %+v", got)
	}
}
