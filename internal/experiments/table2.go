package experiments

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"repro/internal/baselines/mobiperf"
	"repro/internal/baselines/sniffer"
	"repro/internal/clock"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/sockets"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Table2Row is one run of the accuracy experiment for one destination:
// the mean RTT from tcpdump alongside MopEye, then from tcpdump
// alongside MobiPerf, and the deviations (Table 2).
type Table2Row struct {
	Name          string
	Dst           netip.AddrPort
	TcpdumpMopEye float64 // ms, ground truth during the MopEye run
	MopEye        float64 // ms, rounded to ms as the paper does
	DeltaMopEye   float64
	TcpdumpMobi   float64 // ms, ground truth during the MobiPerf run
	MobiPerf      float64
	DeltaMobiPerf float64
}

// Table2Destination describes one probe target.
type Table2Destination struct {
	Name  string
	Addr  netip.AddrPort
	Delay time.Duration // one-way
}

// Table2Options configures the accuracy experiment.
type Table2Options struct {
	Destinations []Table2Destination
	RunsPerDest  int
	ProbesPerRun int
	Seed         int64
}

// DefaultTable2Options uses the paper's three destinations at their
// reported RTT scales (Google ~4 ms, Facebook ~37 ms, Dropbox ~300 ms),
// three runs each, ten probes per run.
func DefaultTable2Options() Table2Options {
	return Table2Options{
		Destinations: []Table2Destination{
			{Name: "Google", Addr: netip.MustParseAddrPort("216.58.221.132:80"), Delay: 2200 * time.Microsecond},
			{Name: "Facebook", Addr: netip.MustParseAddrPort("31.13.79.251:80"), Delay: 18300 * time.Microsecond},
			{Name: "Dropbox", Addr: netip.MustParseAddrPort("108.160.166.126:80"), Delay: 145 * time.Millisecond},
		},
		RunsPerDest:  3,
		ProbesPerRun: 10,
		Seed:         7,
	}
}

// RunTable2 reproduces the accuracy comparison. Each run uses a fresh
// network whose one-way delay is the destination's nominal value with a
// small per-run drift, as the paper's three rows per destination show.
func RunTable2(o Table2Options) ([]Table2Row, error) {
	var rows []Table2Row
	for di, dst := range o.Destinations {
		for run := 0; run < o.RunsPerDest; run++ {
			seed := o.Seed + int64(di*100+run)
			// Per-run drift: runs in the paper differ by up to ~80%
			// for Dropbox and a few percent for Google.
			drift := 1 + 0.12*float64(run)
			delay := time.Duration(float64(dst.Delay) * drift)

			mopTruth, mopMean, err := runMopEyeAccuracy(dst, delay, o.ProbesPerRun, seed)
			if err != nil {
				return nil, err
			}
			mobiTruth, mobiMean, err := runMobiPerfAccuracy(dst, delay, o.ProbesPerRun, seed+50)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{
				Name:          dst.Name,
				Dst:           dst.Addr,
				TcpdumpMopEye: mopTruth,
				MopEye:        mopMean,
				DeltaMopEye:   math.Abs(mopMean - mopTruth),
				TcpdumpMobi:   mobiTruth,
				MobiPerf:      mobiMean,
				DeltaMobiPerf: math.Abs(mobiMean - mobiTruth),
			})
		}
	}
	return rows, nil
}

// runMopEyeAccuracy measures one destination with the real engine,
// returning (tcpdump mean, MopEye mean) in ms. MopEye's values are
// rounded to ms as the paper's footnote describes.
func runMopEyeAccuracy(dst Table2Destination, delay time.Duration, probes int, seed int64) (truth, mean float64, err error) {
	bed, err := testbed.New(testbed.Options{
		Link: netsim.LinkParams{Delay: delay, Jitter: delay / 50},
		Servers: []netsim.ServerSpec{{
			Domain:  "",
			Addr:    dst.Addr,
			Link:    netsim.LinkParams{Delay: delay, Jitter: delay / 50},
			Handler: netsim.HTTPPingHandler(),
		}},
		SocketCosts: sockets.AndroidCosts(),
		Sniff:       true,
		Seed:        seed,
	})
	if err != nil {
		return 0, 0, err
	}
	defer bed.Close()
	bed.InstallApp(uidApp, "com.example.probe")
	for i := 0; i < probes; i++ {
		conn, err := bed.Phone.Connect(uidApp, dst.Addr, 10*time.Second)
		if err != nil {
			return 0, 0, fmt.Errorf("probe %d: %w", i, err)
		}
		conn.Close()
	}
	// Wait for the asynchronous measurement records.
	deadline := time.Now().Add(5 * time.Second)
	for bed.Store.Len() < probes && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	recs := bed.Store.Kind(measure.KindTCP)
	if len(recs) < probes {
		return 0, 0, fmt.Errorf("only %d/%d measurements", len(recs), probes)
	}
	var ms []float64
	for _, r := range recs {
		// The paper rounds MopEye's µs-level readings to ms.
		ms = append(ms, math.Round(r.RTT.Seconds()*1000*2)/2)
	}
	truthSamples := bed.Sniffer.RTTsTo(dst.Addr)
	return stats.Mean(truthSamples), stats.Mean(ms), nil
}

// runMobiPerfAccuracy measures one destination with the MobiPerf
// baseline over an identical link, with its own tcpdump reference.
func runMobiPerfAccuracy(dst Table2Destination, delay time.Duration, probes int, seed int64) (truth, mean float64, err error) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: delay, Jitter: delay / 50}, seed)
	defer net.Close()
	net.HandleTCP(dst.Addr, netsim.HTTPPingHandler())
	snf := sniffer.New(net)
	prov := sockets.NewProvider(net, clk, testbed.PhoneWANAddr, sockets.AndroidCosts(), seed+1)
	pinger := mobiperf.New(prov, clk, mobiperf.V340(), seed+2)
	samples, err := pinger.PingN(dst.Addr, probes)
	if err != nil {
		return 0, 0, err
	}
	return stats.Mean(snf.RTTsTo(dst.Addr)), stats.Mean(samples), nil
}

// RenderTable2 renders rows in the paper's layout.
func RenderTable2(rows []Table2Row) string {
	header := []string{"Destination", "tcpdump", "MopEye", "δ", "tcpdump", "MobiPerf", "δ"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%s (%s)", r.Name, r.Dst.Addr()),
			fmt.Sprintf("%.2f", r.TcpdumpMopEye),
			fmt.Sprintf("%.1f", r.MopEye),
			fmt.Sprintf("%.2f", r.DeltaMopEye),
			fmt.Sprintf("%.2f", r.TcpdumpMobi),
			fmt.Sprintf("%.1f", r.MobiPerf),
			fmt.Sprintf("%.2f", r.DeltaMobiPerf),
		})
	}
	return renderTable(header, cells)
}
