package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sockets"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/tun"
)

// LatencyOverheadResult reproduces the first measurement of §4.1.2: the
// additional delay MopEye introduces to other apps' connection
// establishment and data transmission. The paper reports, with 95%
// confidence intervals, 3.26–4.27 ms per SYN/SYN-ACK round and
// 1.22–2.18 ms per data round on a Nexus 4.
type LatencyOverheadResult struct {
	// Connect statistics, milliseconds.
	ConnectDirectMean, ConnectDirectCI float64
	ConnectRelayMean, ConnectRelayCI   float64
	// Data round-trip statistics, milliseconds.
	DataDirectMean, DataDirectCI float64
	DataRelayMean, DataRelayCI   float64
}

// ConnectOverheadMS is the relay's added connection-establishment
// delay.
func (r *LatencyOverheadResult) ConnectOverheadMS() float64 {
	return r.ConnectRelayMean - r.ConnectDirectMean
}

// DataOverheadMS is the relay's added data round-trip delay.
func (r *LatencyOverheadResult) DataOverheadMS() float64 {
	return r.DataRelayMean - r.DataDirectMean
}

// LatencyOverheadOptions configures the experiment.
type LatencyOverheadOptions struct {
	// RTT is the path round-trip time to the test server.
	RTT time.Duration
	// Rounds is the number of probes per condition.
	Rounds int
	Seed   int64
}

// DefaultLatencyOverheadOptions mirrors the paper's setup: a nearby
// server, repeated connect() and data exchanges.
func DefaultLatencyOverheadOptions() LatencyOverheadOptions {
	return LatencyOverheadOptions{RTT: 20 * time.Millisecond, Rounds: 30, Seed: 17}
}

var overheadAddr = netip.MustParseAddrPort("198.51.100.99:443")

// RunLatencyOverhead measures connection and data-round latency with
// and without the relay on identical links.
func RunLatencyOverhead(o LatencyOverheadOptions) (*LatencyOverheadResult, error) {
	res := &LatencyOverheadResult{}
	link := netsim.LinkParams{Delay: o.RTT / 2}

	// Direct: plain sockets on the same link, the "without MopEye"
	// condition.
	{
		clk := clock.NewReal()
		net := netsim.New(clk, link, o.Seed)
		net.HandleTCP(overheadAddr, netsim.EchoHandler())
		var connectMS, dataMS []float64
		buf := make([]byte, 64)
		for i := 0; i < o.Rounds; i++ {
			t0 := clk.Nanos()
			c, err := net.Dial(netip.AddrPortFrom(testbed.PhoneWANAddr, uint16(42000+i)), overheadAddr)
			if err != nil {
				net.Close()
				return nil, fmt.Errorf("direct dial: %w", err)
			}
			connectMS = append(connectMS, float64(clk.Nanos()-t0)/1e6)
			t0 = clk.Nanos()
			if _, err := c.Write([]byte("probe-data-round")); err != nil {
				net.Close()
				return nil, err
			}
			got := 0
			for got < 16 {
				n, err := c.Read(buf[got:])
				got += n
				if err != nil {
					net.Close()
					return nil, fmt.Errorf("direct read: %w", err)
				}
			}
			dataMS = append(dataMS, float64(clk.Nanos()-t0)/1e6)
			c.Close()
		}
		net.Close()
		res.ConnectDirectMean, res.ConnectDirectCI = stats.MeanCI95(connectMS)
		res.DataDirectMean, res.DataDirectCI = stats.MeanCI95(dataMS)
	}

	// Through MopEye: the same probes issued by an app behind the
	// relay, with the Android cost models on — the measured overhead is
	// precisely the platform work the relay adds (tunnel writes,
	// selector dispatch, state-machine processing).
	{
		bed, err := testbed.New(testbed.Options{
			Link: link,
			Servers: []netsim.ServerSpec{{
				Domain: "overhead.example", Addr: overheadAddr,
				Link: link, Handler: netsim.EchoHandler(),
			}},
			SocketCosts:  sockets.AndroidCosts(),
			TunWriteCost: tun.AndroidWriteCost(),
			Seed:         o.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		defer bed.Close()
		bed.InstallApp(uidApp, "com.example.probe")
		var connectMS, dataMS []float64
		buf := make([]byte, 64)
		for i := 0; i < o.Rounds; i++ {
			conn, err := bed.Phone.Connect(uidApp, overheadAddr, 10*time.Second)
			if err != nil {
				return nil, fmt.Errorf("relay dial: %w", err)
			}
			connectMS = append(connectMS, conn.ConnectElapsed.Seconds()*1000)
			t0 := bed.Clk.Nanos()
			if _, err := conn.Write([]byte("probe-data-round")); err != nil {
				return nil, err
			}
			if err := conn.ReadFull(buf[:16]); err != nil {
				return nil, fmt.Errorf("relay read: %w", err)
			}
			dataMS = append(dataMS, float64(bed.Clk.Nanos()-t0)/1e6)
			conn.Close()
		}
		res.ConnectRelayMean, res.ConnectRelayCI = stats.MeanCI95(connectMS)
		res.DataRelayMean, res.DataRelayCI = stats.MeanCI95(dataMS)
	}
	return res, nil
}

// String renders the §4.1.2 latency-overhead report.
func (r *LatencyOverheadResult) String() string {
	return fmt.Sprintf(
		"Latency overhead of the relay (§4.1.2, mean ±95%% CI, ms):\n"+
			"  connect: direct %.2f±%.2f, via MopEye %.2f±%.2f  (overhead %.2f; paper 3.26–4.27)\n"+
			"  data:    direct %.2f±%.2f, via MopEye %.2f±%.2f  (overhead %.2f; paper 1.22–2.18)\n",
		r.ConnectDirectMean, r.ConnectDirectCI, r.ConnectRelayMean, r.ConnectRelayCI, r.ConnectOverheadMS(),
		r.DataDirectMean, r.DataDirectCI, r.DataRelayMean, r.DataRelayCI, r.DataOverheadMS())
}
