package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/baselines/haystack"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/resource"
	"repro/internal/testbed"
)

// Table4Result reports the resource overhead of relaying a video
// stream: CPU, battery (extrapolated to the paper's 58-minute session),
// and memory, for MopEye and the Haystack-style baseline (Table 4).
type Table4Result struct {
	MopEye   resource.Usage
	Haystack resource.Usage
	// Extrapolated battery drain over the paper's session length.
	MopEyeBattery58m   float64
	HaystackBattery58m float64
}

// Table4Options configures the video run.
type Table4Options struct {
	// StreamMbps is the video bitrate (a 1080p stream runs ~5 Mbps).
	StreamMbps float64
	// Duration is the measured slice of the session; resource rates are
	// extrapolated to the paper's 58 minutes.
	Duration time.Duration
	Seed     int64
}

// DefaultTable4Options uses a 5 Mbps stream observed for 3 seconds.
func DefaultTable4Options() Table4Options {
	return Table4Options{StreamMbps: 5, Duration: 3 * time.Second, Seed: 9}
}

var videoAddr = netip.MustParseAddrPort("142.250.4.91:443")

// RunTable4 plays the video through each relay and reports metered
// resource usage.
func RunTable4(o Table4Options) (*Table4Result, error) {
	run := func(cfg engine.Config, baseMB float64, seed int64) (resource.Usage, error) {
		link := netsim.LinkParams{
			Delay: 15 * time.Millisecond,
			Down:  netsim.Mbps(o.StreamMbps),
			Up:    netsim.Mbps(o.StreamMbps),
		}
		bed, err := testbed.New(testbed.Options{
			Engine:    cfg,
			EngineSet: true,
			Link:      link,
			Servers: []netsim.ServerSpec{{
				Domain: "video.example", Addr: videoAddr,
				Link: link, Handler: netsim.SourceHandler(1 << 40),
			}},
			MeterBaseMB: baseMB,
			Seed:        seed,
		})
		if err != nil {
			return resource.Usage{}, err
		}
		defer bed.Close()
		bed.InstallApp(uidVideo, "com.google.android.youtube")
		conn, err := bed.Phone.Connect(uidVideo, videoAddr, 10*time.Second)
		if err != nil {
			return resource.Usage{}, fmt.Errorf("video dial: %w", err)
		}
		_ = drainDownload(conn, o.Duration)
		conn.Close()
		return bed.Meter.Report(o.Duration), nil
	}

	mop, err := run(engine.Default(), 12, o.Seed)
	if err != nil {
		return nil, err
	}
	hay, err := run(haystack.Config(), haystack.BaseMemoryMB, o.Seed+10)
	if err != nil {
		return nil, err
	}
	const session = 58 * time.Minute
	return &Table4Result{
		MopEye:             mop,
		Haystack:           hay,
		MopEyeBattery58m:   mop.CPUPercent / 100 * session.Hours() * 20,
		HaystackBattery58m: hay.CPUPercent / 100 * session.Hours() * 20,
	}, nil
}

// String renders the result in the layout of Table 4.
func (r *Table4Result) String() string {
	header := []string{"Resource", "MopEye", "Haystack"}
	rows := [][]string{
		{"CPU", fmt.Sprintf("%.2f%%", r.MopEye.CPUPercent), fmt.Sprintf("%.2f%%", r.Haystack.CPUPercent)},
		{"Battery (58min)", fmt.Sprintf("%.1f%%", r.MopEyeBattery58m), fmt.Sprintf("%.1f%%", r.HaystackBattery58m)},
		{"Memory", fmt.Sprintf("%.0fMB", r.MopEye.MemoryMB), fmt.Sprintf("%.0fMB", r.Haystack.MemoryMB)},
	}
	return renderTable(header, rows)
}
