// Package experiments drives the paper's evaluation (§4.1): each
// exported Run* function reproduces one table or figure of the
// accuracy/overhead section, returning structured results plus a
// paper-style text rendering. The crowdsourcing analyses (§4.2) live in
// package crowd.
package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/phonestack"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Workload identifiers used in reports.
const (
	uidBrowser = 10050
	uidApp     = 10051
	uidVideo   = 10052
)

// browse simulates web browsing through the bed: pages consisting of a
// DNS lookup followed by a burst of concurrent connections, each doing
// a small request/response exchange. This is the workload of §3.3's
// lazy-mapping evaluation (481 socket-connect threads in the paper's
// run) and of Table 1's write-scheme measurements.
func browse(bed *testbed.Bed, pages, connsPerPage int, domain string, server netip.AddrPort) (connects int, failures int) {
	var mu sync.Mutex
	for p := 0; p < pages; p++ {
		_, _ = bed.Phone.Resolve(uidBrowser, testbed.DNSAddr, domain, 2*time.Second)
		var wg sync.WaitGroup
		for c := 0; c < connsPerPage; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn, err := bed.Phone.Connect(uidBrowser, server, 5*time.Second)
				if err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					return
				}
				defer conn.Close()
				// A small HTTP-ish exchange: 4 KiB response.
				if _, err := conn.Write([]byte{0, 0, 0x10, 0}); err != nil {
					return
				}
				buf := make([]byte, 4096)
				_ = conn.ReadFull(buf)
			}()
		}
		wg.Wait()
	}
	return pages * connsPerPage, failures
}

// renderTable joins aligned columns for the text reports.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// histColumn renders a DelayHistogram as Table 1 row values.
func histColumn(h stats.DelayHistogram) []string {
	out := []string{fmt.Sprintf("%d", h.Total)}
	for _, c := range h.Counts {
		out = append(out, fmt.Sprintf("%d", c))
	}
	return out
}

// drainDownload reads from a relayed connection for the duration and
// returns the bytes received.
func drainDownload(conn *phonestack.Conn, d time.Duration) int64 {
	deadline := time.Now().Add(d)
	buf := make([]byte, 64*1024)
	var total int64
	for time.Now().Before(deadline) {
		n, err := conn.Read(buf)
		total += int64(n)
		if err != nil {
			break
		}
	}
	return total
}

// pushUpload writes into a relayed connection for the duration and
// returns the bytes accepted (window-clocked by the relay's ACKs).
func pushUpload(conn *phonestack.Conn, d time.Duration) int64 {
	deadline := time.Now().Add(d)
	chunk := make([]byte, 16*1024)
	var total int64
	for time.Now().Before(deadline) {
		n, err := conn.Write(chunk)
		total += int64(n)
		if err != nil {
			break
		}
	}
	return total
}

// mbps converts a byte count over a duration to megabits per second.
func mbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / d.Seconds()
}

// netsimDrain reads from a raw netsim connection for the duration.
func netsimDrain(c *netsim.Conn, d time.Duration) int64 {
	deadline := time.Now().Add(d)
	buf := make([]byte, 64*1024)
	var total int64
	for time.Now().Before(deadline) {
		n, err := c.Read(buf)
		total += int64(n)
		if err != nil {
			break
		}
	}
	return total
}

// netsimPush writes into a raw netsim connection for the duration.
func netsimPush(c *netsim.Conn, d time.Duration) int64 {
	deadline := time.Now().Add(d)
	chunk := make([]byte, 16*1024)
	var total int64
	for time.Now().Before(deadline) {
		n, err := c.Write(chunk)
		total += int64(n)
		if err != nil {
			break
		}
	}
	return total
}
