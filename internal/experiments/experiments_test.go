package experiments

import (
	"testing"
	"time"
)

// These tests run the paper's evaluation experiments at reduced scale
// and assert the *shape* of each result — who wins and by roughly what
// factor — which is the reproduction criterion for Tables 1–4 and
// Figure 5.

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	o := DefaultTable1Options()
	o.Pages = 8
	res, err := RunTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.DirectWrite.Total == 0 || res.QueueWrite.Total == 0 ||
		res.OldPut.Total == 0 || res.NewPut.Total == 0 {
		t.Fatal("empty histogram")
	}
	// newPut must crush the >1ms enqueue tail relative to oldPut
	// (paper: 5.69% -> 0.075%).
	if res.NewPut.LargeFraction() >= res.OldPut.LargeFraction() {
		t.Errorf("newPut large fraction %.4f not below oldPut %.4f",
			res.NewPut.LargeFraction(), res.OldPut.LargeFraction())
	}
	// Enqueue (newPut) must beat direct tunnel writes.
	if res.NewPut.LargeFraction() >= res.DirectWrite.LargeFraction() {
		t.Errorf("newPut %.4f not below directWrite %.4f",
			res.NewPut.LargeFraction(), res.DirectWrite.LargeFraction())
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	o := DefaultTable2Options()
	o.RunsPerDest = 1
	o.ProbesPerRun = 8
	rows, err := RunTable2(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderTable2(rows))
	for _, r := range rows {
		// MopEye within ~1.5 ms of tcpdump (paper: at most 1 ms).
		if r.DeltaMopEye > 1.5 {
			t.Errorf("%s: MopEye deviation %.2f ms too large", r.Name, r.DeltaMopEye)
		}
		// MobiPerf biased upward by 10+ ms (paper: 12–79 ms).
		if r.DeltaMobiPerf < 8 {
			t.Errorf("%s: MobiPerf deviation %.2f ms implausibly small", r.Name, r.DeltaMobiPerf)
		}
		if r.MobiPerf < r.TcpdumpMobi {
			t.Errorf("%s: MobiPerf underestimated (%.1f < %.1f)", r.Name, r.MobiPerf, r.TcpdumpMobi)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	o := DefaultTable3Options()
	o.Duration = time.Second
	res, err := RunTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	// Baseline near the line rate.
	if res.BaselineDown < 15 || res.BaselineUp < 15 {
		t.Errorf("baseline %.1f/%.1f Mbps, link is 25", res.BaselineDown, res.BaselineUp)
	}
	// MopEye within ~15%% of baseline both ways (paper: <1 Mbps of 25).
	if res.MopEyeDown < res.BaselineDown*0.8 {
		t.Errorf("MopEye download %.1f below 80%% of baseline %.1f", res.MopEyeDown, res.BaselineDown)
	}
	if res.MopEyeUp < res.BaselineUp*0.8 {
		t.Errorf("MopEye upload %.1f below 80%% of baseline %.1f", res.MopEyeUp, res.BaselineUp)
	}
	// Haystack collapses, worst on upload (paper: 6.79 vs 25.97).
	if res.HaystackUp > res.MopEyeUp*0.8 {
		t.Errorf("Haystack upload %.1f not clearly below MopEye %.1f", res.HaystackUp, res.MopEyeUp)
	}
	if res.HaystackDown > res.MopEyeDown {
		t.Errorf("Haystack download %.1f above MopEye %.1f", res.HaystackDown, res.MopEyeDown)
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	o := DefaultTable4Options()
	o.Duration = 1500 * time.Millisecond
	res, err := RunTable4(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	// Haystack burns clearly more CPU (paper: 9.56% vs 2.74%).
	if res.Haystack.CPUPercent < 1.5*res.MopEye.CPUPercent {
		t.Errorf("Haystack CPU %.2f%% not well above MopEye %.2f%%",
			res.Haystack.CPUPercent, res.MopEye.CPUPercent)
	}
	// MopEye CPU stays modest (paper: 2.74%).
	if res.MopEye.CPUPercent > 6 {
		t.Errorf("MopEye CPU %.2f%% too high", res.MopEye.CPUPercent)
	}
	// Memory: 12 MB vs 148 MB scale.
	if res.Haystack.MemoryMB < 5*res.MopEye.MemoryMB {
		t.Errorf("memory ratio off: %.0f vs %.0f", res.MopEye.MemoryMB, res.Haystack.MemoryMB)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	o := DefaultFig5Options()
	o.Pages = 10
	res, err := RunFig5(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	// Figure 5(a): most eager mappings cost >5 ms.
	if f := 1 - res.EagerCDF.At(5); f < 0.5 {
		t.Errorf("eager >5ms fraction %.2f, paper reports >0.75", f)
	}
	// Figure 5(b): lazy mapping avoids a large share of parses
	// (paper: 67.8%).
	if rate := res.Lazy.MitigationRate(); rate < 0.4 {
		t.Errorf("mitigation rate %.2f, paper reports 0.678", rate)
	}
	// The lazy CDF must sit far left of the eager CDF at 1 ms.
	if res.LazyCDF.At(1) < res.EagerCDF.At(1) {
		t.Error("lazy mapping CDF not left of eager CDF")
	}
	// Correct attribution throughout: no misses.
	if res.Lazy.Misses > res.Lazy.Resolutions/10 {
		t.Errorf("%d/%d lazy resolutions missed", res.Lazy.Misses, res.Lazy.Resolutions)
	}
}

func TestLatencyOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment")
	}
	o := DefaultLatencyOverheadOptions()
	o.Rounds = 15
	res, err := RunLatencyOverhead(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	// The relay adds a small positive delay to connection establishment
	// (paper: 3.26–4.27 ms) and to data rounds (1.22–2.18 ms) — small
	// against the 76 ms median LTE RTT.
	if d := res.ConnectOverheadMS(); d < 0 || d > 15 {
		t.Errorf("connect overhead %.2f ms outside plausible band", d)
	}
	if d := res.DataOverheadMS(); d < -1 || d > 15 {
		t.Errorf("data overhead %.2f ms outside plausible band", d)
	}
	// Sanity: both conditions track the 20 ms path RTT.
	if res.ConnectDirectMean < 19 || res.ConnectRelayMean < 19 {
		t.Errorf("means below path RTT: %.2f / %.2f", res.ConnectDirectMean, res.ConnectRelayMean)
	}
}
