package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/tun"
)

// Table1Result holds the four delay histograms of Table 1: tunnel-write
// delay under directWrite and queueWrite, and enqueue delay under the
// oldPut and newPut algorithms (§3.5.1).
type Table1Result struct {
	DirectWrite stats.DelayHistogram
	QueueWrite  stats.DelayHistogram
	OldPut      stats.DelayHistogram
	NewPut      stats.DelayHistogram
}

// Table1Options sizes the workload.
type Table1Options struct {
	Pages        int
	ConnsPerPage int
	Seed         int64
	// Workers selects the engine core: 0/1 is the paper-faithful
	// MainWorker every recorded ablation uses; N > 1 runs the browsing
	// workload through the sharded batched pipeline. The deterministic
	// Table 1 columns (the Total row — packet counts, not delays) must
	// not change with the worker count; the golden determinism test
	// pins that, guarding every dispatch/queue refactor.
	Workers int
	// SharedDispatcher runs the multi-worker pipeline on the legacy
	// shared-selector + dispatcher topology instead of per-worker
	// selectors. Only meaningful with Workers > 1; the golden test's
	// third arm uses it to pin both topologies to the same totals.
	SharedDispatcher bool
}

// DefaultTable1Options mirrors a browsing session long enough for the
// tails to populate.
func DefaultTable1Options() Table1Options {
	return Table1Options{Pages: 12, ConnsPerPage: 8, Seed: 1}
}

// RunTable1 measures the four writing schemes under a browsing
// workload. Three engine runs: directWrite; queueWrite+oldPut (yielding
// both the queueWrite write histogram and the oldPut put histogram);
// queueWrite+newPut.
func RunTable1(o Table1Options) (*Table1Result, error) {
	res := &Table1Result{}

	run := func(scheme engine.WriteScheme, seed int64) (engine.Stats, error) {
		cfg := engine.Default()
		cfg.WriteScheme = scheme
		cfg.Seed = seed
		if o.Workers > 1 {
			cfg.Workers = o.Workers
			cfg.SharedDispatcher = o.SharedDispatcher
		}
		bed, err := testbed.New(testbed.Options{
			Engine:       cfg,
			EngineSet:    true,
			Link:         netsim.LinkParams{Delay: 10 * time.Millisecond},
			Servers:      []netsim.ServerSpec{testbed.ChattyServer("site.example", "203.0.113.10:80", 20*time.Millisecond)},
			TunWriteCost: tun.AndroidWriteCost(),
			Seed:         seed,
		})
		if err != nil {
			return engine.Stats{}, err
		}
		defer bed.Close()
		bed.InstallApp(uidBrowser, "com.android.chrome")
		server := netip.MustParseAddrPort("203.0.113.10:80")
		if _, fails := browse(bed, o.Pages, o.ConnsPerPage, "site.example", server); fails > o.Pages*o.ConnsPerPage/4 {
			return engine.Stats{}, fmt.Errorf("table1: %d connect failures", fails)
		}
		// Let in-flight teardown writes land before reading counters:
		// wait until every client is torn down and the write counter has
		// been stable across several samples (a fixed sleep undercounts
		// on a loaded host, and a single stable sample can straddle one
		// AndroidWriteCost spike of up to ~23 ms — either would make the
		// totals nondeterministic).
		deadline := time.Now().Add(3 * time.Second)
		last, stable := -1, 0
		for time.Now().Before(deadline) {
			st := bed.Eng.Stats()
			if bed.Eng.ActiveClients() == 0 && st.PacketsToTun == last {
				if stable++; stable >= 3 { // ~75 ms quiet, past any write stall
					break
				}
			} else {
				stable = 0
			}
			last = st.PacketsToTun
			time.Sleep(25 * time.Millisecond)
		}
		return bed.Eng.Stats(), nil
	}

	st, err := run(engine.DirectWrite, o.Seed)
	if err != nil {
		return nil, err
	}
	res.DirectWrite = st.WriteHist

	st, err = run(engine.QueueWriteOldPut, o.Seed+1)
	if err != nil {
		return nil, err
	}
	res.QueueWrite = st.WriteHist
	res.OldPut = st.PutHist

	st, err = run(engine.QueueWriteNewPut, o.Seed+2)
	if err != nil {
		return nil, err
	}
	res.NewPut = st.PutHist

	return res, nil
}

// String renders the result in the layout of Table 1.
func (r *Table1Result) String() string {
	header := []string{"", "directWrite", "queueWrite", "oldPut", "newPut"}
	labels := append([]string{"Total"}, stats.BucketLabels[:]...)
	cols := [][]string{
		histColumn(r.DirectWrite),
		histColumn(r.QueueWrite),
		histColumn(r.OldPut),
		histColumn(r.NewPut),
	}
	rows := make([][]string, len(labels))
	for i, label := range labels {
		row := []string{label}
		for _, col := range cols {
			row = append(row, col[i])
		}
		rows[i] = row
	}
	out := renderTable(header, rows)
	out += fmt.Sprintf("large(>1ms) fraction: direct %.2f%%, queue %.2f%%, oldPut %.2f%%, newPut %.3f%%\n",
		r.DirectWrite.LargeFraction()*100, r.QueueWrite.LargeFraction()*100,
		r.OldPut.LargeFraction()*100, r.NewPut.LargeFraction()*100)
	return out
}
