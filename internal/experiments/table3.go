package experiments

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"repro/internal/baselines/haystack"
	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/testbed"
)

// Table3Result holds the speedtest throughputs (Mbps) of Table 3:
// direct (no relay), through MopEye, and through the Haystack-style
// baseline, with deltas from the direct baseline.
type Table3Result struct {
	BaselineDown, BaselineUp float64
	MopEyeDown, MopEyeUp     float64
	HaystackDown, HaystackUp float64
}

// DeltaMopEyeDown and friends report the overhead rows.
func (r *Table3Result) DeltaMopEyeDown() float64   { return r.BaselineDown - r.MopEyeDown }
func (r *Table3Result) DeltaMopEyeUp() float64     { return r.BaselineUp - r.MopEyeUp }
func (r *Table3Result) DeltaHaystackDown() float64 { return r.BaselineDown - r.HaystackDown }
func (r *Table3Result) DeltaHaystackUp() float64   { return r.BaselineUp - r.HaystackUp }

// Table3Options configures the speedtest.
type Table3Options struct {
	// LinkMbps is the dedicated WiFi's rate (the paper's network held
	// ~25 Mbps both ways).
	LinkMbps float64
	// Delay is the one-way propagation delay to the speedtest server.
	Delay time.Duration
	// Duration is how long each direction runs.
	Duration time.Duration
	Seed     int64
}

// DefaultTable3Options mirrors the paper's dedicated 25 Mbps WiFi.
func DefaultTable3Options() Table3Options {
	return Table3Options{LinkMbps: 25, Delay: 10 * time.Millisecond, Duration: 2 * time.Second, Seed: 3}
}

var speedtestAddr = netip.MustParseAddrPort("151.101.2.219:8080")

func speedtestLink(o Table3Options) netsim.LinkParams {
	return netsim.LinkParams{
		Delay: o.Delay,
		Down:  netsim.Mbps(o.LinkMbps),
		Up:    netsim.Mbps(o.LinkMbps),
	}
}

// speedtestServer streams unlimited bytes down and swallows uploads.
func speedtestServer() netsim.TCPHandler {
	return netsim.SourceHandler(1 << 40)
}

// RunTable3 measures download and upload throughput three ways.
func RunTable3(o Table3Options) (*Table3Result, error) {
	res := &Table3Result{}

	// Baseline: a direct socket on the same link, no relay.
	{
		clk := clock.NewReal()
		net := netsim.New(clk, speedtestLink(o), o.Seed)
		net.HandleTCP(speedtestAddr, speedtestServer())
		c, err := net.Dial(netip.AddrPortFrom(testbed.PhoneWANAddr, 40000), speedtestAddr)
		if err != nil {
			net.Close()
			return nil, fmt.Errorf("baseline dial: %w", err)
		}
		res.BaselineDown = mbps(netsimDrain(c, o.Duration), o.Duration)
		c.Close()

		var delivered atomic.Int64
		net.HandleTCP(speedtestAddr, netsim.CountingSinkHandler(&delivered))
		c2, err := net.Dial(netip.AddrPortFrom(testbed.PhoneWANAddr, 40001), speedtestAddr)
		if err != nil {
			net.Close()
			return nil, fmt.Errorf("baseline upload dial: %w", err)
		}
		_ = netsimPush(c2, o.Duration)
		res.BaselineUp = mbps(delivered.Load(), o.Duration)
		c2.Close()
		net.Close()
	}

	// Through a relay: MopEye, then Haystack.
	relayRun := func(cfg engine.Config, seed int64) (down, up float64, err error) {
		mk := func(handler netsim.TCPHandler, seed int64) (*testbed.Bed, error) {
			bed, err := testbed.New(testbed.Options{
				Engine:    cfg,
				EngineSet: true,
				Link:      speedtestLink(o),
				Servers: []netsim.ServerSpec{{
					Domain: "speedtest.example", Addr: speedtestAddr,
					Link: speedtestLink(o), Handler: handler,
				}},
				Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			bed.InstallApp(uidApp, "org.zwanoo.android.speedtest")
			return bed, nil
		}

		bed, err := mk(speedtestServer(), seed)
		if err != nil {
			return 0, 0, err
		}
		conn, err := bed.Phone.Connect(uidApp, speedtestAddr, 10*time.Second)
		if err != nil {
			bed.Close()
			return 0, 0, fmt.Errorf("relay dial: %w", err)
		}
		down = mbps(drainDownload(conn, o.Duration), o.Duration)
		conn.Close()
		bed.Close()

		var delivered atomic.Int64
		bed, err = mk(netsim.CountingSinkHandler(&delivered), seed+1)
		if err != nil {
			return 0, 0, err
		}
		conn, err = bed.Phone.Connect(uidApp, speedtestAddr, 10*time.Second)
		if err != nil {
			bed.Close()
			return 0, 0, fmt.Errorf("relay upload dial: %w", err)
		}
		_ = pushUpload(conn, o.Duration)
		up = mbps(delivered.Load(), o.Duration)
		conn.Close()
		bed.Close()
		return down, up, nil
	}

	var err error
	res.MopEyeDown, res.MopEyeUp, err = relayRun(engine.Default(), o.Seed+10)
	if err != nil {
		return nil, err
	}
	res.HaystackDown, res.HaystackUp, err = relayRun(haystack.Config(), o.Seed+20)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the result in the layout of Table 3.
func (r *Table3Result) String() string {
	header := []string{"Throughput", "Baseline", "MopEye", "Δ", "Haystack", "Δ"}
	rows := [][]string{
		{"Download",
			fmt.Sprintf("%.2f", r.BaselineDown),
			fmt.Sprintf("%.2f", r.MopEyeDown),
			fmt.Sprintf("%.2f", r.DeltaMopEyeDown()),
			fmt.Sprintf("%.2f", r.HaystackDown),
			fmt.Sprintf("%.2f", r.DeltaHaystackDown())},
		{"Upload",
			fmt.Sprintf("%.2f", r.BaselineUp),
			fmt.Sprintf("%.2f", r.MopEyeUp),
			fmt.Sprintf("%.2f", r.DeltaMopEyeUp()),
			fmt.Sprintf("%.2f", r.HaystackUp),
			fmt.Sprintf("%.2f", r.DeltaHaystackUp())},
	}
	return renderTable(header, rows)
}
