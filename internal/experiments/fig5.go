package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/procnet"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Fig5Result holds the packet-to-app mapping overhead distributions
// before (eager, Figure 5a) and after (lazy, Figure 5b) the §3.3
// optimisation, plus the mitigation statistics the paper reports
// (155/481 threads parsing, 67.8% avoided).
type Fig5Result struct {
	Eager engine.MappingStats
	Lazy  engine.MappingStats
	// EagerCDF/LazyCDF are the per-resolution overheads in ms.
	EagerCDF *stats.CDF
	LazyCDF  *stats.CDF
}

// Fig5Options sizes the browsing workload.
type Fig5Options struct {
	Pages        int
	ConnsPerPage int
	Seed         int64
}

// DefaultFig5Options approximates the paper's web-browsing run scale.
func DefaultFig5Options() Fig5Options {
	return Fig5Options{Pages: 20, ConnsPerPage: 8, Seed: 5}
}

// RunFig5 runs the browsing workload under eager and lazy mapping with
// the Android parse-cost model.
func RunFig5(o Fig5Options) (*Fig5Result, error) {
	run := func(mode engine.MappingMode, seed int64) (engine.MappingStats, error) {
		cfg := engine.Default()
		cfg.Mapping = mode
		cfg.Seed = seed
		bed, err := testbed.New(testbed.Options{
			Engine:    cfg,
			EngineSet: true,
			Link:      netsim.LinkParams{Delay: 15 * time.Millisecond},
			Servers:   []netsim.ServerSpec{testbed.ChattyServer("pages.example", "203.0.113.20:80", 30*time.Millisecond)},
			ParseCost: procnet.AndroidParseCost(),
			Seed:      seed,
		})
		if err != nil {
			return engine.MappingStats{}, err
		}
		defer bed.Close()
		bed.InstallApp(uidBrowser, "com.android.chrome")
		server := netip.MustParseAddrPort("203.0.113.20:80")
		browse(bed, o.Pages, o.ConnsPerPage, "pages.example", server)
		// Mapping resolutions run in socket-connect threads; give
		// stragglers a moment.
		time.Sleep(100 * time.Millisecond)
		return bed.Eng.Stats().Mapping, nil
	}

	eager, err := run(engine.MapEager, o.Seed)
	if err != nil {
		return nil, err
	}
	lazy, err := run(engine.MapLazy, o.Seed+1)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{
		Eager:    eager,
		Lazy:     lazy,
		EagerCDF: stats.NewCDF(stats.DurationsToMillis(eager.Overheads)),
		LazyCDF:  stats.NewCDF(stats.DurationsToMillis(lazy.Overheads)),
	}, nil
}

// String renders the mapping-overhead CDFs and the §3.3 statistics.
func (r *Fig5Result) String() string {
	out := "Figure 5: packet-to-app mapping overhead per SYN (CDF)\n"
	out += "  x(ms)   (a) before (eager)   (b) after (lazy)\n"
	for _, x := range []float64{0.1, 1, 2, 5, 10, 15, 20, 30} {
		out += fmt.Sprintf("  %5.1f   %18.2f   %16.2f\n", x, r.EagerCDF.At(x), r.LazyCDF.At(x))
	}
	out += fmt.Sprintf("lazy mapping: %d resolutions, %d parsed, %d avoided (mitigation %.1f%%)\n",
		r.Lazy.Resolutions, r.Lazy.Parses, r.Lazy.Avoided, r.Lazy.MitigationRate()*100)
	return out
}
