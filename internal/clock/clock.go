// Package clock abstracts time so that engine components can run against
// either the wall clock or a deterministic virtual clock in tests.
//
// The MopEye engine measures round-trip times with sub-millisecond
// resolution, so the interface exposes a monotonic nanosecond reading in
// addition to wall-clock time.
package clock

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Clock is a source of time and timers.
type Clock interface {
	// Now returns the current wall-clock time.
	Now() time.Time
	// Nanos returns a monotonic reading in nanoseconds. Two calls may be
	// subtracted to obtain an elapsed duration.
	Nanos() int64
	// Sleep blocks the caller for d.
	Sleep(d time.Duration)
	// SleepFine blocks for d with sub-scheduler-quantum precision. The
	// engine uses it when charging modelled costs whose magnitude is
	// itself the measurement (e.g. the ~0.1 ms tunnel write cost of
	// Table 1), where ordinary Sleep's overshoot would contaminate the
	// histogram buckets.
	SleepFine(d time.Duration)
	// After returns a channel that delivers the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// NewReal returns the wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Nanos implements Clock. It uses the runtime monotonic clock carried by
// time.Time.
func (Real) Nanos() int64 { return time.Since(baseline).Nanoseconds() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// SleepFine implements Clock: it sleeps for the bulk of the duration,
// then spins the final stretch so the elapsed time tracks d to within
// a few microseconds instead of the scheduler quantum.
func (r Real) SleepFine(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := r.Nanos() + int64(d)
	const spinWindow = 300 * time.Microsecond
	if d > spinWindow {
		time.Sleep(d - spinWindow)
	}
	for r.Nanos() < deadline {
		runtime.Gosched()
	}
}

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// baseline anchors the monotonic reading of Real so that Nanos values are
// small and positive for the lifetime of the process.
var baseline = time.Now()

// Virtual is a manually advanced clock for deterministic tests. Sleepers
// and timers fire only when Advance moves time past their deadline.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64
}

// NewVirtual returns a virtual clock starting at the given time.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

type waiter struct {
	deadline time.Time
	seq      int64 // tie-break so firing order is stable
	ch       chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].deadline.Equal(h[j].deadline) {
		return h[i].seq < h[j].seq
	}
	return h[i].deadline.Before(h[j].deadline)
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	*h = old[:n-1]
	return w
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Nanos implements Clock.
func (v *Virtual) Nanos() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now.UnixNano()
}

// SleepFine implements Clock; virtual time is exact by construction.
func (v *Virtual) SleepFine(d time.Duration) { v.Sleep(d) }

// Sleep implements Clock. It blocks until Advance moves the clock past
// the deadline.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.waiters, &waiter{deadline: v.now.Add(d), seq: v.seq, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	var fired []*waiter
	for v.waiters.Len() > 0 && !v.waiters[0].deadline.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		v.now = w.deadline
		fired = append(fired, w)
	}
	v.now = target
	v.mu.Unlock()
	for _, w := range fired {
		w.ch <- w.deadline
	}
}

// Pending reports how many timers have not yet fired. Useful for test
// synchronisation.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters.Len()
}
