package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockMonotone(t *testing.T) {
	c := NewReal()
	a := c.Nanos()
	time.Sleep(2 * time.Millisecond)
	b := c.Nanos()
	if b <= a {
		t.Errorf("Nanos not increasing: %d then %d", a, b)
	}
	if d := b - a; d < int64(time.Millisecond) {
		t.Errorf("elapsed %v, slept 2ms", time.Duration(d))
	}
}

func TestRealSleep(t *testing.T) {
	c := NewReal()
	start := time.Now()
	c.Sleep(5 * time.Millisecond)
	if time.Since(start) < 4*time.Millisecond {
		t.Error("Sleep returned early")
	}
}

func TestVirtualNow(t *testing.T) {
	start := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Errorf("Now = %v", v.Now())
	}
	v.Advance(time.Hour)
	if !v.Now().Equal(start.Add(time.Hour)) {
		t.Errorf("after advance: %v", v.Now())
	}
}

func TestVirtualSleepBlocksUntilAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		v.Sleep(10 * time.Second)
		close(done)
	}()
	// Wait until the sleeper has registered.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	case <-time.After(10 * time.Millisecond):
	}
	v.Advance(9 * time.Second)
	select {
	case <-done:
		t.Fatal("Sleep returned before its deadline")
	case <-time.After(10 * time.Millisecond):
	}
	v.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep never returned")
	}
}

func TestVirtualAfterOrdering(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	ch1 := v.After(time.Second)
	ch2 := v.After(2 * time.Second)
	v.Advance(3 * time.Second)
	t1 := <-ch1
	t2 := <-ch2
	if !t1.Before(t2) {
		t.Errorf("timers fired out of order: %v then %v", t1, t2)
	}
}

func TestVirtualAfterZero(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	select {
	case <-v.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestVirtualManySleepers(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.Sleep(time.Duration(i+1) * time.Millisecond)
		}(i)
	}
	for v.Pending() < n {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Second)
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatalf("sleepers stuck; pending=%d", v.Pending())
	}
}

func TestVirtualNanos(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	a := v.Nanos()
	v.Advance(time.Millisecond)
	if v.Nanos()-a != int64(time.Millisecond) {
		t.Errorf("delta = %d", v.Nanos()-a)
	}
}
