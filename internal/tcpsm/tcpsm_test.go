package tcpsm

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

var (
	appAP    = netip.MustParseAddrPort("10.0.0.2:40001")
	serverAP = netip.MustParseAddrPort("93.184.216.34:443")
)

// collector gathers emitted packets.
type collector struct{ pkts []*packet.Packet }

func (c *collector) emit(p *packet.Packet) { c.pkts = append(c.pkts, p) }

func (c *collector) last() *packet.Packet {
	if len(c.pkts) == 0 {
		return nil
	}
	return c.pkts[len(c.pkts)-1]
}

func synPacket(seq uint32) *packet.Packet {
	return packet.TCPPacket(appAP, serverAP, packet.FlagSYN, seq, 0, 65535, packet.MSSOption(1460), nil)
}

func newSM(t *testing.T) (*Machine, *collector) {
	t.Helper()
	c := &collector{}
	m, err := New(synPacket(1000), 5000, c.emit)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m, c
}

func established(t *testing.T) (*Machine, *collector) {
	t.Helper()
	m, c := newSM(t)
	if err := m.CompleteHandshake(); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	return m, c
}

func TestNewRequiresSYN(t *testing.T) {
	c := &collector{}
	notSyn := packet.TCPPacket(appAP, serverAP, packet.FlagACK, 1, 1, 0, nil, nil)
	if _, err := New(notSyn, 1, c.emit); !errors.Is(err, ErrNotSYN) {
		t.Errorf("got %v", err)
	}
	synAck := packet.TCPPacket(appAP, serverAP, packet.FlagSYN|packet.FlagACK, 1, 1, 0, nil, nil)
	if _, err := New(synAck, 1, c.emit); !errors.Is(err, ErrNotSYN) {
		t.Errorf("SYN-ACK accepted: %v", err)
	}
}

func TestHandshakeEmitsSYNACKWithMSS(t *testing.T) {
	m, c := newSM(t)
	if m.State() != StateSynReceived {
		t.Fatalf("state: %v", m.State())
	}
	if err := m.CompleteHandshake(); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateEstablished {
		t.Fatalf("state: %v", m.State())
	}
	sa := c.last()
	if sa == nil || !sa.TCP.Has(packet.FlagSYN|packet.FlagACK) {
		t.Fatalf("no SYN-ACK: %v", sa)
	}
	if sa.TCP.Ack != 1001 {
		t.Errorf("ack %d, want 1001 (SYN consumes one)", sa.TCP.Ack)
	}
	if sa.TCP.Seq != 5000 {
		t.Errorf("seq %d, want iss 5000", sa.TCP.Seq)
	}
	mss, ok := packet.ParseMSS(sa.TCP.Options)
	if !ok || mss != DefaultMSS {
		t.Errorf("MSS: %d %v (§3.4 requires 1460)", mss, ok)
	}
	if sa.TCP.Window != DefaultWindow {
		t.Errorf("window: %d, want 65535 (§3.4)", sa.TCP.Window)
	}
	// SYN-ACK travels server -> app.
	if sa.Src() != serverAP || sa.Dst() != appAP {
		t.Errorf("direction: %v -> %v", sa.Src(), sa.Dst())
	}
}

func TestDoubleHandshakeRejected(t *testing.T) {
	m, _ := established(t)
	if err := m.CompleteHandshake(); !errors.Is(err, ErrBadState) {
		t.Errorf("got %v", err)
	}
}

func TestRefuseEmitsRST(t *testing.T) {
	m, c := newSM(t)
	m.Refuse()
	if m.State() != StateClosed {
		t.Errorf("state: %v", m.State())
	}
	if !c.last().TCP.Has(packet.FlagRST) {
		t.Error("no RST emitted")
	}
}

func TestOnDataInOrder(t *testing.T) {
	m, _ := established(t)
	d := packet.TCPPacket(appAP, serverAP, packet.FlagACK|packet.FlagPSH, 1001, 5001, 65535, nil, []byte("hello"))
	data, err := m.OnData(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Errorf("data: %q", data)
	}
	// Next segment continues the stream.
	d2 := packet.TCPPacket(appAP, serverAP, packet.FlagACK, 1006, 5001, 65535, nil, []byte("world"))
	data, err = m.OnData(d2)
	if err != nil || string(data) != "world" {
		t.Errorf("second segment: %q %v", data, err)
	}
}

func TestOnDataRetransmissionTrimmed(t *testing.T) {
	m, _ := established(t)
	d := packet.TCPPacket(appAP, serverAP, packet.FlagACK, 1001, 5001, 65535, nil, []byte("abcde"))
	if _, err := m.OnData(d); err != nil {
		t.Fatal(err)
	}
	// Retransmission overlapping 3 old bytes plus 2 new ones.
	d2 := packet.TCPPacket(appAP, serverAP, packet.FlagACK, 1003, 5001, 65535, nil, []byte("cdeFG"))
	data, err := m.OnData(d2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "FG" {
		t.Errorf("trimmed data: %q, want FG", data)
	}
}

func TestOnDataFullDuplicate(t *testing.T) {
	m, _ := established(t)
	d := packet.TCPPacket(appAP, serverAP, packet.FlagACK, 1001, 5001, 65535, nil, []byte("abc"))
	if _, err := m.OnData(d); err != nil {
		t.Fatal(err)
	}
	dup := packet.TCPPacket(appAP, serverAP, packet.FlagACK, 1001, 5001, 65535, nil, []byte("abc"))
	if _, err := m.OnData(dup); !errors.Is(err, ErrStaleData) {
		t.Errorf("got %v", err)
	}
}

func TestOnDataGapIsError(t *testing.T) {
	m, _ := established(t)
	gap := packet.TCPPacket(appAP, serverAP, packet.FlagACK, 2000, 5001, 65535, nil, []byte("x"))
	if _, err := m.OnData(gap); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("got %v (the tunnel link cannot reorder, §3.4)", err)
	}
}

func TestAckAppAcksEverythingReceived(t *testing.T) {
	m, c := established(t)
	d := packet.TCPPacket(appAP, serverAP, packet.FlagACK, 1001, 5001, 65535, nil, []byte("12345678"))
	if _, err := m.OnData(d); err != nil {
		t.Fatal(err)
	}
	if err := m.AckApp(); err != nil {
		t.Fatal(err)
	}
	ack := c.last()
	if !ack.TCP.Has(packet.FlagACK) || ack.TCP.Has(packet.FlagPSH) || len(ack.Payload) != 0 {
		t.Errorf("not a pure ACK: %v", ack)
	}
	if ack.TCP.Ack != 1009 {
		t.Errorf("ack %d, want 1009", ack.TCP.Ack)
	}
}

func TestSendDataSegmentsAtMSS(t *testing.T) {
	m, c := established(t)
	payload := make([]byte, DefaultMSS*2+100)
	if err := m.SendData(payload); err != nil {
		t.Fatal(err)
	}
	var dataPkts []*packet.Packet
	for _, p := range c.pkts {
		if len(p.Payload) > 0 {
			dataPkts = append(dataPkts, p)
		}
	}
	if len(dataPkts) != 3 {
		t.Fatalf("segments: %d, want 3", len(dataPkts))
	}
	if len(dataPkts[0].Payload) != DefaultMSS || len(dataPkts[2].Payload) != 100 {
		t.Errorf("segment sizes: %d %d %d", len(dataPkts[0].Payload), len(dataPkts[1].Payload), len(dataPkts[2].Payload))
	}
	// Sequence numbers are contiguous: no window pacing (§3.4).
	if dataPkts[1].TCP.Seq != dataPkts[0].TCP.Seq+uint32(DefaultMSS) {
		t.Error("segment seqs not contiguous")
	}
	st := m.Stats()
	if st.BytesToApp != int64(len(payload)) {
		t.Errorf("BytesToApp: %d", st.BytesToApp)
	}
}

func TestAppCloseThenServerClose(t *testing.T) {
	m, c := established(t)
	fin := packet.TCPPacket(appAP, serverAP, packet.FlagFIN|packet.FlagACK, 1001, 5001, 65535, nil, nil)
	if _, err := m.OnFIN(fin); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateAppClosed {
		t.Fatalf("state: %v", m.State())
	}
	// The FIN must be acknowledged with rcvNxt advanced by one.
	ack := c.last()
	if ack.TCP.Ack != 1002 {
		t.Errorf("FIN ack %d, want 1002", ack.TCP.Ack)
	}
	if err := m.SendFIN(); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateClosed {
		t.Fatalf("final state: %v", m.State())
	}
	if !c.last().TCP.Has(packet.FlagFIN) {
		t.Error("no FIN emitted")
	}
}

func TestServerCloseThenAppClose(t *testing.T) {
	m, _ := established(t)
	if err := m.SendFIN(); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateNetClosed {
		t.Fatalf("state: %v", m.State())
	}
	// Data can still flow app -> server in NET_CLOSED.
	d := packet.TCPPacket(appAP, serverAP, packet.FlagACK, 1001, 0, 65535, nil, []byte("last"))
	if _, err := m.OnData(d); err != nil {
		t.Fatalf("half-closed data: %v", err)
	}
	fin := packet.TCPPacket(appAP, serverAP, packet.FlagFIN|packet.FlagACK, 1005, 0, 65535, nil, nil)
	if _, err := m.OnFIN(fin); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateClosed {
		t.Fatalf("final state: %v", m.State())
	}
}

func TestFINWithPayloadRelaysData(t *testing.T) {
	m, _ := established(t)
	fin := packet.TCPPacket(appAP, serverAP, packet.FlagFIN|packet.FlagACK|packet.FlagPSH, 1001, 5001, 65535, nil, []byte("bye"))
	data, err := m.OnFIN(fin)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "bye" {
		t.Errorf("FIN payload: %q", data)
	}
}

func TestRSTPaths(t *testing.T) {
	m, c := established(t)
	m.SendRST()
	if m.State() != StateClosed || !c.last().TCP.Has(packet.FlagRST) {
		t.Error("SendRST failed")
	}
	// Operations after close are rejected.
	if err := m.SendData([]byte("x")); !errors.Is(err, ErrBadState) {
		t.Errorf("SendData after RST: %v", err)
	}
	if err := m.AckApp(); !errors.Is(err, ErrBadState) {
		t.Errorf("AckApp after RST: %v", err)
	}
}

func TestOnRSTSilent(t *testing.T) {
	m, c := established(t)
	before := len(c.pkts)
	m.OnRST()
	if m.State() != StateClosed {
		t.Errorf("state: %v", m.State())
	}
	if len(c.pkts) != before {
		t.Error("OnRST emitted packets; the app is already gone")
	}
}

func TestPureACKCounted(t *testing.T) {
	m, _ := established(t)
	m.OnPureACK()
	m.OnPureACK()
	if got := m.Stats().PureACKsDropped; got != 2 {
		t.Errorf("PureACKsDropped: %d", got)
	}
}

func TestDataBeforeHandshakeRejected(t *testing.T) {
	m, _ := newSM(t)
	d := packet.TCPPacket(appAP, serverAP, packet.FlagACK, 1001, 0, 65535, nil, []byte("early"))
	if _, err := m.OnData(d); !errors.Is(err, ErrBadState) {
		t.Errorf("got %v", err)
	}
}

// Property: for any split of a byte stream into segments, the machine
// reassembles exactly the original stream and the sequence numbers of
// emitted data packets tile [iss+1, iss+1+len).
func TestQuickStreamReassembly(t *testing.T) {
	f := func(seed int64, total uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(total%4096) + 1
		stream := make([]byte, n)
		r.Read(stream)
		c := &collector{}
		m, err := New(synPacket(42), 99, c.emit)
		if err != nil {
			return false
		}
		if m.CompleteHandshake() != nil {
			return false
		}
		var rebuilt []byte
		seq := uint32(43)
		for off := 0; off < n; {
			segLen := r.Intn(1460) + 1
			if off+segLen > n {
				segLen = n - off
			}
			p := packet.TCPPacket(appAP, serverAP, packet.FlagACK, seq, 100, 65535, nil, stream[off:off+segLen])
			data, err := m.OnData(p)
			if err != nil {
				return false
			}
			rebuilt = append(rebuilt, data...)
			seq += uint32(segLen)
			off += segLen
		}
		return string(rebuilt) == string(stream)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: SendData emits segments whose payloads concatenate to the
// input for any size.
func TestQuickSendDataSegmentation(t *testing.T) {
	f := func(seed int64, total uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(total % 8192)
		payload := make([]byte, n)
		r.Read(payload)
		c := &collector{}
		m, err := New(synPacket(1), 7, c.emit)
		if err != nil || m.CompleteHandshake() != nil {
			return false
		}
		c.pkts = nil
		if m.SendData(payload) != nil {
			return false
		}
		var rebuilt []byte
		for _, p := range c.pkts {
			if len(p.Payload) > DefaultMSS {
				return false
			}
			rebuilt = append(rebuilt, p.Payload...)
		}
		return string(rebuilt) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: state machine never panics under random event sequences and
// always lands in a defined state.
func TestQuickRandomEventSequences(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := &collector{}
		m, err := New(synPacket(10), 20, c.emit)
		if err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			switch r.Intn(8) {
			case 0:
				_ = m.CompleteHandshake()
			case 1:
				d := packet.TCPPacket(appAP, serverAP, packet.FlagACK, r.Uint32(), 0, 65535, nil, []byte("x"))
				_, _ = m.OnData(d)
			case 2:
				_ = m.AckApp()
			case 3:
				_ = m.SendData([]byte("abc"))
			case 4:
				fin := packet.TCPPacket(appAP, serverAP, packet.FlagFIN, r.Uint32(), 0, 65535, nil, nil)
				_, _ = m.OnFIN(fin)
			case 5:
				_ = m.SendFIN()
			case 6:
				m.SendRST()
			case 7:
				m.OnPureACK()
			}
		}
		switch m.State() {
		case StateSynReceived, StateEstablished, StateAppClosed, StateNetClosed, StateClosed:
			return true
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateSynReceived: "SYN_RECEIVED",
		StateEstablished: "ESTABLISHED",
		StateAppClosed:   "APP_CLOSED",
		StateNetClosed:   "NET_CLOSED",
		StateClosed:      "CLOSED",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d: %q", s, s.String())
		}
	}
}
