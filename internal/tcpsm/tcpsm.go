// Package tcpsm implements MopEye's user-space TCP state machine: the
// engine-side terminator of the *internal* connection between an app and
// MopEye over the TUN (§2.3).
//
// Because MopEye relays through regular sockets, it cannot see the
// external connection's TCB; the internal connection therefore needs its
// own sequence/acknowledgement bookkeeping, handshake, and teardown,
// processed per RFC 793. Deliberate simplifications from §3.4 are part
// of the design and are preserved here:
//
//   - MSS is fixed at 1460 so 1500-byte IP packets flow to the app.
//   - The advertised window is 65,535 bytes and never shrinks.
//   - No congestion or flow control: the TUN link cannot lose or
//     reorder, so data is forwarded to the app continuously without
//     waiting for ACKs, and pure ACKs from the app are discarded.
//
// The machine emits packets through a caller-supplied function; the
// engine points it at the TunWriter queue.
package tcpsm

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"

	"repro/internal/packet"
)

// DefaultMSS is the maximum segment size advertised to apps (§3.4).
const DefaultMSS = 1460

// DefaultWindow is the advertised receive window (§3.4).
const DefaultWindow = 65535

// State is the machine's connection state.
type State int

// States. The machine is created on a SYN, so there is no Listen state;
// CLOSED is terminal.
const (
	StateSynReceived State = iota // app SYN seen, external connect pending
	StateEstablished              // handshake completed on both sides
	StateAppClosed                // app sent FIN (half close, app->net done)
	StateNetClosed                // server side finished (FIN sent to app)
	StateClosed                   // fully closed or reset
)

func (s State) String() string {
	switch s {
	case StateSynReceived:
		return "SYN_RECEIVED"
	case StateEstablished:
		return "ESTABLISHED"
	case StateAppClosed:
		return "APP_CLOSED"
	case StateNetClosed:
		return "NET_CLOSED"
	case StateClosed:
		return "CLOSED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors.
var (
	ErrBadState   = errors.New("tcpsm: operation invalid in current state")
	ErrNotSYN     = errors.New("tcpsm: packet is not a SYN")
	ErrStaleData  = errors.New("tcpsm: fully duplicate segment")
	ErrOutOfOrder = errors.New("tcpsm: out-of-order segment on lossless link")
)

// Stats counts machine activity for the engine's accounting.
type Stats struct {
	SegmentsIn      int
	SegmentsOut     int
	BytesToApp      int64
	BytesFromApp    int64
	PureACKsDropped int
}

// Machine is one internal connection's state machine.
type Machine struct {
	mu sync.Mutex

	app    netip.AddrPort // the app's (local) endpoint
	server netip.AddrPort // the destination the app dialed
	mss    int
	window uint16

	state  State
	sndNxt uint32 // next sequence we send to the app
	rcvNxt uint32 // next sequence expected from the app

	emit  func(*packet.Packet)
	stats Stats
}

// New creates a machine for an app SYN packet. The machine assumes the
// SYN has been validated as such by the caller (MainWorker dispatches on
// flags). iss is the initial send sequence; the engine draws it.
func New(syn *packet.Packet, iss uint32, emit func(*packet.Packet)) (*Machine, error) {
	if syn.TCP == nil || !syn.TCP.Has(packet.FlagSYN) || syn.TCP.Has(packet.FlagACK) {
		return nil, ErrNotSYN
	}
	m := &Machine{
		app:    syn.Src(),
		server: syn.Dst(),
		mss:    DefaultMSS,
		window: DefaultWindow,
		state:  StateSynReceived,
		sndNxt: iss,
		rcvNxt: syn.TCP.Seq + 1, // SYN consumes one sequence number
		emit:   emit,
	}
	m.stats.SegmentsIn++
	return m, nil
}

// State returns the current state.
func (m *Machine) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// App returns the app-side endpoint of the internal connection.
func (m *Machine) App() netip.AddrPort { return m.app }

// Server returns the destination endpoint.
func (m *Machine) Server() netip.AddrPort { return m.server }

// Stats returns a snapshot of activity counters.
func (m *Machine) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// send emits a packet from the server-side identity toward the app.
// Caller holds m.mu.
func (m *Machine) sendLocked(flags uint8, seq, ack uint32, options, payload []byte) {
	p := packet.TCPPacket(m.server, m.app, flags, seq, ack, m.window, options, payload)
	m.stats.SegmentsOut++
	m.emit(p)
}

// CompleteHandshake sends the SYN-ACK to the app. MopEye calls this only
// after the *external* connection is established (§2.3: "Only after
// establishing the external connection can MopEye complete the handshake
// with the app"), which is what makes the app-observed connect time
// track the true path RTT.
func (m *Machine) CompleteHandshake() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateSynReceived {
		return ErrBadState
	}
	m.sendLocked(packet.FlagSYN|packet.FlagACK, m.sndNxt, m.rcvNxt,
		packet.MSSOption(DefaultMSS), nil)
	m.sndNxt++ // our SYN consumes one sequence number
	m.state = StateEstablished
	return nil
}

// Refuse resets the internal connection in response to a failed external
// connect (the app sees ECONNREFUSED-equivalent behaviour).
func (m *Machine) Refuse() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == StateClosed {
		return
	}
	m.sendLocked(packet.FlagRST|packet.FlagACK, m.sndNxt, m.rcvNxt, nil, nil)
	m.state = StateClosed
}

// OnData ingests an app data segment and returns the new payload bytes
// to be placed in the socket write buffer. Retransmitted prefixes are
// trimmed; fully duplicate segments return ErrStaleData; a gap returns
// ErrOutOfOrder (impossible on a correct TUN link, so it indicates a
// bug and the engine resets the connection).
func (m *Machine) OnData(p *packet.Packet) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.SegmentsIn++
	if m.state != StateEstablished && m.state != StateNetClosed {
		return nil, ErrBadState
	}
	data := p.Payload
	seq := p.TCP.Seq
	switch {
	case seq == m.rcvNxt:
	case seqLT(seq, m.rcvNxt):
		skip := m.rcvNxt - seq
		if int(skip) >= len(data) {
			return nil, ErrStaleData
		}
		data = data[skip:]
	default:
		return nil, ErrOutOfOrder
	}
	m.rcvNxt += uint32(len(data))
	m.stats.BytesFromApp += int64(len(data))
	return data, nil
}

// AckApp emits a pure ACK for everything received so far. The engine
// calls it when the corresponding socket write to the server completes
// (§2.3 Socket Write: "instructs the corresponding TCP state machine to
// generate an ACK packet to the app").
func (m *Machine) AckApp() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == StateClosed || m.state == StateSynReceived {
		return ErrBadState
	}
	m.sendLocked(packet.FlagACK, m.sndNxt, m.rcvNxt, nil, nil)
	return nil
}

// OnPureACK records (and drops) a dataless ACK from the app. MopEye
// discards these because nothing needs relaying (§2.3 Pure ACK).
func (m *Machine) OnPureACK() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.SegmentsIn++
	m.stats.PureACKsDropped++
}

// SendData forwards server bytes to the app, segmenting at the MSS. Per
// §3.4 there is no window pacing: everything is emitted immediately.
func (m *Machine) SendData(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateEstablished && m.state != StateAppClosed {
		return ErrBadState
	}
	for off := 0; off < len(b); off += m.mss {
		end := off + m.mss
		if end > len(b) {
			end = len(b)
		}
		seg := append([]byte(nil), b[off:end]...)
		m.sendLocked(packet.FlagACK|packet.FlagPSH, m.sndNxt, m.rcvNxt, nil, seg)
		m.sndNxt += uint32(len(seg))
		m.stats.BytesToApp += int64(len(seg))
	}
	return nil
}

// OnFIN processes an app FIN: acknowledge it and move to half-closed.
// Any payload riding on the FIN is returned for relaying. The engine
// then triggers the half-close write event on the socket (§2.3 TCP FIN).
func (m *Machine) OnFIN(p *packet.Packet) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.SegmentsIn++
	var data []byte
	if len(p.Payload) > 0 && p.TCP.Seq == m.rcvNxt {
		data = p.Payload
		m.rcvNxt += uint32(len(data))
		m.stats.BytesFromApp += int64(len(data))
	}
	m.rcvNxt++ // FIN consumes one sequence number
	m.sendLocked(packet.FlagACK, m.sndNxt, m.rcvNxt, nil, nil)
	switch m.state {
	case StateEstablished:
		m.state = StateAppClosed
	case StateNetClosed:
		m.state = StateClosed
	default:
		return data, ErrBadState
	}
	return data, nil
}

// SendFIN closes the app-facing direction, used when the server side
// reached EOF (§2.3 Socket Read: a close read event generates a FIN for
// the internal connection).
func (m *Machine) SendFIN() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case StateEstablished:
		m.state = StateNetClosed
	case StateAppClosed:
		m.state = StateClosed
	default:
		return ErrBadState
	}
	m.sendLocked(packet.FlagFIN|packet.FlagACK, m.sndNxt, m.rcvNxt, nil, nil)
	m.sndNxt++
	return nil
}

// SendRST aborts the app-facing connection, used when the server resets
// (§2.3 Socket Read: a reset read event generates a RESET packet).
func (m *Machine) SendRST() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == StateClosed {
		return
	}
	m.sendLocked(packet.FlagRST|packet.FlagACK, m.sndNxt, m.rcvNxt, nil, nil)
	m.state = StateClosed
}

// OnRST processes an app RST: the machine dies silently; the engine
// closes the external socket and removes the client (§2.3 TCP RST).
func (m *Machine) OnRST() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.SegmentsIn++
	m.state = StateClosed
}

func seqLT(a, b uint32) bool { return int32(a-b) < 0 }
