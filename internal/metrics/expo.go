package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sketch"
)

// Snapshot is a point-in-time gather: families sorted by name, each
// family's samples sorted by label signature. It is detached from the
// registry that produced it (values copied, sketches cloned), so tests
// and dashboards can hold one across further traffic.
type Snapshot []Family

// Family is one metric name with its help text, kind, and samples.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

// Sample is one labeled value. Counters and gauges use Value; summary
// samples carry the cloned Sketch instead (quantiles, sum and count
// are derived from it at render time).
type Sample struct {
	Labels []Label
	Value  float64
	Sketch *sketch.Sketch
}

// Get returns the sample value for the exact label set, and whether it
// was found — a test convenience.
func (s Snapshot) Get(name string, labels ...Label) (float64, bool) {
	sig := labelSignature(labels)
	for _, f := range s {
		if f.Name != name {
			continue
		}
		for _, sm := range f.Samples {
			if labelSignature(sm.Labels) == sig {
				return sm.Value, true
			}
		}
	}
	return 0, false
}

// Quantiles rendered for summary families: the p50/p95/p99 the paper's
// reporting leans on.
var summaryQuantiles = []float64{0.5, 0.95, 0.99}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4). No timestamps are emitted and
// ordering is fully deterministic, so equal snapshots render to equal
// bytes.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range s {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, sm := range f.Samples {
			if f.Kind == KindSummary {
				writeSummarySample(&b, f.Name, sm)
				continue
			}
			b.WriteString(f.Name)
			writeLabels(&b, sm.Labels, "", "")
			b.WriteByte(' ')
			b.WriteString(formatValue(sm.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSummarySample renders one summary sample: fixed quantile lines
// plus _sum and _count, all derived from the sample's sketch.
func writeSummarySample(b *strings.Builder, name string, sm Sample) {
	sk := sm.Sketch
	for _, q := range summaryQuantiles {
		v := 0.0
		if sk != nil && sk.Count() > 0 {
			v = sk.Quantile(q)
		}
		b.WriteString(name)
		writeLabels(b, sm.Labels, "quantile", strconv.FormatFloat(q, 'g', -1, 64))
		b.WriteByte(' ')
		b.WriteString(formatValue(v))
		b.WriteByte('\n')
	}
	var sum float64
	var count uint64
	if sk != nil {
		sum, count = sk.Sum(), sk.Count()
	}
	b.WriteString(name + "_sum")
	writeLabels(b, sm.Labels, "", "")
	b.WriteByte(' ')
	b.WriteString(formatValue(sum))
	b.WriteByte('\n')
	b.WriteString(name + "_count")
	writeLabels(b, sm.Labels, "", "")
	b.WriteByte(' ')
	b.WriteString(formatValue(float64(count)))
	b.WriteByte('\n')
}

// writeLabels renders a sorted {k="v",...} block, optionally with one
// extra pair appended (the summary quantile label).
func writeLabels(b *strings.Builder, ls []Label, extraKey, extraVal string) {
	if len(ls) == 0 && extraKey == "" {
		return
	}
	sorted := copyLabels(ls)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	if extraKey != "" {
		sorted = append(sorted, Label{Key: extraKey, Value: extraVal})
	}
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// WritePrometheus gathers and renders in one step.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Gather().WritePrometheus(w)
}

// ContentType is the exposition-format content type served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry in exposition
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// Merge combines snapshots from independent registries (the sharded
// collector's per-shard servers) into one truthful view: counter and
// gauge samples with the same name and labels sum; summary samples
// merge bin-wise through the sketch, so merged quantiles are exactly
// what one combined registry would have reported. Families must agree
// on kind across snapshots.
func Merge(snaps ...Snapshot) (Snapshot, error) {
	type acc struct {
		labels []Label
		value  float64
		sk     *sketch.Sketch
	}
	type famAcc struct {
		help    string
		kind    Kind
		samples map[string]*acc
	}
	fams := make(map[string]*famAcc)
	for _, snap := range snaps {
		for _, f := range snap {
			fa := fams[f.Name]
			if fa == nil {
				fa = &famAcc{help: f.Help, kind: f.Kind, samples: make(map[string]*acc)}
				fams[f.Name] = fa
			} else if fa.kind != f.Kind {
				return nil, fmt.Errorf("metrics: merge kind conflict on %s: %s vs %s", f.Name, fa.kind, f.Kind)
			}
			for _, sm := range f.Samples {
				sig := labelSignature(sm.Labels)
				a := fa.samples[sig]
				if a == nil {
					a = &acc{labels: copyLabels(sm.Labels)}
					fa.samples[sig] = a
				}
				if f.Kind == KindSummary {
					if sm.Sketch == nil {
						continue
					}
					if a.sk == nil {
						a.sk = sm.Sketch.Clone()
					} else if err := a.sk.Merge(sm.Sketch); err != nil {
						return nil, fmt.Errorf("metrics: merge %s: %w", f.Name, err)
					}
					continue
				}
				a.value += sm.Value
			}
		}
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make(Snapshot, 0, len(names))
	for _, n := range names {
		fa := fams[n]
		samples := make([]Sample, 0, len(fa.samples))
		for _, a := range fa.samples {
			samples = append(samples, Sample{Labels: a.labels, Value: a.value, Sketch: a.sk})
		}
		sortSamples(samples)
		out = append(out, Family{Name: n, Help: fa.help, Kind: fa.kind, Samples: samples})
	}
	return out, nil
}
