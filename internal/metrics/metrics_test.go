package metrics

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/sketch"
)

// TestExpositionGolden pins the rendered output byte for byte: family
// ordering by name, sample ordering by label signature, sorted labels
// inside a sample, summary quantile lines derived from the sketch, and
// no timestamps anywhere.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()

	g := r.Gauge("test_active_flows", "Open flows.")
	g.Set(7)
	c := r.Counter("test_packets_total", "Packets seen.", L("dir", "up"))
	c.Add(1500)
	r.Counter("test_packets_total", "Packets seen.", L("dir", "down")).Add(42)
	q := r.Quantile("test_rtt_ms", "Per-connection RTT.", 0, L("app", "web"))
	for i := 1; i <= 100; i++ {
		q.Observe(float64(i))
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := b.String()

	want := strings.Join([]string{
		`# HELP test_active_flows Open flows.`,
		`# TYPE test_active_flows gauge`,
		`test_active_flows 7`,
		`# HELP test_packets_total Packets seen.`,
		`# TYPE test_packets_total counter`,
		`test_packets_total{dir="down"} 42`,
		`test_packets_total{dir="up"} 1500`,
		`# HELP test_rtt_ms Per-connection RTT.`,
		`# TYPE test_rtt_ms summary`,
		`test_rtt_ms{app="web",quantile="0.5"} ` + firstLineValue(t, got, `test_rtt_ms{app="web",quantile="0.5"}`),
		`test_rtt_ms{app="web",quantile="0.95"} ` + firstLineValue(t, got, `test_rtt_ms{app="web",quantile="0.95"}`),
		`test_rtt_ms{app="web",quantile="0.99"} ` + firstLineValue(t, got, `test_rtt_ms{app="web",quantile="0.99"}`),
		`test_rtt_ms_sum{app="web"} 5050`,
		`test_rtt_ms_count{app="web"} 100`,
	}, "\n") + "\n"

	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The quantile values themselves obey the sketch's accuracy bound.
	snap := r.Gather()
	for _, f := range snap {
		if f.Name != "test_rtt_ms" {
			continue
		}
		sk := f.Samples[0].Sketch
		for q, exact := range map[float64]float64{0.5: 50, 0.95: 95, 0.99: 99} {
			got := sk.Quantile(q)
			if math.Abs(got-exact)/exact > 0.02 {
				t.Errorf("q%.2f = %.2f, want within 2%% of %.0f", q, got, exact)
			}
		}
	}

	// Rendering twice with no traffic in between is byte-identical
	// (determinism is what golden tests downstream rely on).
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if b2.String() != got {
		t.Fatal("second render differs from first with no writes in between")
	}
}

// firstLineValue extracts the value rendered for a series prefix — the
// sketch's estimate is deterministic but not worth hard-coding.
func firstLineValue(t *testing.T, expo, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			return strings.TrimPrefix(line, prefix+" ")
		}
	}
	t.Fatalf("no line with prefix %q in:\n%s", prefix, expo)
	return ""
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", "a\\b\"c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\\b\"c\nd"} 1` + "\n"
	if got := b.String(); got != "# TYPE esc_total counter\n"+want {
		t.Fatalf("escaping: got %q", got)
	}
}

func TestRegistrationIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h", L("k", "v"))
	b := r.Counter("same_total", "h", L("k", "v"))
	if a != b {
		t.Fatal("identical registration returned distinct counters")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("value = %d, want 3", b.Value())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("same_total", "h")
}

func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-0.5)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 4000 {
		t.Fatalf("gauge = %v, want 4000", got)
	}
}

// TestMergeEquivalence is the sharded-vs-unsharded property at the
// registry level: splitting a stream of observations across N
// registries and merging their snapshots renders byte-identically to
// one registry that saw everything.
func TestMergeEquivalence(t *testing.T) {
	const shards = 4
	one := NewRegistry()
	parts := make([]*Registry, shards)
	for i := range parts {
		parts[i] = NewRegistry()
	}

	instrument := func(r *Registry) (*Counter, *Quantile) {
		return r.Counter("m_records_total", "records", L("src", "upload")),
			r.Quantile("m_rtt_ms", "rtt", 0)
	}
	oc, oq := instrument(one)
	for i := 1; i <= 4000; i++ {
		v := float64(i % 997)
		oc.Inc()
		oq.Observe(v + 1)
		pc, pq := instrument(parts[i%shards])
		pc.Inc()
		pq.Observe(v + 1)
	}
	// A gauge present in only some shards still merges (missing = 0).
	parts[2].Gauge("m_backlog", "depth").Set(5)
	one.Gauge("m_backlog", "depth").Set(5)

	snaps := make([]Snapshot, shards)
	for i, p := range parts {
		snaps[i] = p.Gather()
	}
	merged, err := Merge(snaps...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}

	var mb, ob strings.Builder
	if err := merged.WritePrometheus(&mb); err != nil {
		t.Fatal(err)
	}
	if err := one.Gather().WritePrometheus(&ob); err != nil {
		t.Fatal(err)
	}
	if mb.String() != ob.String() {
		t.Fatalf("merged view differs from single registry:\n--- merged ---\n%s--- single ---\n%s", mb.String(), ob.String())
	}
}

func TestMergeKindConflict(t *testing.T) {
	a := NewRegistry()
	a.Counter("x", "").Inc()
	b := NewRegistry()
	b.Gauge("x", "").Set(1)
	if _, err := Merge(a.Gather(), b.Gather()); err == nil {
		t.Fatal("kind conflict merged without error")
	}
}

// TestScrapeUnderConcurrentWrites is the -race half of the coverage:
// every instrument type written from many goroutines while scrapes,
// gathers, and late registrations run concurrently.
func TestScrapeUnderConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rc_total", "")
	g := r.Gauge("rc_gauge", "")
	q := r.Quantile("rc_rtt", "", 0)
	r.CounterFunc("rc_func_total", "", func() float64 { return float64(c.Value()) })
	r.CollectGauges("rc_dyn", "", func() []Sample {
		return []Sample{{Labels: []Label{L("w", "0")}, Value: g.Value()}}
	})

	const perWriter = 2000
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; n < perWriter; n++ {
				c.Inc()
				g.Set(float64(n))
				q.Observe(float64(n%100 + 1))
				if n%64 == 0 {
					// Late registration racing the scrape loop.
					r.Counter("rc_late_total", "", L("id", string(rune('a'+id)))).Inc()
				}
			}
		}(i)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if !strings.Contains(b.String(), "rc_total") {
			t.Fatal("scrape lost a family")
		}
	}
	wg.Wait()

	if v, ok := r.Gather().Get("rc_total"); !ok || v != 4*perWriter {
		t.Fatalf("rc_total = %v ok=%v, want %d", v, ok, 4*perWriter)
	}
}

// TestDynamicCollectors covers the scrape-time registration surface:
// GaugeFunc reads a live value, CollectCounters and CollectSummaries
// produce label sets only known at gather time.
func TestDynamicCollectors(t *testing.T) {
	r := NewRegistry()

	depth := 3.0
	r.GaugeFunc("test_queue_depth", "Live queue depth.", func() float64 { return depth })

	r.CollectCounters("test_worker_packets_total", "Per-worker packets.", func() []Sample {
		return []Sample{
			{Labels: []Label{L("worker", "0")}, Value: 10},
			{Labels: []Label{L("worker", "1")}, Value: 32},
		}
	})

	sk := sketch.New(0)
	for i := 1; i <= 50; i++ {
		sk.Add(float64(i))
	}
	r.CollectSummaries("test_shard_rtt_ms", "Per-shard RTT.", func() []Sample {
		return []Sample{{Labels: []Label{L("shard", "0")}, Sketch: sk}}
	})

	snap := r.Gather()
	if v, ok := snap.Get("test_queue_depth"); !ok || v != 3 {
		t.Fatalf("gauge func: got %v %v, want 3 true", v, ok)
	}
	if v, ok := snap.Get("test_worker_packets_total", L("worker", "1")); !ok || v != 32 {
		t.Fatalf("collected counter: got %v %v, want 32 true", v, ok)
	}

	// The gauge func is read per gather, not captured once.
	depth = 9
	if v, _ := r.Gather().Get("test_queue_depth"); v != 9 {
		t.Fatalf("gauge func rereads: got %v, want 9", v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`test_worker_packets_total{worker="0"} 10`,
		`test_shard_rtt_ms_count{shard="0"} 50`,
		`test_shard_rtt_ms{shard="0",quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestQuantileCount pins the static summary's observation counter.
func TestQuantileCount(t *testing.T) {
	r := NewRegistry()
	q := r.Quantile("test_lat_ms", "Latency.", 0)
	if q.Count() != 0 {
		t.Fatalf("fresh quantile count = %d, want 0", q.Count())
	}
	for i := 0; i < 17; i++ {
		q.Observe(float64(i))
	}
	if q.Count() != 17 {
		t.Fatalf("quantile count = %d, want 17", q.Count())
	}
}

// TestHandler serves the registry over HTTP and checks status,
// content type and body.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_hits_total", "Hits.").Add(5)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.Contains(string(body), "test_hits_total 5") {
		t.Fatalf("body missing counter:\n%s", body)
	}
}
