// Package metrics is the reproduction's observability registry: a
// zero-dependency, concurrency-safe set of named instruments —
// counters, gauges, and sketch-backed quantile summaries — rendered in
// the Prometheus text exposition format and snapshottable for tests
// and dashboards.
//
// Two design decisions keep the hot paths honest:
//
//   - Instrumentation is pull-based wherever a value already exists.
//     The engine, collector, and fleet all keep their hot counters as
//     atomics; CounterFunc/GaugeFunc/Collect* register a scrape-time
//     read over those atomics instead of adding a second write to the
//     packet path. Enabling metrics therefore costs nothing until
//     something scrapes, and a scrape costs O(instruments), not
//     O(traffic).
//
//   - Quantile instruments wrap internal/sketch (the DDSketch-style
//     mergeable sketch the collector already aggregates with), so the
//     p50/p95/p99 a scrape exposes carry the same ±alpha relative-error
//     guarantee as /v1/stats, and per-shard snapshots merge exactly
//     (bin-wise) into one truthful combined view — the property the
//     sharded collector's merged /metrics relies on.
//
// Rendering is deterministic: families sort by name, samples by label
// signature, and no timestamps are emitted — the golden-output tests
// depend on byte-stable scrapes.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sketch"
)

// Kind is an instrument family's type.
type Kind int

// Instrument kinds, mirroring the Prometheus exposition TYPE line.
const (
	KindCounter Kind = iota
	KindGauge
	KindSummary
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindSummary:
		return "summary"
	}
	return "untyped"
}

// Label is one name=value pair attached to a sample.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing instrument. Safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instrument. Safe for concurrent use (float bits
// behind one atomic word).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Quantile is a streaming quantile instrument: a mutex around the
// mergeable internal/sketch, so the p50/p95/p99 it exposes carry the
// sketch's relative-error guarantee and snapshots merge exactly.
type Quantile struct {
	mu sync.Mutex
	sk *sketch.Sketch
}

// Observe records one sample.
func (q *Quantile) Observe(v float64) {
	q.mu.Lock()
	q.sk.Add(v)
	q.mu.Unlock()
}

// Count returns the number of observations.
func (q *Quantile) Count() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sk.Count()
}

// snapshot clones the underlying sketch.
func (q *Quantile) snapshot() *sketch.Sketch {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sk.Clone()
}

// instrument is one registered static sample source.
type instrument struct {
	labels []Label

	ctr *Counter
	gge *Gauge
	qtl *Quantile
	fn  func() float64 // CounterFunc/GaugeFunc
}

// family is one metric name: a kind, a help line, its static
// instruments (by label signature) and its dynamic collectors.
type family struct {
	name string
	help string
	kind Kind

	mu      sync.Mutex
	insts   map[string]*instrument
	collect []func() []Sample
}

// Registry is a concurrency-safe set of instrument families.
// Registration methods are idempotent for identical (name, kind,
// labels) and panic on a kind conflict — two subsystems claiming one
// name with different types is a programming error worth failing loud
// on.
type Registry struct {
	mu  sync.RWMutex
	fam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fam: make(map[string]*family)}
}

// familyFor returns (creating if needed) the named family, enforcing
// kind consistency.
func (r *Registry) familyFor(name, help string, kind Kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, insts: make(map[string]*instrument)}
		r.fam[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// static registers (or returns the existing) instrument under the
// family for a label signature.
func (f *family) static(labels []Label, make func() *instrument) *instrument {
	sig := labelSignature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if in, ok := f.insts[sig]; ok {
		return in
	}
	in := make()
	f.insts[sig] = in
	return in
}

// Counter registers (idempotently) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	in := r.familyFor(name, help, KindCounter).static(labels, func() *instrument {
		return &instrument{labels: copyLabels(labels), ctr: &Counter{}}
	})
	return in.ctr
}

// Gauge registers (idempotently) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	in := r.familyFor(name, help, KindGauge).static(labels, func() *instrument {
		return &instrument{labels: copyLabels(labels), gge: &Gauge{}}
	})
	return in.gge
}

// Quantile registers (idempotently) a quantile summary with the given
// sketch accuracy (alpha <= 0 selects sketch.DefaultAlpha).
func (r *Registry) Quantile(name, help string, alpha float64, labels ...Label) *Quantile {
	in := r.familyFor(name, help, KindSummary).static(labels, func() *instrument {
		return &instrument{labels: copyLabels(labels), qtl: &Quantile{sk: sketch.New(alpha)}}
	})
	return in.qtl
}

// CounterFunc registers a counter whose value is read from fn at
// gather time — the cheap hook over an already-existing atomic.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.familyFor(name, help, KindCounter).static(labels, func() *instrument {
		return &instrument{labels: copyLabels(labels), fn: fn}
	})
}

// GaugeFunc registers a gauge whose value is read from fn at gather
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.familyFor(name, help, KindGauge).static(labels, func() *instrument {
		return &instrument{labels: copyLabels(labels), fn: fn}
	})
}

// CollectCounters registers a dynamic counter collector: fn is invoked
// at gather time and returns the family's samples, labels included —
// for label sets only known at runtime (per worker, per shard...).
func (r *Registry) CollectCounters(name, help string, fn func() []Sample) {
	f := r.familyFor(name, help, KindCounter)
	f.mu.Lock()
	f.collect = append(f.collect, fn)
	f.mu.Unlock()
}

// CollectGauges registers a dynamic gauge collector.
func (r *Registry) CollectGauges(name, help string, fn func() []Sample) {
	f := r.familyFor(name, help, KindGauge)
	f.mu.Lock()
	f.collect = append(f.collect, fn)
	f.mu.Unlock()
}

// CollectSummaries registers a dynamic summary collector; each
// returned Sample carries a Sketch.
func (r *Registry) CollectSummaries(name, help string, fn func() []Sample) {
	f := r.familyFor(name, help, KindSummary)
	f.mu.Lock()
	f.collect = append(f.collect, fn)
	f.mu.Unlock()
}

// Gather snapshots every family: static instruments are read, dynamic
// collectors invoked, samples sorted by label signature, families by
// name. The result is independent of the registry (sketches cloned).
func (r *Registry) Gather() Snapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fam))
	for _, f := range r.fam {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	snap := make(Snapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		samples := make([]Sample, 0, len(f.insts))
		for _, in := range f.insts {
			s := Sample{Labels: copyLabels(in.labels)}
			switch {
			case in.ctr != nil:
				s.Value = float64(in.ctr.Value())
			case in.gge != nil:
				s.Value = in.gge.Value()
			case in.qtl != nil:
				s.Sketch = in.qtl.snapshot()
			case in.fn != nil:
				s.Value = in.fn()
			}
			samples = append(samples, s)
		}
		collectors := append([]func() []Sample(nil), f.collect...)
		f.mu.Unlock()
		// Collectors run outside the family lock: they reach into other
		// subsystems (shard mutexes, selector mutexes) and must not hold
		// registry state while they do.
		for _, fn := range collectors {
			samples = append(samples, fn()...)
		}
		sortSamples(samples)
		snap = append(snap, Family{Name: f.name, Help: f.help, Kind: f.kind, Samples: samples})
	}
	return snap
}

func copyLabels(ls []Label) []Label {
	return append([]Label(nil), ls...)
}

// labelSignature renders labels into a stable ordering key.
func labelSignature(ls []Label) string {
	sorted := copyLabels(ls)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	sig := ""
	for _, l := range sorted {
		sig += l.Key + "\x00" + l.Value + "\x00"
	}
	return sig
}

func sortSamples(ss []Sample) {
	sort.Slice(ss, func(i, j int) bool {
		return labelSignature(ss[i].Labels) < labelSignature(ss[j].Labels)
	})
}
