package packet

import (
	"math/rand"
	"net/netip"
	"testing"
)

// checkPeekAgainstDecode asserts the PeekFlowKey contract for one input:
// it must succeed exactly when Decode succeeds, and on success the key
// must equal Flow of the decoded packet. Neither call may panic.
func checkPeekAgainstDecode(t *testing.T, raw []byte) {
	t.Helper()
	key, peekErr := PeekFlowKey(raw)
	pkt, decErr := Decode(raw)
	if (peekErr == nil) != (decErr == nil) {
		t.Fatalf("peek err %v vs decode err %v for %d bytes % x", peekErr, decErr, len(raw), raw)
	}
	if decErr != nil {
		return
	}
	if want := Flow(pkt); key != want {
		t.Fatalf("peeked %v, decoded %v", key, want)
	}
}

// randomValidPacket builds one well-formed packet of a random shape.
func randomValidPacket(rng *rand.Rand) []byte {
	var src, dst netip.AddrPort
	if rng.Intn(2) == 0 {
		src = netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(rng.Intn(256)), byte(rng.Intn(256))}), uint16(rng.Intn(65536)))
		dst = netip.AddrPortFrom(netip.AddrFrom4([4]byte{93, 184, byte(rng.Intn(256)), byte(rng.Intn(256))}), uint16(rng.Intn(65536)))
	} else {
		var a, b [16]byte
		rng.Read(a[:])
		rng.Read(b[:])
		a[0], b[0] = 0xfd, 0x20 // keep them plain IPv6, not 4-in-6
		src = netip.AddrPortFrom(netip.AddrFrom16(a), uint16(rng.Intn(65536)))
		dst = netip.AddrPortFrom(netip.AddrFrom16(b), uint16(rng.Intn(65536)))
	}
	payload := make([]byte, rng.Intn(256))
	rng.Read(payload)
	var p *Packet
	if rng.Intn(2) == 0 {
		opts := []byte(nil)
		if rng.Intn(2) == 0 {
			opts = MSSOption(uint16(500 + rng.Intn(1000)))
		}
		p = TCPPacket(src, dst, uint8(rng.Intn(64)), rng.Uint32(), rng.Uint32(), uint16(rng.Intn(65536)), opts, payload)
	} else {
		p = UDPPacket(src, dst, payload)
	}
	raw, err := p.Encode()
	if err != nil {
		panic(err)
	}
	return raw
}

// TestPeekFlowKeyMatchesDecode is the property test: over a large sample
// of valid IPv4/IPv6 TCP/UDP packets, every truncation of each, and
// random single-byte corruptions, PeekFlowKey and Decode agree.
func TestPeekFlowKeyMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		raw := randomValidPacket(rng)
		checkPeekAgainstDecode(t, raw)
		// Every truncated prefix must be rejected identically (and
		// without panicking).
		for cut := 0; cut < len(raw); cut++ {
			checkPeekAgainstDecode(t, raw[:cut])
		}
		// Corrupt one byte at a time in the headers; agreement must
		// survive arbitrary garbage in the validated fields.
		for j := 0; j < 8; j++ {
			mut := append([]byte(nil), raw...)
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			checkPeekAgainstDecode(t, mut)
		}
	}
}

// TestPeekFlowKeyNonTransport checks the ICMP-style case: protocols the
// relay does not handle still peek to the same (proto-0, port-0) key
// Flow produces, so the dispatcher routes them consistently.
func TestPeekFlowKeyNonTransport(t *testing.T) {
	src := netip.MustParseAddr("10.0.0.2")
	dst := netip.MustParseAddr("8.8.8.8")
	p := &Packet{
		IPv4:    &IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: src, Dst: dst},
		Payload: []byte{8, 0, 0, 0},
	}
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	key, err := PeekFlowKey(raw)
	if err != nil {
		t.Fatal(err)
	}
	if key.Proto != 0 || key.Src.Port() != 0 || key.Src.Addr() != src || key.Dst.Addr() != dst {
		t.Fatalf("ICMP key: %v", key)
	}
}

// TestPeekFlowKeyZeroAllocs is the hard acceptance gate for the
// dispatch fast path: peeking allocates nothing, for v4 and v6 alike.
func TestPeekFlowKeyZeroAllocs(t *testing.T) {
	v4, _ := TCPPacket(
		netip.MustParseAddrPort("10.0.0.2:4312"),
		netip.MustParseAddrPort("93.184.216.34:443"),
		FlagSYN, 1, 0, 65535, MSSOption(1460), nil).Encode()
	v6, _ := UDPPacket(
		netip.MustParseAddrPort("[fd00::2]:5353"),
		netip.MustParseAddrPort("[2606:2800:220:1::1]:53"),
		[]byte("query")).Encode()
	for name, raw := range map[string][]byte{"ipv4-tcp": v4, "ipv6-udp": v6} {
		raw := raw
		allocs := testing.AllocsPerRun(1000, func() {
			if _, err := PeekFlowKey(raw); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: PeekFlowKey allocs/op = %v, want 0", name, allocs)
		}
	}
}

// FuzzPeekFlowKey fuzzes the agreement property over arbitrary bytes.
func FuzzPeekFlowKey(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 16; i++ {
		f.Add(randomValidPacket(rng))
	}
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add([]byte{0x60, 0, 0, 0})
	short := make([]byte, 39)
	short[0] = 0x60
	f.Add(short)
	f.Fuzz(func(t *testing.T, raw []byte) {
		key, peekErr := PeekFlowKey(raw)
		pkt, decErr := Decode(raw)
		if (peekErr == nil) != (decErr == nil) {
			t.Fatalf("peek err %v vs decode err %v", peekErr, decErr)
		}
		if decErr == nil && key != Flow(pkt) {
			t.Fatalf("peeked %v, decoded %v", key, Flow(pkt))
		}
	})
}

// BenchmarkPeekFlowKey contrasts the peek with the full decode the
// dispatcher used to pay per packet; run with -benchmem to see the
// 0 allocs/op.
func BenchmarkPeekFlowKey(b *testing.B) {
	raw, _ := TCPPacket(
		netip.MustParseAddrPort("10.0.0.2:4312"),
		netip.MustParseAddrPort("93.184.216.34:443"),
		FlagACK, 7, 9, 65535, nil, make([]byte, 1200)).Encode()
	b.Run("peek", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := PeekFlowKey(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Decode(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}
