package packet

import (
	"encoding/binary"
	"net/netip"
)

// PeekFlowKey extracts the flow key {proto, src, dst} of a raw IP packet
// without decoding it: only the fixed header fields needed for routing
// are read, nothing is copied, and nothing is allocated (FlowKey and the
// netip types are plain values).
//
// This is the multi-worker dispatcher's fast path. Routing a tunnel
// packet to its pinned worker needs only the flow key, so the dispatcher
// peeks here and defers the full Decode — options, payload copy, header
// structs — to the worker that owns the flow's shard. The peek applies
// exactly the structural validation Decode applies to the fields it
// reads, so for every input the two agree: Decode succeeds if and only
// if PeekFlowKey succeeds, and on success the key equals Flow(decoded).
// The property test and fuzz target in peek_test.go pin this down.
func PeekFlowKey(raw []byte) (FlowKey, error) {
	if len(raw) < 1 {
		return FlowKey{}, ErrTruncated
	}
	switch raw[0] >> 4 {
	case 4:
		if len(raw) < 20 {
			return FlowKey{}, ErrTruncated
		}
		ihl := int(raw[0]&0x0f) * 4
		if ihl < 20 || len(raw) < ihl {
			return FlowKey{}, ErrBadHeader
		}
		totalLen := int(binary.BigEndian.Uint16(raw[2:4]))
		if totalLen < ihl || totalLen > len(raw) {
			return FlowKey{}, ErrBadHeader
		}
		src := netip.AddrFrom4([4]byte(raw[12:16]))
		dst := netip.AddrFrom4([4]byte(raw[16:20]))
		return peekTransport(raw[9], src, dst, raw[ihl:totalLen])
	case 6:
		if len(raw) < 40 {
			return FlowKey{}, ErrTruncated
		}
		payloadLen := int(binary.BigEndian.Uint16(raw[4:6]))
		if 40+payloadLen > len(raw) {
			return FlowKey{}, ErrBadHeader
		}
		src := netip.AddrFrom16([16]byte(raw[8:24]))
		dst := netip.AddrFrom16([16]byte(raw[24:40]))
		return peekTransport(raw[6], src, dst, raw[40:40+payloadLen])
	default:
		return FlowKey{}, ErrBadVersion
	}
}

// peekTransport reads the transport ports out of the segment, mirroring
// decodeTransport's validation. Non-TCP/UDP protocols yield the same
// key Flow produces for them: proto 0 and port-0 endpoints.
func peekTransport(proto uint8, src, dst netip.Addr, seg []byte) (FlowKey, error) {
	switch proto {
	case ProtoTCP:
		if len(seg) < 20 {
			return FlowKey{}, ErrTruncated
		}
		dataOff := int(seg[12]>>4) * 4
		if dataOff < 20 || dataOff > len(seg) {
			return FlowKey{}, ErrBadHeader
		}
		return FlowKey{
			Proto: ProtoTCP,
			Src:   netip.AddrPortFrom(src, binary.BigEndian.Uint16(seg[0:2])),
			Dst:   netip.AddrPortFrom(dst, binary.BigEndian.Uint16(seg[2:4])),
		}, nil
	case ProtoUDP:
		if len(seg) < 8 {
			return FlowKey{}, ErrTruncated
		}
		udpLen := int(binary.BigEndian.Uint16(seg[4:6]))
		if udpLen < 8 || udpLen > len(seg) {
			return FlowKey{}, ErrBadHeader
		}
		return FlowKey{
			Proto: ProtoUDP,
			Src:   netip.AddrPortFrom(src, binary.BigEndian.Uint16(seg[0:2])),
			Dst:   netip.AddrPortFrom(dst, binary.BigEndian.Uint16(seg[2:4])),
		}, nil
	default:
		return FlowKey{
			Src: netip.AddrPortFrom(src, 0),
			Dst: netip.AddrPortFrom(dst, 0),
		}, nil
	}
}
