package packet

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	v4a = netip.MustParseAddr("10.0.0.2")
	v4b = netip.MustParseAddr("93.184.216.34")
	v6a = netip.MustParseAddr("fd00::2")
	v6b = netip.MustParseAddr("2606:2800:220:1::1")
)

func TestTCPRoundTripIPv4(t *testing.T) {
	src := netip.AddrPortFrom(v4a, 40001)
	dst := netip.AddrPortFrom(v4b, 443)
	p := TCPPacket(src, dst, FlagSYN, 1000, 0, 65535, MSSOption(1460), nil)
	raw, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := VerifyChecksums(raw); err != nil {
		t.Fatalf("checksums: %v", err)
	}
	q, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if q.Src() != src || q.Dst() != dst {
		t.Errorf("addrs: got %v->%v want %v->%v", q.Src(), q.Dst(), src, dst)
	}
	if !q.TCP.Has(FlagSYN) || q.TCP.Has(FlagACK) {
		t.Errorf("flags: got %08b", q.TCP.Flags)
	}
	if q.TCP.Seq != 1000 {
		t.Errorf("seq: got %d", q.TCP.Seq)
	}
	mss, ok := ParseMSS(q.TCP.Options)
	if !ok || mss != 1460 {
		t.Errorf("MSS: got %d,%v want 1460,true", mss, ok)
	}
}

func TestTCPRoundTripIPv6(t *testing.T) {
	src := netip.AddrPortFrom(v6a, 40001)
	dst := netip.AddrPortFrom(v6b, 443)
	payload := []byte("ipv6 payload")
	p := TCPPacket(src, dst, FlagACK|FlagPSH, 7, 9, 1024, nil, payload)
	raw, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := VerifyChecksums(raw); err != nil {
		t.Fatalf("checksums: %v", err)
	}
	q, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if q.IPv6 == nil {
		t.Fatal("expected IPv6 header")
	}
	if string(q.Payload) != string(payload) {
		t.Errorf("payload: got %q", q.Payload)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	src := netip.AddrPortFrom(v4a, 5353)
	dst := netip.AddrPortFrom(v4b, 53)
	p := UDPPacket(src, dst, []byte{0xde, 0xad})
	raw, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := VerifyChecksums(raw); err != nil {
		t.Fatalf("checksums: %v", err)
	}
	q, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !q.IsUDP() || q.Dst().Port() != 53 {
		t.Errorf("got %v", q)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"badVersion", []byte{0x50, 0, 0, 0}, ErrBadVersion},
		{"shortIPv4", append([]byte{0x45}, make([]byte, 9)...), ErrTruncated},
		{"shortIPv6", append([]byte{0x60}, make([]byte, 10)...), ErrTruncated},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode(c.raw); !errors.Is(err, c.want) {
				t.Errorf("got %v want %v", err, c.want)
			}
		})
	}
}

func TestDecodeBadIHL(t *testing.T) {
	raw := make([]byte, 20)
	raw[0] = 0x43 // version 4, IHL 3 (<5): malformed
	if _, err := Decode(raw); !errors.Is(err, ErrBadHeader) {
		t.Errorf("got %v want ErrBadHeader", err)
	}
}

func TestDecodeTotalLenBeyondBuffer(t *testing.T) {
	src := netip.AddrPortFrom(v4a, 1)
	dst := netip.AddrPortFrom(v4b, 2)
	raw, _ := TCPPacket(src, dst, FlagSYN, 0, 0, 0, nil, nil).Encode()
	raw[2], raw[3] = 0xff, 0xff // total length lies
	if _, err := Decode(raw); !errors.Is(err, ErrBadHeader) {
		t.Errorf("got %v want ErrBadHeader", err)
	}
}

func TestChecksumCorruptionDetected(t *testing.T) {
	src := netip.AddrPortFrom(v4a, 40001)
	dst := netip.AddrPortFrom(v4b, 80)
	raw, _ := TCPPacket(src, dst, FlagACK, 5, 6, 100, nil, []byte("x")).Encode()
	raw[len(raw)-1] ^= 0xff
	if err := VerifyChecksums(raw); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupted payload: got %v want ErrBadChecksum", err)
	}
	raw2, _ := TCPPacket(src, dst, FlagACK, 5, 6, 100, nil, []byte("x")).Encode()
	raw2[12] ^= 0x01 // corrupt src IP
	if err := VerifyChecksums(raw2); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupted header: got %v want ErrBadChecksum", err)
	}
}

func TestFlagString(t *testing.T) {
	h := &TCPHeader{Flags: FlagSYN | FlagACK}
	if h.FlagString() != "S." {
		t.Errorf("got %q want %q", h.FlagString(), "S.")
	}
}

func TestParseMSSMalformed(t *testing.T) {
	cases := [][]byte{
		{OptMSS},               // truncated kind only
		{OptMSS, 4, 0x05},      // short value
		{OptMSS, 3, 0, 0},      // wrong length
		{OptMSS, 1, 0, 0},      // length below minimum
		{OptEnd, OptMSS, 4, 5}, // END before MSS
		{OptTimestamp, 10, 0},  // truncated other option
	}
	for i, opts := range cases {
		if _, ok := ParseMSS(opts); ok {
			t.Errorf("case %d: malformed options parsed as valid", i)
		}
	}
}

func TestParseMSSSkipsNOPs(t *testing.T) {
	opts := []byte{OptNOP, OptNOP, OptMSS, 4, 0x05, 0xb4}
	mss, ok := ParseMSS(opts)
	if !ok || mss != 1460 {
		t.Errorf("got %d,%v", mss, ok)
	}
}

func TestPadOptions(t *testing.T) {
	if got := PadOptions([]byte{1, 2, 3}); len(got)%4 != 0 {
		t.Errorf("padded length %d not multiple of 4", len(got))
	}
	orig := []byte{1, 2, 3, 4}
	if got := PadOptions(orig); len(got) != 4 {
		t.Errorf("already-aligned options grew to %d", len(got))
	}
}

func TestFlowKeyReverse(t *testing.T) {
	src := netip.AddrPortFrom(v4a, 40001)
	dst := netip.AddrPortFrom(v4b, 80)
	p := TCPPacket(src, dst, FlagSYN, 0, 0, 0, nil, nil)
	k := Flow(p)
	if k.Proto != ProtoTCP || k.Src != src || k.Dst != dst {
		t.Errorf("flow: %v", k)
	}
	r := k.Reverse()
	if r.Src != dst || r.Dst != src {
		t.Errorf("reverse: %v", r)
	}
	if r.Reverse() != k {
		t.Error("double reverse is not identity")
	}
}

// TestQuickTCPRoundTrip is a property test: any header/payload
// combination survives encode/decode byte-identically in the fields.
func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8, window uint16, payload []byte) bool {
		src := netip.AddrPortFrom(v4a, srcPort)
		dst := netip.AddrPortFrom(v4b, dstPort)
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := TCPPacket(src, dst, flags&0x3f, seq, ack, window, nil, payload)
		raw, err := p.Encode()
		if err != nil {
			return false
		}
		if VerifyChecksums(raw) != nil {
			return false
		}
		q, err := Decode(raw)
		if err != nil {
			return false
		}
		return q.TCP.SrcPort == srcPort && q.TCP.DstPort == dstPort &&
			q.TCP.Seq == seq && q.TCP.Ack == ack &&
			q.TCP.Flags == flags&0x3f && q.TCP.Window == window &&
			string(q.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickUDPRoundTrip is the UDP property test, both address
// families.
func TestQuickUDPRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, payload []byte, useV6 bool) bool {
		var src, dst netip.AddrPort
		if useV6 {
			src = netip.AddrPortFrom(v6a, srcPort)
			dst = netip.AddrPortFrom(v6b, dstPort)
		} else {
			src = netip.AddrPortFrom(v4a, srcPort)
			dst = netip.AddrPortFrom(v4b, dstPort)
		}
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := UDPPacket(src, dst, payload)
		raw, err := p.Encode()
		if err != nil {
			return false
		}
		if VerifyChecksums(raw) != nil {
			return false
		}
		q, err := Decode(raw)
		if err != nil {
			return false
		}
		return q.Src() == src && q.Dst() == dst && string(q.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics fuzzes the decoder with random bytes: it
// must return an error or a packet, never panic.
func TestQuickDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(120)
		raw := make([]byte, n)
		rng.Read(raw)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %x: %v", raw, r)
				}
			}()
			_, _ = Decode(raw)
			_ = VerifyChecksums(raw)
		}()
	}
}

func TestEncodeRejectsMismatchedFamilies(t *testing.T) {
	p := &Packet{
		IPv4: &IPv4Header{Src: v6a, Dst: v4b, TTL: 64},
		TCP:  &TCPHeader{},
	}
	if _, err := p.Encode(); err == nil {
		t.Error("IPv4 header with IPv6 address encoded without error")
	}
}

func TestEncodeRejectsUnpaddedOptions(t *testing.T) {
	src := netip.AddrPortFrom(v4a, 1)
	dst := netip.AddrPortFrom(v4b, 2)
	p := &Packet{
		IPv4: &IPv4Header{Src: src.Addr(), Dst: dst.Addr(), TTL: 64},
		TCP:  &TCPHeader{SrcPort: 1, DstPort: 2, Options: []byte{2, 4, 5}},
	}
	if _, err := p.Encode(); err == nil {
		t.Error("unpadded TCP options encoded without error")
	}
}

func TestUDPZeroChecksumRule(t *testing.T) {
	// A UDP checksum that computes to zero must be transmitted as
	// 0xffff (RFC 768). Construct payloads until one hits the zero
	// case is flaky; instead verify the verifier accepts a zeroed
	// checksum field (checksum disabled).
	src := netip.AddrPortFrom(v4a, 9)
	dst := netip.AddrPortFrom(v4b, 10)
	raw, _ := UDPPacket(src, dst, []byte("abc")).Encode()
	// Zero the UDP checksum field: IPv4 header is 20 bytes; UDP csum at
	// offset 20+6. Then fix nothing else: verifier must treat as "no
	// checksum".
	raw[26], raw[27] = 0, 0
	if err := VerifyChecksums(raw); err != nil {
		t.Errorf("zero (disabled) UDP checksum rejected: %v", err)
	}
}
