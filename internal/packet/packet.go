// Package packet implements the IP/TCP/UDP wire codecs MopEye needs to
// parse packets captured from the TUN device and to synthesise the
// user-space TCP stack's replies (§2.2, §2.3 of the paper).
//
// A TUN device is a point-to-point IP link, so everything read from it is
// a raw IP packet. MopEye parses only what it needs: addresses, ports,
// TCP flags, sequence/acknowledgement numbers, and the MSS option it
// writes into SYN-ACKs (§3.4). The codecs here are nevertheless complete
// enough to round-trip arbitrary headers, which the property tests
// exercise.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Protocol numbers from the IANA registry; only the ones MopEye relays.
const (
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoICMP = 1
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: unsupported IP version")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadHeader   = errors.New("packet: malformed header")
)

// IPv4Header is a decoded IPv4 header. Options are preserved verbatim.
type IPv4Header struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment field
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      netip.Addr
	Dst      netip.Addr
	Options  []byte
}

// HeaderLen returns the encoded header length in bytes.
func (h *IPv4Header) HeaderLen() int { return 20 + len(h.Options) }

// IPv6Header is a decoded IPv6 fixed header. Extension headers are not
// relayed by MopEye and are treated as payload-opaque.
type IPv6Header struct {
	TrafficClass uint8
	FlowLabel    uint32
	NextHeader   uint8
	HopLimit     uint8
	Src          netip.Addr
	Dst          netip.Addr
}

// TCPHeader is a decoded TCP header.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Urgent  uint16
	Options []byte // raw options, already padded to 4-byte multiple
}

// HeaderLen returns the encoded header length in bytes.
func (h *TCPHeader) HeaderLen() int { return 20 + len(h.Options) }

// Has reports whether all given flag bits are set.
func (h *TCPHeader) Has(flags uint8) bool { return h.Flags&flags == flags }

// FlagString renders the flags in tcpdump style, e.g. "S", "S.", "F.".
func (h *TCPHeader) FlagString() string {
	s := ""
	if h.Has(FlagSYN) {
		s += "S"
	}
	if h.Has(FlagFIN) {
		s += "F"
	}
	if h.Has(FlagRST) {
		s += "R"
	}
	if h.Has(FlagPSH) {
		s += "P"
	}
	if h.Has(FlagACK) {
		s += "."
	}
	return s
}

// UDPHeader is a decoded UDP header.
type UDPHeader struct {
	SrcPort uint16
	DstPort uint16
}

// Packet is a fully decoded IP packet, the unit MainWorker processes.
type Packet struct {
	// Exactly one of IPv4/IPv6 is non-nil.
	IPv4 *IPv4Header
	IPv6 *IPv6Header
	// Exactly one of TCP/UDP is non-nil for relayed packets; both nil
	// for protocols MopEye does not handle.
	TCP     *TCPHeader
	UDP     *UDPHeader
	Payload []byte
}

// Src returns the source address and transport port.
func (p *Packet) Src() netip.AddrPort { return netip.AddrPortFrom(p.srcAddr(), p.srcPort()) }

// Dst returns the destination address and transport port.
func (p *Packet) Dst() netip.AddrPort { return netip.AddrPortFrom(p.dstAddr(), p.dstPort()) }

func (p *Packet) srcAddr() netip.Addr {
	if p.IPv4 != nil {
		return p.IPv4.Src
	}
	if p.IPv6 != nil {
		return p.IPv6.Src
	}
	return netip.Addr{}
}

func (p *Packet) dstAddr() netip.Addr {
	if p.IPv4 != nil {
		return p.IPv4.Dst
	}
	if p.IPv6 != nil {
		return p.IPv6.Dst
	}
	return netip.Addr{}
}

func (p *Packet) srcPort() uint16 {
	if p.TCP != nil {
		return p.TCP.SrcPort
	}
	if p.UDP != nil {
		return p.UDP.SrcPort
	}
	return 0
}

func (p *Packet) dstPort() uint16 {
	if p.TCP != nil {
		return p.TCP.DstPort
	}
	if p.UDP != nil {
		return p.UDP.DstPort
	}
	return 0
}

// IsTCP reports whether the packet carries TCP.
func (p *Packet) IsTCP() bool { return p.TCP != nil }

// IsUDP reports whether the packet carries UDP.
func (p *Packet) IsUDP() bool { return p.UDP != nil }

// String renders a compact tcpdump-like one-liner, used by debug logging
// and the sniffer baseline.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		return fmt.Sprintf("%s > %s: Flags [%s] seq %d ack %d win %d len %d",
			p.Src(), p.Dst(), p.TCP.FlagString(), p.TCP.Seq, p.TCP.Ack, p.TCP.Window, len(p.Payload))
	case p.UDP != nil:
		return fmt.Sprintf("%s > %s: UDP len %d", p.Src(), p.Dst(), len(p.Payload))
	default:
		return fmt.Sprintf("%s > %s: proto? len %d", p.srcAddr(), p.dstAddr(), len(p.Payload))
	}
}

// Decode parses a raw IP packet as read from the TUN device.
// It validates structural invariants (lengths, header sizes) but does not
// verify checksums; VerifyChecksums does that separately because packets
// synthesised inside the phone never traverse hardware that could corrupt
// them, mirroring how real TUN stacks skip validation.
//
// The returned packet is zero-copy: Payload and the header Options
// slices alias raw, so ownership of raw moves to the packet and the
// caller must not modify or reuse the buffer afterwards. Every producer
// feeding Decode already satisfies this — the TUN device copies packets
// into its queues on enqueue, making each dequeued buffer single-owner.
// (Payload copying was the top entry of the loopback ceiling allocation
// profile: one full payload copy per relayed packet, all GC pressure.)
func Decode(raw []byte) (*Packet, error) {
	if len(raw) < 1 {
		return nil, ErrTruncated
	}
	switch raw[0] >> 4 {
	case 4:
		return decodeIPv4(raw)
	case 6:
		return decodeIPv6(raw)
	default:
		return nil, ErrBadVersion
	}
}

func decodeIPv4(raw []byte) (*Packet, error) {
	if len(raw) < 20 {
		return nil, ErrTruncated
	}
	ihl := int(raw[0]&0x0f) * 4
	if ihl < 20 || len(raw) < ihl {
		return nil, ErrBadHeader
	}
	totalLen := int(binary.BigEndian.Uint16(raw[2:4]))
	if totalLen < ihl || totalLen > len(raw) {
		return nil, ErrBadHeader
	}
	h := &IPv4Header{
		TOS:      raw[1],
		ID:       binary.BigEndian.Uint16(raw[4:6]),
		Flags:    raw[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(raw[6:8]) & 0x1fff,
		TTL:      raw[8],
		Protocol: raw[9],
	}
	src, _ := netip.AddrFromSlice(raw[12:16])
	dst, _ := netip.AddrFromSlice(raw[16:20])
	h.Src, h.Dst = src, dst
	if ihl > 20 {
		h.Options = raw[20:ihl:ihl]
	}
	p := &Packet{IPv4: h}
	return decodeTransport(p, h.Protocol, raw[ihl:totalLen])
}

func decodeIPv6(raw []byte) (*Packet, error) {
	if len(raw) < 40 {
		return nil, ErrTruncated
	}
	payloadLen := int(binary.BigEndian.Uint16(raw[4:6]))
	if 40+payloadLen > len(raw) {
		return nil, ErrBadHeader
	}
	h := &IPv6Header{
		TrafficClass: (raw[0]&0x0f)<<4 | raw[1]>>4,
		FlowLabel:    binary.BigEndian.Uint32(raw[0:4]) & 0x000fffff,
		NextHeader:   raw[6],
		HopLimit:     raw[7],
	}
	src, _ := netip.AddrFromSlice(raw[8:24])
	dst, _ := netip.AddrFromSlice(raw[24:40])
	h.Src, h.Dst = src, dst
	p := &Packet{IPv6: h}
	return decodeTransport(p, h.NextHeader, raw[40:40+payloadLen])
}

func decodeTransport(p *Packet, proto uint8, seg []byte) (*Packet, error) {
	switch proto {
	case ProtoTCP:
		if len(seg) < 20 {
			return nil, ErrTruncated
		}
		dataOff := int(seg[12]>>4) * 4
		if dataOff < 20 || dataOff > len(seg) {
			return nil, ErrBadHeader
		}
		t := &TCPHeader{
			SrcPort: binary.BigEndian.Uint16(seg[0:2]),
			DstPort: binary.BigEndian.Uint16(seg[2:4]),
			Seq:     binary.BigEndian.Uint32(seg[4:8]),
			Ack:     binary.BigEndian.Uint32(seg[8:12]),
			Flags:   seg[13] & 0x3f,
			Window:  binary.BigEndian.Uint16(seg[14:16]),
			Urgent:  binary.BigEndian.Uint16(seg[18:20]),
		}
		if dataOff > 20 {
			t.Options = seg[20:dataOff:dataOff]
		}
		p.TCP = t
		p.Payload = seg[dataOff:]
	case ProtoUDP:
		if len(seg) < 8 {
			return nil, ErrTruncated
		}
		udpLen := int(binary.BigEndian.Uint16(seg[4:6]))
		if udpLen < 8 || udpLen > len(seg) {
			return nil, ErrBadHeader
		}
		p.UDP = &UDPHeader{
			SrcPort: binary.BigEndian.Uint16(seg[0:2]),
			DstPort: binary.BigEndian.Uint16(seg[2:4]),
		}
		p.Payload = seg[8:udpLen:udpLen]
	default:
		p.Payload = seg
	}
	return p, nil
}

// Encode serialises the packet to raw bytes with correct lengths and
// checksums. The inverse of Decode.
func (p *Packet) Encode() ([]byte, error) {
	return p.AppendEncode(nil)
}

// AppendEncode serialises the packet onto dst and returns the extended
// slice. When dst has enough spare capacity (an MTU-sized buffer from a
// sync.Pool, as the engine's emit path uses), encoding performs no
// allocation at all — the transport segment is written directly into
// its final position instead of being built separately and copied.
func (p *Packet) AppendEncode(dst []byte) ([]byte, error) {
	switch {
	case p.IPv4 != nil:
		return p.appendIPv4(dst)
	case p.IPv6 != nil:
		return p.appendIPv6(dst)
	default:
		return dst, ErrBadHeader
	}
}

// transportSize returns the encoded transport-segment length and the IP
// protocol number (0 for a raw payload).
func (p *Packet) transportSize() (int, uint8, error) {
	switch {
	case p.TCP != nil:
		if len(p.TCP.Options)%4 != 0 {
			return 0, 0, fmt.Errorf("%w: TCP options length %d not a multiple of 4", ErrBadHeader, len(p.TCP.Options))
		}
		return 20 + len(p.TCP.Options) + len(p.Payload), ProtoTCP, nil
	case p.UDP != nil:
		return 8 + len(p.Payload), ProtoUDP, nil
	default:
		return len(p.Payload), 0, nil
	}
}

// fillTransport encodes the transport segment into seg, which has
// exactly the length transportSize reported. seg may contain stale
// bytes (it can come from a recycled buffer); every byte is written.
func (p *Packet) fillTransport(seg []byte, src, dst netip.Addr) {
	switch {
	case p.TCP != nil:
		t := p.TCP
		hlen := 20 + len(t.Options)
		binary.BigEndian.PutUint16(seg[0:2], t.SrcPort)
		binary.BigEndian.PutUint16(seg[2:4], t.DstPort)
		binary.BigEndian.PutUint32(seg[4:8], t.Seq)
		binary.BigEndian.PutUint32(seg[8:12], t.Ack)
		seg[12] = uint8(hlen/4) << 4
		seg[13] = t.Flags
		binary.BigEndian.PutUint16(seg[14:16], t.Window)
		binary.BigEndian.PutUint16(seg[16:18], 0)
		binary.BigEndian.PutUint16(seg[18:20], t.Urgent)
		copy(seg[20:], t.Options)
		copy(seg[hlen:], p.Payload)
		csum := transportChecksum(ProtoTCP, src, dst, seg)
		binary.BigEndian.PutUint16(seg[16:18], csum)
	case p.UDP != nil:
		binary.BigEndian.PutUint16(seg[0:2], p.UDP.SrcPort)
		binary.BigEndian.PutUint16(seg[2:4], p.UDP.DstPort)
		binary.BigEndian.PutUint16(seg[4:6], uint16(len(seg)))
		binary.BigEndian.PutUint16(seg[6:8], 0)
		copy(seg[8:], p.Payload)
		csum := transportChecksum(ProtoUDP, src, dst, seg)
		if csum == 0 {
			csum = 0xffff // RFC 768: transmitted zero means "no checksum"
		}
		binary.BigEndian.PutUint16(seg[6:8], csum)
	default:
		copy(seg, p.Payload)
	}
}

// grow extends b by n bytes, reusing capacity when available.
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n)
	copy(nb, b)
	return nb
}

func (p *Packet) appendIPv4(dst []byte) ([]byte, error) {
	h := p.IPv4
	if len(h.Options)%4 != 0 {
		return dst, fmt.Errorf("%w: IPv4 options length %d not a multiple of 4", ErrBadHeader, len(h.Options))
	}
	if !h.Src.Is4() || !h.Dst.Is4() {
		return dst, fmt.Errorf("%w: IPv4 header with non-IPv4 address", ErrBadHeader)
	}
	segLen, proto, err := p.transportSize()
	if err != nil {
		return dst, err
	}
	if proto != 0 {
		h.Protocol = proto
	}
	ihl := 20 + len(h.Options)
	base := len(dst)
	dst = grow(dst, ihl+segLen)
	raw := dst[base:]
	raw[0] = 4<<4 | uint8(ihl/4)
	raw[1] = h.TOS
	binary.BigEndian.PutUint16(raw[2:4], uint16(len(raw)))
	binary.BigEndian.PutUint16(raw[4:6], h.ID)
	binary.BigEndian.PutUint16(raw[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	raw[8] = h.TTL
	raw[9] = h.Protocol
	src := h.Src.As4()
	dstA := h.Dst.As4()
	copy(raw[12:16], src[:])
	copy(raw[16:20], dstA[:])
	copy(raw[20:ihl], h.Options)
	binary.BigEndian.PutUint16(raw[10:12], headerChecksum(raw[:ihl]))
	p.fillTransport(raw[ihl:], h.Src, h.Dst)
	return dst, nil
}

func (p *Packet) appendIPv6(dst []byte) ([]byte, error) {
	h := p.IPv6
	if !h.Src.Is6() || h.Src.Is4In6() || !h.Dst.Is6() || h.Dst.Is4In6() {
		return dst, fmt.Errorf("%w: IPv6 header with non-IPv6 address", ErrBadHeader)
	}
	segLen, proto, err := p.transportSize()
	if err != nil {
		return dst, err
	}
	if proto != 0 {
		h.NextHeader = proto
	}
	base := len(dst)
	dst = grow(dst, 40+segLen)
	raw := dst[base:]
	binary.BigEndian.PutUint32(raw[0:4], 6<<28|uint32(h.TrafficClass)<<20|h.FlowLabel&0x000fffff)
	binary.BigEndian.PutUint16(raw[4:6], uint16(segLen))
	raw[6] = h.NextHeader
	raw[7] = h.HopLimit
	src := h.Src.As16()
	dstA := h.Dst.As16()
	copy(raw[8:24], src[:])
	copy(raw[24:40], dstA[:])
	p.fillTransport(raw[40:], h.Src, h.Dst)
	return dst, nil
}

// headerChecksum computes the IPv4 header checksum over hdr with the
// checksum field zeroed by the caller (the field bytes are skipped).
func headerChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 { // checksum field itself
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// transportChecksum computes the TCP/UDP checksum including the
// IPv4/IPv6 pseudo-header. The checksum field inside seg must be zero.
func transportChecksum(proto uint8, src, dst netip.Addr, seg []byte) uint16 {
	var sum uint32
	addAddr := func(a netip.Addr) {
		if a.Is4() {
			b := a.As4()
			sum += uint32(binary.BigEndian.Uint16(b[0:2]))
			sum += uint32(binary.BigEndian.Uint16(b[2:4]))
		} else {
			b := a.As16()
			for i := 0; i < 16; i += 2 {
				sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
			}
		}
	}
	addAddr(src)
	addAddr(dst)
	sum += uint32(proto)
	sum += uint32(len(seg))
	for i := 0; i+1 < len(seg); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(seg[i : i+2]))
	}
	if len(seg)%2 == 1 {
		sum += uint32(seg[len(seg)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyChecksums checks the IPv4 header checksum and the transport
// checksum of a raw packet. It returns nil when both are valid (or when
// the packet is IPv6, which has no header checksum).
func VerifyChecksums(raw []byte) error {
	if len(raw) < 1 {
		return ErrTruncated
	}
	switch raw[0] >> 4 {
	case 4:
		if len(raw) < 20 {
			return ErrTruncated
		}
		ihl := int(raw[0]&0x0f) * 4
		if ihl < 20 || len(raw) < ihl {
			return ErrBadHeader
		}
		got := binary.BigEndian.Uint16(raw[10:12])
		if headerChecksum(raw[:ihl]) != got {
			return fmt.Errorf("%w: IPv4 header", ErrBadChecksum)
		}
		totalLen := int(binary.BigEndian.Uint16(raw[2:4]))
		if totalLen > len(raw) || totalLen < ihl {
			return ErrBadHeader
		}
		src, _ := netip.AddrFromSlice(raw[12:16])
		dst, _ := netip.AddrFromSlice(raw[16:20])
		return verifyTransport(raw[9], src, dst, raw[ihl:totalLen])
	case 6:
		if len(raw) < 40 {
			return ErrTruncated
		}
		payloadLen := int(binary.BigEndian.Uint16(raw[4:6]))
		if 40+payloadLen > len(raw) {
			return ErrBadHeader
		}
		src, _ := netip.AddrFromSlice(raw[8:24])
		dst, _ := netip.AddrFromSlice(raw[24:40])
		return verifyTransport(raw[6], src, dst, raw[40:40+payloadLen])
	default:
		return ErrBadVersion
	}
}

func verifyTransport(proto uint8, src, dst netip.Addr, seg []byte) error {
	var off int
	switch proto {
	case ProtoTCP:
		if len(seg) < 20 {
			return ErrTruncated
		}
		off = 16
	case ProtoUDP:
		if len(seg) < 8 {
			return ErrTruncated
		}
		off = 6
		if binary.BigEndian.Uint16(seg[6:8]) == 0 {
			return nil // checksum disabled
		}
	default:
		return nil
	}
	cp := append([]byte(nil), seg...)
	got := binary.BigEndian.Uint16(cp[off : off+2])
	binary.BigEndian.PutUint16(cp[off:off+2], 0)
	want := transportChecksum(proto, src, dst, cp)
	if proto == ProtoUDP && want == 0 {
		want = 0xffff
	}
	if want != got {
		return fmt.Errorf("%w: transport", ErrBadChecksum)
	}
	return nil
}
