package packet

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
)

// TCP option kinds MopEye cares about (§3.4: MSS in the SYN-ACK; window
// scale is mentioned as deliberately unused).
const (
	OptEnd       = 0
	OptNOP       = 1
	OptMSS       = 2
	OptWScale    = 3
	OptSACKPerm  = 4
	OptTimestamp = 8
)

// MSSOption builds the 4-byte MSS option MopEye writes into SYN-ACK
// packets, padded is unnecessary since it is already 4 bytes.
func MSSOption(mss uint16) []byte {
	return []byte{OptMSS, 4, byte(mss >> 8), byte(mss)}
}

// ParseMSS extracts the MSS option value from raw TCP options. ok is
// false when the option is absent or malformed.
func ParseMSS(options []byte) (mss uint16, ok bool) {
	for i := 0; i < len(options); {
		kind := options[i]
		switch kind {
		case OptEnd:
			return 0, false
		case OptNOP:
			i++
			continue
		}
		if i+1 >= len(options) {
			return 0, false
		}
		length := int(options[i+1])
		if length < 2 || i+length > len(options) {
			return 0, false
		}
		if kind == OptMSS {
			if length != 4 {
				return 0, false
			}
			return binary.BigEndian.Uint16(options[i+2 : i+4]), true
		}
		i += length
	}
	return 0, false
}

// PadOptions pads raw options with NOPs (then END) to a 4-byte multiple
// so they can be encoded.
func PadOptions(options []byte) []byte {
	rem := len(options) % 4
	if rem == 0 {
		return options
	}
	padded := append([]byte(nil), options...)
	for len(padded)%4 != 0 {
		padded = append(padded, OptNOP)
	}
	return padded
}

// Builder helpers. The user-space stack and the phone-side stack both
// construct packets constantly; these helpers keep call sites compact.

// TCPPacket builds an IPv4 or IPv6 TCP packet between two AddrPorts.
func TCPPacket(src, dst netip.AddrPort, flags uint8, seq, ack uint32, window uint16, options, payload []byte) *Packet {
	p := &Packet{
		TCP: &TCPHeader{
			SrcPort: src.Port(),
			DstPort: dst.Port(),
			Seq:     seq,
			Ack:     ack,
			Flags:   flags,
			Window:  window,
			Options: PadOptions(options),
		},
		Payload: payload,
	}
	setIPHeaders(p, src.Addr(), dst.Addr())
	return p
}

// UDPPacket builds an IPv4 or IPv6 UDP packet between two AddrPorts.
func UDPPacket(src, dst netip.AddrPort, payload []byte) *Packet {
	p := &Packet{
		UDP:     &UDPHeader{SrcPort: src.Port(), DstPort: dst.Port()},
		Payload: payload,
	}
	setIPHeaders(p, src.Addr(), dst.Addr())
	return p
}

func setIPHeaders(p *Packet, src, dst netip.Addr) {
	if src.Is4() && dst.Is4() {
		p.IPv4 = &IPv4Header{TTL: 64, ID: uint16(rand.Uint32()), Src: src, Dst: dst}
	} else {
		p.IPv6 = &IPv6Header{HopLimit: 64, Src: src.Unmap(), Dst: dst.Unmap()}
	}
}

// FlowKey identifies one transport flow direction-sensitively: the tuple
// (src, dst) of the app-originated direction. MainWorker uses it to look
// up the TCP/UDP client for a tunnel packet (pkt-app map in Figure 4).
type FlowKey struct {
	Proto uint8
	Src   netip.AddrPort
	Dst   netip.AddrPort
}

// Flow extracts the FlowKey of a decoded packet.
func Flow(p *Packet) FlowKey {
	k := FlowKey{Src: p.Src(), Dst: p.Dst()}
	switch {
	case p.TCP != nil:
		k.Proto = ProtoTCP
	case p.UDP != nil:
		k.Proto = ProtoUDP
	}
	return k
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Proto: k.Proto, Src: k.Dst, Dst: k.Src}
}

// String renders the flow like "tcp 10.0.0.2:4312->93.184.216.34:443".
func (k FlowKey) String() string {
	proto := "?"
	switch k.Proto {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s->%s", proto, k.Src, k.Dst)
}
