package procnet

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

func TestRenderParseRoundTripTCP4(t *testing.T) {
	tbl := NewTable()
	e := Entry{
		Proto: TCP, Local: ap("10.0.0.2:40001"), Remote: ap("93.184.216.34:443"),
		State: StateEstablished, UID: 10083,
	}
	tbl.Add(e)
	text := tbl.Render(TCP)
	got, err := ParseFile(text, TCP)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("entries: %d", len(got))
	}
	if got[0].Local != e.Local || got[0].Remote != e.Remote ||
		got[0].State != e.State || got[0].UID != e.UID {
		t.Errorf("round trip mismatch: %+v", got[0])
	}
}

func TestRenderParseRoundTripTCP6(t *testing.T) {
	tbl := NewTable()
	e := Entry{
		Proto: TCP6, Local: ap("[fd00::2]:40001"), Remote: ap("[2606:2800:220:1::1]:443"),
		State: StateSynSent, UID: 10090,
	}
	tbl.Add(e)
	got, err := ParseFile(tbl.Render(TCP6), TCP6)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got[0].Local != e.Local || got[0].Remote != e.Remote {
		t.Errorf("v6 round trip: %+v", got[0])
	}
}

func TestRenderKernelHexFormat(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Entry{Proto: TCP, Local: ap("10.0.0.2:80"), Remote: ap("1.2.3.4:443"), State: StateEstablished, UID: 1})
	text := tbl.Render(TCP)
	// 10.0.0.2 little-endian is 0200000A; port 80 is 0050.
	if !strings.Contains(text, "0200000A:0050") {
		t.Errorf("kernel hex format missing:\n%s", text)
	}
	// 1.2.3.4 little-endian is 04030201; port 443 is 01BB.
	if !strings.Contains(text, "04030201:01BB") {
		t.Errorf("remote hex format missing:\n%s", text)
	}
}

func TestProtoFiltering(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Entry{Proto: TCP, Local: ap("10.0.0.2:1"), Remote: ap("1.1.1.1:1"), UID: 1})
	tbl.Add(Entry{Proto: UDP, Local: ap("10.0.0.2:2"), Remote: ap("0.0.0.0:0"), UID: 2})
	tcp, _ := ParseFile(tbl.Render(TCP), TCP)
	udp, _ := ParseFile(tbl.Render(UDP), UDP)
	if len(tcp) != 1 || len(udp) != 1 {
		t.Errorf("tcp=%d udp=%d", len(tcp), len(udp))
	}
	if tcp[0].UID != 1 || udp[0].UID != 2 {
		t.Error("entries crossed proto files")
	}
}

func TestSetStateAndRemove(t *testing.T) {
	tbl := NewTable()
	inode := tbl.Add(Entry{Proto: TCP, Local: ap("10.0.0.2:5"), Remote: ap("1.1.1.1:1"), State: StateSynSent, UID: 7})
	tbl.SetState(inode, StateEstablished)
	got, _ := ParseFile(tbl.Render(TCP), TCP)
	if got[0].State != StateEstablished {
		t.Errorf("state: %02x", got[0].State)
	}
	tbl.Remove(inode)
	if tbl.Len() != 0 {
		t.Errorf("len after remove: %d", tbl.Len())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"header\nnot a row\n",
		"header\n0: ZZZZZZZZ:0050 0200000A:0050 01 0:0 00:0 0 5 0 1 x\n",
	}
	for i, text := range cases {
		if _, err := ParseFile(text, TCP); err == nil {
			t.Errorf("case %d parsed", i)
		}
	}
}

func TestReaderChargesCost(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < 10; i++ {
		tbl.Add(Entry{Proto: TCP, Local: ap("10.0.0.2:1"), Remote: ap("1.1.1.1:1"), UID: i})
	}
	clk := clock.NewReal()
	r := NewReader(tbl, clk, CostModel{Base: 5 * time.Millisecond, PerEntry: 100 * time.Microsecond}, 1)
	start := time.Now()
	entries, err := r.Parse(TCP)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(entries) != 10 {
		t.Fatalf("entries: %d", len(entries))
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("parse cost not charged")
	}
	parses, spent, samples := r.Stats()
	if parses != 1 || spent < 5*time.Millisecond || len(samples) != 1 {
		t.Errorf("stats: %d %v %d", parses, spent, len(samples))
	}
}

func TestCostGrowsWithEntries(t *testing.T) {
	mk := func(n int) time.Duration {
		tbl := NewTable()
		for i := 0; i < n; i++ {
			tbl.Add(Entry{Proto: TCP, Local: ap("10.0.0.2:1"), Remote: ap("1.1.1.1:1"), UID: i})
		}
		r := NewReader(tbl, clock.NewReal(), CostModel{PerEntry: 50 * time.Microsecond}, 1)
		start := time.Now()
		_, _ = r.Parse(TCP)
		return time.Since(start)
	}
	small, large := mk(5), mk(200)
	if large < 2*small {
		t.Errorf("cost did not grow with table size: %v vs %v (§3.3: overhead increases with active connections)", small, large)
	}
}

func TestAndroidParseCostMatchesFigure5a(t *testing.T) {
	// Figure 5(a): on a ~30-entry table, >75% of parses over 5 ms and
	// >10% over 15 ms. ParseAll reads tcp+tcp6, so per-call cost is two
	// draws.
	tbl := NewTable()
	for i := 0; i < 15; i++ {
		tbl.Add(Entry{Proto: TCP, Local: ap("10.0.0.2:1"), Remote: ap("1.1.1.1:1"), UID: i})
		tbl.Add(Entry{Proto: TCP6, Local: ap("[fd00::2]:1"), Remote: ap("[fd00::3]:1"), UID: i})
	}
	r := NewReader(tbl, clock.NewReal(), AndroidParseCost(), 42)
	over5, over15 := 0, 0
	const n = 150
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := r.ParseAll(); err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		if d > 5*time.Millisecond {
			over5++
		}
		if d > 15*time.Millisecond {
			over15++
		}
	}
	if frac := float64(over5) / n; frac < 0.70 {
		t.Errorf(">5ms fraction %.2f, paper reports >0.75", frac)
	}
	if frac := float64(over15) / n; frac < 0.05 {
		t.Errorf(">15ms fraction %.2f, paper reports >0.10", frac)
	}
}

func TestPackageManager(t *testing.T) {
	pm := NewPackageManager()
	pm.Install(10083, "com.whatsapp")
	pm.Install(10101, "com.facebook.katana")
	if n, ok := pm.NameForUID(10083); !ok || n != "com.whatsapp" {
		t.Errorf("lookup: %q %v", n, ok)
	}
	if _, ok := pm.NameForUID(99999); ok {
		t.Error("unknown UID resolved")
	}
	if pm.Len() != 2 {
		t.Errorf("len: %d", pm.Len())
	}
}

// Property: any valid entry survives Render/Parse for all four proc
// files.
func TestQuickRoundTrip(t *testing.T) {
	f := func(a, b, c, d byte, lport, rport uint16, uid uint16, v6 bool, udp bool) bool {
		var proto Proto
		var local, remote netip.AddrPort
		if v6 {
			la := netip.AddrFrom16([16]byte{0xfd, 0, a, b, c, d, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
			ra := netip.AddrFrom16([16]byte{0x20, 1, d, c, b, a, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2})
			local, remote = netip.AddrPortFrom(la, lport), netip.AddrPortFrom(ra, rport)
			proto = TCP6
			if udp {
				proto = UDP6
			}
		} else {
			local = netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, a, b, c}), lport)
			remote = netip.AddrPortFrom(netip.AddrFrom4([4]byte{93, d, c, b}), rport)
			proto = TCP
			if udp {
				proto = UDP
			}
		}
		tbl := NewTable()
		tbl.Add(Entry{Proto: proto, Local: local, Remote: remote, State: StateEstablished, UID: int(uid)})
		got, err := ParseFile(tbl.Render(proto), proto)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0].Local == local && got[0].Remote == remote && got[0].UID == int(uid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStableOrderByInode(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < 20; i++ {
		tbl.Add(Entry{Proto: TCP, Local: netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, 2}), uint16(1000+i)), Remote: ap("1.1.1.1:1"), UID: i})
	}
	got, _ := ParseFile(tbl.Render(TCP), TCP)
	for i := 1; i < len(got); i++ {
		if got[i].Inode <= got[i-1].Inode {
			t.Fatal("rows not in inode order")
		}
	}
}
