// Package procnet emulates the four proc filesystem files
// (/proc/net/tcp6|tcp|udp|udp6) that MopEye parses to map a captured
// packet to the app that sent it (§2.2), together with the
// PackageManager UID→name lookup.
//
// The table is maintained by the phone stack (the kernel's role) and
// rendered in the authentic /proc/net/tcp text format, which the
// engine-side parser consumes. Parsing these files on Android is
// expensive — Figure 5(a) shows >75% of parses above 5 ms, >10% above
// 15 ms — so a calibrated cost model charges simulated time per parse,
// growing with the number of active connections exactly as §3.3
// observes.
package procnet

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
)

// Proto selects one of the four proc files.
type Proto int

// The four proc files.
const (
	TCP Proto = iota
	TCP6
	UDP
	UDP6
)

func (p Proto) String() string {
	switch p {
	case TCP:
		return "tcp"
	case TCP6:
		return "tcp6"
	case UDP:
		return "udp"
	case UDP6:
		return "udp6"
	default:
		return "proto?"
	}
}

// Socket states as encoded in /proc/net/tcp.
const (
	StateEstablished = 0x01
	StateSynSent     = 0x02
	StateFinWait1    = 0x04
	StateClose       = 0x07
	StateListen      = 0x0A
)

// Entry is one row of a proc net table.
type Entry struct {
	Proto  Proto
	Local  netip.AddrPort
	Remote netip.AddrPort
	State  int
	UID    int
	Inode  uint64
}

// Table is the kernel-side connection table feeding the proc files.
type Table struct {
	mu        sync.Mutex
	entries   map[uint64]Entry // keyed by inode
	nextInode uint64
}

// NewTable creates an empty table.
func NewTable() *Table {
	return &Table{entries: make(map[uint64]Entry)}
}

// Add inserts a connection and returns its inode handle.
func (t *Table) Add(e Entry) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextInode++
	e.Inode = t.nextInode
	t.entries[e.Inode] = e
	return e.Inode
}

// SetState updates a connection's state.
func (t *Table) SetState(inode uint64, state int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[inode]; ok {
		e.State = state
		t.entries[inode] = e
	}
}

// Remove deletes a connection.
func (t *Table) Remove(inode uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, inode)
}

// Len returns the number of live entries across all protos.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// snapshot returns entries of one proto in stable order.
func (t *Table) snapshot(p Proto) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Entry
	for _, e := range t.entries {
		if e.Proto == p {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Inode < out[j].Inode })
	return out
}

// Render produces the authentic text of one proc file. IPv4 addresses
// are little-endian hex, ports big-endian hex, exactly as the kernel
// formats them — the parser on the other side must deal with that.
func (t *Table) Render(p Proto) string {
	var b strings.Builder
	b.WriteString("  sl  local_address rem_address   st tx_queue rx_queue tr tm->when retrnsmt   uid  timeout inode\n")
	for i, e := range t.snapshot(p) {
		fmt.Fprintf(&b, "%4d: %s %s %02X 00000000:00000000 00:00000000 00000000 %5d        0 %d 1 0000000000000000 100 0 0 10 0\n",
			i, hexAddrPort(e.Local, p), hexAddrPort(e.Remote, p), e.State, e.UID, e.Inode)
	}
	return b.String()
}

func hexAddrPort(ap netip.AddrPort, p Proto) string {
	if p == TCP || p == UDP {
		a4 := ap.Addr().As4()
		// Kernel prints IPv4 as a little-endian 32-bit hex value.
		v := binary.LittleEndian.Uint32(a4[:])
		return fmt.Sprintf("%08X:%04X", v, ap.Port())
	}
	a16 := ap.Addr().As16()
	var b strings.Builder
	// IPv6 is printed as four little-endian 32-bit groups.
	for g := 0; g < 4; g++ {
		v := binary.LittleEndian.Uint32(a16[g*4 : g*4+4])
		fmt.Fprintf(&b, "%08X", v)
	}
	return fmt.Sprintf("%s:%04X", b.String(), ap.Port())
}

// ParseFile decodes a rendered proc file back into entries. This is the
// code path MopEye runs for every SYN before lazy mapping, and only in
// the elected thread after (§3.3).
func ParseFile(text string, p Proto) ([]Entry, error) {
	var out []Entry
	lines := strings.Split(text, "\n")
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 10 {
			return nil, fmt.Errorf("procnet: short row %q", line)
		}
		local, err := parseHexAddrPort(fields[1], p)
		if err != nil {
			return nil, err
		}
		remote, err := parseHexAddrPort(fields[2], p)
		if err != nil {
			return nil, err
		}
		st, err := strconv.ParseInt(fields[3], 16, 32)
		if err != nil {
			return nil, fmt.Errorf("procnet: bad state %q: %v", fields[3], err)
		}
		uid, err := strconv.Atoi(fields[7])
		if err != nil {
			return nil, fmt.Errorf("procnet: bad uid %q: %v", fields[7], err)
		}
		inode, err := strconv.ParseUint(fields[9], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("procnet: bad inode %q: %v", fields[9], err)
		}
		out = append(out, Entry{
			Proto: p, Local: local, Remote: remote,
			State: int(st), UID: uid, Inode: inode,
		})
	}
	return out, nil
}

func parseHexAddrPort(s string, p Proto) (netip.AddrPort, error) {
	colon := strings.LastIndexByte(s, ':')
	if colon < 0 {
		return netip.AddrPort{}, fmt.Errorf("procnet: bad addr %q", s)
	}
	port, err := strconv.ParseUint(s[colon+1:], 16, 16)
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("procnet: bad port in %q: %v", s, err)
	}
	hexIP := s[:colon]
	if p == TCP || p == UDP {
		v, err := strconv.ParseUint(hexIP, 16, 32)
		if err != nil {
			return netip.AddrPort{}, fmt.Errorf("procnet: bad ip in %q: %v", s, err)
		}
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		return netip.AddrPortFrom(netip.AddrFrom4(b), uint16(port)), nil
	}
	if len(hexIP) != 32 {
		return netip.AddrPort{}, fmt.Errorf("procnet: bad ipv6 in %q", s)
	}
	var b [16]byte
	for g := 0; g < 4; g++ {
		v, err := strconv.ParseUint(hexIP[g*8:g*8+8], 16, 32)
		if err != nil {
			return netip.AddrPort{}, fmt.Errorf("procnet: bad ipv6 group in %q: %v", s, err)
		}
		binary.LittleEndian.PutUint32(b[g*4:g*4+4], uint32(v))
	}
	return netip.AddrPortFrom(netip.AddrFrom16(b), uint16(port)), nil
}

// CostModel charges simulated time per proc parse.
type CostModel struct {
	// Base is the fixed cost of opening and reading the file.
	Base time.Duration
	// PerEntry is the marginal cost per table row.
	PerEntry time.Duration
	// SpikeProb and SpikeMax add an occasional scheduling spike.
	SpikeProb float64
	SpikeMax  time.Duration
}

// AndroidParseCost reproduces the Figure 5(a) distribution on a table of
// a few dozen rows: mostly 5–15 ms with a >15 ms tail.
func AndroidParseCost() CostModel {
	return CostModel{
		Base:      4 * time.Millisecond,
		PerEntry:  120 * time.Microsecond,
		SpikeProb: 0.12,
		SpikeMax:  18 * time.Millisecond,
	}
}

// ZeroParseCost is free, for deterministic tests.
func ZeroParseCost() CostModel { return CostModel{} }

// Source supplies the raw text of one proc net table. *Table is the
// emulated kernel table; ProcFS reads a live proc mount on the real
// device data plane.
type Source interface {
	Render(p Proto) string
}

// ProcFS renders the live kernel tables from a proc mount. An
// unreadable file renders as an empty table (header only): the mapper
// treats a socket it cannot find as unattributable, which is the right
// degradation when a table is briefly unavailable.
type ProcFS struct {
	// Root is the proc mount point; empty means "/proc".
	Root string
}

// Render reads /proc/net/<proto>.
func (f ProcFS) Render(p Proto) string {
	root := f.Root
	if root == "" {
		root = "/proc"
	}
	b, err := os.ReadFile(filepath.Join(root, "net", p.String()))
	if err != nil {
		return emptyTableHeader
	}
	return string(b)
}

const emptyTableHeader = "  sl  local_address rem_address   st tx_queue rx_queue tr tm->when retrnsmt   uid  timeout inode\n"

// Reader is the engine-side view: it renders, charges the parse cost,
// and parses. One Reader per engine.
type Reader struct {
	src  Source
	clk  clock.Clock
	cost CostModel

	mu     sync.Mutex
	rng    *rand.Rand
	parses int
	spent  time.Duration
	costs  []time.Duration
}

// NewReader creates a reader over a table.
func NewReader(t *Table, clk clock.Clock, cost CostModel, seed int64) *Reader {
	return NewReaderFrom(t, clk, cost, seed)
}

// NewReaderFrom creates a reader over any table source — the seam the
// real data plane uses to parse the live /proc/net tables instead of
// the emulated kernel's.
func NewReaderFrom(src Source, clk clock.Clock, cost CostModel, seed int64) *Reader {
	return &Reader{src: src, clk: clk, cost: cost, rng: rand.New(rand.NewSource(seed))}
}

// Parse reads one proc file, charging the modelled cost in simulated
// time.
func (r *Reader) Parse(p Proto) ([]Entry, error) {
	text := r.src.Render(p)
	entries, err := ParseFile(text, p)
	if err != nil {
		return nil, err
	}
	cost := r.drawCost(len(entries))
	if cost > 0 {
		r.clk.Sleep(cost)
	}
	r.mu.Lock()
	r.parses++
	r.spent += cost
	r.costs = append(r.costs, cost)
	r.mu.Unlock()
	return entries, nil
}

// ParseAll reads tcp and tcp6 (the SYN mapping path parses both, §3.3).
func (r *Reader) ParseAll() ([]Entry, error) {
	t4, err := r.Parse(TCP)
	if err != nil {
		return nil, err
	}
	t6, err := r.Parse(TCP6)
	if err != nil {
		return nil, err
	}
	return append(t4, t6...), nil
}

// ParseAllUDP reads udp and udp6 — the UDP relay's attribution path.
// DNS and other datagram sockets appear here with their owner UID just
// as TCP connections appear in tcp/tcp6 (§2.2).
func (r *Reader) ParseAllUDP() ([]Entry, error) {
	u4, err := r.Parse(UDP)
	if err != nil {
		return nil, err
	}
	u6, err := r.Parse(UDP6)
	if err != nil {
		return nil, err
	}
	return append(u4, u6...), nil
}

func (r *Reader) drawCost(entries int) time.Duration {
	c := r.cost.Base + time.Duration(entries)*r.cost.PerEntry
	if r.cost.SpikeProb > 0 {
		r.mu.Lock()
		spike := r.rng.Float64() < r.cost.SpikeProb
		var extra time.Duration
		if spike && r.cost.SpikeMax > 0 {
			extra = time.Duration(r.rng.Int63n(int64(r.cost.SpikeMax)))
		}
		r.mu.Unlock()
		c += extra
	}
	return c
}

// Stats reports parses performed, total simulated time charged, and the
// per-parse cost samples (for the Figure 5 CDFs).
func (r *Reader) Stats() (parses int, spent time.Duration, samples []time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.parses, r.spent, append([]time.Duration(nil), r.costs...)
}

// PackageManager maps UIDs to app package names, the role Android's
// PackageManager plays for MopEye (§2.2).
type PackageManager struct {
	mu       sync.Mutex
	apps     map[int]string
	fallback func(uid int) (string, bool)
}

// NewPackageManager creates an empty registry.
func NewPackageManager() *PackageManager {
	return &PackageManager{apps: make(map[int]string)}
}

// Install registers an app name under a UID.
func (pm *PackageManager) Install(uid int, name string) {
	pm.mu.Lock()
	pm.apps[uid] = name
	pm.mu.Unlock()
}

// SetFallback installs a resolver consulted for UIDs with no installed
// package. The real data plane uses it to name host UIDs (user
// accounts) the way Android's PackageManager names app UIDs; f must be
// safe for concurrent use.
func (pm *PackageManager) SetFallback(f func(uid int) (string, bool)) {
	pm.mu.Lock()
	pm.fallback = f
	pm.mu.Unlock()
}

// NameForUID resolves a UID; ok is false for unknown UIDs.
func (pm *PackageManager) NameForUID(uid int) (string, bool) {
	pm.mu.Lock()
	n, ok := pm.apps[uid]
	f := pm.fallback
	pm.mu.Unlock()
	if !ok && f != nil {
		return f(uid)
	}
	return n, ok
}

// Len returns the number of installed apps.
func (pm *PackageManager) Len() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return len(pm.apps)
}
