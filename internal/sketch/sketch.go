// Package sketch provides a mergeable streaming quantile sketch: the
// collector-side aggregation primitive that makes `/v1/stats` O(1) in
// dataset size. The design is the DDSketch family (relative-error
// guarantees from logarithmically-spaced bins): a value x > 0 lands in
// bin ceil(log_gamma(x)), and the bin's midpoint estimate is within a
// factor (1±alpha) of every value stored in it, so any quantile comes
// back with bounded *relative* error — the right guarantee for RTTs,
// where a 1 ms error means something different at 5 ms than at 500 ms.
//
// Two properties matter to the collector:
//
//   - Merge is exact bin-wise addition, so it is associative and
//     commutative to the bit: per-shard sketches fanned into a central
//     view give the same answers regardless of shard count or merge
//     order. This is what lets crowd.ShardedServer split ingest across
//     N spools and still serve one truthful /v1/stats.
//
//   - Memory is O(log(max/min)/alpha) bins regardless of how many
//     values stream through — a sketch of a million RTTs and a sketch
//     of sixteen occupy the same few hundred bins.
package sketch

import (
	"fmt"
	"math"
	"sort"
)

// DefaultAlpha is the default relative accuracy: quantile estimates are
// within ±1% of an exact value at the same rank.
const DefaultAlpha = 0.01

// Sketch is a quantile sketch over positive float64 samples with
// relative accuracy alpha. Non-positive samples are counted in a zero
// bin (they contribute rank but estimate as 0). The zero value is not
// usable; construct with New. A Sketch is not safe for concurrent use;
// callers shard or lock around it.
type Sketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64

	bins  map[int32]uint64
	zero  uint64 // samples <= 0
	count uint64
	sum   float64
	min   float64
	max   float64
}

// New creates an empty sketch with the given relative accuracy
// (0 < alpha < 1); alpha <= 0 selects DefaultAlpha.
func New(alpha float64) *Sketch {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if alpha >= 1 {
		alpha = 0.5
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		bins:    make(map[int32]uint64),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// RelativeAccuracy returns the sketch's alpha.
func (s *Sketch) RelativeAccuracy() float64 { return s.alpha }

// key returns the bin index of a positive value.
func (s *Sketch) key(x float64) int32 {
	return int32(math.Ceil(math.Log(x) / s.lnGamma))
}

// estimate returns the midpoint value of a bin: within (1±alpha) of
// every value the bin holds.
func (s *Sketch) estimate(k int32) float64 {
	return 2 * math.Pow(s.gamma, float64(k)) / (1 + s.gamma)
}

// Add records one sample.
func (s *Sketch) Add(x float64) { s.AddN(x, 1) }

// AddN records a sample n times.
func (s *Sketch) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	s.count += n
	s.sum += x * float64(n)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if x <= 0 {
		s.zero += n
		return
	}
	s.bins[s.key(x)] += n
}

// Count returns the number of samples recorded.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the sum of all samples.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest sample (exact), or 0 when empty.
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample (exact), or 0 when empty.
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Bins returns the number of occupied bins — the sketch's memory
// footprint in units of (int32, uint64) pairs.
func (s *Sketch) Bins() int { return len(s.bins) }

// Quantile returns the q-quantile estimate (0 <= q <= 1). The estimate
// is within relative error alpha of the exact sample at the same
// closest rank, clamped to the exact [Min, Max]. Returns 0 when empty.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	// Rank of the wanted sample among count samples, 0-based.
	rank := uint64(q * float64(s.count-1))
	if rank < s.zero {
		return clamp(0, s.min, s.max)
	}
	seen := s.zero
	for _, k := range s.sortedKeys() {
		seen += s.bins[k]
		if rank < seen {
			return clamp(s.estimate(k), s.min, s.max)
		}
	}
	return s.max
}

// Median returns the 0.5-quantile estimate.
func (s *Sketch) Median() float64 { return s.Quantile(0.5) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// sortedKeys returns the occupied bin indexes in ascending order.
// O(bins log bins) per quantile query — independent of sample count.
func (s *Sketch) sortedKeys() []int32 {
	keys := make([]int32, 0, len(s.bins))
	for k := range s.bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Merge folds o into s. Only sketches of equal alpha merge (their bin
// boundaries coincide, making the merge an exact bin-wise addition —
// associative and commutative). o is left unchanged.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.count == 0 {
		return nil
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("sketch: merging alpha %v into %v", o.alpha, s.alpha)
	}
	for k, n := range o.bins {
		s.bins[k] += n
	}
	s.zero += o.zero
	s.count += o.count
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	return nil
}

// Clone returns an independent copy.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.bins = make(map[int32]uint64, len(s.bins))
	for k, n := range s.bins {
		c.bins[k] = n
	}
	return &c
}
