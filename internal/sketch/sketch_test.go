package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stats"
)

// adversarial distributions for the error-bound properties: the shapes
// that break naive fixed-bin histograms — mass split across far-apart
// modes, a heavy tail spanning four decades, and zero-variance input.
func distributions(r *rand.Rand, n int) map[string][]float64 {
	out := make(map[string][]float64)

	bimodal := make([]float64, n)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = 8 + r.Float64()*4 // fast mode ~10ms
		} else {
			bimodal[i] = 900 + r.Float64()*200 // slow mode ~1s
		}
	}
	out["bimodal"] = bimodal

	heavy := make([]float64, n)
	for i := range heavy {
		// Pareto(alpha=1.2): a genuinely heavy tail.
		heavy[i] = 5 * math.Pow(r.Float64(), -1/1.2)
	}
	out["heavy-tail"] = heavy

	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 42
	}
	out["constant"] = constant

	lognormal := make([]float64, n)
	for i := range lognormal {
		lognormal[i] = 50 * math.Exp(0.6*r.NormFloat64())
	}
	out["lognormal"] = lognormal

	return out
}

// exactNearestRank is the exact quantile under the same nearest-rank
// convention the sketch uses — the value DDSketch's relative-error
// guarantee is stated against. (Interpolated quantiles can land between
// two far-apart samples of a bimodal distribution, where no bound in
// terms of either sample holds.)
func exactNearestRank(sorted []float64, q float64) float64 {
	return sorted[int(q*float64(len(sorted)-1))]
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Quantile estimates stay within the advertised relative accuracy on
// every adversarial distribution, at every tested quantile.
func TestQuantileErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for name, xs := range distributions(r, 20001) {
		for _, alpha := range []float64{0.005, 0.01, 0.05} {
			s := New(alpha)
			for _, x := range xs {
				s.Add(x)
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
				got := s.Quantile(q)
				want := exactNearestRank(sorted, q)
				if re := relErr(got, want); re > alpha+1e-9 {
					t.Errorf("%s alpha=%v q=%v: got %v want %v (rel err %.4f)", name, alpha, q, got, want, re)
				}
			}
			// Median agreement against the exact internal/stats pipeline on
			// odd-length input (odd length makes the interpolated median a
			// real sample, so the relative bound applies to it too).
			if got, want := s.Median(), stats.Median(xs); relErr(got, want) > alpha+1e-9 {
				t.Errorf("%s alpha=%v: median %v vs stats.Median %v", name, alpha, got, want)
			}
			if s.Count() != uint64(len(xs)) {
				t.Errorf("%s: count %d want %d", name, s.Count(), len(xs))
			}
		}
	}
}

// The constant distribution is recovered exactly: min = max = every
// quantile (the clamp to exact extremes guarantees it).
func TestConstantExact(t *testing.T) {
	s := New(0.01)
	for i := 0; i < 1000; i++ {
		s.Add(42)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("q=%v: %v", q, got)
		}
	}
	if s.Min() != 42 || s.Max() != 42 {
		t.Errorf("extremes: [%v, %v]", s.Min(), s.Max())
	}
}

// sketchEqual asserts two sketches answer identically: same counts,
// same bins, same quantiles.
func sketchEqual(t *testing.T, label string, a, b *Sketch) {
	t.Helper()
	if a.Count() != b.Count() || a.zero != b.zero || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatalf("%s: counters diverge: (%d,%d,%v,%v) vs (%d,%d,%v,%v)",
			label, a.Count(), a.zero, a.Min(), a.Max(), b.Count(), b.zero, b.Min(), b.Max())
	}
	if len(a.bins) != len(b.bins) {
		t.Fatalf("%s: bin sets diverge: %d vs %d", label, len(a.bins), len(b.bins))
	}
	for k, n := range a.bins {
		if b.bins[k] != n {
			t.Fatalf("%s: bin %d: %d vs %d", label, k, n, b.bins[k])
		}
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("%s: q=%v diverges: %v vs %v", label, q, a.Quantile(q), b.Quantile(q))
		}
	}
	// Sums are float additions in different orders; near-equal is the
	// honest contract.
	if relErr(a.Sum(), b.Sum()) > 1e-9 {
		t.Fatalf("%s: sums diverge: %v vs %v", label, a.Sum(), b.Sum())
	}
}

// Merge is commutative and associative: any shard/merge topology over
// the same samples yields identical bins and quantiles. This is the
// property the sharded collector's fan-in relies on.
func TestMergeCommutativeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for name, xs := range distributions(r, 3000) {
		parts := make([]*Sketch, 4)
		for i := range parts {
			parts[i] = New(0.01)
		}
		for i, x := range xs {
			parts[i%len(parts)].Add(x)
		}

		// ((a+b)+c)+d
		left := New(0.01)
		for _, p := range parts {
			if err := left.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		// a+(b+(c+d)), built right to left.
		right := New(0.01)
		for i := len(parts) - 1; i >= 0; i-- {
			if err := right.Merge(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		// reversed order entirely: d+c+b+a
		rev := New(0.01)
		for i := len(parts) - 1; i >= 0; i-- {
			rev.Merge(parts[i])
		}
		// The unsharded sketch over the same stream.
		whole := New(0.01)
		for _, x := range xs {
			whole.Add(x)
		}

		sketchEqual(t, name+"/assoc", left, right)
		sketchEqual(t, name+"/comm", left, rev)
		sketchEqual(t, name+"/sharded-vs-whole", left, whole)
	}
}

func TestMergeAlphaMismatch(t *testing.T) {
	a, b := New(0.01), New(0.02)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Error("alpha mismatch accepted")
	}
	// Merging an empty or nil sketch is a no-op regardless of alpha.
	if err := a.Merge(New(0.02)); err != nil {
		t.Errorf("empty merge: %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

// Non-positive samples count toward ranks but estimate as zero, and the
// sketch stays well-defined around them.
func TestZeroAndNegative(t *testing.T) {
	s := New(0.01)
	s.Add(0)
	s.Add(-5)
	for i := 0; i < 8; i++ {
		s.Add(100)
	}
	if s.Count() != 10 {
		t.Fatalf("count %d", s.Count())
	}
	if got := s.Quantile(0); got != -5 {
		t.Errorf("q0: %v", got)
	}
	if got := s.Median(); relErr(got, 100) > 0.01 {
		t.Errorf("median: %v", got)
	}
}

// Memory stays O(bins): a million samples over four decades occupy a
// bounded bin set, and Clone is independent of its source.
func TestBoundedBinsAndClone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := New(0.01)
	for i := 0; i < 1_000_000; i++ {
		s.Add(math.Pow(10, r.Float64()*4)) // 1 .. 10^4
	}
	// log_gamma(10^4) bins ≈ ln(10^4)/ln(gamma) ≈ 9.2/0.02 ≈ 461.
	if s.Bins() > 600 {
		t.Errorf("bins: %d", s.Bins())
	}
	c := s.Clone()
	sketchEqual(t, "clone", s, c)
	c.Add(12345)
	if s.Count() == c.Count() {
		t.Error("clone shares state with source")
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(0)
	if s.RelativeAccuracy() != DefaultAlpha {
		t.Errorf("default alpha: %v", s.RelativeAccuracy())
	}
	if s.Quantile(0.5) != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Error("empty sketch answers non-zero")
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(0.01)
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = 50 * math.Exp(0.6*r.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&1023])
	}
}

func BenchmarkQuantile(b *testing.B) {
	s := New(0.01)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		s.Add(50 * math.Exp(0.6*r.NormFloat64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(0.5)
	}
}
