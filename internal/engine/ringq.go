package engine

import (
	"sync"
	"sync/atomic"
)

// ringQ is one pinned worker's input queue on the multi-worker path,
// replacing the shared-mutex workQueue. It carries the two event
// sources a worker multiplexes, in two lanes:
//
//   - the packet lane: a bounded single-producer/single-consumer ring.
//     The producer is the batched TunReader (reader.go), which peeks
//     each packet's flow key and scatters the burst across workers; the
//     consumer is the worker pinned to the flow's shard. Pushes and
//     pops on the hot path are two atomic loads, one atomic store, and
//     one slot write — no lock, no allocation in steady state. FIFO
//     order within the ring is what preserves per-flow packet ordering
//     (a flow's packets all land in the same ring).
//
//   - the event lane: a small mutex-guarded FIFO fed by the dispatcher
//     with claimed socket-readiness events. Socket events arrive at
//     connection rate, not packet rate, so a mutex is fine here; an
//     atomic count lets the consumer check the lane for the cost of one
//     load per iteration, which keeps a packet flood from starving
//     socket events without paying the mutex per packet.
//
// On the default shared-nothing path (per-worker selectors) only the
// packet lane is used: socket readiness lands on the worker's own
// selector, the worker parks in Select rather than in take(), and the
// ring's wake callback (the worker selector's Wakeup) replaces the
// consumer-parking condvar. The event lane and the consumer park/wake
// protocol below remain live on the Workers=1-style SharedDispatcher
// compatibility path.
//
// Blocking is two-sided: the consumer parks when both lanes are empty,
// and the producer parks when the ring is full (backpressure toward
// the TUN queue, which drops on overflow exactly like a real device).
// The park/wake protocol is the standard flag-then-recheck dance: the
// sleeper sets its flag and re-checks the queue under the mutex before
// waiting, the waker updates the queue and then loads the flag —
// sequentially consistent atomics make it impossible for both to miss.
type ringQ struct {
	// Packet lane (SPSC). head is owned by the consumer, tail by the
	// producer; buf slot i is written by the producer before the tail
	// store publishes it and cleared by the consumer before the head
	// store releases it.
	buf  [][]byte
	mask uint64
	head atomic.Uint64
	tail atomic.Uint64

	// Event lane (dispatcher → worker).
	evMu     sync.Mutex
	evs      []workItem
	evCount  atomic.Int64
	evClosed bool

	pktClosed atomic.Bool

	// wake, when set (sharded-selector path), is invoked wherever the
	// consumer could otherwise sleep through a state change it must
	// see: a producer about to park on a full ring, and the packet
	// lane's close. The per-push consumer wakeup is NOT routed through
	// it — the batched reader wakes the consumer once per burst, which
	// is the point of batching.
	wake func()

	// Parking.
	mu       sync.Mutex
	cond     *sync.Cond // consumer waits here when both lanes are empty
	space    *sync.Cond // producer waits here when the ring is full
	parked   atomic.Bool
	prodWait atomic.Bool
}

// defaultRingSize is the per-worker ring capacity when Config.RingSize
// is zero: deep enough that a worker absorbing a burst of its own flows
// never stalls the reader, small enough that backpressure reaches the
// TUN queue before unbounded memory does.
const defaultRingSize = 1024

func newRingQ(size int) *ringQ {
	if size <= 0 {
		size = defaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	q := &ringQ{buf: make([][]byte, n), mask: uint64(n - 1)}
	q.cond = sync.NewCond(&q.mu)
	q.space = sync.NewCond(&q.mu)
	return q
}

// cap returns the ring capacity (exported for tests via Cap-like use).
func (q *ringQ) capacity() int { return len(q.buf) }

// pushPacket enqueues one raw tunnel packet. Single producer only. It
// blocks while the ring is full; closing the packet lane is the
// producer's own act, so a blocked push only ever waits on the
// consumer, which drains before it exits.
func (q *ringQ) pushPacket(raw []byte) {
	for {
		t := q.tail.Load()
		if t-q.head.Load() < uint64(len(q.buf)) {
			q.buf[t&q.mask] = raw
			q.tail.Store(t + 1)
			q.wakeConsumer()
			return
		}
		// Full ring: the consumer may be parked (in take(), or in its
		// selector's Select on the sharded path) having last seen an
		// empty ring — wake it before waiting, or nobody makes space.
		if q.wake != nil {
			q.wake()
		}
		q.mu.Lock()
		q.prodWait.Store(true)
		if q.tail.Load()-q.head.Load() >= uint64(len(q.buf)) {
			q.space.Wait()
		}
		q.prodWait.Store(false)
		q.mu.Unlock()
	}
}

// popPacket dequeues one packet without blocking. Single consumer only.
func (q *ringQ) popPacket() ([]byte, bool) {
	h := q.head.Load()
	if h == q.tail.Load() {
		return nil, false
	}
	raw := q.buf[h&q.mask]
	q.buf[h&q.mask] = nil
	q.head.Store(h + 1)
	if q.prodWait.Load() {
		q.mu.Lock()
		q.space.Signal()
		q.mu.Unlock()
	}
	return raw, true
}

// pushEvent enqueues one claimed socket-readiness event.
func (q *ringQ) pushEvent(it workItem) {
	q.evMu.Lock()
	if !q.evClosed {
		q.evs = append(q.evs, it)
		q.evCount.Add(1)
	}
	q.evMu.Unlock()
	q.wakeConsumer()
}

func (q *ringQ) popEvent() (workItem, bool) {
	if q.evCount.Load() == 0 {
		return workItem{}, false
	}
	q.evMu.Lock()
	if len(q.evs) == 0 {
		q.evMu.Unlock()
		return workItem{}, false
	}
	it := q.evs[0]
	q.evs[0] = workItem{}
	q.evs = q.evs[1:]
	q.evCount.Add(-1)
	q.evMu.Unlock()
	return it, true
}

// take returns the worker's next unit of work, blocking while both
// lanes are empty. Socket events are checked first (one atomic load per
// iteration) so a sustained packet flood cannot starve them. ok is
// false once both lanes are closed and drained.
func (q *ringQ) take() (workItem, bool) {
	for {
		if it, ok := q.popEvent(); ok {
			return it, true
		}
		if raw, ok := q.popPacket(); ok {
			return workItem{raw: raw}, true
		}
		q.mu.Lock()
		q.parked.Store(true)
		if q.emptyBoth() {
			if q.pktClosed.Load() && q.eventsClosed() {
				q.parked.Store(false)
				q.mu.Unlock()
				return workItem{}, false
			}
			q.cond.Wait()
		}
		q.parked.Store(false)
		q.mu.Unlock()
	}
}

func (q *ringQ) emptyBoth() bool {
	return q.head.Load() == q.tail.Load() && q.evCount.Load() == 0
}

// drained reports an empty packet lane; the sharded-selector worker's
// exit test (with pktClosed) — its events live on its own selector, so
// the event lane does not participate.
func (q *ringQ) drained() bool {
	return q.head.Load() == q.tail.Load()
}

func (q *ringQ) eventsClosed() bool {
	q.evMu.Lock()
	defer q.evMu.Unlock()
	return q.evClosed
}

func (q *ringQ) wakeConsumer() {
	if q.parked.Load() {
		q.mu.Lock()
		q.cond.Signal()
		q.mu.Unlock()
	}
}

// closePackets marks the packet lane closed. Only the producer calls
// it, after its final push, so no push can follow.
func (q *ringQ) closePackets() {
	q.pktClosed.Store(true)
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
	if q.wake != nil {
		q.wake()
	}
}

// closeEvents marks the event lane closed; later pushEvent calls are
// discarded.
func (q *ringQ) closeEvents() {
	q.evMu.Lock()
	q.evClosed = true
	q.evMu.Unlock()
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}
