package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flowtable"
	"repro/internal/packet"
	"repro/internal/sockets"
)

// The pooled UDP relay subsystem.
//
// The paper handles each UDP/DNS datagram in a temporary thread (§2.4):
// open a socket, blocking send, blocking receive, tear down. That is
// the right shape for one phone — a handful of DNS queries per page —
// but under a datagram flood it spawns one goroutine and one socket per
// packet. This subsystem keeps the per-datagram blocking semantics (the
// DNS measurement still timestamps immediately around the blocking
// send/receive pair) while bounding both resources:
//
//   - a NAT-style session table (flowtable.Table keyed by the flow key)
//     maps each app flow to one external socket, created on first
//     datagram, reused for every subsequent one, and expired after
//     Config.UDPSessionIdle without traffic;
//   - a bounded worker pool (Config.UDPPoolSize goroutines) performs
//     the blocking relay work, fed by a bounded queue. When the queue
//     is full the datagram is dropped — UDP's contract — and counted.
//
// The packet path (MainWorker or a pinned worker) only does a table hit
// and a non-blocking enqueue, so an application-layer protocol can
// never block it (§2.4's requirement, kept under flood).
//
// Idle expiry runs as an ordinary pool job: the enqueue path
// occasionally (every idle/2) schedules a sweep instead of a dedicated
// janitor goroutine, keeping the subsystem's goroutine count exactly
// UDPPoolSize.

// defaultUDPPoolSize is the relay pool used when Config.UDPPoolSize is
// zero: enough for several concurrent blocked transactions without
// approaching goroutine-per-datagram under flood.
const defaultUDPPoolSize = 8

// defaultUDPSessionIdle expires NAT sessions after a minute without
// traffic, the magnitude home-router UDP conntrack entries use.
const defaultUDPSessionIdle = time.Minute

// udpJobQueueDepth bounds datagrams waiting for a pool worker; beyond
// it the relay drops, as a full NIC ring would.
const udpJobQueueDepth = 1024

// maxUDPSessions caps the NAT table: a distinct-flow datagram flood
// must not create sockets without limit. At the cap the relay first
// tries an inline sweep (NAT-table exhaustion pays a scan, like a real
// conntrack table under pressure); if nothing was reclaimable the
// datagram is dropped and counted.
const maxUDPSessions = 4096

// udpSession is one NAT-style mapping: app flow -> external socket.
type udpSession struct {
	flow      packet.FlowKey
	sock      *sockets.UDPSocket
	dns       bool
	createdAt int64
	lastUsed  atomic.Int64

	// initOnce runs on a pool worker before the first relay: the
	// per-socket protect cost (when configured) and the app attribution
	// are paid off the packet path, like the TCP socket-connect thread
	// pays them (§3.3, §3.5.2).
	initOnce sync.Once
	app      string
}

// init pays the one-time session costs on the calling pool worker.
func (s *udpSession) init(e *Engine) {
	s.initOnce.Do(func() {
		if e.cfg.Protect == ProtectPerSocket || e.cfg.Protect == ProtectPerSocketMainThread {
			s.sock.Protect()
		}
		if !s.dns {
			s.app = e.mapper.resolveUDP(s.flow.Src, s.createdAt).Name
		}
	})
}

// udpJob is one datagram awaiting a pool worker; a nil session marks a
// sweep request.
type udpJob struct {
	sess    *udpSession
	payload []byte
}

// udpRelay owns the session table and the worker pool.
type udpRelay struct {
	e        *Engine
	sessions *flowtable.Table[*udpSession]
	idle     time.Duration
	pool     int

	// dnsLimit caps workers parked in a blocking DNS receive; see
	// Config.DNSInflightLimit. Zero disables the cap.
	dnsLimit    int
	dnsInflight atomic.Int64

	jobs      chan udpJob
	stopOnce  sync.Once
	stopping  atomic.Bool
	wg        sync.WaitGroup
	lastSweep atomic.Int64
}

func newUDPRelay(e *Engine) *udpRelay {
	limit := e.cfg.DNSInflightLimit
	switch {
	case limit == 0:
		// Default: at most half the pool may be waiting out a dead
		// resolver, so relayed UDP always has workers left.
		limit = e.cfg.UDPPoolSize / 2
		if limit < 1 {
			limit = 1
		}
	case limit < 0:
		limit = 0
	}
	return &udpRelay{
		e:        e,
		sessions: flowtable.New[*udpSession](e.cfg.FlowShards),
		idle:     e.cfg.UDPSessionIdle,
		pool:     e.cfg.UDPPoolSize,
		dnsLimit: limit,
		jobs:     make(chan udpJob, udpJobQueueDepth),
	}
}

func (r *udpRelay) start() {
	for i := 0; i < r.pool; i++ {
		r.wg.Add(1)
		go r.worker()
	}
}

// stop closes the pool. The packet-processing threads have already
// exited (the engine waits for them first), so no new jobs can arrive
// and closing the channel cannot race an enqueue; closing every
// session socket releases any worker still blocked in a receive, and
// the queue drains fast against closed sockets.
func (r *udpRelay) stop() {
	r.stopOnce.Do(func() {
		r.stopping.Store(true)
		close(r.jobs)
		for _, s := range r.sessions.Drain() {
			s.sock.Close()
		}
		r.wg.Wait()
	})
}

// relay is the packet-path entry: session lookup/create plus a
// non-blocking enqueue. Called from MainWorker or a pinned worker, so
// per-flow it is serial; the PutIfAbsent guards the polled single-
// worker loop's interleavings all the same.
func (r *udpRelay) relay(flow packet.FlowKey, payload []byte) {
	now := r.e.clk.Nanos()
	sess := r.session(flow, now)
	if sess == nil {
		r.e.ctr.udpDropped.Add(1)
		return
	}
	if !r.enqueue(udpJob{sess: sess, payload: payload}) {
		r.e.ctr.udpDropped.Add(1)
	}
	r.maybeSweep(now)
}

// session returns the flow's live session, creating one if needed. A
// nil return means the NAT table is exhausted and the datagram must be
// dropped.
func (r *udpRelay) session(flow packet.FlowKey, now int64) *udpSession {
	sess, ok := r.sessions.Get(flow)
	if ok && sess.sock.Closed() {
		// Lost a race with the idle sweeper: the entry is gone from the
		// table (the sweeper deletes before closing), so make a new one.
		ok = false
	}
	if !ok {
		if r.sessions.Len() >= maxUDPSessions {
			// NAT-table exhaustion: reclaim idle sessions inline; if the
			// flood is all live flows, shed this datagram.
			r.sweep()
			if r.sessions.Len() >= maxUDPSessions {
				return nil
			}
		}
		fresh := &udpSession{
			flow:      flow,
			sock:      r.e.prov.OpenUDP(),
			dns:       flow.Dst.Port() == 53,
			createdAt: now,
		}
		// Stamp before publishing: a session entering the table with a
		// zero lastUsed would look idle-since-epoch to a concurrently
		// running sweep and be expired before its first datagram.
		fresh.lastUsed.Store(now)
		if winner, stored := r.sessions.PutIfAbsent(flow, fresh); stored {
			sess = fresh
		} else {
			fresh.sock.Close()
			sess = winner
		}
	}
	sess.lastUsed.Store(now)
	return sess
}

// enqueue hands a job to the pool without ever blocking the caller,
// reporting whether it was accepted (false means queue overflow).
// Lock-free by the lifecycle invariant stop() documents: every
// enqueuer is a packet-processing thread the engine joins before the
// channel closes, so a send can never race the close.
func (r *udpRelay) enqueue(j udpJob) bool {
	select {
	case r.jobs <- j:
		return true
	default:
		return false
	}
}

// maybeSweep schedules an idle sweep every idle/2 of clock time. A
// sweep is never lost to queue overflow — under exactly that pressure
// reclaiming sessions matters most — so on overflow it runs inline.
func (r *udpRelay) maybeSweep(now int64) {
	last := r.lastSweep.Load()
	if now-last < int64(r.idle/2) {
		return
	}
	if r.lastSweep.CompareAndSwap(last, now) {
		if !r.enqueue(udpJob{}) {
			r.sweep()
		}
	}
}

// sweep expires sessions idle past the deadline: delete from the table
// first (so the packet path creates replacements), then close.
func (r *udpRelay) sweep() {
	cutoff := r.e.clk.Nanos() - int64(r.idle)
	removed := r.sessions.DeleteFunc(func(_ packet.FlowKey, s *udpSession) bool {
		return s.lastUsed.Load() < cutoff
	})
	for _, s := range removed {
		s.sock.Close()
	}
}

// worker is one pooled relay thread.
func (r *udpRelay) worker() {
	defer r.wg.Done()
	for j := range r.jobs {
		if j.sess == nil {
			r.sweep()
			continue
		}
		r.process(j)
	}
}

// process performs one datagram's blocking relay on the pool worker.
func (r *udpRelay) process(j udpJob) {
	s := j.sess
	if s.sock.Closed() {
		// The idle sweeper expired the session between enqueue and now.
		// Replace it transparently (unless the whole relay is shutting
		// down, where closed sockets mean teardown, not expiry).
		if r.stopping.Load() {
			return
		}
		if s = r.session(s.flow, r.e.clk.Nanos()); s == nil {
			r.e.ctr.udpDropped.Add(1)
			return
		}
	}
	s.init(r.e)
	r.drainStale(s)
	if s.dns {
		if r.dnsLimit > 0 && r.dnsInflight.Add(1) > int64(r.dnsLimit) {
			// Too many workers already parked in blocking DNS receives
			// (a dead resolver regime): shed this query instead of
			// wedging another worker for the full DNSTimeout. The stub
			// resolver's retry covers it, and the drop is counted.
			r.dnsInflight.Add(-1)
			r.e.ctr.udpDropped.Add(1)
			return
		}
		r.e.dnsTransaction(s, j.payload)
		if r.dnsLimit > 0 {
			r.dnsInflight.Add(-1)
		}
	} else {
		r.e.udpForward(s, j.payload)
	}
	s.lastUsed.Store(r.e.clk.Nanos())
}

// drainStale forwards responses that arrived on the session socket
// after an earlier datagram's receive window closed — a NAT forwards
// late responses for as long as the mapping lives. They bypass the DNS
// measurement (their transaction already timed out and was counted),
// and they count as UDPLateRelayed rather than UDPRelayed: their
// originating request was already accounted under UDPNoResponse, so
// folding them into UDPRelayed would double-book the datagram.
func (r *udpRelay) drainStale(s *udpSession) {
	for {
		resp, ok := s.sock.TryRecv()
		if !ok {
			return
		}
		if !s.dns {
			r.e.ctr.udpLate.Add(1)
			r.e.ctr.udpBytesDown.Add(int64(len(resp)))
			r.e.traffic.udp(s.app, 0, int64(len(resp)))
		}
		r.e.emit(packet.UDPPacket(s.flow.Dst, s.flow.Src, resp))
	}
}

// ActiveUDPSessions reports the live NAT-style UDP session count.
func (e *Engine) ActiveUDPSessions() int {
	return e.udp.sessions.Len()
}
