package engine

import (
	"strconv"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/sockets"
)

// RegisterMetrics wires the engine's existing hot-path state into a
// metrics registry. Everything here is a scrape-time read: counters
// are the same atomics Stats() snapshots, ring occupancy is two atomic
// loads per worker, and selector depths take each selector's mutex
// once per scrape (connection-rate locks, never the packet path). The
// relay pays nothing until something gathers.
func (e *Engine) RegisterMetrics(r *metrics.Registry) {
	ctr := func(name, help string, a *atomic.Int64) {
		r.CounterFunc("mopeye_engine_"+name, help, func() float64 { return float64(a.Load()) })
	}
	ctr("packets_from_tun_total", "Packets read from the tunnel device.", &e.ctr.packetsFromTun)
	ctr("packets_to_tun_total", "Packets written back to the tunnel device.", &e.ctr.packetsToTun)
	ctr("bytes_up_total", "TCP payload bytes relayed app->server.", &e.ctr.bytesUp)
	ctr("bytes_down_total", "TCP payload bytes relayed server->app.", &e.ctr.bytesDown)
	ctr("syns_total", "TCP SYNs accepted from apps.", &e.ctr.syns)
	ctr("established_total", "Relay connections fully spliced.", &e.ctr.established)
	ctr("connect_failures_total", "Upstream connects that failed.", &e.ctr.connectFailures)
	ctr("tcp_measurements_total", "TCP RTT measurements recorded.", &e.ctr.tcpMeasurements)
	ctr("dns_measurements_total", "DNS RTT measurements recorded.", &e.ctr.dnsMeasurements)
	ctr("dns_timeouts_total", "Relayed DNS transactions that timed out.", &e.ctr.dnsTimeouts)
	ctr("pure_acks_total", "Pure ACK segments observed.", &e.ctr.pureACKs)
	ctr("decode_errors_total", "Tunnel packets that failed to decode.", &e.ctr.decodeErrors)
	ctr("udp_relayed_total", "Non-DNS UDP transactions relayed with a response.", &e.ctr.udpRelayed)
	ctr("udp_dropped_total", "UDP datagrams shed without a delivery attempt.", &e.ctr.udpDropped)
	ctr("udp_no_response_total", "Relayed UDP requests whose receive window closed empty.", &e.ctr.udpNoResponse)
	ctr("udp_late_relayed_total", "Late UDP responses forwarded by a stale drain.", &e.ctr.udpLate)
	ctr("udp_bytes_up_total", "UDP payload bytes relayed app->server.", &e.ctr.udpBytesUp)
	ctr("udp_bytes_down_total", "UDP payload bytes relayed server->app.", &e.ctr.udpBytesDown)
	ctr("read_batches_total", "Burst reads completed on the batched TUN path.", &e.ctr.readBatches)
	ctr("batched_packets_total", "Packets carried by completed burst reads.", &e.ctr.batchedPackets)

	r.GaugeFunc("mopeye_engine_read_batch_limit",
		"Current reader burst limit (fixed ReadBatch, or the AIMD governor's live value).",
		func() float64 { return float64(e.ctr.readBatchLimit.Load()) })
	r.GaugeFunc("mopeye_engine_avg_read_batch",
		"Realised burst size: batched packets per completed burst read.",
		func() float64 {
			b := e.ctr.readBatches.Load()
			if b == 0 {
				return 0
			}
			return float64(e.ctr.batchedPackets.Load()) / float64(b)
		})
	r.GaugeFunc("mopeye_engine_active_flows", "Live spliced TCP connections.",
		func() float64 { return float64(e.flows.Len()) })
	r.GaugeFunc("mopeye_engine_active_udp_sessions", "Live NAT-style UDP sessions.",
		func() float64 { return float64(e.ActiveUDPSessions()) })
	r.GaugeFunc("mopeye_engine_workers", "Configured packet-processing workers.",
		func() float64 { return float64(e.Workers()) })

	// Per-worker ring occupancy: tail-head over the SPSC atomics, so a
	// scrape sees each lane's backlog without touching the lane.
	r.CollectGauges("mopeye_engine_ring_occupancy",
		"Packets queued in each worker's input ring.",
		func() []metrics.Sample {
			out := make([]metrics.Sample, 0, len(e.workers))
			for _, w := range e.workers {
				occ := w.q.tail.Load() - w.q.head.Load()
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{metrics.L("worker", strconv.Itoa(w.id))},
					Value:  float64(occ),
				})
			}
			return out
		})
	r.CollectGauges("mopeye_engine_ring_capacity",
		"Capacity of each worker's input ring.",
		func() []metrics.Sample {
			out := make([]metrics.Sample, 0, len(e.workers))
			for _, w := range e.workers {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{metrics.L("worker", strconv.Itoa(w.id))},
					Value:  float64(w.q.capacity()),
				})
			}
			return out
		})

	// Selector state, one sample per selector: the per-worker selectors
	// on the shared-nothing path, or the single shared selector
	// (labeled "shared") on the Workers=1 / SharedDispatcher paths.
	type labeledSelector struct {
		label string
		sel   *sockets.Selector
	}
	selectors := func() []labeledSelector {
		if len(e.sels) > 0 {
			out := make([]labeledSelector, len(e.sels))
			for i, s := range e.sels {
				out[i] = labeledSelector{label: strconv.Itoa(i), sel: s}
			}
			return out
		}
		return []labeledSelector{{label: "shared", sel: e.sel}}
	}
	selGauge := func(name, help string, pick func(sockets.SelectorStats) float64) {
		r.CollectGauges("mopeye_engine_"+name, help, func() []metrics.Sample {
			ls := selectors()
			out := make([]metrics.Sample, 0, len(ls))
			for _, s := range ls {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{metrics.L("selector", s.label)},
					Value:  pick(s.sel.Stats()),
				})
			}
			return out
		})
	}
	selCounter := func(name, help string, pick func(sockets.SelectorStats) float64) {
		r.CollectCounters("mopeye_engine_"+name, help, func() []metrics.Sample {
			ls := selectors()
			out := make([]metrics.Sample, 0, len(ls))
			for _, s := range ls {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{metrics.L("selector", s.label)},
					Value:  pick(s.sel.Stats()),
				})
			}
			return out
		})
	}
	selCounter("selector_selects_total", "Select returns per selector.",
		func(st sockets.SelectorStats) float64 { return float64(st.Selects) })
	selCounter("selector_wakeups_total", "Explicit selector wakeups.",
		func(st sockets.SelectorStats) float64 { return float64(st.Wakeups) })
	selGauge("selector_ready_depth", "Keys queued ready on each selector right now.",
		func(st sockets.SelectorStats) float64 { return float64(st.ReadyDepth) })
	selGauge("selector_keys", "Keys registered on each selector.",
		func(st sockets.SelectorStats) float64 { return float64(st.Keys) })
}
