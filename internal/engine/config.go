// Package engine implements MopEye itself: the VpnService-based
// opportunistic measurement engine of §2–§3, with every design
// alternative the paper evaluates available as configuration so the
// optimisations can be measured as ablations (Tables 1–4, Figure 5).
//
// Architecture (Figure 4 of the paper): a TunReader thread retrieves
// raw IP packets from the TUN device into a read queue; a single
// MainWorker thread multiplexes the read queue and all socket events on
// one selector; temporary socket-connect threads perform the blocking
// external connect() that yields the RTT measurement; a TunWriter
// thread drains a write queue into the tunnel.
package engine

import (
	"time"

	"repro/internal/tcpsm"
)

// ReadMode selects how TunReader retrieves packets (§3.1).
type ReadMode int

// Read modes.
const (
	// ReadBlocking is MopEye's zero-delay retrieval: the TUN descriptor
	// is switched to blocking mode and read from a dedicated thread.
	ReadBlocking ReadMode = iota
	// ReadPoll is the ToyVpn/PrivacyGuard paradigm: non-blocking reads
	// with a fixed sleep between empty polls.
	ReadPoll
	// ReadPollAdaptive is ToyVpn's "intelligent sleeping": the sleep
	// pauses while consecutive reads succeed (Haystack adopts a similar
	// idea).
	ReadPollAdaptive
)

// WriteScheme selects how packets reach the tunnel (§3.5.1, Table 1).
type WriteScheme int

// Write schemes.
const (
	// DirectWrite writes from whichever thread produced the packet.
	DirectWrite WriteScheme = iota
	// QueueWriteOldPut enqueues to a dedicated TunWriter thread using a
	// plain wait/notify queue.
	QueueWriteOldPut
	// QueueWriteNewPut enqueues to TunWriter with the sleep-counter
	// algorithm that avoids most wait/notify handoffs (MopEye's choice).
	QueueWriteNewPut
)

// MappingMode selects the packet-to-app mapping strategy (§3.3).
type MappingMode int

// Mapping modes.
const (
	// MapLazy is MopEye's design: mapping is deferred to the
	// socket-connect thread, and concurrent threads elect one parser.
	MapLazy MappingMode = iota
	// MapEager parses the proc tables on the main thread for every SYN
	// (the pre-optimisation behaviour behind Figure 5(a)).
	MapEager
	// MapCache caches by remote endpoint, Haystack-style — fast but
	// wrong when two apps share a server endpoint (§3.3).
	MapCache
	// MapOff disables attribution (packets relay, records say unknown).
	MapOff
)

// ProtectMode selects how sockets are exempted from the VPN (§3.5.2).
type ProtectMode int

// Protect modes.
const (
	// ProtectDisallowed uses the one-time addDisallowedApplication
	// call (Android 5.0+, MopEye's choice).
	ProtectDisallowed ProtectMode = iota
	// ProtectPerSocket calls protect(socket) per connection, in the
	// socket-connect thread so only the SYN is penalised.
	ProtectPerSocket
	// ProtectPerSocketMainThread calls protect(socket) on the main
	// thread before spawning the connect (the naive placement).
	ProtectPerSocketMainThread
)

// Config selects the engine variant.
type Config struct {
	ReadMode     ReadMode
	PollInterval time.Duration // sleep between empty polls for ReadPoll*

	// PollBurst is ReadPollAdaptive's burst budget: how many empty
	// polls after a successful read stay on the short interval before
	// the poller backs off to PollInterval. Zero selects the ToyVpn
	// default of 8; negative disables the burst window (every empty
	// poll sleeps the long interval).
	PollBurst int

	// ReadBatch bounds how many tunnel packets the reader retrieves per
	// burst on the multi-worker path: tun.ReadBatch amortises the TUN
	// queue lock across the burst the way readv/recvmmsg amortise
	// syscalls, and the emit side batches tunnel writes at the same
	// grain. Zero selects the default of 64; 1 degenerates to
	// packet-at-a-time (the batching ablation). Workers=1 always runs
	// the paper's per-packet §3.1 read loop regardless. With
	// ReadBatchAuto set this is the adaptive governor's ceiling.
	ReadBatch int

	// ReadBatchAuto replaces the fixed burst size with an AIMD governor
	// (readbatch.go): the reader grows its burst limit additively while
	// bursts come back full (the tunnel has a backlog worth amortising)
	// and halves it when bursts come back mostly empty, between a small
	// floor and ReadBatch as the ceiling. The realised limit is
	// observable as Stats.ReadBatchLimit. Ignored at Workers=1.
	ReadBatchAuto bool

	// RingSize is the per-worker SPSC ring capacity on the multi-worker
	// path, rounded up to a power of two; zero selects 1024. When a
	// worker's ring is full the reader blocks, pushing backpressure to
	// the TUN queue, which drops on overflow like a real device.
	RingSize int

	// Workers selects how many packet-processing workers run. The
	// paper-faithful default is 1: the single MainWorker thread of
	// Figure 4, which is what every ablation (Tables 1–4) measures.
	// With N > 1 the engine runs the shared-nothing sharded pipeline:
	// every worker owns its own selector and its own SPSC packet ring,
	// each flow pinned (and its socket registered) to the worker owning
	// its flow-table shard, so neither packets nor readiness events
	// ever cross a shared stage. MainLoopPoll > 0 (the Haystack-style
	// polled loop) always runs single-worker.
	Workers int

	// SharedDispatcher reverts the multi-worker engine to its pre-
	// shared-nothing shape: one selector for all sockets, drained by a
	// dedicated dispatcher goroutine that claims each readiness event
	// and routes it to the owning worker's event lane. Kept as the
	// ablation arm that prices the shared stage (`paperbench -exp
	// dispatch -dispatcher shared`); per-worker selectors are the
	// default. Ignored at Workers=1.
	SharedDispatcher bool

	// FlowShards is the flow-table shard count (rounded up to a power
	// of two); zero selects flowtable.DefaultShards. More shards than
	// workers keeps the shard → worker assignment even.
	FlowShards int

	// MainLoopPoll, when positive, replaces the event-driven MainWorker
	// (Select + Wakeup, §3.2) with a fixed-interval poll-process cycle:
	// sleep, then drain whatever sockets and tunnel packets have
	// accumulated. This is the single-threaded loop structure of
	// poll-based relays like Haystack; it batches both directions and
	// is the mechanism behind their throughput collapse (Table 3).
	MainLoopPoll time.Duration

	WriteScheme WriteScheme
	// SpinThreshold is newPut's sleep-counter threshold (§3.5.1).
	SpinThreshold int

	Mapping MappingMode
	// MapWait is the lazy mapper's sleep while another thread parses;
	// the paper chose 50 ms.
	MapWait time.Duration

	Protect ProtectMode

	// BlockingConnectMeasure runs connect() in a temporary blocking
	// thread and timestamps around it (§2.4). When false, the engine
	// uses a non-blocking connect and timestamps at the selector event,
	// exposing the dispatch-noise inaccuracy the paper fixed.
	BlockingConnectMeasure bool

	// DeferRegister performs selector register() in the socket-connect
	// thread after the internal handshake instead of on the main thread
	// (§3.4 "minimizing the use of expensive calls").
	DeferRegister bool

	// PerPacketCost charges extra main-thread work per relayed data
	// packet (zero for MopEye; the Haystack baseline uses it to model
	// traffic content inspection).
	PerPacketCost time.Duration
	// InspectPackets feeds the resource meter's inspection counter.
	InspectPackets bool

	MSS    int
	Window int

	// DNSTimeout bounds each relayed DNS transaction (§2.4).
	DNSTimeout time.Duration
	// UDPTimeout bounds generic (non-DNS) UDP associations.
	UDPTimeout time.Duration

	// UDPPoolSize bounds the pooled UDP relay workers performing the
	// blocking per-datagram send/receive (the §2.4 temporary-thread
	// work, now bounded — a datagram flood reuses these workers instead
	// of spawning one goroutine per packet). Zero selects the default
	// of 8.
	UDPPoolSize int
	// UDPSessionIdle is how long a NAT-style UDP session (one external
	// socket per app flow) survives without traffic before the idle
	// sweeper expires it. Zero selects the default of one minute.
	UDPSessionIdle time.Duration

	// DNSInflightLimit caps how many pooled relay workers may sit in a
	// blocking DNS receive at once. Each DNS transaction parks its
	// worker for up to DNSTimeout, so against a dead (100%-timeout)
	// resolver an unbounded burst of queries wedges the entire pool for
	// seconds and starves relayed UDP. Queries beyond the cap are shed
	// and counted in UDPDropped — the bounded-resolver-queue behaviour
	// a stub resolver's retry logic expects. Zero selects
	// max(1, UDPPoolSize/2); negative disables the cap.
	DNSInflightLimit int

	// Record tagging for the crowd dataset dimensions.
	NetType string
	ISP     string
	Country string

	// Seed makes the engine's random choices reproducible.
	Seed int64
}

// defaultReadBatch is the burst size used when Config.ReadBatch is
// zero: large enough to amortise the TUN queue lock across a flood's
// bursts, small enough that a burst fits comfortably in every worker's
// ring.
const defaultReadBatch = 64

// Default returns MopEye's shipped configuration: every §3 optimisation
// on.
func Default() Config {
	return Config{
		ReadMode:               ReadBlocking,
		Workers:                1,
		WriteScheme:            QueueWriteNewPut,
		SpinThreshold:          512,
		Mapping:                MapLazy,
		MapWait:                50 * time.Millisecond,
		Protect:                ProtectDisallowed,
		BlockingConnectMeasure: true,
		DeferRegister:          true,
		MSS:                    tcpsm.DefaultMSS,
		Window:                 tcpsm.DefaultWindow,
		DNSTimeout:             5 * time.Second,
		UDPTimeout:             2 * time.Second,
		NetType:                "WiFi",
		ISP:                    "SimNet",
		Country:                "SG",
		Seed:                   1,
	}
}

// ToyVpn returns the unoptimised configuration the paper starts from:
// sleep-polled reads, direct writes, eager mapping, per-socket protect
// on the main thread, selector-event measurement.
func ToyVpn() Config {
	c := Default()
	c.ReadMode = ReadPoll
	c.PollInterval = 100 * time.Millisecond // the SDK sample's sleep
	c.WriteScheme = DirectWrite
	c.Mapping = MapEager
	c.Protect = ProtectPerSocketMainThread
	c.BlockingConnectMeasure = false
	c.DeferRegister = false
	return c
}
