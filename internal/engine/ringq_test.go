package engine

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Unit and property tests for the per-worker SPSC ring queue: FIFO
// order under concurrency (the invariant per-flow ordering rests on),
// producer backpressure when the ring is full, event-lane fairness
// under a packet flood, close semantics, and the allocation-free
// steady state.

func TestRingQRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, defaultRingSize}, {-1, defaultRingSize}, {1, 1}, {2, 2}, {3, 4}, {1000, 1024},
	} {
		if got := newRingQ(tc.in).capacity(); got != tc.want {
			t.Errorf("newRingQ(%d) capacity = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRingQFIFOAcrossWrap pushes far more packets than the capacity
// through a concurrent producer/consumer pair and asserts strict FIFO —
// the wraparound indices must never skip or duplicate a slot.
func TestRingQFIFOAcrossWrap(t *testing.T) {
	q := newRingQ(16)
	const n = 5000
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			it, ok := q.take()
			if !ok {
				done <- errf("queue closed at %d", i)
				return
			}
			if got := binary.BigEndian.Uint32(it.raw); got != uint32(i) {
				done <- errf("pop %d returned %d: FIFO violated", i, got)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		raw := make([]byte, 4)
		binary.BigEndian.PutUint32(raw, uint32(i))
		q.pushPacket(raw)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("consumer stalled")
	}
}

// TestRingQPerFlowOrderAcrossRings mimics the reader's scatter: one
// producer distributes sequence-numbered packets of many flows across
// several rings by flow hash (every packet of a flow lands in the same
// ring), and each ring's consumer asserts per-flow sequence numbers
// arrive strictly in order.
func TestRingQPerFlowOrderAcrossRings(t *testing.T) {
	const (
		rings = 4
		flows = 32
		perFl = 400
	)
	qs := make([]*ringQ, rings)
	for i := range qs {
		qs[i] = newRingQ(64) // small: exercises full-ring backpressure
	}
	var wg sync.WaitGroup
	errs := make(chan error, rings)
	for _, q := range qs {
		wg.Add(1)
		go func(q *ringQ) {
			defer wg.Done()
			last := make(map[uint32]uint32)
			for {
				it, ok := q.take()
				if !ok {
					errs <- nil
					return
				}
				flow := binary.BigEndian.Uint32(it.raw[0:])
				seq := binary.BigEndian.Uint32(it.raw[4:])
				if prev, seen := last[flow]; seen && seq != prev+1 {
					errs <- errf("flow %d: seq %d after %d", flow, seq, prev)
					return
				}
				last[flow] = seq
			}
		}(q)
	}
	// Interleave flows the way a real tunnel does: round-robin over
	// flows, sequence numbers per flow.
	for seq := uint32(0); seq < perFl; seq++ {
		for flow := uint32(0); flow < flows; flow++ {
			raw := make([]byte, 8)
			binary.BigEndian.PutUint32(raw[0:], flow)
			binary.BigEndian.PutUint32(raw[4:], seq)
			qs[flow%rings].pushPacket(raw)
		}
	}
	for _, q := range qs {
		q.closePackets()
		q.closeEvents()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRingQEventsNotStarvedByPacketFlood fills the packet lane, then
// pushes one event: the consumer must receive the event on its next
// take even though packets are still pending (the event lane is checked
// first, for the price of one atomic load).
func TestRingQEventsNotStarvedByPacketFlood(t *testing.T) {
	q := newRingQ(64)
	for i := 0; i < 64; i++ {
		q.pushPacket([]byte{byte(i)})
	}
	q.pushEvent(workItem{ready: 1})
	it, ok := q.take()
	if !ok {
		t.Fatal("take failed")
	}
	if it.raw != nil || it.ready != 1 {
		t.Fatalf("take under flood returned a packet before the pending event: %+v", it)
	}
}

// TestRingQFullBlocksProducerUntilDrain verifies bounded-queue
// backpressure: a push beyond capacity parks the producer until the
// consumer pops.
func TestRingQFullBlocksProducerUntilDrain(t *testing.T) {
	q := newRingQ(4)
	for i := 0; i < 4; i++ {
		q.pushPacket([]byte{byte(i)})
	}
	pushed := make(chan struct{})
	go func() {
		q.pushPacket([]byte{99})
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("push into a full ring returned without a pop")
	case <-time.After(20 * time.Millisecond):
	}
	if raw, ok := q.popPacket(); !ok || raw[0] != 0 {
		t.Fatalf("pop = %v, %v", raw, ok)
	}
	select {
	case <-pushed:
	case <-time.After(5 * time.Second):
		t.Fatal("producer not released by the pop")
	}
}

// TestRingQCloseReleasesConsumer parks a consumer on an empty queue and
// closes both lanes: take must return ok=false.
func TestRingQCloseReleasesConsumer(t *testing.T) {
	q := newRingQ(8)
	got := make(chan bool, 1)
	go func() {
		_, ok := q.take()
		got <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.closePackets()
	q.closeEvents()
	select {
	case ok := <-got:
		if ok {
			t.Fatal("take returned an item from an empty closed queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not release the parked consumer")
	}
}

// TestRingQDrainsBacklogAfterClose ensures close-then-drain semantics:
// items pushed before close are all delivered before take reports
// closed.
func TestRingQDrainsBacklogAfterClose(t *testing.T) {
	q := newRingQ(8)
	for i := 0; i < 5; i++ {
		q.pushPacket([]byte{byte(i)})
	}
	q.pushEvent(workItem{ready: 2})
	q.closePackets()
	q.closeEvents()
	var pkts, evs int
	for {
		it, ok := q.take()
		if !ok {
			break
		}
		if it.raw != nil {
			pkts++
		} else {
			evs++
		}
	}
	if pkts != 5 || evs != 1 {
		t.Fatalf("drained %d packets, %d events; want 5, 1", pkts, evs)
	}
}

// TestRingQSteadyStateAllocFree pins the allocation-free claim: a
// push/pop pair on a non-contended ring performs zero allocations.
func TestRingQSteadyStateAllocFree(t *testing.T) {
	q := newRingQ(64)
	raw := []byte{1, 2, 3}
	allocs := testing.AllocsPerRun(1000, func() {
		q.pushPacket(raw)
		if _, ok := q.popPacket(); !ok {
			t.Fatal("pop missed")
		}
	})
	if allocs != 0 {
		t.Errorf("push/pop allocates %.1f per op, want 0", allocs)
	}
}

// errf keeps the test goroutines terse.
func errf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}
