package engine

import (
	"net/netip"
	"sync"
	"time"

	"repro/internal/procnet"
)

// This file implements the packet-to-app mapping strategies of §2.2 and
// §3.3.
//
// The kernel offers no API for socket-to-app mapping; the proc files
// /proc/net/tcp|tcp6 list each connection with the owning app's UID.
// Parsing them is expensive (Figure 5(a)), so MopEye (a) defers the
// mapping off the main thread into the socket-connect thread, after the
// external connect has finished, and (b) elects a single parser among
// concurrent socket-connect threads; the rest sleep briefly and read the
// elected thread's result. Unlike a remote-endpoint cache (Haystack),
// the result is always derived from the kernel's own table, so two apps
// sharing a server endpoint can never be confused.

// appInfo is a resolved attribution.
type appInfo struct {
	UID  int
	Name string
}

var unknownApp = appInfo{UID: -1, Name: "unknown"}

// mapper resolves a local port to the owning app.
type mapper struct {
	reader *procnet.Reader
	pm     *procnet.PackageManager
	mode   MappingMode
	wait   time.Duration
	clk    interface {
		Nanos() int64
		Sleep(time.Duration)
	}

	mu      sync.Mutex
	parsing bool
	// byPort is the latest parse result, keyed by local port.
	byPort map[uint16]procnet.Entry
	// version is the clock time at which the latest parse *started*: a
	// parse that began after a connection was registered is guaranteed
	// to include it.
	version int64
	// byRemote is the MapCache-mode cache keyed by remote endpoint.
	byRemote map[netip.AddrPort]appInfo
	// udpByPort/udpVersion mirror byPort/version for the udp/udp6
	// tables, used by the pooled UDP relay's attribution.
	udpByPort  map[uint16]procnet.Entry
	udpVersion int64

	parses   int             // parses performed
	avoided  int             // resolutions that needed no parse of their own
	misses   int             // resolutions that gave up
	overhead []time.Duration // per-resolution mapping work (Figure 5)
}

func newMapper(reader *procnet.Reader, pm *procnet.PackageManager, mode MappingMode, wait time.Duration, clk interface {
	Nanos() int64
	Sleep(time.Duration)
}) *mapper {
	if wait <= 0 {
		wait = 50 * time.Millisecond
	}
	return &mapper{
		reader:    reader,
		pm:        pm,
		mode:      mode,
		wait:      wait,
		clk:       clk,
		byPort:    make(map[uint16]procnet.Entry),
		byRemote:  make(map[netip.AddrPort]appInfo),
		udpByPort: make(map[uint16]procnet.Entry),
	}
}

// resolve maps the connection with the given local endpoint (and remote,
// for cache mode) to an app. synAt is the engine time the SYN was seen;
// only parses started at or after it are trusted to contain the entry.
// The returned duration is the mapping work charged to the caller, the
// quantity plotted in Figure 5.
func (m *mapper) resolve(local netip.AddrPort, remote netip.AddrPort, synAt int64) (appInfo, time.Duration) {
	start := m.clk.Nanos()
	var info appInfo
	switch m.mode {
	case MapOff:
		info = unknownApp
	case MapEager:
		info = m.parseAndFind(local)
	case MapCache:
		info = m.resolveCache(local, remote)
	default:
		info = m.resolveLazy(local, synAt)
	}
	d := time.Duration(m.clk.Nanos() - start)
	m.mu.Lock()
	m.overhead = append(m.overhead, d)
	if info == unknownApp {
		m.misses++
	}
	m.mu.Unlock()
	return info, d
}

// parseAndFind performs one full parse and looks the port up.
func (m *mapper) parseAndFind(local netip.AddrPort) appInfo {
	began := m.clk.Nanos()
	entries, err := m.reader.ParseAll()
	if err != nil {
		return unknownApp
	}
	m.mu.Lock()
	m.parses++
	byPort := make(map[uint16]procnet.Entry, len(entries))
	for _, e := range entries {
		byPort[e.Local.Port()] = e
	}
	m.byPort = byPort
	m.version = began
	e, ok := m.byPort[local.Port()]
	m.mu.Unlock()
	if !ok {
		return unknownApp
	}
	return m.lookupUID(e.UID)
}

// resolveLazy implements the §3.3 algorithm.
func (m *mapper) resolveLazy(local netip.AddrPort, synAt int64) appInfo {
	port := local.Port()
	parsedMyself := false
	deadline := m.clk.Nanos() + int64(time.Second)
	for {
		m.mu.Lock()
		if e, ok := m.byPort[port]; ok && m.version >= synAt {
			if !parsedMyself {
				m.avoided++
			}
			m.mu.Unlock()
			return m.lookupUID(e.UID)
		}
		fresh := m.version >= synAt
		if fresh {
			// A sufficiently recent parse exists but lacks the port:
			// the connection is already gone from the kernel table.
			if !parsedMyself {
				m.avoided++
			}
			m.mu.Unlock()
			return unknownApp
		}
		if m.parsing {
			// Another socket-connect thread is parsing on our behalf;
			// sleep the paper's 50 ms and re-check (§3.3).
			m.mu.Unlock()
			if m.clk.Nanos() > deadline {
				return unknownApp
			}
			m.clk.Sleep(m.wait)
			continue
		}
		m.parsing = true
		m.mu.Unlock()

		began := m.clk.Nanos()
		entries, err := m.reader.ParseAll()

		m.mu.Lock()
		m.parsing = false
		if err == nil {
			m.parses++
			parsedMyself = true
			byPort := make(map[uint16]procnet.Entry, len(entries))
			for _, e := range entries {
				byPort[e.Local.Port()] = e
			}
			m.byPort = byPort
			m.version = began
		}
		m.mu.Unlock()
		if err != nil {
			return unknownApp
		}
	}
}

// resolveCache implements the Haystack-style remote-endpoint cache. The
// accuracy hazard is inherent: the first app to reach a remote endpoint
// claims every later flow to it (§3.3's Facebook-app vs
// Facebook-in-Chrome example); the shared-library/ad-module case makes
// this common in practice.
func (m *mapper) resolveCache(local, remote netip.AddrPort) appInfo {
	m.mu.Lock()
	if info, ok := m.byRemote[remote]; ok {
		m.avoided++
		m.mu.Unlock()
		return info
	}
	m.mu.Unlock()
	info := m.parseAndFind(local)
	m.mu.Lock()
	m.byRemote[remote] = info
	m.mu.Unlock()
	return info
}

// resolveUDP maps a datagram socket's local port to its owning app via
// the udp/udp6 proc tables. It runs once per UDP relay session, always
// on a pooled relay worker — never the packet path — with the same
// freshness rule as the TCP path: only a parse begun at or after the
// session's first datagram is trusted to contain the socket. It keeps
// its own cache and deliberately leaves the §3.3 lazy-mapping stats
// untouched; those feed Figure 5, which measures the TCP SYN path.
func (m *mapper) resolveUDP(local netip.AddrPort, at int64) appInfo {
	if m.mode == MapOff {
		return unknownApp
	}
	port := local.Port()
	m.mu.Lock()
	if e, ok := m.udpByPort[port]; ok && m.udpVersion >= at {
		m.mu.Unlock()
		return m.lookupUID(e.UID)
	}
	m.mu.Unlock()
	began := m.clk.Nanos()
	entries, err := m.reader.ParseAllUDP()
	if err != nil {
		return unknownApp
	}
	m.mu.Lock()
	byPort := make(map[uint16]procnet.Entry, len(entries))
	for _, e := range entries {
		byPort[e.Local.Port()] = e
	}
	m.udpByPort = byPort
	m.udpVersion = began
	e, ok := byPort[port]
	m.mu.Unlock()
	if !ok {
		return unknownApp
	}
	return m.lookupUID(e.UID)
}

func (m *mapper) lookupUID(uid int) appInfo {
	name, ok := m.pm.NameForUID(uid)
	if !ok {
		return appInfo{UID: uid, Name: "uid:unknown"}
	}
	return appInfo{UID: uid, Name: name}
}

// MappingStats summarises mapper behaviour for §3.3's evaluation: total
// resolutions, how many performed a parse, how many were avoided, and
// the per-resolution overhead samples for the Figure 5 CDFs.
type MappingStats struct {
	Resolutions int
	Parses      int
	Avoided     int
	Misses      int
	Overheads   []time.Duration
}

// MitigationRate is the fraction of resolutions that avoided parsing
// (67.8% in the paper's web-browsing run).
func (s MappingStats) MitigationRate() float64 {
	if s.Resolutions == 0 {
		return 0
	}
	return float64(s.Avoided) / float64(s.Resolutions)
}

func (m *mapper) stats() MappingStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MappingStats{
		Resolutions: len(m.overhead),
		Parses:      m.parses,
		Avoided:     m.avoided,
		Misses:      m.misses,
		Overheads:   append([]time.Duration(nil), m.overhead...),
	}
}
