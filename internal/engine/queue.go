package engine

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// This file implements the tunnel write path of §3.5.1 and the read
// queue of §3.2.
//
// Table 1 compares four schemes. directWrite has every producer thread
// write to the (single, serialised) tunnel itself, so producers observe
// the write syscall cost plus contention. queueWrite moves the write to
// a dedicated TunWriter thread; the producer cost becomes the enqueue.
// With a plain wait/notify queue (oldPut), enqueuing while the writer
// sleeps pays the notify handoff, which is where the 1–5 ms overheads
// come from. newPut keeps the writer spinning through a sleep counter
// so the handoff almost never happens.

// notifyHandoff models the java wait/notify wakeup cost paid by the
// notifier: usually sub-millisecond, with a 1–5 ms tail that dominates
// the oldPut column of Table 1.
func notifyHandoff(r *rand.Rand) time.Duration {
	p := r.Float64()
	switch {
	case p < 0.42:
		return time.Millisecond + time.Duration(r.Int63n(int64(4*time.Millisecond)))
	case p < 0.55:
		return 400*time.Microsecond + time.Duration(r.Int63n(int64(600*time.Microsecond)))
	default:
		return time.Duration(r.Int63n(int64(250 * time.Microsecond)))
	}
}

// outPacket is one queued tunnel write: the encoded bytes plus the
// pool token of the buffer backing them, recycled by TunWriter after
// the tunnel write copies the bytes out.
type outPacket struct {
	raw []byte
	buf *[]byte
}

// packetQueue is the TunWriter's input queue with both put algorithms.
type packetQueue struct {
	clk      clock.Clock
	newPut   bool
	spinMax  int
	spinWait time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	items   []outPacket
	waiting bool // the TunWriter is parked in wait()
	closed  bool
	rng     *rand.Rand

	putHist stats.DelayHistogram
}

func newPacketQueue(clk clock.Clock, newPut bool, spinMax int, seed int64) *packetQueue {
	q := &packetQueue{
		clk:      clk,
		newPut:   newPut,
		spinMax:  spinMax,
		spinWait: 100 * time.Microsecond,
		rng:      rand.New(rand.NewSource(seed)),
	}
	if q.spinMax <= 0 {
		q.spinMax = 512
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// put enqueues one packet, charging the notify handoff when the writer
// thread must be woken from wait(). The enqueue duration is recorded in
// the put histogram (the oldPut/newPut columns of Table 1). buf is the
// pool token for raw's backing buffer (may be nil); ownership moves to
// the queue and then to TunWriter.
func (q *packetQueue) put(raw []byte, buf *[]byte) {
	start := q.clk.Nanos()
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		if buf != nil {
			encodeBufPool.Put(buf)
		}
		return
	}
	q.items = append(q.items, outPacket{raw: raw, buf: buf})
	mustWake := q.waiting
	if mustWake {
		q.cond.Signal()
	}
	var handoff time.Duration
	if mustWake {
		handoff = notifyHandoff(q.rng)
	}
	q.mu.Unlock()
	if handoff > 0 {
		q.clk.SleepFine(handoff)
	}
	d := time.Duration(q.clk.Nanos() - start)
	q.mu.Lock()
	q.putHist.Add(d)
	q.mu.Unlock()
}

// take dequeues the next packet for TunWriter, blocking according to the
// configured algorithm. ok is false when the queue is closed and empty.
func (q *packetQueue) take() (raw []byte, buf *[]byte, ok bool) {
	if q.newPut {
		return q.takeNewPut()
	}
	return q.takeOldPut()
}

// takeOldPut is the traditional scheme: park in wait() whenever empty.
func (q *packetQueue) takeOldPut() ([]byte, *[]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		if q.closed {
			return nil, nil, false
		}
		q.waiting = true
		q.cond.Wait()
		q.waiting = false
	}
	out := q.items[0]
	q.items = q.items[1:]
	return out.raw, out.buf, true
}

// takeNewPut implements §3.5.1's sleep counter: keep checking (with a
// tiny sleep per round) while the counter is below the threshold;
// decrement (halve) the counter whenever the queue is found non-empty;
// only park in wait() when the counter reaches the threshold. The
// counter resets on wakeup.
func (q *packetQueue) takeNewPut() ([]byte, *[]byte, bool) {
	counter := 0
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			out := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			counter /= 2
			return out.raw, out.buf, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, nil, false
		}
		if counter >= q.spinMax {
			q.waiting = true
			q.cond.Wait()
			q.waiting = false
			counter = 0
			q.mu.Unlock()
			continue
		}
		q.mu.Unlock()
		counter++
		q.clk.SleepFine(q.spinWait)
	}
}

// takeBatch dequeues up to len(dst) packets for the batched TunWriter
// (the multi-worker emit path): the whole backlog moves in one lock
// acquisition, so the queue lock is paid once per burst the way the
// tunnel's WriteBatch pays its locks once per burst. Blocking follows
// the configured put algorithm — the newPut sleep counter keeps
// `waiting` false through traffic bursts so producers keep skipping the
// notify handoff (§3.5.1); oldPut parks in wait() directly. ok is false
// once the queue is closed and fully drained.
func (q *packetQueue) takeBatch(dst []outPacket) (int, bool) {
	if q.newPut {
		return q.takeBatchNewPut(dst)
	}
	return q.takeBatchOldPut(dst)
}

// drainLocked moves up to len(dst) items out. Caller holds q.mu.
func (q *packetQueue) drainLocked(dst []outPacket) int {
	n := copy(dst, q.items)
	for i := 0; i < n; i++ {
		q.items[i] = outPacket{}
	}
	q.items = q.items[n:]
	return n
}

func (q *packetQueue) takeBatchOldPut(dst []outPacket) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		if q.closed {
			return 0, false
		}
		q.waiting = true
		q.cond.Wait()
		q.waiting = false
	}
	return q.drainLocked(dst), true
}

func (q *packetQueue) takeBatchNewPut(dst []outPacket) (int, bool) {
	counter := 0
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			n := q.drainLocked(dst)
			q.mu.Unlock()
			counter /= 2
			return n, true
		}
		if q.closed {
			q.mu.Unlock()
			return 0, false
		}
		if counter >= q.spinMax {
			q.waiting = true
			q.cond.Wait()
			q.waiting = false
			counter = 0
			q.mu.Unlock()
			continue
		}
		q.mu.Unlock()
		counter++
		q.clk.SleepFine(q.spinWait)
	}
}

func (q *packetQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *packetQueue) putHistogram() stats.DelayHistogram {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.putHist
}

// readQueue receives tunnel packets from TunReader for MainWorker
// (§3.2). TunReader wakes the selector after each push, so MainWorker's
// single Select point monitors both event sources.
type readQueue struct {
	mu    sync.Mutex
	items [][]byte
}

func (q *readQueue) push(raw []byte) {
	q.mu.Lock()
	q.items = append(q.items, raw)
	q.mu.Unlock()
}

func (q *readQueue) pop() ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil, false
	}
	raw := q.items[0]
	q.items = q.items[1:]
	return raw, true
}

// The per-worker input queues of the sharded pipeline live in ringq.go:
// a bounded SPSC ring for tunnel packets (fed by the batched reader)
// plus a low-rate event lane for socket readiness (fed by the
// dispatcher). They replaced the shared-mutex workQueue this file used
// to define — the PR 2 loopback-ceiling profile showed that queue's
// locks as the top engine hotspot.
