package engine

import (
	"errors"
	"time"

	"repro/internal/measure"
	"repro/internal/packet"
	"repro/internal/relay"
	"repro/internal/sockets"
	"repro/internal/tcpsm"
)

// Tunnel-packet and socket-event handling (§2.3), shared by the single
// MainWorker loop and the sharded multi-worker pipeline. Handlers for
// one flow always run on one thread (MainWorker, or the flow's pinned
// worker), so the only cross-thread state they touch — the flow table,
// the counters, the traffic book, the stores — is individually
// synchronised.

// handleTunnelPacket decodes and processes one tunnel packet on the
// calling (single-worker) thread.
func (e *Engine) handleTunnelPacket(raw []byte) {
	pkt, err := packet.Decode(raw)
	if err != nil {
		e.ctr.decodeErrors.Add(1)
		return
	}
	e.processPacket(pkt, len(raw))
}

// processPacket implements §2.3's tunnel-packet processing for an
// already-decoded packet.
func (e *Engine) processPacket(pkt *packet.Packet, rawLen int) {
	e.ctr.packetsFromTun.Add(1)
	if e.cfg.PerPacketCost > 0 {
		e.clk.SleepFine(e.cfg.PerPacketCost)
	}
	if e.cfg.InspectPackets {
		e.meter.AddInspected(1)
	}
	e.meter.AddPackets(1, int64(rawLen))

	switch {
	case pkt.IsTCP():
		e.handleTunnelTCP(pkt)
	case pkt.IsUDP():
		e.handleTunnelUDP(pkt)
	}
}

func (e *Engine) handleTunnelTCP(pkt *packet.Packet) {
	flow := packet.Flow(pkt)
	t := pkt.TCP

	cl, _ := e.flows.Get(flow)

	switch {
	case t.Has(packet.FlagSYN) && !t.Has(packet.FlagACK):
		if cl != nil {
			return // SYN retransmission while connect in flight
		}
		e.onSYN(pkt, flow)

	case t.Has(packet.FlagRST):
		if cl == nil {
			return
		}
		// §2.3 TCP RST: close the external connection, drop the client.
		cl.SM.OnRST()
		e.removeClient(cl)
		if ch := cl.Ch(); ch != nil {
			ch.Reset()
		}

	case t.Has(packet.FlagFIN):
		if cl == nil {
			return
		}
		data, err := cl.SM.OnFIN(pkt)
		if err == nil && len(data) > 0 {
			cl.EnqueueWrite(data)
		}
		cl.RequestHalfClose()
		e.triggerWrite(cl)

	case len(pkt.Payload) > 0:
		if cl == nil {
			return
		}
		data, err := cl.SM.OnData(pkt)
		if err != nil || len(data) == 0 {
			return
		}
		e.ctr.bytesUp.Add(int64(len(data)))
		cl.EnqueueWrite(data)
		e.triggerWrite(cl)

	default:
		// Pure ACK: discarded, nothing to relay (§2.3).
		if cl != nil {
			cl.SM.OnPureACK()
		}
		e.ctr.pureACKs.Add(1)
	}
}

// triggerWrite raises the socket write event for a client whose buffer
// has data (or a pending half close). Before the external connection
// exists the data simply waits in the buffer; the socket-connect thread
// triggers the flush after registering.
func (e *Engine) triggerWrite(cl *relay.TCPClient) {
	if k, ch := cl.Key(), cl.Ch(); k != nil && ch != nil && ch.Connected() {
		k.SetInterestOps(sockets.OpRead | sockets.OpWrite)
	}
}

// onSYN creates the state machine and client and starts the temporary
// socket-connect thread (§2.4).
func (e *Engine) onSYN(pkt *packet.Packet, flow packet.FlowKey) {
	e.rngMu.Lock()
	iss := e.rng.Uint32()
	e.rngMu.Unlock()
	sm, err := newMachine(pkt, iss, e.emit)
	if err != nil {
		return
	}
	cl := relay.NewTCPClient(flow, sm, e.clk.Nanos())
	cl.Shard = e.flows.Shard(flow)
	e.ctr.syns.Add(1)
	e.flows.Put(flow, cl)
	e.meter.ObserveConns(e.flows.Len())

	if e.cfg.Mapping == MapEager {
		// Pre-§3.3 behaviour: parse on the main thread, per SYN.
		info, _ := e.mapper.resolve(flow.Src, flow.Dst, cl.SYNAt)
		cl.SetApp(info.UID, info.Name)
	}
	if e.cfg.Protect == ProtectPerSocketMainThread {
		// Naive placement: the protect cost lands on MainWorker,
		// stalling every other flow (§3.5.2).
		ch := e.prov.Open()
		ch.Protect()
		cl.SetCh(ch)
	}

	if e.cfg.BlockingConnectMeasure {
		go e.socketConnectBlocking(cl)
	} else {
		e.socketConnectEventDriven(cl)
	}
}

// socketConnectBlocking is the temporary socket-connect thread: blocking
// connect with timestamps immediately around the call (§2.4), then the
// internal handshake, deferred selector registration (§3.4), and lazy
// mapping (§3.3).
func (e *Engine) socketConnectBlocking(cl *relay.TCPClient) {
	// The temporary thread pays its spawn/scheduling latency first;
	// the measurement timestamps below are unaffected (§2.4's design
	// keeps them immediately around the connect call).
	e.prov.ChargeThreadSpawn()
	ch := cl.Ch()
	if ch == nil {
		ch = e.prov.Open()
		cl.SetCh(ch)
	}
	if e.cfg.Protect == ProtectPerSocket {
		// §3.5.2 mitigation for pre-5.0: pay protect() here so only
		// this connection's SYN is delayed.
		ch.Protect()
	}
	t0 := e.clk.Nanos()
	err := ch.Connect(cl.Flow.Dst)
	t1 := e.clk.Nanos()
	if err != nil {
		cl.SM.Refuse()
		e.connectFailed(cl)
		return
	}
	// Only after establishing the external connection is the handshake
	// with the app completed (§2.3).
	if err := cl.SM.CompleteHandshake(); err != nil {
		e.removeClient(cl)
		ch.Close()
		return
	}
	e.ctr.established.Add(1)

	// DeferRegister or not, registration happens here in blocking mode;
	// the §3.4 cost model is identical either way. The key lands on the
	// selector of the worker that owns this flow's shard (the shared
	// selector at Workers=1), pinning readiness delivery to the thread
	// that relays the flow.
	key := e.selectorFor(cl.Shard).Register(ch, sockets.OpRead, cl)
	cl.SetKey(key)
	if cl.PendingWrites() || cl.HalfCloseRequested() {
		key.SetInterestOps(sockets.OpRead | sockets.OpWrite)
	}

	// Lazy mapping: after the connection is established or failed, so
	// the app-side handshake is never delayed (§3.3).
	if e.cfg.Mapping != MapEager {
		info, _ := e.mapper.resolve(cl.Flow.Src, cl.Flow.Dst, cl.SYNAt)
		cl.SetApp(info.UID, info.Name)
	}
	e.recordTCP(cl, time.Duration(t1-t0))
}

// socketConnectEventDriven is the pre-§2.4 alternative: non-blocking
// connect whose completion is observed through the selector, inheriting
// dispatch latency into the RTT (the inaccuracy Table 2 shows for
// MobiPerf-style measurement).
func (e *Engine) socketConnectEventDriven(cl *relay.TCPClient) {
	ch := cl.Ch()
	if ch == nil {
		ch = e.prov.Open()
		cl.SetCh(ch)
	}
	if e.cfg.Protect == ProtectPerSocket {
		ch.Protect()
	}
	key := e.selectorFor(cl.Shard).Register(ch, sockets.OpRead|sockets.OpConnect, cl)
	cl.SetKey(key)
	connStart := e.clk.Nanos()
	key.Attach(&eventConnect{client: cl, start: connStart})
	if err := ch.ConnectNonBlocking(cl.Flow.Dst); err != nil {
		cl.SM.Refuse()
		e.connectFailed(cl)
	}
}

// eventConnect carries the non-blocking connect context on the key.
type eventConnect struct {
	client *relay.TCPClient
	start  int64
}

func (e *Engine) connectFailed(cl *relay.TCPClient) {
	e.ctr.connectFailures.Add(1)
	e.removeClient(cl)
	if ch := cl.Ch(); ch != nil {
		ch.Close()
	}
}

func (e *Engine) removeClient(cl *relay.TCPClient) {
	if !cl.MarkRemoved() {
		return
	}
	// Fold the connection's volume into the per-app accounting; the
	// attribution is final by now (mapping runs before any teardown
	// path a healthy connection takes).
	st := cl.SM.Stats()
	_, app := cl.AppInfo()
	e.traffic.volume(app, st.BytesFromApp, st.BytesToApp)
	e.flows.Delete(cl.Flow)
}

// recordTCP stores one per-app RTT measurement via the engine's emit
// point (emit.go), which also feeds the subscriber broadcast.
func (e *Engine) recordTCP(cl *relay.TCPClient, rtt time.Duration) {
	e.ctr.tcpMeasurements.Add(1)
	uid, app := cl.AppInfo()
	e.traffic.connection(app)
	e.record(measure.KindTCP, app, uid, cl.Flow.Dst, "", rtt)
}

// handleSocketKey processes §2.3's socket events on the calling
// (single-worker) thread, claiming the key's readiness itself.
func (e *Engine) handleSocketKey(k *sockets.SelectionKey) {
	e.handleSocketOps(k, k.ReadyOps())
}

// handleSocketOps processes the given ready set for a key. In the
// multi-worker pipeline the dispatcher claims ReadyOps (it is
// consume-once) and passes it here on the pinned worker.
func (e *Engine) handleSocketOps(k *sockets.SelectionKey, ready sockets.Ops) {
	if ready == 0 {
		return
	}
	var cl *relay.TCPClient
	switch a := k.Attachment().(type) {
	case *relay.TCPClient:
		cl = a
	case *eventConnect:
		cl = a.client
		if ready&sockets.OpConnect != 0 {
			e.finishEventConnect(k, a)
			ready &^= sockets.OpConnect
		}
	default:
		return
	}
	if cl == nil || cl.Removed() {
		return
	}
	if ready&sockets.OpRead != 0 {
		e.socketRead(cl)
	}
	if ready&sockets.OpWrite != 0 {
		e.socketWrite(cl)
	}
}

// finishEventConnect completes a non-blocking connect observed via the
// selector.
func (e *Engine) finishEventConnect(k *sockets.SelectionKey, ec *eventConnect) {
	cl := ec.client
	ch := cl.Ch()
	now := e.clk.Nanos()
	if err := ch.FinishConnect(); err != nil {
		if errors.Is(err, sockets.ErrConnPending) {
			return
		}
		cl.SM.Refuse()
		e.connectFailed(cl)
		return
	}
	if err := cl.SM.CompleteHandshake(); err != nil {
		e.removeClient(cl)
		ch.Close()
		return
	}
	e.ctr.established.Add(1)
	k.Attach(cl)
	k.SetInterestOps(sockets.OpRead)
	if cl.PendingWrites() || cl.HalfCloseRequested() {
		k.SetInterestOps(sockets.OpRead | sockets.OpWrite)
	}
	if e.cfg.Mapping != MapEager {
		info, _ := e.mapper.resolve(cl.Flow.Src, cl.Flow.Dst, cl.SYNAt)
		cl.SetApp(info.UID, info.Name)
	}
	// The RTT includes selector dispatch latency — the inaccuracy the
	// blocking socket-connect thread eliminates.
	e.recordTCP(cl, time.Duration(now-ec.start))
}

// socketRead handles §2.3 Socket Read: drain incoming server data into
// internal-connection data packets; on EOF generate FIN; on reset
// generate RST.
func (e *Engine) socketRead(cl *relay.TCPClient) {
	ch := cl.Ch()
	buf := make([]byte, 16*1024)
	for {
		n, err := ch.Read(buf)
		if n > 0 {
			e.ctr.bytesDown.Add(int64(n))
			e.meter.AddPackets(int64((n+e.cfg.MSS-1)/e.cfg.MSS), int64(n))
			if e.cfg.InspectPackets {
				e.meter.AddInspected(int64((n + e.cfg.MSS - 1) / e.cfg.MSS))
			}
			if serr := cl.SM.SendData(buf[:n]); serr != nil {
				return
			}
			continue
		}
		switch {
		case err == nil:
			return // would block; wait for the next read event
		case errors.Is(err, sockets.ErrEOF):
			_ = cl.SM.SendFIN()
			e.maybeFinish(cl)
			return
		default:
			cl.SM.SendRST()
			e.removeClient(cl)
			ch.Close()
			return
		}
	}
}

// socketWrite handles §2.3 Socket Write: flush the write buffer to the
// server, then instruct the state machine to ACK the app; on a pending
// half close, half-close the external connection and clear write
// interest.
func (e *Engine) socketWrite(cl *relay.TCPClient) {
	ch := cl.Ch()
	bufs := cl.TakeWrites()
	wrote := false
	for _, b := range bufs {
		if _, err := ch.Write(b); err != nil {
			cl.SM.SendRST()
			e.removeClient(cl)
			ch.Close()
			return
		}
		wrote = true
	}
	if wrote {
		_ = cl.SM.AckApp()
	}
	if cl.HalfCloseRequested() && !cl.PendingWrites() {
		_ = ch.CloseWrite()
		e.maybeFinish(cl)
	}
	if k := cl.Key(); k != nil {
		k.SetInterestOps(sockets.OpRead)
	}
}

// maybeFinish removes clients whose both directions have finished.
func (e *Engine) maybeFinish(cl *relay.TCPClient) {
	if cl.SM.State() == tcpsm.StateClosed {
		e.removeClient(cl)
		if ch := cl.Ch(); ch != nil {
			ch.Close()
		}
	}
}
