package engine

// Adaptive burst sizing for the batched TUN read path (Config.
// ReadBatchAuto). A fixed ReadBatch is a workload bet: large bursts
// amortise the TUN queue lock under flood but, on a trickling tunnel,
// make every read scan a mostly-empty batch slice and deliver packets
// in lumps. The governor turns the realised burst fill — the live form
// of the BatchedPackets/ReadBatches ratio the Stats expose — into the
// knob itself, AIMD-style:
//
//   - a burst that comes back full means the tunnel had at least a
//     burst's worth of backlog, so there is more amortisation to be
//     had: grow the limit additively (+batchGrowStep, up to the
//     configured ReadBatch ceiling);
//   - a burst that comes back less than half-full means the limit has
//     overshot the arrival rate: halve it (down to batchFloor);
//   - anything between leaves the limit alone.
//
// Additive growth keeps a flood from yo-yoing the limit off one short
// burst; multiplicative decrease sheds an idle tunnel's oversized
// limit in a few bursts. Under a sustained flood the limit converges
// to the ceiling — which is why the adaptive mode benchmarks within
// noise of the best hand-tuned fixed batch — and on an idle tunnel it
// settles at the floor.

const (
	// batchFloor is the smallest limit the governor will shrink to;
	// below this the batching machinery costs more than it amortises.
	batchFloor = 4
	// batchGrowStep is the additive increase per saturated burst.
	batchGrowStep = 8
)

// burstGovernor holds the adaptive limit. A pinned governor (fixed
// ReadBatch) is one whose floor equals its ceiling, so observe() can
// never move cur — the reader runs one code path either way. Owned by
// the single reader goroutine; the engine publishes cur to the
// readBatchLimit gauge for Stats.
type burstGovernor struct {
	cur   int
	floor int
	ceil  int
}

// newBurstGovernor builds the governor for a resolved config: adaptive
// between batchFloor and cfg.ReadBatch when cfg.ReadBatchAuto, pinned
// at cfg.ReadBatch otherwise. An adaptive governor starts at the floor
// — the idle-tunnel state — and earns its way up.
func newBurstGovernor(cfg Config) *burstGovernor {
	ceil := cfg.ReadBatch
	if ceil <= 0 {
		ceil = defaultReadBatch
	}
	if !cfg.ReadBatchAuto {
		return &burstGovernor{cur: ceil, floor: ceil, ceil: ceil}
	}
	floor := batchFloor
	if floor > ceil {
		floor = ceil
	}
	return &burstGovernor{cur: floor, floor: floor, ceil: ceil}
}

// limit returns the current burst limit.
func (g *burstGovernor) limit() int { return g.cur }

// observe feeds back one burst's realised size n (n ≤ g.cur).
func (g *burstGovernor) observe(n int) {
	switch {
	case n >= g.cur:
		if g.cur += batchGrowStep; g.cur > g.ceil {
			g.cur = g.ceil
		}
	case n*2 < g.cur:
		if g.cur /= 2; g.cur < g.floor {
			g.cur = g.floor
		}
	}
}
