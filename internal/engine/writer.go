package engine

import (
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/tun"
)

// The tunnel write path of §3.5.1, with buffer pooling: every
// synthesised packet is encoded into an MTU-sized buffer drawn from a
// sync.Pool and recycled once the tunnel write has copied it out, so
// the encode hot path allocates nothing in steady state.

// encodeBufPool recycles encode buffers on the emit path.
var encodeBufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, tun.MTU)
		return &b
	},
}

// tunWriter drains the write queue into the tunnel (§3.5.1).
func (e *Engine) tunWriter() {
	defer e.wg.Done()
	for {
		raw, buf, ok := e.writeQ.take()
		if !ok {
			return
		}
		start := e.clk.Nanos()
		err := e.dev.Write(raw)
		d := time.Duration(e.clk.Nanos() - start)
		if buf != nil {
			encodeBufPool.Put(buf)
		}
		e.recordWrite(d, err == nil)
	}
}

// emit sends one synthesised packet toward the app, through the
// configured write scheme. This is the state machines' emit hook.
func (e *Engine) emit(p *packet.Packet) {
	buf := encodeBufPool.Get().(*[]byte)
	raw, err := p.AppendEncode((*buf)[:0])
	// Keep the (possibly regrown) backing array with the pool token so
	// a reallocation upgrades the pooled buffer instead of leaking it.
	*buf = raw[:0]
	if err != nil {
		encodeBufPool.Put(buf)
		return
	}
	if e.writeQ != nil {
		// Ownership of buf moves to TunWriter, which recycles it after
		// the tunnel write.
		e.writeQ.put(raw, buf)
		return
	}
	// directWrite: pay the tunnel write (and its contention) here, on
	// the producing thread.
	start := e.clk.Nanos()
	werr := e.dev.Write(raw)
	d := time.Duration(e.clk.Nanos() - start)
	encodeBufPool.Put(buf)
	e.recordWrite(d, werr == nil)
}

// recordWrite folds one tunnel write into the delay histogram and the
// packet counter.
func (e *Engine) recordWrite(d time.Duration, ok bool) {
	e.histMu.Lock()
	e.writeHist.Add(d)
	e.histMu.Unlock()
	if ok {
		e.ctr.packetsToTun.Add(1)
	}
}
