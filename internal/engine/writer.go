package engine

import (
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/tun"
)

// The tunnel write path of §3.5.1, with buffer pooling: every
// synthesised packet is encoded into an MTU-sized buffer drawn from a
// sync.Pool and recycled once the tunnel write has copied it out, so
// the encode hot path allocates nothing in steady state.

// encodeBufPool recycles encode buffers on the emit path.
var encodeBufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, tun.DefaultMTU)
		return &b
	},
}

// tunWriter drains the write queue into the tunnel (§3.5.1). This is
// the paper's per-packet writer, used whenever the engine runs
// single-worker; the multi-worker pipeline runs tunWriterBatched.
func (e *Engine) tunWriter() {
	defer e.wg.Done()
	for {
		raw, buf, ok := e.writeQ.take()
		if !ok {
			return
		}
		start := e.clk.Nanos()
		err := e.dev.Write(raw)
		d := time.Duration(e.clk.Nanos() - start)
		if buf != nil {
			encodeBufPool.Put(buf)
		}
		e.recordWrite(d, err == nil)
	}
}

// tunWriterBatched drains the write queue in bursts: the queue's
// backlog moves out under one lock (packetQueue.takeBatch), the whole
// burst goes through one tun.WriteBatch (one tunnel serialisation, one
// inbound-queue lock), and every pooled encode buffer is recycled to
// encodeBufPool afterwards — the emit side's counterpart of the batched
// read path. Burst size tracks Config.ReadBatch so the two ends of the
// engine amortise at the same grain.
func (e *Engine) tunWriterBatched() {
	defer e.wg.Done()
	batch := make([]outPacket, e.cfg.ReadBatch)
	raws := make([][]byte, 0, len(batch))
	for {
		n, ok := e.writeQ.takeBatch(batch)
		if !ok {
			return
		}
		raws = raws[:0]
		for i := 0; i < n; i++ {
			raws = append(raws, batch[i].raw)
		}
		start := e.clk.Nanos()
		written, _ := e.dev.WriteBatch(raws)
		d := time.Duration(e.clk.Nanos() - start)
		for i := 0; i < n; i++ {
			if batch[i].buf != nil {
				encodeBufPool.Put(batch[i].buf)
			}
			batch[i] = outPacket{}
		}
		e.recordWriteBatch(d, n, written)
	}
}

// emit sends one synthesised packet toward the app, through the
// configured write scheme. This is the state machines' emit hook.
func (e *Engine) emit(p *packet.Packet) {
	buf := encodeBufPool.Get().(*[]byte)
	raw, err := p.AppendEncode((*buf)[:0])
	// Keep the (possibly regrown) backing array with the pool token so
	// a reallocation upgrades the pooled buffer instead of leaking it.
	*buf = raw[:0]
	if err != nil {
		encodeBufPool.Put(buf)
		return
	}
	if e.writeQ != nil {
		// Ownership of buf moves to TunWriter, which recycles it after
		// the tunnel write.
		e.writeQ.put(raw, buf)
		return
	}
	// directWrite: pay the tunnel write (and its contention) here, on
	// the producing thread.
	start := e.clk.Nanos()
	werr := e.dev.Write(raw)
	d := time.Duration(e.clk.Nanos() - start)
	encodeBufPool.Put(buf)
	e.recordWrite(d, werr == nil)
}

// recordWrite folds one tunnel write into the delay histogram and the
// packet counter.
func (e *Engine) recordWrite(d time.Duration, ok bool) {
	e.histMu.Lock()
	e.writeHist.Add(d)
	e.histMu.Unlock()
	if ok {
		e.ctr.packetsToTun.Add(1)
	}
}

// recordWriteBatch folds one burst into the accounting: the histogram
// receives the per-packet mean of the burst's elapsed time (the
// histogram's Total keeps counting packets; the batched path is never
// what Table 1 measures — that runs Workers=1 on the per-packet
// writer), and the packet counter advances by the packets the device
// accepted.
func (e *Engine) recordWriteBatch(d time.Duration, attempted, written int) {
	if attempted <= 0 {
		return
	}
	per := d / time.Duration(attempted)
	e.histMu.Lock()
	for i := 0; i < attempted; i++ {
		e.writeHist.Add(per)
	}
	e.histMu.Unlock()
	e.ctr.packetsToTun.Add(int64(written))
}
