package engine_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/phonestack"
)

// Concurrency stress for the sharded engine core, meant to run under
// `go test -race`: multiple injector goroutines flood the engine with
// connections and data while other goroutines hammer the snapshot APIs
// (Stats, ActiveClients, AppTraffic) and Stop lands mid-flood. Run for
// the paper-faithful single worker and every multi-worker topology:
// the default per-worker selectors (fixed and AIMD-governed bursts,
// plus a ring smaller than the burst to stress the wake-before-park
// backpressure path) and the legacy shared-dispatcher ablation arm.

func TestEngineStressSingleWorker(t *testing.T) { stressEngine(t, 1, nil) }
func TestEngineStressFourWorkers(t *testing.T)  { stressEngine(t, 4, nil) }
func TestEngineStressSharedDispatcher(t *testing.T) {
	stressEngine(t, 4, func(cfg *engine.Config) { cfg.SharedDispatcher = true })
}
func TestEngineStressAdaptiveBatch(t *testing.T) {
	stressEngine(t, 4, func(cfg *engine.Config) { cfg.ReadBatchAuto = true })
}
func TestEngineStressAdaptiveTinyRing(t *testing.T) {
	stressEngine(t, 2, func(cfg *engine.Config) {
		cfg.ReadBatchAuto = true
		cfg.RingSize = 8
	})
}

func stressEngine(t *testing.T, workers int, tweak func(*engine.Config)) {
	cfg := engine.Default()
	cfg.Workers = workers
	if tweak != nil {
		tweak(&cfg)
	}
	tb := newTestbed(t, cfg)
	if got := tb.eng.Workers(); got != workers {
		t.Fatalf("Workers() = %d, want %d", got, workers)
	}

	const (
		injectors    = 6
		connsPerGoro = 5
	)
	var (
		wg        sync.WaitGroup
		relayed   atomic.Int64
		snapshots atomic.Int64
		liveConns sync.Map // *phonestack.Conn -> struct{}
	)

	// Injectors: real app connections doing an echo each. Errors are
	// tolerated once Stop has landed — the point is that nothing races
	// or deadlocks, not that every late connection succeeds. Open
	// connections are tracked so the shutdown sweep below can abort the
	// ones whose echo the Stop cut off mid-flight (the app-side Read
	// has no deadline, exactly like a real socket without SO_RCVTIMEO).
	for g := 0; g < injectors; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < connsPerGoro; i++ {
				conn, err := tb.phone.Connect(uidApp, tb.server, 2*time.Second)
				if err != nil {
					return
				}
				liveConns.Store(conn, struct{}{})
				msg := []byte(fmt.Sprintf("stress-%d", i))
				if _, err := conn.Write(msg); err == nil {
					buf := make([]byte, len(msg))
					if conn.ReadFull(buf) == nil {
						relayed.Add(1)
					}
				}
				conn.Close()
				liveConns.Delete(conn)
			}
		}()
	}

	// Snapshotters: concurrent reads of every aggregate view. The small
	// sleep keeps them from starving the relay on a single-core host —
	// the race detector sees the interleavings either way.
	stopSnaps := make(chan struct{})
	var snapWG sync.WaitGroup
	for g := 0; g < 3; g++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				select {
				case <-stopSnaps:
					return
				default:
				}
				st := tb.eng.Stats()
				if st.Established > st.SYNs {
					t.Error("established exceeds SYNs")
					return
				}
				tb.eng.ActiveClients()
				tb.eng.AppTraffic()
				snapshots.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	// Let the flood make progress, then Stop while injectors are still
	// going — the shutdown path must coexist with live traffic.
	deadline := time.Now().Add(5 * time.Second)
	for relayed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tb.eng.Stop()

	// Abort connections orphaned by the Stop (their server data will
	// never arrive, and the app-side Read would park forever). A late
	// connection may establish after a sweep, so keep sweeping until
	// every injector has exited.
	injectorsDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(injectorsDone)
	}()
sweep:
	for {
		liveConns.Range(func(k, _ any) bool {
			k.(*phonestack.Conn).Abort()
			return true
		})
		select {
		case <-injectorsDone:
			break sweep
		case <-time.After(50 * time.Millisecond):
		}
	}
	close(stopSnaps)
	snapWG.Wait()

	if relayed.Load() == 0 {
		t.Fatal("no echoes relayed before Stop")
	}
	if snapshots.Load() == 0 {
		t.Fatal("no snapshots taken")
	}
	if tb.eng.ActiveClients() != 0 {
		t.Errorf("%d clients survived Stop", tb.eng.ActiveClients())
	}
}

// TestWorkersRelayCorrectly runs the standard echo through the sharded
// pipeline: multi-worker mode must relay bytes exactly like the
// paper-faithful engine.
func TestWorkersRelayCorrectly(t *testing.T) {
	cfg := engine.Default()
	cfg.Workers = 4
	tb := newTestbed(t, cfg)
	const n = 8
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			msg := []byte(fmt.Sprintf("sharded hello %d", i))
			if _, err := conn.Write(msg); err != nil {
				done <- err
				return
			}
			buf := make([]byte, len(msg))
			if err := conn.ReadFull(buf); err != nil {
				done <- err
				return
			}
			if string(buf) != string(msg) {
				done <- fmt.Errorf("echo mismatch: %q", buf)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= n }, "records")
	st := tb.eng.Stats()
	if st.Established < n {
		t.Errorf("established %d < %d", st.Established, n)
	}
}

// TestWorkersEventDrivenConnect runs the sharded pipeline with the
// pre-§2.4 non-blocking connect: OpConnect completion is observed
// through the selector and routed to the flow's pinned worker, which
// swaps the key attachment from eventConnect to the client — the
// handoff that must be synchronised against the dispatcher's reads.
func TestWorkersEventDrivenConnect(t *testing.T) {
	cfg := engine.Default()
	cfg.Workers = 4
	cfg.BlockingConnectMeasure = false
	tb := newTestbed(t, cfg)
	const n = 8
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			msg := []byte("event-driven sharded")
			if _, err := conn.Write(msg); err != nil {
				done <- err
				return
			}
			buf := make([]byte, len(msg))
			done <- conn.ReadFull(buf)
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= n }, "records")
}

// TestAdaptivePollRelaysEndToEnd drives ReadPollAdaptive through a real
// connection: after the fix the burst window must not break relaying,
// and the engine still measures.
func TestAdaptivePollRelaysEndToEnd(t *testing.T) {
	cfg := engine.Default()
	cfg.ReadMode = engine.ReadPollAdaptive
	cfg.PollInterval = 50 * time.Millisecond
	tb := newTestbed(t, cfg)
	conn, err := tb.phone.Connect(uidApp, tb.server, 10*time.Second)
	if err != nil {
		t.Fatalf("connect through adaptive poller: %v", err)
	}
	defer conn.Close()
	msg := []byte("adaptive burst")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if err := conn.ReadFull(buf); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= 1 }, "record")
}
