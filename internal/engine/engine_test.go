package engine_test

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/phonestack"
	"repro/internal/procnet"
	"repro/internal/sockets"
	"repro/internal/tun"
)

// testbed wires a phone, a TUN device, a simulated network, and an
// engine together — the full Figure 2 topology.
type testbed struct {
	clk    clock.Clock
	net    *netsim.Network
	dev    *tun.Device
	table  *procnet.Table
	pm     *procnet.PackageManager
	phone  *phonestack.Phone
	eng    *engine.Engine
	server netip.AddrPort
	dns    netip.AddrPort
}

var (
	phoneVPNAddr = netip.MustParseAddr("10.0.0.2")
	phoneWANAddr = netip.MustParseAddr("100.64.0.5")
	serverAddr   = netip.MustParseAddrPort("93.184.216.34:80")
	dnsAddr      = netip.MustParseAddrPort("8.8.8.8:53")
)

const (
	uidApp  = 10001
	appName = "com.example.app"
	linkRTT = 4 * time.Millisecond // 2ms each way
)

func newTestbed(t *testing.T, cfg engine.Config) *testbed {
	t.Helper()
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: linkRTT / 2}, 1)
	net.HandleTCP(serverAddr, netsim.EchoHandler())
	zone := netsim.NewZone()
	zone.Add("example.com", serverAddr.Addr())
	net.HandleUDP(dnsAddr, 0, netsim.DNSHandler(zone))

	dev := tun.New(clk, 4096)
	table := procnet.NewTable()
	pm := procnet.NewPackageManager()
	pm.Install(uidApp, appName)
	phone := phonestack.New(clk, dev, phoneVPNAddr, table, 2)

	prov := sockets.NewProvider(net, clk, phoneWANAddr, sockets.ZeroCosts(), 3)
	reader := procnet.NewReader(table, clk, procnet.ZeroParseCost(), 4)
	eng := engine.New(cfg, engine.Deps{
		Clock:    clk,
		Device:   dev,
		Sockets:  prov,
		ProcNet:  reader,
		Packages: pm,
		Store:    measure.NewStore(),
	})
	eng.Start()
	tb := &testbed{
		clk: clk, net: net, dev: dev, table: table, pm: pm,
		phone: phone, eng: eng, server: serverAddr, dns: dnsAddr,
	}
	t.Cleanup(func() {
		tb.eng.Stop()
		tb.phone.Close()
		tb.dev.Close()
		tb.net.Close()
	})
	return tb
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

func TestRelayEstablishAndEcho(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatalf("connect through relay: %v", err)
	}
	defer conn.Close()

	msg := []byte("hello through the vpn relay")
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if err := conn.ReadFull(got); err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo mismatch: got %q want %q", got, msg)
	}
}

func TestRelayProducesPerAppMeasurement(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer conn.Close()

	waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= 1 }, "measurement record")
	recs := tb.eng.Store().Kind(measure.KindTCP)
	if len(recs) != 1 {
		t.Fatalf("got %d TCP records, want 1", len(recs))
	}
	r := recs[0]
	if r.App != appName {
		t.Errorf("record app = %q, want %q (lazy mapping should attribute correctly)", r.App, appName)
	}
	if r.Dst != tb.server {
		t.Errorf("record dst = %v, want %v", r.Dst, tb.server)
	}
	// The measured RTT must track the configured path RTT: the blocking
	// connect is timestamped immediately around the call. The upper
	// bound is generous because a loaded test machine inflates real
	// sleeps; the tight sub-ms accuracy claim is asserted against wire
	// ground truth (same-run comparison, load-invariant) in the mopeye
	// package's TestGroundTruthMatchesMeasurement.
	if r.RTT < linkRTT || r.RTT > linkRTT+25*time.Millisecond {
		t.Errorf("measured RTT %v not within [%v, %v]", r.RTT, linkRTT, linkRTT+25*time.Millisecond)
	}
}

func TestAppObservedConnectTracksPathRTT(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer conn.Close()
	// The app completes its handshake only after the external connect
	// (§2.3), so its observed latency is path RTT plus relay overhead.
	if conn.ConnectElapsed < linkRTT {
		t.Errorf("app connect elapsed %v < path RTT %v", conn.ConnectElapsed, linkRTT)
	}
	if conn.ConnectElapsed > linkRTT+50*time.Millisecond {
		t.Errorf("app connect elapsed %v too large (relay overhead)", conn.ConnectElapsed)
	}
}

func TestConnectionRefusedRelaysRST(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	noServer := netip.MustParseAddrPort("93.184.216.34:81")
	_, err := tb.phone.Connect(uidApp, noServer, 5*time.Second)
	if err == nil {
		t.Fatal("connect to closed port succeeded, want refusal")
	}
	if err != phonestack.ErrRefused {
		t.Fatalf("got %v, want ErrRefused", err)
	}
	st := tb.eng.Stats()
	if st.ConnectFailures != 1 {
		t.Errorf("ConnectFailures = %d, want 1", st.ConnectFailures)
	}
}

func TestDNSMeasurement(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	res, err := tb.phone.Resolve(uidApp, tb.dns, "example.com", 5*time.Second)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if res.Addr != tb.server.Addr() {
		t.Errorf("resolved %v, want %v", res.Addr, tb.server.Addr())
	}
	waitFor(t, 3*time.Second, func() bool {
		return len(tb.eng.Store().Kind(measure.KindDNS)) >= 1
	}, "DNS record")
	recs := tb.eng.Store().Kind(measure.KindDNS)
	r := recs[0]
	if r.Domain != "example.com" {
		t.Errorf("DNS record domain = %q, want example.com", r.Domain)
	}
	if r.RTT < linkRTT || r.RTT > linkRTT+25*time.Millisecond {
		t.Errorf("DNS RTT %v not near %v", r.RTT, linkRTT)
	}
}

func TestNXDomain(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	_, err := tb.phone.Resolve(uidApp, tb.dns, "nosuchname.example", 5*time.Second)
	if err != phonestack.ErrNXDomain {
		t.Fatalf("got %v, want ErrNXDomain", err)
	}
}

func TestAppRSTClosesExternal(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	conn.Abort()
	waitFor(t, 3*time.Second, func() bool { return tb.eng.ActiveClients() == 0 }, "client removal after RST")
}

func TestHalfCloseEchoDrains(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	msg := []byte("final words")
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if err := conn.ReadFull(got); err != nil {
		t.Fatalf("read: %v", err)
	}
	conn.Close()
	waitFor(t, 3*time.Second, func() bool { return tb.eng.ActiveClients() == 0 }, "teardown after close")
}

func TestMultipleConcurrentConnections(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	const n = 8
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			msg := []byte("concurrent")
			if _, err := conn.Write(msg); err != nil {
				done <- err
				return
			}
			buf := make([]byte, len(msg))
			done <- conn.ReadFull(buf)
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= n }, "n records")
}

func TestLargeTransferSegmentsAtMSS(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer conn.Close()
	payload := make([]byte, 200*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	go func() { _, _ = conn.Write(payload) }()
	got := make([]byte, len(payload))
	if err := conn.ReadFull(got); err != nil {
		t.Fatalf("read 200 KiB echo: %v", err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("corruption at byte %d: got %#x want %#x", i, got[i], payload[i])
		}
	}
}

func TestEngineStopReleasesBlockedRead(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	// No traffic at all: TunReader is parked in a blocking read. Stop
	// must return promptly thanks to the dummy-packet trick (§3.1).
	doneCh := make(chan struct{})
	go func() {
		tb.eng.Stop()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not release the blocked tunnel read")
	}
}

func TestEventDrivenMeasurementHasDispatchBias(t *testing.T) {
	// With non-blocking connects measured at the selector (the pre-§2.4
	// design) and Android-like dispatch costs, the measured RTT is
	// biased upward relative to the path RTT.
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: linkRTT / 2}, 1)
	net.HandleTCP(serverAddr, netsim.EchoHandler())
	dev := tun.New(clk, 4096)
	table := procnet.NewTable()
	pm := procnet.NewPackageManager()
	pm.Install(uidApp, appName)
	phone := phonestack.New(clk, dev, phoneVPNAddr, table, 2)
	prov := sockets.NewProvider(net, clk, phoneWANAddr, sockets.AndroidCosts(), 3)
	reader := procnet.NewReader(table, clk, procnet.ZeroParseCost(), 4)

	cfg := engine.Default()
	cfg.BlockingConnectMeasure = false
	eng := engine.New(cfg, engine.Deps{
		Clock: clk, Device: dev, Sockets: prov, ProcNet: reader, Packages: pm,
	})
	eng.Start()
	defer func() {
		eng.Stop()
		phone.Close()
		dev.Close()
		net.Close()
	}()

	conn, err := phone.Connect(uidApp, serverAddr, 10*time.Second)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer conn.Close()
	waitFor(t, 5*time.Second, func() bool { return eng.Store().Len() >= 1 }, "record")
	r := eng.Store().Snapshot()[0]
	if r.RTT < linkRTT {
		t.Errorf("event-driven RTT %v below path RTT %v", r.RTT, linkRTT)
	}
}
