package engine

import (
	"net/netip"
	"time"

	"repro/internal/measure"
)

// record is the engine's single measurement emit point: every
// opportunistic RTT — TCP connect() RTTs from the relay workers
// (tcp.go) and DNS transaction RTTs from the pooled UDP relay
// (dns.go) — funnels through here into the store. The store appends
// it and broadcasts it, in the same mutex hold, to any live
// subscribers over their bounded rings (measure/broadcast.go), so the
// push pipeline observes records in exactly the order the snapshot
// accessors do. With no subscribers attached the broadcast is a
// nil-slice range: this path costs the relay workers nothing beyond
// the store append it always paid.
func (e *Engine) record(kind measure.Kind, app string, uid int, dst netip.AddrPort, domain string, rtt time.Duration) {
	e.store.Add(measure.Record{
		Kind:    kind,
		App:     app,
		UID:     uid,
		Dst:     dst,
		Domain:  domain,
		RTT:     rtt,
		At:      e.clk.Now(),
		NetType: e.cfg.NetType,
		ISP:     e.cfg.ISP,
		Country: e.cfg.Country,
	})
}
