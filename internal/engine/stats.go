package engine

import (
	"sync/atomic"

	"repro/internal/stats"
)

// Stats aggregates engine activity.
type Stats struct {
	SYNs            int
	Established     int
	ConnectFailures int
	TCPMeasurements int
	DNSMeasurements int
	PacketsFromTun  int
	PacketsToTun    int
	BytesUp         int64
	BytesDown       int64
	PureACKs        int
	UDPRelayed      int
	DecodeErrors    int

	// DNSTimeouts counts relayed DNS transactions whose blocking
	// receive expired (§2.4 leaves retries to the app's resolver; the
	// failure is still worth surfacing).
	DNSTimeouts int
	// UDPDropped counts datagrams the relay shed without attempting
	// delivery: pooled job-queue overflow, NAT-table exhaustion, or the
	// DNS inflight cap — UDP's contract under flood.
	UDPDropped int
	// UDPNoResponse counts relayed non-DNS requests whose receive
	// window (Config.UDPTimeout) closed with nothing back. The request
	// went out and is gone as far as this transaction is concerned;
	// nothing is silent — every relayed datagram lands in exactly one
	// of UDPRelayed or UDPNoResponse.
	UDPNoResponse int
	// UDPLateRelayed counts responses forwarded by a later datagram's
	// stale drain after their own transaction had already been counted
	// in UDPNoResponse (a NAT forwards late responses for as long as
	// the mapping lives). Kept separate from UDPRelayed so the
	// per-datagram accounting identity stays exact:
	// UDPLateRelayed ≤ UDPNoResponse always.
	UDPLateRelayed int
	// UDPBytesUp/UDPBytesDown are relayed non-DNS UDP payload volumes
	// (app->server / server->app).
	UDPBytesUp   int64
	UDPBytesDown int64

	// ReadBatches counts burst reads on the multi-worker batched read
	// path; BatchedPackets is the packets those bursts carried, so
	// BatchedPackets/ReadBatches is the realised burst size (1.0 means
	// batching bought nothing). Both stay zero on the paper-faithful
	// single-worker path.
	ReadBatches    int
	BatchedPackets int

	// ReadBatchLimit is the reader's current burst limit: the fixed
	// Config.ReadBatch normally, or the AIMD governor's live value
	// under ReadBatchAuto — watching it against AvgReadBatch shows
	// whether the governor has converged on the workload. Zero on the
	// single-worker path.
	ReadBatchLimit int
	// AvgReadBatch is the realised burst size,
	// BatchedPackets/ReadBatches (0 when no burst has completed).
	AvgReadBatch float64

	// WriteHist is the tunnel-write delay as observed by the writing
	// thread; PutHist is the enqueue delay (Table 1).
	WriteHist stats.DelayHistogram
	PutHist   stats.DelayHistogram

	Mapping MappingStats
}

// counters holds the hot engine counters as atomics. The paper's engine
// could guard these with the one engine mutex because one MainWorker
// produced nearly all of them; with N workers (and the UDP/connect
// threads) updating concurrently, atomics keep the hot path free of a
// global lock and let Stats() snapshot without stalling the relay.
type counters struct {
	syns            atomic.Int64
	established     atomic.Int64
	connectFailures atomic.Int64
	tcpMeasurements atomic.Int64
	dnsMeasurements atomic.Int64
	packetsFromTun  atomic.Int64
	packetsToTun    atomic.Int64
	bytesUp         atomic.Int64
	bytesDown       atomic.Int64
	pureACKs        atomic.Int64
	udpRelayed      atomic.Int64
	decodeErrors    atomic.Int64
	dnsTimeouts     atomic.Int64
	udpDropped      atomic.Int64
	udpNoResponse   atomic.Int64
	udpLate         atomic.Int64
	udpBytesUp      atomic.Int64
	udpBytesDown    atomic.Int64
	readBatches     atomic.Int64
	batchedPackets  atomic.Int64
	readBatchLimit  atomic.Int64 // gauge: the reader's current burst limit
}

// Stats snapshots the engine counters, folding in mapper and queue
// state. The counters are independent atomics, so the snapshot is not
// a single point in time; loading effects before their causes
// (measurements before established before SYNs) keeps the visible
// invariants — Established ≤ SYNs, TCPMeasurements ≤ Established —
// intact even while connections race the snapshot.
func (e *Engine) Stats() Stats {
	s := Stats{
		TCPMeasurements: int(e.ctr.tcpMeasurements.Load()),
		ConnectFailures: int(e.ctr.connectFailures.Load()),
		Established:     int(e.ctr.established.Load()),
		SYNs:            int(e.ctr.syns.Load()),
		DNSMeasurements: int(e.ctr.dnsMeasurements.Load()),
		PacketsFromTun:  int(e.ctr.packetsFromTun.Load()),
		PacketsToTun:    int(e.ctr.packetsToTun.Load()),
		BytesUp:         e.ctr.bytesUp.Load(),
		BytesDown:       e.ctr.bytesDown.Load(),
		PureACKs:        int(e.ctr.pureACKs.Load()),
		UDPRelayed:      int(e.ctr.udpRelayed.Load()),
		DecodeErrors:    int(e.ctr.decodeErrors.Load()),
		DNSTimeouts:     int(e.ctr.dnsTimeouts.Load()),
		UDPDropped:      int(e.ctr.udpDropped.Load()),
		UDPNoResponse:   int(e.ctr.udpNoResponse.Load()),
		UDPLateRelayed:  int(e.ctr.udpLate.Load()),
		UDPBytesUp:      e.ctr.udpBytesUp.Load(),
		UDPBytesDown:    e.ctr.udpBytesDown.Load(),
		ReadBatches:     int(e.ctr.readBatches.Load()),
		BatchedPackets:  int(e.ctr.batchedPackets.Load()),
		ReadBatchLimit:  int(e.ctr.readBatchLimit.Load()),
	}
	if s.ReadBatches > 0 {
		s.AvgReadBatch = float64(s.BatchedPackets) / float64(s.ReadBatches)
	}
	e.histMu.Lock()
	s.WriteHist = e.writeHist
	e.histMu.Unlock()
	s.Mapping = e.mapper.stats()
	if e.writeQ != nil {
		s.PutHist = e.writeQ.putHistogram()
	}
	return s
}

// ActiveClients reports the number of live spliced connections.
func (e *Engine) ActiveClients() int {
	return e.flows.Len()
}

// Workers reports how many packet-processing workers the engine runs
// (1 for the paper-faithful MainWorker loop).
func (e *Engine) Workers() int {
	return e.cfg.Workers
}
