package engine_test

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
)

// Tests for the batched TUN read path: the per-flow ordering property
// across every batch/worker configuration, and the batch accounting
// counters.

// TestPerFlowOrderingAcrossConfigs is the ordering property test the
// batched read path is gated on: each flow writes a stream of
// sequence-numbered messages through the relay and verifies the echoes
// come back with the sequence numbers in order and intact. The phone
// stack delivers only in-order segments (out-of-order data is dropped
// as duplicate, like a kernel without reassembly for a lossless
// tunnel), so any reordering introduced by the scatter path, the rings,
// or the batched writer surfaces as a corrupted or stalled stream. The
// grid covers the paper-faithful core, the ring path with batching
// disabled, two burst sizes, the AIMD-governed adaptive burst, and the
// legacy shared-dispatcher topology; a ring smaller than the in-flight
// packet count forces the reader's backpressure path too (including
// the adaptive governor's worst case, a burst larger than the ring).
func TestPerFlowOrderingAcrossConfigs(t *testing.T) {
	configs := []struct {
		name      string
		workers   int
		readBatch int
		ringSize  int
		auto      bool
		shared    bool
	}{
		{name: "workers=1", workers: 1},
		{name: "workers=4/readbatch=1", workers: 4, readBatch: 1},
		{name: "workers=4/readbatch=8", workers: 4, readBatch: 8},
		{name: "workers=4/readbatch=64", workers: 4, readBatch: 64},
		{name: "workers=2/tiny-ring", workers: 2, readBatch: 64, ringSize: 8},
		{name: "workers=4/readbatch=auto", workers: 4, auto: true},
		{name: "workers=4/readbatch=auto/tiny-ring", workers: 4, ringSize: 8, auto: true},
		{name: "workers=4/shared-dispatcher", workers: 4, readBatch: 64, shared: true},
		{name: "workers=2/shared-dispatcher/auto", workers: 2, auto: true, shared: true},
	}
	const (
		flows   = 6
		msgs    = 25
		payload = 700 // < MSS: one tunnel packet per message
	)
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			cfg := engine.Default()
			cfg.Workers = tc.workers
			cfg.ReadBatch = tc.readBatch
			cfg.RingSize = tc.ringSize
			cfg.ReadBatchAuto = tc.auto
			cfg.SharedDispatcher = tc.shared
			tb := newTestbed(t, cfg)

			errs := make(chan error, flows)
			for f := 0; f < flows; f++ {
				go func(f int) {
					conn, err := tb.phone.Connect(uidApp, tb.server, 10*time.Second)
					if err != nil {
						errs <- fmt.Errorf("flow %d connect: %w", f, err)
						return
					}
					defer conn.Close()
					msg := make([]byte, payload)
					buf := make([]byte, payload)
					for seq := 0; seq < msgs; seq++ {
						binary.BigEndian.PutUint32(msg[0:], uint32(f))
						binary.BigEndian.PutUint32(msg[4:], uint32(seq))
						for i := 8; i < len(msg); i++ {
							msg[i] = byte(f ^ seq ^ i)
						}
						if _, err := conn.Write(msg); err != nil {
							errs <- fmt.Errorf("flow %d seq %d write: %w", f, seq, err)
							return
						}
						if err := conn.ReadFull(buf); err != nil {
							errs <- fmt.Errorf("flow %d seq %d read: %w", f, seq, err)
							return
						}
						gotFlow := binary.BigEndian.Uint32(buf[0:])
						gotSeq := binary.BigEndian.Uint32(buf[4:])
						if gotFlow != uint32(f) || gotSeq != uint32(seq) {
							errs <- fmt.Errorf("flow %d expected seq %d, echoed (flow=%d seq=%d): per-flow order violated",
								f, seq, gotFlow, gotSeq)
							return
						}
						for i := 8; i < len(buf); i++ {
							if buf[i] != byte(f^seq^i) {
								errs <- fmt.Errorf("flow %d seq %d corrupted at byte %d", f, seq, i)
								return
							}
						}
					}
					errs <- nil
				}(f)
			}
			// A reordering often manifests as a stalled stream (the phone
			// drops the out-of-order segment and nothing retransmits), so
			// bound the wait instead of hanging the suite.
			deadline := time.After(30 * time.Second)
			for f := 0; f < flows; f++ {
				select {
				case err := <-errs:
					if err != nil {
						t.Fatal(err)
					}
				case <-deadline:
					t.Fatalf("flows stalled (%d/%d finished): packets likely lost or reordered", f, flows)
				}
			}
		})
	}
}

// TestBatchCountersAccounted verifies the batch accounting: on the
// multi-worker path every tunnel packet flows through a burst read, so
// BatchedPackets covers PacketsFromTun (+ rejected peeks) and
// ReadBatches counts the bursts; on the paper-faithful single-worker
// path both counters stay zero.
func TestBatchCountersAccounted(t *testing.T) {
	run := func(workers int) engine.Stats {
		t.Helper()
		cfg := engine.Default()
		cfg.Workers = workers
		tb := newTestbed(t, cfg)
		conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		msg := []byte("batch accounting probe")
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(msg))
		if err := conn.ReadFull(buf); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= 1 }, "record")
		return tb.eng.Stats()
	}

	single := run(1)
	if single.ReadBatches != 0 || single.BatchedPackets != 0 {
		t.Errorf("single-worker engine used the batched path: %d batches, %d packets",
			single.ReadBatches, single.BatchedPackets)
	}

	multi := run(4)
	if multi.ReadBatches == 0 {
		t.Error("multi-worker engine recorded no batched reads")
	}
	if multi.BatchedPackets < multi.PacketsFromTun {
		t.Errorf("BatchedPackets %d < PacketsFromTun %d: packets bypassed the batched reader",
			multi.BatchedPackets, multi.PacketsFromTun)
	}
	if multi.ReadBatches > multi.BatchedPackets {
		t.Errorf("more batches (%d) than batched packets (%d)", multi.ReadBatches, multi.BatchedPackets)
	}
}

// TestReadBatchStatsObservable pins the new burst observability: on the
// batched path Stats must expose the reader's live burst limit and the
// realised batch size, with the limit pinned at Config.ReadBatch in
// fixed mode and confined to [floor, ceiling] under ReadBatchAuto.
func TestReadBatchStatsObservable(t *testing.T) {
	run := func(auto bool) engine.Stats {
		t.Helper()
		cfg := engine.Default()
		cfg.Workers = 4
		cfg.ReadBatch = 32
		cfg.ReadBatchAuto = auto
		tb := newTestbed(t, cfg)
		conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		msg := []byte("burst gauge probe")
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(msg))
		if err := conn.ReadFull(buf); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= 1 }, "record")
		return tb.eng.Stats()
	}

	fixed := run(false)
	if fixed.ReadBatchLimit != 32 {
		t.Errorf("fixed mode: ReadBatchLimit = %d, want the pinned 32", fixed.ReadBatchLimit)
	}
	if fixed.ReadBatches > 0 && fixed.AvgReadBatch <= 0 {
		t.Errorf("fixed mode: AvgReadBatch = %v with %d batches", fixed.AvgReadBatch, fixed.ReadBatches)
	}

	adaptive := run(true)
	if adaptive.ReadBatchLimit < 1 || adaptive.ReadBatchLimit > 32 {
		t.Errorf("adaptive mode: ReadBatchLimit = %d, want within [floor, 32]", adaptive.ReadBatchLimit)
	}
	if adaptive.ReadBatches > 0 && adaptive.AvgReadBatch <= 0 {
		t.Errorf("adaptive mode: AvgReadBatch = %v with %d batches", adaptive.AvgReadBatch, adaptive.ReadBatches)
	}
}
