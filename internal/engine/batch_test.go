package engine_test

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
)

// Tests for the batched TUN read path: the per-flow ordering property
// across every batch/worker configuration, and the batch accounting
// counters.

// TestPerFlowOrderingAcrossConfigs is the ordering property test the
// batched read path is gated on: each flow writes a stream of
// sequence-numbered messages through the relay and verifies the echoes
// come back with the sequence numbers in order and intact. The phone
// stack delivers only in-order segments (out-of-order data is dropped
// as duplicate, like a kernel without reassembly for a lossless
// tunnel), so any reordering introduced by the scatter path, the rings,
// or the batched writer surfaces as a corrupted or stalled stream. The
// grid covers the paper-faithful core, the ring path with batching
// disabled, and two burst sizes; a ring smaller than the in-flight
// packet count forces the reader's backpressure path too.
func TestPerFlowOrderingAcrossConfigs(t *testing.T) {
	configs := []struct {
		name      string
		workers   int
		readBatch int
		ringSize  int
	}{
		{"workers=1", 1, 0, 0},
		{"workers=4/readbatch=1", 4, 1, 0},
		{"workers=4/readbatch=8", 4, 8, 0},
		{"workers=4/readbatch=64", 4, 64, 0},
		{"workers=2/tiny-ring", 2, 64, 8},
	}
	const (
		flows   = 6
		msgs    = 25
		payload = 700 // < MSS: one tunnel packet per message
	)
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			cfg := engine.Default()
			cfg.Workers = tc.workers
			cfg.ReadBatch = tc.readBatch
			cfg.RingSize = tc.ringSize
			tb := newTestbed(t, cfg)

			errs := make(chan error, flows)
			for f := 0; f < flows; f++ {
				go func(f int) {
					conn, err := tb.phone.Connect(uidApp, tb.server, 10*time.Second)
					if err != nil {
						errs <- fmt.Errorf("flow %d connect: %w", f, err)
						return
					}
					defer conn.Close()
					msg := make([]byte, payload)
					buf := make([]byte, payload)
					for seq := 0; seq < msgs; seq++ {
						binary.BigEndian.PutUint32(msg[0:], uint32(f))
						binary.BigEndian.PutUint32(msg[4:], uint32(seq))
						for i := 8; i < len(msg); i++ {
							msg[i] = byte(f ^ seq ^ i)
						}
						if _, err := conn.Write(msg); err != nil {
							errs <- fmt.Errorf("flow %d seq %d write: %w", f, seq, err)
							return
						}
						if err := conn.ReadFull(buf); err != nil {
							errs <- fmt.Errorf("flow %d seq %d read: %w", f, seq, err)
							return
						}
						gotFlow := binary.BigEndian.Uint32(buf[0:])
						gotSeq := binary.BigEndian.Uint32(buf[4:])
						if gotFlow != uint32(f) || gotSeq != uint32(seq) {
							errs <- fmt.Errorf("flow %d expected seq %d, echoed (flow=%d seq=%d): per-flow order violated",
								f, seq, gotFlow, gotSeq)
							return
						}
						for i := 8; i < len(buf); i++ {
							if buf[i] != byte(f^seq^i) {
								errs <- fmt.Errorf("flow %d seq %d corrupted at byte %d", f, seq, i)
								return
							}
						}
					}
					errs <- nil
				}(f)
			}
			// A reordering often manifests as a stalled stream (the phone
			// drops the out-of-order segment and nothing retransmits), so
			// bound the wait instead of hanging the suite.
			deadline := time.After(30 * time.Second)
			for f := 0; f < flows; f++ {
				select {
				case err := <-errs:
					if err != nil {
						t.Fatal(err)
					}
				case <-deadline:
					t.Fatalf("flows stalled (%d/%d finished): packets likely lost or reordered", f, flows)
				}
			}
		})
	}
}

// TestBatchCountersAccounted verifies the batch accounting: on the
// multi-worker path every tunnel packet flows through a burst read, so
// BatchedPackets covers PacketsFromTun (+ rejected peeks) and
// ReadBatches counts the bursts; on the paper-faithful single-worker
// path both counters stay zero.
func TestBatchCountersAccounted(t *testing.T) {
	run := func(workers int) engine.Stats {
		t.Helper()
		cfg := engine.Default()
		cfg.Workers = workers
		tb := newTestbed(t, cfg)
		conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		msg := []byte("batch accounting probe")
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(msg))
		if err := conn.ReadFull(buf); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= 1 }, "record")
		return tb.eng.Stats()
	}

	single := run(1)
	if single.ReadBatches != 0 || single.BatchedPackets != 0 {
		t.Errorf("single-worker engine used the batched path: %d batches, %d packets",
			single.ReadBatches, single.BatchedPackets)
	}

	multi := run(4)
	if multi.ReadBatches == 0 {
		t.Error("multi-worker engine recorded no batched reads")
	}
	if multi.BatchedPackets < multi.PacketsFromTun {
		t.Errorf("BatchedPackets %d < PacketsFromTun %d: packets bypassed the batched reader",
			multi.BatchedPackets, multi.PacketsFromTun)
	}
	if multi.ReadBatches > multi.BatchedPackets {
		t.Errorf("more batches (%d) than batched packets (%d)", multi.ReadBatches, multi.BatchedPackets)
	}
}
