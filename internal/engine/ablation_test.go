package engine_test

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/baselines/haystack"
	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/phonestack"
	"repro/internal/procnet"
	"repro/internal/sockets"
	"repro/internal/tun"
)

func newAblationBed(t *testing.T, cfg engine.Config, socketCosts sockets.CostModel, parseCost procnet.CostModel) *testbed {
	t.Helper()
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: linkRTT / 2}, 1)
	net.HandleTCP(serverAddr, netsim.EchoHandler())
	zone := netsim.NewZone()
	zone.Add("example.com", serverAddr.Addr())
	net.HandleUDP(dnsAddr, 0, netsim.DNSHandler(zone))

	dev := tun.New(clk, 4096)
	table := procnet.NewTable()
	pm := procnet.NewPackageManager()
	pm.Install(uidApp, appName)
	pm.Install(uidApp+1, "com.android.chrome")
	phone := phonestack.New(clk, dev, phoneVPNAddr, table, 2)
	prov := sockets.NewProvider(net, clk, phoneWANAddr, socketCosts, 3)
	reader := procnet.NewReader(table, clk, parseCost, 4)
	eng := engine.New(cfg, engine.Deps{
		Clock: clk, Device: dev, Sockets: prov, ProcNet: reader, Packages: pm,
	})
	eng.Start()
	tb := &testbed{
		clk: clk, net: net, dev: dev, table: table, pm: pm,
		phone: phone, eng: eng, server: serverAddr, dns: dnsAddr,
	}
	t.Cleanup(func() {
		tb.eng.Stop()
		tb.phone.Close()
		tb.dev.Close()
		tb.net.Close()
	})
	return tb
}

// TestCacheMappingMisattributes reproduces §3.3's accuracy hazard: with
// a Haystack-style remote-endpoint cache, the second app to reach a
// shared server endpoint inherits the first app's identity; MopEye's
// lazy mapping attributes both correctly.
func TestCacheMappingMisattributes(t *testing.T) {
	run := func(mode engine.MappingMode) []measure.Record {
		cfg := engine.Default()
		cfg.Mapping = mode
		tb := newAblationBed(t, cfg, sockets.ZeroCosts(), procnet.ZeroParseCost())
		// App 1 (the "Facebook app") connects first.
		c1, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c1.Close()
		waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= 1 }, "first record")
		// App 2 ("Facebook in Chrome") hits the same server endpoint.
		c2, err := tb.phone.Connect(uidApp+1, tb.server, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c2.Close()
		waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= 2 }, "second record")
		return tb.eng.Store().Kind(measure.KindTCP)
	}

	lazy := run(engine.MapLazy)
	if lazy[0].App != appName || lazy[1].App != "com.android.chrome" {
		t.Errorf("lazy mapping misattributed: %q, %q", lazy[0].App, lazy[1].App)
	}

	cached := run(engine.MapCache)
	if cached[0].App != appName {
		t.Fatalf("cache first conn: %q", cached[0].App)
	}
	if cached[1].App != appName {
		t.Errorf("cache mode should misattribute the second app as %q, got %q (the §3.3 hazard)",
			appName, cached[1].App)
	}
}

// TestPollReadDelaysRelay reproduces the §3.1 problem: a sleep-polled
// tunnel read adds up to the poll interval to the app's connect
// latency; MopEye's blocking read does not.
func TestPollReadDelaysRelay(t *testing.T) {
	cfg := engine.Default()
	cfg.ReadMode = engine.ReadPoll
	cfg.PollInterval = 60 * time.Millisecond
	tb := newAblationBed(t, cfg, sockets.ZeroCosts(), procnet.ZeroParseCost())
	var worst time.Duration
	for i := 0; i < 3; i++ {
		conn, err := tb.phone.Connect(uidApp, tb.server, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if conn.ConnectElapsed > worst {
			worst = conn.ConnectElapsed
		}
		conn.Close()
		// Let the poller go back to sleep between attempts.
		time.Sleep(70 * time.Millisecond)
	}
	if worst < 20*time.Millisecond {
		t.Errorf("worst connect %v through a 60ms poller; retrieval delay missing", worst)
	}

	tbFast := newAblationBed(t, engine.Default(), sockets.ZeroCosts(), procnet.ZeroParseCost())
	conn, err := tbFast.phone.Connect(uidApp, tbFast.server, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.ConnectElapsed > 20*time.Millisecond {
		t.Errorf("blocking-read connect took %v", conn.ConnectElapsed)
	}
}

// TestPerSocketProtectPenalisesSYN verifies the §3.5.2 contrast: with
// per-socket protect and Android costs, the app's connect is slower
// than with addDisallowedApplication, but data still flows.
func TestPerSocketProtectPenalisesSYN(t *testing.T) {
	costs := sockets.CostModel{
		Protect: func(r *rand.Rand) time.Duration { return 40 * time.Millisecond },
	}
	cfgSlow := engine.Default()
	cfgSlow.Protect = engine.ProtectPerSocket
	tb := newAblationBed(t, cfgSlow, costs, procnet.ZeroParseCost())
	connSlow, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer connSlow.Close()

	cfgFast := engine.Default() // ProtectDisallowed
	tb2 := newAblationBed(t, cfgFast, costs, procnet.ZeroParseCost())
	connFast, err := tb2.phone.Connect(uidApp, tb2.server, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer connFast.Close()

	if connSlow.ConnectElapsed < connFast.ConnectElapsed+15*time.Millisecond {
		t.Errorf("per-socket protect connect %v not slower than disallowed-app %v",
			connSlow.ConnectElapsed, connFast.ConnectElapsed)
	}
	if tb2.eng.Stats().Established != 1 {
		t.Error("fast path did not establish")
	}
}

// TestMapOffLabelsUnknown verifies attribution can be disabled without
// breaking relaying.
func TestMapOffLabelsUnknown(t *testing.T) {
	cfg := engine.Default()
	cfg.Mapping = engine.MapOff
	tb := newAblationBed(t, cfg, sockets.ZeroCosts(), procnet.ZeroParseCost())
	conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitFor(t, 3*time.Second, func() bool { return tb.eng.Store().Len() >= 1 }, "record")
	r := tb.eng.Store().Snapshot()[0]
	if r.App != "unknown" {
		t.Errorf("app: %q", r.App)
	}
}

// TestHaystackConfigRelaysCorrectly runs the poll-based baseline end to
// end: slower, but correct.
func TestHaystackConfigRelaysCorrectly(t *testing.T) {
	tb := newAblationBed(t, haystack.Config(), sockets.ZeroCosts(), procnet.ZeroParseCost())
	conn, err := tb.phone.Connect(uidApp, tb.server, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("through the slow relay")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if err := conn.ReadFull(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Errorf("echo: %q", buf)
	}
	// The poll cycles show up as connect latency well above path RTT.
	if conn.ConnectElapsed < linkRTT {
		t.Errorf("connect %v below path RTT", conn.ConnectElapsed)
	}
}

// TestGenericUDPRelay verifies non-DNS UDP is relayed (one
// request/response) without producing measurements (§2.2).
func TestGenericUDPRelay(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	echoPort := netip.MustParseAddrPort("203.0.113.77:9999")
	tb.net.HandleUDP(echoPort, 0, func(req []byte, from netip.AddrPort) []byte {
		return append([]byte("pong:"), req...)
	})
	u, err := tb.phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.SendTo(echoPort, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	payload, from, err := u.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if string(payload) != "pong:ping" || from != echoPort {
		t.Errorf("payload %q from %v", payload, from)
	}
	if got := len(tb.eng.Store().Kind(measure.KindDNS)); got != 0 {
		t.Errorf("generic UDP produced %d DNS records", got)
	}
}

// TestToyVpnConfigEndToEnd runs the fully unoptimised configuration:
// everything still works, just slower and with event-driven (noisier)
// measurement.
func TestToyVpnConfigEndToEnd(t *testing.T) {
	cfg := engine.ToyVpn()
	cfg.PollInterval = 20 * time.Millisecond // keep the test quick
	tb := newAblationBed(t, cfg, sockets.ZeroCosts(), procnet.ZeroParseCost())
	conn, err := tb.phone.Connect(uidApp, tb.server, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("toyvpn")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if err := conn.ReadFull(buf); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return tb.eng.Store().Len() >= 1 }, "record")
}

// TestAppTrafficAccounting verifies the beyond-RTT extension: per-app
// byte volumes are attributed like the RTT measurements are.
func TestAppTrafficAccounting(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 10_000)
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	echo := make([]byte, len(payload))
	if err := conn.ReadFull(echo); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		for _, a := range tb.eng.AppTraffic() {
			if a.App == appName && a.BytesUp >= 10_000 && a.BytesDown >= 10_000 {
				return true
			}
		}
		return false
	}, "per-app traffic attribution")
	conn.Close()
	// After close the totals persist (folded into the book).
	waitFor(t, 3*time.Second, func() bool { return tb.eng.ActiveClients() == 0 }, "teardown")
	found := false
	for _, a := range tb.eng.AppTraffic() {
		if a.App == appName {
			found = true
			if a.Connections != 1 {
				t.Errorf("connections: %d", a.Connections)
			}
			if a.BytesUp < 10_000 || a.BytesDown < 10_000 {
				t.Errorf("volumes lost on close: %+v", a)
			}
		}
	}
	if !found {
		t.Fatal("app missing from traffic report after close")
	}
}

// TestDNSTimeoutHandledSilently verifies a dead resolver: the engine's
// temporary DNS thread times out without producing a record or wedging
// the relay, and the app's own resolver timeout fires (§2.4).
func TestDNSTimeoutHandledSilently(t *testing.T) {
	cfg := engine.Default()
	cfg.DNSTimeout = 50 * time.Millisecond
	tb := newAblationBed(t, cfg, sockets.ZeroCosts(), procnet.ZeroParseCost())
	deadDNS := netip.MustParseAddrPort("9.9.9.9:53")
	_, err := tb.phone.Resolve(uidApp, deadDNS, "example.com", 200*time.Millisecond)
	if err == nil {
		t.Fatal("resolve against dead server succeeded")
	}
	if got := len(tb.eng.Store().Kind(measure.KindDNS)); got != 0 {
		t.Errorf("dead resolver produced %d DNS records", got)
	}
	// The relay is still healthy afterwards.
	conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatalf("relay wedged after DNS timeout: %v", err)
	}
	conn.Close()
}

// TestSYNFloodManyConnections stresses concurrent socket-connect
// threads and the client table.
func TestSYNFloodManyConnections(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	const n = 40
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			conn, err := tb.phone.Connect(uidApp, tb.server, 10*time.Second)
			if err == nil {
				conn.Close()
			}
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return tb.eng.Store().Len() >= n }, "all records")
	st := tb.eng.Stats()
	if st.SYNs < n || st.Established < n {
		t.Errorf("stats: %+v", st)
	}
	waitFor(t, 5*time.Second, func() bool { return tb.eng.ActiveClients() == 0 }, "all clients torn down")
}
