package engine

import (
	"repro/internal/packet"
	"repro/internal/relay"
	"repro/internal/sockets"
)

// The packet-processing core. Two shapes share the same per-event
// handlers (tcp.go, dns.go):
//
//   - Workers == 1: the paper's Figure-4 MainWorker — one thread, one
//     selector wait point covering socket events and the tunnel read
//     queue (§3.2). This is the fidelity-preserving default; the
//     ablation results are produced on this path.
//
//   - Workers > 1: a sharded pipeline. The dispatcher runs the selector
//     loop, but instead of handling events it routes each one to the
//     worker that owns the flow's shard (flowtable.Shard % Workers).
//     All events of a flow — tunnel packets and socket readiness alike
//     — serialise through that worker's FIFO queue, so per-flow packet
//     ordering is preserved while distinct flows proceed in parallel.

// worker is one pinned packet-processing thread.
type worker struct {
	id int
	q  *workQueue
}

// workItem is one unit routed to a worker: either a raw tunnel packet
// (decoded by the owning worker, not the dispatcher) or a socket
// readiness event (ready claimed by the dispatcher, since ReadyOps()
// is consume-once).
type workItem struct {
	raw   []byte
	key   *sockets.SelectionKey
	ready sockets.Ops
}

// workerFor maps a shard index to its owning worker.
func (e *Engine) workerFor(shard int) *worker {
	return e.workers[shard%len(e.workers)]
}

// workerLoop drains one worker's queue until the dispatcher closes it.
func (e *Engine) workerLoop(w *worker) {
	defer e.wg.Done()
	for {
		it, ok := w.q.take()
		if !ok {
			return
		}
		switch {
		case it.raw != nil:
			e.handleTunnelPacket(it.raw)
		case it.key != nil:
			e.handleSocketOps(it.key, it.ready)
		}
	}
}

// dispatcher is the multi-worker selector loop: the same interleaved
// Select/drain structure as mainWorker, but each event is routed to its
// flow's pinned worker instead of being handled inline.
func (e *Engine) dispatcher() {
	defer e.wg.Done()
	// Closing the queues releases the workers once they have drained.
	defer func() {
		for _, w := range e.workers {
			w.q.close()
		}
	}()
	for e.isRunning() {
		keys := e.sel.Select()
		for {
			progress := false
			for _, k := range keys {
				if e.routeKey(k) {
					progress = true
				}
			}
			keys = keys[:0]
			for i := 0; i < 64; i++ {
				raw, ok := e.readQ.pop()
				if !ok {
					break
				}
				e.routePacket(raw)
				progress = true
			}
			if !progress {
				break
			}
			if !e.isRunning() {
				return
			}
			keys = e.sel.SelectTimeout(0)
		}
	}
}

// routeKey claims a key's readiness and hands it to the owning worker.
// The dispatcher must consume ReadyOps here: readiness left on the key
// would make the next zero-timeout Select return the same key again and
// spin the dispatcher while the worker catches up.
func (e *Engine) routeKey(k *sockets.SelectionKey) bool {
	ready := k.ReadyOps()
	if ready == 0 {
		return false
	}
	var cl *relay.TCPClient
	switch a := k.Attachment().(type) {
	case *relay.TCPClient:
		cl = a
	case *eventConnect:
		cl = a.client
	default:
		return false
	}
	if cl == nil {
		return false
	}
	e.workerFor(cl.Shard).q.push(workItem{key: k, ready: ready})
	return true
}

// routePacket hands one raw tunnel packet to the worker pinned to its
// flow. Routing needs only the flow key, so the dispatcher peeks it
// straight out of the header bytes — no decode, no copy, no allocation
// (packet.PeekFlowKey) — and the full Decode happens on the owning
// worker, off the dispatch hot path. PeekFlowKey applies exactly
// Decode's structural validation, so a packet rejected here (counted
// as a decode error) is one the worker would have rejected anyway.
func (e *Engine) routePacket(raw []byte) {
	key, err := packet.PeekFlowKey(raw)
	if err != nil {
		e.ctr.decodeErrors.Add(1)
		return
	}
	e.workerFor(e.flows.Shard(key)).q.push(workItem{raw: raw})
}

// mainWorker is the single packet-processing thread (Figure 4): one
// selector wait point covers socket events and the tunnel read queue
// (§3.2), and the two event sources are checked in an interleaved loop.
func (e *Engine) mainWorker() {
	defer e.wg.Done()
	if e.cfg.MainLoopPoll > 0 {
		e.mainWorkerPolled()
		return
	}
	for e.isRunning() {
		keys := e.sel.Select()
		for {
			progress := false
			for _, k := range keys {
				e.handleSocketKey(k)
				progress = true
			}
			keys = keys[:0]
			// Interleave: after a batch of socket events, drain a batch
			// of tunnel packets, then re-poll without blocking.
			for i := 0; i < 64; i++ {
				raw, ok := e.readQ.pop()
				if !ok {
					break
				}
				e.handleTunnelPacket(raw)
				progress = true
			}
			if !progress {
				break
			}
			if !e.isRunning() {
				return
			}
			keys = e.sel.SelectTimeout(0)
		}
	}
}

// mainWorkerPolled is the poll-based main loop of the Haystack-style
// baseline: a fixed sleep, then a drain of both event sources. Events
// arriving just after a drain wait out the entire next sleep, which
// batches the relay in poll-interval cycles.
func (e *Engine) mainWorkerPolled() {
	for e.isRunning() {
		e.clk.Sleep(e.cfg.MainLoopPoll)
		e.meter.AddWakeups(1)
		for {
			progress := false
			for _, k := range e.sel.SelectTimeout(0) {
				e.handleSocketKey(k)
				progress = true
			}
			for {
				raw, ok := e.readQ.pop()
				if !ok {
					break
				}
				e.handleTunnelPacket(raw)
				progress = true
			}
			if !progress {
				break
			}
			if !e.isRunning() {
				return
			}
		}
	}
}
