package engine

import (
	"repro/internal/relay"
	"repro/internal/sockets"
)

// The packet-processing core. Two shapes share the same per-event
// handlers (tcp.go, dns.go):
//
//   - Workers == 1: the paper's Figure-4 MainWorker — one thread, one
//     selector wait point covering socket events and the tunnel read
//     queue (§3.2). This is the fidelity-preserving default; the
//     ablation results are produced on this path.
//
//   - Workers > 1 (default, shared-nothing): N independent MainWorkers.
//     The batched TunReader peeks each packet's flow key and scatters
//     bursts straight into the per-worker SPSC rings (reader.go);
//     socket readiness lands on the owning worker's own selector,
//     because the socket was registered there at connect time
//     (selectorFor). Each worker multiplexes exactly its own selector
//     and its own ring — no stage is shared between workers, so worker
//     scaling has no serial hot-path section left.
//
//   - Workers > 1 with Config.SharedDispatcher: the pre-shared-nothing
//     shape, kept as the ablation arm. One selector covers every
//     socket; a dispatcher goroutine drains it, claims each key's
//     readiness (ReadyOps is consume-once), and routes the event to the
//     owning worker's event lane.
//
//     Either way all events of a flow are drained by that one pinned
//     worker, so per-flow packet ordering is preserved while distinct
//     flows proceed in parallel.

// worker is one pinned packet-processing thread. sel is its private
// selector on the shared-nothing path, nil under SharedDispatcher.
type worker struct {
	id  int
	q   *ringQ
	sel *sockets.Selector
}

// workItem is one unit routed to a worker: either a raw tunnel packet
// (decoded by the owning worker, not the dispatcher) or a socket
// readiness event (ready claimed by the dispatcher, since ReadyOps()
// is consume-once).
type workItem struct {
	raw   []byte
	key   *sockets.SelectionKey
	ready sockets.Ops
}

// workerFor maps a shard index to its owning worker.
func (e *Engine) workerFor(shard int) *worker {
	return e.workers[shard%len(e.workers)]
}

// workerLoop drains one worker's queue until the dispatcher closes it
// (the SharedDispatcher ablation path).
func (e *Engine) workerLoop(w *worker) {
	defer e.wg.Done()
	for {
		it, ok := w.q.take()
		if !ok {
			return
		}
		switch {
		case it.raw != nil:
			e.handleTunnelPacket(it.raw)
		case it.key != nil:
			e.handleSocketOps(it.key, it.ready)
		}
	}
}

// workerLoopSharded is one shared-nothing worker: structurally the
// paper's MainWorker loop (one Select covering both event sources),
// but over the worker's private selector and private packet ring. The
// reader wakes the selector once per burst per touched worker; socket
// readiness wakes it from markReady directly. Like MainWorker it
// drains in interleaved batches so a packet flood cannot starve socket
// events. The worker exits only once the reader has closed the packet
// lane (its final act, after which no push can follow) and the ring is
// drained — exiting on the running flag alone could strand a reader
// blocked in a full-ring push with nobody left to make space.
func (e *Engine) workerLoopSharded(w *worker) {
	defer e.wg.Done()
	for {
		if w.q.pktClosed.Load() && w.q.drained() {
			return
		}
		keys := w.sel.Select()
		for {
			progress := false
			for _, k := range keys {
				e.handleSocketKey(k)
				progress = true
			}
			keys = keys[:0]
			for i := 0; i < 64; i++ {
				raw, ok := w.q.popPacket()
				if !ok {
					break
				}
				e.handleTunnelPacket(raw)
				progress = true
			}
			if !progress {
				break
			}
			keys = w.sel.SelectTimeout(0)
		}
	}
}

// dispatcher is the SharedDispatcher selector loop. Tunnel packets do
// not pass through it — the batched reader scatters them straight to
// the workers' rings — so all that remains is routing socket-readiness
// events to each flow's pinned worker. This shared stage (and the
// Attachment load plus event-lane mutex per event it pays) is exactly
// what the per-worker selectors eliminate.
func (e *Engine) dispatcher() {
	defer e.wg.Done()
	// Closing the event lanes (the reader closes the packet lanes)
	// releases the workers once they have drained.
	defer func() {
		for _, w := range e.workers {
			w.q.closeEvents()
		}
	}()
	for e.isRunning() {
		for _, k := range e.sel.Select() {
			e.routeKey(k)
		}
	}
}

// routeKey claims a key's readiness and hands it to the owning worker.
// The dispatcher must consume ReadyOps here: readiness left on the key
// would make the next Select return the same key again and spin the
// dispatcher while the worker catches up.
func (e *Engine) routeKey(k *sockets.SelectionKey) {
	ready := k.ReadyOps()
	if ready == 0 {
		return
	}
	var cl *relay.TCPClient
	switch a := k.Attachment().(type) {
	case *relay.TCPClient:
		cl = a
	case *eventConnect:
		cl = a.client
	default:
		return
	}
	if cl == nil {
		return
	}
	e.workerFor(cl.Shard).q.pushEvent(workItem{key: k, ready: ready})
}

// mainWorker is the single packet-processing thread (Figure 4): one
// selector wait point covers socket events and the tunnel read queue
// (§3.2), and the two event sources are checked in an interleaved loop.
func (e *Engine) mainWorker() {
	defer e.wg.Done()
	if e.cfg.MainLoopPoll > 0 {
		e.mainWorkerPolled()
		return
	}
	for e.isRunning() {
		keys := e.sel.Select()
		for {
			progress := false
			for _, k := range keys {
				e.handleSocketKey(k)
				progress = true
			}
			keys = keys[:0]
			// Interleave: after a batch of socket events, drain a batch
			// of tunnel packets, then re-poll without blocking.
			for i := 0; i < 64; i++ {
				raw, ok := e.readQ.pop()
				if !ok {
					break
				}
				e.handleTunnelPacket(raw)
				progress = true
			}
			if !progress {
				break
			}
			if !e.isRunning() {
				return
			}
			keys = e.sel.SelectTimeout(0)
		}
	}
}

// mainWorkerPolled is the poll-based main loop of the Haystack-style
// baseline: a fixed sleep, then a drain of both event sources. Events
// arriving just after a drain wait out the entire next sleep, which
// batches the relay in poll-interval cycles.
func (e *Engine) mainWorkerPolled() {
	for e.isRunning() {
		e.clk.Sleep(e.cfg.MainLoopPoll)
		e.meter.AddWakeups(1)
		for {
			progress := false
			for _, k := range e.sel.SelectTimeout(0) {
				e.handleSocketKey(k)
				progress = true
			}
			for {
				raw, ok := e.readQ.pop()
				if !ok {
					break
				}
				e.handleTunnelPacket(raw)
				progress = true
			}
			if !progress {
				break
			}
			if !e.isRunning() {
				return
			}
		}
	}
}
