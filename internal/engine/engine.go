package engine

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/flowtable"
	"repro/internal/measure"
	"repro/internal/procnet"
	"repro/internal/relay"
	"repro/internal/resource"
	"repro/internal/sockets"
	"repro/internal/stats"
	"repro/internal/tcpsm"
	"repro/internal/tun"
)

// Engine is one running MopEye instance (the MopEyeService of Figure 4).
//
// The packet-processing core comes in two shapes selected by
// Config.Workers: the paper-faithful single MainWorker loop (worker.go)
// and, for Workers > 1, a sharded pipeline in which a dispatcher fans
// selector events and tunnel packets out to N workers, each flow pinned
// to the worker that owns its flow-table shard. Per-flow state lives in
// the sharded flowtable; hot counters are atomics (stats.go) so workers
// never contend on a global engine lock.
type Engine struct {
	cfg    Config
	clk    clock.Clock
	dev    tun.Interface
	prov   *sockets.Provider
	store  *measure.Store
	meter  *resource.Meter
	mapper *mapper

	// sel is the shared selector: the MainWorker's single wait point at
	// Workers=1, and the dispatcher's at Workers>1 with
	// Config.SharedDispatcher. On the default shared-nothing path each
	// worker owns sels[i] instead, and sockets register with the
	// selector of the worker that owns their flow's shard, so readiness
	// events are born on the thread that will consume them.
	sel    *sockets.Selector
	sels   []*sockets.Selector // per-worker; non-nil only on the sharded-selector path
	readQ  *readQueue
	writeQ *packetQueue // nil for DirectWrite
	rngMu  sync.Mutex
	rng    *rand.Rand

	traffic *trafficBook

	// flows is the sharded flow table. The shard index of a flow also
	// pins it to a worker in multi-worker mode.
	flows   *flowtable.Table[*relay.TCPClient]
	workers []*worker // non-nil only when the sharded pipeline runs

	// udp is the pooled UDP relay: NAT-style session table plus a
	// bounded worker pool (udprelay.go).
	udp *udpRelay

	ctr counters // hot counters, all atomic (stats.go)

	histMu    sync.Mutex
	writeHist stats.DelayHistogram

	mu      sync.Mutex // lifecycle state only
	running bool
	stopped chan struct{}
	wg      sync.WaitGroup
	started time.Time
}

// Deps bundles the engine's substrate handles.
type Deps struct {
	Clock clock.Clock
	// Device is any TUN backend: the emulated *tun.Device (default test
	// substrate) or a real Linux device via lintun (build tag realtun).
	Device   tun.Interface
	Sockets  *sockets.Provider
	ProcNet  *procnet.Reader
	Packages *procnet.PackageManager
	Store    *measure.Store
	Meter    *resource.Meter
}

// New assembles an engine. Store and Meter may be nil, in which case
// fresh ones are created and exposed via accessors.
func New(cfg Config, d Deps) *Engine {
	if cfg.MSS <= 0 {
		cfg.MSS = tcpsm.DefaultMSS
	}
	if cfg.Window <= 0 {
		cfg.Window = tcpsm.DefaultWindow
	}
	if cfg.DNSTimeout <= 0 {
		cfg.DNSTimeout = 5 * time.Second
	}
	if cfg.UDPTimeout <= 0 {
		cfg.UDPTimeout = 2 * time.Second
	}
	if cfg.UDPPoolSize <= 0 {
		cfg.UDPPoolSize = defaultUDPPoolSize
	}
	if cfg.UDPSessionIdle <= 0 {
		cfg.UDPSessionIdle = defaultUDPSessionIdle
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ReadBatch <= 0 {
		cfg.ReadBatch = defaultReadBatch
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	if d.Store == nil {
		d.Store = measure.NewStore()
	}
	if d.Meter == nil {
		d.Meter = resource.NewMeter(resource.DefaultCosts(), 12)
	}
	e := &Engine{
		cfg:     cfg,
		clk:     d.Clock,
		dev:     d.Device,
		prov:    d.Sockets,
		store:   d.Store,
		meter:   d.Meter,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		traffic: newTrafficBook(),
		readQ:   &readQueue{},
		flows:   flowtable.New[*relay.TCPClient](cfg.FlowShards),
		stopped: make(chan struct{}),
	}
	e.sel = e.prov.NewSelector()
	if e.multiWorker() && !cfg.SharedDispatcher {
		e.sels = make([]*sockets.Selector, cfg.Workers)
		for i := range e.sels {
			e.sels[i] = e.prov.NewSelector()
		}
	}
	e.udp = newUDPRelay(e)
	e.mapper = newMapper(d.ProcNet, d.Packages, cfg.Mapping, cfg.MapWait, d.Clock)
	if cfg.WriteScheme != DirectWrite {
		e.writeQ = newPacketQueue(d.Clock, cfg.WriteScheme == QueueWriteNewPut, cfg.SpinThreshold, cfg.Seed+1)
	}
	return e
}

// selectorFor returns the selector a flow on the given shard registers
// with: the owning worker's own selector on the shared-nothing path,
// the one shared selector otherwise. Pinning the registration at
// connect time is what lets readiness skip any dispatcher — the event
// is enqueued directly on the consuming worker's selector and can
// never be claimed by another thread.
func (e *Engine) selectorFor(shard int) *sockets.Selector {
	if e.sels != nil {
		return e.sels[shard%len(e.sels)]
	}
	return e.sel
}

// Store returns the measurement store.
func (e *Engine) Store() *measure.Store { return e.store }

// Meter returns the resource meter.
func (e *Engine) Meter() *resource.Meter { return e.meter }

// timeDuration converts clock-nano deltas.
func timeDuration(nanos int64) time.Duration { return time.Duration(nanos) }
