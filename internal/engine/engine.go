package engine

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/measure"
	"repro/internal/packet"
	"repro/internal/procnet"
	"repro/internal/relay"
	"repro/internal/resource"
	"repro/internal/sockets"
	"repro/internal/stats"
	"repro/internal/tcpsm"
	"repro/internal/tun"
)

// Stats aggregates engine activity.
type Stats struct {
	SYNs            int
	Established     int
	ConnectFailures int
	TCPMeasurements int
	DNSMeasurements int
	PacketsFromTun  int
	PacketsToTun    int
	BytesUp         int64
	BytesDown       int64
	PureACKs        int
	UDPRelayed      int
	DecodeErrors    int

	// WriteHist is the tunnel-write delay as observed by the writing
	// thread; PutHist is the enqueue delay (Table 1).
	WriteHist stats.DelayHistogram
	PutHist   stats.DelayHistogram

	Mapping MappingStats
}

// Engine is one running MopEye instance (the MopEyeService of Figure 4).
type Engine struct {
	cfg    Config
	clk    clock.Clock
	dev    *tun.Device
	prov   *sockets.Provider
	store  *measure.Store
	meter  *resource.Meter
	mapper *mapper

	sel    *sockets.Selector
	readQ  *readQueue
	writeQ *packetQueue // nil for DirectWrite
	rngMu  sync.Mutex
	rng    *rand.Rand

	traffic *trafficBook

	mu      sync.Mutex
	clients map[packet.FlowKey]*relay.TCPClient
	stats   Stats
	running bool
	stopped chan struct{}
	wg      sync.WaitGroup
	started time.Time
}

// Deps bundles the engine's substrate handles.
type Deps struct {
	Clock    clock.Clock
	Device   *tun.Device
	Sockets  *sockets.Provider
	ProcNet  *procnet.Reader
	Packages *procnet.PackageManager
	Store    *measure.Store
	Meter    *resource.Meter
}

// New assembles an engine. Store and Meter may be nil, in which case
// fresh ones are created and exposed via accessors.
func New(cfg Config, d Deps) *Engine {
	if cfg.MSS <= 0 {
		cfg.MSS = tcpsm.DefaultMSS
	}
	if cfg.Window <= 0 {
		cfg.Window = tcpsm.DefaultWindow
	}
	if cfg.DNSTimeout <= 0 {
		cfg.DNSTimeout = 5 * time.Second
	}
	if cfg.UDPTimeout <= 0 {
		cfg.UDPTimeout = 2 * time.Second
	}
	if d.Store == nil {
		d.Store = measure.NewStore()
	}
	if d.Meter == nil {
		d.Meter = resource.NewMeter(resource.DefaultCosts(), 12)
	}
	e := &Engine{
		cfg:     cfg,
		clk:     d.Clock,
		dev:     d.Device,
		prov:    d.Sockets,
		store:   d.Store,
		meter:   d.Meter,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		traffic: newTrafficBook(),
		readQ:   &readQueue{},
		clients: make(map[packet.FlowKey]*relay.TCPClient),
		stopped: make(chan struct{}),
	}
	e.sel = e.prov.NewSelector()
	e.mapper = newMapper(d.ProcNet, d.Packages, cfg.Mapping, cfg.MapWait, d.Clock)
	if cfg.WriteScheme != DirectWrite {
		e.writeQ = newPacketQueue(d.Clock, cfg.WriteScheme == QueueWriteNewPut, cfg.SpinThreshold, cfg.Seed+1)
	}
	return e
}

// Store returns the measurement store.
func (e *Engine) Store() *measure.Store { return e.store }

// Meter returns the resource meter.
func (e *Engine) Meter() *resource.Meter { return e.meter }

// Start launches the engine threads: TunReader, MainWorker, and (for
// queueWrite schemes) TunWriter. It also performs the one-time
// addDisallowedApplication when configured (§3.5.2: "the call is best
// invoked during the initialization of MopEye").
func (e *Engine) Start() {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return
	}
	e.running = true
	e.started = e.clk.Now()
	e.mu.Unlock()

	if e.cfg.Protect == ProtectDisallowed {
		e.prov.AddDisallowedApplication()
	}
	e.dev.SetBlocking(e.cfg.ReadMode == ReadBlocking)

	e.wg.Add(1)
	go e.tunReader()
	e.wg.Add(1)
	go e.mainWorker()
	if e.writeQ != nil {
		e.wg.Add(1)
		go e.tunWriter()
	}
}

// Stop shuts the engine down. A dummy packet releases the blocked
// tunnel read (§3.1), the selector is closed to release MainWorker, and
// all external sockets are closed.
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.running {
		e.mu.Unlock()
		return
	}
	e.running = false
	close(e.stopped)
	e.mu.Unlock()

	// Release a TunReader blocked in read() by injecting a dummy packet
	// — MopEye's own trick (self-sent below 5.0, DownloadManager-
	// triggered on 5.0+; the bytes are identical from the reader's
	// perspective).
	_ = e.dev.InjectOutbound([]byte{0})
	e.sel.Wakeup()
	if e.writeQ != nil {
		e.writeQ.close()
	}
	e.wg.Wait()
	e.sel.Close()

	e.mu.Lock()
	clients := make([]*relay.TCPClient, 0, len(e.clients))
	for _, c := range e.clients {
		clients = append(clients, c)
	}
	e.clients = make(map[packet.FlowKey]*relay.TCPClient)
	e.mu.Unlock()
	for _, c := range clients {
		if c.Ch != nil {
			c.Ch.Close()
		}
	}
}

func (e *Engine) isRunning() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.running
}

// Stats snapshots the engine counters, folding in mapper and queue
// state.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := e.stats
	e.mu.Unlock()
	s.Mapping = e.mapper.stats()
	if e.writeQ != nil {
		s.PutHist = e.writeQ.putHistogram()
	}
	return s
}

// ActiveClients reports the number of live spliced connections.
func (e *Engine) ActiveClients() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.clients)
}

// tunReader is the dedicated tunnel read thread (§3.1). In blocking
// mode each read parks until a packet arrives: zero retrieval delay and
// zero empty wakeups. In poll modes it mirrors ToyVpn: non-blocking
// reads with sleeps between failures.
func (e *Engine) tunReader() {
	defer e.wg.Done()
	sleeping := e.cfg.PollInterval
	if sleeping <= 0 {
		sleeping = 100 * time.Millisecond
	}
	consecutive := 0
	for e.isRunning() {
		raw, err := e.dev.Read()
		switch {
		case err == nil:
			consecutive++
			e.readQ.push(raw)
			e.sel.Wakeup()
		case errors.Is(err, tun.ErrWouldBlock):
			consecutive = 0
			e.meter.AddWakeups(1)
			switch e.cfg.ReadMode {
			case ReadPollAdaptive:
				// ToyVpn's "intelligent sleeping": after activity, poll
				// a few rounds at a short interval before backing off.
				e.clk.Sleep(time.Millisecond)
			default:
				e.clk.Sleep(sleeping)
			}
		case errors.Is(err, tun.ErrClosed):
			return
		default:
			return
		}
		// In adaptive mode, bursts suppress sleeping entirely: loop
		// again immediately while reads succeed.
		_ = consecutive
	}
}

// tunWriter drains the write queue into the tunnel (§3.5.1).
func (e *Engine) tunWriter() {
	defer e.wg.Done()
	for {
		raw, ok := e.writeQ.take()
		if !ok {
			return
		}
		start := e.clk.Nanos()
		err := e.dev.Write(raw)
		d := time.Duration(e.clk.Nanos() - start)
		e.mu.Lock()
		e.stats.WriteHist.Add(d)
		if err == nil {
			e.stats.PacketsToTun++
		}
		e.mu.Unlock()
	}
}

// emit sends one synthesised packet toward the app, through the
// configured write scheme. This is the state machines' emit hook.
func (e *Engine) emit(p *packet.Packet) {
	raw, err := p.Encode()
	if err != nil {
		return
	}
	if e.writeQ != nil {
		e.writeQ.put(raw)
		return
	}
	// directWrite: pay the tunnel write (and its contention) here, on
	// the producing thread.
	start := e.clk.Nanos()
	werr := e.dev.Write(raw)
	d := time.Duration(e.clk.Nanos() - start)
	e.mu.Lock()
	e.stats.WriteHist.Add(d)
	if werr == nil {
		e.stats.PacketsToTun++
	}
	e.mu.Unlock()
}

// mainWorker is the single packet-processing thread (Figure 4): one
// selector wait point covers socket events and the tunnel read queue
// (§3.2), and the two event sources are checked in an interleaved loop.
func (e *Engine) mainWorker() {
	defer e.wg.Done()
	if e.cfg.MainLoopPoll > 0 {
		e.mainWorkerPolled()
		return
	}
	for e.isRunning() {
		keys := e.sel.Select()
		for {
			progress := false
			for _, k := range keys {
				e.handleSocketKey(k)
				progress = true
			}
			keys = keys[:0]
			// Interleave: after a batch of socket events, drain a batch
			// of tunnel packets, then re-poll without blocking.
			for i := 0; i < 64; i++ {
				raw, ok := e.readQ.pop()
				if !ok {
					break
				}
				e.handleTunnelPacket(raw)
				progress = true
			}
			if !progress {
				break
			}
			if !e.isRunning() {
				return
			}
			keys = e.sel.SelectTimeout(0)
		}
	}
}

// mainWorkerPolled is the poll-based main loop of the Haystack-style
// baseline: a fixed sleep, then a drain of both event sources. Events
// arriving just after a drain wait out the entire next sleep, which
// batches the relay in poll-interval cycles.
func (e *Engine) mainWorkerPolled() {
	for e.isRunning() {
		e.clk.Sleep(e.cfg.MainLoopPoll)
		e.meter.AddWakeups(1)
		for {
			progress := false
			for _, k := range e.sel.SelectTimeout(0) {
				e.handleSocketKey(k)
				progress = true
			}
			for {
				raw, ok := e.readQ.pop()
				if !ok {
					break
				}
				e.handleTunnelPacket(raw)
				progress = true
			}
			if !progress {
				break
			}
			if !e.isRunning() {
				return
			}
		}
	}
}

// handleTunnelPacket implements §2.3's tunnel-packet processing.
func (e *Engine) handleTunnelPacket(raw []byte) {
	pkt, err := packet.Decode(raw)
	if err != nil {
		e.mu.Lock()
		e.stats.DecodeErrors++
		e.mu.Unlock()
		return
	}
	e.mu.Lock()
	e.stats.PacketsFromTun++
	e.mu.Unlock()
	if e.cfg.PerPacketCost > 0 {
		e.clk.SleepFine(e.cfg.PerPacketCost)
	}
	if e.cfg.InspectPackets {
		e.meter.AddInspected(1)
	}
	e.meter.AddPackets(1, int64(len(raw)))

	switch {
	case pkt.IsTCP():
		e.handleTunnelTCP(pkt)
	case pkt.IsUDP():
		e.handleTunnelUDP(pkt)
	}
}

func (e *Engine) handleTunnelTCP(pkt *packet.Packet) {
	flow := packet.Flow(pkt)
	t := pkt.TCP

	e.mu.Lock()
	cl := e.clients[flow]
	e.mu.Unlock()

	switch {
	case t.Has(packet.FlagSYN) && !t.Has(packet.FlagACK):
		if cl != nil {
			return // SYN retransmission while connect in flight
		}
		e.onSYN(pkt, flow)

	case t.Has(packet.FlagRST):
		if cl == nil {
			return
		}
		// §2.3 TCP RST: close the external connection, drop the client.
		cl.SM.OnRST()
		e.removeClient(cl)
		if cl.Ch != nil {
			cl.Ch.Reset()
		}

	case t.Has(packet.FlagFIN):
		if cl == nil {
			return
		}
		data, err := cl.SM.OnFIN(pkt)
		if err == nil && len(data) > 0 {
			cl.EnqueueWrite(data)
		}
		cl.RequestHalfClose()
		e.triggerWrite(cl)

	case len(pkt.Payload) > 0:
		if cl == nil {
			return
		}
		data, err := cl.SM.OnData(pkt)
		if err != nil || len(data) == 0 {
			return
		}
		e.mu.Lock()
		e.stats.BytesUp += int64(len(data))
		e.mu.Unlock()
		cl.EnqueueWrite(data)
		e.triggerWrite(cl)

	default:
		// Pure ACK: discarded, nothing to relay (§2.3).
		if cl != nil {
			cl.SM.OnPureACK()
		}
		e.mu.Lock()
		e.stats.PureACKs++
		e.mu.Unlock()
	}
}

// triggerWrite raises the socket write event for a client whose buffer
// has data (or a pending half close). Before the external connection
// exists the data simply waits in the buffer; the socket-connect thread
// triggers the flush after registering.
func (e *Engine) triggerWrite(cl *relay.TCPClient) {
	if cl.Key != nil && cl.Ch != nil && cl.Ch.Connected() {
		cl.Key.SetInterestOps(sockets.OpRead | sockets.OpWrite)
	}
}

// onSYN creates the state machine and client and starts the temporary
// socket-connect thread (§2.4).
func (e *Engine) onSYN(pkt *packet.Packet, flow packet.FlowKey) {
	e.rngMu.Lock()
	iss := e.rng.Uint32()
	e.rngMu.Unlock()
	sm, err := newMachine(pkt, iss, e.emit)
	if err != nil {
		return
	}
	cl := relay.NewTCPClient(flow, sm, e.clk.Nanos())
	e.mu.Lock()
	e.stats.SYNs++
	e.clients[flow] = cl
	n := len(e.clients)
	e.mu.Unlock()
	e.meter.ObserveConns(n)

	if e.cfg.Mapping == MapEager {
		// Pre-§3.3 behaviour: parse on the main thread, per SYN.
		info, _ := e.mapper.resolve(flow.Src, flow.Dst, cl.SYNAt)
		cl.UID, cl.App = info.UID, info.Name
	}
	if e.cfg.Protect == ProtectPerSocketMainThread {
		// Naive placement: the protect cost lands on MainWorker,
		// stalling every other flow (§3.5.2).
		ch := e.prov.Open()
		ch.Protect()
		cl.Ch = ch
	}

	if e.cfg.BlockingConnectMeasure {
		go e.socketConnectBlocking(cl)
	} else {
		e.socketConnectEventDriven(cl)
	}
}

// socketConnectBlocking is the temporary socket-connect thread: blocking
// connect with timestamps immediately around the call (§2.4), then the
// internal handshake, deferred selector registration (§3.4), and lazy
// mapping (§3.3).
func (e *Engine) socketConnectBlocking(cl *relay.TCPClient) {
	// The temporary thread pays its spawn/scheduling latency first;
	// the measurement timestamps below are unaffected (§2.4's design
	// keeps them immediately around the connect call).
	e.prov.ChargeThreadSpawn()
	ch := cl.Ch
	if ch == nil {
		ch = e.prov.Open()
		cl.Ch = ch
	}
	if e.cfg.Protect == ProtectPerSocket {
		// §3.5.2 mitigation for pre-5.0: pay protect() here so only
		// this connection's SYN is delayed.
		ch.Protect()
	}
	t0 := e.clk.Nanos()
	err := ch.Connect(cl.Flow.Dst)
	t1 := e.clk.Nanos()
	if err != nil {
		cl.SM.Refuse()
		e.connectFailed(cl)
		return
	}
	// Only after establishing the external connection is the handshake
	// with the app completed (§2.3).
	if err := cl.SM.CompleteHandshake(); err != nil {
		e.removeClient(cl)
		ch.Close()
		return
	}
	e.mu.Lock()
	e.stats.Established++
	e.mu.Unlock()

	if e.cfg.DeferRegister {
		cl.Key = e.sel.Register(ch, sockets.OpRead, cl)
	} else {
		// Registration already happened on the main thread in
		// event-driven mode; in blocking mode without deferral we still
		// must register somewhere — do it here but the cost model is
		// identical.
		cl.Key = e.sel.Register(ch, sockets.OpRead, cl)
	}
	if cl.PendingWrites() || cl.HalfCloseRequested() {
		cl.Key.SetInterestOps(sockets.OpRead | sockets.OpWrite)
	}

	// Lazy mapping: after the connection is established or failed, so
	// the app-side handshake is never delayed (§3.3).
	if e.cfg.Mapping != MapEager {
		info, _ := e.mapper.resolve(cl.Flow.Src, cl.Flow.Dst, cl.SYNAt)
		cl.UID, cl.App = info.UID, info.Name
	}
	e.recordTCP(cl, time.Duration(t1-t0))
}

// socketConnectEventDriven is the pre-§2.4 alternative: non-blocking
// connect whose completion is observed through the selector, inheriting
// dispatch latency into the RTT (the inaccuracy Table 2 shows for
// MobiPerf-style measurement).
func (e *Engine) socketConnectEventDriven(cl *relay.TCPClient) {
	ch := cl.Ch
	if ch == nil {
		ch = e.prov.Open()
		cl.Ch = ch
	}
	if e.cfg.Protect == ProtectPerSocket {
		ch.Protect()
	}
	cl.Key = e.sel.Register(ch, sockets.OpRead|sockets.OpConnect, cl)
	connStart := e.clk.Nanos()
	cl.Key.Attachment = &eventConnect{client: cl, start: connStart}
	if err := ch.ConnectNonBlocking(cl.Flow.Dst); err != nil {
		cl.SM.Refuse()
		e.connectFailed(cl)
	}
}

// eventConnect carries the non-blocking connect context on the key.
type eventConnect struct {
	client *relay.TCPClient
	start  int64
}

func (e *Engine) connectFailed(cl *relay.TCPClient) {
	e.mu.Lock()
	e.stats.ConnectFailures++
	e.mu.Unlock()
	e.removeClient(cl)
	if cl.Ch != nil {
		cl.Ch.Close()
	}
}

func (e *Engine) removeClient(cl *relay.TCPClient) {
	if !cl.MarkRemoved() {
		return
	}
	// Fold the connection's volume into the per-app accounting; the
	// attribution is final by now (mapping runs before any teardown
	// path a healthy connection takes).
	st := cl.SM.Stats()
	e.traffic.volume(cl.App, st.BytesFromApp, st.BytesToApp)
	e.mu.Lock()
	delete(e.clients, cl.Flow)
	e.mu.Unlock()
}

// recordTCP stores one per-app RTT measurement.
func (e *Engine) recordTCP(cl *relay.TCPClient, rtt time.Duration) {
	e.mu.Lock()
	e.stats.TCPMeasurements++
	e.mu.Unlock()
	e.traffic.connection(cl.App)
	e.store.Add(measure.Record{
		Kind:    measure.KindTCP,
		App:     cl.App,
		UID:     cl.UID,
		Dst:     cl.Flow.Dst,
		RTT:     rtt,
		At:      e.clk.Now(),
		NetType: e.cfg.NetType,
		ISP:     e.cfg.ISP,
		Country: e.cfg.Country,
	})
}

// handleSocketKey processes §2.3's socket events.
func (e *Engine) handleSocketKey(k *sockets.SelectionKey) {
	ready := k.ReadyOps()
	if ready == 0 {
		return
	}
	var cl *relay.TCPClient
	switch a := k.Attachment.(type) {
	case *relay.TCPClient:
		cl = a
	case *eventConnect:
		cl = a.client
		if ready&sockets.OpConnect != 0 {
			e.finishEventConnect(k, a)
			ready &^= sockets.OpConnect
		}
	default:
		return
	}
	if cl == nil || cl.Removed() {
		return
	}
	if ready&sockets.OpRead != 0 {
		e.socketRead(cl)
	}
	if ready&sockets.OpWrite != 0 {
		e.socketWrite(cl)
	}
}

// finishEventConnect completes a non-blocking connect observed via the
// selector.
func (e *Engine) finishEventConnect(k *sockets.SelectionKey, ec *eventConnect) {
	cl := ec.client
	ch := cl.Ch
	now := e.clk.Nanos()
	if err := ch.FinishConnect(); err != nil {
		if errors.Is(err, sockets.ErrConnPending) {
			return
		}
		cl.SM.Refuse()
		e.connectFailed(cl)
		return
	}
	if err := cl.SM.CompleteHandshake(); err != nil {
		e.removeClient(cl)
		ch.Close()
		return
	}
	e.mu.Lock()
	e.stats.Established++
	e.mu.Unlock()
	k.Attachment = cl
	k.SetInterestOps(sockets.OpRead)
	if cl.PendingWrites() || cl.HalfCloseRequested() {
		k.SetInterestOps(sockets.OpRead | sockets.OpWrite)
	}
	if e.cfg.Mapping != MapEager {
		info, _ := e.mapper.resolve(cl.Flow.Src, cl.Flow.Dst, cl.SYNAt)
		cl.UID, cl.App = info.UID, info.Name
	}
	// The RTT includes selector dispatch latency — the inaccuracy the
	// blocking socket-connect thread eliminates.
	e.recordTCP(cl, time.Duration(now-ec.start))
}

// socketRead handles §2.3 Socket Read: drain incoming server data into
// internal-connection data packets; on EOF generate FIN; on reset
// generate RST.
func (e *Engine) socketRead(cl *relay.TCPClient) {
	buf := make([]byte, 16*1024)
	for {
		n, err := cl.Ch.Read(buf)
		if n > 0 {
			e.mu.Lock()
			e.stats.BytesDown += int64(n)
			e.mu.Unlock()
			e.meter.AddPackets(int64((n+e.cfg.MSS-1)/e.cfg.MSS), int64(n))
			if e.cfg.InspectPackets {
				e.meter.AddInspected(int64((n + e.cfg.MSS - 1) / e.cfg.MSS))
			}
			if serr := cl.SM.SendData(buf[:n]); serr != nil {
				return
			}
			continue
		}
		switch {
		case err == nil:
			return // would block; wait for the next read event
		case errors.Is(err, sockets.ErrEOF):
			_ = cl.SM.SendFIN()
			e.maybeFinish(cl)
			return
		default:
			cl.SM.SendRST()
			e.removeClient(cl)
			cl.Ch.Close()
			return
		}
	}
}

// socketWrite handles §2.3 Socket Write: flush the write buffer to the
// server, then instruct the state machine to ACK the app; on a pending
// half close, half-close the external connection and clear write
// interest.
func (e *Engine) socketWrite(cl *relay.TCPClient) {
	bufs := cl.TakeWrites()
	wrote := false
	for _, b := range bufs {
		if _, err := cl.Ch.Write(b); err != nil {
			cl.SM.SendRST()
			e.removeClient(cl)
			cl.Ch.Close()
			return
		}
		wrote = true
	}
	if wrote {
		_ = cl.SM.AckApp()
	}
	if cl.HalfCloseRequested() && !cl.PendingWrites() {
		_ = cl.Ch.CloseWrite()
		e.maybeFinish(cl)
	}
	if cl.Key != nil {
		cl.Key.SetInterestOps(sockets.OpRead)
	}
}

// maybeFinish removes clients whose both directions have finished.
func (e *Engine) maybeFinish(cl *relay.TCPClient) {
	if cl.SM.State() == tcpsm.StateClosed {
		e.removeClient(cl)
		cl.Ch.Close()
	}
}

// timeDuration converts clock-nano deltas.
func timeDuration(nanos int64) time.Duration { return time.Duration(nanos) }
