package engine

import (
	"repro/internal/dnsmsg"
	"repro/internal/measure"
	"repro/internal/packet"
	"repro/internal/tcpsm"
)

// newMachine adapts tcpsm.New for the engine.
func newMachine(syn *packet.Packet, iss uint32, emit func(*packet.Packet)) (*tcpsm.Machine, error) {
	return tcpsm.New(syn, iss, emit)
}

// handleTunnelUDP relays a UDP datagram. DNS (port 53) is measured; all
// other UDP is relayed without measurement (§2.2: "MopEye currently
// supports only DNS measurement (though it relays all UDP packets)").
//
// The paper ran each transaction in a temporary thread so an
// application-layer protocol never blocks the VpnService main thread
// (§2.4). The pooled relay (udprelay.go) keeps that property — this
// call is a session lookup plus a non-blocking enqueue — while bounding
// goroutines and sockets under flood: the blocking send/receive now
// runs on one of UDPPoolSize pooled workers against the flow's
// NAT-style session socket.
func (e *Engine) handleTunnelUDP(pkt *packet.Packet) {
	// pkt.Payload aliases the single-owner raw buffer Decode consumed,
	// so ownership can move to the pool without a copy.
	e.udp.relay(packet.Flow(pkt), pkt.Payload)
}

// dnsTransaction measures one DNS query/response RTT and relays the
// response back to the app. Runs on a pooled relay worker; the
// timestamps stay immediately around the blocking send/receive pair,
// which is what makes the measurement accurate (§2.4).
func (e *Engine) dnsTransaction(s *udpSession, query []byte) {
	domain := ""
	if q, err := dnsmsg.Decode(query); err == nil {
		domain = q.QueryName()
	}
	t0 := e.clk.Nanos()
	s.sock.SendTo(s.flow.Dst, query)
	resp, err := s.sock.Recv(e.cfg.DNSTimeout)
	t1 := e.clk.Nanos()
	if err != nil {
		// The app's own resolver timeout handles retries; the failure is
		// still counted so a dying resolver is visible in Stats.
		e.ctr.dnsTimeouts.Add(1)
		return
	}
	e.ctr.dnsMeasurements.Add(1)
	e.traffic.dns("system.dns")
	e.record(measure.KindDNS, "system.dns", 0, s.flow.Dst, domain, timeDuration(t1-t0))
	// Relay the response to the app, source-spoofed as the server the
	// way the tunnel would present it.
	e.emit(packet.UDPPacket(s.flow.Dst, s.flow.Src, resp))
}

// udpForward relays one non-DNS datagram through the session socket and
// relays back at most one response within the UDP timeout (late ones
// are forwarded by the next datagram's stale drain). Sent and received
// bytes are attributed to the owning app in the traffic book. Every
// datagram ends in exactly one counter — UDPRelayed on a response,
// UDPNoResponse on a closed window — so lossy paths are visible in
// Stats instead of silently deflating UDPRelayed.
func (e *Engine) udpForward(s *udpSession, payload []byte) {
	e.ctr.udpBytesUp.Add(int64(len(payload)))
	e.traffic.udp(s.app, int64(len(payload)), 0)
	s.sock.SendTo(s.flow.Dst, payload)
	resp, err := s.sock.Recv(e.cfg.UDPTimeout)
	if err != nil {
		e.ctr.udpNoResponse.Add(1)
		return
	}
	e.ctr.udpRelayed.Add(1)
	e.ctr.udpBytesDown.Add(int64(len(resp)))
	e.traffic.udp(s.app, 0, int64(len(resp)))
	e.emit(packet.UDPPacket(s.flow.Dst, s.flow.Src, resp))
}
