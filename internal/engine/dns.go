package engine

import (
	"net/netip"

	"repro/internal/dnsmsg"
	"repro/internal/measure"
	"repro/internal/packet"
	"repro/internal/tcpsm"
)

// newMachine adapts tcpsm.New for the engine.
func newMachine(syn *packet.Packet, iss uint32, emit func(*packet.Packet)) (*tcpsm.Machine, error) {
	return tcpsm.New(syn, iss, emit)
}

// handleTunnelUDP relays a UDP datagram. DNS (port 53) is measured; all
// other UDP is relayed without measurement (§2.2: "MopEye currently
// supports only DNS measurement (though it relays all UDP packets)").
//
// The whole DNS transaction — parsing, socket setup, blocking
// send/receive — runs in a temporary thread so an application-layer
// protocol never blocks the VpnService main thread, and the
// post-receive timestamp is taken in blocking mode for accuracy (§2.4).
func (e *Engine) handleTunnelUDP(pkt *packet.Packet) {
	appSrc := pkt.Src()
	dst := pkt.Dst()
	payload := append([]byte(nil), pkt.Payload...)
	if dst.Port() == 53 {
		go e.dnsTransaction(appSrc, dst, payload)
		return
	}
	go e.udpRelay(appSrc, dst, payload)
}

// dnsTransaction measures one DNS query/response RTT and relays the
// response back to the app.
func (e *Engine) dnsTransaction(appSrc, server netip.AddrPort, query []byte) {
	domain := ""
	if q, err := dnsmsg.Decode(query); err == nil {
		domain = q.QueryName()
	}
	u := e.prov.OpenUDP()
	defer u.Close()
	if e.cfg.Protect == ProtectPerSocket || e.cfg.Protect == ProtectPerSocketMainThread {
		u.Protect()
	}
	t0 := e.clk.Nanos()
	u.SendTo(server, query)
	resp, err := u.Recv(e.cfg.DNSTimeout)
	t1 := e.clk.Nanos()
	if err != nil {
		return // the app's own resolver timeout handles retries
	}
	e.ctr.dnsMeasurements.Add(1)
	e.traffic.dns("system.dns")
	e.store.Add(measure.Record{
		Kind:    measure.KindDNS,
		App:     "system.dns",
		UID:     0,
		Dst:     server,
		Domain:  domain,
		RTT:     timeDuration(t1 - t0),
		At:      e.clk.Now(),
		NetType: e.cfg.NetType,
		ISP:     e.cfg.ISP,
		Country: e.cfg.Country,
	})
	// Relay the response to the app, source-spoofed as the server the
	// way the tunnel would present it.
	e.emit(packet.UDPPacket(server, appSrc, resp))
}

// udpRelay forwards one non-DNS datagram and relays back at most one
// response within the UDP timeout.
func (e *Engine) udpRelay(appSrc, dst netip.AddrPort, payload []byte) {
	u := e.prov.OpenUDP()
	defer u.Close()
	if e.cfg.Protect == ProtectPerSocket || e.cfg.Protect == ProtectPerSocketMainThread {
		u.Protect()
	}
	u.SendTo(dst, payload)
	resp, err := u.Recv(e.cfg.UDPTimeout)
	if err != nil {
		return
	}
	e.ctr.udpRelayed.Add(1)
	e.emit(packet.UDPPacket(dst, appSrc, resp))
}
