package engine

// Engine lifecycle: thread startup and teardown.

// Start launches the engine threads: TunReader, the packet-processing
// core (one MainWorker, or a dispatcher plus N pinned workers when
// Config.Workers > 1), and (for queueWrite schemes) TunWriter. It also
// performs the one-time addDisallowedApplication when configured
// (§3.5.2: "the call is best invoked during the initialization of
// MopEye").
func (e *Engine) Start() {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return
	}
	e.running = true
	e.started = e.clk.Now()
	e.mu.Unlock()

	if e.cfg.Protect == ProtectDisallowed {
		e.prov.AddDisallowedApplication()
	}
	e.dev.SetBlocking(e.cfg.ReadMode == ReadBlocking)

	e.udp.start()
	// The Haystack-style polled main loop is inherently single-threaded;
	// the sharded pipeline only replaces the event-driven loop.
	if e.multiWorker() {
		// Batched pipeline: workers first (the reader scatters into
		// their rings), then the scattering reader, then the batched
		// writer. On the default shared-nothing path each worker runs a
		// private MainWorker-shaped loop over its own selector and
		// ring; under SharedDispatcher the workers drain event lanes
		// fed by a dispatcher goroutine owning the one shared selector.
		e.workers = make([]*worker, e.cfg.Workers)
		for i := range e.workers {
			w := &worker{id: i, q: newRingQ(e.cfg.RingSize)}
			if e.sels != nil {
				w.sel = e.sels[i]
				w.q.wake = w.sel.Wakeup
			}
			e.workers[i] = w
		}
		for _, w := range e.workers {
			e.wg.Add(1)
			if w.sel != nil {
				go e.workerLoopSharded(w)
			} else {
				go e.workerLoop(w)
			}
		}
		e.wg.Add(1)
		go e.tunReaderBatched()
		if e.sels == nil {
			e.wg.Add(1)
			go e.dispatcher()
		}
	} else {
		// Paper-faithful Figure 4: per-packet TunReader + MainWorker.
		e.wg.Add(1)
		go e.tunReader()
		e.wg.Add(1)
		go e.mainWorker()
	}
	if e.writeQ != nil {
		e.wg.Add(1)
		if e.multiWorker() {
			go e.tunWriterBatched()
		} else {
			go e.tunWriter()
		}
	}
}

// multiWorker reports whether the sharded batched pipeline runs (as
// opposed to the paper-faithful single MainWorker, which every ablation
// measures and which stays bit-identical to the seed's behaviour).
func (e *Engine) multiWorker() bool {
	return e.cfg.Workers > 1 && e.cfg.MainLoopPoll <= 0
}

// Stop shuts the engine down. A dummy packet releases the blocked
// tunnel read (§3.1), the selector is closed to release the processing
// core, worker queues drain, and all external sockets are closed.
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.running {
		e.mu.Unlock()
		return
	}
	e.running = false
	close(e.stopped)
	e.mu.Unlock()

	// Release a TunReader blocked in read() by injecting a dummy packet
	// — MopEye's own trick (self-sent below 5.0, DownloadManager-
	// triggered on 5.0+; the bytes are identical from the reader's
	// perspective).
	_ = e.dev.InjectOutbound([]byte{0})
	e.sel.Wakeup()
	for _, s := range e.sels {
		s.Wakeup()
	}
	if e.writeQ != nil {
		e.writeQ.close()
	}
	e.wg.Wait()
	// The packet-processing threads are gone, so no new UDP jobs can be
	// enqueued; stopping the relay closes its sessions and pool.
	e.udp.stop()
	e.sel.Close()
	for _, s := range e.sels {
		s.Close()
	}

	for _, c := range e.flows.Drain() {
		if ch := c.Ch(); ch != nil {
			ch.Close()
		}
	}
}

func (e *Engine) isRunning() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.running
}
