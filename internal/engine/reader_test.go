package engine

import (
	"testing"
	"time"
)

// The adaptive read mode's sleep schedule, unit-tested directly: the
// seed shipped with `_ = consecutive` — the burst counter was tracked
// and discarded, so ReadPollAdaptive behaved identically to a fixed
// 1 ms poll. These tests pin the documented burst-then-back-off
// behaviour.

func TestPollPolicyBacksOffWhenIdle(t *testing.T) {
	p := newPollPolicy(time.Millisecond, 100*time.Millisecond, 3)
	// Never any traffic: no burst budget, every empty poll sleeps the
	// long interval immediately.
	for i := 0; i < 5; i++ {
		if d := p.onEmpty(); d != 100*time.Millisecond {
			t.Fatalf("idle poll %d slept %v, want the long interval", i, d)
		}
	}
}

func TestPollPolicyBurstsAfterActivity(t *testing.T) {
	p := newPollPolicy(time.Millisecond, 100*time.Millisecond, 3)
	p.onSuccess()
	// The next burstMax empty polls stay on the short interval...
	for i := 0; i < 3; i++ {
		if d := p.onEmpty(); d != time.Millisecond {
			t.Fatalf("burst poll %d slept %v, want the short interval", i, d)
		}
	}
	// ...then the poller backs off.
	if d := p.onEmpty(); d != 100*time.Millisecond {
		t.Fatalf("post-burst poll slept %v, want the long interval", d)
	}
}

// TestPollPolicyZeroBurstNeverSpinsShort pins the burstMax == 0 fix: a
// zero burst budget must behave as plain long-interval polling — in
// particular onSuccess must not hand out short-interval credit that
// nothing would ever decay, which would pin a misconfigured adaptive
// poller to the short interval forever.
func TestPollPolicyZeroBurstNeverSpinsShort(t *testing.T) {
	p := newPollPolicy(time.Millisecond, 100*time.Millisecond, 0)
	for round := 0; round < 3; round++ {
		p.onSuccess()
		for i := 0; i < 5; i++ {
			if d := p.onEmpty(); d != 100*time.Millisecond {
				t.Fatalf("round %d empty poll %d slept %v, want the long interval", round, i, d)
			}
		}
	}
	// Even a stale positive budget (a burst window reconfigured away
	// mid-flight) must decay instantly to the long interval.
	p.burst = 7
	if d := p.onEmpty(); d != 100*time.Millisecond {
		t.Fatalf("stale budget with burstMax=0 slept %v, want the long interval", d)
	}
	if p.burst != 0 {
		t.Fatalf("stale budget not cleared: %d", p.burst)
	}
}

// TestPollPolicyNegativeBurstNormalised pins the constructor guard:
// negative budgets (Config.PollBurst < 0 disables bursting) behave like
// zero.
func TestPollPolicyNegativeBurstNormalised(t *testing.T) {
	p := newPollPolicy(time.Millisecond, 50*time.Millisecond, -3)
	p.onSuccess()
	if d := p.onEmpty(); d != 50*time.Millisecond {
		t.Fatalf("negative burstMax slept %v, want the long interval", d)
	}
}

// TestPollPolicyBackOffSchedule pins the full schedule end to end:
// success → burstMax shorts → long, long, ... → success refills.
func TestPollPolicyBackOffSchedule(t *testing.T) {
	p := newPollPolicy(time.Millisecond, 80*time.Millisecond, 2)
	want := []time.Duration{
		80 * time.Millisecond, // idle from the start: no budget
	}
	var got []time.Duration
	got = append(got, p.onEmpty())
	p.onSuccess()
	want = append(want,
		time.Millisecond, time.Millisecond, // the burst window
		80*time.Millisecond, 80*time.Millisecond, // backed off
	)
	for i := 0; i < 4; i++ {
		got = append(got, p.onEmpty())
	}
	p.onSuccess()
	want = append(want, time.Millisecond) // refilled
	got = append(got, p.onEmpty())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule step %d slept %v, want %v (full schedule %v)", i, got[i], want[i], got)
		}
	}
}

func TestPollPolicySuccessRefillsBurst(t *testing.T) {
	p := newPollPolicy(time.Millisecond, 100*time.Millisecond, 2)
	p.onSuccess()
	if d := p.onEmpty(); d != time.Millisecond {
		t.Fatalf("first empty poll slept %v", d)
	}
	// Activity mid-burst refills the budget in full.
	p.onSuccess()
	for i := 0; i < 2; i++ {
		if d := p.onEmpty(); d != time.Millisecond {
			t.Fatalf("refilled burst poll %d slept %v", i, d)
		}
	}
	if d := p.onEmpty(); d != 100*time.Millisecond {
		t.Fatalf("exhausted burst slept %v, want the long interval", d)
	}
}
