package engine

import (
	"testing"
	"time"
)

// The adaptive read mode's sleep schedule, unit-tested directly: the
// seed shipped with `_ = consecutive` — the burst counter was tracked
// and discarded, so ReadPollAdaptive behaved identically to a fixed
// 1 ms poll. These tests pin the documented burst-then-back-off
// behaviour.

func TestPollPolicyBacksOffWhenIdle(t *testing.T) {
	p := newPollPolicy(time.Millisecond, 100*time.Millisecond, 3)
	// Never any traffic: no burst budget, every empty poll sleeps the
	// long interval immediately.
	for i := 0; i < 5; i++ {
		if d := p.onEmpty(); d != 100*time.Millisecond {
			t.Fatalf("idle poll %d slept %v, want the long interval", i, d)
		}
	}
}

func TestPollPolicyBurstsAfterActivity(t *testing.T) {
	p := newPollPolicy(time.Millisecond, 100*time.Millisecond, 3)
	p.onSuccess()
	// The next burstMax empty polls stay on the short interval...
	for i := 0; i < 3; i++ {
		if d := p.onEmpty(); d != time.Millisecond {
			t.Fatalf("burst poll %d slept %v, want the short interval", i, d)
		}
	}
	// ...then the poller backs off.
	if d := p.onEmpty(); d != 100*time.Millisecond {
		t.Fatalf("post-burst poll slept %v, want the long interval", d)
	}
}

func TestPollPolicySuccessRefillsBurst(t *testing.T) {
	p := newPollPolicy(time.Millisecond, 100*time.Millisecond, 2)
	p.onSuccess()
	if d := p.onEmpty(); d != time.Millisecond {
		t.Fatalf("first empty poll slept %v", d)
	}
	// Activity mid-burst refills the budget in full.
	p.onSuccess()
	for i := 0; i < 2; i++ {
		if d := p.onEmpty(); d != time.Millisecond {
			t.Fatalf("refilled burst poll %d slept %v", i, d)
		}
	}
	if d := p.onEmpty(); d != 100*time.Millisecond {
		t.Fatalf("exhausted burst slept %v, want the long interval", d)
	}
}
