package engine

import (
	"sort"
	"sync"

	"repro/internal/packet"
	"repro/internal/relay"
)

// This file is an extension beyond the paper's shipped feature set, in
// the direction its conclusion names ("supporting more metrics beyond
// RTT"): per-app traffic accounting. Because every relayed byte passes
// through the engine and every connection is attributed to an app by
// the §3.3 mapping, volume metrics come for free — the same
// opportunistic, zero-overhead property as the RTT measurement.

// AppTraffic aggregates one app's relayed volume.
type AppTraffic struct {
	App         string
	Connections int
	BytesUp     int64 // app -> server (TCP)
	BytesDown   int64 // server -> app (TCP)
	DNSQueries  int
	// UDPBytesUp/UDPBytesDown are the app's relayed non-DNS datagram
	// volumes, attributed through the udp/udp6 proc tables the same way
	// TCP connections are attributed through tcp/tcp6 (§2.2).
	UDPBytesUp   int64
	UDPBytesDown int64
}

// trafficBook accumulates per-app traffic under its own lock (hot
// path: every data relay).
type trafficBook struct {
	mu   sync.Mutex
	apps map[string]*AppTraffic
}

func newTrafficBook() *trafficBook {
	return &trafficBook{apps: make(map[string]*AppTraffic)}
}

func (t *trafficBook) connection(app string) {
	t.mu.Lock()
	t.get(app).Connections++
	t.mu.Unlock()
}

// volume folds one closed connection's byte counts.
func (t *trafficBook) volume(app string, up, down int64) {
	t.mu.Lock()
	e := t.get(app)
	e.BytesUp += up
	e.BytesDown += down
	t.mu.Unlock()
}

func (t *trafficBook) dns(app string) {
	t.mu.Lock()
	t.get(app).DNSQueries++
	t.mu.Unlock()
}

// udp folds one relayed datagram direction's bytes.
func (t *trafficBook) udp(app string, up, down int64) {
	t.mu.Lock()
	e := t.get(app)
	e.UDPBytesUp += up
	e.UDPBytesDown += down
	t.mu.Unlock()
}

// get returns the entry for app; caller holds t.mu.
func (t *trafficBook) get(app string) *AppTraffic {
	e, ok := t.apps[app]
	if !ok {
		e = &AppTraffic{App: app}
		t.apps[app] = e
	}
	return e
}

// snapshot returns entries sorted by total volume descending.
func (t *trafficBook) snapshot() []AppTraffic {
	t.mu.Lock()
	out := make([]AppTraffic, 0, len(t.apps))
	for _, e := range t.apps {
		out = append(out, *e)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].BytesUp + out[i].BytesDown + out[i].UDPBytesUp + out[i].UDPBytesDown
		tj := out[j].BytesUp + out[j].BytesDown + out[j].UDPBytesUp + out[j].UDPBytesDown
		if ti != tj {
			return ti > tj
		}
		return out[i].App < out[j].App
	})
	return out
}

// AppTraffic returns the per-app relayed-volume accounting, largest
// first. Live connections are folded in from their state machines via
// the sharded flow table (one shard locked at a time, so a snapshot
// never stalls the relay), so the report is current even mid-transfer.
func (e *Engine) AppTraffic() []AppTraffic {
	merged := newTrafficBook()
	e.flows.ForEach(func(_ packet.FlowKey, cl *relay.TCPClient) {
		st := cl.SM.Stats()
		_, app := cl.AppInfo()
		merged.volume(app, st.BytesFromApp, st.BytesToApp)
	})
	base := e.traffic.snapshot()
	for _, b := range base {
		merged.mu.Lock()
		entry := merged.get(b.App)
		entry.BytesUp += b.BytesUp
		entry.BytesDown += b.BytesDown
		entry.Connections += b.Connections
		entry.DNSQueries += b.DNSQueries
		entry.UDPBytesUp += b.UDPBytesUp
		entry.UDPBytesDown += b.UDPBytesDown
		merged.mu.Unlock()
	}
	return merged.snapshot()
}
