package engine_test

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/phonestack"
	"repro/internal/procnet"
	"repro/internal/sockets"
	"repro/internal/tun"
)

// Tests for the pooled UDP relay subsystem: DNS failure accounting,
// per-app UDP byte attribution, NAT-style session reuse and idle
// expiry, and the bounded-goroutine property under datagram flood.

// TestDNSTimeoutCounted verifies the dnsTimeouts counter: a dead
// resolver produces no record but the failed transaction is visible in
// Stats.
func TestDNSTimeoutCounted(t *testing.T) {
	cfg := engine.Default()
	cfg.DNSTimeout = 50 * time.Millisecond
	tb := newAblationBed(t, cfg, sockets.ZeroCosts(), procnet.ZeroParseCost())
	deadDNS := netip.MustParseAddrPort("9.9.9.9:53")
	if _, err := tb.phone.Resolve(uidApp, deadDNS, "example.com", 200*time.Millisecond); err == nil {
		t.Fatal("resolve against dead server succeeded")
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.Stats().DNSTimeouts >= 1 }, "dnsTimeouts counter")
	if got := tb.eng.Stats().DNSMeasurements; got != 0 {
		t.Errorf("dead resolver produced %d measurements", got)
	}
	// A healthy resolve afterwards measures without counting a timeout.
	before := tb.eng.Stats().DNSTimeouts
	if _, err := tb.phone.Resolve(uidApp, tb.dns, "example.com", 5*time.Second); err != nil {
		t.Fatalf("healthy resolve: %v", err)
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.Stats().DNSMeasurements >= 1 }, "DNS measurement")
	if got := tb.eng.Stats().DNSTimeouts; got != before {
		t.Errorf("healthy resolve bumped DNSTimeouts to %d", got)
	}
}

// TestUDPTrafficAttribution verifies relayed non-DNS UDP bytes land in
// the traffic stats attributed to the owning app (via the udp/udp6
// proc tables), and in the engine counters.
func TestUDPTrafficAttribution(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	echoPort := netip.MustParseAddrPort("203.0.113.77:9999")
	tb.net.HandleUDP(echoPort, 0, func(req []byte, from netip.AddrPort) []byte {
		return append([]byte("pong:"), req...)
	})
	u, err := tb.phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.SendTo(echoPort, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Recv(5 * time.Second); err != nil {
		t.Fatalf("recv: %v", err)
	}
	waitFor(t, 3*time.Second, func() bool {
		for _, a := range tb.eng.AppTraffic() {
			if a.App == appName && a.UDPBytesUp >= 4 && a.UDPBytesDown >= 9 {
				return true
			}
		}
		return false
	}, "per-app UDP byte attribution")
	st := tb.eng.Stats()
	if st.UDPBytesUp < 4 || st.UDPBytesDown < 9 {
		t.Errorf("UDP byte counters: up %d down %d", st.UDPBytesUp, st.UDPBytesDown)
	}
	if st.UDPRelayed < 1 {
		t.Errorf("UDPRelayed = %d", st.UDPRelayed)
	}
}

// TestUDPSessionReuseAndExpiry exercises the NAT-style session
// lifecycle: one flow maps to one session no matter how many datagrams
// it sends, and an idle session is expired by the sweeper.
func TestUDPSessionReuseAndExpiry(t *testing.T) {
	cfg := engine.Default()
	cfg.UDPSessionIdle = 60 * time.Millisecond
	tb := newTestbed(t, cfg)
	echoPort := netip.MustParseAddrPort("203.0.113.77:9999")
	tb.net.HandleUDP(echoPort, 0, func(req []byte, from netip.AddrPort) []byte { return req })

	u, err := tb.phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 0; i < 5; i++ {
		if err := u.SendTo(echoPort, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := u.Recv(5 * time.Second); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if got := tb.eng.ActiveUDPSessions(); got != 1 {
		t.Fatalf("5 datagrams of one flow created %d sessions, want 1", got)
	}

	// Let the session go idle past the deadline, then poke the relay
	// from a different flow so the enqueue path schedules a sweep.
	time.Sleep(2 * cfg.UDPSessionIdle)
	u2, err := tb.phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	if err := u2.SendTo(echoPort, []byte("poke")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.ActiveUDPSessions() == 1 }, "idle session expiry")

	// The original flow still relays — a fresh session replaces the
	// expired one transparently.
	if err := u.SendTo(echoPort, []byte("again")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Recv(5 * time.Second); err != nil {
		t.Fatalf("recv after expiry: %v", err)
	}
}

// TestUDPRelaySameFlowDropAccountingExact is the -race stress for the
// pooled relay's accounting contract: a flood of datagrams on ONE flow
// (so every packet reuses the same NAT session, from concurrent sender
// goroutines, through concurrent pool workers sharing that session's
// socket) must satisfy, exactly,
//
//	UDPRelayed + UDPDropped == datagrams sent
//
// — no drop lost, none double-counted, no response counted twice. The
// drops are made deterministic instead of load-dependent: the echo
// service blocks on a gate, so the pool wedges, the bounded job queue
// fills, and every further datagram must take the drop path; releasing
// the gate drains the queue and every accepted datagram must then be
// counted as relayed.
func TestUDPRelaySameFlowDropAccountingExact(t *testing.T) {
	const (
		senders   = 4
		perSender = 400
		total     = senders * perSender
	)

	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{}, 1)
	net.SetLoopback(true)
	defer net.Close()
	gate := make(chan struct{})
	echoPort := netip.MustParseAddrPort("203.0.113.90:7070")
	net.HandleUDP(echoPort, 0, func(req []byte, from netip.AddrPort) []byte {
		<-gate // wedge the pool worker until the flood has fully landed
		return req
	})

	dev := tun.New(clk, 8192) // deeper than the flood: no TUN-side drops
	defer dev.Close()
	table := procnet.NewTable()
	pm := procnet.NewPackageManager()
	pm.Install(uidApp, appName)
	phone := phonestack.New(clk, dev, phoneVPNAddr, table, 2)
	defer phone.Close()
	prov := sockets.NewProvider(net, clk, phoneWANAddr, sockets.ZeroCosts(), 3)
	reader := procnet.NewReader(table, clk, procnet.ZeroParseCost(), 4)

	cfg := engine.Default()
	cfg.Workers = 4
	cfg.UDPPoolSize = 2
	eng := engine.New(cfg, engine.Deps{
		Clock: clk, Device: dev, Sockets: prov, ProcNet: reader, Packages: pm,
	})
	eng.Start()
	defer eng.Stop()

	u, err := phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := u.SendTo(echoPort, []byte("same-flow")); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every datagram must reach the relay (accepted into the queue or
	// counted as dropped) before the gate opens; accounting may never
	// run ahead of the traffic.
	waitFor(t, 10*time.Second, func() bool {
		st := eng.Stats()
		if st.UDPRelayed+st.UDPDropped > total {
			t.Fatalf("accounting overshot mid-flood: relayed %d + dropped %d > sent %d",
				st.UDPRelayed, st.UDPDropped, total)
		}
		return st.PacketsFromTun >= total
	}, "flood to reach the relay")
	if st := eng.Stats(); st.UDPDropped == 0 {
		t.Fatalf("wedged pool produced no drops (relayed %d): the drop path was not exercised", st.UDPRelayed)
	}

	close(gate)
	waitFor(t, 10*time.Second, func() bool {
		st := eng.Stats()
		if st.UDPRelayed+st.UDPDropped > total {
			t.Fatalf("accounting overshot: relayed %d + dropped %d > sent %d",
				st.UDPRelayed, st.UDPDropped, total)
		}
		return st.UDPRelayed+st.UDPDropped == total
	}, "exact relayed+dropped accounting")
	// Settle and re-check: a double count would keep drifting.
	time.Sleep(100 * time.Millisecond)
	st := eng.Stats()
	if st.UDPRelayed+st.UDPDropped != total {
		t.Errorf("accounting drifted after settling: relayed %d + dropped %d != sent %d",
			st.UDPRelayed, st.UDPDropped, total)
	}
	if got := eng.ActiveUDPSessions(); got != 1 {
		t.Errorf("%d NAT sessions for one flow, want 1", got)
	}
}

// TestUDPFloodBoundedGoroutines is the acceptance check for the pooled
// relay: a datagram flood through the multi-worker engine must not
// spawn goroutines per datagram — the count stays within the pool size
// plus a small constant. (The pre-pool engine spawned one goroutine
// per datagram: a 400-datagram flood meant ~400 goroutines.)
func TestUDPFloodBoundedGoroutines(t *testing.T) {
	const (
		conns        = 4
		perConn      = 100
		totalFlood   = conns * perConn
		boundedSlack = 24 // engine threads churn (connect threads, netsim)
	)

	// Loopback network: UDP services answer inline, so the only
	// goroutines in play are the engine's own.
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{}, 1)
	net.SetLoopback(true)
	defer net.Close()
	echoPort := netip.MustParseAddrPort("203.0.113.88:7777")
	net.HandleUDP(echoPort, 0, func(req []byte, from netip.AddrPort) []byte { return req })

	dev := tun.New(clk, 4096)
	defer dev.Close()
	table := procnet.NewTable()
	pm := procnet.NewPackageManager()
	pm.Install(uidApp, appName)
	phone := phonestack.New(clk, dev, phoneVPNAddr, table, 2)
	defer phone.Close()
	prov := sockets.NewProvider(net, clk, phoneWANAddr, sockets.ZeroCosts(), 3)
	reader := procnet.NewReader(table, clk, procnet.ZeroParseCost(), 4)

	cfg := engine.Default()
	cfg.Workers = 4
	eng := engine.New(cfg, engine.Deps{
		Clock: clk, Device: dev, Sockets: prov, ProcNet: reader, Packages: pm,
	})
	eng.Start()
	defer eng.Stop()

	baseline := runtime.NumGoroutine()

	socks := make([]*phonestack.UDPConn, conns)
	for i := range socks {
		u, err := phone.OpenUDP(uidApp)
		if err != nil {
			t.Fatal(err)
		}
		defer u.Close()
		socks[i] = u
	}

	peak := baseline
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < perConn; i++ {
			for _, u := range socks {
				if err := u.SendTo(echoPort, []byte(fmt.Sprintf("flood-%d", i))); err != nil {
					return
				}
			}
		}
	}()
	hardStop := time.Now().Add(5 * time.Second)
	var drainUntil time.Time
	for {
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
		select {
		case <-done:
			// Flood injected; keep sampling while the pool drains.
			drainUntil = time.Now().Add(150 * time.Millisecond)
			done = nil
		default:
		}
		now := time.Now()
		if (done == nil && now.After(drainUntil)) || now.After(hardStop) {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}

	if peak-baseline > boundedSlack {
		t.Errorf("goroutine peak %d (baseline %d, +%d) exceeds pool+constant bound %d — relay is spawning per datagram?",
			peak, baseline, peak-baseline, boundedSlack)
	}
	if peak-baseline >= totalFlood/2 {
		t.Errorf("goroutine growth %d is flood-proportional (%d datagrams)", peak-baseline, totalFlood)
	}

	// The relay stayed live: responses flowed back (drops are allowed
	// under overload, silence is not).
	waitFor(t, 5*time.Second, func() bool {
		st := eng.Stats()
		return st.UDPRelayed+st.UDPDropped >= totalFlood/2
	}, "flood relayed or accounted")
}

// A 100%-timeout DNS regime (blackholed resolver) must not wedge the
// bounded relay pool: each blocking DNS receive parks a worker for the
// full DNSTimeout, so without the inflight cap a burst of queries
// parks all of them and relayed UDP stalls for seconds. With the cap,
// echo traffic keeps flowing while the blackhole queries wait out
// their timeouts, and every datagram — measured, timed out, shed —
// lands in exactly one counter.
func TestDNSBlackholeDoesNotStarvePool(t *testing.T) {
	cfg := engine.Default()
	cfg.DNSTimeout = 600 * time.Millisecond
	cfg.UDPTimeout = 200 * time.Millisecond
	tb := newTestbed(t, cfg)
	// Blackhole the resolver path: every datagram to it vanishes.
	tb.net.SetLink(tb.dns.Addr(), netsim.LinkParams{Delay: time.Millisecond, Loss: 1.0})
	echoPort := netip.MustParseAddrPort("203.0.113.77:9999")
	tb.net.HandleUDP(echoPort, 0, netsim.EchoUDPHandler())

	const dnsQueries = 12 // 3x the default inflight cap of pool/2 = 4
	var wg sync.WaitGroup
	for i := 0; i < dnsQueries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = tb.phone.Resolve(uidApp, tb.dns, "example.com", 900*time.Millisecond)
		}()
	}

	// While the blackhole queries are pending, relayed UDP must flow.
	u, err := tb.phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	const echoes = 10
	start := time.Now()
	for i := 0; i < echoes; i++ {
		if err := u.SendTo(echoPort, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := u.Recv(2 * time.Second); err != nil {
			t.Fatalf("echo %d under DNS blackhole: %v (pool starved?)", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > cfg.DNSTimeout {
		t.Errorf("%d echo round trips took %v with blackhole queries pending; want well under the %v DNS timeout", echoes, elapsed, cfg.DNSTimeout)
	}
	wg.Wait()

	sent := tb.phone.UDPDatagramsSent()
	waitFor(t, 5*time.Second, func() bool {
		st := tb.eng.Stats()
		return int64(st.DNSMeasurements+st.DNSTimeouts+st.UDPRelayed+st.UDPNoResponse+st.UDPDropped) == sent
	}, "exact datagram accounting under DNS blackhole")
	st := tb.eng.Stats()
	if st.DNSTimeouts == 0 {
		t.Error("blackholed resolver produced no DNSTimeouts")
	}
	if st.UDPDropped == 0 {
		t.Errorf("no shed DNS queries counted: %d queries against an inflight cap of %d should shed", dnsQueries, cfg.UDPPoolSize)
	}
	if st.DNSMeasurements != 0 {
		t.Errorf("blackholed resolver produced %d DNS measurements", st.DNSMeasurements)
	}
	if st.UDPRelayed < echoes {
		t.Errorf("UDPRelayed = %d, want >= %d echoes relayed during the blackhole", st.UDPRelayed, echoes)
	}
}

// A non-DNS request whose response misses the receive window is
// counted (UDPNoResponse — never silent), and when the response
// arrives late it is forwarded to the app by the next datagram's stale
// drain and counted as UDPLateRelayed, not folded into UDPRelayed
// where it would double-book the datagram.
func TestUDPNoResponseAndLateRelayCounted(t *testing.T) {
	cfg := engine.Default()
	cfg.UDPTimeout = 100 * time.Millisecond
	tb := newTestbed(t, cfg)
	slowPort := netip.MustParseAddrPort("203.0.113.88:7777")
	// The service thinks for 3x the relay's receive window, so every
	// response is late.
	tb.net.HandleUDP(slowPort, 300*time.Millisecond, netsim.EchoUDPHandler())

	u, err := tb.phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.SendTo(slowPort, []byte("one")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.Stats().UDPNoResponse >= 1 }, "UDPNoResponse counted")
	// Let the late response land on the session socket, then poke the
	// flow with a second datagram whose stale drain forwards it.
	time.Sleep(350 * time.Millisecond)
	if err := u.SendTo(slowPort, []byte("two")); err != nil {
		t.Fatal(err)
	}
	payload, _, err := u.Recv(2 * time.Second)
	if err != nil {
		t.Fatalf("late response never reached the app: %v", err)
	}
	if string(payload) != "one" {
		t.Errorf("late-relayed payload = %q, want the first request's echo", payload)
	}
	waitFor(t, 3*time.Second, func() bool {
		st := tb.eng.Stats()
		return st.UDPNoResponse >= 2 && st.UDPLateRelayed >= 1
	}, "second window timeout + late relay counted")
	st := tb.eng.Stats()
	if st.UDPRelayed != 0 {
		t.Errorf("UDPRelayed = %d; late responses must count as UDPLateRelayed, not UDPRelayed", st.UDPRelayed)
	}
	if st.UDPLateRelayed > st.UDPNoResponse {
		t.Errorf("UDPLateRelayed %d > UDPNoResponse %d violates the accounting identity", st.UDPLateRelayed, st.UDPNoResponse)
	}
	sent := tb.phone.UDPDatagramsSent()
	if got := int64(st.DNSMeasurements + st.DNSTimeouts + st.UDPRelayed + st.UDPNoResponse + st.UDPDropped); got != sent {
		t.Errorf("accounting: measured+timeouts+relayed+noresponse+dropped = %d, phone sent %d", got, sent)
	}
}
