package engine_test

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/phonestack"
	"repro/internal/procnet"
	"repro/internal/sockets"
	"repro/internal/tun"
)

// Tests for the pooled UDP relay subsystem: DNS failure accounting,
// per-app UDP byte attribution, NAT-style session reuse and idle
// expiry, and the bounded-goroutine property under datagram flood.

// TestDNSTimeoutCounted verifies the dnsTimeouts counter: a dead
// resolver produces no record but the failed transaction is visible in
// Stats.
func TestDNSTimeoutCounted(t *testing.T) {
	cfg := engine.Default()
	cfg.DNSTimeout = 50 * time.Millisecond
	tb := newAblationBed(t, cfg, sockets.ZeroCosts(), procnet.ZeroParseCost())
	deadDNS := netip.MustParseAddrPort("9.9.9.9:53")
	if _, err := tb.phone.Resolve(uidApp, deadDNS, "example.com", 200*time.Millisecond); err == nil {
		t.Fatal("resolve against dead server succeeded")
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.Stats().DNSTimeouts >= 1 }, "dnsTimeouts counter")
	if got := tb.eng.Stats().DNSMeasurements; got != 0 {
		t.Errorf("dead resolver produced %d measurements", got)
	}
	// A healthy resolve afterwards measures without counting a timeout.
	before := tb.eng.Stats().DNSTimeouts
	if _, err := tb.phone.Resolve(uidApp, tb.dns, "example.com", 5*time.Second); err != nil {
		t.Fatalf("healthy resolve: %v", err)
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.Stats().DNSMeasurements >= 1 }, "DNS measurement")
	if got := tb.eng.Stats().DNSTimeouts; got != before {
		t.Errorf("healthy resolve bumped DNSTimeouts to %d", got)
	}
}

// TestUDPTrafficAttribution verifies relayed non-DNS UDP bytes land in
// the traffic stats attributed to the owning app (via the udp/udp6
// proc tables), and in the engine counters.
func TestUDPTrafficAttribution(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	echoPort := netip.MustParseAddrPort("203.0.113.77:9999")
	tb.net.HandleUDP(echoPort, 0, func(req []byte, from netip.AddrPort) []byte {
		return append([]byte("pong:"), req...)
	})
	u, err := tb.phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.SendTo(echoPort, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Recv(5 * time.Second); err != nil {
		t.Fatalf("recv: %v", err)
	}
	waitFor(t, 3*time.Second, func() bool {
		for _, a := range tb.eng.AppTraffic() {
			if a.App == appName && a.UDPBytesUp >= 4 && a.UDPBytesDown >= 9 {
				return true
			}
		}
		return false
	}, "per-app UDP byte attribution")
	st := tb.eng.Stats()
	if st.UDPBytesUp < 4 || st.UDPBytesDown < 9 {
		t.Errorf("UDP byte counters: up %d down %d", st.UDPBytesUp, st.UDPBytesDown)
	}
	if st.UDPRelayed < 1 {
		t.Errorf("UDPRelayed = %d", st.UDPRelayed)
	}
}

// TestUDPSessionReuseAndExpiry exercises the NAT-style session
// lifecycle: one flow maps to one session no matter how many datagrams
// it sends, and an idle session is expired by the sweeper.
func TestUDPSessionReuseAndExpiry(t *testing.T) {
	cfg := engine.Default()
	cfg.UDPSessionIdle = 60 * time.Millisecond
	tb := newTestbed(t, cfg)
	echoPort := netip.MustParseAddrPort("203.0.113.77:9999")
	tb.net.HandleUDP(echoPort, 0, func(req []byte, from netip.AddrPort) []byte { return req })

	u, err := tb.phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 0; i < 5; i++ {
		if err := u.SendTo(echoPort, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := u.Recv(5 * time.Second); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if got := tb.eng.ActiveUDPSessions(); got != 1 {
		t.Fatalf("5 datagrams of one flow created %d sessions, want 1", got)
	}

	// Let the session go idle past the deadline, then poke the relay
	// from a different flow so the enqueue path schedules a sweep.
	time.Sleep(2 * cfg.UDPSessionIdle)
	u2, err := tb.phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	if err := u2.SendTo(echoPort, []byte("poke")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return tb.eng.ActiveUDPSessions() == 1 }, "idle session expiry")

	// The original flow still relays — a fresh session replaces the
	// expired one transparently.
	if err := u.SendTo(echoPort, []byte("again")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Recv(5 * time.Second); err != nil {
		t.Fatalf("recv after expiry: %v", err)
	}
}

// TestUDPRelaySameFlowDropAccountingExact is the -race stress for the
// pooled relay's accounting contract: a flood of datagrams on ONE flow
// (so every packet reuses the same NAT session, from concurrent sender
// goroutines, through concurrent pool workers sharing that session's
// socket) must satisfy, exactly,
//
//	UDPRelayed + UDPDropped == datagrams sent
//
// — no drop lost, none double-counted, no response counted twice. The
// drops are made deterministic instead of load-dependent: the echo
// service blocks on a gate, so the pool wedges, the bounded job queue
// fills, and every further datagram must take the drop path; releasing
// the gate drains the queue and every accepted datagram must then be
// counted as relayed.
func TestUDPRelaySameFlowDropAccountingExact(t *testing.T) {
	const (
		senders   = 4
		perSender = 400
		total     = senders * perSender
	)

	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{}, 1)
	net.SetLoopback(true)
	defer net.Close()
	gate := make(chan struct{})
	echoPort := netip.MustParseAddrPort("203.0.113.90:7070")
	net.HandleUDP(echoPort, 0, func(req []byte, from netip.AddrPort) []byte {
		<-gate // wedge the pool worker until the flood has fully landed
		return req
	})

	dev := tun.New(clk, 8192) // deeper than the flood: no TUN-side drops
	defer dev.Close()
	table := procnet.NewTable()
	pm := procnet.NewPackageManager()
	pm.Install(uidApp, appName)
	phone := phonestack.New(clk, dev, phoneVPNAddr, table, 2)
	defer phone.Close()
	prov := sockets.NewProvider(net, clk, phoneWANAddr, sockets.ZeroCosts(), 3)
	reader := procnet.NewReader(table, clk, procnet.ZeroParseCost(), 4)

	cfg := engine.Default()
	cfg.Workers = 4
	cfg.UDPPoolSize = 2
	eng := engine.New(cfg, engine.Deps{
		Clock: clk, Device: dev, Sockets: prov, ProcNet: reader, Packages: pm,
	})
	eng.Start()
	defer eng.Stop()

	u, err := phone.OpenUDP(uidApp)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := u.SendTo(echoPort, []byte("same-flow")); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every datagram must reach the relay (accepted into the queue or
	// counted as dropped) before the gate opens; accounting may never
	// run ahead of the traffic.
	waitFor(t, 10*time.Second, func() bool {
		st := eng.Stats()
		if st.UDPRelayed+st.UDPDropped > total {
			t.Fatalf("accounting overshot mid-flood: relayed %d + dropped %d > sent %d",
				st.UDPRelayed, st.UDPDropped, total)
		}
		return st.PacketsFromTun >= total
	}, "flood to reach the relay")
	if st := eng.Stats(); st.UDPDropped == 0 {
		t.Fatalf("wedged pool produced no drops (relayed %d): the drop path was not exercised", st.UDPRelayed)
	}

	close(gate)
	waitFor(t, 10*time.Second, func() bool {
		st := eng.Stats()
		if st.UDPRelayed+st.UDPDropped > total {
			t.Fatalf("accounting overshot: relayed %d + dropped %d > sent %d",
				st.UDPRelayed, st.UDPDropped, total)
		}
		return st.UDPRelayed+st.UDPDropped == total
	}, "exact relayed+dropped accounting")
	// Settle and re-check: a double count would keep drifting.
	time.Sleep(100 * time.Millisecond)
	st := eng.Stats()
	if st.UDPRelayed+st.UDPDropped != total {
		t.Errorf("accounting drifted after settling: relayed %d + dropped %d != sent %d",
			st.UDPRelayed, st.UDPDropped, total)
	}
	if got := eng.ActiveUDPSessions(); got != 1 {
		t.Errorf("%d NAT sessions for one flow, want 1", got)
	}
}

// TestUDPFloodBoundedGoroutines is the acceptance check for the pooled
// relay: a datagram flood through the multi-worker engine must not
// spawn goroutines per datagram — the count stays within the pool size
// plus a small constant. (The pre-pool engine spawned one goroutine
// per datagram: a 400-datagram flood meant ~400 goroutines.)
func TestUDPFloodBoundedGoroutines(t *testing.T) {
	const (
		conns        = 4
		perConn      = 100
		totalFlood   = conns * perConn
		boundedSlack = 24 // engine threads churn (connect threads, netsim)
	)

	// Loopback network: UDP services answer inline, so the only
	// goroutines in play are the engine's own.
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{}, 1)
	net.SetLoopback(true)
	defer net.Close()
	echoPort := netip.MustParseAddrPort("203.0.113.88:7777")
	net.HandleUDP(echoPort, 0, func(req []byte, from netip.AddrPort) []byte { return req })

	dev := tun.New(clk, 4096)
	defer dev.Close()
	table := procnet.NewTable()
	pm := procnet.NewPackageManager()
	pm.Install(uidApp, appName)
	phone := phonestack.New(clk, dev, phoneVPNAddr, table, 2)
	defer phone.Close()
	prov := sockets.NewProvider(net, clk, phoneWANAddr, sockets.ZeroCosts(), 3)
	reader := procnet.NewReader(table, clk, procnet.ZeroParseCost(), 4)

	cfg := engine.Default()
	cfg.Workers = 4
	eng := engine.New(cfg, engine.Deps{
		Clock: clk, Device: dev, Sockets: prov, ProcNet: reader, Packages: pm,
	})
	eng.Start()
	defer eng.Stop()

	baseline := runtime.NumGoroutine()

	socks := make([]*phonestack.UDPConn, conns)
	for i := range socks {
		u, err := phone.OpenUDP(uidApp)
		if err != nil {
			t.Fatal(err)
		}
		defer u.Close()
		socks[i] = u
	}

	peak := baseline
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < perConn; i++ {
			for _, u := range socks {
				if err := u.SendTo(echoPort, []byte(fmt.Sprintf("flood-%d", i))); err != nil {
					return
				}
			}
		}
	}()
	hardStop := time.Now().Add(5 * time.Second)
	var drainUntil time.Time
	for {
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
		select {
		case <-done:
			// Flood injected; keep sampling while the pool drains.
			drainUntil = time.Now().Add(150 * time.Millisecond)
			done = nil
		default:
		}
		now := time.Now()
		if (done == nil && now.After(drainUntil)) || now.After(hardStop) {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}

	if peak-baseline > boundedSlack {
		t.Errorf("goroutine peak %d (baseline %d, +%d) exceeds pool+constant bound %d — relay is spawning per datagram?",
			peak, baseline, peak-baseline, boundedSlack)
	}
	if peak-baseline >= totalFlood/2 {
		t.Errorf("goroutine growth %d is flood-proportional (%d datagrams)", peak-baseline, totalFlood)
	}

	// The relay stayed live: responses flowed back (drops are allowed
	// under overload, silence is not).
	waitFor(t, 5*time.Second, func() bool {
		st := eng.Stats()
		return st.UDPRelayed+st.UDPDropped >= totalFlood/2
	}, "flood relayed or accounted")
}
