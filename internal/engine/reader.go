package engine

import (
	"errors"
	"time"

	"repro/internal/tun"
)

// adaptiveBurstPolls is how many empty polls after activity keep the
// short poll interval before the reader backs off to the configured
// sleep — ToyVpn's "intelligent sleeping" burst window.
const adaptiveBurstPolls = 8

// adaptiveShortPoll is the burst-phase poll interval.
const adaptiveShortPoll = time.Millisecond

// pollPolicy implements the ReadPollAdaptive sleep schedule (§3.1):
// while packets are arriving, empty polls sleep only the short
// interval so a burst is drained with low latency; once the burst
// budget is spent without a successful read, the poller backs off to
// the long interval to stop burning wakeups on an idle tunnel. Any
// successful read refills the budget.
type pollPolicy struct {
	short    time.Duration
	long     time.Duration
	burstMax int
	burst    int
}

func newPollPolicy(short, long time.Duration, burstMax int) *pollPolicy {
	return &pollPolicy{short: short, long: long, burstMax: burstMax}
}

// onSuccess records a successful read: the tunnel is active, so refill
// the burst budget.
func (p *pollPolicy) onSuccess() { p.burst = p.burstMax }

// onEmpty records an empty poll and returns how long to sleep before
// the next one.
func (p *pollPolicy) onEmpty() time.Duration {
	if p.burst > 0 {
		p.burst--
		return p.short
	}
	return p.long
}

// tunReader is the dedicated tunnel read thread (§3.1). In blocking
// mode each read parks until a packet arrives: zero retrieval delay and
// zero empty wakeups. In poll modes it mirrors ToyVpn: non-blocking
// reads with sleeps between failures, and in adaptive mode the
// burst-then-back-off schedule of pollPolicy.
func (e *Engine) tunReader() {
	defer e.wg.Done()
	sleeping := e.cfg.PollInterval
	if sleeping <= 0 {
		sleeping = 100 * time.Millisecond
	}
	policy := newPollPolicy(adaptiveShortPoll, sleeping, adaptiveBurstPolls)
	for e.isRunning() {
		raw, err := e.dev.Read()
		switch {
		case err == nil:
			// A successful read loops again immediately: bursts are
			// drained without sleeping at all.
			policy.onSuccess()
			e.readQ.push(raw)
			e.sel.Wakeup()
		case errors.Is(err, tun.ErrWouldBlock):
			e.meter.AddWakeups(1)
			switch e.cfg.ReadMode {
			case ReadPollAdaptive:
				e.clk.Sleep(policy.onEmpty())
			default:
				e.clk.Sleep(sleeping)
			}
		case errors.Is(err, tun.ErrClosed):
			return
		default:
			return
		}
	}
}
