package engine

import (
	"errors"
	"time"

	"repro/internal/packet"
	"repro/internal/tun"
)

// adaptiveBurstPolls is how many empty polls after activity keep the
// short poll interval before the reader backs off to the configured
// sleep — ToyVpn's "intelligent sleeping" burst window. Config.PollBurst
// overrides it.
const adaptiveBurstPolls = 8

// adaptiveShortPoll is the burst-phase poll interval.
const adaptiveShortPoll = time.Millisecond

// pollPolicy implements the ReadPollAdaptive sleep schedule (§3.1):
// while packets are arriving, empty polls sleep only the short
// interval so a burst is drained with low latency; once the burst
// budget is spent without a successful read, the poller backs off to
// the long interval to stop burning wakeups on an idle tunnel. Any
// successful read refills the budget.
type pollPolicy struct {
	short    time.Duration
	long     time.Duration
	burstMax int
	burst    int
}

func newPollPolicy(short, long time.Duration, burstMax int) *pollPolicy {
	if burstMax < 0 {
		burstMax = 0
	}
	return &pollPolicy{short: short, long: long, burstMax: burstMax}
}

// onSuccess records a successful read: the tunnel is active, so refill
// the burst budget. With no burst window configured (burstMax == 0)
// there is nothing to refill — the policy is a fixed long-interval
// poller.
func (p *pollPolicy) onSuccess() {
	if p.burstMax > 0 {
		p.burst = p.burstMax
	}
}

// onEmpty records an empty poll and returns how long to sleep before
// the next one. The burstMax == 0 guard matters: without it a stale
// positive budget (possible when the burst window is reconfigured to
// zero) would never decay past the `burst > 0` branch's refills and the
// poller would spin at the short interval forever; a zero budget must
// always degrade to plain long-interval polling.
func (p *pollPolicy) onEmpty() time.Duration {
	if p.burstMax <= 0 {
		p.burst = 0
		return p.long
	}
	if p.burst > 0 {
		p.burst--
		return p.short
	}
	return p.long
}

// pollBurst resolves Config.PollBurst: zero selects the ToyVpn default,
// negative disables the burst window entirely.
func (e *Engine) pollBurst() int {
	switch {
	case e.cfg.PollBurst == 0:
		return adaptiveBurstPolls
	case e.cfg.PollBurst < 0:
		return 0
	default:
		return e.cfg.PollBurst
	}
}

// readSleep resolves the configured poll interval.
func (e *Engine) readSleep() time.Duration {
	if e.cfg.PollInterval > 0 {
		return e.cfg.PollInterval
	}
	return 100 * time.Millisecond
}

// tunReader is the dedicated tunnel read thread (§3.1). In blocking
// mode each read parks until a packet arrives: zero retrieval delay and
// zero empty wakeups. In poll modes it mirrors ToyVpn: non-blocking
// reads with sleeps between failures, and in adaptive mode the
// burst-then-back-off schedule of pollPolicy. This is the paper's
// per-packet loop, used whenever the engine runs single-worker; the
// multi-worker pipeline runs tunReaderBatched instead.
func (e *Engine) tunReader() {
	defer e.wg.Done()
	sleeping := e.readSleep()
	policy := newPollPolicy(adaptiveShortPoll, sleeping, e.pollBurst())
	for e.isRunning() {
		raw, err := e.dev.Read()
		switch {
		case err == nil:
			// A successful read loops again immediately: bursts are
			// drained without sleeping at all.
			policy.onSuccess()
			e.readQ.push(raw)
			e.sel.Wakeup()
		case errors.Is(err, tun.ErrWouldBlock):
			e.meter.AddWakeups(1)
			switch e.cfg.ReadMode {
			case ReadPollAdaptive:
				e.clk.Sleep(policy.onEmpty())
			default:
				e.clk.Sleep(sleeping)
			}
		case errors.Is(err, tun.ErrClosed):
			return
		default:
			return
		}
	}
}

// tunReaderBatched is the multi-worker tunnel read thread: it retrieves
// packets in bursts of up to the governed burst limit (tun.ReadBatch
// pays the queue lock once per burst), peeks each packet's flow key
// straight out of the header bytes (packet.PeekFlowKey — no decode, no
// allocation), and scatters the burst into the per-worker SPSC rings.
// Routing on the reader removes any shared queue from the packet hot
// path. The burst limit is pinned at Config.ReadBatch, or self-tuned by
// the AIMD governor (readbatch.go) under ReadBatchAuto; either way the
// live limit is published to the ReadBatchLimit gauge. The read-mode
// schedule (§3.1) is unchanged, applied per burst.
func (e *Engine) tunReaderBatched() {
	defer e.wg.Done()
	// The reader is the packet lanes' only producer, so it closes them:
	// after this, each worker drains its ring and exits (the sharded-
	// selector worker on this signal alone; the dispatcher-path worker
	// once the dispatcher has closed the event lanes too).
	defer func() {
		for _, w := range e.workers {
			w.q.closePackets()
		}
	}()
	sleeping := e.readSleep()
	policy := newPollPolicy(adaptiveShortPoll, sleeping, e.pollBurst())
	gov := newBurstGovernor(e.cfg)
	batch := make([][]byte, gov.ceil)
	touched := make([]bool, len(e.workers))
	e.ctr.readBatchLimit.Store(int64(gov.limit()))
	for e.isRunning() {
		n, err := e.dev.ReadBatch(batch[:gov.limit()])
		switch {
		case err == nil:
			policy.onSuccess()
			e.scatter(batch[:n], touched)
			if gov.observe(n); int64(gov.limit()) != e.ctr.readBatchLimit.Load() {
				e.ctr.readBatchLimit.Store(int64(gov.limit()))
			}
		case errors.Is(err, tun.ErrWouldBlock):
			e.meter.AddWakeups(1)
			switch e.cfg.ReadMode {
			case ReadPollAdaptive:
				e.clk.Sleep(policy.onEmpty())
			default:
				e.clk.Sleep(sleeping)
			}
		case errors.Is(err, tun.ErrClosed):
			return
		default:
			return
		}
	}
}

// scatter routes one burst of raw tunnel packets to their pinned
// workers. PeekFlowKey applies exactly Decode's structural validation,
// so a packet rejected here (counted as a decode error) is one the
// worker would have rejected anyway. On the sharded-selector path the
// workers that received packets are woken once each, after the whole
// burst is ringed — the per-burst amortisation of the per-packet
// Wakeup the single-worker reader pays (§3.2); on the dispatcher path
// pushPacket's parked-consumer flag does the waking instead.
func (e *Engine) scatter(burst [][]byte, touched []bool) {
	for i, raw := range burst {
		burst[i] = nil // the ring owns the reference now
		key, err := packet.PeekFlowKey(raw)
		if err != nil {
			e.ctr.decodeErrors.Add(1)
			continue
		}
		shard := e.flows.Shard(key) % len(e.workers)
		e.workers[shard].q.pushPacket(raw)
		touched[shard] = true
	}
	e.ctr.readBatches.Add(1)
	e.ctr.batchedPackets.Add(int64(len(burst)))
	for i, t := range touched {
		if t {
			touched[i] = false
			if e.sels != nil {
				e.workers[i].sel.Wakeup()
			}
		}
	}
}
