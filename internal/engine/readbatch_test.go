package engine

import "testing"

// Unit tests for the AIMD burst governor. The governor is plain
// single-goroutine state, so these pin its arithmetic directly: the
// reader integration (scatter, gauge publication) is covered by the
// engine-level batch tests.

func TestBurstGovernorPinnedByDefault(t *testing.T) {
	cfg := Default()
	cfg.ReadBatch = 32
	g := newBurstGovernor(cfg)
	if g.limit() != 32 {
		t.Fatalf("pinned governor starts at %d, want 32", g.limit())
	}
	for _, n := range []int{0, 1, 32, 5} {
		g.observe(n)
		if g.limit() != 32 {
			t.Fatalf("pinned governor moved to %d after observe(%d)", g.limit(), n)
		}
	}
}

func TestBurstGovernorDefaultCeiling(t *testing.T) {
	cfg := Default() // ReadBatch unset: the engine default is the ceiling
	cfg.ReadBatch = 0
	cfg.ReadBatchAuto = true
	g := newBurstGovernor(cfg)
	if g.limit() != batchFloor {
		t.Fatalf("adaptive governor starts at %d, want floor %d", g.limit(), batchFloor)
	}
	if g.ceil != defaultReadBatch {
		t.Fatalf("adaptive ceiling = %d, want engine default %d", g.ceil, defaultReadBatch)
	}
}

// TestBurstGovernorConvergesUnderFlood is the AIMD property the ISSUE
// gates on: a saturated tunnel (every burst comes back full) must walk
// the limit up to the configured ceiling — the best fixed batch — and
// hold it there.
func TestBurstGovernorConvergesUnderFlood(t *testing.T) {
	cfg := Default()
	cfg.ReadBatch = 64
	cfg.ReadBatchAuto = true
	g := newBurstGovernor(cfg)
	for i := 0; i < 64; i++ {
		g.observe(g.limit()) // full burst
	}
	if g.limit() != 64 {
		t.Fatalf("after sustained flood, limit = %d, want ceiling 64", g.limit())
	}
	g.observe(g.limit())
	if g.limit() != 64 {
		t.Fatalf("limit overshot the ceiling: %d", g.limit())
	}
}

func TestBurstGovernorShedsWhenIdle(t *testing.T) {
	cfg := Default()
	cfg.ReadBatch = 64
	cfg.ReadBatchAuto = true
	g := newBurstGovernor(cfg)
	for i := 0; i < 64; i++ {
		g.observe(g.limit())
	}
	// Trickle: one packet per burst. Multiplicative decrease must reach
	// the floor within a handful of bursts.
	for i := 0; i < 8; i++ {
		g.observe(1)
	}
	if g.limit() != batchFloor {
		t.Fatalf("after idle trickle, limit = %d, want floor %d", g.limit(), batchFloor)
	}
	g.observe(0)
	if g.limit() != batchFloor {
		t.Fatalf("limit undershot the floor: %d", g.limit())
	}
}

// TestBurstGovernorHoldsMidband pins the dead zone: a burst between
// half-full and full is evidence the limit matches the arrival rate,
// so it must not move in either direction.
func TestBurstGovernorHoldsMidband(t *testing.T) {
	cfg := Default()
	cfg.ReadBatch = 64
	cfg.ReadBatchAuto = true
	g := newBurstGovernor(cfg)
	for g.limit() < 16 {
		g.observe(g.limit())
	}
	cur := g.limit()
	for i := 0; i < 10; i++ {
		g.observe(cur/2 + 1) // more than half, less than full
		if g.limit() != cur {
			t.Fatalf("mid-band observe moved the limit %d -> %d", cur, g.limit())
		}
	}
}

// TestBurstGovernorTinyCeiling covers a ceiling below the floor (e.g.
// ReadBatch=1 with auto on): the governor must clamp the floor down
// rather than oscillate above the configured ceiling.
func TestBurstGovernorTinyCeiling(t *testing.T) {
	cfg := Default()
	cfg.ReadBatch = 1
	cfg.ReadBatchAuto = true
	g := newBurstGovernor(cfg)
	if g.limit() != 1 {
		t.Fatalf("tiny-ceiling governor starts at %d, want 1", g.limit())
	}
	for _, n := range []int{1, 0, 1} {
		g.observe(n)
		if g.limit() != 1 {
			t.Fatalf("tiny-ceiling governor moved to %d", g.limit())
		}
	}
}
