package engine_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
)

// TestEngineMetricsTrackStats drives real traffic through the relay
// and checks the scraped registry agrees with the Stats() snapshot —
// the metrics layer is a second window onto the same atomics, so the
// two must never tell different stories.
func TestEngineMetricsTrackStats(t *testing.T) {
	cfg := engine.Default()
	cfg.Workers = 4
	tb := newTestbed(t, cfg)
	r := metrics.NewRegistry()
	tb.eng.RegisterMetrics(r)

	conn, err := tb.phone.Connect(uidApp, tb.server, 5*time.Second)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	msg := []byte("metrics probe")
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if err := conn.ReadFull(buf); err != nil {
		t.Fatalf("echo: %v", err)
	}
	conn.Close()
	waitFor(t, 5*time.Second, func() bool {
		return tb.eng.Stats().TCPMeasurements >= 1
	}, "a TCP measurement")

	st := tb.eng.Stats()
	snap := r.Gather()
	for name, want := range map[string]float64{
		"mopeye_engine_syns_total":             float64(st.SYNs),
		"mopeye_engine_established_total":      float64(st.Established),
		"mopeye_engine_tcp_measurements_total": float64(st.TCPMeasurements),
		"mopeye_engine_workers":                4,
	} {
		got, ok := snap.Get(name)
		if !ok {
			t.Fatalf("family %s missing from snapshot", name)
		}
		// Counters may still be moving (the connection teardown races
		// the gather); Stats() was taken first, so >= is the invariant.
		if got < want {
			t.Errorf("%s = %v, want >= %v (Stats snapshot)", name, got, want)
		}
	}
	if v, ok := snap.Get("mopeye_engine_packets_from_tun_total"); !ok || v == 0 {
		t.Errorf("packets_from_tun_total = %v ok=%v, want nonzero", v, ok)
	}

	// Structural checks: 4 workers means 4 ring samples and 4 per-worker
	// selector samples on the shared-nothing path.
	var expo strings.Builder
	if err := r.WritePrometheus(&expo); err != nil {
		t.Fatalf("render: %v", err)
	}
	for _, fam := range []string{"mopeye_engine_ring_occupancy", "mopeye_engine_ring_capacity", "mopeye_engine_selector_selects_total", "mopeye_engine_selector_keys"} {
		if n := strings.Count(expo.String(), "\n"+fam+"{"); n != 4 {
			t.Errorf("%s has %d samples, want 4 (one per worker)\n%s", fam, n, expo.String())
		}
	}
	if v, ok := snap.Get("mopeye_engine_ring_capacity", metrics.L("worker", "0")); !ok || v == 0 {
		t.Errorf("ring_capacity{worker=0} = %v ok=%v, want nonzero", v, ok)
	}
}

// TestEngineMetricsSingleWorker pins the selector labeling on the
// paper-faithful path: one shared selector, no rings.
func TestEngineMetricsSingleWorker(t *testing.T) {
	tb := newTestbed(t, engine.Default())
	r := metrics.NewRegistry()
	tb.eng.RegisterMetrics(r)

	snap := r.Gather()
	if _, ok := snap.Get("mopeye_engine_selector_keys", metrics.L("selector", "shared")); !ok {
		t.Error("single-worker engine should expose selector_keys{selector=\"shared\"}")
	}
	for _, f := range snap {
		if f.Name == "mopeye_engine_ring_occupancy" && len(f.Samples) != 0 {
			t.Errorf("single-worker engine has %d ring samples, want 0", len(f.Samples))
		}
	}
}
