package engine_test

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/phonestack"
	"repro/internal/procnet"
	"repro/internal/sockets"
	"repro/internal/tun"
)

// TestIPv6EndToEnd relays an IPv6 app connection: v6 packets through
// the tunnel, the /proc/net/tcp6 mapping path, and a v6 external
// connection. MopEye parses tcp6 alongside tcp for exactly this (§2.2).
func TestIPv6EndToEnd(t *testing.T) {
	phoneV6 := netip.MustParseAddr("fd00::2")
	wanV6 := netip.MustParseAddr("2001:db8::5")
	serverV6 := netip.MustParseAddrPort("[2606:2800:220:1::1]:443")

	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: 3 * time.Millisecond}, 1)
	defer net.Close()
	net.HandleTCP(serverV6, netsim.EchoHandler())

	dev := tun.New(clk, 4096)
	defer dev.Close()
	table := procnet.NewTable()
	pm := procnet.NewPackageManager()
	pm.Install(10066, "com.example.v6app")
	phone := phonestack.New(clk, dev, phoneV6, table, 2)
	defer phone.Close()
	prov := sockets.NewProvider(net, clk, wanV6, sockets.ZeroCosts(), 3)
	reader := procnet.NewReader(table, clk, procnet.ZeroParseCost(), 4)
	eng := engine.New(engine.Default(), engine.Deps{
		Clock: clk, Device: dev, Sockets: prov, ProcNet: reader, Packages: pm,
	})
	eng.Start()
	defer eng.Stop()

	conn, err := phone.Connect(10066, serverV6, 5*time.Second)
	if err != nil {
		t.Fatalf("v6 connect: %v", err)
	}
	defer conn.Close()
	msg := []byte("ipv6 through the relay")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if err := conn.ReadFull(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("echo: %q", buf)
	}

	deadline := time.Now().Add(3 * time.Second)
	for eng.Store().Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	recs := eng.Store().Kind(measure.KindTCP)
	if len(recs) != 1 {
		t.Fatalf("records: %d", len(recs))
	}
	if recs[0].App != "com.example.v6app" {
		t.Errorf("v6 mapping failed: app %q (tcp6 parse path, §2.2)", recs[0].App)
	}
	if recs[0].Dst != serverV6 {
		t.Errorf("dst: %v", recs[0].Dst)
	}
}
