package sockets

import (
	"sync"
	"testing"
	"time"
)

// Tests for the lock-free SelectionKey and the selector's ready queue —
// the shared-nothing hot path's event plumbing. These complement the
// end-to-end selector tests in sockets_test.go by pinning the
// properties the engine's sharded dispatch depends on: consume-once
// readiness through the queue, no duplicate queue slots, canceled keys
// dropped at collection, and attachment swaps that are safe against
// concurrent readers.

// connectedKey registers a fresh connected channel and returns its key.
func connectedKey(t *testing.T, p *Provider, sel *Selector, ops Ops) *SelectionKey {
	t.Helper()
	ch := p.Open()
	t.Cleanup(func() { ch.Close() })
	if err := ch.Connect(serverAP); err != nil {
		t.Fatal(err)
	}
	return sel.Register(ch, ops, nil)
}

// TestAttachmentSwapUnderConcurrentReads is the satellite's race test:
// Attach on one goroutine (the engine's connect path swapping
// eventConnect for the TCP client, with a changing concrete type) while
// readers hammer Attachment. Run under -race this proves the lock-free
// swap; single-threaded it still pins last-write-wins visibility.
func TestAttachmentSwapUnderConcurrentReads(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	key := connectedKey(t, p, sel, OpRead)

	type boxA struct{ v int }
	type boxB struct{ s string }
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch a := key.Attachment().(type) {
				case nil, *boxA, *boxB:
				default:
					t.Errorf("unexpected attachment type %T", a)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			key.Attach(&boxA{v: i})
		} else {
			key.Attach(&boxB{s: "swap"})
		}
	}
	close(stop)
	wg.Wait()
	if _, ok := key.Attachment().(*boxB); !ok {
		t.Errorf("final attachment = %T, want *boxB", key.Attachment())
	}
}

// TestReadyQueueSingleSlot: however many ops fire before the key is
// selected, it occupies one queue slot and is returned once.
func TestReadyQueueSingleSlot(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	key := connectedKey(t, p, sel, OpRead|OpWrite)

	key.markReady(OpRead)
	key.markReady(OpWrite)
	key.markReady(OpRead)

	keys := sel.SelectTimeout(0)
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("selected %d keys, want the one key once", len(keys))
	}
	if got := keys[0].ReadyOps(); got&OpRead == 0 || got&OpWrite == 0 {
		t.Errorf("ReadyOps = %v, want OpRead|OpWrite", got)
	}
	// Consume-once: the set is cleared, and the emptied key must not
	// linger in the queue.
	if got := key.ReadyOps(); got != 0 {
		t.Errorf("second ReadyOps = %v, want 0", got)
	}
	if keys = sel.SelectTimeout(0); len(keys) != 0 {
		t.Errorf("emptied key was re-selected: %v", keys)
	}
}

// TestReadyReEnqueueAfterConsume: readiness arriving after a consume
// re-queues the key — the drop-then-requeue path collectLocked relies
// on.
func TestReadyReEnqueueAfterConsume(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	key := connectedKey(t, p, sel, OpRead)

	key.markReady(OpRead)
	if keys := sel.SelectTimeout(0); len(keys) != 1 {
		t.Fatalf("first readiness not selected")
	}
	key.ReadyOps()
	key.markReady(OpRead)
	keys := sel.SelectTimeout(0)
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("re-armed key not re-selected: %v", keys)
	}
}

// TestCancelWhileQueuedDropped: a key canceled between enqueue and
// collection is dropped, not delivered to the worker.
func TestCancelWhileQueuedDropped(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	ch := p.Open()
	if err := ch.Connect(serverAP); err != nil {
		t.Fatal(err)
	}
	key := sel.Register(ch, OpRead, nil)
	key.markReady(OpRead)
	ch.Close() // cancels the key while it sits in the ready queue
	if !key.Canceled() {
		t.Fatal("close did not cancel the key")
	}
	if keys := sel.SelectTimeout(0); len(keys) != 0 {
		t.Errorf("canceled key delivered: %v", keys)
	}
}

// TestUninterestedReadinessNotQueued: readiness outside the interest
// set stays pending on the key but never wakes the selector; widening
// the interest later (the engine's OpWrite backpressure toggle)
// surfaces it.
func TestUninterestedReadinessNotQueued(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	key := connectedKey(t, p, sel, OpRead)

	key.markReady(OpWrite) // not interested: must not enqueue
	if keys := sel.SelectTimeout(0); len(keys) != 0 {
		t.Fatalf("uninterested readiness selected: %v", keys)
	}
	// SetInterestOps(OpRead|OpWrite) marks write-ready itself (the
	// simulated socket is always writable) and enqueues.
	key.SetInterestOps(OpRead | OpWrite)
	keys := sel.SelectTimeout(0)
	if len(keys) != 1 || keys[0].ReadyOps()&OpWrite == 0 {
		t.Fatalf("widened interest did not surface readiness: %v", keys)
	}
}

// TestMarkReadySelectRace hammers markReady from several goroutines
// against a consuming Select loop; under -race this exercises the CAS
// or-loop against the Swap-consume, and the accounting below catches a
// lost wakeup (a marked key never delivered).
func TestMarkReadySelectRace(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	key := connectedKey(t, p, sel, OpRead)

	const marks = 500
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < marks; i++ {
				key.markReady(OpRead)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	deadline := time.After(10 * time.Second)
	for {
		keys := sel.SelectTimeout(time.Millisecond)
		for _, k := range keys {
			k.ReadyOps()
		}
		select {
		case <-done:
			// All markReady calls issued; one final drain must leave the
			// key consumable and the queue empty.
			for _, k := range sel.SelectTimeout(0) {
				k.ReadyOps()
			}
			if got := key.ReadyOps(); got != 0 {
				// A mark may have landed after the drain above; consume
				// and confirm it was the last.
				if again := key.ReadyOps(); again != 0 {
					t.Fatalf("ready set refilled without markReady: %v", again)
				}
			}
			return
		case <-deadline:
			t.Fatal("selector stalled under concurrent markReady")
		default:
		}
	}
}
