// Package sockets provides the socket layer MopEye relays through: a
// java.nio-style non-blocking Channel plus Selector on top of the
// simulated network, and blocking-mode UDP sockets for the DNS path.
//
// Three costs that exist on Android are modelled explicitly because the
// paper's design choices are responses to them:
//
//   - VpnService.protect(socket) takes up to several milliseconds per
//     socket (§3.5.2); MopEye replaces it with a one-time
//     addDisallowedApplication call.
//   - AbstractSelectableChannel.register can "sometimes be very
//     expensive" (§3.4); MopEye defers it off the main thread.
//   - Event-based readiness notification adds delay when other events
//     are pending (challenge C2, §2.4); MopEye times connect() in a
//     temporary blocking thread instead.
//
// Costs are injectable so tests can zero them and ablations can vary
// them.
package sockets

import (
	"errors"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/upstream"
)

// Errors.
var (
	ErrNotConnected  = errors.New("sockets: channel not connected")
	ErrAlreadyConn   = errors.New("sockets: channel already connected")
	ErrClosedChannel = errors.New("sockets: channel closed")
	ErrConnPending   = errors.New("sockets: connect still in progress")
	ErrRecvTimeout   = errors.New("sockets: receive timed out")
)

// CostModel holds the platform cost distributions. Each function draws
// one cost; nil means free.
type CostModel struct {
	// Protect is the per-socket VpnService.protect() cost.
	Protect func(*rand.Rand) time.Duration
	// Register is the selector register() cost.
	Register func(*rand.Rand) time.Duration
	// Dispatch is the added latency between an event becoming ready and
	// a selector-driven observer acting on it (C2 measurement noise).
	Dispatch func(*rand.Rand) time.Duration
	// ThreadSpawn is the scheduling latency before a freshly created
	// thread first runs. MopEye pays it once per temporary
	// socket-connect thread (§2.4) — it delays the app's handshake but
	// not the RTT measurement, whose timestamps are taken inside the
	// thread around the connect() call.
	ThreadSpawn func(*rand.Rand) time.Duration
}

// AndroidCosts returns a cost model with the magnitudes the paper
// reports: protect() up to several ms, register() usually cheap with
// occasional multi-ms spikes, and dispatch noise of up to several ms.
func AndroidCosts() CostModel {
	return CostModel{
		Protect: func(r *rand.Rand) time.Duration {
			// 0.5ms..3.5ms, occasionally worse.
			base := 500*time.Microsecond + time.Duration(r.Int63n(int64(3*time.Millisecond)))
			if r.Float64() < 0.05 {
				base += time.Duration(r.Int63n(int64(4 * time.Millisecond)))
			}
			return base
		},
		Register: func(r *rand.Rand) time.Duration {
			if r.Float64() < 0.08 {
				return time.Millisecond + time.Duration(r.Int63n(int64(4*time.Millisecond)))
			}
			return time.Duration(r.Int63n(int64(40 * time.Microsecond)))
		},
		Dispatch: func(r *rand.Rand) time.Duration {
			// Usually sub-ms, with a tail up to ~6ms when the loop is
			// busy.
			if r.Float64() < 0.3 {
				return time.Millisecond + time.Duration(r.Int63n(int64(5*time.Millisecond)))
			}
			return time.Duration(r.Int63n(int64(900 * time.Microsecond)))
		},
		ThreadSpawn: func(r *rand.Rand) time.Duration {
			// Thread creation plus first-schedule latency on a phone
			// SoC: a few ms (§4.1.2 measures 3.26–4.27 ms total added
			// handshake delay, most of it this).
			return 2*time.Millisecond + time.Duration(r.Int63n(int64(2*time.Millisecond)))
		},
	}
}

// ZeroCosts returns a free cost model for deterministic tests.
func ZeroCosts() CostModel { return CostModel{} }

func drawCost(f func(*rand.Rand) time.Duration, rng *rand.Rand, mu *sync.Mutex) time.Duration {
	if f == nil {
		return 0
	}
	mu.Lock()
	defer mu.Unlock()
	return f(rng)
}

// Provider creates channels bound to one phone. It owns the ephemeral
// port space and the VPN-exemption state.
type Provider struct {
	// Net is the emulated substrate. It may be nil on the real data
	// plane, where a Dialer and UDP transport stand in for it.
	Net   *netsim.Network
	Clk   clock.Clock
	Costs CostModel

	phoneAddr netip.Addr

	// dialer, when set, is where external TCP connections exit:
	// upstream.Direct on the real data plane, upstream.SOCKS5 for a
	// proxied exit. nil keeps today's semantics — dial inside Net.
	dialer upstream.Dialer

	// sendUDP, when set, transmits relay datagrams instead of
	// Net.SendUDP (the real data plane's UDP exit).
	sendUDP UDPTransport

	mu         sync.Mutex
	rng        *rand.Rand
	nextPort   uint16
	disallowed bool // addDisallowedApplication(mopeye) has been called
	protects   int  // number of per-socket protect() calls made
}

// UDPTransport transmits one relay datagram and arranges for any
// response to be handed to deliver (possibly from another goroutine).
type UDPTransport func(local, dst netip.AddrPort, payload []byte, deliver func([]byte))

// SetDialer installs the upstream exit for external TCP connections.
// Call before traffic flows; nil restores the default netsim dial.
func (p *Provider) SetDialer(d upstream.Dialer) {
	p.mu.Lock()
	p.dialer = d
	p.mu.Unlock()
}

// SetUDPTransport installs the upstream exit for relay datagrams. Call
// before traffic flows; nil restores the default netsim send.
func (p *Provider) SetUDPTransport(t UDPTransport) {
	p.mu.Lock()
	p.sendUDP = t
	p.mu.Unlock()
}

// dial opens the external connection for a channel through whichever
// exit is installed.
func (p *Provider) dial(local, dst netip.AddrPort) (upstream.Conn, error) {
	p.mu.Lock()
	d := p.dialer
	p.mu.Unlock()
	if d != nil {
		return d.Dial(local, dst)
	}
	if p.Net == nil {
		return nil, errors.New("sockets: no network and no dialer installed")
	}
	return upstream.Netsim{Net: p.Net}.Dial(local, dst)
}

// NewProvider creates a socket provider for a phone at addr.
func NewProvider(net *netsim.Network, clk clock.Clock, addr netip.Addr, costs CostModel, seed int64) *Provider {
	return &Provider{
		Net:       net,
		Clk:       clk,
		Costs:     costs,
		phoneAddr: addr,
		rng:       rand.New(rand.NewSource(seed)),
		nextPort:  32768,
	}
}

// PhoneAddr returns the phone's network address.
func (p *Provider) PhoneAddr() netip.Addr { return p.phoneAddr }

// EphemeralPort allocates a local port.
func (p *Provider) EphemeralPort() uint16 {
	p.mu.Lock()
	defer p.mu.Unlock()
	port := p.nextPort
	p.nextPort++
	if p.nextPort == 0 {
		p.nextPort = 32768
	}
	return port
}

// AddDisallowedApplication performs the one-time app-wide VPN exemption
// (§3.5.2). After this, per-socket Protect calls are free no-ops.
func (p *Provider) AddDisallowedApplication() {
	p.mu.Lock()
	p.disallowed = true
	p.mu.Unlock()
}

// ChargeThreadSpawn sleeps the thread-spawn scheduling latency, called
// by a temporary thread as its first action.
func (p *Provider) ChargeThreadSpawn() {
	if c := drawCost(p.Costs.ThreadSpawn, p.rng, &p.mu); c > 0 {
		p.Clk.SleepFine(c)
	}
}

// ProtectCalls reports how many per-socket protect() calls were paid.
func (p *Provider) ProtectCalls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.protects
}

// Channel is a connectable socket channel, non-blocking by default like
// java.nio's SocketChannel once configureBlocking(false) is called.
type Channel struct {
	p *Provider

	mu         sync.Mutex
	local      netip.AddrPort
	remote     netip.AddrPort
	conn       upstream.Conn
	connErr    error
	connecting bool
	connected  bool
	closed     bool
	key        *SelectionKey // back-reference once registered
}

// Open creates an unconnected channel with an ephemeral local port.
func (p *Provider) Open() *Channel {
	return &Channel{
		p:     p,
		local: netip.AddrPortFrom(p.phoneAddr, p.EphemeralPort()),
	}
}

// LocalAddr returns the channel's local address.
func (ch *Channel) LocalAddr() netip.AddrPort {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.local
}

// RemoteAddr returns the connected peer, or the zero AddrPort.
func (ch *Channel) RemoteAddr() netip.AddrPort {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.remote
}

// Protect marks the socket as VPN-exempt, paying the per-socket cost
// unless the application-wide exemption is active. MopEye must do one or
// the other before connecting or its own packets would loop back into
// the tunnel (§3.5.2).
func (ch *Channel) Protect() {
	ch.p.mu.Lock()
	exempt := ch.p.disallowed
	if !exempt {
		ch.p.protects++
	}
	ch.p.mu.Unlock()
	if exempt {
		return
	}
	if c := drawCost(ch.p.Costs.Protect, ch.p.rng, &ch.p.mu); c > 0 {
		ch.p.Clk.SleepFine(c)
	}
}

// Connect performs a blocking connect: it returns after the SYN/SYN-ACK
// exchange completes, which is why MopEye times exactly this call in a
// temporary socket-connect thread (§2.4).
func (ch *Channel) Connect(dst netip.AddrPort) error {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return ErrClosedChannel
	}
	if ch.connected || ch.connecting {
		ch.mu.Unlock()
		return ErrAlreadyConn
	}
	ch.connecting = true
	local := ch.local
	ch.mu.Unlock()

	conn, err := ch.p.dial(local, dst)

	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.connecting = false
	if ch.closed {
		if conn != nil {
			conn.Close()
		}
		return ErrClosedChannel
	}
	if err != nil {
		ch.connErr = err
		return err
	}
	ch.conn = conn
	ch.remote = dst
	ch.connected = true
	if ch.key != nil {
		ch.attachReadiness()
	}
	return nil
}

// ConnectNonBlocking starts a connect in the background; completion is
// reported through a selector's OpConnect readiness and must be reaped
// with FinishConnect. This is the path whose timing suffers from
// dispatch noise — the reason MopEye switched to blocking connects.
func (ch *Channel) ConnectNonBlocking(dst netip.AddrPort) error {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return ErrClosedChannel
	}
	if ch.connected || ch.connecting {
		ch.mu.Unlock()
		return ErrAlreadyConn
	}
	ch.connecting = true
	local := ch.local
	ch.mu.Unlock()

	go func() {
		conn, err := ch.p.dial(local, dst)
		ch.mu.Lock()
		ch.connecting = false
		if ch.closed {
			ch.mu.Unlock()
			if conn != nil {
				conn.Close()
			}
			return
		}
		if err != nil {
			ch.connErr = err
		} else {
			ch.conn = conn
			ch.remote = dst
			ch.connected = true
			if ch.key != nil {
				ch.attachReadiness()
			}
		}
		key := ch.key
		ch.mu.Unlock()
		if key != nil {
			key.markReady(OpConnect)
		}
	}()
	return nil
}

// FinishConnect reaps the result of a non-blocking connect.
func (ch *Channel) FinishConnect() error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.connecting {
		return ErrConnPending
	}
	if ch.connErr != nil {
		return ch.connErr
	}
	if !ch.connected {
		return ErrNotConnected
	}
	return nil
}

// attachReadiness wires the underlying connection's readable callback to
// the selection key. Caller holds ch.mu.
func (ch *Channel) attachReadiness() {
	key := ch.key
	ch.conn.SetOnReadable(func() { key.markReady(OpRead) })
}

// Read performs a non-blocking read. It returns (0, nil) when no data is
// available (java returns 0), n>0 on data, and (0, ErrEOF)/(0, err) on
// stream end or reset.
func (ch *Channel) Read(buf []byte) (int, error) {
	ch.mu.Lock()
	conn := ch.conn
	ch.mu.Unlock()
	if conn == nil {
		return 0, ErrNotConnected
	}
	n, err := conn.TryRead(buf)
	if errors.Is(err, upstream.ErrWouldBlock) || errors.Is(err, netsim.ErrWouldBlock) {
		return 0, nil
	}
	if errors.Is(err, upstream.ErrEOF) || errors.Is(err, netsim.ErrEOFConn) {
		return n, ErrEOF
	}
	return n, err
}

// ErrEOF reports orderly stream end from Read.
var ErrEOF = errors.New("sockets: EOF")

// Write sends bytes to the peer. It may block briefly on flow control
// when the send queue is full, matching a socket write with a full send
// buffer.
func (ch *Channel) Write(b []byte) (int, error) {
	ch.mu.Lock()
	conn := ch.conn
	ch.mu.Unlock()
	if conn == nil {
		return 0, ErrNotConnected
	}
	return conn.Write(b)
}

// CloseWrite half-closes the external connection (relaying an app FIN,
// §2.3).
func (ch *Channel) CloseWrite() error {
	ch.mu.Lock()
	conn := ch.conn
	ch.mu.Unlock()
	if conn == nil {
		return ErrNotConnected
	}
	return conn.CloseWrite()
}

// Close closes the channel and cancels its registration.
func (ch *Channel) Close() error {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return nil
	}
	ch.closed = true
	conn := ch.conn
	key := ch.key
	ch.key = nil
	ch.mu.Unlock()
	if key != nil {
		key.cancel()
	}
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Reset aborts the external connection (relaying an app RST, §2.3).
func (ch *Channel) Reset() error {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return nil
	}
	ch.closed = true
	conn := ch.conn
	key := ch.key
	ch.key = nil
	ch.mu.Unlock()
	if key != nil {
		key.cancel()
	}
	if conn != nil {
		return conn.Reset()
	}
	return nil
}

// Connected reports whether the channel has an established connection.
func (ch *Channel) Connected() bool {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.connected
}
