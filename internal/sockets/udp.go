package sockets

import (
	"net/netip"
	"sync"
	"time"
)

// UDPSocket is a blocking-mode UDP socket. MopEye's DNS relay runs each
// DNS transaction in a temporary thread with blocking send/receive so
// that the post-receive timestamp is accurate (§2.4).
type UDPSocket struct {
	p     *Provider
	local netip.AddrPort

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  [][]byte
	closed bool
}

// OpenUDP creates a UDP socket with an ephemeral local port.
func (p *Provider) OpenUDP() *UDPSocket {
	u := &UDPSocket{
		p:     p,
		local: netip.AddrPortFrom(p.phoneAddr, p.EphemeralPort()),
	}
	u.cond = sync.NewCond(&u.mu)
	return u
}

// LocalAddr returns the socket's local address.
func (u *UDPSocket) LocalAddr() netip.AddrPort { return u.local }

// Protect marks the socket VPN-exempt, same semantics as
// Channel.Protect.
func (u *UDPSocket) Protect() {
	u.p.mu.Lock()
	exempt := u.p.disallowed
	if !exempt {
		u.p.protects++
	}
	u.p.mu.Unlock()
	if exempt {
		return
	}
	if c := drawCost(u.p.Costs.Protect, u.p.rng, &u.p.mu); c > 0 {
		u.p.Clk.SleepFine(c)
	}
}

// SendTo transmits one datagram through whichever UDP exit is
// installed. Responses from the network are queued for Recv.
func (u *UDPSocket) SendTo(dst netip.AddrPort, payload []byte) {
	deliver := func(resp []byte) {
		u.mu.Lock()
		if !u.closed {
			u.inbox = append(u.inbox, resp)
			u.cond.Broadcast()
		}
		u.mu.Unlock()
	}
	u.p.mu.Lock()
	send := u.p.sendUDP
	u.p.mu.Unlock()
	if send != nil {
		send(u.local, dst, payload, deliver)
		return
	}
	if u.p.Net == nil {
		return // no substrate and no transport: datagram is dropped
	}
	u.p.Net.SendUDP(u.local, dst, payload, deliver)
}

// Recv blocks until a datagram arrives or the timeout elapses.
func (u *UDPSocket) Recv(timeout time.Duration) ([]byte, error) {
	deadline := u.p.Clk.Nanos() + int64(timeout)
	u.mu.Lock()
	defer u.mu.Unlock()
	for len(u.inbox) == 0 {
		if u.closed {
			return nil, ErrClosedChannel
		}
		if timeout <= 0 {
			return nil, ErrRecvTimeout
		}
		remaining := time.Duration(deadline - u.p.Clk.Nanos())
		if remaining <= 0 {
			return nil, ErrRecvTimeout
		}
		// Wait in slices; the simulated clock has no cond-with-deadline.
		u.mu.Unlock()
		slice := 200 * time.Microsecond
		if remaining < slice {
			slice = remaining
		}
		u.p.Clk.Sleep(slice)
		u.mu.Lock()
	}
	msg := u.inbox[0]
	u.inbox = u.inbox[1:]
	return msg, nil
}

// TryRecv returns a queued datagram without blocking.
func (u *UDPSocket) TryRecv() ([]byte, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.inbox) == 0 {
		return nil, false
	}
	msg := u.inbox[0]
	u.inbox = u.inbox[1:]
	return msg, true
}

// Closed reports whether the socket has been released. The pooled UDP
// relay checks this after a session-table hit so a session the idle
// sweeper just expired is replaced instead of reused.
func (u *UDPSocket) Closed() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.closed
}

// Close releases the socket.
func (u *UDPSocket) Close() {
	u.mu.Lock()
	u.closed = true
	u.cond.Broadcast()
	u.mu.Unlock()
}
