package sockets

import (
	"sync"
	"sync/atomic"
	"time"
)

// Ops is a bit set of selectable operations, mirroring java.nio
// SelectionKey interest/ready sets.
type Ops int

// Selectable operations.
const (
	OpRead Ops = 1 << iota
	OpWrite
	OpConnect
)

// SelectionKey binds a channel to a selector with an interest set and an
// attachment, like java.nio.channels.SelectionKey. MopEye attaches the
// TCP client object so the event handler can reach the state machine
// (§2.3 "two-way referencing").
//
// The per-event state is lock-free: interest, ready, the attachment,
// and the cancel flag are independent atomics, so the relay hot path —
// markReady from the network callback, ReadyOps/Attachment from the
// processing worker, SetInterestOps from the packet handlers — never
// serialises on a key mutex. The Java-mirroring mutex the seed carried
// here was load-bearing only for compound read-modify-write on `ready`,
// which CAS loops now provide directly. The one non-atomic field,
// queued, belongs to the selector's ready queue and is guarded by the
// selector mutex.
type SelectionKey struct {
	sel *Selector
	ch  *Channel

	// attachment is boxed so the stored value can change concrete type
	// (the engine swaps *eventConnect for *relay.TCPClient when a
	// non-blocking connect completes).
	attachment atomic.Pointer[any]
	interest   atomic.Int32
	ready      atomic.Int32
	readyAt    atomic.Int64 // clock nanos when readiness was signalled
	canceled   atomic.Bool

	// queued marks membership in the selector's ready queue; guarded by
	// sel.mu, never touched outside enqueueReady/collectLocked.
	queued bool
}

// Channel returns the registered channel.
func (k *SelectionKey) Channel() *Channel { return k.ch }

// Attachment returns the attached object, like
// java.nio.channels.SelectionKey.attachment(). Lock-free: the
// multi-worker engine reads it on the dispatch path while a
// socket-connect thread may be swapping it via Attach.
func (k *SelectionKey) Attachment() interface{} {
	if p := k.attachment.Load(); p != nil {
		return *p
	}
	return nil
}

// Attach replaces the attached object.
func (k *SelectionKey) Attach(a interface{}) {
	k.attachment.Store(&a)
}

// InterestOps returns the current interest set.
func (k *SelectionKey) InterestOps() Ops {
	return Ops(k.interest.Load())
}

// SetInterestOps replaces the interest set. Adding OpWrite immediately
// marks the key write-ready (the simulated socket is always writable;
// the send path applies flow control inside Write itself).
func (k *SelectionKey) SetInterestOps(ops Ops) {
	k.interest.Store(int32(ops))
	if ops&OpWrite != 0 {
		k.markReady(OpWrite)
	}
}

// ReadyOps returns and clears the ready set; the selected-key consumer
// calls this once per selected key (consume-once semantics).
func (k *SelectionKey) ReadyOps() Ops {
	r := Ops(k.ready.Swap(0))
	if r == 0 {
		return 0
	}
	k.readyAt.Store(0)
	return r & Ops(k.interest.Load())
}

// ReadySince returns the clock nanos at which the oldest pending
// readiness was signalled; 0 when none. Experiments use it to quantify
// notification latency.
func (k *SelectionKey) ReadySince() int64 {
	return k.readyAt.Load()
}

// markReady records readiness and, when the key is interested, hands it
// to its selector's ready queue.
func (k *SelectionKey) markReady(op Ops) {
	if k.canceled.Load() {
		return
	}
	for {
		old := k.ready.Load()
		if old&int32(op) == int32(op) && old != 0 {
			// Bit already set: the key is queued (or about to be
			// collected and re-examined); nothing to publish.
			break
		}
		if k.ready.CompareAndSwap(old, old|int32(op)) {
			if old == 0 {
				k.readyAt.Store(k.sel.clkNanos())
			}
			break
		}
	}
	if Ops(k.interest.Load())&op != 0 {
		k.sel.enqueueReady(k)
	}
}

// cancel removes the key from its selector.
func (k *SelectionKey) cancel() {
	k.canceled.Store(true)
	k.sel.remove(k)
}

// Canceled reports whether the key was canceled.
func (k *SelectionKey) Canceled() bool {
	return k.canceled.Load()
}

// Selector multiplexes channel readiness, mirroring
// java.nio.channels.Selector including Wakeup — which MopEye's TunReader
// uses to make a packet-processing thread monitor its tunnel packet
// queue and its socket events simultaneously (§3.2). In the sharded
// multi-worker engine each worker owns one Selector, so readiness never
// crosses a shared dispatcher.
//
// Select is O(ready), not O(registered): markReady pushes interested
// keys onto a ready queue, and Select drains the queue instead of
// scanning every registered key. The scan was the top entry of the
// loopback ceiling CPU profile once the ring path stopped allocating —
// thousands of idle keys paid a mutexed poll on every wakeup.
type Selector struct {
	p *Provider

	mu     sync.Mutex
	cond   *sync.Cond
	keys   map[*SelectionKey]struct{}
	readyQ []*SelectionKey
	wakeup bool
	closed bool
	// Selects counts Select returns; Wakeups counts explicit Wakeup
	// calls; both feed the CPU accounting.
	Selects int64
	Wakeups int64
}

// NewSelector creates a selector.
func (p *Provider) NewSelector() *Selector {
	s := &Selector{p: p, keys: make(map[*SelectionKey]struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *Selector) clkNanos() int64 { return s.p.Clk.Nanos() }

// Register attaches a channel with an interest set, paying the
// register() cost (§3.4: MopEye defers this call to the socket-connect
// thread because it is sometimes expensive).
func (s *Selector) Register(ch *Channel, ops Ops, attachment interface{}) *SelectionKey {
	if c := drawCost(s.p.Costs.Register, s.p.rng, &s.p.mu); c > 0 {
		s.p.Clk.SleepFine(c)
	}
	key := &SelectionKey{sel: s, ch: ch}
	key.interest.Store(int32(ops))
	if attachment != nil {
		key.Attach(attachment)
	}
	s.mu.Lock()
	s.keys[key] = struct{}{}
	s.mu.Unlock()

	ch.mu.Lock()
	ch.key = key
	if ch.connected {
		ch.attachReadiness()
	}
	ch.mu.Unlock()
	if ops&OpWrite != 0 {
		key.markReady(OpWrite)
	}
	return key
}

func (s *Selector) remove(k *SelectionKey) {
	s.mu.Lock()
	delete(s.keys, k)
	// A queued canceled key is left in readyQ; collectLocked drops it.
	s.mu.Unlock()
}

// enqueueReady publishes a ready-and-interested key to the selector and
// wakes a pending Select. The queued flag keeps a key from occupying
// more than one queue slot however many ops fire before it is selected.
func (s *Selector) enqueueReady(k *SelectionKey) {
	s.mu.Lock()
	if !k.queued {
		k.queued = true
		s.readyQ = append(s.readyQ, k)
	}
	s.wakeup = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Wakeup unblocks a pending or the next Select call, like
// java.nio.channels.Selector.wakeup(). TunReader calls this after
// enqueuing a tunnel packet (§3.2); the batched reader calls it once
// per burst per touched worker.
func (s *Selector) Wakeup() {
	s.mu.Lock()
	s.Wakeups++
	s.wakeup = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Select blocks until at least one registered key is ready, a Wakeup
// arrives, or the selector closes. It returns the keys with non-empty
// ready∩interest sets. The dispatch cost is applied once per readiness-
// driven return, modelling the notification latency of challenge C2.
func (s *Selector) Select() []*SelectionKey {
	return s.selectImpl(-1)
}

// SelectTimeout is Select with an upper bound on blocking; zero means
// poll without blocking. Poll-mode relays (the Haystack baseline) use
// it.
func (s *Selector) SelectTimeout(d time.Duration) []*SelectionKey {
	return s.selectImpl(d)
}

func (s *Selector) selectImpl(timeout time.Duration) []*SelectionKey {
	var timer <-chan time.Time
	if timeout > 0 {
		timer = s.p.Clk.After(timeout)
	}
	for {
		s.mu.Lock()
		for {
			if s.closed {
				s.mu.Unlock()
				return nil
			}
			ready := s.collectLocked()
			if len(ready) > 0 {
				s.wakeup = false
				s.Selects++
				s.mu.Unlock()
				if c := drawCost(s.p.Costs.Dispatch, s.p.rng, &s.p.mu); c > 0 {
					s.p.Clk.SleepFine(c)
				}
				return ready
			}
			if s.wakeup {
				s.wakeup = false
				s.Selects++
				s.mu.Unlock()
				return nil
			}
			if timeout == 0 {
				s.Selects++
				s.mu.Unlock()
				return nil
			}
			if timer != nil {
				// Blocking with timeout: wait in small slices so the
				// timer is honoured without a second goroutine.
				s.mu.Unlock()
				select {
				case <-timer:
					s.mu.Lock()
					s.Selects++
					ready := s.collectLocked()
					s.wakeup = false
					s.mu.Unlock()
					return ready
				default:
				}
				s.p.Clk.Sleep(200 * time.Microsecond)
				s.mu.Lock()
				continue
			}
			s.cond.Wait()
		}
	}
}

// collectLocked drains the ready queue, keeping the keys whose
// ready∩interest is still non-empty — a key may have been consumed (or
// canceled) between enqueue and collection, in which case it is
// dropped; readiness arriving after the drop re-enqueues it. Caller
// holds s.mu.
func (s *Selector) collectLocked() []*SelectionKey {
	if len(s.readyQ) == 0 {
		return nil
	}
	out := make([]*SelectionKey, 0, len(s.readyQ))
	for _, k := range s.readyQ {
		k.queued = false
		if !k.canceled.Load() && Ops(k.ready.Load())&Ops(k.interest.Load()) != 0 {
			out = append(out, k)
		}
	}
	s.readyQ = s.readyQ[:0]
	return out
}

// Close releases the selector, unblocking any Select.
func (s *Selector) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// KeyCount returns the number of registered keys.
func (s *Selector) KeyCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}

// SelectorStats is a consistent point-in-time view of one selector,
// taken under the selector mutex — the safe way for observability
// code to read Selects/Wakeups, which are only coherent under s.mu.
type SelectorStats struct {
	Selects    int64 // Select returns
	Wakeups    int64 // explicit Wakeup calls
	ReadyDepth int   // keys queued ready right now
	Keys       int   // registered keys
}

// Stats snapshots the selector's counters and queue depths.
func (s *Selector) Stats() SelectorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SelectorStats{
		Selects:    s.Selects,
		Wakeups:    s.Wakeups,
		ReadyDepth: len(s.readyQ),
		Keys:       len(s.keys),
	}
}
