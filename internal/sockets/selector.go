package sockets

import (
	"sync"
	"time"
)

// Ops is a bit set of selectable operations, mirroring java.nio
// SelectionKey interest/ready sets.
type Ops int

// Selectable operations.
const (
	OpRead Ops = 1 << iota
	OpWrite
	OpConnect
)

// SelectionKey binds a channel to a selector with an interest set and an
// attachment, like java.nio.channels.SelectionKey. MopEye attaches the
// TCP client object so the event handler can reach the state machine
// (§2.3 "two-way referencing").
type SelectionKey struct {
	sel *Selector
	ch  *Channel

	mu         sync.Mutex
	attachment interface{}
	interest   Ops
	ready      Ops
	readyAt    int64 // clock nanos when readiness was signalled
	canceled   bool
}

// Channel returns the registered channel.
func (k *SelectionKey) Channel() *Channel { return k.ch }

// Attachment returns the attached object, like
// java.nio.channels.SelectionKey.attachment(). Synchronised because the
// multi-worker engine's dispatcher reads it while a socket-connect
// thread may be swapping it via Attach.
func (k *SelectionKey) Attachment() interface{} {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.attachment
}

// Attach replaces the attached object.
func (k *SelectionKey) Attach(a interface{}) {
	k.mu.Lock()
	k.attachment = a
	k.mu.Unlock()
}

// InterestOps returns the current interest set.
func (k *SelectionKey) InterestOps() Ops {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.interest
}

// SetInterestOps replaces the interest set. Adding OpWrite immediately
// marks the key write-ready (the simulated socket is always writable;
// the send path applies flow control inside Write itself).
func (k *SelectionKey) SetInterestOps(ops Ops) {
	k.mu.Lock()
	k.interest = ops
	becameWritable := ops&OpWrite != 0
	k.mu.Unlock()
	if becameWritable {
		k.markReady(OpWrite)
	}
}

// ReadyOps returns and clears the ready set; the selector loop calls
// this once per selected key.
func (k *SelectionKey) ReadyOps() Ops {
	k.mu.Lock()
	defer k.mu.Unlock()
	r := k.ready & k.interest
	k.ready = 0
	return r
}

// ReadySince returns the clock nanos at which the oldest pending
// readiness was signalled; 0 when none. Experiments use it to quantify
// notification latency.
func (k *SelectionKey) ReadySince() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.readyAt
}

// markReady records readiness and wakes the selector.
func (k *SelectionKey) markReady(op Ops) {
	k.mu.Lock()
	if k.canceled {
		k.mu.Unlock()
		return
	}
	if k.ready == 0 {
		k.readyAt = k.sel.clkNanos()
	}
	k.ready |= op
	interested := k.interest&op != 0
	k.mu.Unlock()
	if interested {
		k.sel.notify()
	}
}

// cancel removes the key from its selector.
func (k *SelectionKey) cancel() {
	k.mu.Lock()
	k.canceled = true
	k.mu.Unlock()
	k.sel.remove(k)
}

// Canceled reports whether the key was canceled.
func (k *SelectionKey) Canceled() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.canceled
}

// Selector multiplexes channel readiness, mirroring
// java.nio.channels.Selector including Wakeup — which MopEye's TunReader
// uses to make the single MainWorker thread monitor the tunnel read
// queue and the socket events simultaneously (§3.2).
type Selector struct {
	p *Provider

	mu     sync.Mutex
	cond   *sync.Cond
	keys   map[*SelectionKey]struct{}
	wakeup bool
	closed bool
	// Selects counts Select returns; Wakeups counts explicit Wakeup
	// calls; both feed the CPU accounting.
	Selects int64
	Wakeups int64
}

// NewSelector creates a selector.
func (p *Provider) NewSelector() *Selector {
	s := &Selector{p: p, keys: make(map[*SelectionKey]struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *Selector) clkNanos() int64 { return s.p.Clk.Nanos() }

// Register attaches a channel with an interest set, paying the
// register() cost (§3.4: MopEye defers this call to the socket-connect
// thread because it is sometimes expensive).
func (s *Selector) Register(ch *Channel, ops Ops, attachment interface{}) *SelectionKey {
	if c := drawCost(s.p.Costs.Register, s.p.rng, &s.p.mu); c > 0 {
		s.p.Clk.SleepFine(c)
	}
	key := &SelectionKey{sel: s, ch: ch, attachment: attachment, interest: ops}
	s.mu.Lock()
	s.keys[key] = struct{}{}
	s.mu.Unlock()

	ch.mu.Lock()
	ch.key = key
	if ch.connected {
		ch.attachReadiness()
	}
	ch.mu.Unlock()
	if ops&OpWrite != 0 {
		key.markReady(OpWrite)
	}
	return key
}

func (s *Selector) remove(k *SelectionKey) {
	s.mu.Lock()
	delete(s.keys, k)
	s.mu.Unlock()
}

func (s *Selector) notify() {
	s.mu.Lock()
	s.wakeup = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Wakeup unblocks a pending or the next Select call, like
// java.nio.channels.Selector.wakeup(). TunReader calls this after
// enqueuing a tunnel packet (§3.2).
func (s *Selector) Wakeup() {
	s.mu.Lock()
	s.Wakeups++
	s.wakeup = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Select blocks until at least one registered key is ready, a Wakeup
// arrives, or the selector closes. It returns the keys with non-empty
// ready∩interest sets. The dispatch cost is applied once per readiness-
// driven return, modelling the notification latency of challenge C2.
func (s *Selector) Select() []*SelectionKey {
	return s.selectImpl(-1)
}

// SelectTimeout is Select with an upper bound on blocking; zero means
// poll without blocking. Poll-mode relays (the Haystack baseline) use
// it.
func (s *Selector) SelectTimeout(d time.Duration) []*SelectionKey {
	return s.selectImpl(d)
}

func (s *Selector) selectImpl(timeout time.Duration) []*SelectionKey {
	var timer <-chan time.Time
	if timeout > 0 {
		timer = s.p.Clk.After(timeout)
	}
	for {
		s.mu.Lock()
		for {
			if s.closed {
				s.mu.Unlock()
				return nil
			}
			ready := s.collectLocked()
			if len(ready) > 0 {
				s.wakeup = false
				s.Selects++
				s.mu.Unlock()
				if c := drawCost(s.p.Costs.Dispatch, s.p.rng, &s.p.mu); c > 0 {
					s.p.Clk.SleepFine(c)
				}
				return ready
			}
			if s.wakeup {
				s.wakeup = false
				s.Selects++
				s.mu.Unlock()
				return nil
			}
			if timeout == 0 {
				s.Selects++
				s.mu.Unlock()
				return nil
			}
			if timer != nil {
				// Blocking with timeout: wait in small slices so the
				// timer is honoured without a second goroutine.
				s.mu.Unlock()
				select {
				case <-timer:
					s.mu.Lock()
					s.Selects++
					ready := s.collectLocked()
					s.wakeup = false
					s.mu.Unlock()
					return ready
				default:
				}
				s.p.Clk.Sleep(200 * time.Microsecond)
				s.mu.Lock()
				continue
			}
			s.cond.Wait()
		}
	}
}

// collectLocked gathers keys whose ready∩interest is non-empty. Caller
// holds s.mu.
func (s *Selector) collectLocked() []*SelectionKey {
	var out []*SelectionKey
	for k := range s.keys {
		k.mu.Lock()
		if !k.canceled && k.ready&k.interest != 0 {
			out = append(out, k)
		}
		k.mu.Unlock()
	}
	return out
}

// Close releases the selector, unblocking any Select.
func (s *Selector) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// KeyCount returns the number of registered keys.
func (s *Selector) KeyCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}
