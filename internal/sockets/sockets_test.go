package sockets

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
)

var (
	phoneAddr = netip.MustParseAddr("100.64.0.5")
	serverAP  = netip.MustParseAddrPort("93.184.216.34:80")
	dnsAP     = netip.MustParseAddrPort("8.8.8.8:53")
)

func newProvider(t *testing.T, costs CostModel) (*Provider, *netsim.Network) {
	t.Helper()
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: time.Millisecond}, 1)
	net.HandleTCP(serverAP, netsim.EchoHandler())
	net.HandleUDP(dnsAP, 0, func(req []byte, from netip.AddrPort) []byte {
		return append([]byte("r"), req...)
	})
	t.Cleanup(net.Close)
	return NewProvider(net, clk, phoneAddr, costs, 2), net
}

func TestBlockingConnectTiming(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	ch := p.Open()
	defer ch.Close()
	start := time.Now()
	if err := ch.Connect(serverAP); err != nil {
		t.Fatalf("connect: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < 2*time.Millisecond || elapsed > 40*time.Millisecond {
		t.Errorf("blocking connect took %v, path RTT is 2ms", elapsed)
	}
	if !ch.Connected() {
		t.Error("not connected after Connect")
	}
}

func TestConnectRefused(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	ch := p.Open()
	defer ch.Close()
	err := ch.Connect(netip.MustParseAddrPort("93.184.216.34:81"))
	if !errors.Is(err, netsim.ErrRefused) {
		t.Fatalf("got %v", err)
	}
}

func TestDoubleConnectRejected(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	ch := p.Open()
	defer ch.Close()
	if err := ch.Connect(serverAP); err != nil {
		t.Fatal(err)
	}
	if err := ch.Connect(serverAP); !errors.Is(err, ErrAlreadyConn) {
		t.Errorf("second connect: %v", err)
	}
}

func TestNonBlockingReadWriteEcho(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	ch := p.Open()
	defer ch.Close()
	if err := ch.Connect(serverAP); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	deadline := time.Now().Add(2 * time.Second)
	got := 0
	for got < 3 {
		n, err := ch.Read(buf[got:])
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got += n
		if n == 0 {
			if time.Now().After(deadline) {
				t.Fatal("echo never arrived")
			}
			time.Sleep(time.Millisecond)
		}
	}
	if string(buf[:3]) != "abc" {
		t.Errorf("echo: %q", buf[:3])
	}
}

func TestReadBeforeConnect(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	ch := p.Open()
	defer ch.Close()
	if _, err := ch.Read(make([]byte, 4)); !errors.Is(err, ErrNotConnected) {
		t.Errorf("got %v", err)
	}
}

func TestSelectorReadEvent(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	ch := p.Open()
	defer ch.Close()
	if err := ch.Connect(serverAP); err != nil {
		t.Fatal(err)
	}
	key := sel.Register(ch, OpRead, "att")
	if _, err := ch.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	done := make(chan []*SelectionKey, 1)
	go func() { done <- sel.Select() }()
	select {
	case keys := <-done:
		if len(keys) != 1 || keys[0] != key {
			t.Fatalf("keys: %v", keys)
		}
		if keys[0].Attachment() != "att" {
			t.Errorf("attachment: %v", keys[0].Attachment())
		}
		if keys[0].ReadyOps()&OpRead == 0 {
			t.Error("not read-ready")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("selector never fired")
	}
}

func TestSelectorWakeup(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	done := make(chan []*SelectionKey, 1)
	go func() { done <- sel.Select() }()
	time.Sleep(2 * time.Millisecond)
	sel.Wakeup()
	select {
	case keys := <-done:
		if len(keys) != 0 {
			t.Errorf("wakeup returned keys: %v", keys)
		}
	case <-time.After(time.Second):
		t.Fatal("Wakeup did not unblock Select")
	}
}

func TestSelectorWakeupBeforeSelect(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	sel.Wakeup() // arrives first; the next Select must not block
	done := make(chan struct{})
	go func() { sel.Select(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("pre-arm wakeup lost")
	}
}

func TestSelectorWriteInterestImmediatelyReady(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	ch := p.Open()
	defer ch.Close()
	if err := ch.Connect(serverAP); err != nil {
		t.Fatal(err)
	}
	key := sel.Register(ch, OpRead, nil)
	key.SetInterestOps(OpRead | OpWrite)
	keys := sel.SelectTimeout(100 * time.Millisecond)
	found := false
	for _, k := range keys {
		if k == key && k.ReadyOps()&OpWrite != 0 {
			found = true
		}
	}
	if !found {
		t.Error("write interest did not become ready")
	}
}

func TestSelectTimeoutZeroPolls(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	start := time.Now()
	keys := sel.SelectTimeout(0)
	if time.Since(start) > 50*time.Millisecond {
		t.Error("SelectTimeout(0) blocked")
	}
	if len(keys) != 0 {
		t.Errorf("keys: %v", keys)
	}
}

func TestSelectTimeoutExpires(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	start := time.Now()
	sel.SelectTimeout(10 * time.Millisecond)
	elapsed := time.Since(start)
	if elapsed < 9*time.Millisecond {
		t.Errorf("returned after %v, timeout 10ms", elapsed)
	}
}

func TestNonBlockingConnectEvent(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	ch := p.Open()
	defer ch.Close()
	key := sel.Register(ch, OpConnect, nil)
	if err := ch.ConnectNonBlocking(serverAP); err != nil {
		t.Fatal(err)
	}
	done := make(chan []*SelectionKey, 1)
	go func() { done <- sel.Select() }()
	select {
	case keys := <-done:
		if len(keys) != 1 || keys[0] != key {
			t.Fatalf("keys: %v", keys)
		}
		if err := ch.FinishConnect(); err != nil {
			t.Errorf("FinishConnect: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("connect event never fired")
	}
}

func TestFinishConnectPendingThenError(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	ch := p.Open()
	defer ch.Close()
	if err := ch.ConnectNonBlocking(netip.MustParseAddrPort("93.184.216.34:81")); err != nil {
		t.Fatal(err)
	}
	if err := ch.FinishConnect(); !errors.Is(err, ErrConnPending) {
		t.Fatalf("early FinishConnect: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := ch.FinishConnect()
		if errors.Is(err, ErrConnPending) {
			if time.Now().After(deadline) {
				t.Fatal("connect never completed")
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if !errors.Is(err, netsim.ErrRefused) {
			t.Fatalf("got %v, want ErrRefused", err)
		}
		return
	}
}

func TestProtectCostAndDisallowedExemption(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{}, 1)
	defer net.Close()
	costs := CostModel{Protect: func(r *rand.Rand) time.Duration { return 5 * time.Millisecond }}
	p := NewProvider(net, clk, phoneAddr, costs, 2)

	ch := p.Open()
	start := time.Now()
	ch.Protect()
	if time.Since(start) < 4*time.Millisecond {
		t.Error("per-socket protect cost not charged")
	}
	if p.ProtectCalls() != 1 {
		t.Errorf("ProtectCalls = %d", p.ProtectCalls())
	}

	p.AddDisallowedApplication()
	ch2 := p.Open()
	start = time.Now()
	ch2.Protect()
	if time.Since(start) > 2*time.Millisecond {
		t.Error("protect still costly after addDisallowedApplication")
	}
	if p.ProtectCalls() != 1 {
		t.Errorf("exempted protect counted: %d", p.ProtectCalls())
	}
}

func TestRegisterCostCharged(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{}, 1)
	defer net.Close()
	costs := CostModel{Register: func(r *rand.Rand) time.Duration { return 4 * time.Millisecond }}
	p := NewProvider(net, clk, phoneAddr, costs, 2)
	sel := p.NewSelector()
	defer sel.Close()
	ch := p.Open()
	defer ch.Close()
	start := time.Now()
	sel.Register(ch, OpRead, nil)
	if time.Since(start) < 3*time.Millisecond {
		t.Error("register cost not charged")
	}
}

func TestUDPSendRecv(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	u := p.OpenUDP()
	defer u.Close()
	u.SendTo(dnsAP, []byte("q"))
	resp, err := u.Recv(2 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if string(resp) != "rq" {
		t.Errorf("resp: %q", resp)
	}
}

func TestUDPRecvTimeout(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	u := p.OpenUDP()
	defer u.Close()
	start := time.Now()
	_, err := u.Recv(10 * time.Millisecond)
	if !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("got %v", err)
	}
	if time.Since(start) < 9*time.Millisecond {
		t.Error("timeout returned early")
	}
}

func TestEphemeralPortsUnique(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	seen := make(map[uint16]bool)
	for i := 0; i < 1000; i++ {
		port := p.EphemeralPort()
		if seen[port] {
			t.Fatalf("port %d allocated twice", port)
		}
		seen[port] = true
	}
}

func TestChannelCloseCancelsKey(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	defer sel.Close()
	ch := p.Open()
	if err := ch.Connect(serverAP); err != nil {
		t.Fatal(err)
	}
	key := sel.Register(ch, OpRead, nil)
	if sel.KeyCount() != 1 {
		t.Fatalf("keys: %d", sel.KeyCount())
	}
	ch.Close()
	if sel.KeyCount() != 0 {
		t.Errorf("key not removed on close: %d", sel.KeyCount())
	}
	if !key.Canceled() {
		t.Error("key not canceled")
	}
}

func TestAndroidCostsMagnitudes(t *testing.T) {
	c := AndroidCosts()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if d := c.Protect(r); d < 0 || d > 20*time.Millisecond {
			t.Fatalf("protect cost %v out of band", d)
		}
		if d := c.Register(r); d < 0 || d > 10*time.Millisecond {
			t.Fatalf("register cost %v out of band", d)
		}
		if d := c.Dispatch(r); d < 0 || d > 10*time.Millisecond {
			t.Fatalf("dispatch cost %v out of band", d)
		}
	}
}

func TestEOFSurfacesThroughChannel(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.LinkParams{Delay: time.Millisecond}, 1)
	defer net.Close()
	net.HandleTCP(serverAP, netsim.SourceHandler(4))
	p := NewProvider(net, clk, phoneAddr, ZeroCosts(), 2)
	ch := p.Open()
	defer ch.Close()
	if err := ch.Connect(serverAP); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	got := 0
	deadline := time.Now().Add(2 * time.Second)
	for {
		n, err := ch.Read(buf)
		got += n
		if errors.Is(err, ErrEOF) {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("EOF never arrived (got %d bytes)", got)
		}
		if n == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	if got != 4 {
		t.Errorf("got %d bytes before EOF, want 4", got)
	}
}

func TestWriteAfterClose(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	ch := p.Open()
	if err := ch.Connect(serverAP); err != nil {
		t.Fatal(err)
	}
	ch.Close()
	if _, err := ch.Read(make([]byte, 4)); err == nil {
		t.Error("read after close succeeded")
	}
}

func TestConnectAfterClose(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	ch := p.Open()
	ch.Close()
	if err := ch.Connect(serverAP); !errors.Is(err, ErrClosedChannel) {
		t.Errorf("got %v", err)
	}
}

func TestResetAbortsPeer(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	ch := p.Open()
	if err := ch.Connect(serverAP); err != nil {
		t.Fatal(err)
	}
	if err := ch.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if err := ch.Reset(); err != nil {
		t.Fatalf("double reset: %v", err)
	}
}

func TestSelectorCloseUnblocksSelect(t *testing.T) {
	p, _ := newProvider(t, ZeroCosts())
	sel := p.NewSelector()
	done := make(chan struct{})
	go func() { sel.Select(); close(done) }()
	time.Sleep(2 * time.Millisecond)
	sel.Close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock Select")
	}
}
