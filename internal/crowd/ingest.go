package crowd

import (
	"fmt"

	"repro/internal/measure"
)

// This file is the collector-side ingestion path: where the generator
// (generate.go) stands in for the deployment that cannot be re-run,
// Ingest builds a Dataset from measurements that actually happened —
// the batches a live Phone's Collector uploads, or a CSV/JSONL export
// loaded back from disk. The analysis pipeline (analyze.go, cases.go)
// consumes records and device metadata only, so a dataset assembled
// here flows through every §4.2 table and figure unchanged.

// anonDeviceID labels records that arrive without a device attribution
// (direct engine exports that skipped a Collector).
const anonDeviceID = "device-anon"

// Ingest assembles a Dataset from collected measurement records.
// Device metadata — the paper's per-install registration data — is
// reconstructed from the records themselves: one Device per distinct
// Record.Device value, its country/ISP/network mix taken from the
// records it contributed. Scale is set proportionally to the paper's
// dataset so the analysis thresholds (Figure 6 buckets, Table 5
// cutoffs) scale the same way they do for generated datasets.
func Ingest(recs []measure.Record) *Dataset {
	ds := &Dataset{
		Records: append([]measure.Record(nil), recs...),
		Scale:   float64(len(recs)) / float64(PaperTotalMeasurements),
	}

	type devAgg struct {
		count   int
		wifi    int
		country map[string]int
		cellISP map[string]int
		wifiISP map[string]int
		cellGen map[string]int
	}
	aggs := make(map[string]*devAgg)
	order := []string{} // deterministic device order: first appearance
	for _, r := range recs {
		id := r.Device
		if id == "" {
			id = anonDeviceID
		}
		a := aggs[id]
		if a == nil {
			a = &devAgg{
				country: make(map[string]int), cellISP: make(map[string]int),
				wifiISP: make(map[string]int), cellGen: make(map[string]int),
			}
			aggs[id] = a
			order = append(order, id)
		}
		a.count++
		if r.Country != "" {
			a.country[r.Country]++
		}
		if r.NetType == "WiFi" {
			a.wifi++
			if r.ISP != "" {
				a.wifiISP[r.ISP]++
			}
		} else {
			if r.ISP != "" {
				a.cellISP[r.ISP]++
			}
			if r.NetType != "" {
				a.cellGen[r.NetType]++
			}
		}
	}

	for i, id := range order {
		a := aggs[id]
		d := &Device{
			ID:       id,
			Country:  mode(a.country),
			Model:    fmt.Sprintf("reported-%d", i+1),
			CellISP:  mode(a.cellISP),
			WiFiISP:  mode(a.wifiISP),
			Gen:      mode(a.cellGen),
			Activity: a.count,
		}
		if d.WiFiISP == "" && d.Country != "" {
			d.WiFiISP = "WiFi " + d.Country
		}
		if d.Gen == "" {
			d.Gen = "LTE"
		}
		d.WiFiShare = float64(a.wifi) / float64(a.count)
		ds.Devices = append(ds.Devices, d)
	}
	return ds
}

// mode returns the most frequent key, ties broken lexicographically so
// ingestion is deterministic regardless of map iteration order.
func mode(m map[string]int) string {
	best, bestN := "", 0
	for k, n := range m {
		if n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	return best
}
