package crowd

import (
	"sort"

	"repro/internal/measure"
	"repro/internal/sketch"
)

// This file is the collector's streaming aggregation state: the
// per-app and per-network-type quantile sketches (plus counters) that
// are maintained incrementally on each accepted batch, so that
// /v1/stats and per-app median queries are O(sketch) instead of
// O(dataset). Sketches merge exactly (bin-wise), which is what lets
// the per-shard states inside one Server — and the per-Server states
// inside a ShardedServer — fan into a single truthful Summary.

// agg is one ingest shard's aggregation state. It is guarded by the
// owning shard's mutex; merging reads it without mutating.
type agg struct {
	alpha float64
	tcp   uint64
	dns   uint64
	// perApp sketches TCP connect RTTs (ms) by app package — the
	// figure 9(b)/Table 5 dimension.
	perApp map[string]*sketch.Sketch
	// perNet sketches RTTs (ms) by measure.Record.NetKey()
	// ("TCP/WiFi", "DNS/LTE", ...) — the figure 9(a)/10 dimension.
	perNet map[string]*sketch.Sketch
}

func newAgg(alpha float64) *agg {
	return &agg{
		alpha:  alpha,
		perApp: make(map[string]*sketch.Sketch),
		perNet: make(map[string]*sketch.Sketch),
	}
}

// observe folds one accepted record into the shard's sketches.
func (a *agg) observe(r measure.Record) {
	ms := r.Millis()
	if r.Kind == measure.KindTCP {
		a.tcp++
		sk := a.perApp[r.App]
		if sk == nil {
			sk = sketch.New(a.alpha)
			a.perApp[r.App] = sk
		}
		sk.Add(ms)
	} else {
		a.dns++
	}
	key := r.NetKey()
	sk := a.perNet[key]
	if sk == nil {
		sk = sketch.New(a.alpha)
		a.perNet[key] = sk
	}
	sk.Add(ms)
}

// merge folds o into a without mutating o (sketch.Merge copies bins).
func (a *agg) merge(o *agg) {
	a.tcp += o.tcp
	a.dns += o.dns
	for app, sk := range o.perApp {
		dst := a.perApp[app]
		if dst == nil {
			dst = sketch.New(a.alpha)
			a.perApp[app] = dst
		}
		dst.Merge(sk)
	}
	for key, sk := range o.perNet {
		dst := a.perNet[key]
		if dst == nil {
			dst = sketch.New(a.alpha)
			a.perNet[key] = dst
		}
		dst.Merge(sk)
	}
}

// QuantileSummary is one sketch rendered for the stats document.
type QuantileSummary struct {
	N      uint64  `json:"n"`
	MinMS  float64 `json:"min_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

func quantileSummary(sk *sketch.Sketch) QuantileSummary {
	return QuantileSummary{
		N:      sk.Count(),
		MinMS:  sk.Min(),
		P50MS:  sk.Quantile(0.5),
		P90MS:  sk.Quantile(0.9),
		P99MS:  sk.Quantile(0.99),
		MaxMS:  sk.Max(),
		MeanMS: sk.Mean(),
	}
}

// Summary is the `GET /v1/stats` document: the server counters plus
// the sketched per-app and per-network aggregates. Assembling it costs
// O(shards × apps × sketch bins) — independent of how many records
// ever streamed through the collector.
type Summary struct {
	Stats ServerStats `json:"stats"`
	// TCPRecords and DNSRecords split Stats.Records by kind.
	TCPRecords uint64 `json:"tcp_records"`
	DNSRecords uint64 `json:"dns_records"`
	// RelativeAccuracy is the sketches' alpha: every quantile below is
	// within this relative error of the exact dataset quantile.
	RelativeAccuracy float64 `json:"relative_accuracy"`
	// Shards is the ingest parallelism behind this summary (internal
	// lock shards for a Server; collector shards for a ShardedServer).
	Shards int `json:"shards"`
	// RetainRecords reports whether /v1/records can serve the raw
	// dataset, or only these aggregates exist.
	RetainRecords bool `json:"retain_records"`
	// PerApp holds TCP connect-RTT quantiles by app package.
	PerApp map[string]QuantileSummary `json:"per_app,omitempty"`
	// PerNet holds RTT quantiles by "<kind>/<nettype>" key.
	PerNet map[string]QuantileSummary `json:"per_net,omitempty"`
}

// render converts the merged aggregation state into the wire form.
func (a *agg) render() (perApp, perNet map[string]QuantileSummary) {
	perApp = make(map[string]QuantileSummary, len(a.perApp))
	for app, sk := range a.perApp {
		perApp[app] = quantileSummary(sk)
	}
	perNet = make(map[string]QuantileSummary, len(a.perNet))
	for key, sk := range a.perNet {
		perNet[key] = quantileSummary(sk)
	}
	return perApp, perNet
}

// AppMedians extracts each app's sketched median from a summary —
// the O(sketch) counterpart of measure.AppMedians over raw records —
// for apps with at least minN measurements.
func (s Summary) AppMedians(minN int) map[string]float64 {
	out := make(map[string]float64)
	for app, qs := range s.PerApp {
		if qs.N >= uint64(minN) {
			out[app] = qs.P50MS
		}
	}
	return out
}

// TopApps returns the n busiest apps by TCP measurement count, ties
// broken lexicographically — a stable shortlist for dashboards.
func (s Summary) TopApps(n int) []string {
	apps := make([]string, 0, len(s.PerApp))
	for app := range s.PerApp {
		apps = append(apps, app)
	}
	sort.Slice(apps, func(i, j int) bool {
		ni, nj := s.PerApp[apps[i]].N, s.PerApp[apps[j]].N
		if ni != nj {
			return ni > nj
		}
		return apps[i] < apps[j]
	})
	if len(apps) > n {
		apps = apps[:n]
	}
	return apps
}
