package crowd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/measure"
	"repro/internal/stats"
)

// This file reproduces the two §4.2.2 case studies.

// WhatsappCase is Case 1: the hosting split behind Whatsapp's poor
// median.
type WhatsappCase struct {
	TotalDomains     int
	SlowDomainMedian float64 // median RTT over all SoftLayer-domain traffic
	FastDomainNames  []string
	FastMedians      map[string]float64
	// DomainMediansOver200 counts slow domains whose own median exceeds
	// 200 ms (the paper: all except three domains).
	DomainsMeasured      int
	DomainMediansOver200 int
	// NetworkMedians is the per-network breakdown over the most
	// accessed networks (paper: 20 networks, only two under 100 ms).
	NetworkMedians map[string]float64
}

// AnalyzeWhatsapp runs Case 1 on the dataset.
func AnalyzeWhatsapp(ds *Dataset) *WhatsappCase {
	recs := measure.ByApp(ds.TCP())["com.whatsapp"]
	fast := map[string]bool{
		"mme.whatsapp.net": true, "mmg.whatsapp.net": true, "pps.whatsapp.net": true,
	}
	c := &WhatsappCase{
		FastMedians:    make(map[string]float64),
		NetworkMedians: make(map[string]float64),
	}
	byDomain := measure.ByDomain(recs)
	var slowAll []float64
	perNetwork := make(map[string][]float64)
	domains := 0
	for dom, rs := range byDomain {
		if !strings.HasSuffix(dom, ".whatsapp.net") {
			continue
		}
		domains++
		ms := measure.RTTMillis(rs)
		if fast[dom] {
			c.FastDomainNames = append(c.FastDomainNames, dom)
			c.FastMedians[dom] = stats.Median(ms)
			continue
		}
		slowAll = append(slowAll, ms...)
		if len(rs) >= 3 {
			c.DomainsMeasured++
			if stats.Median(ms) > 200 {
				c.DomainMediansOver200++
			}
		}
		for _, r := range rs {
			key := r.ISP + "/" + r.NetType
			perNetwork[key] = append(perNetwork[key], r.RTT.Seconds()*1000)
		}
	}
	sort.Strings(c.FastDomainNames)
	c.TotalDomains = domains
	c.SlowDomainMedian = stats.Median(slowAll)
	// Keep the most accessed networks, the paper's "20 most accessed".
	type nk struct {
		key string
		n   int
	}
	var keys []nk
	for k, v := range perNetwork {
		keys = append(keys, nk{k, len(v)})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].n > keys[j].n })
	for i, k := range keys {
		if i >= 20 {
			break
		}
		c.NetworkMedians[k.key] = stats.Median(perNetwork[k.key])
	}
	return c
}

// String renders Case 1.
func (c *WhatsappCase) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Case 1 — Whatsapp (*.whatsapp.net):\n")
	fmt.Fprintf(&b, "  domains observed: %d; SoftLayer-hosted traffic median: %.0f ms\n",
		c.TotalDomains, c.SlowDomainMedian)
	for _, d := range c.FastDomainNames {
		fmt.Fprintf(&b, "  CDN-hosted %s median: %.0f ms\n", d, c.FastMedians[d])
	}
	fmt.Fprintf(&b, "  slow domains with median >200 ms: %d of %d measured\n",
		c.DomainMediansOver200, c.DomainsMeasured)
	under100 := 0
	for _, m := range c.NetworkMedians {
		if m < 100 {
			under100++
		}
	}
	fmt.Fprintf(&b, "  top networks with median <100 ms: %d of %d\n",
		under100, len(c.NetworkMedians))
	return b.String()
}

// JioCase is Case 2: India's largest 4G ISP underperforming on app
// traffic despite healthy DNS.
type JioCase struct {
	AppMedian float64 // median app-traffic RTT on Jio
	DNSMedian float64 // median DNS RTT on Jio
	AppN      int
	// Domain medians on Jio, bucketed as the paper reports.
	DomainsMeasured int
	Under100        int
	Over200         int
	Over300         int
	Over400         int
	// NonJio comparison: of domains measured on both Jio and other LTE
	// networks, how many are faster elsewhere and by how much.
	ComparedDomains int
	FasterOffJio    int
	MeanAdvantageMS float64
}

// AnalyzeJio runs Case 2.
func AnalyzeJio(ds *Dataset) *JioCase {
	c := &JioCase{}
	minPer := ds.ScaledThreshold(100)

	var jioApp, jioDNS []float64
	jioDomains := make(map[string][]float64)
	otherLTEDomains := make(map[string][]float64)
	for _, r := range ds.Records {
		onJio := r.ISP == "Jio 4G" && r.NetType != "WiFi"
		ms := r.RTT.Seconds() * 1000
		if r.Kind == measure.KindDNS {
			if onJio {
				jioDNS = append(jioDNS, ms)
			}
			continue
		}
		if onJio {
			jioApp = append(jioApp, ms)
			jioDomains[r.Domain] = append(jioDomains[r.Domain], ms)
		} else if r.NetType == "LTE" {
			otherLTEDomains[r.Domain] = append(otherLTEDomains[r.Domain], ms)
		}
	}
	c.AppMedian = stats.Median(jioApp)
	c.DNSMedian = stats.Median(jioDNS)
	c.AppN = len(jioApp)
	var advantages []float64
	for dom, ms := range jioDomains {
		if len(ms) < minPer {
			continue
		}
		c.DomainsMeasured++
		m := stats.Median(ms)
		if m < 100 {
			c.Under100++
		}
		if m > 200 {
			c.Over200++
		}
		if m > 300 {
			c.Over300++
		}
		if m > 400 {
			c.Over400++
		}
		if other, ok := otherLTEDomains[dom]; ok && len(other) >= minPer {
			c.ComparedDomains++
			om := stats.Median(other)
			if om < m {
				c.FasterOffJio++
				advantages = append(advantages, m-om)
			}
		}
	}
	c.MeanAdvantageMS = stats.Mean(advantages)
	return c
}

// String renders Case 2.
func (c *JioCase) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Case 2 — Jio 4G (India):\n")
	fmt.Fprintf(&b, "  app-traffic median: %.0f ms over %d measurements; DNS median: %.0f ms\n",
		c.AppMedian, c.AppN, c.DNSMedian)
	fmt.Fprintf(&b, "  of %d domains measured on Jio: %d under 100 ms, %d over 200, %d over 300, %d over 400\n",
		c.DomainsMeasured, c.Under100, c.Over200, c.Over300, c.Over400)
	fmt.Fprintf(&b, "  vs other LTE networks: %d/%d domains faster off Jio, by %.0f ms on average\n",
		c.FasterOffJio, c.ComparedDomains, c.MeanAdvantageMS)
	fmt.Fprintf(&b, "  diagnosis: healthy first hop (DNS) with inflated end-to-end RTT puts the root cause in the LTE core network\n")
	return b.String()
}
