package crowd

import (
	"fmt"
	"math"
	"math/rand"
)

// LatLon is one measurement location (Figure 8).
type LatLon struct {
	Lat, Lon float64
}

// Device is one contributing phone.
type Device struct {
	ID      string
	Country string
	Model   string
	CellISP string
	WiFiISP string
	// WiFiShare is this device's fraction of measurements on WiFi.
	WiFiShare float64
	// Gen is the device's cellular capability: "LTE", "3G" or "2G".
	Gen string
	// Locations are the spots this device measured from.
	Locations []LatLon
	// Activity is the device's target measurement count.
	Activity int
}

// activityBucket describes one Figure 6(a) bar at full scale.
type activityBucket struct {
	Devices  int
	MinCount int
	MaxCount int
}

// fig6aBuckets is Figure 6(a): 104 devices above 10K measurements, 70
// in 5–10K, 288 in 1–5K, 575 in 100–1K, and the rest below 100.
var fig6aBuckets = []activityBucket{
	{Devices: 104, MinCount: 10000, MaxCount: 45000},
	{Devices: 70, MinCount: 5000, MaxCount: 10000},
	{Devices: 288, MinCount: 1000, MaxCount: 5000},
	{Devices: 575, MinCount: 100, MaxCount: 1000},
	{Devices: PaperDevices - 104 - 70 - 288 - 575, MinCount: 1, MaxCount: 100},
}

// countryPopulation expands Figure 7 into per-device country
// assignments covering all 114 countries.
func countryPopulation(rng *rand.Rand, devices int) []countrySpec {
	// Weights: top-20 counts verbatim, tail countries share the rest.
	specs := make([]countrySpec, 0, len(topCountries)+len(tailCountryNames))
	totalTop := 0
	for _, c := range topCountries {
		specs = append(specs, c)
		totalTop += c.Users
	}
	// The paper's top 20 sum to ~1370 of 2351 devices; spread the rest
	// over the tail with a gently decaying weight, minimum 1.
	remaining := PaperDevices - totalTop
	nTail := PaperCountries - len(topCountries)
	for i := 0; i < nTail && i < len(tailCountryNames); i++ {
		w := int(float64(remaining) * decayShare(i, nTail))
		if w < 1 {
			w = 1
		}
		specs = append(specs, countrySpec{
			Name:  tailCountryNames[i],
			Users: w,
			Lat:   rng.Float64()*140 - 50,
			Lon:   rng.Float64()*360 - 180,
			ISPs:  []string{tailCountryNames[i] + " Mobile", tailCountryNames[i] + " Telecom"},
		})
	}
	return specs
}

// decayShare is a normalised geometric decay across n slots.
func decayShare(i, n int) float64 {
	const r = 0.96
	norm := (1 - math.Pow(r, float64(n))) / (1 - r)
	return math.Pow(r, float64(i)) / norm
}

// ispWeight returns the device-share weight of one cellular ISP within
// its country, proportional to its Table 6 measurement volume when
// listed.
func ispWeight(name string) float64 {
	for _, s := range lteISPs {
		if s.Name == name {
			return float64(s.PaperN)
		}
	}
	return 2500 // unlisted operators get a small share
}

// generateDevices builds the device population at the given scale.
func generateDevices(rng *rand.Rand, scale float64) []*Device {
	countries := countryPopulation(rng, PaperDevices)
	var countryCum []float64
	var total float64
	for _, c := range countries {
		total += float64(c.Users)
		countryCum = append(countryCum, total)
	}
	pickCountry := func() countrySpec {
		x := rng.Float64() * total
		lo, hi := 0, len(countryCum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if countryCum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return countries[lo]
	}

	var devices []*Device
	countryFrag := make(map[string]int)
	id := 0
	for _, b := range fig6aBuckets {
		n := int(math.Round(float64(b.Devices) * scale))
		if n == 0 && b.Devices > 0 && scale > 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			id++
			c := pickCountry()
			d := &Device{
				ID:        fmt.Sprintf("device-%04d", id),
				Country:   c.Name,
				Model:     phoneModel(rng, id),
				WiFiISP:   "WiFi " + c.Name,
				WiFiShare: clamp(rng.NormFloat64()*0.18+wifiShare, 0.05, 0.95),
			}
			if hasListedISP(c) {
				// Cellular ISP weighted by Table 6 volume.
				var wsum float64
				for _, isp := range c.ISPs {
					wsum += ispWeight(isp)
				}
				x := rng.Float64() * wsum
				for _, isp := range c.ISPs {
					x -= ispWeight(isp)
					if x <= 0 {
						d.CellISP = isp
						break
					}
				}
				if d.CellISP == "" && len(c.ISPs) > 0 {
					d.CellISP = c.ISPs[0]
				}
			} else {
				// Countries without a Table 6 operator: their users
				// leaned on WiFi in the dataset (no unlisted operator
				// cracks the DNS top 15), and their cellular volume is
				// spread across many regional operators.
				d.WiFiShare = clamp(rng.NormFloat64()*0.06+0.86, 0.6, 0.97)
				frag := countryFrag[c.Name]
				countryFrag[c.Name]++
				d.CellISP = fmt.Sprintf("%s Mobile %d", c.Name, frag/4+1)
			}
			// Cellular generation: most devices are LTE; Cricket and
			// U.S. Cellular users fall back to 3G often (Figure 11).
			d.Gen = "LTE"
			switch {
			case rng.Float64() < nonLTEShareFor(d.CellISP):
				d.Gen = "3G"
			case rng.Float64() < 0.02:
				d.Gen = "2G"
			}
			// Activity: log-uniform within the bucket. This is a
			// sampling weight at full scale; realized counts shrink
			// with Config.Scale automatically because the record total
			// does.
			span := math.Log(float64(b.MaxCount) / float64(b.MinCount))
			d.Activity = int(float64(b.MinCount) * math.Exp(rng.Float64()*span))
			if d.Activity < 1 {
				d.Activity = 1
			}
			// Locations: a handful of spots near the country centroid
			// (Figure 8 plots 6,987 across 2,351 devices, ~3 each).
			nLoc := 1 + rng.Intn(5)
			for l := 0; l < nLoc; l++ {
				d.Locations = append(d.Locations, LatLon{
					Lat: clamp(c.Lat+rng.NormFloat64()*4, -85, 85),
					Lon: wrapLon(c.Lon + rng.NormFloat64()*6),
				})
			}
			devices = append(devices, d)
		}
	}
	reconcileISPVolumes(rng, devices)
	return devices
}

// reconcileISPVolumes rescales device activity weights so that each
// Table 6 operator's expected DNS volume matches its published count.
// Only the 15 listed operators' device groups are touched; everyone
// else keeps the Figure 6(a) bucket draw. The upward cases encode
// that, e.g., Singtel's 34,609 DNS RTTs came from just 13 Singaporean
// devices — those users were simply heavy; the downward cases stop a
// single tail-heavy device from handing a small operator an outsized
// volume.
func reconcileISPVolumes(rng *rand.Rand, devices []*Device) {
	dnsShare := float64(PaperDNSMeasurements) / float64(PaperTotalMeasurements)
	groups := make(map[string][]*Device)
	for _, d := range devices {
		groups[d.CellISP] = append(groups[d.CellISP], d)
	}
	// Guarantee every Table 6 ISP has at least one device: convert the
	// least active device of an unlisted group.
	for _, spec := range lteISPs {
		if len(groups[spec.Name]) > 0 {
			continue
		}
		var victim *Device
		for _, d := range devices {
			if _, listed := lteSpecFor(d.CellISP); listed {
				continue
			}
			if victim == nil || d.Activity < victim.Activity {
				victim = d
			}
		}
		if victim == nil {
			continue
		}
		groups[victim.CellISP] = removeDevice(groups[victim.CellISP], victim)
		victim.CellISP = spec.Name
		victim.Country = spec.Country
		victim.WiFiISP = "WiFi " + spec.Country
		victim.WiFiShare = clamp(rng.NormFloat64()*0.15+0.45, 0.1, 0.8)
		groups[spec.Name] = append(groups[spec.Name], victim)
	}
	var sumAll float64
	for _, d := range devices {
		sumAll += float64(d.Activity)
	}
	for _, spec := range lteISPs {
		ds := groups[spec.Name]
		var cur float64
		for _, d := range ds {
			cur += float64(d.Activity) * (1 - d.WiFiShare)
		}
		if cur <= 0 {
			continue
		}
		want := float64(spec.PaperN) * sumAll / (float64(PaperTotalMeasurements) * dnsShare)
		ratio := want / cur
		for _, d := range ds {
			d.Activity = int(float64(d.Activity)*ratio) + 1
		}
	}
	// Cap every unlisted operator below the smallest Table 6 entry by
	// shifting its heavy users toward WiFi: activity (and so the
	// Figure 6a histogram) is preserved, only the access mix moves.
	capN := 1800.0 // full-scale DNS RTTs, under U.S. Cellular's 1,988
	capWeight := capN * sumAll / (float64(PaperTotalMeasurements) * dnsShare)
	for isp, ds := range groups {
		if _, listed := lteSpecFor(isp); listed {
			continue
		}
		var cur float64
		for _, d := range ds {
			cur += float64(d.Activity) * (1 - d.WiFiShare)
		}
		if cur <= capWeight {
			continue
		}
		f := capWeight / cur
		for _, d := range ds {
			d.WiFiShare = 1 - (1-d.WiFiShare)*f
		}
	}
}

// hasListedISP reports whether the country hosts a Table 6 operator.
func hasListedISP(c countrySpec) bool {
	for _, isp := range c.ISPs {
		if _, ok := lteSpecFor(isp); ok {
			return true
		}
	}
	return false
}

func removeDevice(ds []*Device, target *Device) []*Device {
	for i, d := range ds {
		if d == target {
			return append(ds[:i], ds[i+1:]...)
		}
	}
	return ds
}

// nonLTEShareFor returns the ISP's fallback probability.
func nonLTEShareFor(isp string) float64 {
	for _, s := range lteISPs {
		if s.Name == isp && s.NonLTEShare > 0 {
			return s.NonLTEShare
		}
	}
	return 0.05
}

func phoneModel(rng *rand.Rand, id int) string {
	m := manufacturers[rng.Intn(len(manufacturers))]
	return fmt.Sprintf("%s-%d", m, id%(PaperPhoneModels/len(manufacturers))+1)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func wrapLon(l float64) float64 {
	for l > 180 {
		l -= 360
	}
	for l < -180 {
		l += 360
	}
	return l
}
