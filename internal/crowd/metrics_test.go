package crowd

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestServerMetricsExposition drives uploads (including a duplicate)
// through a spooled server and checks the scraped exposition carries
// the ISSUE's required live facts: upload counters, dedup hits, spool
// footprint, per-shard skew, retain mode, and sketched RTT summaries.
func TestServerMetricsExposition(t *testing.T) {
	s, err := NewServer(ServerOptions{SpoolDir: t.TempDir(), ExposeMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	b1 := srvBatch("p1", "p1/k/1", 1, srvRec("", "com.app", 10), srvRec("", "com.app", 20))
	b2 := srvBatch("p2", "p2/k/1", 1, srvRec("", "com.other", 30))
	if resp := postBatch(t, ts, "", b1, "p1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("upload b1: %s", resp.Status)
	}
	if resp := postBatch(t, ts, "", b2, "p2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("upload b2: %s", resp.Status)
	}
	if resp := postBatch(t, ts, "", b1, "p1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("redeliver b1: %s", resp.Status)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	raw, _ := io.ReadAll(resp.Body)
	expo := string(raw)

	for line, why := range map[string]string{
		"mopeye_collector_uploads_total 2":    "two accepted batches",
		"mopeye_collector_records_total 3":    "three records",
		"mopeye_collector_dedup_hits_total 1": "one absorbed redelivery",
		"mopeye_collector_dedup_keys 2":       "two idempotency keys",
		"mopeye_collector_retain_records 1":   "retention defaults on",
		"mopeye_collector_spool_segments 1":   "one spool segment",
	} {
		if !strings.Contains(expo, line+"\n") {
			t.Errorf("missing %q (%s) in:\n%s", line, why, expo)
		}
	}
	if !strings.Contains(expo, `mopeye_collector_rtt_ms{net="TCP/`) {
		t.Errorf("no per-net RTT summary in:\n%s", expo)
	}
	if !strings.Contains(expo, "mopeye_collector_spool_bytes ") ||
		strings.Contains(expo, "mopeye_collector_spool_bytes 0\n") {
		t.Errorf("spool_bytes missing or zero with a live spool:\n%s", expo)
	}

	// Per-shard skew: the shard_records samples sum to records_total.
	snap := s.Metrics()
	sum := 0.0
	for _, f := range snap {
		if f.Name != "mopeye_collector_shard_records" {
			continue
		}
		if len(f.Samples) != DefaultIngestShards {
			t.Errorf("shard_records has %d samples, want %d", len(f.Samples), DefaultIngestShards)
		}
		for _, sm := range f.Samples {
			sum += sm.Value
		}
	}
	if sum != 3 {
		t.Errorf("shard_records sum = %v, want 3", sum)
	}
}

// TestShardedMetricsEquivalence is the sharded-vs-unsharded
// merged-view property end to end: the same uploads through one
// Server and through a 4-shard ShardedServer must render
// byte-identical /metrics (after the non-additive retain flag is
// re-stamped).
func TestShardedMetricsEquivalence(t *testing.T) {
	one, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedServer(ServerOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	tsOne := httptest.NewServer(one)
	defer tsOne.Close()
	tsSharded := httptest.NewServer(sharded)
	defer tsSharded.Close()

	for d := 0; d < 40; d++ {
		dev := fmt.Sprintf("phone-%02d", d)
		b := srvBatch(dev, dev+"/k/1", 1,
			srvRec("", fmt.Sprintf("com.app%d", d%5), float64(10+d)),
			srvRec("", "com.common", float64(5+d%7)))
		if resp := postBatch(t, tsOne, "", b, dev); resp.StatusCode != http.StatusOK {
			t.Fatalf("unsharded upload %s: %s", dev, resp.Status)
		}
		if resp := postBatch(t, tsSharded, "", b, dev); resp.StatusCode != http.StatusOK {
			t.Fatalf("sharded upload %s: %s", dev, resp.Status)
		}
		if d%3 == 0 { // sprinkle duplicates on both sides
			postBatch(t, tsOne, "", b, dev)
			postBatch(t, tsSharded, "", b, dev)
		}
	}

	var ob, sb strings.Builder
	if err := one.WriteMetrics(&ob); err != nil {
		t.Fatal(err)
	}
	if err := sharded.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if ob.String() != sb.String() {
		t.Fatalf("sharded merged view differs from unsharded:\n--- unsharded ---\n%s--- sharded ---\n%s", ob.String(), sb.String())
	}

	// The per-shard drill-down serves one shard's own registry, whose
	// totals are a strict subset of the merged view's.
	h := sharded.MetricsHandler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics?shard=1", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("?shard=1: %d", rr.Code)
	}
	shardExpo := rr.Body.String()
	if !strings.Contains(shardExpo, "mopeye_collector_records_total ") {
		t.Fatalf("per-shard view missing records_total:\n%s", shardExpo)
	}
	if shardExpo == sb.String() {
		t.Error("per-shard view unexpectedly identical to the merged view")
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics?shard=99", nil))
	if rr.Code != http.StatusBadRequest {
		t.Errorf("?shard=99: %d, want 400", rr.Code)
	}
}

// TestMetricsTokenExemption: with a token configured, /metrics (like
// /healthz) answers unauthenticated scrapers while the data plane
// stays gated.
func TestMetricsTokenExemption(t *testing.T) {
	for _, shape := range []string{"server", "sharded"} {
		var h http.Handler
		o := ServerOptions{Token: "sesame", ExposeMetrics: true}
		if shape == "server" {
			s, err := NewServer(o)
			if err != nil {
				t.Fatal(err)
			}
			h = s
		} else {
			ss, err := NewShardedServer(o, 2)
			if err != nil {
				t.Fatal(err)
			}
			h = ss
		}
		ts := httptest.NewServer(h)
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: unauthenticated /metrics = %s, want 200", shape, resp.Status)
		}
		resp, err = http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s: unauthenticated /v1/stats = %s, want 401", shape, resp.Status)
		}
		ts.Close()
	}
}

// TestMetricsScrapeDuringUploads hammers uploads while scraping — the
// -race half of the /metrics coverage at the collector layer.
func TestMetricsScrapeDuringUploads(t *testing.T) {
	s, err := NewServer(ServerOptions{ExposeMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				dev := fmt.Sprintf("p%d-%d", g, i)
				b := srvBatch(dev, fmt.Sprintf("%s/k", dev), 1, srvRec("", "com.app", float64(i+1)))
				postBatch(t, ts, "", b, dev)
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		if err := s.WriteMetrics(&sb); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
	}
	wg.Wait()
	if v, ok := s.Metrics().Get("mopeye_collector_records_total"); !ok || v != 100 {
		t.Fatalf("records_total = %v ok=%v, want 100", v, ok)
	}
}
