package crowd

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/measure"
)

// --- spool segment rotation and compaction ---

// A tiny segment cap forces rotation; everything must replay across
// the resulting segment chain.
func TestSpoolRotationReplay(t *testing.T) {
	dir := t.TempDir()
	spool, rep, err := OpenSpoolOptions(dir, SpoolOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 1 {
		t.Fatalf("fresh spool segments: %d", rep.Segments)
	}
	for i := 0; i < 10; i++ {
		b := srvBatch("p1", fmt.Sprintf("k%d", i), i, srvRec("p1", "app", float64(i+1)))
		if err := spool.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if spool.Segments() < 3 {
		t.Fatalf("no rotation at 256-byte cap: %d segments", spool.Segments())
	}
	spool.Close()

	_, rep2, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Batches) != 10 {
		t.Errorf("replayed %d of 10 batches across %d segments", len(rep2.Batches), rep2.Segments)
	}
	for i, b := range rep2.Batches {
		if b.Key != fmt.Sprintf("k%d", i) {
			t.Fatalf("replay order broken at %d: %q", i, b.Key)
		}
	}
	// ReadSpool (offline analysis) sees the same dataset.
	recs, err := ReadSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Errorf("offline read: %d records", len(recs))
	}
}

// Compact drops sealed segments but their keys keep absorbing
// redelivery — across a restart.
func TestSpoolCompact(t *testing.T) {
	dir := t.TempDir()
	spool, _, err := OpenSpoolOptions(dir, SpoolOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var batches []measure.Batch
	for i := 0; i < 8; i++ {
		b := srvBatch("p1", fmt.Sprintf("k%d", i), i, srvRec("p1", "app", float64(i+1)))
		batches = append(batches, b)
		if err := spool.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	before := spool.Segments()
	if before < 2 {
		t.Fatalf("need sealed segments to compact, have %d", before)
	}
	segs, keys, err := spool.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if segs != before-1 {
		t.Errorf("compacted %d of %d sealed segments", segs, before-1)
	}
	if keys == 0 {
		t.Error("compaction preserved no keys")
	}
	if spool.Segments() != 1 {
		t.Errorf("segments after compact: %d", spool.Segments())
	}
	// A second compact with nothing sealed is a no-op.
	if segs, _, err := spool.Compact(); err != nil || segs != 0 {
		t.Errorf("idle compact: %d, %v", segs, err)
	}
	spool.Close()

	// Restart: compacted keys absorb redelivery even though their
	// records are gone.
	s, err := NewServer(ServerOptions{SpoolDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got, want := s.DedupKeys(), 8; got != want {
		t.Errorf("dedup keys after compacted restart: %d, want %d", got, want)
	}
	if n := len(s.Records()); n >= 8 {
		t.Errorf("compacted records still replaying: %d", n)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	for _, b := range batches {
		if resp := postBatch(t, ts, "", b, "p1"); resp.StatusCode != http.StatusOK {
			t.Fatalf("redelivery of %s: %s", b.Key, resp.Status)
		}
	}
	if st := s.Stats(); st.Duplicates != 8 {
		t.Errorf("redelivered compacted keys not absorbed: %+v", st)
	}
}

// A server with a small segment cap rotates, compacts via
// CompactSpool, and still dedups after restart.
func TestServerSpoolSegmentsAndCompact(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewServer(ServerOptions{SpoolDir: dir, SpoolSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	for i := 0; i < 8; i++ {
		b := srvBatch("p1", fmt.Sprintf("k%d", i), i, srvRec("p1", "app", float64(i+1)))
		if resp := postBatch(t, ts1, "", b, "p1"); resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: %s", i, resp.Status)
		}
	}
	if segs, keys, err := s1.CompactSpool(); err != nil || segs == 0 || keys == 0 {
		t.Fatalf("server compact: segs=%d keys=%d err=%v", segs, keys, err)
	}
	ts1.Close()
	s1.Close()

	s2, err := NewServer(ServerOptions{SpoolDir: dir, SpoolSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.DedupKeys(); got != 8 {
		t.Errorf("keys after restart: %d", got)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	b := srvBatch("p1", "k0", 0, srvRec("p1", "app", 1))
	postBatch(t, ts2, "", b, "p1")
	if st := s2.Stats(); st.Duplicates != 1 {
		t.Errorf("post-compact post-restart dedup: %+v", st)
	}
}

// --- retention modes and sketched aggregates ---

func TestServerRetainOff(t *testing.T) {
	s, err := NewServer(ServerOptions{RetainRecords: RetainOff})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	for i := 0; i < 50; i++ {
		dev := fmt.Sprintf("p%d", i%5)
		b := srvBatch(dev, fmt.Sprintf("%s/k%d", dev, i), i, srvRec("", "com.app", float64(10+i)))
		if resp := postBatch(t, ts, "", b, dev); resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: %s", i, resp.Status)
		}
	}
	if recs := s.Records(); recs != nil {
		t.Errorf("retain-off server kept %d records", len(recs))
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/records")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("retain-off /v1/records: %s", resp.Status)
	}
	// The sketched aggregates are all still there.
	sum := s.Summary()
	if sum.RetainRecords {
		t.Error("summary claims retention")
	}
	if sum.Stats.Records != 50 || sum.TCPRecords != 50 {
		t.Errorf("summary counts: %+v", sum.Stats)
	}
	qs, ok := sum.PerApp["com.app"]
	if !ok || qs.N != 50 {
		t.Fatalf("per-app sketch: %+v", sum.PerApp)
	}
	// Samples are 10..59 ms; the sketched median must sit inside with
	// 1% relative accuracy.
	if qs.P50MS < 33 || qs.P50MS > 36 {
		t.Errorf("sketched median of 10..59: %g", qs.P50MS)
	}
}

// The sketched per-app medians agree with the exact medians computed
// from the very records the server accepted, within alpha.
func TestServerSummaryVsExact(t *testing.T) {
	s, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	apps := []string{"com.a", "com.b", "com.c"}
	for i := 0; i < 120; i++ {
		dev := fmt.Sprintf("p%d", i%7)
		app := apps[i%len(apps)]
		// Heavy-tailed-ish spread: keep the sketch honest.
		ms := 5 + float64(i%40)*float64(1+i%3)*3.5
		b := srvBatch(dev, fmt.Sprintf("%s/k%d", dev, i), i, srvRec("", app, ms))
		if resp := postBatch(t, ts, "", b, dev); resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: %s", i, resp.Status)
		}
	}
	exact := measure.AppMedians(s.Records(), 1)
	sum := s.Summary()
	sketched := sum.AppMedians(1)
	if len(sketched) != len(exact) {
		t.Fatalf("app sets differ: sketched %v exact %v", sketched, exact)
	}
	for app, want := range exact {
		got, ok := sketched[app]
		if !ok {
			t.Fatalf("app %s missing from sketch", app)
		}
		// Nearest-rank vs interpolated median differ by at most one
		// sample step; allow alpha plus a neighbouring-sample slack.
		if relErr(got, want) > 0.12 {
			t.Errorf("app %s: sketched median %g vs exact %g", app, got, want)
		}
		if ms, ok := s.AppMedianMS(app); !ok || ms != got {
			t.Errorf("AppMedianMS(%s) = %g, %v; summary says %g", app, ms, ok, got)
		}
	}
	if got := sum.TopApps(2); len(got) != 2 {
		t.Errorf("TopApps: %v", got)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// --- ShardedServer ---

func shardedUpload(t *testing.T, ts *httptest.Server, token string, n int) []measure.Batch {
	t.Helper()
	var batches []measure.Batch
	for i := 0; i < n; i++ {
		dev := fmt.Sprintf("phone-%02d", i%13)
		b := srvBatch(dev, fmt.Sprintf("%s/k%d", dev, i), i,
			srvRec("", fmt.Sprintf("com.app%d", i%4), 5+float64(i%50)*2.5))
		batches = append(batches, b)
		if resp := postBatch(t, ts, token, b, dev); resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: %s", i, resp.Status)
		}
	}
	return batches
}

// The sharded collector accepts, dedups, and its merged Summary is
// identical to an unsharded Server fed the same batches — the fan-in
// is exact.
func TestShardedServerMatchesUnsharded(t *testing.T) {
	ss, err := NewShardedServer(ServerOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ss)
	defer ts.Close()
	batches := shardedUpload(t, ts, "", 60)
	// Redeliver everything: all absorbed, none double-counted.
	for _, b := range batches {
		if resp := postBatch(t, ts, "", b, b.Device); resp.StatusCode != http.StatusOK {
			t.Fatalf("redelivery: %s", resp.Status)
		}
	}
	st := ss.Stats()
	if st.Batches != 60 || st.Duplicates != 60 || st.Records != 60 {
		t.Fatalf("sharded stats: %+v", st)
	}

	// Feed the identical batches to one Server and compare summaries.
	ref, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tsRef := httptest.NewServer(ref)
	defer tsRef.Close()
	for _, b := range batches {
		postBatch(t, tsRef, "", b, b.Device)
	}
	got, want := ss.Summary(), ref.Summary()
	if got.TCPRecords != want.TCPRecords || got.DNSRecords != want.DNSRecords {
		t.Errorf("kind counts: %+v vs %+v", got, want)
	}
	for app, w := range want.PerApp {
		g, ok := got.PerApp[app]
		if !ok {
			t.Fatalf("app %s missing from sharded summary", app)
		}
		// Bin-wise merge is exact: counts, quantiles, min and max are
		// bit-identical however the shards split; only the mean's
		// float additions reassociate.
		if g.N != w.N || g.P50MS != w.P50MS || g.P90MS != w.P90MS || g.P99MS != w.P99MS ||
			g.MinMS != w.MinMS || g.MaxMS != w.MaxMS {
			t.Errorf("app %s: sharded %+v vs unsharded %+v", app, g, w)
		}
		if relErr(g.MeanMS, w.MeanMS) > 1e-9 {
			t.Errorf("app %s mean: %g vs %g", app, g.MeanMS, w.MeanMS)
		}
	}

	// The merged record stream carries the full dataset (order is
	// shard-dependent; compare as sets).
	resp, err := ts.Client().Get(ts.URL + "/v1/records")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	streamed, err := measure.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecordSet(streamed, ref.Records()) {
		t.Error("sharded record stream diverges from the accepted dataset")
	}
	if !sameRecordSet(ss.Records(), ref.Records()) {
		t.Error("sharded Records() diverges from the accepted dataset")
	}
	if ds := ss.Ingest(); len(ds.Records) != 60 {
		t.Error("sharded ingest lost records")
	}
	if _, ok := ss.AppMedianMS("com.app1"); !ok {
		t.Error("AppMedianMS found nothing")
	}
	if ss.DedupKeys() != 60 {
		t.Errorf("dedup keys: %d", ss.DedupKeys())
	}
}

func sameRecordSet(a, b []measure.Record) bool {
	if len(a) != len(b) {
		return false
	}
	ka, kb := recordKeys(a), recordKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func recordKeys(recs []measure.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = fmt.Sprintf("%s|%s|%s|%d", r.Device, r.App, r.RTT, r.UID)
	}
	sort.Strings(out)
	return out
}

// Sharded spools live in per-shard subdirectories and replay on
// restart with dedup intact.
func TestShardedServerSpoolRestart(t *testing.T) {
	dir := t.TempDir()
	ss1, err := NewShardedServer(ServerOptions{SpoolDir: dir}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(ss1)
	batches := shardedUpload(t, ts1, "", 20)
	ts1.Close()
	if err := ss1.Close(); err != nil {
		t.Fatal(err)
	}
	// Shards that accepted batches spooled into their own subdirs.
	subdirs, _ := filepath.Glob(filepath.Join(dir, "shard-*"))
	if len(subdirs) != 4 {
		t.Fatalf("shard spool dirs: %v", subdirs)
	}

	ss2, err := NewShardedServer(ServerOptions{SpoolDir: dir}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	if st := ss2.Stats(); st.Batches != 20 || st.Records != 20 {
		t.Fatalf("replayed sharded stats: %+v", st)
	}
	ts2 := httptest.NewServer(ss2)
	defer ts2.Close()
	for _, b := range batches[:5] {
		if resp := postBatch(t, ts2, "", b, b.Device); resp.StatusCode != http.StatusOK {
			t.Fatalf("redelivery: %s", resp.Status)
		}
	}
	if st := ss2.Stats(); st.Duplicates != 5 || st.Batches != 20 {
		t.Errorf("post-restart sharded dedup: %+v", st)
	}
	// Compaction sweeps every shard without error.
	if _, _, err := ss2.CompactSpools(); err != nil {
		t.Errorf("sharded compact: %v", err)
	}
}

func TestShardedServerAuthAndRetainOff(t *testing.T) {
	ss, err := NewShardedServer(ServerOptions{Token: "tok", RetainRecords: RetainOff}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ss)
	defer ts.Close()

	b := srvBatch("p1", "k1", 1, srvRec("", "a", 7))
	if resp := postBatch(t, ts, "wrong", b, "p1"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad token upload: %s", resp.Status)
	}
	if resp := postBatch(t, ts, "tok", b, "p1"); resp.StatusCode != http.StatusOK {
		t.Errorf("honest upload: %s", resp.Status)
	}
	// Merged reads sit behind the token too.
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("tokenless stats: %s", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/records", nil)
	req.Header.Set("Authorization", "Bearer tok")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("retain-off sharded records: %s", resp.Status)
	}
	// Health stays open.
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("health: %s", resp.Status)
	}
}

// Device-stamp hashing spreads a fleet roster across shards instead of
// piling onto a few.
func TestHashDeviceSpread(t *testing.T) {
	const shards = 16
	counts := make([]int, shards)
	for i := 0; i < 1600; i++ {
		counts[hashDevice(fmt.Sprintf("phone-%04d", i))&(shards-1)]++
	}
	for i, c := range counts {
		if c < 50 || c > 200 {
			t.Errorf("shard %d holds %d of 1600 structured stamps", i, c)
		}
	}
	// Same stamp, same shard — the dedup invariant.
	if hashDevice("phone-0007") != hashDevice("phone-0007") {
		t.Error("hash is not stable")
	}
}

// The legacy single-file spool (pre-rotation layout) still opens and
// replays: segment 0 keeps the old name.
func TestSpoolLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	// Write a legacy spool by hand: one file, wire-encoded batches.
	f, err := os.Create(filepath.Join(dir, spoolFile))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := measure.EncodeBatch(f, srvBatch("p1", fmt.Sprintf("k%d", i), i, srvRec("p1", "a", 1))); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	_, rep, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Batches) != 3 || rep.Segments != 1 {
		t.Errorf("legacy replay: %d batches, %d segments", len(rep.Batches), rep.Segments)
	}
}
