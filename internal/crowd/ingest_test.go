package crowd

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/measure"
)

func ingestRec(kind measure.Kind, app, device, netType, isp, country string, ms float64) measure.Record {
	return measure.Record{
		Kind: kind, App: app, Device: device, NetType: netType,
		ISP: isp, Country: country,
		RTT: time.Duration(ms * float64(time.Millisecond)),
		At:  DeployStart,
	}
}

func TestIngestReconstructsDevices(t *testing.T) {
	recs := []measure.Record{
		ingestRec(measure.KindTCP, "com.app.a", "phone-1", "WiFi", "WiFi HK", "Hong Kong", 40),
		ingestRec(measure.KindTCP, "com.app.a", "phone-1", "LTE", "3 HK", "Hong Kong", 55),
		ingestRec(measure.KindDNS, "system.dns", "phone-1", "LTE", "3 HK", "Hong Kong", 50),
		ingestRec(measure.KindTCP, "com.app.b", "phone-2", "3G", "Cricket", "USA", 120),
		ingestRec(measure.KindTCP, "com.app.b", "", "WiFi", "", "", 30), // anonymous
	}
	ds := Ingest(recs)
	if len(ds.Records) != len(recs) {
		t.Fatalf("records: %d", len(ds.Records))
	}
	if len(ds.Devices) != 3 {
		t.Fatalf("devices: %d (%+v)", len(ds.Devices), ds.Devices)
	}
	d1 := ds.DeviceByID("phone-1")
	if d1 == nil {
		t.Fatal("phone-1 missing")
	}
	if d1.Country != "Hong Kong" || d1.CellISP != "3 HK" || d1.Gen != "LTE" {
		t.Errorf("phone-1 metadata: %+v", d1)
	}
	if d1.Activity != 3 {
		t.Errorf("phone-1 activity: %d", d1.Activity)
	}
	if want := 1.0 / 3.0; d1.WiFiShare < want-0.01 || d1.WiFiShare > want+0.01 {
		t.Errorf("phone-1 wifi share: %f", d1.WiFiShare)
	}
	d2 := ds.DeviceByID("phone-2")
	if d2 == nil || d2.Gen != "3G" || d2.CellISP != "Cricket" {
		t.Errorf("phone-2 metadata: %+v", d2)
	}
	if ds.DeviceByID(anonDeviceID) == nil {
		t.Error("anonymous records got no device")
	}
}

// The ingested dataset must flow through the §4.2 analysis pipeline:
// summary, contribution buckets, per-app aggregation.
func TestIngestFeedsAnalysis(t *testing.T) {
	var recs []measure.Record
	for i := 0; i < 40; i++ {
		recs = append(recs, ingestRec(measure.KindTCP, "com.app.hot", "phone-1", "LTE", "Verizon", "USA", 45))
	}
	for i := 0; i < 5; i++ {
		recs = append(recs, ingestRec(measure.KindDNS, "system.dns", "phone-1", "LTE", "Verizon", "USA", 46))
	}
	ds := Ingest(recs)
	sum := ds.Summary()
	if !strings.Contains(sum, "45 measurements (40 TCP, 5 DNS) from 1 devices") {
		t.Errorf("summary: %s", sum)
	}
	b := Fig6aUsers(ds)
	if b.Over10K+b.K5to10+b.K1to5+b.H100to1K == 0 {
		t.Errorf("device fell out of every contribution bucket: %+v", b)
	}
	top := Fig7TopCountries(ds, 5)
	if len(top) != 1 || top[0].Name != "USA" || top[0].Devices != 1 {
		t.Errorf("countries: %+v", top)
	}
}

// Ingest must be deterministic: same records, same dataset, regardless
// of internal map iteration.
func TestIngestDeterministic(t *testing.T) {
	recs := []measure.Record{
		ingestRec(measure.KindTCP, "a", "p1", "LTE", "ispA", "X", 10),
		ingestRec(measure.KindTCP, "a", "p1", "LTE", "ispB", "Y", 10), // tied ISP counts
		ingestRec(measure.KindTCP, "a", "p2", "WiFi", "w", "X", 10),
	}
	first := Ingest(recs)
	for i := 0; i < 10; i++ {
		again := Ingest(recs)
		if len(again.Devices) != len(first.Devices) {
			t.Fatalf("device count varies: %d vs %d", len(again.Devices), len(first.Devices))
		}
		for j := range first.Devices {
			if !reflect.DeepEqual(again.Devices[j], first.Devices[j]) {
				t.Fatalf("device %d varies:\n%+v\n%+v", j, again.Devices[j], first.Devices[j])
			}
		}
	}
}
