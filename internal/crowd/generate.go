package crowd

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/measure"
)

// Config sizes a generated dataset.
type Config struct {
	// Scale is the fraction of the paper's dataset to generate: 1.0
	// yields ~5.25M records from ~2,351 devices; 0.05 a fast test set.
	Scale float64
	// Seed drives all randomness; identical configs generate identical
	// datasets.
	Seed int64
}

// DefaultConfig generates a tenth-scale dataset, large enough for every
// analysis to be stable.
func DefaultConfig() Config { return Config{Scale: 0.1, Seed: 2016} }

// Dataset is one generated crowdsourced dataset.
type Dataset struct {
	Records []measure.Record
	Devices []*Device
	Scale   float64

	apps []*appModel
}

// Generate builds a dataset calibrated to the paper's published
// marginals.
func Generate(cfg Config) *Dataset {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	devices := generateDevices(rng, cfg.Scale)
	apps := buildApps(rng)

	ds := &Dataset{Devices: devices, Scale: cfg.Scale, apps: apps}

	// Cumulative weights for device (by activity) and app (by volume)
	// sampling.
	devCum := make([]float64, len(devices))
	var devTotal float64
	for i, d := range devices {
		devTotal += float64(d.Activity)
		devCum[i] = devTotal
	}
	appCum := make([]float64, len(apps))
	var appTotal float64
	for i, a := range apps {
		appTotal += a.Weight
		appCum[i] = appTotal
	}

	total := int(math.Round(PaperTotalMeasurements * cfg.Scale))
	tcpShare := float64(PaperTCPMeasurements) / float64(PaperTotalMeasurements)
	window := DeployEnd.Sub(DeployStart)

	ds.Records = make([]measure.Record, 0, total)
	for i := 0; i < total; i++ {
		d := devices[cumPick(devCum, rng.Float64()*devTotal)]
		net, isp := sampleNetwork(rng, d)
		at := DeployStart.Add(time.Duration(rng.Int63n(int64(window))))
		if rng.Float64() < tcpShare {
			a := apps[cumPick(appCum, rng.Float64()*appTotal)]
			dom := a.pickDomain(rng)
			base := a.BaseMS
			if dom.BaseMS > 0 {
				base = dom.BaseMS
			}
			rtt := tcpRTT(rng, base, net, isp)
			ds.Records = append(ds.Records, measure.Record{
				Kind:    measure.KindTCP,
				App:     a.Package,
				Dst:     domainAddr(dom.Name, rng),
				Domain:  dom.Name,
				RTT:     rtt,
				At:      at,
				NetType: net,
				ISP:     isp,
				Country: d.Country,
				Device:  d.ID,
			})
		} else {
			rtt := dnsRTT(rng, net, isp)
			ds.Records = append(ds.Records, measure.Record{
				Kind:    measure.KindDNS,
				App:     "system.dns",
				Dst:     dnsServerAddr(isp, rng),
				Domain:  apps[cumPick(appCum, rng.Float64()*appTotal)].pickDomain(rng).Name,
				RTT:     rtt,
				At:      at,
				NetType: net,
				ISP:     isp,
				Country: d.Country,
				Device:  d.ID,
			})
		}
	}
	return ds
}

// cumPick binary-searches a cumulative weight array.
func cumPick(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sampleNetwork draws the measurement's network type and ISP label.
func sampleNetwork(rng *rand.Rand, d *Device) (netType, isp string) {
	if rng.Float64() < d.WiFiShare {
		return "WiFi", d.WiFiISP
	}
	isp = d.CellISP
	p := rng.Float64()
	nonLTE := nonLTEShareFor(isp)
	switch {
	case p < 0.02:
		return "2G", isp
	case p < 0.02+math.Max(nonLTE, 0.15):
		return "3G", isp
	default:
		return "LTE", isp
	}
}

// tcpRTT samples one app-traffic RTT in the generative model: app (or
// domain) base, network-type factor, ISP effect, lognormal noise.
func tcpRTT(rng *rand.Rand, baseMS float64, netType, isp string) time.Duration {
	f := 1.0
	switch netType {
	case "WiFi":
		f = wifiAppFactor
	case "LTE":
		f = lteAppFactor
	case "3G":
		f = g3AppFactor
	case "2G":
		f = g2AppFactor
	}
	// Jio's LTE core inflates app traffic but not DNS (§4.2.2 Case 2).
	if isp == "Jio 4G" && netType != "WiFi" {
		f *= jioAppMedianMS / (jioDNSMedianMS * 1.25)
	}
	ms := baseMS * f * math.Exp(rng.NormFloat64()*0.55)
	if ms < 3 {
		ms = 3
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// dnsRTT samples one DNS RTT per the Figure 10/11 calibration.
func dnsRTT(rng *rand.Rand, netType, isp string) time.Duration {
	var ms float64
	switch netType {
	case "WiFi":
		ms = wifiDNSMedianMS * math.Exp(rng.NormFloat64()*0.5)
	case "3G":
		ms = g3DNSMedianMS * math.Exp(rng.NormFloat64()*0.5)
	case "2G":
		ms = g2DNSMedianMS * math.Exp(rng.NormFloat64()*0.5)
	default: // LTE
		spec, ok := lteSpecFor(isp)
		median := float64(defaultLTEDNSMedianMS)
		if ok {
			median = spec.MedianMS
		}
		if ok && spec.FastShare > 0 && rng.Float64() < spec.FastShare {
			// Singtel's Tri-band 4G+ floor: single-digit first hops.
			ms = 3 + rng.Float64()*7
		} else if ok && spec.FloorMS > 0 {
			// Cricket / U.S. Cellular: hard floor near 43 ms.
			ms = spec.FloorMS + (median-spec.FloorMS)*math.Exp(rng.NormFloat64()*0.6)
		} else {
			ms = median * math.Exp(rng.NormFloat64()*0.45)
		}
	}
	if ms < 2 {
		ms = 2
	}
	return time.Duration(ms * float64(time.Millisecond))
}

func lteSpecFor(isp string) (lteISPSpec, bool) {
	for _, s := range lteISPs {
		if s.Name == isp {
			return s, true
		}
	}
	return lteISPSpec{}, false
}

// domainAddr maps a domain to one of its stable fake addresses; each
// domain resolves to a few IPs (the dataset saw ~3 IPs per domain) and
// mostly standard ports.
func domainAddr(domain string, rng *rand.Rand) netip.AddrPort {
	h := fnv.New32a()
	h.Write([]byte(domain))
	ipCount := int(h.Sum32()%3) + 1
	h.Write([]byte{byte(rng.Intn(ipCount))})
	v := h.Sum32()
	addr := netip.AddrFrom4([4]byte{byte(v>>24)%223 + 1, byte(v >> 16), byte(v >> 8), byte(v)%254 + 1})
	var port uint16
	switch p := rng.Float64(); {
	case p < 0.72:
		port = 443
	case p < 0.90:
		port = 80
	default:
		port = uint16(1024 + v%50000)
	}
	return netip.AddrPortFrom(addr, port)
}

// dnsServerAddr returns one of the ISP's resolver addresses (the
// dataset saw 943+ distinct DNS servers).
func dnsServerAddr(isp string, rng *rand.Rand) netip.AddrPort {
	h := fnv.New32a()
	h.Write([]byte(isp))
	h.Write([]byte{byte(rng.Intn(4))})
	v := h.Sum32()
	addr := netip.AddrFrom4([4]byte{byte(v>>24)%223 + 1, byte(v >> 16), byte(v >> 8), byte(v)%254 + 1})
	return netip.AddrPortFrom(addr, 53)
}

// TCP returns the app-traffic records.
func (ds *Dataset) TCP() []measure.Record {
	return filterKind(ds.Records, measure.KindTCP)
}

// DNS returns the DNS records.
func (ds *Dataset) DNS() []measure.Record {
	return filterKind(ds.Records, measure.KindDNS)
}

func filterKind(recs []measure.Record, k measure.Kind) []measure.Record {
	var out []measure.Record
	for _, r := range recs {
		if r.Kind == k {
			out = append(out, r)
		}
	}
	return out
}

// AppLabel resolves a package name to its human label.
func (ds *Dataset) AppLabel(pkg string) string {
	for _, a := range ds.apps {
		if a.Package == pkg {
			return a.Label
		}
	}
	return pkg
}

// ScaledThreshold converts a full-scale count threshold (e.g. Figure
// 6's 1K cutoff) to this dataset's scale, with a floor of 2.
func (ds *Dataset) ScaledThreshold(fullScale int) int {
	t := int(math.Round(float64(fullScale) * ds.Scale))
	if t < 2 {
		t = 2
	}
	return t
}

// DeviceByID finds a device.
func (ds *Dataset) DeviceByID(id string) *Device {
	for _, d := range ds.Devices {
		if d.ID == id {
			return d
		}
	}
	return nil
}

// Summary describes the dataset the way §4.2.1 does.
func (ds *Dataset) Summary() string {
	tcp, dns := 0, 0
	ips := make(map[netip.Addr]struct{})
	domains := make(map[string]struct{})
	ports := make(map[uint16]struct{})
	servers := make(map[netip.AddrPort]struct{})
	for _, r := range ds.Records {
		if r.Kind == measure.KindTCP {
			tcp++
			ips[r.Dst.Addr()] = struct{}{}
			ports[r.Dst.Port()] = struct{}{}
			domains[r.Domain] = struct{}{}
		} else {
			dns++
			servers[r.Dst] = struct{}{}
		}
	}
	countries := make(map[string]struct{})
	models := make(map[string]struct{})
	locations := 0
	for _, d := range ds.Devices {
		countries[d.Country] = struct{}{}
		models[d.Model] = struct{}{}
		locations += len(d.Locations)
	}
	return fmt.Sprintf(
		"dataset: %d measurements (%d TCP, %d DNS) from %d devices (%d models), "+
			"%d countries, %d locations; %d dst IPs, %d domains, %d ports, %d DNS servers (scale %.2f)",
		len(ds.Records), tcp, dns, len(ds.Devices), len(models),
		len(countries), locations, len(ips), len(domains), len(ports), len(servers), ds.Scale)
}
