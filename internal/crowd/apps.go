package crowd

import (
	"fmt"
	"math"
	"math/rand"
)

// appModel is one generated app with its traffic calibration.
type appModel struct {
	Package  string
	Label    string
	Category string
	// Weight is the app's share of TCP measurements (its target count
	// at full scale).
	Weight float64
	// BaseMS is the app's base RTT; per-record RTTs multiply in network
	// and ISP factors plus lognormal noise.
	BaseMS float64
	// Domains the app contacts; per-domain base overrides support the
	// Whatsapp split.
	Domains []domainModel
}

type domainModel struct {
	Name string
	// BaseMS overrides the app base when positive.
	BaseMS float64
	// Weight is the domain's share of the app's traffic.
	Weight float64
}

// appBaseDivisor converts a published overall median into the app base:
// the overall median folds in the network-factor mixture, whose median
// sits near the WiFi factor.
const appBaseDivisor = 0.92

// fig6bBuckets is Figure 6(b): of the 1,549 apps with at least 100
// measurements, 60 exceed 10K, 58 sit in 5–10K, 306 in 1–5K, 1,125 in
// 100–1K. All 16 Table 5 apps are in the >10K group.
var fig6bBuckets = []struct {
	Apps     int
	MinCount int
	MaxCount int
}{
	{60 - len(repApps), 10000, 60000},
	{58, 5000, 10000},
	{306, 1000, 5000},
	{1125, 100, 1000},
	{PaperApps - 1549, 1, 100},
}

// buildApps constructs the full app population: the 16 representative
// apps calibrated to Table 5, plus a popularity-decaying tail out to
// 6,266 apps.
func buildApps(rng *rand.Rand) []*appModel {
	apps := make([]*appModel, 0, PaperApps)
	for _, s := range repApps {
		a := &appModel{
			Package:  s.Package,
			Label:    s.Label,
			Category: s.Category,
			Weight:   float64(s.PaperN),
			BaseMS:   s.MedianMS / appBaseDivisor,
		}
		if s.Package == "com.whatsapp" {
			a.Domains = whatsappDomainModels()
		} else {
			for _, d := range s.Domains {
				w := 1.0
				if d == "graph.facebook.com" {
					// The single most accessed domain in the dataset:
					// 142,873 of Facebook's 215,769 connections.
					w = 4.0
				}
				a.Domains = append(a.Domains, domainModel{Name: d, Weight: w})
			}
		}
		apps = append(apps, a)
	}
	idx := 0
	for _, b := range fig6bBuckets {
		for i := 0; i < b.Apps; i++ {
			idx++
			span := math.Log(float64(b.MaxCount) / float64(b.MinCount))
			count := float64(b.MinCount) * math.Exp(rng.Float64()*span)
			// Tail app medians: lognormal around 70 ms with a heavy
			// right tail, which produces the slow 10% of apps Figure
			// 9(b) shows above 200 ms.
			base := 70 * math.Exp(rng.NormFloat64()*0.85)
			a := &appModel{
				Package:  fmt.Sprintf("app.tail%04d.android", idx),
				Label:    fmt.Sprintf("TailApp %d", idx),
				Category: "Other",
				Weight:   count,
				BaseMS:   base,
			}
			nd := 1 + rng.Intn(8)
			for d := 0; d < nd; d++ {
				a.Domains = append(a.Domains, domainModel{
					Name:   fmt.Sprintf("api%d.app%04d.example", d, idx),
					Weight: 1,
				})
			}
			apps = append(apps, a)
		}
	}
	return apps
}

// whatsappDomainModels builds the 334 whatsapp.net domains: three fast
// ones on the Facebook CDN carrying roughly half the traffic, and 331
// slow ones on SoftLayer (§4.2.2 Case 1).
func whatsappDomainModels() []domainModel {
	out := make([]domainModel, 0, whatsappDomains)
	fastNames := []string{"mme.whatsapp.net", "mmg.whatsapp.net", "pps.whatsapp.net"}
	for _, n := range fastNames {
		out = append(out, domainModel{
			Name:   n,
			BaseMS: whatsappFastMedianMS / appBaseDivisor,
			// The three CDN domains together carry over half the
			// app's connections, which is what pulls the app's overall
			// median down to Table 5's 133 ms while the SoftLayer
			// domains sit at 261 ms.
			Weight: 185,
		})
	}
	for i := 0; i < whatsappDomains-whatsappFastDomains; i++ {
		out = append(out, domainModel{
			Name:   fmt.Sprintf("e%d.whatsapp.net", i+1),
			BaseMS: whatsappSlowMedianMS / appBaseDivisor,
			Weight: 1,
		})
	}
	return out
}

// pickDomain samples one of the app's domains by weight.
func (a *appModel) pickDomain(rng *rand.Rand) domainModel {
	if len(a.Domains) == 0 {
		return domainModel{Name: a.Package + ".example"}
	}
	var sum float64
	for _, d := range a.Domains {
		sum += d.Weight
	}
	x := rng.Float64() * sum
	for _, d := range a.Domains {
		x -= d.Weight
		if x <= 0 {
			return d
		}
	}
	return a.Domains[len(a.Domains)-1]
}
