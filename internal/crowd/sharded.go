package crowd

import (
	"fmt"
	"net/http"
	"path/filepath"

	"repro/internal/measure"
	"repro/internal/sketch"
)

// ShardedServer scales the collector past one Server's spool: N
// complete Server shards (each with its own spool directory, dedup
// state, and sketches) behind a thin router that sends every upload to
// the shard owning its device stamp, plus a fan-in merger that folds
// the shard sketches and counters into one combined /v1/stats.
//
// Routing is by the same device-stamp hash the Servers use internally,
// so a device's retries always land on the same shard and the
// per-shard idempotency-key dedup keeps the exactly-once guarantee —
// the fleet e2e's byte-identical-dataset property holds under sharding
// unchanged. Because sketch merges are exact (bin-wise addition), the
// combined Summary is identical to what one unsharded Server would
// have produced from the same records.

// DefaultServerShards is the shard count used when NewShardedServer is
// given n <= 0.
const DefaultServerShards = 4

// ShardedServer is an http.Handler fronting N collector shards.
type ShardedServer struct {
	o      ServerOptions
	shards []*Server
	mask   uint64
	mux    *http.ServeMux
}

// NewShardedServer builds n collector shards (rounded up to a power of
// two; n <= 0 selects DefaultServerShards) from a common option set.
// When o.SpoolDir is set, shard i spools under "<dir>/shard-00i" —
// per-shard spools never contend on one file.
func NewShardedServer(o ServerOptions, n int) (*ShardedServer, error) {
	if n <= 0 {
		n = DefaultServerShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	ss := &ShardedServer{o: o, shards: make([]*Server, size), mask: uint64(size - 1)}
	for i := range ss.shards {
		so := o
		if o.SpoolDir != "" {
			so.SpoolDir = filepath.Join(o.SpoolDir, fmt.Sprintf("shard-%03d", i))
		}
		srv, err := NewServer(so)
		if err != nil {
			for _, s := range ss.shards[:i] {
				s.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		ss.shards[i] = srv
	}
	mux := http.NewServeMux()
	// Uploads route whole to the owning shard, which performs its own
	// auth, dedup, spool, and commit — the router adds no locking.
	mux.HandleFunc("POST /v1/upload", func(w http.ResponseWriter, r *http.Request) {
		ss.route(r.Header.Get(DeviceHeader)).ServeHTTP(w, r)
	})
	// The read side is served by the fan-in merger, behind the same
	// token gate the shards apply.
	mux.HandleFunc("GET /v1/stats", ss.handleStats)
	mux.HandleFunc("GET /v1/records", ss.handleRecords)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if o.ExposeMetrics {
		mux.Handle("GET /metrics", ss.MetricsHandler())
	}
	ss.mux = mux
	return ss, nil
}

// route returns the shard owning a device stamp. A missing stamp
// routes to shard 0, whose upload handler rejects it.
func (ss *ShardedServer) route(device string) *Server {
	return ss.shards[hashDevice(device)&ss.mask]
}

// ServeHTTP dispatches the combined collector API.
func (ss *ShardedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if ss.o.Token != "" && r.URL.Path != "/healthz" && r.URL.Path != "/v1/upload" &&
		!(ss.o.ExposeMetrics && r.URL.Path == "/metrics") && !authorized(r, ss.o.Token) {
		http.Error(w, "bad token", http.StatusUnauthorized)
		return
	}
	ss.mux.ServeHTTP(w, r)
}

func (ss *ShardedServer) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, ss.Summary())
}

func (ss *ShardedServer) handleRecords(w http.ResponseWriter, r *http.Request) {
	if !ss.o.retain() {
		http.Error(w, "record retention disabled (RetainRecords=off); only /v1/stats aggregates exist", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	enc := measure.NewJSONLEncoder(w)
	for _, s := range ss.shards {
		if err := s.streamRecords(enc); err != nil {
			return
		}
	}
	enc.Flush()
}

// Records concatenates every shard's dataset in shard order. Nil when
// retention is off.
func (ss *ShardedServer) Records() []measure.Record {
	if !ss.o.retain() {
		return nil
	}
	var out []measure.Record
	for _, s := range ss.shards {
		out = append(out, s.Records()...)
	}
	return out
}

// Ingest assembles the combined dataset for the analysis pipeline.
func (ss *ShardedServer) Ingest() *Dataset {
	return Ingest(ss.Records())
}

// Stats sums the shard counters.
func (ss *ShardedServer) Stats() ServerStats {
	var t ServerStats
	for _, s := range ss.shards {
		st := s.Stats()
		t.Batches += st.Batches
		t.Records += st.Records
		t.Duplicates += st.Duplicates
		t.AuthFailures += st.AuthFailures
		t.BadRequests += st.BadRequests
	}
	return t
}

// Summary merges every shard's sketches into the combined /v1/stats
// document — exact, because sketch merge is bin-wise addition.
func (ss *ShardedServer) Summary() Summary {
	merged := newAgg(ss.o.alpha())
	for _, s := range ss.shards {
		merged.merge(s.mergedAgg())
	}
	perApp, perNet := merged.render()
	return Summary{
		Stats:            ss.Stats(),
		TCPRecords:       merged.tcp,
		DNSRecords:       merged.dns,
		RelativeAccuracy: ss.o.alpha(),
		Shards:           len(ss.shards),
		RetainRecords:    ss.o.retain(),
		PerApp:           perApp,
		PerNet:           perNet,
	}
}

// AppMedianMS merges one app's sketches across all shards.
func (ss *ShardedServer) AppMedianMS(app string) (ms float64, ok bool) {
	merged := sketch.New(ss.o.alpha())
	for _, s := range ss.shards {
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			if sk := sh.agg.perApp[app]; sk != nil {
				merged.Merge(sk)
			}
			sh.mu.Unlock()
		}
	}
	if merged.Count() == 0 {
		return 0, false
	}
	return merged.Median(), true
}

// DedupKeys totals idempotency keys held across shards.
func (ss *ShardedServer) DedupKeys() int {
	t := 0
	for _, s := range ss.shards {
		t += s.DedupKeys()
	}
	return t
}

// CompactSpools compacts every shard's spool, totalling dropped
// segments and preserved keys; the first error stops the sweep.
func (ss *ShardedServer) CompactSpools() (segments, keys int, err error) {
	for _, s := range ss.shards {
		sg, k, err := s.CompactSpool()
		segments += sg
		keys += k
		if err != nil {
			return segments, keys, err
		}
	}
	return segments, keys, nil
}

// Servers exposes the underlying shards (read-only use: tests and the
// load harness inspect per-shard state).
func (ss *ShardedServer) Servers() []*Server { return ss.shards }

// Close releases every shard's spool, returning the first error.
func (ss *ShardedServer) Close() error {
	var first error
	for _, s := range ss.shards {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
