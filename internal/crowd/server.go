package crowd

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/measure"
)

// Server is the collector side of the crowdsourcing wire protocol:
// the net/http handler behind `cmd/collectord`. Phones POST batches
// (measure wire encoding) to /v1/upload; the server authenticates the
// device stamp (and the shared token, when configured), deduplicates
// on the batch idempotency key, appends accepted batches to a durable
// spool, and keeps the dataset in memory so /v1/records and Ingest()
// can feed the §4.2 analysis pipeline at any moment. Exactly-once
// records from at-least-once delivery: the upload transport retries
// freely, the key dedup makes redelivery harmless.

// Upload protocol headers.
const (
	// DeviceHeader carries the uploading phone's device stamp; it must
	// be present and match the batch header's device.
	DeviceHeader = "X-Mopeye-Device"
)

// ServerOptions configures a collector server.
type ServerOptions struct {
	// SpoolDir, when non-empty, is the durable spool directory: every
	// accepted batch is appended there, and an existing spool is
	// replayed at construction (records and dedup keys both survive a
	// restart). Empty keeps the dataset memory-only.
	SpoolDir string
	// Token, when non-empty, is the shared bearer token every request
	// must present ("Authorization: Bearer <token>").
	Token string
	// MaxBatchBytes bounds one upload body. Default 8 MiB.
	MaxBatchBytes int64
}

// ServerStats counts what the server has seen.
type ServerStats struct {
	// Batches accepted (excluding duplicates), and Records within them.
	Batches int
	Records int
	// Duplicates is redelivered batches absorbed by key dedup.
	Duplicates int
	// AuthFailures counts rejected tokens and device-stamp mismatches.
	AuthFailures int
	// BadRequests counts malformed uploads.
	BadRequests int
}

// Server is the HTTP collector. It implements http.Handler.
type Server struct {
	o   ServerOptions
	mux *http.ServeMux

	mu    sync.Mutex
	keys  map[string]struct{}
	recs  []measure.Record
	spool *Spool
	stats ServerStats
}

// NewServer builds a collector server, replaying the spool when one is
// configured.
func NewServer(o ServerOptions) (*Server, error) {
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 8 << 20
	}
	s := &Server{o: o, keys: make(map[string]struct{})}
	if o.SpoolDir != "" {
		spool, batches, err := OpenSpool(o.SpoolDir)
		if err != nil {
			return nil, err
		}
		s.spool = spool
		for _, b := range batches {
			s.keys[b.Key] = struct{}{}
			s.recs = append(s.recs, stampRecords(b)...)
			s.stats.Batches++
			s.stats.Records += len(b.Records)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/upload", s.handleUpload)
	mux.HandleFunc("GET /v1/records", s.handleRecords)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
	return s, nil
}

// ServeHTTP dispatches the collector API. The health probe is exempt
// from the token gate — liveness checkers rarely carry credentials,
// and an unauthenticated "ok" reveals nothing about the dataset.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.o.Token != "" && r.URL.Path != "/healthz" && !s.authorized(r) {
		s.mu.Lock()
		s.stats.AuthFailures++
		s.mu.Unlock()
		http.Error(w, "bad token", http.StatusUnauthorized)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// authorized checks the shared bearer token in constant time.
func (s *Server) authorized(r *http.Request) bool {
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(s.o.Token)) == 1
}

// uploadReply is the /v1/upload response body.
type uploadReply struct {
	Status  string `json:"status"` // "accepted" or "duplicate"
	Records int    `json:"records"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	// Device-stamp authentication: an upload must declare who it is
	// for, and the declaration must match the signed batch header — a
	// mislabelled relay cannot attribute records to another phone.
	device := r.Header.Get(DeviceHeader)
	if device == "" {
		s.countAuthFailure()
		http.Error(w, "missing "+DeviceHeader, http.StatusForbidden)
		return
	}
	b, err := measure.DecodeBatch(http.MaxBytesReader(w, r.Body, s.o.MaxBatchBytes))
	if err != nil {
		s.mu.Lock()
		s.stats.BadRequests++
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if b.Device != device {
		s.countAuthFailure()
		http.Error(w, "device stamp mismatch", http.StatusForbidden)
		return
	}

	s.mu.Lock()
	if _, dup := s.keys[b.Key]; dup {
		s.stats.Duplicates++
		s.mu.Unlock()
		writeJSON(w, uploadReply{Status: "duplicate"})
		return
	}
	// Spool first, then commit: a failed append leaves the key unseen,
	// so the phone's retry gets another chance at durability.
	if s.spool != nil {
		if err := s.spool.Append(b); err != nil {
			s.mu.Unlock()
			http.Error(w, "spool: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.keys[b.Key] = struct{}{}
	s.recs = append(s.recs, stampRecords(b)...)
	s.stats.Batches++
	s.stats.Records += len(b.Records)
	s.mu.Unlock()
	writeJSON(w, uploadReply{Status: "accepted", Records: len(b.Records)})
}

func (s *Server) countAuthFailure() {
	s.mu.Lock()
	s.stats.AuthFailures++
	s.mu.Unlock()
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	recs := s.Records()
	w.Header().Set("Content-Type", "application/jsonl")
	if err := measure.WriteJSONL(w, recs); err != nil {
		// Mid-stream failure; the status line is already gone.
		return
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Records returns a copy of the accepted dataset in arrival order,
// device-stamped.
func (s *Server) Records() []measure.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]measure.Record(nil), s.recs...)
}

// Ingest assembles the accepted dataset for the §4.2 analysis
// pipeline — what `crowdstudy -serve` runs against a live collector.
func (s *Server) Ingest() *Dataset {
	return Ingest(s.Records())
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close releases the spool (accepted data stays readable in memory).
func (s *Server) Close() error {
	s.mu.Lock()
	spool := s.spool
	s.spool = nil
	s.mu.Unlock()
	if spool == nil {
		return nil
	}
	return spool.Close()
}
