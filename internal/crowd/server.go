package crowd

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/measure"
	"repro/internal/metrics"
	"repro/internal/sketch"
)

// Server is the collector side of the crowdsourcing wire protocol:
// the net/http handler behind `cmd/collectord`. Phones POST batches
// (measure wire encoding) to /v1/upload; the server authenticates the
// device stamp (and the shared token, when configured), deduplicates
// on the batch idempotency key, appends accepted batches to a durable
// spool, and maintains streaming per-app/per-network quantile sketches
// so /v1/stats answers in O(sketch) regardless of dataset size.
// Exactly-once records from at-least-once delivery: the upload
// transport retries freely, the key dedup makes redelivery harmless.
//
// Ingest state is sharded by device-stamp hash (the flowtable
// discipline applied to the collector): each internal shard owns its
// dedup keys, sketch state, and optional raw records behind its own
// mutex, so uploads from different devices never serialize on one
// lock. A batch's device decides its shard, and a batch's idempotency
// key is only ever checked against its own device's shard — consistent
// because retries of a batch carry the same device stamp.

// Upload protocol headers.
const (
	// DeviceHeader carries the uploading phone's device stamp; it must
	// be present and match the batch header's device.
	DeviceHeader = "X-Mopeye-Device"
)

// DefaultIngestShards is the internal lock-shard count used when
// ServerOptions.IngestShards <= 0.
const DefaultIngestShards = 16

// RetainMode selects whether the server keeps raw records in memory.
type RetainMode int

const (
	// RetainDefault keeps raw records (the seed behaviour): /v1/records,
	// Records() and Ingest() serve the full dataset.
	RetainDefault RetainMode = iota
	// RetainOff drops raw records after they feed the sketches: memory
	// stays O(devices + apps) at any ingest volume, /v1/records answers
	// 404, and only the sketched aggregates remain queryable. The load
	// harness and fleet-scale deployments run here.
	RetainOff
	// RetainOn is RetainDefault, spelled explicitly.
	RetainOn
)

// ServerOptions configures a collector server.
type ServerOptions struct {
	// SpoolDir, when non-empty, is the durable spool directory: every
	// accepted batch is appended there, and an existing spool is
	// replayed at construction (records and dedup keys both survive a
	// restart). Empty keeps the dataset memory-only.
	SpoolDir string
	// Token, when non-empty, is the shared bearer token every request
	// must present ("Authorization: Bearer <token>").
	Token string
	// MaxBatchBytes bounds one upload body. Default 8 MiB.
	MaxBatchBytes int64
	// IngestShards is the internal lock-shard count (rounded up to a
	// power of two). <= 0 selects DefaultIngestShards.
	IngestShards int
	// RetainRecords controls raw-record retention; the default retains
	// (see RetainMode).
	RetainRecords RetainMode
	// SpoolSegmentBytes caps one spool segment file; <= 0 selects
	// DefaultSegmentBytes.
	SpoolSegmentBytes int64
	// SketchAlpha is the aggregation sketches' relative accuracy;
	// <= 0 selects sketch.DefaultAlpha.
	SketchAlpha float64
	// ExposeMetrics registers GET /metrics (Prometheus text exposition)
	// on the server. The endpoint is exempt from the token gate, like
	// /healthz: scrapers are part of the ops plane, and the exposition
	// carries aggregates, not records.
	ExposeMetrics bool
}

func (o *ServerOptions) retain() bool { return o.RetainRecords != RetainOff }

func (o *ServerOptions) alpha() float64 {
	if o.SketchAlpha <= 0 {
		return sketch.DefaultAlpha
	}
	return o.SketchAlpha
}

// ServerStats counts what the server has seen.
type ServerStats struct {
	// Batches accepted (excluding duplicates), and Records within them.
	Batches int
	Records int
	// Duplicates is redelivered batches absorbed by key dedup.
	Duplicates int
	// AuthFailures counts rejected tokens and device-stamp mismatches.
	AuthFailures int
	// BadRequests counts malformed uploads.
	BadRequests int
}

// serverCounters is ServerStats maintained as atomics, so the upload
// hot path and stats snapshots never touch a lock for counting.
type serverCounters struct {
	batches      atomic.Int64
	records      atomic.Int64
	duplicates   atomic.Int64
	authFailures atomic.Int64
	badRequests  atomic.Int64
}

func (c *serverCounters) snapshot() ServerStats {
	return ServerStats{
		Batches:      int(c.batches.Load()),
		Records:      int(c.records.Load()),
		Duplicates:   int(c.duplicates.Load()),
		AuthFailures: int(c.authFailures.Load()),
		BadRequests:  int(c.badRequests.Load()),
	}
}

// ingestShard is one lock domain of the server's ingest state: the
// dedup keys, sketches, and (when retained) raw records of the devices
// hashing here.
type ingestShard struct {
	mu   sync.Mutex
	keys map[string]struct{}
	recs []measure.Record
	agg  *agg

	// recCount counts records committed to this shard over its lifetime
	// (independent of retention, unlike len(recs)). Atomic so the
	// metrics scrape can read per-shard skew without taking shard locks.
	recCount atomic.Int64
}

// hashDevice returns a stable 64-bit hash of a device stamp (FNV-1a
// with a murmur-style avalanche finisher — the same construction as
// flowtable.Hash, for the same reason: device stamps are structured
// strings like "phone-07", and plain FNV's low bits are too regular on
// such inputs to spread shards evenly).
func hashDevice(device string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(device); i++ {
		h ^= uint64(device[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Server is the HTTP collector. It implements http.Handler.
type Server struct {
	o   ServerOptions
	mux *http.ServeMux

	shards []ingestShard
	mask   uint64
	c      serverCounters

	// spool is immutable after construction (nil when memory-only); it
	// carries its own lock, and Close makes later Appends fail cleanly.
	spool *Spool

	// metrics is built lazily on first use (metrics.go); all its
	// instruments are scrape-time reads over the state above.
	metricsOnce sync.Once
	metricsReg  *metrics.Registry
}

// NewServer builds a collector server, replaying the spool when one is
// configured.
func NewServer(o ServerOptions) (*Server, error) {
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 8 << 20
	}
	n := o.IngestShards
	if n <= 0 {
		n = DefaultIngestShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Server{o: o, shards: make([]ingestShard, size), mask: uint64(size - 1)}
	for i := range s.shards {
		s.shards[i].keys = make(map[string]struct{})
		s.shards[i].agg = newAgg(o.alpha())
	}
	if o.SpoolDir != "" {
		spool, replay, err := OpenSpoolOptions(o.SpoolDir, SpoolOptions{SegmentBytes: o.SpoolSegmentBytes})
		if err != nil {
			return nil, err
		}
		s.spool = spool
		for _, k := range replay.CompactedKeys {
			s.shard(k.Device).keys[k.Key] = struct{}{}
		}
		for _, b := range replay.Batches {
			s.commit(s.shard(b.Device), b)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/upload", s.handleUpload)
	mux.HandleFunc("GET /v1/records", s.handleRecords)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if o.ExposeMetrics {
		mux.Handle("GET /metrics", s.MetricsHandler())
	}
	s.mux = mux
	return s, nil
}

// shard returns the ingest shard owning a device stamp.
func (s *Server) shard(device string) *ingestShard {
	return &s.shards[hashDevice(device)&s.mask]
}

// commit folds one accepted batch into a shard's state. The caller
// holds sh.mu (or, during construction, has exclusive access).
func (s *Server) commit(sh *ingestShard, b measure.Batch) {
	sh.keys[b.Key] = struct{}{}
	stamped := stampRecords(b)
	for _, r := range stamped {
		sh.agg.observe(r)
	}
	if s.o.retain() {
		sh.recs = append(sh.recs, stamped...)
	}
	sh.recCount.Add(int64(len(b.Records)))
	s.c.batches.Add(1)
	s.c.records.Add(int64(len(b.Records)))
}

// ServeHTTP dispatches the collector API. The health probe is exempt
// from the token gate — liveness checkers rarely carry credentials,
// and an unauthenticated "ok" reveals nothing about the dataset. The
// metrics endpoint (when exposed) sits on the same ops plane.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.o.Token != "" && r.URL.Path != "/healthz" &&
		!(s.o.ExposeMetrics && r.URL.Path == "/metrics") && !authorized(r, s.o.Token) {
		s.c.authFailures.Add(1)
		http.Error(w, "bad token", http.StatusUnauthorized)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// authorized checks a shared bearer token in constant time.
func authorized(r *http.Request, token string) bool {
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(token)) == 1
}

// uploadReply is the /v1/upload response body.
type uploadReply struct {
	Status  string `json:"status"` // "accepted" or "duplicate"
	Records int    `json:"records"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	// Device-stamp authentication: an upload must declare who it is
	// for, and the declaration must match the signed batch header — a
	// mislabelled relay cannot attribute records to another phone.
	device := r.Header.Get(DeviceHeader)
	if device == "" {
		s.c.authFailures.Add(1)
		http.Error(w, "missing "+DeviceHeader, http.StatusForbidden)
		return
	}
	b, err := measure.DecodeBatch(http.MaxBytesReader(w, r.Body, s.o.MaxBatchBytes))
	if err != nil {
		s.c.badRequests.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if b.Device != device {
		s.c.authFailures.Add(1)
		http.Error(w, "device stamp mismatch", http.StatusForbidden)
		return
	}

	// Only this device's shard locks: uploads from devices hashing to
	// other shards proceed concurrently, including through their own
	// spool appends (the spool serializes the file write itself, not
	// the dedup-and-commit of independent shards).
	sh := s.shard(b.Device)
	sh.mu.Lock()
	if _, dup := sh.keys[b.Key]; dup {
		sh.mu.Unlock()
		s.c.duplicates.Add(1)
		writeJSON(w, uploadReply{Status: "duplicate"})
		return
	}
	// Spool first, then commit: a failed append leaves the key unseen,
	// so the phone's retry gets another chance at durability. The shard
	// lock is held across the append to keep spool order and commit
	// order identical per device — the replay-equals-live invariant.
	if s.spool != nil {
		if err := s.spool.Append(b); err != nil {
			sh.mu.Unlock()
			http.Error(w, "spool: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.commit(sh, b)
	sh.mu.Unlock()
	writeJSON(w, uploadReply{Status: "accepted", Records: len(b.Records)})
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	if !s.o.retain() {
		http.Error(w, "record retention disabled (RetainRecords=off); only /v1/stats aggregates exist", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	enc := measure.NewJSONLEncoder(w)
	if err := s.streamRecords(enc); err != nil {
		// Mid-stream failure; the status line is already gone.
		return
	}
	enc.Flush()
}

// streamRecords writes every retained record, shard by shard, without
// ever copying the dataset: each shard's slice is snapshotted under
// its lock (records already appended are immutable, so the snapshot
// stays valid while later uploads append beyond it) and encoded
// outside the lock.
func (s *Server) streamRecords(enc *measure.JSONLEncoder) error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		snap := sh.recs[:len(sh.recs):len(sh.recs)]
		sh.mu.Unlock()
		for _, r := range snap {
			if err := enc.Write(r); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Summary())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Records returns a copy of the accepted dataset, shard by shard (each
// shard in arrival order), device-stamped. Nil when retention is off.
func (s *Server) Records() []measure.Record {
	if !s.o.retain() {
		return nil
	}
	out := make([]measure.Record, 0, s.c.records.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.recs...)
		sh.mu.Unlock()
	}
	return out
}

// Ingest assembles the accepted dataset for the §4.2 analysis
// pipeline — what `crowdstudy -serve` runs against a live collector.
// With retention off the dataset is empty; use Summary instead.
func (s *Server) Ingest() *Dataset {
	return Ingest(s.Records())
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	return s.c.snapshot()
}

// mergedAgg folds every shard's aggregation state into one, shard
// locks taken one at a time. O(shards × apps × sketch bins).
func (s *Server) mergedAgg() *agg {
	dst := newAgg(s.o.alpha())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		dst.merge(sh.agg)
		sh.mu.Unlock()
	}
	return dst
}

// Summary assembles the sketched /v1/stats document. Cost is
// independent of dataset size.
func (s *Server) Summary() Summary {
	a := s.mergedAgg()
	perApp, perNet := a.render()
	return Summary{
		Stats:            s.Stats(),
		TCPRecords:       a.tcp,
		DNSRecords:       a.dns,
		RelativeAccuracy: s.o.alpha(),
		Shards:           len(s.shards),
		RetainRecords:    s.o.retain(),
		PerApp:           perApp,
		PerNet:           perNet,
	}
}

// AppMedianMS returns an app's sketched median TCP connect RTT in
// milliseconds, merging only that app's per-shard sketches —
// O(shards × sketch bins), no dataset scan. ok reports whether the
// app has any measurements.
func (s *Server) AppMedianMS(app string) (ms float64, ok bool) {
	merged := sketch.New(s.o.alpha())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sk := sh.agg.perApp[app]; sk != nil {
			merged.Merge(sk)
		}
		sh.mu.Unlock()
	}
	if merged.Count() == 0 {
		return 0, false
	}
	return merged.Median(), true
}

// DedupKeys reports how many idempotency keys the server holds — the
// dedup-map footprint the load harness tracks.
func (s *Server) DedupKeys() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += len(sh.keys)
		sh.mu.Unlock()
	}
	return total
}

// CompactSpool drops the spool's sealed segments (preserving their
// dedup keys); see Spool.Compact. A memory-only server reports zeros.
func (s *Server) CompactSpool() (segments, keys int, err error) {
	if s.spool == nil {
		return 0, 0, nil
	}
	return s.spool.Compact()
}

// Close releases the spool (accepted data stays readable in memory).
func (s *Server) Close() error {
	if s.spool == nil {
		return nil
	}
	return s.spool.Close()
}
