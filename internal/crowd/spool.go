package crowd

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/measure"
)

// The spool is the collector server's durable store: every accepted
// batch is appended to one file in the batch wire format
// (measure.EncodeBatch), so the file is simultaneously the dedup
// journal (keys replay with the batches) and the dataset (records
// replay in arrival order). A crash can leave at most one partial
// batch at the tail; replay stops there, the file is truncated back to
// the last complete batch, and the phone's retry — same idempotency
// key — redelivers what was lost. Delivery is at-least-once, the
// spool is exactly-once after replay dedup.

// spoolFile is the single append-only batch log inside a spool dir.
const spoolFile = "batches.jsonl"

// Spool is an append-only batch log rooted at a directory.
type Spool struct {
	mu sync.Mutex
	f  *os.File
}

// OpenSpool opens (creating if needed) the spool in dir and replays
// it: the returned batches are every complete batch in append order,
// deduplicated by idempotency key. A partial batch at the tail —
// the residue of a crashed append — is discarded and truncated away so
// subsequent appends produce a clean log.
func OpenSpool(dir string) (*Spool, []measure.Batch, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("crowd: spool dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, spoolFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("crowd: spool open: %w", err)
	}
	batches, goodOff, err := replaySpool(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(goodOff); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("crowd: spool truncate: %w", err)
	}
	if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("crowd: spool seek: %w", err)
	}
	return &Spool{f: f}, batches, nil
}

// replaySpool reads complete batches (deduped by key) and reports the
// byte offset of the durable prefix. Decode errors — truncation or
// tail corruption — end the replay rather than failing it: everything
// before the bad entry is intact and served; the bad entry's sender
// retries with the same key.
func replaySpool(r io.Reader) ([]measure.Batch, int64, error) {
	dec := measure.NewBatchDecoder(r)
	var batches []measure.Batch
	seen := make(map[string]struct{})
	var off int64
	for {
		b, err := dec.Next()
		if err != nil {
			if err == io.EOF {
				return batches, off, nil
			}
			// Partial or corrupt tail: keep the durable prefix.
			return batches, off, nil
		}
		off = dec.InputOffset()
		if _, dup := seen[b.Key]; dup {
			continue
		}
		seen[b.Key] = struct{}{}
		batches = append(batches, b)
	}
}

// Append writes one batch to the log: the batch is encoded in memory
// and lands in one file write, and a failed or short write truncates
// the file back to its pre-append length — the log never holds a
// partial entry in the middle, so the "at most one partial batch, at
// the tail, from a crash" replay contract survives IO errors too.
// Durability is the OS page cache's (no fsync per batch — see
// DESIGN.md for the crash window contract).
func (s *Spool) Append(b measure.Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("crowd: append on closed spool")
	}
	var buf bytes.Buffer
	if err := measure.EncodeBatch(&buf, b); err != nil {
		return err
	}
	off, err := s.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("crowd: spool offset: %w", err)
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		// Heal in place: drop whatever partial bytes made it out so the
		// next append starts at a batch boundary. The batch's key was
		// never committed; the sender's retry redelivers it.
		s.f.Truncate(off)
		s.f.Seek(off, io.SeekStart)
		return fmt.Errorf("crowd: spool append: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// ReadSpool loads the deduplicated records from a spool directory
// without opening it for writing — the `crowdstudy -spool` path for
// analysing a collectord's dataset offline. Records keep arrival
// order; empty-device records are stamped with their batch's device,
// mirroring what the server did (or would have done) at accept time.
func ReadSpool(dir string) ([]measure.Record, error) {
	f, err := os.Open(filepath.Join(dir, spoolFile))
	if err != nil {
		return nil, fmt.Errorf("crowd: spool read: %w", err)
	}
	defer f.Close()
	batches, _, err := replaySpool(f)
	if err != nil {
		return nil, err
	}
	var recs []measure.Record
	for _, b := range batches {
		recs = append(recs, stampRecords(b)...)
	}
	return recs, nil
}

// stampRecords applies the batch's device attribution to records that
// arrived without one, returning a copy.
func stampRecords(b measure.Batch) []measure.Record {
	out := make([]measure.Record, len(b.Records))
	for i, r := range b.Records {
		if r.Device == "" {
			r.Device = b.Device
		}
		out[i] = r
	}
	return out
}
