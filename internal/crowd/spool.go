package crowd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/measure"
)

// The spool is the collector server's durable store: every accepted
// batch is appended in the batch wire format (measure.EncodeBatch), so
// the log is simultaneously the dedup journal (keys replay with the
// batches) and the dataset (records replay in arrival order).
//
// The log is a sequence of size-capped segment files rather than one
// unbounded file: appends go to the current (highest-numbered) segment
// and roll to a fresh one when it would exceed SegmentBytes. Sealed
// segments are immutable, which gives a long-lived collector two
// things a single file cannot: Compact() can drop sealed segments
// (preserving their dedup keys in a manifest) so restart replay cost
// stops growing with lifetime ingest, and a crash can corrupt at most
// the tail of the current segment — replay stops there, truncates back
// to the last complete batch, and the sender's retry (same idempotency
// key) redelivers what was lost. Delivery is at-least-once; the spool
// is exactly-once after replay dedup.

// Segment file layout inside a spool dir. Segment 0 keeps the legacy
// single-file name so pre-rotation spools replay unchanged.
const (
	spoolFile    = "batches.jsonl"
	spoolSegFmt  = "batches-%06d.jsonl"
	manifestFile = "compacted.keys"
)

// DefaultSegmentBytes caps one segment file at 64 MiB.
const DefaultSegmentBytes = 64 << 20

// SpoolOptions tunes a spool.
type SpoolOptions struct {
	// SegmentBytes caps one segment file; an append that would push the
	// current segment past it rolls to a new segment first. <= 0
	// selects DefaultSegmentBytes.
	SegmentBytes int64
}

// SpoolReplay is what OpenSpool recovered from disk.
type SpoolReplay struct {
	// Batches are every complete batch across all segments in append
	// order, deduplicated by idempotency key.
	Batches []measure.Batch
	// CompactedKeys are dedup keys preserved from segments a previous
	// Compact dropped: their batches no longer replay, but redelivery
	// of those keys must still be absorbed.
	CompactedKeys []SpoolKey
	// Segments is the number of segment files found on disk.
	Segments int
}

// Spool is an append-only, segment-rotating batch log rooted at a
// directory.
type Spool struct {
	mu     sync.Mutex
	dir    string
	o      SpoolOptions
	f      *os.File // current segment, nil after Close
	fsize  int64
	seg    int   // current segment index
	sealed []int // immutable earlier segments still on disk, ascending
}

func segName(n int) string {
	if n == 0 {
		return spoolFile
	}
	return fmt.Sprintf(spoolSegFmt, n)
}

// listSegments returns the segment indexes present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if name == spoolFile {
			segs = append(segs, 0)
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, spoolSegFmt, &n); err == nil && strings.HasSuffix(name, ".jsonl") && n > 0 {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// SpoolKey is a dedup key preserved from a compacted segment, with the
// device attribution the server needs to seed the right ingest shard.
type SpoolKey struct {
	Device string `json:"device"`
	Key    string `json:"key"`
}

// readManifest loads the dedup keys preserved by previous Compacts.
// Each line is one JSON-encoded SpoolKey (keys are sender-controlled,
// so they cannot be trusted to stay on one line raw).
func readManifest(dir string) ([]SpoolKey, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("crowd: spool manifest: %w", err)
	}
	var keys []SpoolKey
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var k SpoolKey
		if err := json.Unmarshal(line, &k); err != nil {
			// A torn manifest tail (crash mid-Compact) loses at most the
			// keys of that Compact; the affected segments were not yet
			// deleted, so their keys replay from the segments instead.
			break
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// OpenSpool opens (creating if needed) the spool in dir with default
// options and replays it.
func OpenSpool(dir string) (*Spool, SpoolReplay, error) {
	return OpenSpoolOptions(dir, SpoolOptions{})
}

// OpenSpoolOptions opens the spool in dir and replays it: every
// complete batch across every segment, in append order, deduplicated
// by idempotency key (keys from compacted segments dedup too). A
// partial batch at the tail of the last segment — the residue of a
// crashed append — is discarded and truncated away so subsequent
// appends produce a clean log.
func OpenSpoolOptions(dir string, o SpoolOptions) (*Spool, SpoolReplay, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, SpoolReplay{}, fmt.Errorf("crowd: spool dir: %w", err)
	}
	var rep SpoolReplay
	keys, err := readManifest(dir)
	if err != nil {
		return nil, SpoolReplay{}, err
	}
	rep.CompactedKeys = keys
	seen := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		seen[k.Key] = struct{}{}
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, SpoolReplay{}, fmt.Errorf("crowd: spool list: %w", err)
	}
	if len(segs) == 0 {
		segs = []int{0}
	}
	rep.Segments = len(segs)

	s := &Spool{dir: dir, o: o, seg: segs[len(segs)-1], sealed: segs[:len(segs)-1]}
	for i, n := range segs {
		last := i == len(segs)-1
		f, err := os.OpenFile(filepath.Join(dir, segName(n)), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			s.closeSilently()
			return nil, SpoolReplay{}, fmt.Errorf("crowd: spool open: %w", err)
		}
		batches, goodOff := replaySpool(f, seen)
		rep.Batches = append(rep.Batches, batches...)
		if !last {
			// Sealed segments are immutable; a bad tail here (it should
			// not happen — only a crash can tear a tail, and crashes tear
			// the then-current segment, which is the last) keeps the good
			// prefix and moves on.
			f.Close()
			continue
		}
		// The current segment heals in place: truncate the torn tail so
		// appends resume at a batch boundary.
		if err := f.Truncate(goodOff); err != nil {
			f.Close()
			return nil, SpoolReplay{}, fmt.Errorf("crowd: spool truncate: %w", err)
		}
		if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
			f.Close()
			return nil, SpoolReplay{}, fmt.Errorf("crowd: spool seek: %w", err)
		}
		s.f, s.fsize = f, goodOff
	}
	return s, rep, nil
}

func (s *Spool) closeSilently() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// replaySpool reads complete batches from one segment, skipping keys
// already in seen (and adding new ones to it), and reports the byte
// offset of the durable prefix. Decode errors — truncation or tail
// corruption — end the replay rather than failing it: everything
// before the bad entry is intact and served; the bad entry's sender
// retries with the same key.
func replaySpool(r io.Reader, seen map[string]struct{}) ([]measure.Batch, int64) {
	dec := measure.NewBatchDecoder(r)
	var batches []measure.Batch
	var off int64
	for {
		b, err := dec.Next()
		if err != nil {
			// io.EOF is the clean end; anything else is a partial or
			// corrupt tail — keep the durable prefix either way.
			return batches, off
		}
		off = dec.InputOffset()
		if _, dup := seen[b.Key]; dup {
			continue
		}
		seen[b.Key] = struct{}{}
		batches = append(batches, b)
	}
}

// Append writes one batch to the log, rolling to a new segment first
// when the current one is full. The batch is encoded in memory and
// lands in one file write, and a failed or short write truncates the
// segment back to its pre-append length — the log never holds a
// partial entry in the middle, so the "at most one partial batch, at
// the tail, from a crash" replay contract survives IO errors too.
// Durability is the OS page cache's (no fsync per batch — see DESIGN.md
// for the crash window contract).
func (s *Spool) Append(b measure.Batch) error {
	var buf bytes.Buffer
	if err := measure.EncodeBatch(&buf, b); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("crowd: append on closed spool")
	}
	if s.fsize > 0 && s.fsize+int64(buf.Len()) > s.o.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		// Heal in place: drop whatever partial bytes made it out so the
		// next append starts at a batch boundary. The batch's key was
		// never committed; the sender's retry redelivers it.
		s.f.Truncate(s.fsize)
		s.f.Seek(s.fsize, io.SeekStart)
		return fmt.Errorf("crowd: spool append: %w", err)
	}
	s.fsize += int64(buf.Len())
	return nil
}

// rotateLocked seals the current segment and opens the next one.
func (s *Spool) rotateLocked() error {
	next, err := os.OpenFile(filepath.Join(s.dir, segName(s.seg+1)), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("crowd: spool rotate: %w", err)
	}
	s.f.Close()
	s.sealed = append(s.sealed, s.seg)
	s.seg++
	s.f, s.fsize = next, 0
	return nil
}

// Segments reports how many segment files the spool currently spans
// (sealed plus current).
func (s *Spool) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sealed) + 1
}

// SpoolStats is the spool's on-disk footprint.
type SpoolStats struct {
	Segments int   // segment files (sealed + current)
	Bytes    int64 // total bytes across all segments
}

// Stats reports the spool's segment count and total size. The current
// segment's size is tracked; sealed segments (immutable) are stat'd —
// a per-scrape cost of one stat per sealed segment, bounded by
// Compact.
func (s *Spool) Stats() SpoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SpoolStats{Segments: len(s.sealed) + 1, Bytes: s.fsize}
	for _, n := range s.sealed {
		if fi, err := os.Stat(filepath.Join(s.dir, segName(n))); err == nil {
			st.Bytes += fi.Size()
		}
	}
	return st
}

// Compact drops every sealed segment, first preserving its dedup keys
// in the manifest so redelivery of a compacted batch is still absorbed
// after a restart. The records in dropped segments no longer replay:
// Compact is the companion of sketch-aggregated, RetainRecords=off
// operation, where the sketches — not the raw log — are the product
// and the log is a redelivery buffer. It returns the number of
// segments dropped and keys preserved.
func (s *Spool) Compact() (segments, keys int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, 0, fmt.Errorf("crowd: compact on closed spool")
	}
	if len(s.sealed) == 0 {
		return 0, 0, nil
	}
	// Gather the sealed segments' keys by re-reading them (cheap
	// relative to how rarely compaction runs, and it keeps the spool
	// from mirroring the server's dedup map in memory).
	var preserved []SpoolKey
	for _, n := range s.sealed {
		f, err := os.Open(filepath.Join(s.dir, segName(n)))
		if err != nil {
			return 0, 0, fmt.Errorf("crowd: compact read: %w", err)
		}
		batches, _ := replaySpool(f, make(map[string]struct{}))
		f.Close()
		for _, b := range batches {
			preserved = append(preserved, SpoolKey{Device: b.Device, Key: b.Key})
		}
	}
	// Manifest first, then delete: a crash between the two leaves both
	// the manifest keys and the segments, and replay dedups the overlap.
	mf, err := os.OpenFile(filepath.Join(s.dir, manifestFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("crowd: compact manifest: %w", err)
	}
	var mb bytes.Buffer
	for _, k := range preserved {
		line, err := json.Marshal(k)
		if err != nil {
			mf.Close()
			return 0, 0, err
		}
		mb.Write(line)
		mb.WriteByte('\n')
	}
	if _, err := mf.Write(mb.Bytes()); err != nil {
		mf.Close()
		return 0, 0, fmt.Errorf("crowd: compact manifest write: %w", err)
	}
	if err := mf.Sync(); err != nil {
		mf.Close()
		return 0, 0, fmt.Errorf("crowd: compact manifest sync: %w", err)
	}
	mf.Close()
	dropped := 0
	for _, n := range s.sealed {
		if err := os.Remove(filepath.Join(s.dir, segName(n))); err != nil {
			return dropped, len(preserved), fmt.Errorf("crowd: compact remove: %w", err)
		}
		dropped++
	}
	s.sealed = s.sealed[:0]
	return dropped, len(preserved), nil
}

// Close closes the current segment file.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// ReadSpool loads the deduplicated records from a spool directory
// without opening it for writing — the `crowdstudy -spool` path for
// analysing a collectord's dataset offline. Records keep arrival
// order across segments; records of compacted segments are gone (their
// keys only absorb redelivery). Empty-device records are stamped with
// their batch's device, mirroring what the server did (or would have
// done) at accept time.
func ReadSpool(dir string) ([]measure.Record, error) {
	keys, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		seen[k.Key] = struct{}{}
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("crowd: spool read: %w", err)
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("crowd: spool read: %w", os.ErrNotExist)
	}
	var recs []measure.Record
	for _, n := range segs {
		f, err := os.Open(filepath.Join(dir, segName(n)))
		if err != nil {
			return nil, fmt.Errorf("crowd: spool read: %w", err)
		}
		batches, _ := replaySpool(f, seen)
		f.Close()
		for _, b := range batches {
			recs = append(recs, stampRecords(b)...)
		}
	}
	return recs, nil
}

// stampRecords applies the batch's device attribution to records that
// arrived without one, returning a copy.
func stampRecords(b measure.Batch) []measure.Record {
	out := make([]measure.Record, len(b.Records))
	for i, r := range b.Records {
		if r.Device == "" {
			r.Device = b.Device
		}
		out[i] = r
	}
	return out
}
