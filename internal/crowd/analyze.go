package crowd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/measure"
	"repro/internal/stats"
)

// This file is the §4.2 analysis pipeline. Every function consumes
// measurement records and device metadata only, so the same code would
// run on the real crowdsourced dataset.

// ContributionBuckets are the Figure 6 histogram bars. Thresholds are
// expressed at paper scale and converted via Dataset.ScaledThreshold.
type ContributionBuckets struct {
	Over10K  int
	K5to10   int
	K1to5    int
	H100to1K int
}

func bucketize(counts []int, t100, t1k, t5k, t10k int) ContributionBuckets {
	var b ContributionBuckets
	for _, c := range counts {
		switch {
		case c > t10k:
			b.Over10K++
		case c > t5k:
			b.K5to10++
		case c > t1k:
			b.K1to5++
		case c >= t100:
			b.H100to1K++
		}
	}
	return b
}

func (ds *Dataset) thresholds() (t100, t1k, t5k, t10k int) {
	return ds.ScaledThreshold(100), ds.ScaledThreshold(1000),
		ds.ScaledThreshold(5000), ds.ScaledThreshold(10000)
}

// Fig6aUsers histograms measurements per device (Figure 6a).
func Fig6aUsers(ds *Dataset) ContributionBuckets {
	perDevice := make(map[string]int)
	for _, r := range ds.Records {
		perDevice[r.Device]++
	}
	counts := make([]int, 0, len(perDevice))
	for _, c := range perDevice {
		counts = append(counts, c)
	}
	t100, t1k, t5k, t10k := ds.thresholds()
	return bucketize(counts, t100, t1k, t5k, t10k)
}

// Fig6bApps histograms measurements per app (Figure 6b), TCP records
// only since DNS is system-wide.
func Fig6bApps(ds *Dataset) ContributionBuckets {
	perApp := make(map[string]int)
	for _, r := range ds.Records {
		if r.Kind == measure.KindTCP {
			perApp[r.App]++
		}
	}
	counts := make([]int, 0, len(perApp))
	for _, c := range perApp {
		counts = append(counts, c)
	}
	t100, t1k, t5k, t10k := ds.thresholds()
	return bucketize(counts, t100, t1k, t5k, t10k)
}

// CountryCount is one Figure 7 bar.
type CountryCount struct {
	Name    string
	Devices int
}

// Fig7TopCountries returns the n countries with most devices.
func Fig7TopCountries(ds *Dataset, n int) []CountryCount {
	per := make(map[string]int)
	for _, d := range ds.Devices {
		per[d.Country]++
	}
	out := make([]CountryCount, 0, len(per))
	for c, k := range per {
		out = append(out, CountryCount{Name: c, Devices: k})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Devices != out[j].Devices {
			return out[i].Devices > out[j].Devices
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Fig8Locations returns all measurement locations (Figure 8 plots
// them on a world map; we report them as coordinates plus a region
// summary).
func Fig8Locations(ds *Dataset) []LatLon {
	var out []LatLon
	for _, d := range ds.Devices {
		out = append(out, d.Locations...)
	}
	return out
}

// Fig8RegionSummary counts locations in coarse latitude/longitude
// cells, the textual stand-in for the map.
func Fig8RegionSummary(ds *Dataset) map[string]int {
	out := make(map[string]int)
	for _, l := range Fig8Locations(ds) {
		cell := fmt.Sprintf("lat[%+04d..%+04d) lon[%+04d..%+04d)",
			int(l.Lat/30)*30, int(l.Lat/30)*30+30,
			int(l.Lon/60)*60, int(l.Lon/60)*60+60)
		out[cell]++
	}
	return out
}

// Fig9Result holds the app-RTT distributions of Figure 9.
type Fig9Result struct {
	All      *stats.CDF // raw RTTs, all access types
	WiFi     *stats.CDF
	Cellular *stats.CDF
	// MedianLTE is reported in the text alongside the figure.
	MedianLTE float64
	// PerAppMedians is Figure 9(b): medians of apps above the (scaled)
	// 1K-measurement cutoff.
	PerAppMedians *stats.CDF
	AppsInB       int
}

// Fig9 computes the per-app RTT analysis (§4.2.2 overall results).
func Fig9(ds *Dataset) *Fig9Result {
	tcp := ds.TCP()
	var all, wifi, cell, lte []float64
	for _, r := range tcp {
		ms := r.RTT.Seconds() * 1000
		all = append(all, ms)
		if r.NetType == "WiFi" {
			wifi = append(wifi, ms)
		} else {
			cell = append(cell, ms)
			if r.NetType == "LTE" {
				lte = append(lte, ms)
			}
		}
	}
	res := &Fig9Result{
		All:       stats.NewCDF(all),
		WiFi:      stats.NewCDF(wifi),
		Cellular:  stats.NewCDF(cell),
		MedianLTE: stats.Median(lte),
	}
	cut := ds.ScaledThreshold(1000)
	medians := make([]float64, 0)
	for _, rs := range measure.ByApp(tcp) {
		if len(rs) >= cut {
			medians = append(medians, measure.MedianRTT(rs))
		}
	}
	res.PerAppMedians = stats.NewCDF(medians)
	res.AppsInB = len(medians)
	return res
}

// Fig10Result holds the DNS distributions of Figure 10.
type Fig10Result struct {
	All      *stats.CDF
	WiFi     *stats.CDF
	Cellular *stats.CDF
	LTE      *stats.CDF
	G3       *stats.CDF
	G2       *stats.CDF
}

// Fig10 computes the DNS analysis (§4.2.3 overall results).
func Fig10(ds *Dataset) *Fig10Result {
	var all, wifi, cell, lte, g3, g2 []float64
	for _, r := range ds.DNS() {
		ms := r.RTT.Seconds() * 1000
		all = append(all, ms)
		switch r.NetType {
		case "WiFi":
			wifi = append(wifi, ms)
		case "LTE":
			cell = append(cell, ms)
			lte = append(lte, ms)
		case "3G":
			cell = append(cell, ms)
			g3 = append(g3, ms)
		case "2G":
			cell = append(cell, ms)
			g2 = append(g2, ms)
		}
	}
	return &Fig10Result{
		All:      stats.NewCDF(all),
		WiFi:     stats.NewCDF(wifi),
		Cellular: stats.NewCDF(cell),
		LTE:      stats.NewCDF(lte),
		G3:       stats.NewCDF(g3),
		G2:       stats.NewCDF(g2),
	}
}

// Fig11 returns the DNS RTT CDFs of the four ISPs the paper singles
// out (Verizon baseline, outstanding Singtel, poor Cricket and U.S.
// Cellular). Cellular records of any generation count, matching the
// paper's observation that around half of Cricket/U.S. Cellular's DNS
// samples came from non-LTE fallback.
func Fig11(ds *Dataset, isps []string) map[string]*stats.CDF {
	per := make(map[string][]float64)
	for _, r := range ds.DNS() {
		if r.NetType == "WiFi" {
			continue
		}
		for _, want := range isps {
			if r.ISP == want {
				per[want] = append(per[want], r.RTT.Seconds()*1000)
			}
		}
	}
	out := make(map[string]*stats.CDF, len(per))
	for isp, ms := range per {
		out[isp] = stats.NewCDF(ms)
	}
	return out
}

// Fig11Defaults are the paper's four ISPs.
var Fig11Defaults = []string{"Verizon", "Singtel", "Cricket", "U.S. Cellular"}

// Table5Row is one representative app's measured performance.
type Table5Row struct {
	Category string
	Label    string
	Package  string
	N        int
	MedianMS float64
}

// Table5 computes the representative-app table from the dataset.
func Table5(ds *Dataset) []Table5Row {
	byApp := measure.ByApp(ds.TCP())
	rows := make([]Table5Row, 0, len(repApps))
	for _, s := range repApps {
		rs := byApp[s.Package]
		rows = append(rows, Table5Row{
			Category: s.Category,
			Label:    s.Label,
			Package:  s.Package,
			N:        len(rs),
			MedianMS: measure.MedianRTT(rs),
		})
	}
	return rows
}

// Table6Row is one LTE operator's DNS performance.
type Table6Row struct {
	Name     string
	Country  string
	N        int
	MedianMS float64
}

// Table6 computes the LTE-ISP DNS table: the top-n cellular ISPs by
// DNS measurement volume.
func Table6(ds *Dataset, n int) []Table6Row {
	perISP := make(map[string][]float64)
	for _, r := range ds.DNS() {
		if r.NetType == "WiFi" {
			continue
		}
		perISP[r.ISP] = append(perISP[r.ISP], r.RTT.Seconds()*1000)
	}
	countryOf := make(map[string]string)
	for _, d := range ds.Devices {
		countryOf[d.CellISP] = d.Country
	}
	rows := make([]Table6Row, 0, len(perISP))
	for isp, ms := range perISP {
		rows = append(rows, Table6Row{
			Name:     isp,
			Country:  countryOf[isp],
			N:        len(ms),
			MedianMS: stats.Median(ms),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].N != rows[j].N {
			return rows[i].N > rows[j].N
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// ISPMedianRow is one ISP's median RTT for one measurement kind.
type ISPMedianRow struct {
	Name     string
	N        int
	MedianMS float64
}

// ISPMedians ranks ISPs by their median RTT of the given kind, slowest
// first — the §4.2 per-operator comparison generalised beyond Table
// 6's LTE/DNS slice. The scenario matrix uses it to check that a
// planted slow network actually surfaces as the slowest operator in
// the crowd view.
func ISPMedians(ds *Dataset, kind measure.Kind) []ISPMedianRow {
	perISP := make(map[string][]float64)
	for _, r := range ds.Records {
		if r.Kind != kind || r.ISP == "" {
			continue
		}
		perISP[r.ISP] = append(perISP[r.ISP], r.RTT.Seconds()*1000)
	}
	rows := make([]ISPMedianRow, 0, len(perISP))
	for isp, ms := range perISP {
		rows = append(rows, ISPMedianRow{Name: isp, N: len(ms), MedianMS: stats.Median(ms)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].MedianMS != rows[j].MedianMS {
			return rows[i].MedianMS > rows[j].MedianMS
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// RenderCDFs prints labelled CDF series at the x anchors the paper's
// figures use (0–400 ms).
func RenderCDFs(title string, labelled map[string]*stats.CDF) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	labels := make([]string, 0, len(labelled))
	for l := range labelled {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	fmt.Fprintf(&b, "%8s", "x(ms)")
	for _, l := range labels {
		fmt.Fprintf(&b, "  %12s", l)
	}
	b.WriteByte('\n')
	for _, x := range []float64{10, 25, 50, 75, 100, 150, 200, 300, 400} {
		fmt.Fprintf(&b, "%8.0f", x)
		for _, l := range labels {
			fmt.Fprintf(&b, "  %12.3f", labelled[l].At(x))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8s", "median")
	for _, l := range labels {
		fmt.Fprintf(&b, "  %12.1f", labelled[l].Median())
	}
	b.WriteByte('\n')
	return b.String()
}
