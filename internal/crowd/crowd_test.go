package crowd

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/measure"
)

// testDataset is generated once; analyses are read-only.
var testDS = Generate(Config{Scale: 0.05, Seed: 42})

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s: got %.2f, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/want > relTol {
		t.Errorf("%s: got %.2f, want %.2f (±%.0f%%)", name, got, want, relTol*100)
	}
}

func TestDatasetScaleAndSplit(t *testing.T) {
	wantTotal := float64(PaperTotalMeasurements) * 0.05
	within(t, "total records", float64(len(testDS.Records)), wantTotal, 0.01)
	tcp, dns := len(testDS.TCP()), len(testDS.DNS())
	within(t, "TCP share", float64(tcp)/float64(len(testDS.Records)),
		float64(PaperTCPMeasurements)/float64(PaperTotalMeasurements), 0.02)
	if tcp+dns != len(testDS.Records) {
		t.Error("kind split does not partition the dataset")
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Scale: 0.01, Seed: 7})
	b := Generate(Config{Scale: 0.01, Seed: 7})
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestDevicePopulation(t *testing.T) {
	within(t, "devices", float64(len(testDS.Devices)), PaperDevices*0.05, 0.05)
	countries := make(map[string]bool)
	for _, d := range testDS.Devices {
		countries[d.Country] = true
		if d.CellISP == "" {
			t.Fatalf("device %s without cellular ISP", d.ID)
		}
		if len(d.Locations) == 0 {
			t.Fatalf("device %s without locations", d.ID)
		}
	}
	if len(countries) < 20 {
		t.Errorf("only %d countries", len(countries))
	}
}

func TestFig6aShape(t *testing.T) {
	b := Fig6aUsers(testDS)
	// Paper: 575 / 288 / 70 / 104 at full scale. The generator assigns
	// devices to those buckets directly; at 5% scale counts shrink
	// ~20x. Shape: the 100–1K bar dominates, and the >10K bar exceeds
	// the 5–10K bar (the paper's distinctive inversion).
	if b.H100to1K <= b.K1to5 || b.K1to5 <= b.K5to10 {
		t.Errorf("bucket ordering wrong: %+v", b)
	}
	if b.Over10K <= b.K5to10 {
		t.Errorf("paper's >10K inversion missing: %+v", b)
	}
}

func TestFig6bShape(t *testing.T) {
	b := Fig6bApps(testDS)
	if b.H100to1K <= b.K1to5 || b.K1to5 <= b.K5to10 {
		t.Errorf("bucket ordering wrong: %+v", b)
	}
}

func TestFig7TopCountries(t *testing.T) {
	top := Fig7TopCountries(testDS, 20)
	if len(top) != 20 {
		t.Fatalf("got %d countries", len(top))
	}
	if top[0].Name != "USA" {
		t.Errorf("top country %q, want USA", top[0].Name)
	}
	// USA has ~5-7x the UK's devices (790 vs 116).
	var uk int
	for _, c := range top {
		if c.Name == "UK" {
			uk = c.Devices
		}
	}
	if uk == 0 {
		t.Fatal("UK not in top 20")
	}
	if ratio := float64(top[0].Devices) / float64(uk); ratio < 3 || ratio > 14 {
		t.Errorf("USA/UK ratio %.1f, paper is ~6.8", ratio)
	}
}

func TestFig8Locations(t *testing.T) {
	locs := Fig8Locations(testDS)
	// ~3 locations per device (6,987 over 2,351 devices).
	perDevice := float64(len(locs)) / float64(len(testDS.Devices))
	if perDevice < 1.5 || perDevice > 5 {
		t.Errorf("locations per device %.1f", perDevice)
	}
	for _, l := range locs {
		if l.Lat < -85 || l.Lat > 85 || l.Lon < -180 || l.Lon > 180 {
			t.Fatalf("location out of range: %+v", l)
		}
	}
}

func TestFig9Medians(t *testing.T) {
	f := Fig9(testDS)
	// Paper: overall 65 ms, WiFi 58 ms, cellular 84 ms, LTE 76 ms.
	within(t, "overall app median", f.All.Median(), 65, 0.25)
	within(t, "WiFi app median", f.WiFi.Median(), 58, 0.25)
	within(t, "cellular app median", f.Cellular.Median(), 84, 0.25)
	within(t, "LTE app median", f.MedianLTE, 76, 0.25)
	if f.WiFi.Median() >= f.Cellular.Median() {
		t.Error("WiFi not faster than cellular")
	}
}

func TestFig9aDistributionShape(t *testing.T) {
	f := Fig9(testDS)
	// Paper: ~40% below 50 ms, ~60% below 100 ms, ~20% above 200 ms,
	// ~10% above 400 ms.
	if p := f.All.At(50); p < 0.25 || p > 0.55 {
		t.Errorf("P(<=50ms) = %.2f, paper ~0.40", p)
	}
	if p := f.All.At(100); p < 0.45 || p > 0.75 {
		t.Errorf("P(<=100ms) = %.2f, paper ~0.60", p)
	}
	if p := 1 - f.All.At(200); p < 0.08 || p > 0.35 {
		t.Errorf("P(>200ms) = %.2f, paper ~0.20", p)
	}
	if p := 1 - f.All.At(400); p < 0.03 || p > 0.20 {
		t.Errorf("P(>400ms) = %.2f, paper ~0.10", p)
	}
}

func TestFig9bPerAppMedians(t *testing.T) {
	f := Fig9(testDS)
	if f.AppsInB < 100 {
		t.Fatalf("only %d apps above the scaled 1K cutoff (paper: 424)", f.AppsInB)
	}
	// Paper: >70% of apps under 100 ms; ~10% above 200 ms.
	if p := f.PerAppMedians.At(100); p < 0.55 {
		t.Errorf("fraction of apps under 100ms = %.2f, paper >0.70", p)
	}
	if p := 1 - f.PerAppMedians.At(200); p < 0.03 || p > 0.30 {
		t.Errorf("fraction of apps over 200ms = %.2f, paper ~0.10", p)
	}
}

func TestFig10DNSMedians(t *testing.T) {
	f := Fig10(testDS)
	// Paper: all 42, WiFi 33, cellular 61; 4G 56, 3G 105, 2G 755.
	within(t, "DNS all median", f.All.Median(), 42, 0.25)
	within(t, "DNS WiFi median", f.WiFi.Median(), 33, 0.25)
	within(t, "DNS cellular median", f.Cellular.Median(), 61, 0.30)
	within(t, "DNS 4G median", f.LTE.Median(), 56, 0.25)
	within(t, "DNS 3G median", f.G3.Median(), 105, 0.25)
	within(t, "DNS 2G median", f.G2.Median(), 755, 0.30)
	// ~80% of DNS RTTs under 100 ms; DNS beats app traffic.
	if p := f.All.At(100); p < 0.65 {
		t.Errorf("P(DNS<=100ms) = %.2f, paper ~0.80", p)
	}
	// ~80% of cellular DNS from 4G.
	lteShare := float64(f.LTE.N()) / float64(f.Cellular.N())
	if lteShare < 0.6 || lteShare > 0.92 {
		t.Errorf("4G share of cellular DNS = %.2f, paper ~0.80", lteShare)
	}
}

func TestFig11FourISPs(t *testing.T) {
	cdfs := Fig11(testDS, Fig11Defaults)
	for _, isp := range Fig11Defaults {
		if cdfs[isp] == nil || cdfs[isp].N() < 50 {
			t.Fatalf("ISP %s missing or thin (%v)", isp, cdfs[isp])
		}
	}
	// Singtel: ~14.7% under 10 ms; Verizon <1%.
	if p := cdfs["Singtel"].At(10); p < 0.08 || p > 0.25 {
		t.Errorf("Singtel P(<=10ms) = %.2f, paper 0.147", p)
	}
	if p := cdfs["Verizon"].At(10); p > 0.03 {
		t.Errorf("Verizon P(<=10ms) = %.2f, paper <0.01", p)
	}
	// Cricket and U.S. Cellular floors near 43 ms.
	for _, isp := range []string{"Cricket", "U.S. Cellular"} {
		if p := cdfs[isp].At(35); p > 0.05 {
			t.Errorf("%s P(<=35ms) = %.2f, paper has a ~43ms floor", isp, p)
		}
	}
	// Worst performers clearly worse than Verizon at the median.
	if cdfs["Cricket"].Median() < cdfs["Verizon"].Median()*1.4 {
		t.Errorf("Cricket median %.0f not well above Verizon %.0f",
			cdfs["Cricket"].Median(), cdfs["Verizon"].Median())
	}
}

func TestTable5RepresentativeApps(t *testing.T) {
	rows := Table5(testDS)
	if len(rows) != 16 {
		t.Fatalf("got %d rows", len(rows))
	}
	byLabel := make(map[string]Table5Row)
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.N == 0 {
			t.Errorf("%s has no measurements", r.Label)
		}
	}
	// Medians within 25% of Table 5.
	for _, want := range []struct {
		label  string
		median float64
	}{
		{"Facebook", 61}, {"WeChat", 36}, {"Whatsapp", 133},
		{"YouTube", 32}, {"Google Play Store", 48}, {"Ebay", 70},
	} {
		within(t, want.label+" median", byLabel[want.label].MedianMS, want.median, 0.25)
	}
	// Count ordering: Facebook is the most measured app.
	for _, r := range rows {
		if r.Label != "Facebook" && r.N > byLabel["Facebook"].N {
			t.Errorf("%s (%d) out-measured Facebook (%d)", r.Label, r.N, byLabel["Facebook"].N)
		}
	}
	// Whatsapp is the slow outlier among communication apps.
	if byLabel["Whatsapp"].MedianMS < 100 {
		t.Errorf("Whatsapp median %.0f, paper reports 133", byLabel["Whatsapp"].MedianMS)
	}
}

func TestTable6ISPs(t *testing.T) {
	rows := Table6(testDS, 15)
	if len(rows) != 15 {
		t.Fatalf("got %d rows", len(rows))
	}
	medians := make(map[string]float64)
	for _, r := range rows {
		medians[r.Name] = r.MedianMS
	}
	for _, want := range []struct {
		name   string
		median float64
	}{
		{"Verizon", 46}, {"Jio 4G", 59}, {"Singtel", 27}, {"Cricket", 93},
	} {
		got, ok := medians[want.name]
		if !ok {
			t.Errorf("%s not in top 15", want.name)
			continue
		}
		within(t, want.name+" DNS median", got, want.median, 0.30)
	}
	// Verizon leads the volume ranking, as in Table 6.
	if rows[0].Name != "Verizon" {
		t.Errorf("top ISP by volume is %s, want Verizon", rows[0].Name)
	}
}

func TestWhatsappCase(t *testing.T) {
	c := AnalyzeWhatsapp(testDS)
	if c.TotalDomains < 250 {
		t.Fatalf("only %d whatsapp.net domains (paper: 334)", c.TotalDomains)
	}
	within(t, "SoftLayer traffic median", c.SlowDomainMedian, 261, 0.25)
	if len(c.FastDomainNames) != 3 {
		t.Fatalf("fast domains: %v", c.FastDomainNames)
	}
	for d, m := range c.FastMedians {
		if m >= 100 {
			t.Errorf("CDN domain %s median %.0f, paper <100", d, m)
		}
	}
	// "all except three" slow domains have medians above 200 ms.
	if c.DomainsMeasured > 0 {
		frac := float64(c.DomainMediansOver200) / float64(c.DomainsMeasured)
		if frac < 0.7 {
			t.Errorf("only %.0f%% of slow domains above 200ms", frac*100)
		}
	}
}

func TestJioCase(t *testing.T) {
	c := AnalyzeJio(testDS)
	within(t, "Jio app median", c.AppMedian, 281, 0.25)
	within(t, "Jio DNS median", c.DNSMedian, 59, 0.25)
	if c.AppMedian < 3*c.DNSMedian {
		t.Error("app/DNS contrast too small; the case's diagnosis depends on it")
	}
	if c.DomainsMeasured == 0 {
		t.Fatal("no domains measured on Jio")
	}
	// Most domains are slow on Jio; most are faster elsewhere.
	if c.Over200 < c.Under100 {
		t.Errorf(">200ms domains (%d) fewer than <100ms (%d); paper: 67 vs 19", c.Over200, c.Under100)
	}
	if c.ComparedDomains > 0 {
		frac := float64(c.FasterOffJio) / float64(c.ComparedDomains)
		if frac < 0.6 {
			t.Errorf("only %.0f%% of domains faster off Jio (paper: 63/71)", frac*100)
		}
		if c.MeanAdvantageMS < 50 {
			t.Errorf("mean off-Jio advantage %.0f ms (paper: 138)", c.MeanAdvantageMS)
		}
	}
}

func TestSummaryMentionsScale(t *testing.T) {
	s := testDS.Summary()
	if s == "" {
		t.Fatal("empty summary")
	}
}

func TestRecordFieldsPopulated(t *testing.T) {
	for i, r := range testDS.Records[:1000] {
		if r.Device == "" || r.Country == "" || r.ISP == "" || r.NetType == "" {
			t.Fatalf("record %d missing dims: %+v", i, r)
		}
		if r.RTT <= 0 {
			t.Fatalf("record %d non-positive RTT", i)
		}
		if r.Kind == measure.KindTCP && r.App == "" {
			t.Fatalf("record %d TCP without app", i)
		}
		if !r.At.After(DeployStart.Add(-1)) || !r.At.Before(DeployEnd) {
			t.Fatalf("record %d outside deploy window: %v", i, r.At)
		}
	}
}

func TestDNSBeatsAppTraffic(t *testing.T) {
	// §4.2.3: DNS RTTs are much better than per-app RTTs (80% of DNS
	// under 100 ms vs 80% of app RTTs under 200 ms).
	f9, f10 := Fig9(testDS), Fig10(testDS)
	if f10.All.Median() >= f9.All.Median() {
		t.Errorf("DNS median %.0f not below app median %.0f", f10.All.Median(), f9.All.Median())
	}
}

func TestAnalysisPipelineOnReloadedCSV(t *testing.T) {
	// The analysis functions must work on records loaded from a CSV
	// release, not just on freshly generated ones — the pipeline is
	// supposed to be runnable on the real dataset.
	small := Generate(Config{Scale: 0.01, Seed: 77})
	var buf bytes.Buffer
	if err := measure.WriteCSV(&buf, small.Records); err != nil {
		t.Fatal(err)
	}
	recs, err := measure.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := &Dataset{Records: recs, Devices: small.Devices, Scale: small.Scale, apps: small.apps}
	f1, f2 := Fig9(small), Fig9(reloaded)
	if f1.All.Median() != f2.All.Median() {
		t.Errorf("median differs after reload: %v vs %v", f1.All.Median(), f2.All.Median())
	}
	t5a, t5b := Table5(small), Table5(reloaded)
	for i := range t5a {
		if t5a[i] != t5b[i] {
			t.Errorf("Table5 row %d differs after reload", i)
		}
	}
}
