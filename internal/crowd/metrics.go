package crowd

import (
	"io"
	"net/http"
	"strconv"

	"repro/internal/metrics"
)

// Collector observability. Every instrument is a scrape-time read over
// state the server already maintains — the upload hot path is not
// touched. The family set is deliberately additive (counters, per-shard
// record counts, spool footprint, sketch summaries), which is what
// makes the sharded merged view truthful: metrics.Merge over N shard
// snapshots equals the snapshot one unsharded server would have
// produced from the same uploads (the equivalence the tests pin). The
// one non-additive fact — retained-records mode — is re-stamped after
// the merge rather than summed.

// retainGaugeName is the mode flag family; see shardedSnapshot.
const retainGaugeName = "mopeye_collector_retain_records"

// metricsRegistry builds (once) the server's registry.
func (s *Server) metricsRegistry() *metrics.Registry {
	s.metricsOnce.Do(func() {
		r := metrics.NewRegistry()
		r.CounterFunc("mopeye_collector_uploads_total",
			"Upload batches accepted (excluding duplicates).",
			func() float64 { return float64(s.c.batches.Load()) })
		r.CounterFunc("mopeye_collector_records_total",
			"Measurement records accepted.",
			func() float64 { return float64(s.c.records.Load()) })
		r.CounterFunc("mopeye_collector_dedup_hits_total",
			"Redelivered batches absorbed by idempotency-key dedup.",
			func() float64 { return float64(s.c.duplicates.Load()) })
		r.CounterFunc("mopeye_collector_auth_failures_total",
			"Uploads rejected for bad tokens or device-stamp mismatches.",
			func() float64 { return float64(s.c.authFailures.Load()) })
		r.CounterFunc("mopeye_collector_bad_requests_total",
			"Malformed uploads rejected.",
			func() float64 { return float64(s.c.badRequests.Load()) })
		r.GaugeFunc("mopeye_collector_dedup_keys",
			"Idempotency keys held (dedup-map footprint).",
			func() float64 { return float64(s.DedupKeys()) })
		r.GaugeFunc(retainGaugeName,
			"1 when raw records are retained in memory, 0 under RetainOff.",
			func() float64 {
				if s.o.retain() {
					return 1
				}
				return 0
			})
		r.GaugeFunc("mopeye_collector_spool_segments",
			"Spool segment files on disk (0 when memory-only).",
			func() float64 {
				if s.spool == nil {
					return 0
				}
				return float64(s.spool.Stats().Segments)
			})
		r.GaugeFunc("mopeye_collector_spool_bytes",
			"Total spool bytes on disk (0 when memory-only).",
			func() float64 {
				if s.spool == nil {
					return 0
				}
				return float64(s.spool.Stats().Bytes)
			})
		// Per-ingest-shard record counts: the skew view. Shard index is
		// the device-hash bucket, identical across sharded and unsharded
		// deployments, so these sum exactly under metrics.Merge.
		r.CollectGauges("mopeye_collector_shard_records",
			"Records committed per ingest shard (device-hash skew).",
			func() []metrics.Sample {
				out := make([]metrics.Sample, 0, len(s.shards))
				for i := range s.shards {
					out = append(out, metrics.Sample{
						Labels: []metrics.Label{metrics.L("shard", strconv.Itoa(i))},
						Value:  float64(s.shards[i].recCount.Load()),
					})
				}
				return out
			})
		// Per-network RTT summaries straight off the aggregation
		// sketches: mergedAgg builds fresh sketches, so the samples own
		// their state and the quantiles carry the sketch's ±alpha bound.
		r.CollectSummaries("mopeye_collector_rtt_ms",
			"Measured RTTs (ms) by network key, sketched.",
			func() []metrics.Sample {
				a := s.mergedAgg()
				out := make([]metrics.Sample, 0, len(a.perNet))
				for key, sk := range a.perNet {
					out = append(out, metrics.Sample{
						Labels: []metrics.Label{metrics.L("net", key)},
						Sketch: sk,
					})
				}
				return out
			})
		s.metricsReg = r
	})
	return s.metricsReg
}

// Metrics snapshots the server's observability state.
func (s *Server) Metrics() metrics.Snapshot {
	return s.metricsRegistry().Gather()
}

// WriteMetrics renders the server's /metrics document.
func (s *Server) WriteMetrics(w io.Writer) error {
	return s.metricsRegistry().WritePrometheus(w)
}

// MetricsHandler serves the server's metrics in exposition format.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", metrics.ContentType)
		_ = s.WriteMetrics(w)
	})
}

// Metrics returns the merged view: every shard's snapshot folded
// through metrics.Merge (counters and per-shard skew sum, sketches
// merge bin-wise), then the retain-mode flag re-stamped — a mode is
// shared, not additive.
func (ss *ShardedServer) Metrics() (metrics.Snapshot, error) {
	snaps := make([]metrics.Snapshot, len(ss.shards))
	for i, s := range ss.shards {
		snaps[i] = s.Metrics()
	}
	merged, err := metrics.Merge(snaps...)
	if err != nil {
		return nil, err
	}
	for i := range merged {
		if merged[i].Name != retainGaugeName {
			continue
		}
		for j := range merged[i].Samples {
			if ss.o.retain() {
				merged[i].Samples[j].Value = 1
			} else {
				merged[i].Samples[j].Value = 0
			}
		}
	}
	return merged, nil
}

// WriteMetrics renders the merged view.
func (ss *ShardedServer) WriteMetrics(w io.Writer) error {
	snap, err := ss.Metrics()
	if err != nil {
		return err
	}
	return snap.WritePrometheus(w)
}

// MetricsHandler serves the merged view by default; ?shard=N serves
// one collector shard's own registry (the per-shard skew drill-down).
func (ss *ShardedServer) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if q := r.URL.Query().Get("shard"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 || n >= len(ss.shards) {
				http.Error(w, "shard out of range", http.StatusBadRequest)
				return
			}
			ss.shards[n].MetricsHandler().ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", metrics.ContentType)
		if err := ss.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
