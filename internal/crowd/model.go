// Package crowd models the paper's ten-month Google Play deployment
// (§4.2) and regenerates its analyses: the dataset statistics (§4.2.1),
// the per-app measurement figures and tables (§4.2.2), and the DNS
// analyses (§4.2.3).
//
// The real study collected 5,252,758 RTT records from 2,351 devices in
// 114 countries; that population cannot be re-run, so this package
// substitutes a statistical generator calibrated to every marginal the
// paper publishes (country distribution, per-ISP DNS medians, per-app
// medians and counts, network-type splits, the Whatsapp hosting split,
// Jio's LTE-core inflation). The generator emits ordinary
// measure.Records; the analysis pipeline consumes records and device
// metadata only — it would run unchanged on the real dataset.
package crowd

import "time"

// Full-scale dataset constants from §4.2.1. A Config.Scale of 1.0
// reproduces these totals; smaller scales shrink counts and thresholds
// proportionally.
const (
	PaperTotalMeasurements = 5252758
	PaperTCPMeasurements   = 3576931
	PaperDNSMeasurements   = 1675827
	PaperDevices           = 2351
	PaperApps              = 6266
	PaperCountries         = 114
	PaperPhoneModels       = 922
	PaperDomains           = 35351
	PaperDstIPs            = 106182
	PaperDstPorts          = 2427
	PaperDNSServers        = 943
	PaperLocations         = 6987
)

// Launch and cutoff dates of the analysed deployment window.
var (
	DeployStart = time.Date(2016, 5, 16, 0, 0, 0, 0, time.UTC)
	DeployEnd   = time.Date(2017, 1, 3, 0, 0, 0, 0, time.UTC)
)

// countrySpec is one country's share of the device population (Figure 7
// gives the top 20; the tail is spread over the remaining countries).
type countrySpec struct {
	Name  string
	Users int     // Figure 7 user counts
	Lat   float64 // centroid for Figure 8 locations
	Lon   float64
	ISPs  []string // cellular ISPs active in the country
}

// topCountries is Figure 7 verbatim.
var topCountries = []countrySpec{
	{"USA", 790, 39.8, -98.6, []string{"Verizon", "AT&T", "Boost Mobile", "Sprint", "MetroPCS", "T-Mobile", "Cricket", "U.S. Cellular"}},
	{"UK", 116, 54.0, -2.0, []string{"EE", "O2", "Vodafone UK"}},
	{"India", 70, 21.0, 78.0, []string{"Jio 4G", "Airtel", "Vodafone IN"}},
	{"Italy", 68, 42.5, 12.5, []string{"TIM", "Vodafone IT"}},
	{"Malaysia", 43, 4.2, 102.0, []string{"Celcom", "Maxis"}},
	{"Brazil", 41, -10.0, -52.0, []string{"Vivo", "Claro BR"}},
	{"Indonesia", 37, -2.5, 118.0, []string{"Telkomsel", "XL Axiata"}},
	{"Germany", 31, 51.0, 10.0, []string{"Telekom DE", "Vodafone DE"}},
	{"Canada", 26, 56.0, -106.0, []string{"Rogers", "Bell"}},
	{"Mexico", 25, 23.6, -102.5, []string{"Telcel", "Movistar MX"}},
	{"Philippines", 23, 12.9, 121.8, []string{"Globe", "Smart"}},
	{"Australia", 22, -25.0, 134.0, []string{"Telstra", "Optus"}},
	{"Hong Kong", 20, 22.3, 114.2, []string{"3 HK", "CMHK", "CSL"}},
	{"France", 19, 46.6, 2.5, []string{"Orange", "SFR"}},
	{"Russia", 19, 61.5, 99.0, []string{"MTS", "Beeline"}},
	{"Thailand", 18, 15.8, 101.0, []string{"AIS", "TrueMove"}},
	{"Greece", 16, 39.0, 22.0, []string{"Cosmote", "Vodafone GR"}},
	{"ESP", 13, 40.2, -3.7, []string{"Movistar ES", "Orange ES"}},
	{"POL", 13, 52.0, 19.4, []string{"Play", "Orange PL"}},
	{"SGP", 13, 1.35, 103.8, []string{"Singtel", "StarHub"}},
}

// tailCountryNames fills the population out to 114 countries.
var tailCountryNames = []string{
	"Japan", "South Korea", "Taiwan", "Vietnam", "Netherlands", "Belgium",
	"Sweden", "Norway", "Denmark", "Finland", "Austria", "Switzerland",
	"Portugal", "Ireland", "Czechia", "Hungary", "Romania", "Bulgaria",
	"Turkey", "Israel", "UAE", "Saudi Arabia", "Egypt", "Nigeria",
	"Kenya", "South Africa", "Morocco", "Argentina", "Chile", "Colombia",
	"Peru", "Venezuela", "Ecuador", "Uruguay", "Bolivia", "Paraguay",
	"Ukraine", "Belarus", "Serbia", "Croatia", "Slovakia", "Slovenia",
	"Lithuania", "Latvia", "Estonia", "Iceland", "New Zealand", "Fiji",
	"Pakistan", "Bangladesh", "Sri Lanka", "Nepal", "Myanmar", "Cambodia",
	"Laos", "Mongolia", "Kazakhstan", "Uzbekistan", "Georgia", "Armenia",
	"Azerbaijan", "Jordan", "Lebanon", "Kuwait", "Qatar", "Bahrain",
	"Oman", "Iraq", "Tunisia", "Algeria", "Ghana", "Senegal",
	"Ivory Coast", "Cameroon", "Uganda", "Tanzania", "Ethiopia",
	"Zambia", "Zimbabwe", "Botswana", "Mozambique", "Madagascar",
	"Panama", "Costa Rica", "Guatemala", "Honduras", "Nicaragua",
	"El Salvador", "Jamaica", "Trinidad", "Cuba", "Haiti",
	"Dominican Republic", "Puerto Rico",
}

// lteISPSpec holds the Table 6 DNS calibration for one LTE operator:
// measurement share and median DNS RTT, plus the distribution quirks
// Figure 11 highlights.
type lteISPSpec struct {
	Name     string
	Country  string
	PaperN   int     // Table 6 "# RTT"
	MedianMS float64 // Table 6 median DNS RTT
	// FastShare is the fraction of DNS RTTs under 10 ms (Singtel's
	// Tri-band 4G+ gives it 14.7%; Verizon has <1%).
	FastShare float64
	// FloorMS is the minimum RTT; Cricket and U.S. Cellular bottom out
	// near 43 ms (pre-4G implementations, Figure 11).
	FloorMS float64
	// NonLTEShare is the fraction of this ISP's "LTE" DNS samples that
	// actually came from 3G fallback (64% for Cricket, 45% for U.S.
	// Cellular).
	NonLTEShare float64
}

// lteISPs is Table 6 verbatim.
var lteISPs = []lteISPSpec{
	{Name: "Verizon", Country: "USA", PaperN: 80227, MedianMS: 46, FastShare: 0.008},
	{Name: "Jio 4G", Country: "India", PaperN: 52397, MedianMS: 59},
	{Name: "AT&T", Country: "USA", PaperN: 51421, MedianMS: 53},
	{Name: "Singtel", Country: "SGP", PaperN: 34609, MedianMS: 27, FastShare: 0.147},
	{Name: "Boost Mobile", Country: "USA", PaperN: 21854, MedianMS: 50},
	{Name: "Sprint", Country: "USA", PaperN: 20878, MedianMS: 51},
	{Name: "3 HK", Country: "Hong Kong", PaperN: 14354, MedianMS: 53},
	{Name: "MetroPCS", Country: "USA", PaperN: 13282, MedianMS: 60},
	{Name: "T-Mobile", Country: "USA", PaperN: 9084, MedianMS: 45},
	{Name: "CMHK", Country: "Hong Kong", PaperN: 5820, MedianMS: 50},
	{Name: "Celcom", Country: "Malaysia", PaperN: 4120, MedianMS: 56},
	{Name: "CSL", Country: "Hong Kong", PaperN: 3099, MedianMS: 61},
	{Name: "Cricket", Country: "USA", PaperN: 2822, MedianMS: 93, FloorMS: 43, NonLTEShare: 0.64},
	{Name: "Maxis", Country: "Malaysia", PaperN: 2419, MedianMS: 40},
	{Name: "U.S. Cellular", Country: "USA", PaperN: 1988, MedianMS: 76, FloorMS: 43, NonLTEShare: 0.45},
}

// appSpec is one Table 5 app: package, label, measurement count, median
// RTT, category, and the domains it talks to.
type appSpec struct {
	Package  string
	Label    string
	Category string
	PaperN   int
	MedianMS float64
	Domains  []string
}

// repApps is Table 5 verbatim (counts and medians), with representative
// server domains.
var repApps = []appSpec{
	{"com.facebook.katana", "Facebook", "Social", 215769, 61, []string{"graph.facebook.com", "edge-mqtt.facebook.com", "scontent.xx.fbcdn.net"}},
	{"com.instagram.android", "Instagram", "Social", 38640, 50.5, []string{"i.instagram.com", "graph.instagram.com"}},
	{"com.sina.weibo", "Weibo", "Social", 28905, 43, []string{"api.weibo.cn", "upload.api.weibo.com"}},
	{"com.twitter.android", "Twitter", "Social", 11407, 56, []string{"api.twitter.com", "pbs.twimg.com"}},
	{"com.tencent.mm", "WeChat", "Social", 61804, 36, []string{"szshort.weixin.qq.com", "long.weixin.qq.com"}},
	{"com.facebook.orca", "Facebook Messenger", "Communication", 42408, 42, []string{"edge-chat.facebook.com", "graph.facebook.com"}},
	{"com.whatsapp", "Whatsapp", "Communication", 32372, 133, nil}, // domains generated: *.whatsapp.net
	{"com.skype.raider", "Skype", "Communication", 16264, 76, []string{"client-s.gateway.messenger.live.com", "api.skype.com"}},
	{"com.android.vending", "Google Play Store", "Google", 100115, 48, []string{"play.googleapis.com", "android.clients.google.com"}},
	{"com.google.android.gms", "Google Play services", "Google", 60805, 37, []string{"www.googleapis.com", "mtalk.google.com"}},
	{"com.google.android.googlequicksearchbox", "Google Search", "Google", 35858, 45, []string{"www.google.com", "suggestqueries.google.com"}},
	{"com.google.android.apps.maps", "Google Map", "Google", 19996, 38, []string{"maps.googleapis.com", "khms.google.com"}},
	{"com.google.android.youtube", "YouTube", "Video", 99895, 32, []string{"youtubei.googleapis.com", "r1.googlevideo.com"}},
	{"com.netflix.mediaclient", "Netflix", "Video", 28302, 33, []string{"api-global.netflix.com", "nflxvideo.net"}},
	{"com.amazon.mShop.android.shopping", "Amazon", "Shopping", 18313, 59, []string{"www.amazon.com", "fls-na.amazon.com"}},
	{"com.ebay.mobile", "Ebay", "Shopping", 16114, 70, []string{"api.ebay.com", "i.ebayimg.com"}},
}

// Whatsapp hosting split (§4.2.2 Case 1): 334 whatsapp.net domains, of
// which three (mme*, mmg*, pps*) sit on the Facebook CDN with sub-100ms
// medians, and 331 on SoftLayer with a 261 ms median.
const (
	whatsappDomains      = 334
	whatsappFastDomains  = 3
	whatsappSlowMedianMS = 261
	whatsappFastMedianMS = 70
)

// Jio's LTE core (§4.2.2 Case 2): app-traffic median 281 ms against a
// 59 ms DNS median — the inflation lives between the eNodeB and the
// Internet, so it applies to TCP RTTs only.
const (
	jioAppMedianMS = 281
	jioDNSMedianMS = 59
)

// Network-type calibration (Figures 9 and 10).
const (
	wifiShare             = 0.55 // fraction of measurements on WiFi
	cellularLTEShare      = 0.80 // of cellular, fraction on 4G
	cellular3GShare       = 0.17
	wifiAppFactor         = 0.88 // multiplies app base RTT on WiFi
	lteAppFactor          = 1.12
	g3AppFactor           = 1.75
	g2AppFactor           = 5.0
	wifiDNSMedianMS       = 33
	g3DNSMedianMS         = 105
	g2DNSMedianMS         = 755
	defaultLTEDNSMedianMS = 50
)

// Phone model pool for the §4.2.1 device-coverage statistic.
var manufacturers = []string{
	"Samsung", "HTC", "LG", "Motorola", "Huawei", "XiaoMi", "Sony",
	"OnePlus", "Google", "ZTE", "Oppo", "Vivo", "Lenovo", "Asus",
}
