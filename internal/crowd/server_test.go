package crowd

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/measure"
)

func srvRec(dev, app string, ms float64) measure.Record {
	return measure.Record{
		Kind: measure.KindTCP, App: app, UID: 10001,
		Dst:    netip.MustParseAddrPort("203.0.113.7:443"),
		RTT:    time.Duration(ms * float64(time.Millisecond)),
		At:     time.Unix(0, 0).UTC(),
		Device: dev,
	}
}

func srvBatch(dev, key string, seq int, recs ...measure.Record) measure.Batch {
	return measure.Batch{Device: dev, Key: key, Seq: seq, Records: recs}
}

// postBatch uploads one batch, returning the response.
func postBatch(t *testing.T, ts *httptest.Server, token string, b measure.Batch, devHeader string) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if err := measure.EncodeBatch(&body, b); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/upload", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", measure.BatchContentType)
	if devHeader != "" {
		req.Header.Set(DeviceHeader, devHeader)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestServerAcceptAndDedup(t *testing.T) {
	s, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	b := srvBatch("p1", "p1/k/1", 1, srvRec("", "com.app", 10), srvRec("", "com.app", 20))
	if resp := postBatch(t, ts, "", b, "p1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("accept: %s", resp.Status)
	}
	// Redelivery of the same key is absorbed.
	if resp := postBatch(t, ts, "", b, "p1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("redelivery: %s", resp.Status)
	}
	st := s.Stats()
	if st.Batches != 1 || st.Duplicates != 1 || st.Records != 2 {
		t.Errorf("stats: %+v", st)
	}
	recs := s.Records()
	if len(recs) != 2 {
		t.Fatalf("records: %d", len(recs))
	}
	for _, r := range recs {
		if r.Device != "p1" {
			t.Errorf("server did not stamp device: %+v", r)
		}
	}
	if ds := s.Ingest(); ds.DeviceByID("p1") == nil {
		t.Error("ingest lost the device")
	}
}

func TestServerAuth(t *testing.T) {
	s, err := NewServer(ServerOptions{Token: "secret"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	b := srvBatch("p1", "k1", 1, srvRec("", "a", 1))

	if resp := postBatch(t, ts, "wrong", b, "p1"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad token: %s", resp.Status)
	}
	if resp := postBatch(t, ts, "secret", b, ""); resp.StatusCode != http.StatusForbidden {
		t.Errorf("missing device header: %s", resp.Status)
	}
	if resp := postBatch(t, ts, "secret", b, "someone-else"); resp.StatusCode != http.StatusForbidden {
		t.Errorf("device mismatch: %s", resp.Status)
	}
	if resp := postBatch(t, ts, "secret", b, "p1"); resp.StatusCode != http.StatusOK {
		t.Errorf("honest upload: %s", resp.Status)
	}
	st := s.Stats()
	if st.AuthFailures != 3 || st.Batches != 1 {
		t.Errorf("stats: %+v", st)
	}
	// The records endpoint is behind the same token.
	resp, err := ts.Client().Get(ts.URL + "/v1/records")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated records read: %s", resp.Status)
	}
	// The health probe is exempt: liveness checkers carry no token.
	authBefore := s.Stats().AuthFailures
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("tokenless health probe: %s", resp.Status)
	}
	if got := s.Stats().AuthFailures; got != authBefore {
		t.Errorf("health probe counted as auth failure: %d -> %d", authBefore, got)
	}
}

func TestServerBadBatch(t *testing.T) {
	s, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/upload", strings.NewReader("not a batch"))
	req.Header.Set(DeviceHeader, "p1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload: %s", resp.Status)
	}
	if st := s.Stats(); st.BadRequests != 1 || st.Batches != 0 {
		t.Errorf("stats: %+v", st)
	}
}

// The records endpoint serves exactly the accepted dataset as JSONL.
func TestServerRecordsEndpoint(t *testing.T) {
	s, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	postBatch(t, ts, "", srvBatch("p1", "k1", 1, srvRec("", "a", 1)), "p1")
	postBatch(t, ts, "", srvBatch("p2", "k2", 1, srvRec("", "b", 2)), "p2")

	resp, err := ts.Client().Get(ts.URL + "/v1/records")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := measure.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Records()
	if len(got) != len(want) {
		t.Fatalf("served %d records, hold %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("record %d diverges: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// A spool-backed server survives a restart: records, and the dedup
// keys, replay from disk.
func TestServerSpoolRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewServer(ServerOptions{SpoolDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	postBatch(t, ts1, "", srvBatch("p1", "k1", 1, srvRec("", "a", 1), srvRec("", "a", 2)), "p1")
	postBatch(t, ts1, "", srvBatch("p1", "k2", 2, srvRec("", "a", 3)), "p1")
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(ServerOptions{SpoolDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if st := s2.Stats(); st.Batches != 2 || st.Records != 3 {
		t.Fatalf("replayed stats: %+v", st)
	}
	// A key accepted before the restart still dedups after it.
	postBatch(t, ts2, "", srvBatch("p1", "k1", 1, srvRec("", "a", 1), srvRec("", "a", 2)), "p1")
	if st := s2.Stats(); st.Duplicates != 1 || st.Records != 3 {
		t.Errorf("post-restart dedup: %+v", st)
	}
	// ReadSpool (the offline crowdstudy path) sees the same dataset.
	recs, err := ReadSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("offline spool read: %d records", len(recs))
	}
}

// A crash-truncated batch at the spool tail is dropped at replay, the
// file is healed, and the retried batch is accepted again.
func TestSpoolPartialTail(t *testing.T) {
	dir := t.TempDir()
	spool, _, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := srvBatch("p1", "k-good", 1, srvRec("p1", "a", 1))
	if err := spool.Append(good); err != nil {
		t.Fatal(err)
	}
	bad := srvBatch("p1", "k-bad", 2, srvRec("p1", "a", 2), srvRec("p1", "a", 3))
	if err := spool.Append(bad); err != nil {
		t.Fatal(err)
	}
	spool.Close()
	// Simulate the crash: cut the file inside the last record.
	path := filepath.Join(dir, spoolFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-15], 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := NewServer(ServerOptions{SpoolDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.Stats(); st.Batches != 1 || st.Records != 1 {
		t.Fatalf("tail not dropped: %+v", st)
	}
	// The truncated batch's key was never committed: its retry lands.
	ts := httptest.NewServer(s)
	defer ts.Close()
	if resp := postBatch(t, ts, "", bad, "p1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after heal: %s", resp.Status)
	}
	st := s.Stats()
	if st.Batches != 2 || st.Records != 3 || st.Duplicates != 0 {
		t.Errorf("after retry: %+v", st)
	}
	// And the healed file replays cleanly.
	recs, err := ReadSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("healed spool: %d records", len(recs))
	}
}
