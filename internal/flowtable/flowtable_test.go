package flowtable

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"repro/internal/packet"
)

func key(i int) packet.FlowKey {
	return packet.FlowKey{
		Proto: packet.ProtoTCP,
		Src:   netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}), uint16(1024+i)),
		Dst:   netip.AddrPortFrom(netip.AddrFrom4([4]byte{93, 184, 216, 34}), 443),
	}
}

func TestNewRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {-5, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := New[int](tc.in).Shards(); got != tc.want {
			t.Errorf("New(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestPutGetDelete(t *testing.T) {
	tb := New[string](8)
	k := key(1)
	if _, ok := tb.Get(k); ok {
		t.Fatal("empty table returned a value")
	}
	tb.Put(k, "a")
	if v, ok := tb.Get(k); !ok || v != "a" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if got, stored := tb.PutIfAbsent(k, "b"); stored || got != "a" {
		t.Fatalf("PutIfAbsent on present key: %q, %v", got, stored)
	}
	if !tb.Delete(k) {
		t.Fatal("Delete missed a present key")
	}
	if tb.Delete(k) {
		t.Fatal("Delete reported a removed key as present")
	}
	if got, stored := tb.PutIfAbsent(k, "b"); !stored || got != "b" {
		t.Fatalf("PutIfAbsent on absent key: %q, %v", got, stored)
	}
}

func TestHashIsStableAndShardInRange(t *testing.T) {
	tb := New[int](16)
	for i := 0; i < 200; i++ {
		k := key(i)
		if Hash(k) != Hash(k) {
			t.Fatal("hash not stable")
		}
		s := tb.Shard(k)
		if s < 0 || s >= tb.Shards() {
			t.Fatalf("shard %d out of range", s)
		}
		if s != tb.Shard(k) {
			t.Fatal("shard not stable")
		}
	}
}

func TestShardsSpreadFlows(t *testing.T) {
	tb := New[int](16)
	counts := make([]int, tb.Shards())
	const n = 4096
	for i := 0; i < n; i++ {
		counts[tb.Shard(key(i))]++
	}
	for s, c := range counts {
		// Perfectly even would be n/16 = 256; allow a wide band, we
		// only care that no shard is starved or hot.
		if c < n/64 || c > n/4 {
			t.Errorf("shard %d holds %d of %d flows", s, c, n)
		}
	}
}

func TestLenForEachDrain(t *testing.T) {
	tb := New[int](4)
	const n = 100
	for i := 0; i < n; i++ {
		tb.Put(key(i), i)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	seen := map[int]bool{}
	tb.ForEach(func(_ packet.FlowKey, v int) { seen[v] = true })
	if len(seen) != n {
		t.Fatalf("ForEach visited %d, want %d", len(seen), n)
	}
	vals := tb.Drain()
	if len(vals) != n || tb.Len() != 0 {
		t.Fatalf("Drain returned %d, Len now %d", len(vals), tb.Len())
	}
}

func TestForEachMayMutate(t *testing.T) {
	tb := New[int](4)
	for i := 0; i < 20; i++ {
		tb.Put(key(i), i)
	}
	// fn runs outside the shard lock, so deleting from inside must not
	// deadlock.
	tb.ForEach(func(k packet.FlowKey, _ int) { tb.Delete(k) })
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after self-delete", tb.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	tb := New[int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(g*500 + i)
				tb.Put(k, i)
				tb.Get(k)
				if i%3 == 0 {
					tb.Delete(k)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			tb.Len()
			tb.ForEach(func(packet.FlowKey, int) {})
		}
		close(done)
	}()
	wg.Wait()
	<-done
}

func BenchmarkShardedVsSingleLock(b *testing.B) {
	for _, shards := range []int{1, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tb := New[int](shards)
			keys := make([]packet.FlowKey, 256)
			for i := range keys {
				keys[i] = key(i)
				tb.Put(keys[i], i)
			}
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					tb.Get(keys[i%len(keys)])
					i++
				}
			})
		})
	}
}

func TestDeleteFunc(t *testing.T) {
	tb := New[int](8)
	for i := 0; i < 100; i++ {
		tb.Put(key(i), i)
	}
	removed := tb.DeleteFunc(func(_ packet.FlowKey, v int) bool { return v%2 == 0 })
	if len(removed) != 50 {
		t.Fatalf("removed %d, want 50", len(removed))
	}
	for _, v := range removed {
		if v%2 != 0 {
			t.Fatalf("removed odd value %d", v)
		}
	}
	if tb.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tb.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tb.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	if got := tb.DeleteFunc(func(packet.FlowKey, int) bool { return false }); len(got) != 0 {
		t.Fatalf("no-op DeleteFunc removed %d", len(got))
	}
}
