package flowtable

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"repro/internal/packet"
)

func key(i int) packet.FlowKey {
	return packet.FlowKey{
		Proto: packet.ProtoTCP,
		Src:   netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}), uint16(1024+i)),
		Dst:   netip.AddrPortFrom(netip.AddrFrom4([4]byte{93, 184, 216, 34}), 443),
	}
}

func TestNewRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {-5, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := New[int](tc.in).Shards(); got != tc.want {
			t.Errorf("New(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestPutGetDelete(t *testing.T) {
	tb := New[string](8)
	k := key(1)
	if _, ok := tb.Get(k); ok {
		t.Fatal("empty table returned a value")
	}
	tb.Put(k, "a")
	if v, ok := tb.Get(k); !ok || v != "a" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if got, stored := tb.PutIfAbsent(k, "b"); stored || got != "a" {
		t.Fatalf("PutIfAbsent on present key: %q, %v", got, stored)
	}
	if !tb.Delete(k) {
		t.Fatal("Delete missed a present key")
	}
	if tb.Delete(k) {
		t.Fatal("Delete reported a removed key as present")
	}
	if got, stored := tb.PutIfAbsent(k, "b"); !stored || got != "b" {
		t.Fatalf("PutIfAbsent on absent key: %q, %v", got, stored)
	}
}

func TestHashIsStableAndShardInRange(t *testing.T) {
	tb := New[int](16)
	for i := 0; i < 200; i++ {
		k := key(i)
		if Hash(k) != Hash(k) {
			t.Fatal("hash not stable")
		}
		s := tb.Shard(k)
		if s < 0 || s >= tb.Shards() {
			t.Fatalf("shard %d out of range", s)
		}
		if s != tb.Shard(k) {
			t.Fatal("shard not stable")
		}
	}
}

func TestShardsSpreadFlows(t *testing.T) {
	tb := New[int](16)
	counts := make([]int, tb.Shards())
	const n = 4096
	for i := 0; i < n; i++ {
		counts[tb.Shard(key(i))]++
	}
	for s, c := range counts {
		// Perfectly even would be n/16 = 256; allow a wide band, we
		// only care that no shard is starved or hot.
		if c < n/64 || c > n/4 {
			t.Errorf("shard %d holds %d of %d flows", s, c, n)
		}
	}
}

func TestLenForEachDrain(t *testing.T) {
	tb := New[int](4)
	const n = 100
	for i := 0; i < n; i++ {
		tb.Put(key(i), i)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	seen := map[int]bool{}
	tb.ForEach(func(_ packet.FlowKey, v int) { seen[v] = true })
	if len(seen) != n {
		t.Fatalf("ForEach visited %d, want %d", len(seen), n)
	}
	vals := tb.Drain()
	if len(vals) != n || tb.Len() != 0 {
		t.Fatalf("Drain returned %d, Len now %d", len(vals), tb.Len())
	}
}

func TestForEachMayMutate(t *testing.T) {
	tb := New[int](4)
	for i := 0; i < 20; i++ {
		tb.Put(key(i), i)
	}
	// fn runs outside the shard lock, so deleting from inside must not
	// deadlock.
	tb.ForEach(func(k packet.FlowKey, _ int) { tb.Delete(k) })
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after self-delete", tb.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	tb := New[int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(g*500 + i)
				tb.Put(k, i)
				tb.Get(k)
				if i%3 == 0 {
					tb.Delete(k)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			tb.Len()
			tb.ForEach(func(packet.FlowKey, int) {})
		}
		close(done)
	}()
	wg.Wait()
	<-done
}

func BenchmarkShardedVsSingleLock(b *testing.B) {
	for _, shards := range []int{1, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tb := New[int](shards)
			keys := make([]packet.FlowKey, 256)
			for i := range keys {
				keys[i] = key(i)
				tb.Put(keys[i], i)
			}
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					tb.Get(keys[i%len(keys)])
					i++
				}
			})
		})
	}
}

// TestDeleteFuncIdleExpiryBoundaries is the table-driven boundary suite
// for DeleteFunc as the UDP relay's idle sweeper uses it: values are
// lastUsed timestamps, the predicate is the sweep's strict
// `lastUsed < now - idle` comparison. The boundary that matters: a
// session whose last datagram landed exactly one idle period ago is NOT
// expired (strictly-less keeps the newest eligible session alive, so an
// app ticking at exactly the idle period never loses its NAT mapping),
// and a zero idle window expires everything except entries touched at
// the sweep instant.
func TestDeleteFuncIdleExpiryBoundaries(t *testing.T) {
	const now = int64(1_000_000)
	sweep := func(tb *Table[int64], idle int64) []int64 {
		cutoff := now - idle
		return tb.DeleteFunc(func(_ packet.FlowKey, lastUsed int64) bool {
			return lastUsed < cutoff
		})
	}
	cases := []struct {
		name     string
		idle     int64
		lastUsed []int64 // per-entry timestamps
		expire   []bool  // expected expiry per entry
	}{
		{
			name:     "exactly at the idle boundary survives",
			idle:     100,
			lastUsed: []int64{now - 100},
			expire:   []bool{false},
		},
		{
			name:     "one tick past the boundary expires",
			idle:     100,
			lastUsed: []int64{now - 101},
			expire:   []bool{true},
		},
		{
			name:     "zero idle expires everything stale, keeps the current instant",
			idle:     0,
			lastUsed: []int64{now, now - 1, now - 100, 0},
			expire:   []bool{false, true, true, true},
		},
		{
			name:     "mixed population straddling the cutoff",
			idle:     50,
			lastUsed: []int64{now, now - 49, now - 50, now - 51, now - 500},
			expire:   []bool{false, false, false, true, true},
		},
		{
			name:     "future timestamp never expires",
			idle:     50,
			lastUsed: []int64{now + 1000},
			expire:   []bool{false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := New[int64](8)
			wantGone := map[int64]bool{}
			wantRemoved := 0
			for i, lu := range tc.lastUsed {
				tb.Put(key(i), lu)
				if tc.expire[i] {
					wantGone[lu] = true
					wantRemoved++
				}
			}
			removed := sweep(tb, tc.idle)
			if len(removed) != wantRemoved {
				t.Fatalf("removed %d entries, want %d (removed: %v)", len(removed), wantRemoved, removed)
			}
			for _, lu := range removed {
				if !wantGone[lu] {
					t.Errorf("entry lastUsed=%d expired; boundary is strict `<`", lu)
				}
			}
			if got, want := tb.Len(), len(tc.lastUsed)-wantRemoved; got != want {
				t.Errorf("Len after sweep = %d, want %d", got, want)
			}
			// Survivors are still retrievable, expired ones are gone.
			for i, lu := range tc.lastUsed {
				_, ok := tb.Get(key(i))
				if ok == tc.expire[i] {
					t.Errorf("entry %d (lastUsed=%d): present=%v, want %v", i, lu, ok, !tc.expire[i])
				}
			}
		})
	}
}

// TestDeleteFuncDeleteDuringIteration covers the delete-while-ranging
// corner: the predicate removes entries from the very shard map being
// iterated (DeleteFunc deletes inside its range loop). Removing every
// entry, alternating entries, and re-sweeping an already-swept table
// must all be exact — no skipped entries, no double deletes, Len
// consistent throughout.
func TestDeleteFuncDeleteDuringIteration(t *testing.T) {
	tb := New[int](4) // few shards → many deletions per ranged map
	const n = 256
	for i := 0; i < n; i++ {
		tb.Put(key(i), i)
	}
	odd := tb.DeleteFunc(func(_ packet.FlowKey, v int) bool { return v%2 == 1 })
	if len(odd) != n/2 {
		t.Fatalf("first sweep removed %d, want %d", len(odd), n/2)
	}
	// Second sweep over the survivors removes everything that's left.
	rest := tb.DeleteFunc(func(packet.FlowKey, int) bool { return true })
	if len(rest) != n/2 {
		t.Fatalf("second sweep removed %d, want %d", len(rest), n/2)
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after full sweep", tb.Len())
	}
	// Sweeping an empty table is a no-op, not a panic or a negative Len.
	if got := tb.DeleteFunc(func(packet.FlowKey, int) bool { return true }); len(got) != 0 {
		t.Fatalf("sweep of empty table removed %d", len(got))
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after empty sweep", tb.Len())
	}
	seen := map[int]bool{}
	for _, v := range append(odd, rest...) {
		if seen[v] {
			t.Fatalf("value %d removed twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("sweeps returned %d distinct values, want %d", len(seen), n)
	}
}

// TestDeleteFuncConcurrentWithPut races sweeps against writers: every
// entry must end up either surviving in the table or in exactly one
// sweep's removed set.
func TestDeleteFuncConcurrentWithPut(t *testing.T) {
	tb := New[int](8)
	const writers = 4
	const perWriter = 300
	var wg sync.WaitGroup
	removed := make([][]int, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tb.Put(key(g*perWriter+i), g*perWriter+i)
				if i%16 == 0 {
					vs := tb.DeleteFunc(func(_ packet.FlowKey, v int) bool { return v%7 == 0 })
					removed[g] = append(removed[g], vs...)
				}
			}
		}(g)
	}
	wg.Wait()
	seen := map[int]int{}
	for _, rs := range removed {
		for _, v := range rs {
			seen[v]++
			if seen[v] > 1 {
				t.Fatalf("value %d removed by two sweeps", v)
			}
		}
	}
	// Anything a sweep removed must be gone; anything still present
	// must not be in any removed set.
	for i := 0; i < writers*perWriter; i++ {
		_, present := tb.Get(key(i))
		if present && seen[i] > 0 {
			t.Fatalf("value %d both present and removed", i)
		}
		if i%7 == 0 && present {
			// Legal: put after the last sweep. Just ensure Len agrees.
			continue
		}
	}
}

func TestDeleteFunc(t *testing.T) {
	tb := New[int](8)
	for i := 0; i < 100; i++ {
		tb.Put(key(i), i)
	}
	removed := tb.DeleteFunc(func(_ packet.FlowKey, v int) bool { return v%2 == 0 })
	if len(removed) != 50 {
		t.Fatalf("removed %d, want 50", len(removed))
	}
	for _, v := range removed {
		if v%2 != 0 {
			t.Fatalf("removed odd value %d", v)
		}
	}
	if tb.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tb.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tb.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	if got := tb.DeleteFunc(func(packet.FlowKey, int) bool { return false }); len(got) != 0 {
		t.Fatalf("no-op DeleteFunc removed %d", len(got))
	}
}
