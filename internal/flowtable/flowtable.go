// Package flowtable provides the engine's sharded flow-state table.
//
// The paper's MopEye keeps one flat map from FlowKey to TCP client
// because a phone relays a single user's traffic through a single
// MainWorker thread (Figure 4). Scaling the relay across cores makes
// that map — and the one mutex in front of it — the serialisation
// point for every packet, every socket event, and every stats snapshot.
//
// The table here hashes each flow to one of N shards, each with its own
// mutex and map. Lookups for different flows proceed in parallel, and
// the shard index doubles as the flow's worker pin: the engine routes
// all events of a flow to the worker that owns its shard, so per-flow
// ordering is preserved without any cross-worker locking.
package flowtable

import (
	"sync"
	"sync/atomic"

	"repro/internal/packet"
)

// DefaultShards is the shard count used when New is given n <= 0. It is
// deliberately larger than any realistic worker count so that shard →
// worker assignment spreads evenly.
const DefaultShards = 32

// Hash returns a stable 64-bit hash of a flow key (FNV-1a over the
// protocol, addresses, and ports, with an avalanche finisher). The same
// key always lands in the same shard, across tables of any size.
//
// The finisher matters: plain FNV-1a's low bit is the XOR parity of the
// input bytes (multiplying by an odd prime preserves bit 0), and flow
// keys are structured enough — a source port counting in step with a
// source address — for that parity to be constant, which would leave
// half the shards empty.
func Hash(k packet.FlowKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix(k.Proto)
	for _, ap := range [2]struct {
		a [16]byte
		p uint16
	}{
		{k.Src.Addr().As16(), k.Src.Port()},
		{k.Dst.Addr().As16(), k.Dst.Port()},
	} {
		for _, b := range ap.a {
			mix(b)
		}
		mix(byte(ap.p))
		mix(byte(ap.p >> 8))
	}
	// Murmur3-style avalanche so every input bit reaches every output
	// bit, the low ones included.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// shard is one lock domain: a mutex and the flows hashed to it.
type shard[V any] struct {
	mu    sync.Mutex
	flows map[packet.FlowKey]V
}

// Table is an N-way sharded flow map. The zero value is not usable;
// construct with New.
type Table[V any] struct {
	shards []shard[V]
	mask   uint64
	size   atomic.Int64
}

// New creates a table with n shards, rounded up to a power of two so
// the shard index is a mask, not a division. n <= 0 selects
// DefaultShards.
func New[V any](n int) *Table[V] {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	t := &Table[V]{shards: make([]shard[V], size), mask: uint64(size - 1)}
	for i := range t.shards {
		t.shards[i].flows = make(map[packet.FlowKey]V)
	}
	return t
}

// Shards returns the shard count.
func (t *Table[V]) Shards() int { return len(t.shards) }

// Shard returns the shard index a key hashes to. The engine pins each
// flow to worker Shard(key) % workers.
func (t *Table[V]) Shard(k packet.FlowKey) int {
	return int(Hash(k) & t.mask)
}

// Get returns the value stored for k.
func (t *Table[V]) Get(k packet.FlowKey) (V, bool) {
	s := &t.shards[t.Shard(k)]
	s.mu.Lock()
	v, ok := s.flows[k]
	s.mu.Unlock()
	return v, ok
}

// Put stores v under k, replacing any existing value.
func (t *Table[V]) Put(k packet.FlowKey, v V) {
	s := &t.shards[t.Shard(k)]
	s.mu.Lock()
	_, existed := s.flows[k]
	s.flows[k] = v
	s.mu.Unlock()
	if !existed {
		t.size.Add(1)
	}
}

// PutIfAbsent stores v under k unless a value already exists; it
// returns the value now in the table and whether the store happened.
func (t *Table[V]) PutIfAbsent(k packet.FlowKey, v V) (V, bool) {
	s := &t.shards[t.Shard(k)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.flows[k]; ok {
		return old, false
	}
	s.flows[k] = v
	t.size.Add(1)
	return v, true
}

// Delete removes k. It reports whether a value was present.
func (t *Table[V]) Delete(k packet.FlowKey) bool {
	s := &t.shards[t.Shard(k)]
	s.mu.Lock()
	_, ok := s.flows[k]
	delete(s.flows, k)
	s.mu.Unlock()
	if ok {
		t.size.Add(-1)
	}
	return ok
}

// Len returns the stored flow count, maintained as an atomic so the
// engine can report connection counts on the SYN hot path without
// touching any shard lock.
func (t *Table[V]) Len() int {
	return int(t.size.Load())
}

// ForEach calls fn for every stored flow, one shard at a time. fn runs
// outside the shard lock (entries are copied per shard first), so it
// may call back into the table.
func (t *Table[V]) ForEach(fn func(k packet.FlowKey, v V)) {
	type entry struct {
		k packet.FlowKey
		v V
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		batch := make([]entry, 0, len(s.flows))
		for k, v := range s.flows {
			batch = append(batch, entry{k, v})
		}
		s.mu.Unlock()
		for _, e := range batch {
			fn(e.k, e.v)
		}
	}
}

// DeleteFunc removes every flow for which pred returns true, one shard
// at a time, and returns the removed values. pred runs under the shard
// lock, so it must be fast and must not call back into the table — the
// UDP session table uses it for idle expiry, where pred is a single
// atomic timestamp comparison.
func (t *Table[V]) DeleteFunc(pred func(k packet.FlowKey, v V) bool) []V {
	var out []V
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, v := range s.flows {
			if pred(k, v) {
				out = append(out, v)
				delete(s.flows, k)
			}
		}
		s.mu.Unlock()
	}
	t.size.Add(int64(-len(out)))
	return out
}

// Drain removes every flow and returns the removed values — the
// engine's shutdown sweep.
func (t *Table[V]) Drain() []V {
	var out []V
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, v := range s.flows {
			out = append(out, v)
			delete(s.flows, k)
		}
		s.mu.Unlock()
	}
	t.size.Add(int64(-len(out)))
	return out
}
