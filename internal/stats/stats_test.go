package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median: %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median: %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty median: %v", got)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 9 {
		t.Errorf("endpoints: %v %v", Quantile(xs, 0), Quantile(xs, 1))
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.25); !almostEqual(got, 2.5, 1e-9) {
		t.Errorf("q25: %v", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("mean: %v", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2.138, 0.001) {
		t.Errorf("stddev: %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("single-sample stddev should be 0")
	}
}

func TestMeanCI95(t *testing.T) {
	xs := make([]float64, 400)
	rng := rand.New(rand.NewSource(5))
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	mean, hw := MeanCI95(xs)
	if !almostEqual(mean, 10, 0.2) {
		t.Errorf("mean: %v", mean)
	}
	// 95% CI half width for sigma=1, n=400 is about 1.96/20 ~ 0.098.
	if hw < 0.05 || hw > 0.2 {
		t.Errorf("half width: %v", hw)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("min/max: %v %v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max should be 0")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFFractionBelow(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30})
	if got := c.FractionBelow(20); !almostEqual(got, 1.0/3, 1e-9) {
		t.Errorf("FractionBelow(20) = %v", got)
	}
}

func TestCDFSeries(t *testing.T) {
	c := NewCDF([]float64{0, 50, 100})
	pts := c.Series(0, 100, 3)
	if len(pts) != 3 {
		t.Fatalf("points: %d", len(pts))
	}
	if pts[0].X != 0 || pts[2].X != 100 {
		t.Errorf("x range: %v..%v", pts[0].X, pts[2].X)
	}
	if pts[2].Y != 1 {
		t.Errorf("final y: %v", pts[2].Y)
	}
}

func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
	}
	c := NewCDF(xs)
	prev := -1.0
	for _, p := range c.Series(0, 500, 101) {
		if p.Y < prev {
			t.Fatalf("CDF not monotone at x=%v", p.X)
		}
		prev = p.Y
	}
}

func TestDelayHistogramBuckets(t *testing.T) {
	var h DelayHistogram
	h.Add(500 * time.Microsecond)
	h.Add(1500 * time.Microsecond)
	h.Add(3 * time.Millisecond)
	h.Add(7 * time.Millisecond)
	h.Add(50 * time.Millisecond)
	want := [5]int{1, 1, 1, 1, 1}
	if h.Counts != want {
		t.Errorf("counts: %v", h.Counts)
	}
	if h.Total != 5 || h.LargeOverheads() != 4 {
		t.Errorf("total %d large %d", h.Total, h.LargeOverheads())
	}
	if !almostEqual(h.LargeFraction(), 0.8, 1e-9) {
		t.Errorf("large fraction: %v", h.LargeFraction())
	}
}

func TestDelayHistogramBoundaries(t *testing.T) {
	var h DelayHistogram
	h.Add(time.Millisecond) // exactly 1ms goes to the 1~2ms bucket
	if h.Counts[1] != 1 {
		t.Errorf("1ms bucket: %v", h.Counts)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, x := range []float64{5, 10, 50, 500, 5000} {
		h.Add(x)
	}
	want := []int{1, 2, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 5 {
		t.Errorf("total: %d", h.Total())
	}
}

func TestDurationsToMillis(t *testing.T) {
	got := DurationsToMillis([]time.Duration{time.Millisecond, 2500 * time.Microsecond})
	if got[0] != 1 || got[1] != 2.5 {
		t.Errorf("%v", got)
	}
}

// Property: Quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		return v1 <= v2 && v1 >= Min(xs) && v2 <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CDF.At agrees with a direct count.
func TestQuickCDFAgainstDirectCount(t *testing.T) {
	f := func(raw []float64, x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		c := NewCDF(xs)
		count := 0
		for _, v := range xs {
			if v <= x {
				count++
			}
		}
		want := 0.0
		if len(xs) > 0 {
			want = float64(count) / float64(len(xs))
		}
		return almostEqual(c.At(x), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Median sits between the extremes and equals the sorted
// middle for odd-length inputs.
func TestQuickMedian(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		if m < Min(xs) || m > Max(xs) {
			return false
		}
		if len(xs)%2 == 1 {
			s := append([]float64(nil), xs...)
			sort.Float64s(s)
			return m == s[len(s)/2]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
