// Package stats provides the statistical primitives the MopEye evaluation
// relies on: quantiles (the paper reports medians throughout), empirical
// CDFs sampled at fixed anchors (Figures 5 and 9–11), delay histograms
// with the bucket boundaries of Table 1, and mean confidence intervals
// (§4.1.2 reports 95% CIs for the relay overhead).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MeanCI95 returns the mean of xs together with the half-width of its 95%
// confidence interval using the normal approximation (the sample counts in
// the paper's overhead experiments are large enough for this).
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	halfWidth = 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CDF is an empirical cumulative distribution function over float64
// samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the underlying samples.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return quantileSorted(c.sorted, q)
}

// Median returns the 0.5-quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Series samples the CDF at evenly spaced x values between lo and hi
// inclusive and returns (x, P(X<=x)) pairs. This is how the paper's CDF
// figures are regenerated as printable series.
func (c *CDF) Series(lo, hi float64, points int) []Point {
	if points < 2 {
		points = 2
	}
	out := make([]Point, 0, points)
	step := (hi - lo) / float64(points-1)
	for i := 0; i < points; i++ {
		x := lo + float64(i)*step
		out = append(out, Point{X: x, Y: c.At(x)})
	}
	return out
}

// Point is one (x, y) sample of a plotted series.
type Point struct {
	X, Y float64
}

// FractionBelow returns the fraction of samples strictly below x.
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	return float64(i) / float64(len(c.sorted))
}

// DelayHistogram buckets durations using the boundaries of Table 1:
// 0–1 ms, 1–2 ms, 2–5 ms, 5–10 ms, > 10 ms.
type DelayHistogram struct {
	Total  int
	Counts [5]int // indexes correspond to Buckets
}

// BucketLabels are the row labels of Table 1.
var BucketLabels = [5]string{"0~1ms", "1~2ms", "2~5ms", "5~10ms", ">10ms"}

// Add records one delay sample.
func (h *DelayHistogram) Add(d time.Duration) {
	h.Total++
	ms := d.Seconds() * 1000
	switch {
	case ms < 1:
		h.Counts[0]++
	case ms < 2:
		h.Counts[1]++
	case ms < 5:
		h.Counts[2]++
	case ms < 10:
		h.Counts[3]++
	default:
		h.Counts[4]++
	}
}

// LargeOverheads returns the number of samples above 1 ms, the quantity
// §3.5.1 calls "large writing overheads".
func (h *DelayHistogram) LargeOverheads() int {
	return h.Counts[1] + h.Counts[2] + h.Counts[3] + h.Counts[4]
}

// LargeFraction returns LargeOverheads()/Total, or 0 when empty.
func (h *DelayHistogram) LargeFraction() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.LargeOverheads()) / float64(h.Total)
}

// String renders the histogram as a Table 1 style column.
func (h *DelayHistogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Total %d", h.Total)
	for i, label := range BucketLabels {
		fmt.Fprintf(&b, "; %s %d", label, h.Counts[i])
	}
	return b.String()
}

// DurationsToMillis converts durations to float64 milliseconds, the unit
// every figure in the paper uses.
func DurationsToMillis(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds() * 1000
	}
	return out
}

// Histogram counts samples into caller-defined right-open buckets
// [bounds[i], bounds[i+1]). Samples below bounds[0] fall into the first
// bucket; samples at or above the last bound fall into the last.
type Histogram struct {
	Bounds []float64
	Counts []int
}

// NewHistogram creates a histogram with len(bounds)+1 buckets.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	// SearchFloat64s returns the insertion index, which is exactly the
	// bucket: x < Bounds[0] -> 0, x >= Bounds[last] -> len(Bounds).
	if i < len(h.Bounds) && h.Bounds[i] == x {
		i++
	}
	h.Counts[i]++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}
