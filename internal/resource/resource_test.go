package resource

import (
	"testing"
	"time"
)

func TestWakeupsDominatePollingRelay(t *testing.T) {
	// The Table 4 mechanism: a poll-based relay accumulates empty
	// wakeups that a blocking-read relay never pays.
	polling := NewMeter(DefaultCosts(), 10)
	blocking := NewMeter(DefaultCosts(), 10)
	// Same traffic.
	polling.AddPackets(10000, 10000*1460)
	blocking.AddPackets(10000, 10000*1460)
	// Polling adds 1 kHz of futile wakeups over 10 s.
	polling.AddWakeups(10000)
	run := 10 * time.Second
	p, b := polling.Report(run), blocking.Report(run)
	if p.CPUPercent <= b.CPUPercent {
		t.Errorf("polling CPU %.2f%% not above blocking %.2f%%", p.CPUPercent, b.CPUPercent)
	}
	if p.BatteryPct <= b.BatteryPct {
		t.Error("battery does not follow CPU")
	}
}

func TestInspectionCost(t *testing.T) {
	inspecting := NewMeter(DefaultCosts(), 10)
	plain := NewMeter(DefaultCosts(), 10)
	inspecting.AddPackets(1000, 1000*1460)
	plain.AddPackets(1000, 1000*1460)
	inspecting.AddInspected(1000)
	run := time.Second
	if inspecting.Report(run).CPUPercent <= plain.Report(run).CPUPercent {
		t.Error("inspection cost not charged")
	}
}

func TestMemoryModel(t *testing.T) {
	m := NewMeter(DefaultCosts(), 12)
	u := m.Report(time.Second)
	if u.MemoryMB != 12 {
		t.Errorf("baseline memory: %v", u.MemoryMB)
	}
	m.AddBufferMemMB(100)
	m.ObserveConns(8)
	u = m.Report(time.Second)
	if u.MemoryMB <= 112 {
		t.Errorf("memory after buffers+conns: %v", u.MemoryMB)
	}
}

func TestConnHighWaterMark(t *testing.T) {
	m := NewMeter(DefaultCosts(), 0)
	m.ObserveConns(5)
	m.ObserveConns(20)
	m.ObserveConns(3)
	u20 := m.Report(time.Second).MemoryMB
	m2 := NewMeter(DefaultCosts(), 0)
	m2.ObserveConns(3)
	if m2.Report(time.Second).MemoryMB >= u20 {
		t.Error("high-water mark not kept")
	}
}

func TestZeroRunDuration(t *testing.T) {
	m := NewMeter(DefaultCosts(), 5)
	m.AddPackets(100, 100)
	u := m.Report(0)
	if u.CPUPercent != 0 {
		t.Errorf("cpu%% with zero duration: %v", u.CPUPercent)
	}
	if u.CPUSeconds <= 0 {
		t.Error("cpu seconds lost")
	}
}

func TestCounters(t *testing.T) {
	m := NewMeter(DefaultCosts(), 0)
	m.AddWakeups(3)
	m.AddPackets(4, 500)
	m.AddInspected(2)
	w, p, by, insp := m.Counters()
	if w != 3 || p != 4 || by != 500 || insp != 2 {
		t.Errorf("counters: %d %d %d %d", w, p, by, insp)
	}
}

func TestCPUScalesLinearly(t *testing.T) {
	m1 := NewMeter(DefaultCosts(), 0)
	m2 := NewMeter(DefaultCosts(), 0)
	m1.AddPackets(1000, 0)
	m2.AddPackets(2000, 0)
	r1 := m1.Report(time.Second).CPUSeconds
	r2 := m2.Report(time.Second).CPUSeconds
	if r2 < 1.9*r1 || r2 > 2.1*r1 {
		t.Errorf("not linear: %v vs %v", r1, r2)
	}
}
