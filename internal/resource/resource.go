// Package resource models the phone-side resource consumption that
// Table 4 of the paper reports (CPU, battery, memory) from counters the
// engine exposes: thread wakeups, packets and bytes relayed, and
// retained buffer sizes.
//
// We cannot meter a real battery; instead a fixed cost model converts
// counted work into CPU time and drain. The model's constants are
// calibrated so that the *mechanisms* the paper identifies dominate: a
// relay that "has to keep executing the VPN read() regardless [of]
// whether there are app packets" (Haystack) burns CPU on empty wakeups,
// while a blocking-read relay (MopEye) pays only per packet. The output
// ranking therefore follows from counted behaviour, not from hardcoded
// results.
package resource

import (
	"sync"
	"time"
)

// CostConstants convert counted work into CPU time.
type CostConstants struct {
	// PerWakeup is the cost of one futile poll wakeup (syscall +
	// scheduler round trip).
	PerWakeup time.Duration
	// PerPacket is the per-packet relay processing cost (parse, map
	// lookup, enqueue, state machine).
	PerPacket time.Duration
	// PerKByte is the copy cost per kilobyte moved.
	PerKByte time.Duration
	// PerInspectedPacket is extra work for traffic-content inspection
	// (zero for MopEye, which deliberately performs none — §5).
	PerInspectedPacket time.Duration
}

// DefaultCosts returns constants representative of a mid-2010s phone
// SoC.
func DefaultCosts() CostConstants {
	return CostConstants{
		PerWakeup:          60 * time.Microsecond,
		PerPacket:          25 * time.Microsecond,
		PerKByte:           2 * time.Microsecond,
		PerInspectedPacket: 75 * time.Microsecond,
	}
}

// Meter accumulates work counters.
type Meter struct {
	costs CostConstants

	mu        sync.Mutex
	wakeups   int64
	packets   int64
	bytes     int64
	inspected int64
	baseMemMB float64
	bufMemMB  float64
	perConnKB float64
	maxConns  int64
}

// NewMeter creates a meter with the given cost constants and baseline
// memory footprint in MiB.
func NewMeter(costs CostConstants, baseMemMB float64) *Meter {
	return &Meter{costs: costs, baseMemMB: baseMemMB, perConnKB: 130}
}

// AddWakeups records n futile poll wakeups.
func (m *Meter) AddWakeups(n int64) {
	m.mu.Lock()
	m.wakeups += n
	m.mu.Unlock()
}

// AddPackets records n relayed packets carrying total bytes.
func (m *Meter) AddPackets(n, bytes int64) {
	m.mu.Lock()
	m.packets += n
	m.bytes += bytes
	m.mu.Unlock()
}

// AddInspected records n packets subjected to content inspection.
func (m *Meter) AddInspected(n int64) {
	m.mu.Lock()
	m.inspected += n
	m.mu.Unlock()
}

// AddBufferMemMB records retained buffer memory beyond the baseline.
func (m *Meter) AddBufferMemMB(mb float64) {
	m.mu.Lock()
	m.bufMemMB += mb
	m.mu.Unlock()
}

// ObserveConns tracks the high-water mark of concurrent connections for
// memory accounting.
func (m *Meter) ObserveConns(n int) {
	m.mu.Lock()
	if int64(n) > m.maxConns {
		m.maxConns = int64(n)
	}
	m.mu.Unlock()
}

// Usage is the resource report of one run.
type Usage struct {
	CPUSeconds float64
	CPUPercent float64 // over the run duration
	BatteryPct float64 // drain attributed to the relay over the run
	MemoryMB   float64
}

// Report converts the counters into a Usage over a run of the given
// wall-clock duration. Battery uses a simple linear model: a sustained
// full core costs ~20% battery per hour on the reference device, so
// drain = CPU-seconds / 3600 * 20.
func (m *Meter) Report(run time.Duration) Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	cpu := float64(m.wakeups)*m.costs.PerWakeup.Seconds() +
		float64(m.packets)*m.costs.PerPacket.Seconds() +
		float64(m.bytes)/1024*m.costs.PerKByte.Seconds() +
		float64(m.inspected)*m.costs.PerInspectedPacket.Seconds()
	u := Usage{CPUSeconds: cpu}
	if run > 0 {
		u.CPUPercent = cpu / run.Seconds() * 100
	}
	u.BatteryPct = cpu / 3600 * 20
	u.MemoryMB = m.baseMemMB + m.bufMemMB + float64(m.maxConns)*m.perConnKB/1024
	return u
}

// Counters returns the raw counted work, for tests.
func (m *Meter) Counters() (wakeups, packets, bytes, inspected int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wakeups, m.packets, m.bytes, m.inspected
}
