package phonestack

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/packet"
	"repro/internal/procnet"
	"repro/internal/tun"
)

var (
	phoneAddr = netip.MustParseAddr("10.0.0.2")
	serverAP  = netip.MustParseAddrPort("93.184.216.34:443")
)

// fakeEngine reads app packets from the TUN and runs a caller-supplied
// handler, standing in for MopEye in these unit tests.
type fakeEngine struct {
	dev    *tun.Device
	handle func(*packet.Packet, *fakeEngine)
	wg     sync.WaitGroup
}

func startFakeEngine(dev *tun.Device, handle func(*packet.Packet, *fakeEngine)) *fakeEngine {
	fe := &fakeEngine{dev: dev, handle: handle}
	dev.SetBlocking(true)
	fe.wg.Add(1)
	go func() {
		defer fe.wg.Done()
		for {
			raw, err := dev.Read()
			if err != nil {
				return
			}
			pkt, err := packet.Decode(raw)
			if err != nil {
				continue
			}
			handle(pkt, fe)
		}
	}()
	return fe
}

func (fe *fakeEngine) send(p *packet.Packet) {
	raw, err := p.Encode()
	if err != nil {
		panic(err)
	}
	_ = fe.dev.Write(raw)
}

// acceptingEngine completes handshakes and echoes data back, acking
// everything — a minimal in-test user-space stack.
func acceptingEngine(dev *tun.Device) *fakeEngine {
	type side struct {
		rcvNxt uint32
		sndNxt uint32
	}
	conns := make(map[netip.AddrPort]*side)
	var mu sync.Mutex
	return startFakeEngine(dev, func(p *packet.Packet, fe *fakeEngine) {
		if !p.IsTCP() {
			return
		}
		t := p.TCP
		app := p.Src()
		mu.Lock()
		defer mu.Unlock()
		switch {
		case t.Has(packet.FlagSYN):
			s := &side{rcvNxt: t.Seq + 1, sndNxt: 9000}
			conns[app] = s
			fe.send(packet.TCPPacket(p.Dst(), app, packet.FlagSYN|packet.FlagACK,
				s.sndNxt, s.rcvNxt, 65535, packet.MSSOption(1460), nil))
			s.sndNxt++
		case t.Has(packet.FlagFIN):
			s := conns[app]
			if s == nil {
				return
			}
			s.rcvNxt = t.Seq + 1
			fe.send(packet.TCPPacket(p.Dst(), app, packet.FlagACK, s.sndNxt, s.rcvNxt, 65535, nil, nil))
		case len(p.Payload) > 0:
			s := conns[app]
			if s == nil {
				return
			}
			if t.Seq != s.rcvNxt {
				return
			}
			s.rcvNxt += uint32(len(p.Payload))
			// Ack, then echo.
			fe.send(packet.TCPPacket(p.Dst(), app, packet.FlagACK, s.sndNxt, s.rcvNxt, 65535, nil, nil))
			fe.send(packet.TCPPacket(p.Dst(), app, packet.FlagACK|packet.FlagPSH,
				s.sndNxt, s.rcvNxt, 65535, nil, append([]byte(nil), p.Payload...)))
			s.sndNxt += uint32(len(p.Payload))
		}
	})
}

func newPhone(t *testing.T) (*Phone, *tun.Device, *procnet.Table) {
	t.Helper()
	clk := clock.NewReal()
	dev := tun.New(clk, 4096)
	table := procnet.NewTable()
	p := New(clk, dev, phoneAddr, table, 1)
	t.Cleanup(func() {
		p.Close()
		dev.Close()
	})
	return p, dev, table
}

func TestConnectHandshake(t *testing.T) {
	p, dev, table := newPhone(t)
	acceptingEngine(dev)
	c, err := p.Connect(10001, serverAP, 5*time.Second)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer c.Close()
	if c.LocalAddr().Addr() != phoneAddr {
		t.Errorf("local addr: %v", c.LocalAddr())
	}
	if c.UID() != 10001 {
		t.Errorf("uid: %d", c.UID())
	}
	// The proc table must show the connection as established under the
	// right UID — that is what MopEye's mapping reads.
	entries, _ := procnet.ParseFile(table.Render(procnet.TCP), procnet.TCP)
	if len(entries) != 1 {
		t.Fatalf("proc entries: %d", len(entries))
	}
	if entries[0].UID != 10001 || entries[0].State != procnet.StateEstablished {
		t.Errorf("proc entry: %+v", entries[0])
	}
}

func TestConnectTimesOutWithoutEngine(t *testing.T) {
	p, _, _ := newPhone(t)
	p.SynRTO = 10 * time.Millisecond
	p.SynRetries = 2
	start := time.Now()
	_, err := p.Connect(10001, serverAP, 100*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout took too long")
	}
}

func TestSYNRetransmission(t *testing.T) {
	p, dev, _ := newPhone(t)
	p.SynRTO = 15 * time.Millisecond
	var mu sync.Mutex
	synCount := 0
	startFakeEngine(dev, func(pkt *packet.Packet, fe *fakeEngine) {
		if !pkt.IsTCP() || !pkt.TCP.Has(packet.FlagSYN) {
			return
		}
		mu.Lock()
		synCount++
		n := synCount
		mu.Unlock()
		if n < 3 {
			return // swallow the first two SYNs
		}
		fe.send(packet.TCPPacket(pkt.Dst(), pkt.Src(), packet.FlagSYN|packet.FlagACK,
			100, pkt.TCP.Seq+1, 65535, nil, nil))
	})
	c, err := p.Connect(10001, serverAP, 5*time.Second)
	if err != nil {
		t.Fatalf("connect despite SYN loss: %v", err)
	}
	defer c.Close()
	mu.Lock()
	defer mu.Unlock()
	if synCount < 3 {
		t.Errorf("engine saw %d SYNs, want >= 3", synCount)
	}
}

func TestRefusedOnRST(t *testing.T) {
	p, dev, _ := newPhone(t)
	startFakeEngine(dev, func(pkt *packet.Packet, fe *fakeEngine) {
		if pkt.IsTCP() && pkt.TCP.Has(packet.FlagSYN) {
			fe.send(packet.TCPPacket(pkt.Dst(), pkt.Src(), packet.FlagRST|packet.FlagACK,
				0, pkt.TCP.Seq+1, 0, nil, nil))
		}
	})
	if _, err := p.Connect(10001, serverAP, 5*time.Second); !errors.Is(err, ErrRefused) {
		t.Fatalf("got %v", err)
	}
}

func TestWriteReadEcho(t *testing.T) {
	p, dev, _ := newPhone(t)
	acceptingEngine(dev)
	c, err := p.Connect(10001, serverAP, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("per-app measurement")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if err := c.ReadFull(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Errorf("echo: %q", buf)
	}
}

func TestWriteSegmentsAtNegotiatedMSS(t *testing.T) {
	p, dev, _ := newPhone(t)
	var mu sync.Mutex
	var sizes []int
	startFakeEngine(dev, func(pkt *packet.Packet, fe *fakeEngine) {
		if !pkt.IsTCP() {
			return
		}
		if pkt.TCP.Has(packet.FlagSYN) {
			// Negotiate a small MSS of 500.
			fe.send(packet.TCPPacket(pkt.Dst(), pkt.Src(), packet.FlagSYN|packet.FlagACK,
				100, pkt.TCP.Seq+1, 65535, packet.MSSOption(500), nil))
			return
		}
		if len(pkt.Payload) > 0 {
			mu.Lock()
			sizes = append(sizes, len(pkt.Payload))
			mu.Unlock()
			fe.send(packet.TCPPacket(pkt.Dst(), pkt.Src(), packet.FlagACK,
				101, pkt.TCP.Seq+uint32(len(pkt.Payload)), 65535, nil, nil))
		}
	})
	c, err := p.Connect(10001, serverAP, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(make([]byte, 1600)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		total := 0
		for _, s := range sizes {
			if s > 500 {
				mu.Unlock()
				t.Fatalf("segment of %d bytes exceeds negotiated MSS 500", s)
			}
			total += s
		}
		mu.Unlock()
		if total == 1600 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/1600 bytes arrived", total)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	p, dev, _ := newPhone(t)
	var mu sync.Mutex
	received := 0
	// An engine that never ACKs data: the sender must stop at one
	// window.
	startFakeEngine(dev, func(pkt *packet.Packet, fe *fakeEngine) {
		if !pkt.IsTCP() {
			return
		}
		if pkt.TCP.Has(packet.FlagSYN) {
			fe.send(packet.TCPPacket(pkt.Dst(), pkt.Src(), packet.FlagSYN|packet.FlagACK,
				100, pkt.TCP.Seq+1, 65535, nil, nil))
			return
		}
		mu.Lock()
		received += len(pkt.Payload)
		mu.Unlock()
	})
	c, err := p.Connect(10001, serverAP, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	go func() {
		_, _ = c.Write(make([]byte, 200*1024))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("200 KiB written with zero ACKs; window not enforced")
	case <-time.After(100 * time.Millisecond):
	}
	mu.Lock()
	defer mu.Unlock()
	if received > DefaultWindow {
		t.Errorf("received %d bytes, window is %d", received, DefaultWindow)
	}
}

func TestCloseRemovesProcEntry(t *testing.T) {
	p, dev, table := newPhone(t)
	acceptingEngine(dev)
	c, err := p.Connect(10001, serverAP, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 1 {
		t.Fatalf("table len: %d", table.Len())
	}
	c.Close()
	if table.Len() != 0 {
		t.Errorf("table len after close: %d", table.Len())
	}
}

func TestAbortSendsRST(t *testing.T) {
	p, dev, _ := newPhone(t)
	var mu sync.Mutex
	gotRST := false
	startFakeEngine(dev, func(pkt *packet.Packet, fe *fakeEngine) {
		if !pkt.IsTCP() {
			return
		}
		if pkt.TCP.Has(packet.FlagSYN) {
			fe.send(packet.TCPPacket(pkt.Dst(), pkt.Src(), packet.FlagSYN|packet.FlagACK,
				100, pkt.TCP.Seq+1, 65535, nil, nil))
			return
		}
		if pkt.TCP.Has(packet.FlagRST) {
			mu.Lock()
			gotRST = true
			mu.Unlock()
		}
	})
	c, err := p.Connect(10001, serverAP, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Abort()
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		ok := gotRST
		mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never saw the RST")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUDPSendRecvViaTun(t *testing.T) {
	p, dev, _ := newPhone(t)
	dnsServer := netip.MustParseAddrPort("8.8.8.8:53")
	startFakeEngine(dev, func(pkt *packet.Packet, fe *fakeEngine) {
		if pkt.IsUDP() && pkt.Dst() == dnsServer {
			fe.send(packet.UDPPacket(dnsServer, pkt.Src(), append([]byte("ok:"), pkt.Payload...)))
		}
	})
	u, err := p.OpenUDP(10002)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.SendTo(dnsServer, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	payload, from, err := u.Recv(2 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if string(payload) != "ok:hi" || from != dnsServer {
		t.Errorf("payload %q from %v", payload, from)
	}
}

func TestUDPRecvTimeout(t *testing.T) {
	p, _, _ := newPhone(t)
	u, err := p.OpenUDP(10002)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if _, _, err := u.Recv(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("got %v", err)
	}
}

func TestPhoneCloseTearsDownConnections(t *testing.T) {
	p, dev, _ := newPhone(t)
	acceptingEngine(dev)
	c, err := p.Connect(10001, serverAP, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := c.Read(make([]byte, 4)); err == nil {
		t.Error("read succeeded after phone close")
	}
	if _, err := p.Connect(10001, serverAP, time.Second); !errors.Is(err, ErrPhoneDown) {
		t.Errorf("connect after close: %v", err)
	}
}

func TestConcurrentConnectionsDistinctPorts(t *testing.T) {
	p, dev, _ := newPhone(t)
	acceptingEngine(dev)
	const n = 10
	conns := make([]*Conn, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conns[i], errs[i] = p.Connect(10001, serverAP, 5*time.Second)
		}(i)
	}
	wg.Wait()
	seen := make(map[uint16]bool)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("conn %d: %v", i, errs[i])
		}
		port := conns[i].LocalAddr().Port()
		if seen[port] {
			t.Fatalf("duplicate local port %d", port)
		}
		seen[port] = true
		conns[i].Close()
	}
}
