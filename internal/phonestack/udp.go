package phonestack

import (
	"errors"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/packet"
	"repro/internal/procnet"
)

// UDPConn is an app-side UDP socket over the TUN.
type UDPConn struct {
	phone *Phone
	uid   int
	local netip.AddrPort
	inode uint64

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []*packet.Packet
	closed bool
}

// OpenUDP creates a UDP socket for the app with the given UID.
func (p *Phone) OpenUDP(uid int) (*UDPConn, error) {
	if p.isClosed() {
		return nil, ErrPhoneDown
	}
	port := p.allocPort()
	u := &UDPConn{
		phone: p,
		uid:   uid,
		local: netip.AddrPortFrom(p.addr, port),
	}
	u.cond = sync.NewCond(&u.mu)
	p.mu.Lock()
	p.udp[port] = u
	p.mu.Unlock()
	u.inode = p.table.Add(procnet.Entry{
		Proto: procUDPProto(p.addr), Local: u.local,
		Remote: netip.AddrPortFrom(netip.IPv4Unspecified(), 0),
		State:  procnet.StateClose, UID: uid,
	})
	return u, nil
}

func procUDPProto(a netip.Addr) procnet.Proto {
	if a.Is4() {
		return procnet.UDP
	}
	return procnet.UDP6
}

// LocalAddr returns the socket's local address.
func (u *UDPConn) LocalAddr() netip.AddrPort { return u.local }

// SendTo injects one datagram into the TUN.
func (u *UDPConn) SendTo(dst netip.AddrPort, payload []byte) error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return ErrClosed
	}
	u.mu.Unlock()
	if err := u.phone.inject(packet.UDPPacket(u.local, dst, payload)); err != nil {
		return err
	}
	u.phone.udpSent.Add(1)
	return nil
}

// deliver queues an inbound datagram (called by the demultiplexer).
func (u *UDPConn) deliver(pkt *packet.Packet) {
	u.mu.Lock()
	if !u.closed {
		u.inbox = append(u.inbox, pkt)
		u.cond.Broadcast()
	}
	u.mu.Unlock()
}

// Recv blocks until a datagram arrives or the timeout elapses. It
// returns the payload and the sender.
func (u *UDPConn) Recv(timeout time.Duration) ([]byte, netip.AddrPort, error) {
	deadline := u.phone.clk.Nanos() + int64(timeout)
	u.mu.Lock()
	defer u.mu.Unlock()
	for len(u.inbox) == 0 {
		if u.closed {
			return nil, netip.AddrPort{}, ErrClosed
		}
		remaining := time.Duration(deadline - u.phone.clk.Nanos())
		if remaining <= 0 {
			return nil, netip.AddrPort{}, ErrTimeout
		}
		slice := 200 * time.Microsecond
		if remaining < slice {
			slice = remaining
		}
		u.mu.Unlock()
		u.phone.clk.Sleep(slice)
		u.mu.Lock()
	}
	pkt := u.inbox[0]
	u.inbox = u.inbox[1:]
	return pkt.Payload, pkt.Src(), nil
}

// Close releases the socket.
func (u *UDPConn) Close() {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return
	}
	u.closed = true
	u.cond.Broadcast()
	u.mu.Unlock()
	u.phone.mu.Lock()
	delete(u.phone.udp, u.local.Port())
	u.phone.mu.Unlock()
	u.phone.table.Remove(u.inode)
}

// ResolveResult reports one DNS transaction as the app experienced it.
type ResolveResult struct {
	Addr    netip.Addr
	Elapsed time.Duration
	RCode   uint8
}

// Resolve performs a DNS A lookup through the TUN: build query, send to
// the system resolver, await the matching response. This is the traffic
// MopEye's DNS measurement observes (§2.4).
func (p *Phone) Resolve(uid int, server netip.AddrPort, name string, timeout time.Duration) (ResolveResult, error) {
	u, err := p.OpenUDP(uid)
	if err != nil {
		return ResolveResult{}, err
	}
	defer u.Close()
	p.mu.Lock()
	id := uint16(p.rng.Uint32())
	p.mu.Unlock()
	q := dnsmsg.NewQuery(id, name, dnsmsg.TypeA)
	raw, err := q.Encode()
	if err != nil {
		return ResolveResult{}, err
	}
	start := p.clk.Nanos()
	if err := u.SendTo(server, raw); err != nil {
		return ResolveResult{}, err
	}
	deadline := p.clk.Nanos() + int64(timeout)
	for {
		remaining := time.Duration(deadline - p.clk.Nanos())
		if remaining <= 0 {
			return ResolveResult{}, ErrTimeout
		}
		payload, _, err := u.Recv(remaining)
		if err != nil {
			return ResolveResult{}, err
		}
		m, err := dnsmsg.Decode(payload)
		if err != nil || m.ID != id || !m.Response {
			continue // stray datagram; keep waiting
		}
		res := ResolveResult{
			Elapsed: time.Duration(p.clk.Nanos() - start),
			RCode:   m.RCode,
		}
		if m.RCode != dnsmsg.RCodeOK {
			return res, ErrNXDomain
		}
		for _, ans := range m.Answers {
			if a, ok := ans.Addr(); ok {
				res.Addr = a
				return res, nil
			}
		}
		return res, ErrNoAddress
	}
}

// Resolution errors.
var (
	ErrNXDomain  = errors.New("phonestack: NXDOMAIN")
	ErrNoAddress = errors.New("phonestack: response had no address record")
)
