// Package phonestack emulates the phone kernel's client-side TCP/UDP
// stack: the traffic source on the far side of the TUN device.
//
// When an Android app calls connect(), the kernel emits a SYN that the
// TUN routing delivers to MopEye as a raw IP packet (§2.2). This package
// plays that kernel role for simulated apps: Connect injects a SYN into
// the TUN and completes when the user-space stack answers with a
// SYN-ACK; Write segments data at the negotiated MSS and respects the
// 64 KiB send window clocked by the relay's ACKs; Read consumes
// in-order data packets. Every connection is registered in the
// /proc/net tables (package procnet) under the app's UID, which is the
// only mapping MopEye has from packets to apps.
package phonestack

import (
	"errors"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/packet"
	"repro/internal/procnet"
	"repro/internal/tun"
)

// Errors.
var (
	ErrTimeout   = errors.New("phonestack: connection timed out")
	ErrRefused   = errors.New("phonestack: connection refused")
	ErrReset     = errors.New("phonestack: connection reset")
	ErrClosed    = errors.New("phonestack: connection closed")
	ErrEOF       = errors.New("phonestack: EOF")
	ErrPhoneDown = errors.New("phonestack: phone stopped")
)

// DefaultWindow is the send/receive window the phone advertises,
// matching the 65,535-byte buffers of §3.4.
const DefaultWindow = 65535

// connState values.
const (
	stateSynSent = iota
	stateEstablished
	stateFinWait
	stateClosed
)

// Phone is the kernel-side endpoint of the TUN link.
type Phone struct {
	clk   clock.Clock
	dev   *tun.Device
	addr  netip.Addr
	table *procnet.Table

	// SynRTO is the initial SYN retransmission timeout; it doubles per
	// attempt like a kernel RTO.
	SynRTO time.Duration
	// SynRetries bounds handshake attempts.
	SynRetries int

	mu       sync.Mutex
	rng      *rand.Rand
	tcp      map[uint16]*Conn
	udp      map[uint16]*UDPConn
	nextPort uint16
	closed   bool
	wg       sync.WaitGroup

	// udpSent counts datagrams successfully injected into the TUN
	// (DNS queries included). It is the app-side ground truth the
	// scenario truthfulness checks reconcile the engine's relay
	// accounting against.
	udpSent atomic.Int64
}

// advMSS derives the MSS the phone advertises from the device MTU
// (40 bytes of IP + TCP headers).
func (p *Phone) advMSS() int { return p.dev.MTU() - 40 }

// New creates a phone stack bound to addr and starts its demultiplexer,
// which consumes packets the engine writes back into the TUN.
func New(clk clock.Clock, dev *tun.Device, addr netip.Addr, table *procnet.Table, seed int64) *Phone {
	p := &Phone{
		clk:        clk,
		dev:        dev,
		addr:       addr,
		table:      table,
		SynRTO:     time.Second,
		SynRetries: 4,
		rng:        rand.New(rand.NewSource(seed)),
		tcp:        make(map[uint16]*Conn),
		udp:        make(map[uint16]*UDPConn),
		nextPort:   40000,
	}
	p.wg.Add(1)
	go p.demux()
	return p
}

// Addr returns the phone's VPN-assigned address.
func (p *Phone) Addr() netip.Addr { return p.addr }

// Close stops the demultiplexer. The TUN device must be closed by its
// owner; Close here only stops consuming from it.
func (p *Phone) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]*Conn, 0, len(p.tcp))
	for _, c := range p.tcp {
		conns = append(conns, c)
	}
	us := make([]*UDPConn, 0, len(p.udp))
	for _, u := range p.udp {
		us = append(us, u)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.teardown(ErrPhoneDown)
	}
	for _, u := range us {
		u.Close()
	}
}

func (p *Phone) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

func (p *Phone) allocPort() uint16 {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		port := p.nextPort
		p.nextPort++
		if p.nextPort == 0 {
			p.nextPort = 40000
		}
		if _, busyT := p.tcp[port]; busyT {
			continue
		}
		if _, busyU := p.udp[port]; busyU {
			continue
		}
		return port
	}
}

// demux dispatches engine-written packets to connections.
func (p *Phone) demux() {
	defer p.wg.Done()
	for {
		raw, err := p.dev.ReadInbound()
		if err != nil {
			return
		}
		pkt, err := packet.Decode(raw)
		if err != nil {
			continue // a malformed packet from the engine is dropped
		}
		// Inbound packets are addressed to the phone; the app's local
		// port is the packet's destination port.
		port := pkt.Dst().Port()
		switch {
		case pkt.IsTCP():
			p.mu.Lock()
			c := p.tcp[port]
			p.mu.Unlock()
			if c != nil {
				c.handleSegment(pkt)
			}
		case pkt.IsUDP():
			p.mu.Lock()
			u := p.udp[port]
			p.mu.Unlock()
			if u != nil {
				u.deliver(pkt)
			}
		}
	}
}

// UDPDatagramsSent reports how many datagrams the phone's apps have
// injected into the TUN (app-side ground truth for relay accounting).
func (p *Phone) UDPDatagramsSent() int64 { return p.udpSent.Load() }

func (p *Phone) inject(pkt *packet.Packet) error {
	raw, err := pkt.Encode()
	if err != nil {
		return err
	}
	return p.dev.InjectOutbound(raw)
}

// Conn is an app-side TCP connection.
type Conn struct {
	phone  *Phone
	uid    int
	local  netip.AddrPort
	remote netip.AddrPort
	inode  uint64

	mu      sync.Mutex
	cond    *sync.Cond
	state   int
	connErr error

	sndNxt uint32 // next sequence to send
	sndUna uint32 // oldest unacknowledged
	rcvNxt uint32 // next expected from peer
	mss    int
	window int // peer-advertised send window

	rx      [][]byte
	rxBytes int
	rxEOF   bool
	rxErr   error

	// ConnectElapsed is the app-observed connect() latency, i.e. the
	// RTT the app itself experiences through the relay. The overhead
	// experiment (§4.1.2) compares this against the raw path RTT.
	ConnectElapsed time.Duration
}

// Connect opens a TCP connection from the app with the given UID to dst.
// It blocks until the user-space stack completes the tunnel-side
// handshake, retransmitting the SYN on kernel-like timeouts.
func (p *Phone) Connect(uid int, dst netip.AddrPort, timeout time.Duration) (*Conn, error) {
	if p.isClosed() {
		return nil, ErrPhoneDown
	}
	port := p.allocPort()
	c := &Conn{
		phone:  p,
		uid:    uid,
		local:  netip.AddrPortFrom(p.addr, port),
		remote: dst,
		state:  stateSynSent,
		mss:    p.advMSS(), // until the SYN-ACK negotiates it
		window: DefaultWindow,
	}
	c.cond = sync.NewCond(&c.mu)
	p.mu.Lock()
	c.sndNxt = p.rng.Uint32()
	c.sndUna = c.sndNxt
	p.tcp[port] = c
	p.mu.Unlock()

	c.inode = p.table.Add(procnet.Entry{
		Proto: procTCPProto(dst.Addr()), Local: c.local, Remote: dst,
		State: procnet.StateSynSent, UID: uid,
	})

	start := p.clk.Nanos()
	syn := packet.TCPPacket(c.local, dst, packet.FlagSYN, c.sndNxt, 0,
		DefaultWindow, packet.MSSOption(uint16(p.advMSS())), nil)
	c.sndNxt++ // SYN consumes one sequence number
	if err := p.inject(syn); err != nil {
		c.unregister()
		return nil, err
	}

	// Retransmit the SYN with doubling RTO, then give up, like a kernel.
	done := make(chan struct{})
	go func() {
		rto := p.SynRTO
		for i := 0; i < p.SynRetries; i++ {
			select {
			case <-done:
				return
			case <-p.clk.After(rto):
			}
			c.mu.Lock()
			st := c.state
			c.mu.Unlock()
			if st != stateSynSent {
				return
			}
			_ = p.inject(packet.TCPPacket(c.local, dst, packet.FlagSYN,
				c.sndNxt-1, 0, DefaultWindow, packet.MSSOption(uint16(p.advMSS())), nil))
			rto *= 2
		}
		c.mu.Lock()
		if c.state == stateSynSent {
			c.connErr = ErrTimeout
			c.state = stateClosed
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}()

	var timer <-chan time.Time
	if timeout > 0 {
		timer = p.clk.After(timeout)
		go func() {
			select {
			case <-done:
			case <-timer:
				c.mu.Lock()
				if c.state == stateSynSent {
					c.connErr = ErrTimeout
					c.state = stateClosed
					c.cond.Broadcast()
				}
				c.mu.Unlock()
			}
		}()
	}

	c.mu.Lock()
	for c.state == stateSynSent {
		c.cond.Wait()
	}
	err := c.connErr
	c.mu.Unlock()
	close(done)
	if err != nil {
		c.unregister()
		return nil, err
	}
	c.ConnectElapsed = time.Duration(p.clk.Nanos() - start)
	return c, nil
}

func procTCPProto(a netip.Addr) procnet.Proto {
	if a.Is4() {
		return procnet.TCP
	}
	return procnet.TCP6
}

func (c *Conn) unregister() {
	c.phone.mu.Lock()
	delete(c.phone.tcp, c.local.Port())
	c.phone.mu.Unlock()
	c.phone.table.Remove(c.inode)
}

// LocalAddr returns the connection's local address.
func (c *Conn) LocalAddr() netip.AddrPort { return c.local }

// RemoteAddr returns the destination the app dialed.
func (c *Conn) RemoteAddr() netip.AddrPort { return c.remote }

// UID returns the owning app's UID.
func (c *Conn) UID() int { return c.uid }

// handleSegment processes one engine-written TCP packet.
func (c *Conn) handleSegment(pkt *packet.Packet) {
	t := pkt.TCP
	c.mu.Lock()
	switch {
	case t.Has(packet.FlagRST):
		c.rxErr = ErrReset
		if c.state == stateSynSent {
			c.connErr = ErrRefused
		}
		c.state = stateClosed
		c.cond.Broadcast()
		c.mu.Unlock()
		c.unregister()
		return

	case t.Has(packet.FlagSYN | packet.FlagACK):
		if c.state != stateSynSent {
			break // duplicate SYN-ACK; the ACK below re-confirms
		}
		c.rcvNxt = t.Seq + 1
		c.sndUna = t.Ack
		if mss, ok := packet.ParseMSS(t.Options); ok && int(mss) > 0 {
			c.mss = int(mss)
		}
		if int(t.Window) > 0 {
			c.window = int(t.Window)
		}
		c.state = stateEstablished
		c.phone.table.SetState(c.inode, procnet.StateEstablished)
		ack := packet.TCPPacket(c.local, c.remote, packet.FlagACK,
			c.sndNxt, c.rcvNxt, DefaultWindow, nil, nil)
		c.cond.Broadcast()
		c.mu.Unlock()
		_ = c.phone.inject(ack)
		return

	default:
		// ACK processing: advance the send window.
		if t.Has(packet.FlagACK) && seqGT(t.Ack, c.sndUna) {
			c.sndUna = t.Ack
			c.cond.Broadcast()
		}
		// Data delivery: in-order only; the user-space stack relays
		// in order over the lossless tunnel (§3.4), so out-of-order
		// segments are duplicates and are dropped after trimming.
		if len(pkt.Payload) > 0 {
			data := pkt.Payload
			seq := t.Seq
			if seqLT(seq, c.rcvNxt) {
				skip := c.rcvNxt - seq
				if int(skip) >= len(data) {
					data = nil
				} else {
					data = data[skip:]
					seq = c.rcvNxt
				}
			}
			if len(data) > 0 && seq == c.rcvNxt {
				c.rx = append(c.rx, append([]byte(nil), data...))
				c.rxBytes += len(data)
				c.rcvNxt += uint32(len(data))
				c.cond.Broadcast()
				ack := packet.TCPPacket(c.local, c.remote, packet.FlagACK,
					c.sndNxt, c.rcvNxt, DefaultWindow, nil, nil)
				c.mu.Unlock()
				_ = c.phone.inject(ack)
				return
			}
		}
		if t.Has(packet.FlagFIN) {
			c.rcvNxt = t.Seq + uint32(len(pkt.Payload)) + 1
			c.rxEOF = true
			c.cond.Broadcast()
			ack := packet.TCPPacket(c.local, c.remote, packet.FlagACK,
				c.sndNxt, c.rcvNxt, DefaultWindow, nil, nil)
			c.mu.Unlock()
			_ = c.phone.inject(ack)
			return
		}
	}
	c.mu.Unlock()
}

// seq comparisons in modular 32-bit arithmetic.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }

// Write sends len(b) bytes, segmenting at the negotiated MSS and
// blocking while the send window is full; ACKs generated by the
// user-space stack (after its socket writes complete, §2.3) open it.
func (c *Conn) Write(b []byte) (int, error) {
	sent := 0
	for sent < len(b) {
		c.mu.Lock()
		for {
			if c.state == stateClosed {
				err := c.rxErr
				c.mu.Unlock()
				if err == nil {
					err = ErrClosed
				}
				return sent, err
			}
			if c.state != stateEstablished {
				c.mu.Unlock()
				return sent, ErrClosed
			}
			inflight := int(c.sndNxt - c.sndUna)
			if inflight < c.window {
				break
			}
			c.cond.Wait()
		}
		n := len(b) - sent
		if n > c.mss {
			n = c.mss
		}
		if room := c.window - int(c.sndNxt-c.sndUna); n > room {
			n = room
		}
		seg := packet.TCPPacket(c.local, c.remote,
			packet.FlagACK|packet.FlagPSH, c.sndNxt, c.rcvNxt,
			DefaultWindow, nil, append([]byte(nil), b[sent:sent+n]...))
		c.sndNxt += uint32(n)
		c.mu.Unlock()
		if err := c.phone.inject(seg); err != nil {
			return sent, err
		}
		sent += n
	}
	return sent, nil
}

// Read blocks for data, EOF, or an error.
func (c *Conn) Read(buf []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.rxBytes == 0 {
		if c.rxErr != nil {
			return 0, c.rxErr
		}
		if c.rxEOF {
			return 0, ErrEOF
		}
		if c.state == stateClosed {
			return 0, ErrClosed
		}
		c.cond.Wait()
	}
	n := 0
	for n < len(buf) && len(c.rx) > 0 {
		chunk := c.rx[0]
		k := copy(buf[n:], chunk)
		n += k
		if k == len(chunk) {
			c.rx = c.rx[1:]
		} else {
			c.rx[0] = chunk[k:]
		}
		c.rxBytes -= k
	}
	return n, nil
}

// ReadFull reads exactly len(buf) bytes or fails.
func (c *Conn) ReadFull(buf []byte) error {
	got := 0
	for got < len(buf) {
		n, err := c.Read(buf[got:])
		got += n
		if err != nil && got < len(buf) {
			return err
		}
	}
	return nil
}

// Close sends a FIN and tears the connection down. The kernel would
// linger in TIME_WAIT; the proc entry is removed immediately, which only
// shortens the table — MopEye tolerates missing entries by retrying
// (§3.3).
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.state == stateClosed {
		c.mu.Unlock()
		return nil
	}
	wasEstablished := c.state == stateEstablished
	fin := packet.TCPPacket(c.local, c.remote,
		packet.FlagFIN|packet.FlagACK, c.sndNxt, c.rcvNxt, DefaultWindow, nil, nil)
	c.sndNxt++
	c.state = stateClosed
	c.cond.Broadcast()
	c.mu.Unlock()
	if wasEstablished {
		_ = c.phone.inject(fin)
	}
	c.unregister()
	return nil
}

// Abort sends an RST, the path that exercises the engine's RST handling
// (§2.3).
func (c *Conn) Abort() {
	c.mu.Lock()
	if c.state == stateClosed {
		c.mu.Unlock()
		return
	}
	rst := packet.TCPPacket(c.local, c.remote, packet.FlagRST,
		c.sndNxt, c.rcvNxt, 0, nil, nil)
	c.state = stateClosed
	c.rxErr = ErrReset
	c.cond.Broadcast()
	c.mu.Unlock()
	_ = c.phone.inject(rst)
	c.unregister()
}

func (c *Conn) teardown(err error) {
	c.mu.Lock()
	c.state = stateClosed
	c.rxErr = err
	c.cond.Broadcast()
	c.mu.Unlock()
}
