package relay

import (
	"net/netip"
	"sync"
	"testing"

	"repro/internal/packet"
	"repro/internal/tcpsm"
)

func newClient(t *testing.T) *TCPClient {
	t.Helper()
	src := netip.MustParseAddrPort("10.0.0.2:40001")
	dst := netip.MustParseAddrPort("93.184.216.34:443")
	syn := packet.TCPPacket(src, dst, packet.FlagSYN, 100, 0, 65535, nil, nil)
	sm, err := tcpsm.New(syn, 7, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	return NewTCPClient(packet.Flow(syn), sm, 123)
}

func TestWriteBufferFIFO(t *testing.T) {
	c := newClient(t)
	c.EnqueueWrite([]byte("first"))
	c.EnqueueWrite([]byte("second"))
	if !c.PendingWrites() {
		t.Fatal("no pending writes")
	}
	if c.BufferedBytes() != 11 {
		t.Errorf("buffered: %d", c.BufferedBytes())
	}
	bufs := c.TakeWrites()
	if len(bufs) != 2 || string(bufs[0]) != "first" || string(bufs[1]) != "second" {
		t.Errorf("bufs: %q", bufs)
	}
	if c.PendingWrites() || c.BufferedBytes() != 0 {
		t.Error("buffer not drained")
	}
	if got := c.TakeWrites(); len(got) != 0 {
		t.Errorf("second take: %q", got)
	}
}

func TestHalfCloseFlag(t *testing.T) {
	c := newClient(t)
	if c.HalfCloseRequested() {
		t.Fatal("fresh client half-closed")
	}
	c.RequestHalfClose()
	if !c.HalfCloseRequested() {
		t.Fatal("half close lost")
	}
}

func TestMarkRemovedIdempotent(t *testing.T) {
	c := newClient(t)
	if c.Removed() {
		t.Fatal("fresh client removed")
	}
	if !c.MarkRemoved() {
		t.Fatal("first MarkRemoved returned false")
	}
	if c.MarkRemoved() {
		t.Fatal("second MarkRemoved returned true (double removal)")
	}
	if !c.Removed() {
		t.Fatal("not removed after MarkRemoved")
	}
}

func TestDefaultsUnmapped(t *testing.T) {
	c := newClient(t)
	if uid, app := c.AppInfo(); uid != -1 || app != "unknown" {
		t.Errorf("defaults: uid=%d app=%q", uid, app)
	}
	if c.SYNAt != 123 {
		t.Errorf("SYNAt: %d", c.SYNAt)
	}
}

func TestConcurrentEnqueueAndTake(t *testing.T) {
	c := newClient(t)
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			c.EnqueueWrite([]byte{byte(i)})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 600; i++ {
			bufs := c.TakeWrites()
			mu.Lock()
			for _, b := range bufs {
				total += len(b)
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
	for _, b := range c.TakeWrites() {
		total += len(b)
	}
	if total != 500 {
		t.Errorf("bytes accounted: %d", total)
	}
}
