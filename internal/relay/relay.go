// Package relay defines the per-connection client objects that splice an
// internal (tunnel-side) connection to an external (socket-side)
// connection, the "two-way referencing" of §2.3: the client wraps the
// socket instance and holds a reference to the TCP state machine, and
// the engine reaches the client back through the selector key
// attachment.
package relay

import (
	"sync"

	"repro/internal/packet"
	"repro/internal/sockets"
	"repro/internal/tcpsm"
)

// TCPClient splices one app TCP connection to one external socket.
type TCPClient struct {
	// Flow is the app-originated direction (app addr -> server addr).
	Flow packet.FlowKey
	// SM terminates the internal connection.
	SM *tcpsm.Machine

	// ch is the external socket channel, nil until the socket-connect
	// thread creates it; key is the selector registration, nil until
	// registered. Both are written by the temporary socket-connect
	// thread while the engine's packet/teardown paths read them, so
	// access goes through Ch/SetCh and Key/SetKey under the client
	// mutex.
	ch  *sockets.Channel
	key *sockets.SelectionKey

	// App attribution, filled by the packet-to-app mapping (§3.3).
	// Written by the socket-connect thread and read by the engine's
	// teardown/record paths and traffic snapshots, so access goes
	// through SetApp/AppInfo under the client mutex.
	uid int
	app string

	// SYNAt is the engine clock when the SYN was processed; the lazy
	// mapper uses it to know how fresh a proc parse must be.
	SYNAt int64

	// Shard is the flow-table shard this flow hashes to, set by the
	// engine at creation. In the multi-worker engine it pins the flow
	// to one worker (shard % workers), so every socket event can be
	// routed without rehashing the flow key.
	Shard int

	mu        sync.Mutex
	writeBuf  [][]byte
	bufBytes  int
	halfClose bool // app FIN received: flush writes, then CloseWrite
	removed   bool
}

// NewTCPClient creates a client for a flow with its state machine.
func NewTCPClient(flow packet.FlowKey, sm *tcpsm.Machine, synAt int64) *TCPClient {
	return &TCPClient{Flow: flow, SM: sm, SYNAt: synAt, uid: -1, app: "unknown"}
}

// Ch returns the external socket channel (nil before the
// socket-connect thread creates it).
func (c *TCPClient) Ch() *sockets.Channel {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ch
}

// SetCh installs the external socket channel.
func (c *TCPClient) SetCh(ch *sockets.Channel) {
	c.mu.Lock()
	c.ch = ch
	c.mu.Unlock()
}

// Key returns the selector registration (nil before registration).
func (c *TCPClient) Key() *sockets.SelectionKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.key
}

// SetKey installs the selector registration.
func (c *TCPClient) SetKey(k *sockets.SelectionKey) {
	c.mu.Lock()
	c.key = k
	c.mu.Unlock()
}

// SetApp records the resolved attribution (§3.3). Called from the
// socket-connect thread once the mapping completes.
func (c *TCPClient) SetApp(uid int, app string) {
	c.mu.Lock()
	c.uid = uid
	c.app = app
	c.mu.Unlock()
}

// AppInfo returns the current attribution ("unknown"/-1 until the
// mapping resolves).
func (c *TCPClient) AppInfo() (uid int, app string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.uid, c.app
}

// EnqueueWrite places tunnel data into the socket write buffer (§2.3
// TCP Data: "places the data from tunnel packets to a socket write
// buffer and triggers a socket write event").
func (c *TCPClient) EnqueueWrite(data []byte) {
	c.mu.Lock()
	c.writeBuf = append(c.writeBuf, data)
	c.bufBytes += len(data)
	c.mu.Unlock()
}

// TakeWrites drains the write buffer for the socket write event handler.
func (c *TCPClient) TakeWrites() [][]byte {
	c.mu.Lock()
	bufs := c.writeBuf
	c.writeBuf = nil
	c.bufBytes = 0
	c.mu.Unlock()
	return bufs
}

// PendingWrites reports whether data awaits a socket write.
func (c *TCPClient) PendingWrites() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.writeBuf) > 0
}

// BufferedBytes returns the write-buffer occupancy.
func (c *TCPClient) BufferedBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bufBytes
}

// RequestHalfClose marks that the app sent FIN; once the write buffer is
// flushed the engine half-closes the external connection (§2.3 TCP FIN
// "triggers a half-close write event").
func (c *TCPClient) RequestHalfClose() {
	c.mu.Lock()
	c.halfClose = true
	c.mu.Unlock()
}

// HalfCloseRequested reports whether a half close is pending.
func (c *TCPClient) HalfCloseRequested() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.halfClose
}

// MarkRemoved flags the client as removed from the cached client list;
// returns false if it already was (§2.3 TCP RST: "removes the
// corresponding TCP client object from the cached TCP client list").
func (c *TCPClient) MarkRemoved() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.removed {
		return false
	}
	c.removed = true
	return true
}

// Removed reports whether the client was removed.
func (c *TCPClient) Removed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.removed
}
