package mopeye

import (
	"bytes"
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"repro/internal/measure"
)

func sinkRec(app string, ms float64) Measurement {
	return measure.Record{
		Kind: measure.KindTCP, App: app, UID: 10001,
		Dst: netip.MustParseAddrPort("203.0.113.1:443"),
		RTT: time.Duration(ms * float64(time.Millisecond)),
		At:  time.Unix(0, 0).UTC(),
	}
}

// The file sinks must emit exactly what the batch exporters would for
// the same records.
func TestFileSinksMatchBatchExports(t *testing.T) {
	recs := []Measurement{sinkRec("a", 10), sinkRec("b", 20)}

	var sinkOut, batchOut bytes.Buffer
	cs := NewCSVSink(&sinkOut)
	for _, r := range recs {
		if err := cs.Accept(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := measure.WriteCSV(&batchOut, recs); err != nil {
		t.Fatal(err)
	}
	if sinkOut.String() != batchOut.String() {
		t.Error("CSVSink diverges from WriteCSV")
	}

	sinkOut.Reset()
	batchOut.Reset()
	js := NewJSONLSink(&sinkOut)
	for _, r := range recs {
		if err := js.Accept(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	if err := measure.WriteJSONL(&batchOut, recs); err != nil {
		t.Fatal(err)
	}
	if sinkOut.String() != batchOut.String() {
		t.Error("JSONLSink diverges from WriteJSONL")
	}
}

// An empty CSV sink still produces a parseable header-only file.
func TestCSVSinkEmptyStream(t *testing.T) {
	var out bytes.Buffer
	s := NewCSVSink(&out)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := measure.ReadCSV(&out)
	if err != nil {
		t.Fatalf("header-only output unparseable: %v", err)
	}
	if len(recs) != 0 {
		t.Errorf("phantom records: %d", len(recs))
	}
}

func TestCollectorBatchSizePolicy(t *testing.T) {
	c := NewCollector(CollectorOptions{BatchSize: 3})
	for i := 0; i < 7; i++ {
		if err := c.Accept(sinkRec("a", float64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Uploads() != 2 {
		t.Errorf("uploads after 7 accepts at batch 3: %d, want 2", c.Uploads())
	}
	if c.Pending() != 1 {
		t.Errorf("pending: %d, want 1", c.Pending())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Uploads() != 3 || c.Pending() != 0 {
		t.Errorf("after close: uploads %d pending %d", c.Uploads(), c.Pending())
	}
	if got := len(c.Records()); got != 7 {
		t.Errorf("uploaded records: %d", got)
	}
	// Flush with nothing pending is not an upload.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Uploads() != 3 {
		t.Errorf("empty flush counted as upload: %d", c.Uploads())
	}
}

func TestCollectorIntervalPolicy(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCollector(CollectorOptions{
		BatchSize: 1000,
		Interval:  time.Minute,
		now:       func() time.Time { return now },
	})
	c.Accept(sinkRec("a", 1))
	if c.Uploads() != 0 {
		t.Fatalf("uploaded before the interval: %d", c.Uploads())
	}
	now = now.Add(61 * time.Second)
	c.Accept(sinkRec("a", 2))
	if c.Uploads() != 1 {
		t.Errorf("interval upload missing: %d", c.Uploads())
	}
	if c.Pending() != 0 {
		t.Errorf("pending after interval upload: %d", c.Pending())
	}
}

func TestCollectorMediansAndDeviceStamp(t *testing.T) {
	c := NewCollector(CollectorOptions{BatchSize: 100, Device: "device-test", MinPerApp: 2})
	for _, ms := range []float64{10, 30, 20} {
		c.Accept(sinkRec("com.app.x", ms))
	}
	c.Accept(sinkRec("com.app.rare", 99))
	// DNS records never enter the per-app median aggregate.
	dns := sinkRec("system.dns", 5)
	dns.Kind = measure.KindDNS
	c.Accept(dns)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	med := c.AppMedians()
	if got := med["com.app.x"]; got != 20 {
		t.Errorf("median: %v", got)
	}
	if _, ok := med["com.app.rare"]; ok {
		t.Error("app below MinPerApp aggregated")
	}
	if _, ok := med["system.dns"]; ok {
		t.Error("DNS leaked into the TCP median aggregate")
	}
	for _, r := range c.Records() {
		if r.Device != "device-test" {
			t.Errorf("unstamped upload: %+v", r)
		}
	}
	// Records that already carry a device attribution keep it.
	pre := sinkRec("com.app.x", 40)
	pre.Device = "device-original"
	c.Accept(pre)
	c.Flush()
	recs := c.Records()
	if got := recs[len(recs)-1].Device; got != "device-original" {
		t.Errorf("pre-attributed device overwritten: %q", got)
	}
}

// Zero and negative intervals both disable interval uploads entirely:
// only the size policy and explicit flushes ship batches.
func TestCollectorZeroAndNegativeInterval(t *testing.T) {
	for _, interval := range []time.Duration{0, -time.Minute} {
		now := time.Unix(1000, 0)
		c := NewCollector(CollectorOptions{
			BatchSize: 1000,
			Interval:  interval,
			now:       func() time.Time { return now },
		})
		for i := 0; i < 10; i++ {
			now = now.Add(time.Hour) // hours pass between measurements
			if err := c.Accept(sinkRec("a", 1)); err != nil {
				t.Fatal(err)
			}
		}
		if c.Uploads() != 0 {
			t.Errorf("interval %v: %d interval uploads fired", interval, c.Uploads())
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if c.Uploads() != 1 || c.Pending() != 0 {
			t.Errorf("interval %v: close flush missing (uploads %d pending %d)",
				interval, c.Uploads(), c.Pending())
		}
	}
}

// Close during an in-flight upload: Close blocks until the wedged
// transport delivery completes, then performs its own final flush —
// nothing is lost, nothing ships twice.
func TestCollectorCloseDuringInFlightUpload(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	var batches []Batch
	c := NewCollector(CollectorOptions{
		BatchSize: 2,
		Device:    "inflight",
		Transport: TransportFunc(func(_ context.Context, b Batch) error {
			entered <- struct{}{}
			<-gate // the wire is wedged
			batches = append(batches, b)
			return nil
		}),
	})

	acceptDone := make(chan error, 1)
	go func() {
		c.Accept(sinkRec("a", 1))
		acceptDone <- c.Accept(sinkRec("a", 2)) // second accept triggers the upload
	}()
	<-entered // the upload is now in flight

	closeDone := make(chan error, 1)
	go func() { closeDone <- c.Close() }()
	select {
	case <-closeDone:
		t.Fatal("Close returned while an upload was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate) // the wire heals
	if err := <-acceptDone; err != nil {
		t.Fatal(err)
	}
	if err := <-closeDone; err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 {
		t.Fatalf("batches delivered: %d, want 1 (close must not reship or drop)", len(batches))
	}
	if got := len(batches[0].Records); got != 2 {
		t.Errorf("in-flight batch records: %d", got)
	}
	if got := len(c.Records()); got != 2 {
		t.Errorf("mirror records: %d", got)
	}
}

// Empty batches are suppressed end to end: no upload counted, no
// sequence number consumed, no transport call.
func TestCollectorEmptyBatchSuppression(t *testing.T) {
	calls := 0
	c := NewCollector(CollectorOptions{
		BatchSize: 4,
		Transport: TransportFunc(func(_ context.Context, b Batch) error {
			calls++
			if len(b.Records) == 0 {
				t.Error("empty batch reached the transport")
			}
			return nil
		}),
	})
	for i := 0; i < 3; i++ {
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if calls != 0 || c.Uploads() != 0 {
		t.Errorf("empty flushes shipped: calls %d uploads %d", calls, c.Uploads())
	}
	// One record, then the same flush storm: exactly one batch, seq 1.
	c2calls := []Batch{}
	c2 := NewCollector(CollectorOptions{BatchSize: 4,
		Transport: TransportFunc(func(_ context.Context, b Batch) error {
			c2calls = append(c2calls, b)
			return nil
		})})
	c2.Accept(sinkRec("a", 1))
	c2.Flush()
	c2.Flush()
	c2.Close()
	if len(c2calls) != 1 || c2calls[0].Seq != 1 {
		t.Errorf("post-record flush storm: %+v", c2calls)
	}
}

// A synchronous transport error surfaces through the Sink interface.
func TestCollectorTransportErrorPropagates(t *testing.T) {
	boom := errors.New("wire down")
	c := NewCollector(CollectorOptions{
		BatchSize: 1,
		Transport: TransportFunc(func(context.Context, Batch) error { return boom }),
	})
	if err := c.Accept(sinkRec("a", 1)); !errors.Is(err, boom) {
		t.Errorf("Accept: %v", err)
	}
	c2 := NewCollector(CollectorOptions{
		BatchSize: 100,
		Transport: TransportFunc(func(context.Context, Batch) error { return boom }),
	})
	c2.Accept(sinkRec("a", 1))
	if err := c2.Flush(); !errors.Is(err, boom) {
		t.Errorf("Flush: %v", err)
	}
}

// A collector dataset loaded back from a JSONL export analyses the
// same as the live one: the full export → ingest loop.
func TestCollectorRoundTripThroughJSONL(t *testing.T) {
	c := NewCollector(CollectorOptions{BatchSize: 2, Device: "device-rt"})
	for i := 0; i < 5; i++ {
		c.Accept(sinkRec("com.app.rt", float64(10*(i+1))))
	}
	c.Close()

	var buf bytes.Buffer
	if err := measure.WriteJSONL(&buf, c.Records()); err != nil {
		t.Fatal(err)
	}
	loaded, err := measure.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStudyFrom(loaded)
	if got := len(st.Dataset().Records); got != 5 {
		t.Fatalf("round-tripped study records: %d", got)
	}
	if d := st.Dataset().DeviceByID("device-rt"); d == nil || d.Activity != 5 {
		t.Errorf("device lost in round trip: %+v", d)
	}
}
