package mopeye

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/measure"
)

func sinkRec(app string, ms float64) Measurement {
	return measure.Record{
		Kind: measure.KindTCP, App: app, UID: 10001,
		Dst: netip.MustParseAddrPort("203.0.113.1:443"),
		RTT: time.Duration(ms * float64(time.Millisecond)),
		At:  time.Unix(0, 0).UTC(),
	}
}

// The file sinks must emit exactly what the batch exporters would for
// the same records.
func TestFileSinksMatchBatchExports(t *testing.T) {
	recs := []Measurement{sinkRec("a", 10), sinkRec("b", 20)}

	var sinkOut, batchOut bytes.Buffer
	cs := NewCSVSink(&sinkOut)
	for _, r := range recs {
		if err := cs.Accept(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := measure.WriteCSV(&batchOut, recs); err != nil {
		t.Fatal(err)
	}
	if sinkOut.String() != batchOut.String() {
		t.Error("CSVSink diverges from WriteCSV")
	}

	sinkOut.Reset()
	batchOut.Reset()
	js := NewJSONLSink(&sinkOut)
	for _, r := range recs {
		if err := js.Accept(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	if err := measure.WriteJSONL(&batchOut, recs); err != nil {
		t.Fatal(err)
	}
	if sinkOut.String() != batchOut.String() {
		t.Error("JSONLSink diverges from WriteJSONL")
	}
}

// An empty CSV sink still produces a parseable header-only file.
func TestCSVSinkEmptyStream(t *testing.T) {
	var out bytes.Buffer
	s := NewCSVSink(&out)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := measure.ReadCSV(&out)
	if err != nil {
		t.Fatalf("header-only output unparseable: %v", err)
	}
	if len(recs) != 0 {
		t.Errorf("phantom records: %d", len(recs))
	}
}

func TestCollectorBatchSizePolicy(t *testing.T) {
	c := NewCollector(CollectorOptions{BatchSize: 3})
	for i := 0; i < 7; i++ {
		if err := c.Accept(sinkRec("a", float64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Uploads() != 2 {
		t.Errorf("uploads after 7 accepts at batch 3: %d, want 2", c.Uploads())
	}
	if c.Pending() != 1 {
		t.Errorf("pending: %d, want 1", c.Pending())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Uploads() != 3 || c.Pending() != 0 {
		t.Errorf("after close: uploads %d pending %d", c.Uploads(), c.Pending())
	}
	if got := len(c.Records()); got != 7 {
		t.Errorf("uploaded records: %d", got)
	}
	// Flush with nothing pending is not an upload.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Uploads() != 3 {
		t.Errorf("empty flush counted as upload: %d", c.Uploads())
	}
}

func TestCollectorIntervalPolicy(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCollector(CollectorOptions{
		BatchSize: 1000,
		Interval:  time.Minute,
		now:       func() time.Time { return now },
	})
	c.Accept(sinkRec("a", 1))
	if c.Uploads() != 0 {
		t.Fatalf("uploaded before the interval: %d", c.Uploads())
	}
	now = now.Add(61 * time.Second)
	c.Accept(sinkRec("a", 2))
	if c.Uploads() != 1 {
		t.Errorf("interval upload missing: %d", c.Uploads())
	}
	if c.Pending() != 0 {
		t.Errorf("pending after interval upload: %d", c.Pending())
	}
}

func TestCollectorMediansAndDeviceStamp(t *testing.T) {
	c := NewCollector(CollectorOptions{BatchSize: 100, Device: "device-test", MinPerApp: 2})
	for _, ms := range []float64{10, 30, 20} {
		c.Accept(sinkRec("com.app.x", ms))
	}
	c.Accept(sinkRec("com.app.rare", 99))
	// DNS records never enter the per-app median aggregate.
	dns := sinkRec("system.dns", 5)
	dns.Kind = measure.KindDNS
	c.Accept(dns)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	med := c.AppMedians()
	if got := med["com.app.x"]; got != 20 {
		t.Errorf("median: %v", got)
	}
	if _, ok := med["com.app.rare"]; ok {
		t.Error("app below MinPerApp aggregated")
	}
	if _, ok := med["system.dns"]; ok {
		t.Error("DNS leaked into the TCP median aggregate")
	}
	for _, r := range c.Records() {
		if r.Device != "device-test" {
			t.Errorf("unstamped upload: %+v", r)
		}
	}
	// Records that already carry a device attribution keep it.
	pre := sinkRec("com.app.x", 40)
	pre.Device = "device-original"
	c.Accept(pre)
	c.Flush()
	recs := c.Records()
	if got := recs[len(recs)-1].Device; got != "device-original" {
		t.Errorf("pre-attributed device overwritten: %q", got)
	}
}

// A collector dataset loaded back from a JSONL export analyses the
// same as the live one: the full export → ingest loop.
func TestCollectorRoundTripThroughJSONL(t *testing.T) {
	c := NewCollector(CollectorOptions{BatchSize: 2, Device: "device-rt"})
	for i := 0; i < 5; i++ {
		c.Accept(sinkRec("com.app.rt", float64(10*(i+1))))
	}
	c.Close()

	var buf bytes.Buffer
	if err := measure.WriteJSONL(&buf, c.Records()); err != nil {
		t.Fatal(err)
	}
	loaded, err := measure.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStudyFrom(loaded)
	if got := len(st.Dataset().Records); got != 5 {
		t.Fatalf("round-tripped study records: %d", got)
	}
	if d := st.Dataset().DeviceByID("device-rt"); d == nil || d.Activity != 5 {
		t.Errorf("device lost in round trip: %+v", d)
	}
}
