package mopeye

import (
	"strings"
	"testing"
)

// The fan-in benchmark is also the fleet's consistency harness: both
// modes must complete with the fleet's records intact, and the http
// row must verify the server ended up with exactly the fleet's
// dataset (runFleetOnce errors otherwise).
func TestRunFleetBenchBothModes(t *testing.T) {
	o := DefaultFleetBenchOptions()
	o.Phones = 3
	o.ConnsPerPhone = 4
	o.EchoesPerConn = 2
	res, err := RunFleetBench(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	inproc, http := res.Row("inproc"), res.Row("http")
	if inproc == nil || http == nil {
		t.Fatalf("missing rows: %+v", res.Rows)
	}
	wantRecs := o.Phones * o.ConnsPerPhone // one TCP RTT per connection
	if inproc.Records != wantRecs || http.Records != wantRecs {
		t.Errorf("records: inproc %d http %d, want %d", inproc.Records, http.Records, wantRecs)
	}
	if http.ServerRecords != wantRecs {
		t.Errorf("server records: %d, want %d", http.ServerRecords, wantRecs)
	}
	if inproc.ServerRecords != 0 || inproc.Duplicates != 0 {
		t.Errorf("inproc row grew server columns: %+v", inproc)
	}
	if res.Row("nope") != nil {
		t.Error("Row invented a mode")
	}
	out := res.String()
	for _, want := range []string{"inproc", "http", "srv-recs"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if _, err := RunFleetBench(FleetBenchOptions{Modes: []string{"bogus"}, Phones: 1}); err == nil {
		t.Error("bogus mode accepted")
	}
}

// Fleet.Study feeds the merged mirrors into the analysis pipeline.
func TestFleetStudySmoke(t *testing.T) {
	o := DefaultFleetBenchOptions()
	o.Phones = 2
	o.ConnsPerPhone = 3
	o.EchoesPerConn = 1
	o.Modes = []string{"inproc"}
	fo := FleetOptions{Phones: fleetBenchRoster(o), Collector: CollectorOptions{BatchSize: 2}}
	fleet, err := NewFleet(fo)
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	st := fleet.Study()
	if got := len(st.Dataset().Records); got != 6 {
		t.Fatalf("study records: %d", got)
	}
	if len(st.Dataset().Devices) != 2 {
		t.Errorf("study devices: %d", len(st.Dataset().Devices))
	}
	if st.Summary() == "" {
		t.Error("empty summary")
	}
}
