package mopeye

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// A plain dashboard over a short workload: frames land in the buffer,
// the busiest app gets a row, and its sparkline carries bar runes. The
// phone closing ends the stream, which ends Run.
func TestDashRendersFrames(t *testing.T) {
	p := newPhone(t)
	var buf syncBuffer
	d, err := NewDash(p, DashOptions{
		Interval: 10 * time.Millisecond,
		Out:      &buf,
		Plain:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Run(context.Background()) }()

	for i := 0; i < 4; i++ {
		conn, err := p.Connect(10001, "api.example.com:443")
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(p.TCPMeasurements()) < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Close() // ends the dashboard's subscription, and so Run
	if err := <-done; err != nil {
		t.Fatalf("dash run: %v", err)
	}

	out := buf.String()
	if !strings.Contains(out, "mopeye dash · frame") {
		t.Fatalf("no frames rendered:\n%s", out)
	}
	if !strings.Contains(out, "com.example.app") {
		t.Errorf("busiest app missing from frames:\n%s", out)
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("no sparkline in frames:\n%s", out)
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("plain frames must carry no ANSI codes")
	}
}

// The HTTP surface: GET / serves the current frame as text, GET
// /metrics the phone's exposition — on an ephemeral port known before
// Run starts.
func TestDashHTTP(t *testing.T) {
	p := newPhone(t)
	d, err := NewDash(p, DashOptions{
		Interval: 10 * time.Millisecond,
		Out:      io.Discard,
		Addr:     "127.0.0.1:0",
		Plain:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Addr() == "" {
		t.Fatal("ephemeral port not bound before Run")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	conn, err := p.Connect(10001, "api.example.com:443")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	frame, _ := get("/")
	if !strings.Contains(frame, "mopeye dash · frame") {
		t.Errorf("GET / frame:\n%s", frame)
	}
	expo, ctype := get("/metrics")
	if ctype != metrics.ContentType {
		t.Errorf("metrics content type %q", ctype)
	}
	if !strings.Contains(expo, "mopeye_engine_") {
		t.Errorf("GET /metrics missing engine families:\n%s", expo)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("dash run: %v", err)
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil); s != "" {
		t.Errorf("empty window: %q", s)
	}
	if s := sparkline([]float64{5, 5, 5}); s != "▁▁▁" {
		t.Errorf("flat window: %q", s)
	}
	s := sparkline([]float64{1, 50, 100})
	if []rune(s)[0] != '▁' || []rune(s)[2] != '█' {
		t.Errorf("ramp window: %q", s)
	}
}

// syncBuffer guards a bytes.Buffer: the dashboard renders from its own
// goroutine while the test reads the result.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
